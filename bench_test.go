package stopify

// One benchmark per table and figure of the paper's evaluation. Each bench
// drives the same experiment code as cmd/stopibench at quick settings, so
// `go test -bench=.` regenerates (a fast rendition of) every result;
// `go run ./cmd/stopibench` produces the full-size versions recorded in
// EXPERIMENTS.md.

import (
	"testing"

	"repro/internal/bench"
)

func runFigure(b *testing.B, fn func(bench.Config) (string, error)) {
	b.Helper()
	cfg := bench.QuickConfig()
	for i := 0; i < b.N; i++ {
		out, err := fn(cfg)
		if err != nil {
			b.Fatalf("%v\n%s", err, out)
		}
		if len(out) == 0 {
			b.Fatal("experiment produced no output")
		}
	}
}

// BenchmarkFig02aImplicits regenerates Figure 2a: the cost of conservative
// full-implicit settings versus the PyJS sub-language.
func BenchmarkFig02aImplicits(b *testing.B) { runFigure(b, bench.Fig2aImplicits) }

// BenchmarkFig02bConstructors regenerates Figure 2b: desugared versus
// dynamic constructors per engine.
func BenchmarkFig02bConstructors(b *testing.B) { runFigure(b, bench.Fig2bConstructors) }

// BenchmarkFig02cYieldInterval regenerates Figure 2c: time between yields,
// countdown versus sampling estimator.
func BenchmarkFig02cYieldInterval(b *testing.B) { runFigure(b, bench.Fig2cYieldInterval) }

// BenchmarkFig07Estimators regenerates Figure 7: interrupt interval μ±σ for
// the three estimators.
func BenchmarkFig07Estimators(b *testing.B) { runFigure(b, bench.Fig7Estimators) }

// BenchmarkFig10Languages regenerates Figure 10: slowdown distributions per
// language per platform.
func BenchmarkFig10Languages(b *testing.B) {
	runFigure(b, func(cfg bench.Config) (string, error) {
		s, _, err := bench.Fig10Languages(cfg)
		return s, err
	})
}

// BenchmarkFig11Strategies regenerates Figure 11: best continuation and
// constructor strategy per engine.
func BenchmarkFig11Strategies(b *testing.B) {
	runFigure(b, func(cfg bench.Config) (string, error) {
		s, _, err := bench.Fig11Strategies(cfg)
		return s, err
	})
}

// BenchmarkFig12Skulpt regenerates Figure 12: Stopify-compiled Python
// versus the Skulpt-like interpreter layer.
func BenchmarkFig12Skulpt(b *testing.B) { runFigure(b, bench.Fig12Skulpt) }

// BenchmarkFig13OctaneKraken regenerates Figure 13: Octane-like versus
// Kraken-like suites under full-JavaScript settings.
func BenchmarkFig13OctaneKraken(b *testing.B) { runFigure(b, bench.Fig13OctaneKraken) }

// BenchmarkFig14Pyret regenerates Figure 14: Pyret with Stopify versus
// classic Pyret's gas-counting runtime.
func BenchmarkFig14Pyret(b *testing.B) { runFigure(b, bench.Fig14Pyret) }

// BenchmarkFig15Native regenerates Figure 15: the browser-substrate-versus-
// native slowdown without Stopify.
func BenchmarkFig15Native(b *testing.B) { runFigure(b, bench.Fig15Native) }

// BenchmarkStrawmen regenerates §3's strawman comparison: checked-return
// versus CPS versus generators.
func BenchmarkStrawmen(b *testing.B) { runFigure(b, bench.Strawmen) }

// BenchmarkCodeSize regenerates §6.1's code-growth measurement.
func BenchmarkCodeSize(b *testing.B) { runFigure(b, bench.CodeSize) }

// BenchmarkAblationGuards measures the statement-grouping optimization
// against the paper's literal per-statement guards.
func BenchmarkAblationGuards(b *testing.B) { runFigure(b, bench.AblationGuards) }

// BenchmarkAblationSampleMs varies the approx estimator's sampling period.
func BenchmarkAblationSampleMs(b *testing.B) { runFigure(b, bench.AblationSampleMs) }

// BenchmarkAblationRestoreSegment varies the deep-stack restore chunk size.
func BenchmarkAblationRestoreSegment(b *testing.B) { runFigure(b, bench.AblationRestoreSegment) }

// BenchmarkCompile measures the compiler itself on a representative input.
func BenchmarkCompile(b *testing.B) {
	src := `
function fib(n) { if (n < 2) { return n; } return fib(n - 1) + fib(n - 2); }
function tri(n) { var t = 0; for (var i = 0; i <= n; i++) { t += i; } return t; }
console.log(fib(10), tri(100));
`
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Compile(src, Defaults()); err != nil {
			b.Fatal(err)
		}
	}
}
