// Webide is a terminal model of the paper's Web IDE (§5.2, Figure 8): it
// runs a user program — by default the infinite loop of Figure 17 that
// freezes Codecademy and crashes the Elm debugger — with a working stop
// button, breakpoints, single-stepping, and resume.
//
//	go run ./examples/webide [program.js]
//
// Commands at the (ide) prompt:
//
//	run            start the program
//	stop           interrupt it (graceful termination — state preserved)
//	resume         continue after stop or breakpoint
//	step           execute one statement and stop again
//	break <line>   set a breakpoint on an original source line
//	clear <line>   remove a breakpoint
//	quit           leave the IDE
package main

import (
	"bufio"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/core"
)

// defaultProgram is the kind of program that freezes real Web IDEs
// (Figure 17): an infinite loop with observable progress.
const defaultProgram = `var spins = 0;
while (true) {
  spins = spins + 1;
  if (spins % 5000000 === 0) {
    console.log("still spinning:", spins);
  }
}`

func main() {
	src := defaultProgram
	if len(os.Args) > 1 {
		b, err := os.ReadFile(os.Args[1])
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		src = string(b)
	}

	opts := core.Defaults()
	opts.Debug = true // $bp before every statement: breakpoints + stepping
	compiled, err := core.Compile(src, opts)
	if err != nil {
		fmt.Fprintln(os.Stderr, "compile:", err)
		os.Exit(1)
	}
	run, err := compiled.NewRun(core.RunConfig{Out: os.Stdout})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	run.RT.OnBreak(func(line int) {
		fmt.Printf("(ide) stopped at line %d\n", line)
	})

	lines := make(chan string, 4)
	go func() {
		sc := bufio.NewScanner(os.Stdin)
		for sc.Scan() {
			lines <- strings.TrimSpace(sc.Text())
		}
		close(lines)
	}()

	fmt.Println("(ide) loaded program; commands: run stop resume step break <n> clear <n> quit")
	printPrompt := true
	for {
		if printPrompt {
			fmt.Print("(ide) ")
			printPrompt = false
		}
		select {
		case cmd, ok := <-lines:
			if !ok {
				return
			}
			printPrompt = true
			fields := strings.Fields(cmd)
			if len(fields) == 0 {
				continue
			}
			switch fields[0] {
			case "run":
				run.Run(func() { fmt.Println("(ide) program finished") })
			case "stop":
				run.Pause(func() {
					fmt.Printf("(ide) stopped near line %d; resume to continue\n", run.RT.CurrentLine())
				})
				// Pump until the pause lands, so `stop` behaves like a real
				// stop button even in scripted use.
				for i := 0; i < 1000000 && !run.RT.Paused() && !run.Finished(); i++ {
					if !run.Loop.RunOne() {
						break
					}
				}
			case "resume":
				if run.RT.Paused() {
					run.RT.ResumeFromBreak()
				} else {
					fmt.Println("(ide) nothing to resume")
				}
			case "step":
				run.RT.StepOnce(func(line int) {
					fmt.Printf("(ide) stepped to line %d\n", line)
				})
			case "break":
				if n := argLine(fields); n > 0 {
					run.RT.SetBreakpoint(n)
					fmt.Printf("(ide) breakpoint at line %d\n", n)
				}
			case "clear":
				if n := argLine(fields); n > 0 {
					run.RT.ClearBreakpoint(n)
				}
			case "quit":
				return
			default:
				fmt.Println("(ide) unknown command")
			}
		default:
			// The "browser": drain one event-loop task, then service the UI.
			if !run.Loop.RunOne() && run.Finished() {
				if _, err := run.Result(); err != nil {
					fmt.Println("(ide) program error:", err)
				}
			}
		}
	}
}

func argLine(fields []string) int {
	if len(fields) < 2 {
		fmt.Println("(ide) need a line number")
		return 0
	}
	n, err := strconv.Atoi(fields[1])
	if err != nil {
		fmt.Println("(ide) bad line number")
		return 0
	}
	return n
}
