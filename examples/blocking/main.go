// Blocking demonstrates §5.2's synchronous-operations-atop-nonblocking-APIs
// feature: the JavaScript program calls sleep() and prompt() as if they were
// blocking, while the host implements them with timers and queued events —
// exactly how a language runtime built on Stopify offers blocking I/O in a
// browser that has none.
package main

import (
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/interp"
)

const program = `
console.log("downloading three files...");
for (var i = 1; i <= 3; i++) {
  var ms = i * 40;
  sleep(ms);                       // looks blocking, runs on setTimeout
  console.log("  file", i, "fetched after", ms, "ms");
}
var name = prompt("who are you?");  // blocking read from a host input queue
console.log("hello,", name);
`

func main() {
	opts := core.Defaults()
	compiled, err := core.Compile(program, opts)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	run, err := compiled.NewRun(core.RunConfig{Out: os.Stdout})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	// sleep(ms): capture the continuation, set a timer, resume later. The
	// host converts at the FromGo/ToGo boundary; engine Values never leak
	// raw payloads into embedder code.
	run.RT.Blocking("sleep", func(args []interp.Value, resume func(interp.Value)) {
		ms, _ := args[0].ToGo().(float64)
		run.Loop.Post(func() { resume(interp.Undefined) }, ms)
	})

	// prompt(q): answer from a queued input source (a real IDE would wire
	// this to a DOM event).
	inputs := []string{"ada"}
	run.RT.Blocking("prompt", func(args []interp.Value, resume func(interp.Value)) {
		fmt.Printf("[host] prompt: %v\n", args[0])
		answer := inputs[0]
		run.Loop.Post(func() { resume(interp.FromGo(answer)) }, 10)
	})

	run.Run(nil)
	if err := run.Wait(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
