// Deepstack demonstrates §5.2's deep-stack mode: a recursive program that
// needs two orders of magnitude more stack than the engine provides runs to
// completion because Stopify captures the stack at a depth limit and
// resumes it, in segments, on an empty native stack. Tail calls never push
// frames (§3.2.2), so unbounded tail recursion runs in constant space — the
// paper's trampoline for engines without proper tail calls.
package main

import (
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/engine"
)

const deepRecursion = `
function sum(n) {
  if (n === 0) { return 0; }
  return n + sum(n - 1);       // NOT a tail call: every level needs a frame
}
console.log("sum(50000) =", sum(50000));
`

const tailRecursion = `
function loop(n, acc) {
  if (n === 0) { return acc; }
  return loop(n - 1, acc + n); // tail call: no frame is ever reified
}
console.log("loop(2000000) =", loop(2000000, 0));
`

func main() {
	// A Firefox-like engine: the paper singles out its shallow stack.
	eng := engine.Firefox()
	fmt.Printf("engine %q allows %d native frames\n\n", eng.Name, eng.MaxStack)

	fmt.Println("--- without deep stacks ---")
	opts := core.Defaults()
	if _, err := core.RunSource(deepRecursion, opts, core.RunConfig{Engine: eng, Out: os.Stdout}); err != nil {
		fmt.Println("failed as expected:", err)
	}

	fmt.Println("\n--- with deep stacks (stacks: 'deep') ---")
	opts.DeepStacks = true
	if _, err := core.RunSource(deepRecursion, opts, core.RunConfig{Engine: eng, Out: os.Stdout}); err != nil {
		fmt.Fprintln(os.Stderr, "unexpected failure:", err)
		os.Exit(1)
	}

	fmt.Println("\n--- two million tail calls in constant space ---")
	if _, err := core.RunSource(tailRecursion, opts, core.RunConfig{Engine: eng, Out: os.Stdout}); err != nil {
		fmt.Fprintln(os.Stderr, "unexpected failure:", err)
		os.Exit(1)
	}
}
