// Serving: the multi-tenant story. A 4-worker supervisor runs two hundred
// mutually distrusting guest programs concurrently — far more tenants than
// workers — preempting each at statement-boundary quanta and enforcing
// per-tenant policy. A hostile tenant spins forever: it dies at its
// wall-clock deadline. Another spams console output: it dies at its output
// cap. Every well-behaved neighbor completes unharmed, and the fleet
// reports scheduling-latency percentiles the whole time.
package main

import (
	"errors"
	"fmt"
	"os"
	"time"

	"repro/internal/supervisor"
)

func main() {
	sup := supervisor.New(supervisor.Options{
		Workers:      4,
		QuantumSteps: 1500,
	})
	defer sup.Close()

	const tenants = 200
	guests := make([]*supervisor.Guest, 0, tenants)
	for i := 0; i < tenants; i++ {
		src := fmt.Sprintf(`
var acc = %d;
for (var i = 0; i < 2000; i++) { acc = (acc + i * i) %% 1000003; }
function fib(n) { if (n < 2) { return n; } return fib(n - 1) + fib(n - 2); }
console.log("tenant %d:", acc, fib(11));
`, i, i)
		var pol *supervisor.Policy
		if i%5 == 0 {
			pol = &supervisor.Policy{Lane: supervisor.LaneInteractive}
		}
		g, err := sup.Submit(supervisor.SubmitOptions{Source: src, Policy: pol})
		if err != nil {
			fmt.Fprintln(os.Stderr, "submit:", err)
			os.Exit(1)
		}
		guests = append(guests, g)
	}

	// The hostile tenants.
	spinner, err := sup.Submit(supervisor.SubmitOptions{
		Source: `while (true) { var burn = 1; }`,
		Policy: &supervisor.Policy{WallDeadline: 400 * time.Millisecond},
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "submit:", err)
		os.Exit(1)
	}
	bomber, err := sup.Submit(supervisor.SubmitOptions{
		Source: `while (true) { console.log("all work and no play"); }`,
		Policy: &supervisor.Policy{MaxOutputBytes: 4096},
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "submit:", err)
		os.Exit(1)
	}

	ok := 0
	for _, g := range guests {
		if res := g.Wait(); res.Err == nil {
			ok++
		} else {
			fmt.Printf("tenant %d failed: %v\n", g.ID, res.Err)
		}
	}
	sres := spinner.Wait()
	bres := bomber.Wait()
	fmt.Printf("%d/%d well-behaved tenants completed\n", ok, tenants)
	fmt.Printf("spinner: killed=%v after %d steps (%v)\n",
		errors.Is(sres.Err, supervisor.ErrDeadline), sres.Steps, sres.Err)
	fmt.Printf("output bomber: killed=%v with %d bytes recorded (%v)\n",
		errors.Is(bres.Err, supervisor.ErrOutputLimit), len(bres.Output), bres.Err)

	m := sup.Metrics()
	fmt.Printf("fleet: %d preemptions across %d turns; scheduling latency P50 %.2fms P99 %.2fms\n",
		m.Preemptions, m.SchedLatency.Count, m.SchedLatency.P50, m.SchedLatency.P99)
}
