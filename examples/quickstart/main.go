// Quickstart: compile a JavaScript program with Stopify, run it on the
// event loop, interrupt it mid-flight with the pause API (the "stop
// button" of §2), and resume it — the core promise of the paper in thirty
// lines of client code.
package main

import (
	"fmt"
	"os"

	"repro/internal/core"
)

const program = `
function fib(n) {
  if (n < 2) { return n; }
  return fib(n - 1) + fib(n - 2);
}
for (var i = 20; i <= 24; i++) {
  console.log("fib(" + i + ") =", fib(i));
}
`

func main() {
	opts := core.Defaults() // checked continuations, approx estimator, δ=100ms
	compiled, err := core.Compile(program, opts)
	if err != nil {
		fmt.Fprintln(os.Stderr, "compile:", err)
		os.Exit(1)
	}
	fmt.Printf("instrumented %d source bytes into %d bytes of JavaScript\n",
		compiled.SourceBytes, compiled.CompiledBytes)

	run, err := compiled.NewRun(core.RunConfig{Out: os.Stdout})
	if err != nil {
		fmt.Fprintln(os.Stderr, "setup:", err)
		os.Exit(1)
	}

	// Start the program and request a pause: the callback for the "stop
	// button" just calls Pause and lets Stopify handle the rest (§2).
	run.Run(nil)
	paused := false
	run.Pause(func() {
		paused = true
		fmt.Println("--- paused at a yield point; state is intact ---")
	})
	for !paused && !run.Finished() {
		if !run.Loop.RunOne() {
			break
		}
	}

	fmt.Println("--- resuming ---")
	run.Resume()
	if err := run.Wait(); err != nil {
		fmt.Fprintln(os.Stderr, "run:", err)
		os.Exit(1)
	}
	fmt.Printf("done after %d yields, %d continuation captures\n",
		run.RT.Yields, run.RT.Captures)
}
