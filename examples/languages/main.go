// Languages runs one benchmark from each of the ten compiler profiles of
// Figure 5 under its own sub-language configuration, verifying output
// against an uninstrumented run and reporting the slowdown — a miniature of
// the paper's §6.1 experiment. It finishes with the Figure 16 story: the
// same each-loop written with Pyret's hand-rolled stack bookkeeping versus
// the clean version Stopify enables.
package main

import (
	"fmt"
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/langs"
)

func main() {
	eng := engine.Chrome()
	fmt.Printf("%-12s %-16s %10s %10s %9s\n", "language", "benchmark", "raw", "stopified", "slowdown")
	for _, p := range langs.All() {
		b := p.Benchmarks[0]
		opts := p.Opts(core.Defaults())

		cfgRaw := core.RunConfig{Engine: eng, Seed: 1}
		startRaw := time.Now()
		want, err := core.RunRaw(b.Source, cfgRaw)
		rawMs := float64(time.Since(startRaw)) / 1e6
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s/%s raw: %v\n", p.Name, b.Name, err)
			os.Exit(1)
		}

		compiled, err := core.Compile(b.Source, opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s/%s compile: %v\n", p.Name, b.Name, err)
			os.Exit(1)
		}
		run, err := compiled.NewRun(core.RunConfig{Engine: eng, Seed: 1})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		startStop := time.Now()
		if err := run.RunToCompletion(); err != nil {
			fmt.Fprintf(os.Stderr, "%s/%s stopified: %v\n", p.Name, b.Name, err)
			os.Exit(1)
		}
		stopMs := float64(time.Since(startStop)) / 1e6

		// Verify semantics before trusting the numbers.
		got, err := core.RunSource(b.Source, opts, core.RunConfig{Engine: eng, Seed: 1})
		if err != nil || got != want {
			fmt.Fprintf(os.Stderr, "%s/%s output mismatch\n", p.Name, b.Name)
			os.Exit(1)
		}
		fmt.Printf("%-12s %-16s %8.1fms %8.1fms %8.1fx\n",
			p.Name, b.Name, rawMs, stopMs, stopMs/rawMs)
	}

	fmt.Println("\nFigure 16 — what Stopify removes from Pyret's runtime:")
	fmt.Println("  before (hand-instrumented): GAS/RUNGAS counters, isContinuation checks,")
	fmt.Println("  activation-record save/restore in every library loop (~20 lines each);")
	fmt.Println("  after (with Stopify):")
	fmt.Println("      function eachLoop(fun, start, stop) {")
	fmt.Println("        for (var i = start; i < stop; i++) { fun.app(i); }")
	fmt.Println("        return thisRuntime.nothing;")
	fmt.Println("      }")
	fmt.Println("  — the pyret profile's each_loop benchmark above runs exactly this code.")
}
