// Package stopify is a Go reproduction of "Putting in All the Stops:
// Execution Control for JavaScript" (Baxter, Nigam, Politz, Krishnamurthi,
// Guha — PLDI 2018).
//
// Stopify is a JavaScript-to-JavaScript compiler that retrofits execution
// control onto the browser's single-threaded platform: given the output of
// any compiler targeting JavaScript, it produces a program that can be
// paused, resumed, stepped, gracefully terminated, run with an arbitrarily
// deep stack, and suspended across simulated blocking operations — by
// reifying first-class continuations through source instrumentation.
//
// This package is the public face of the library:
//
//	c, err := stopify.Compile(source, stopify.Options{
//	    Cont:            "checked",     // or "exceptional", "eager"
//	    Ctor:            "direct",      // or "wrapped"
//	    Timer:           "approx",      // or "exact", "countdown"
//	    YieldIntervalMs: 100,
//	    Implicits:       "none",        // sub-language: "none", "plus", "full"
//	    Args:            "none",        // "none", "varargs", "mixed", "full"
//	})
//	run, err := c.NewRun(stopify.RunConfig{Engine: stopify.Engines()["chrome"]})
//	run.Run(nil)               // starts on the event loop
//	run.Pause(func() { ... })  // the "stop button"
//	run.Resume()
//	run.Kill(nil)              // graceful, uncatchable termination
//	err = run.Wait()
//
// Per-run control scales to fleets: the execution supervisor schedules
// thousands of concurrent guest programs onto a bounded worker pool, using
// the same statement-boundary yield points as preemption points — each
// guest gets a step quantum, parks its own continuation when it expires,
// and requeues round-robin (with a weighted interactive lane), while
// per-tenant policies (wall-clock deadline, step budget, output cap) are
// enforced from outside the workers. This is the serving scenario: many
// mutually distrusting tenants, none able to starve or crash the host.
//
//	sup := stopify.NewSupervisor(stopify.SupervisorOptions{Workers: 4})
//	g, err := sup.Submit(stopify.Submission{Source: src})
//	res := g.Wait()            // output, error, steps, preemption counts
//
// cmd/stopifyd wraps the supervisor in an HTTP daemon (submit → poll →
// cancel), and `stopibench -supervisor` measures fleet throughput and
// scheduling-latency percentiles.
//
// The JavaScript engine substrate (parser, interpreter, browser-like cost
// profiles, event loop), the compilation pipeline (desugaring,
// A-normalization, boxing, the three continuation-instrumentation
// strategies of §3.2), the runtime (modes, estimators, segmented restore),
// the ten language profiles of Figure 5, the supervisor, and the full
// benchmark harness live under internal/; see DESIGN.md and
// DESIGN_supervisor.md for the map.
package stopify

import (
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/supervisor"
)

// Options mirrors the stopify() options object of Figure 1 in the paper.
type Options = core.Opts

// Compiled is a program processed by the Stopify pipeline.
type Compiled = core.Compiled

// AsyncRun is the execution handle of Figure 1: run, pause, resume,
// breakpoints, stepping.
type AsyncRun = core.AsyncRun

// RunConfig selects the host environment (engine profile, clock, output).
type RunConfig = core.RunConfig

// Engine is a browser-like performance profile.
type Engine = engine.Profile

// Defaults returns the default Options: checked-return continuations,
// desugared constructors, the sampling time estimator with a 100 ms yield
// interval, and the most restrictive (fastest) sub-language.
func Defaults() Options { return core.Defaults() }

// Compile runs source through the full Stopify pipeline: desugaring for the
// configured sub-language, A-normalization, boxing of captured assignable
// variables, and continuation instrumentation.
func Compile(source string, opts Options) (*Compiled, error) {
	return core.Compile(source, opts)
}

// RunSource compiles and runs source to completion, returning its console
// output.
func RunSource(source string, opts Options, cfg RunConfig) (string, error) {
	return core.RunSource(source, opts, cfg)
}

// RunRaw executes source without Stopify — the baseline in every slowdown
// measurement.
func RunRaw(source string, cfg RunConfig) (string, error) {
	return core.RunRaw(source, cfg)
}

// Engines returns the five browser-like cost profiles of the evaluation
// (chrome, edge, firefox, safari, chromebook).
func Engines() map[string]*Engine { return engine.Profiles() }

// Supervisor is the multi-tenant execution scheduler: N workers, M ≫ N
// guests, statement-quantum preemption, per-tenant resource policies.
type Supervisor = supervisor.Supervisor

// SupervisorOptions configures a Supervisor (pool size, admission bound,
// quantum, lane weighting, default policy).
type SupervisorOptions = supervisor.Options

// Submission describes one guest program for Supervisor.Submit.
type Submission = supervisor.SubmitOptions

// GuestPolicy is the per-tenant resource contract (deadline, step budget,
// output cap, scheduling lane).
type GuestPolicy = supervisor.Policy

// Guest is a supervised run: Wait/Kill/Pause/Resume/Inspect.
type Guest = supervisor.Guest

// NewSupervisor starts a supervisor and its worker pool.
func NewSupervisor(opts SupervisorOptions) *Supervisor { return supervisor.New(opts) }
