package bytecode

import (
	"strings"
	"testing"

	"repro/internal/ast"
	"repro/internal/parser"
	"repro/internal/resolve"
)

// compileFirstFunc parses src, resolves it, and compiles its first
// top-level function declaration.
func compileFirstFunc(t *testing.T, src string) *Chunk {
	t.Helper()
	prog, err := parser.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	resolve.Program(prog)
	_, fns := ast.HoistedDecls(prog.Body)
	if len(fns) == 0 {
		t.Fatal("no function in source")
	}
	ch := Compile(fns[0])
	if ch == nil {
		t.Fatalf("function did not compile:\n%s", src)
	}
	return ch
}

func TestCompileRejectsUnresolved(t *testing.T) {
	prog, err := parser.Parse(`function f() { return 1; }`)
	if err != nil {
		t.Fatal(err)
	}
	// No resolve pass: the function has no frame layout.
	_, fns := ast.HoistedDecls(prog.Body)
	if ch := Compile(fns[0]); ch != nil {
		t.Fatal("compiled a function with no Scope; it must stay on the tree-walker")
	}
}

func TestCompileCachedSharesChunks(t *testing.T) {
	prog, err := parser.Parse(`function f() { return 1; }`)
	if err != nil {
		t.Fatal(err)
	}
	resolve.Program(prog)
	_, fns := ast.HoistedDecls(prog.Body)
	a := CompileCached(fns[0])
	b := CompileCached(fns[0])
	if a == nil || a != b {
		t.Fatalf("cache did not return the same chunk: %p vs %p", a, b)
	}
}

func TestTryFinallyBecomesEscapeHatch(t *testing.T) {
	ch := compileFirstFunc(t, `
function f() {
  for (var i = 0; i < 3; i++) {
    try { if (i) { break; } } finally { i++; }
  }
  try { return 1; } catch (e) { return 2; }
}`)
	dis := ch.Disassemble()
	if !strings.Contains(dis, "execstmt") {
		t.Fatalf("try/finally should lower to an escape hatch:\n%s", dis)
	}
	// The plain try/catch lowers natively.
	if !strings.Contains(dis, "try") || !strings.Contains(dis, "entercatch") {
		t.Fatalf("try/catch should lower natively:\n%s", dis)
	}
	if len(ch.Stmts) != 1 {
		t.Fatalf("expected exactly one escape-hatch statement, got %d", len(ch.Stmts))
	}
	// The escape hatch sits inside the for loop: its jump table must
	// expose the loop as a break/continue target.
	if len(ch.JumpTabs) != 1 {
		t.Fatalf("expected one jump table, got %d", len(ch.JumpTabs))
	}
	tab := ch.JumpTabs[0]
	foundLoop := false
	for _, tg := range tab {
		if tg.Loop && tg.BreakPlain {
			foundLoop = true
			if tg.BreakPC < 0 || tg.ContPC < 0 {
				t.Fatalf("loop target not patched: %+v", tg)
			}
		}
	}
	if !foundLoop {
		t.Fatalf("escape hatch jump table misses the enclosing loop: %+v", tab)
	}
}

func TestArrayHolesCompileToUndef(t *testing.T) {
	ch := compileFirstFunc(t, `function f() { return [,1,,3,,]; }`)
	dis := ch.Disassemble()
	if strings.Count(dis, "undef") < 3 {
		t.Fatalf("elided holes should push undefined:\n%s", dis)
	}
	found := false
	for _, ins := range ch.Code {
		if ins.Op == OpArray && ins.A == 5 {
			found = true
		}
	}
	if !found {
		t.Fatalf("array literal should carry all five elements:\n%s", dis)
	}
}

func TestAccessorPropsUseSetAccessor(t *testing.T) {
	ch := compileFirstFunc(t, `
function f() { return { get x() { return 1; }, set x(v) {}, y: 2 }; }`)
	if len(ch.Accessors) != 2 {
		t.Fatalf("expected two accessor records, got %d", len(ch.Accessors))
	}
	if ch.Accessors[0].Setter || !ch.Accessors[1].Setter {
		t.Fatalf("accessor kinds wrong: %+v", ch.Accessors)
	}
	dis := ch.Disassemble()
	if !strings.Contains(dis, "setaccessor") || !strings.Contains(dis, "setprop") {
		t.Fatalf("object literal lowering wrong:\n%s", dis)
	}
}

func TestLabeledLoopsResolveStatically(t *testing.T) {
	ch := compileFirstFunc(t, `
function f() {
  outer: for (var i = 0; i < 3; i++) {
    for (var j = 0; j < 3; j++) {
      if (j) { continue outer; }
      if (i) { break outer; }
    }
  }
  return i;
}`)
	dis := ch.Disassemble()
	// Both labeled jumps compile to plain jumps — no escape hatch, no
	// dynamic completion objects.
	if strings.Contains(dis, "execstmt") {
		t.Fatalf("labeled break/continue should compile to jumps:\n%s", dis)
	}
}

func TestFusionsApply(t *testing.T) {
	ch := compileFirstFunc(t, `
function f(o) {
  var t = 1;
  var g = function () { return 2; };
  if ($mode === "normal") { t = o.label; }
  g();
  $suspend();
  return t;
}`)
	dis := ch.Disassemble()
	for _, want := range []string{
		"jumpglobalneconst", // if ($mode === "normal") guard
		"stmtconst",         // var t = 1 (boundary + constant push)
		"setlocalstmt",      // …and its store folded with the next boundary
		"closuresetlocal",   // var g = function…
		"getlocalmember",    // o.label
		"call0local",        // g()
		"call0global",       // $suspend()
		"stmtgetlocal",      // return t
	} {
		if !strings.Contains(dis, want) {
			t.Errorf("missing fused instruction %s:\n%s", want, dis)
		}
	}
	// const+setlocal mid-statement (a second declarator) still fuses.
	ch2 := compileFirstFunc(t, `function f() { var a = 1, b = 2; return a + b; }`)
	if !strings.Contains(ch2.Disassemble(), "constsetlocal") {
		t.Errorf("missing constsetlocal:\n%s", ch2.Disassemble())
	}
}

// TestFuseBarrierKeepsLoopHeads pins the fusion-safety rule: a statement
// marker that is a jump target (a do-while body head) must not merge into
// the marker before it, or the loop would re-count the wrong statements.
func TestFuseBarrierKeepsLoopHeads(t *testing.T) {
	ch := compileFirstFunc(t, `
function f() {
  var n = 0;
  do { n++; } while (n < 3);
  return n;
}`)
	// Find the do-while back-jump target and check it lands on an
	// instruction that still carries the body's own boundary marker
	// (forward fusion with the body's first value push is fine; merging
	// into the instruction before the head is not).
	for _, ins := range ch.Code {
		if ins.Op == OpJumpIfTrue {
			switch tgt := ch.Code[ins.A]; tgt.Op {
			case OpStmt, OpStmtGetLocal, OpStmtConst:
			default:
				t.Fatalf("do-while body head fused away; target is %s", tgt.Op)
			}
		}
	}
}

func TestMaxStackCoversOperands(t *testing.T) {
	ch := compileFirstFunc(t, `
function f(a, b, c) { return f(a + 1, b * 2, c + a + b)[a][b](a, b, c); }`)
	if ch.MaxStack < 5 {
		t.Fatalf("MaxStack suspiciously small: %d", ch.MaxStack)
	}
}
