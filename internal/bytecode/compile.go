package bytecode

import (
	"sync"

	"repro/internal/ast"
)

// The compiled-chunk cache. Chunks are pure functions of the resolved tree
// (site IDs and Refs are annotations on the nodes themselves), so one
// compilation serves every realm — benchmark harnesses create thousands of
// short-lived realms over the same program, and per-realm recompilation
// was a measurable share of their runtime. A nil entry records a rejected
// function. The cache is bounded: once it exceeds cacheLimit entries the
// whole map is dropped (an epoch flush), so fuzzers feeding endless fresh
// programs cannot pin every AST they ever produced.
var (
	cacheMu    sync.RWMutex
	cache      = make(map[*ast.Func]*Chunk)
	cacheLimit = 8192
)

// CompileCached is Compile behind the process-wide cache.
func CompileCached(fn *ast.Func) *Chunk {
	cacheMu.RLock()
	ch, ok := cache[fn]
	cacheMu.RUnlock()
	if ok {
		return ch
	}
	ch = Compile(fn)
	cacheMu.Lock()
	if len(cache) >= cacheLimit {
		cache = make(map[*ast.Func]*Chunk)
	}
	cache[fn] = ch
	cacheMu.Unlock()
	return ch
}

// Compile lowers a resolved function body to a chunk. It returns nil when
// the function cannot be lowered — no frame layout (the resolver never saw
// it), or a node kind the compiler does not know — in which case the caller
// keeps tree-walking it. Individual statements the compiler chooses not to
// lower (try/finally, unresolved declarations) do not fail the function;
// they become OpExecStmt escape hatches.
//
// The compiler mirrors the tree-walker statement by statement: evaluation
// order, engine cost charges, and step counting are reproduced exactly, so
// the two engines are observationally identical — the property the
// differential harness in internal/core checks.
func Compile(fn *ast.Func) *Chunk {
	if fn.Scope == nil {
		return nil
	}
	c := &compiler{
		ch:       &Chunk{Fn: fn},
		nameIdx:  make(map[string]int32),
		constIdx: make(map[Const]int32),
	}
	for _, s := range fn.Body {
		c.stmt(s)
	}
	c.emit(OpReturnUndef, 0, 0)
	if c.failed {
		return nil
	}
	c.ch.MaxStack = c.maxSP
	return c.ch
}

// ctx is one enclosing breakable construct during compilation.
type ctx struct {
	labels     []string
	loop       bool // accepts continue
	breakPlain bool // accepts unlabeled break (loops and switches)

	// Depths at construct entry; jump fixups unwind to these. For for-in
	// loops iterDepth includes the loop's own iterator, and the break
	// target is the exit's pop instruction.
	iterDepth  int
	scopeDepth int
	tryDepth   int

	contPC     int // continue target pc; -1 while unknown
	breakJumps []int
	contJumps  []int
	breakRefs  []*JumpTarget // escape-hatch entries awaiting the break pc
	contRefs   []*JumpTarget
}

type compiler struct {
	ch    *Chunk
	sp    int
	maxSP int

	iterDepth  int
	scopeDepth int
	tryDepth   int

	ctxs     []*ctx
	nameIdx  map[string]int32
	constIdx map[Const]int32
	failed   bool

	// fuseBarrier is the lowest pc into which no instruction may be
	// merged: any pc that was captured as a jump target (loop heads,
	// patched branches, break targets) must keep an instruction of its
	// own. Fusions check it before folding into the previous slot.
	fuseBarrier int
}

// ---------------------------------------------------------------------------
// Emission helpers
// ---------------------------------------------------------------------------

func (c *compiler) emit(op Op, a, b int32) int {
	c.ch.Code = append(c.ch.Code, Instr{Op: op, A: a, B: b})
	return len(c.ch.Code) - 1
}

func (c *compiler) emit3(op Op, a, b, cc int32) int {
	c.ch.Code = append(c.ch.Code, Instr{Op: op, A: a, B: b, C: cc})
	return len(c.ch.Code) - 1
}

// emitStmt emits a statement-boundary marker, folding it into an
// immediately preceding marker when no code or jump target separates them
// (adjacent markers arise from blocks, empty statements, and declarations
// that compile to nothing — by construction no side effect runs between
// the boundaries, so one instruction may count them all).
func (c *compiler) emitStmt() {
	n := len(c.ch.Code)
	if n > c.fuseBarrier && n > 0 {
		switch last := &c.ch.Code[n-1]; last.Op {
		case OpStmt:
			if last.B == 0 {
				last.A++
				return
			}
		case OpSetLocal:
			last.Op = OpSetLocalStmt
			last.B, last.C = 1, 0
			return
		case OpSetLocalStmt:
			if last.C == 0 {
				last.B++
				return
			}
		case OpJumpIfFalse:
			last.Op = OpJumpIfFalseStmt
			last.B, last.C = 1, 0
			return
		case OpJumpIfFalseStmt:
			if last.C == 0 {
				last.B++
				return
			}
		}
	}
	c.emit(OpStmt, 1, 0)
}

// emitChargeBranch folds the if statement's BranchCost charge into its own
// boundary marker when possible.
func (c *compiler) emitChargeBranch() {
	n := len(c.ch.Code)
	if n > c.fuseBarrier && n > 0 {
		switch last := &c.ch.Code[n-1]; last.Op {
		case OpStmt:
			if last.B == 0 {
				last.B = 1
				return
			}
		case OpSetLocalStmt, OpJumpIfFalseStmt:
			if last.C == 0 {
				last.C = 1
				return
			}
		}
	}
	c.emit(OpChargeBranch, 0, 0)
}

func (c *compiler) pc() int { return len(c.ch.Code) }

// emitJumpIfFalse emits a falsy-branch, folding it into an immediately
// preceding OpGlobalEqConst (the mode-dispatch guard) when no jump target
// separates them. Returns the instruction index to patch.
func (c *compiler) emitJumpIfFalse() int {
	n := len(c.ch.Code)
	if n > c.fuseBarrier && n > 0 {
		if last := &c.ch.Code[n-1]; last.Op == OpGlobalEqConst {
			if c.ch.GuardNames == nil {
				c.ch.GuardNames = make(map[int32]int32)
			}
			c.ch.GuardNames[int32(n-1)] = last.B
			last.Op = OpJumpGlobalNeConst
			last.B = last.A // site moves to B
			last.A = -1     // jump target, patched by the caller
			return n - 1
		}
	}
	return c.emit(OpJumpIfFalse, -1, 0)
}

// emitSetLocal stores the top of stack into slot, folding constant and
// closure producers into one instruction.
func (c *compiler) emitSetLocal(slot int32) {
	n := len(c.ch.Code)
	if n > c.fuseBarrier && n > 0 {
		switch last := &c.ch.Code[n-1]; last.Op {
		case OpConst:
			last.Op = OpConstSetLocal
			last.B = slot
			return
		case OpClosure:
			last.Op = OpClosureSetLocal
			last.B = slot
			return
		}
	}
	c.emit(OpSetLocal, slot, 0)
}

// target returns the current pc as a jump target, marking it as a fuse
// barrier so the instruction emitted there stays addressable.
func (c *compiler) target() int {
	c.fuseBarrier = c.pc()
	return c.fuseBarrier
}

// patch points instruction at's A operand at the current pc.
func (c *compiler) patch(at int) {
	c.ch.Code[at].A = int32(c.pc())
	c.fuseBarrier = c.pc()
}

func (c *compiler) push(n int) {
	c.sp += n
	if c.sp > c.maxSP {
		c.maxSP = c.sp
	}
}

func (c *compiler) pop(n int) { c.sp -= n }

func (c *compiler) name(s string) int32 {
	if i, ok := c.nameIdx[s]; ok {
		return i
	}
	i := int32(len(c.ch.Names))
	c.ch.Names = append(c.ch.Names, s)
	c.nameIdx[s] = i
	return i
}

func (c *compiler) constant(v Const) int32 {
	if i, ok := c.constIdx[v]; ok {
		return i
	}
	i := int32(len(c.ch.Consts))
	c.ch.Consts = append(c.ch.Consts, v)
	c.constIdx[v] = i
	return i
}

func (c *compiler) emitConst(v Const) {
	idx := c.constant(v)
	n := len(c.ch.Code)
	if n > c.fuseBarrier && n > 0 {
		if last := &c.ch.Code[n-1]; last.Op == OpStmt {
			last.Op = OpStmtConst
			last.B, last.C = last.A, last.B
			last.A = idx
			c.push(1)
			return
		}
	}
	c.emit(OpConst, idx, 0)
	c.push(1)
}

func (c *compiler) fn(f *ast.Func) int32 {
	c.ch.Funcs = append(c.ch.Funcs, f)
	return int32(len(c.ch.Funcs) - 1)
}

// ---------------------------------------------------------------------------
// Lowerability
// ---------------------------------------------------------------------------

// lowerable reports whether stmt itself (not its nested statements, which
// are checked individually) has a bytecode lowering. Statements that fail
// become escape hatches.
func (c *compiler) lowerable(s ast.Stmt) bool {
	switch n := s.(type) {
	case *ast.ExprStmt, *ast.If, *ast.Return, *ast.Block, *ast.While,
		*ast.DoWhile, *ast.For, *ast.ForIn, *ast.Labeled, *ast.Switch,
		*ast.Throw, *ast.FuncDecl, *ast.Empty:
		return true
	case *ast.VarDecl:
		for i := range n.Decls {
			d := &n.Decls[i]
			if d.Init != nil && !d.Ref.Valid() {
				// Unresolved initialized declaration: the dynamic define
				// semantics (set-else-define-here) have no opcode.
				return false
			}
		}
		return true
	case *ast.Break:
		return c.findBreak(n.Label) != nil
	case *ast.Continue:
		return c.findContinue(n.Label) != nil
	case *ast.Try:
		// finally needs completion-threading the tree-walker already has;
		// a catch clause without a resolved one-slot layout cannot build
		// its frame.
		return n.Finally == nil && (n.Catch == nil || n.CatchScope != nil)
	}
	return false
}

// ---------------------------------------------------------------------------
// Statements
// ---------------------------------------------------------------------------

func (c *compiler) stmt(s ast.Stmt) {
	if c.failed {
		return
	}
	if !c.lowerable(s) {
		c.escape(s)
		return
	}
	// Statement boundary: the tree-walker counts a step and charges one
	// work unit per executed statement node; OpStmt reproduces both (plus
	// the step-budget check).
	c.emitStmt()
	switch n := s.(type) {
	case *ast.ExprStmt:
		c.exprStmt(n.X)
	case *ast.If:
		c.emitChargeBranch()
		c.expr(n.Test)
		jf := c.emitJumpIfFalse()
		c.pop(1)
		c.stmt(n.Cons)
		if n.Alt != nil {
			j := c.emit(OpJump, -1, 0)
			c.patch(jf)
			c.stmt(n.Alt)
			c.patch(j)
		} else {
			c.patch(jf)
		}
	case *ast.Return:
		if n.Arg != nil {
			c.expr(n.Arg)
			c.emit(OpReturn, 0, 0)
			c.pop(1)
		} else {
			c.emit(OpReturnUndef, 0, 0)
		}
	case *ast.VarDecl:
		for i := range n.Decls {
			d := &n.Decls[i]
			if d.Init == nil || !d.Ref.Valid() {
				// Hoisting already created the slot; re-executing `var x`
				// must not reset it.
				continue
			}
			c.expr(d.Init)
			c.storeRef(d.Ref)
		}
	case *ast.Block:
		for _, inner := range n.Body {
			c.stmt(inner)
		}
	case *ast.While:
		c.compileWhile(n, nil)
	case *ast.DoWhile:
		c.compileDoWhile(n, nil)
	case *ast.For:
		c.compileFor(n, nil)
	case *ast.ForIn:
		c.compileForIn(n, nil)
	case *ast.Break:
		c.breakTo(n.Label)
	case *ast.Continue:
		c.continueTo(n.Label)
	case *ast.Labeled:
		c.labeled(n)
	case *ast.Switch:
		c.compileSwitch(n)
	case *ast.Throw:
		c.expr(n.Arg)
		c.emit(OpThrow, 0, 0)
		c.pop(1)
	case *ast.Try:
		c.compileTry(n)
	case *ast.FuncDecl, *ast.Empty:
		// Function declarations were installed at frame entry (FnDecls);
		// re-execution is a no-op, exactly as in the tree-walker.
	default:
		c.failed = true
	}
}

// escape embeds s as a tree-walker escape hatch with a jump table built
// from the enclosing construct stack.
func (c *compiler) escape(s ast.Stmt) {
	c.ch.Stmts = append(c.ch.Stmts, s)
	stmtIdx := int32(len(c.ch.Stmts) - 1)

	tab := make([]JumpTarget, len(c.ctxs))
	for i := range c.ctxs {
		cx := c.ctxs[len(c.ctxs)-1-i] // innermost first
		t := &tab[i]
		t.Labels = cx.labels
		t.Loop = cx.loop
		t.BreakPlain = cx.breakPlain
		t.BreakPC, t.ContPC = -1, -1
		fix := JumpFix{
			PopIters:    c.iterDepth - cx.iterDepth,
			LeaveScopes: c.scopeDepth - cx.scopeDepth,
			PopTries:    c.tryDepth - cx.tryDepth,
		}
		t.BreakFix, t.ContFix = fix, fix
		cx.breakRefs = append(cx.breakRefs, t)
		if cx.loop {
			if cx.contPC >= 0 {
				t.ContPC = int32(cx.contPC)
			} else {
				cx.contRefs = append(cx.contRefs, t)
			}
		}
	}
	c.ch.JumpTabs = append(c.ch.JumpTabs, tab)
	c.emit(OpExecStmt, stmtIdx, int32(len(c.ch.JumpTabs)-1))
}

// pushCtx enters a breakable construct.
func (c *compiler) pushCtx(labels []string, loop, breakPlain bool, contPC int) *ctx {
	cx := &ctx{
		labels: labels, loop: loop, breakPlain: breakPlain,
		iterDepth: c.iterDepth, scopeDepth: c.scopeDepth, tryDepth: c.tryDepth,
		contPC: contPC,
	}
	c.ctxs = append(c.ctxs, cx)
	return cx
}

// popCtx leaves the construct, patching break jumps (and escape-hatch
// break references) to the current pc.
func (c *compiler) popCtx(cx *ctx) {
	c.fuseBarrier = c.pc()
	c.ctxs = c.ctxs[:len(c.ctxs)-1]
	for _, at := range cx.breakJumps {
		c.patch(at)
	}
	for _, t := range cx.breakRefs {
		t.BreakPC = int32(c.pc())
	}
}

// setCont fixes the construct's continue target at the current pc, patching
// deferred continue jumps.
func (c *compiler) setCont(cx *ctx) {
	cx.contPC = c.target()
	for _, at := range cx.contJumps {
		c.patch(at)
	}
	for _, t := range cx.contRefs {
		t.ContPC = int32(cx.contPC)
	}
}

func (c *compiler) findBreak(label string) *ctx {
	for i := len(c.ctxs) - 1; i >= 0; i-- {
		cx := c.ctxs[i]
		if label == "" {
			if cx.breakPlain {
				return cx
			}
			continue
		}
		if hasLabel(cx.labels, label) {
			return cx
		}
	}
	return nil
}

func (c *compiler) findContinue(label string) *ctx {
	for i := len(c.ctxs) - 1; i >= 0; i-- {
		cx := c.ctxs[i]
		if !cx.loop {
			continue
		}
		if label == "" || hasLabel(cx.labels, label) {
			return cx
		}
	}
	return nil
}

func hasLabel(labels []string, l string) bool {
	for _, x := range labels {
		if x == l {
			return true
		}
	}
	return false
}

// emitUnwind emits the iterator pops, catch-frame pops, and handler pops a
// jump out to cx must perform, preserving the static stack depth for the
// fall-through path.
func (c *compiler) emitUnwind(cx *ctx) {
	for i := 0; i < c.iterDepth-cx.iterDepth; i++ {
		c.emit(OpPop, 0, 0)
	}
	for i := 0; i < c.scopeDepth-cx.scopeDepth; i++ {
		c.emit(OpLeaveScope, 0, 0)
	}
	for i := 0; i < c.tryDepth-cx.tryDepth; i++ {
		c.emit(OpPopTry, 0, 0)
	}
}

func (c *compiler) breakTo(label string) {
	cx := c.findBreak(label)
	c.emitUnwind(cx)
	cx.breakJumps = append(cx.breakJumps, c.emit(OpJump, -1, 0))
}

func (c *compiler) continueTo(label string) {
	cx := c.findContinue(label)
	c.emitUnwind(cx)
	if cx.contPC >= 0 {
		c.emit(OpJump, int32(cx.contPC), 0)
	} else {
		cx.contJumps = append(cx.contJumps, c.emit(OpJump, -1, 0))
	}
}

func (c *compiler) compileWhile(n *ast.While, labels []string) {
	head := c.target()
	c.expr(n.Test)
	jf := c.emitJumpIfFalse()
	c.pop(1)
	cx := c.pushCtx(labels, true, true, head)
	c.stmt(n.Body)
	c.emit(OpJump, int32(head), 0)
	c.patch(jf)
	c.popCtx(cx)
}

func (c *compiler) compileDoWhile(n *ast.DoWhile, labels []string) {
	body := c.target()
	cx := c.pushCtx(labels, true, true, -1)
	c.stmt(n.Body)
	c.setCont(cx)
	c.expr(n.Test)
	c.emit(OpJumpIfTrue, int32(body), 0)
	c.pop(1)
	c.popCtx(cx)
}

func (c *compiler) compileFor(n *ast.For, labels []string) {
	if n.Init != nil {
		c.stmt(n.Init)
	}
	head := c.target()
	jf := -1
	if n.Test != nil {
		c.expr(n.Test)
		jf = c.emitJumpIfFalse()
		c.pop(1)
	}
	cx := c.pushCtx(labels, true, true, -1)
	c.stmt(n.Body)
	c.setCont(cx)
	if n.Update != nil {
		c.exprStmt(n.Update)
	}
	c.emit(OpJump, int32(head), 0)
	if jf >= 0 {
		c.patch(jf)
	}
	c.popCtx(cx)
}

func (c *compiler) compileForIn(n *ast.ForIn, labels []string) {
	c.expr(n.Obj)
	c.emit(OpForInInit, 0, 0)
	// The iterator replaces the object on the stack and stays there for
	// the duration of the loop.
	c.iterDepth++
	head := c.target()
	exit := c.emit(OpForInNext, -1, 0)
	c.push(1) // the key
	if n.Ref.Valid() {
		c.storeRef(n.Ref)
	} else {
		c.emit(OpSetDyn, 0, c.name(n.Name))
		c.pop(1)
	}
	cx := c.pushCtx(labels, true, true, head)
	c.stmt(n.Body)
	c.emit(OpJump, int32(head), 0)
	// Exhausted (and break): pop the iterator.
	c.patch(exit)
	// Break targets the pop below, which discards this loop's iterator.
	c.iterDepth--
	c.popCtxAt(cx, c.pc())
	c.emit(OpPop, 0, 0)
	c.pop(1)
}

// popCtxAt is popCtx with an explicit break-target pc (the for-in exit
// pop, which sits before the jump-target-visible end of the loop).
func (c *compiler) popCtxAt(cx *ctx, breakPC int) {
	c.fuseBarrier = c.pc()
	c.ctxs = c.ctxs[:len(c.ctxs)-1]
	for _, at := range cx.breakJumps {
		c.ch.Code[at].A = int32(breakPC)
	}
	for _, t := range cx.breakRefs {
		t.BreakPC = int32(breakPC)
	}
}

func (c *compiler) labeled(n *ast.Labeled) {
	labels := []string{n.Label}
	body := n.Body
	for {
		inner, ok := body.(*ast.Labeled)
		if !ok {
			break
		}
		labels = append(labels, inner.Label)
		body = inner.Body
	}
	switch b := body.(type) {
	case *ast.While:
		c.compileWhile(b, labels)
	case *ast.DoWhile:
		c.compileDoWhile(b, labels)
	case *ast.For:
		c.compileFor(b, labels)
	case *ast.ForIn:
		c.compileForIn(b, labels)
	default:
		cx := c.pushCtx(labels, false, false, -1)
		c.stmt(body)
		c.popCtx(cx)
	}
}

func (c *compiler) compileSwitch(n *ast.Switch) {
	c.expr(n.Disc)
	// Test chain, in source order, skipping default: each test runs with
	// the discriminant still on the stack.
	type caseRef struct{ idx, jump int }
	var dispatch []caseRef
	for i, cs := range n.Cases {
		if cs.Test == nil {
			continue
		}
		c.emit(OpDup, 0, 0)
		c.push(1)
		c.expr(cs.Test)
		c.emit(OpStrictEq, 0, 0)
		c.pop(1)
		j := c.emit(OpJumpIfTrue, -1, 0)
		c.pop(1)
		dispatch = append(dispatch, caseRef{idx: i, jump: j})
	}
	// No test matched: drop the discriminant, enter the default case (or
	// leave).
	c.emit(OpPop, 0, 0)
	c.pop(1)
	noMatch := c.emit(OpJump, -1, 0)

	// Dispatch stubs: pop the discriminant, jump to the case body.
	bodyJumps := make(map[int]int, len(dispatch))
	for _, d := range dispatch {
		c.patch(d.jump)
		c.emit(OpPop, 0, 0)
		bodyJumps[d.idx] = c.emit(OpJump, -1, 0)
	}

	cx := c.pushCtx(nil, false, true, -1)
	defaultIdx := -1
	for i, cs := range n.Cases {
		if j, ok := bodyJumps[i]; ok {
			c.patch(j)
		}
		if cs.Test == nil {
			defaultIdx = i
			// noMatch lands here.
			c.patch(noMatch)
		}
		for _, inner := range cs.Body {
			c.stmt(inner)
		}
	}
	if defaultIdx < 0 {
		c.patch(noMatch)
	}
	c.popCtx(cx)
}

func (c *compiler) compileTry(n *ast.Try) {
	// The engine charges handler entry; exceptional-strategy instrumented
	// code pays this on every application.
	handler := c.emit(OpTry, -1, 0)
	c.tryDepth++
	if c.tryDepth > c.ch.MaxTries {
		c.ch.MaxTries = c.tryDepth
	}
	for _, inner := range n.Block.Body {
		c.stmt(inner)
	}
	c.emit(OpPopTry, 0, 0)
	c.tryDepth--
	end := c.emit(OpJump, -1, 0)
	if n.Catch != nil {
		// The unwinder pops the handler, restores the stack, pushes the
		// thrown value, and lands here.
		c.patch(handler)
		c.push(1) // the unwinder pushes the thrown value
		c.ch.Scopes = append(c.ch.Scopes, n.CatchScope)
		c.emit(OpEnterCatch, int32(len(c.ch.Scopes)-1), 0)
		c.pop(1)
		c.scopeDepth++
		for _, inner := range n.Catch.Body {
			c.stmt(inner)
		}
		c.emit(OpLeaveScope, 0, 0)
		c.scopeDepth--
	}
	c.patch(end)
}

// ---------------------------------------------------------------------------
// Expressions
// ---------------------------------------------------------------------------

// exprStmt compiles an expression in statement position, leaving nothing on
// the stack.
func (c *compiler) exprStmt(e ast.Expr) {
	switch n := e.(type) {
	case *ast.Assign:
		c.assign(n, false)
	case *ast.Update:
		c.update(n, false)
	case *ast.Seq:
		for _, x := range n.Exprs {
			c.exprStmt(x)
		}
	default:
		c.expr(e)
		c.emit(OpPop, 0, 0)
		c.pop(1)
	}
}

// expr compiles an expression, leaving exactly one value on the stack.
func (c *compiler) expr(e ast.Expr) {
	switch n := e.(type) {
	case *ast.Ident:
		c.loadIdent(n)
	case *ast.Number:
		c.emitConst(NumberConst(n.Value))
	case *ast.Str:
		c.emitConst(StringConst(n.Value))
	case *ast.Bool:
		if n.Value {
			c.emit(OpTrue, 0, 0)
		} else {
			c.emit(OpFalse, 0, 0)
		}
		c.push(1)
	case *ast.Null:
		c.emit(OpNull, 0, 0)
		c.push(1)
	case *ast.This:
		if n.Ref.Valid() {
			c.loadRef(n.Ref)
		} else {
			c.emit(OpThisDyn, 0, 0)
			c.push(1)
		}
	case *ast.NewTarget:
		if n.Ref.Valid() {
			c.loadRef(n.Ref)
		} else {
			c.emit(OpNewTargetDyn, 0, 0)
			c.push(1)
		}
	case *ast.Func:
		c.emit(OpClosure, c.fn(n), 0)
		c.push(1)
	case *ast.Array:
		for _, el := range n.Elems {
			if el == nil {
				// Elision: a hole is an undefined element here (arrays are
				// dense), exactly as in the tree-walker.
				c.emit(OpUndef, 0, 0)
				c.push(1)
				continue
			}
			c.expr(el)
		}
		c.emit(OpArray, int32(len(n.Elems)), 0)
		c.pop(len(n.Elems))
		c.push(1)
	case *ast.Object:
		c.emit(OpNewObject, 0, 0)
		c.push(1)
		for _, p := range n.Props {
			switch p.Kind {
			case ast.PropInit:
				c.expr(p.Value)
				c.emit(OpSetProp, c.name(p.Key), 0)
				c.pop(1)
			case ast.PropGet, ast.PropSet:
				fl, ok := p.Value.(*ast.Func)
				if !ok {
					c.failed = true
					return
				}
				c.ch.Accessors = append(c.ch.Accessors, Accessor{
					Name:   c.name(p.Key),
					Fn:     c.fn(fl),
					Setter: p.Kind == ast.PropSet,
				})
				c.emit(OpSetAccessor, int32(len(c.ch.Accessors)-1), 0)
			}
		}
	case *ast.Unary:
		c.unary(n)
	case *ast.Update:
		c.update(n, true)
	case *ast.Binary:
		// `x === <literal>` is the shape of every instrumented
		// mode-dispatch guard; fuse the constant load and compare (and,
		// for proved-global left sides, the load too).
		if n.Op == "===" {
			if k, ok := literalConst(n.R); ok {
				if id, isIdent := n.L.(*ast.Ident); isIdent && id.Ref.Global() {
					c.emit3(OpGlobalEqConst, int32(id.Site), c.name(id.Name), c.constant(k))
					c.push(1)
					return
				}
				c.expr(n.L)
				c.emit(OpStrictEqConst, c.constant(k), 0)
				return
			}
		}
		c.expr(n.L)
		c.expr(n.R)
		op, ok := binaryOps[n.Op]
		if !ok {
			c.failed = true
			return
		}
		c.emit(op, 0, 0)
		c.pop(1)
	case *ast.Logical:
		c.expr(n.L)
		var j int
		if n.Op == "&&" {
			j = c.emit(OpJumpIfFalsyKeep, -1, 0)
		} else {
			j = c.emit(OpJumpIfTruthyKeep, -1, 0)
		}
		c.pop(1)
		c.expr(n.R)
		c.patch(j)
	case *ast.Assign:
		c.assign(n, true)
	case *ast.Cond:
		c.expr(n.Test)
		jf := c.emitJumpIfFalse()
		c.pop(1)
		c.expr(n.Cons)
		j := c.emit(OpJump, -1, 0)
		c.pop(1) // the alternative re-pushes
		c.patch(jf)
		c.expr(n.Alt)
		c.patch(j)
	case *ast.Call:
		c.call(n)
	case *ast.New:
		c.expr(n.Callee)
		for _, a := range n.Args {
			c.expr(a)
		}
		c.emit(OpNew, int32(len(n.Args)), 0)
		c.pop(len(n.Args) + 1)
		c.push(1)
	case *ast.Member:
		if !n.Computed {
			// Member reads off a local are the hottest property accesses
			// in instrumented code (frame records, runtime state).
			if slot, ok := localSlot(n.X); ok {
				c.emit3(OpGetLocalMember, slot, c.name(n.Name), int32(n.Site))
				c.push(1)
				return
			}
			c.expr(n.X)
			c.emit(OpGetMember, c.name(n.Name), int32(n.Site))
			return
		}
		c.expr(n.X)
		c.expr(n.Index)
		c.emit(OpGetIndex, 0, 0)
		c.pop(2)
		c.push(1)
	case *ast.Seq:
		if len(n.Exprs) == 0 {
			c.emit(OpUndef, 0, 0)
			c.push(1)
			return
		}
		for i, x := range n.Exprs {
			c.expr(x)
			if i < len(n.Exprs)-1 {
				c.emit(OpPop, 0, 0)
				c.pop(1)
			}
		}
	default:
		c.failed = true
	}
}

var binaryOps = map[string]Op{
	"+": OpAdd, "-": OpSub, "*": OpMul, "/": OpDiv, "%": OpMod,
	"**": OpPow, "<": OpLt, ">": OpGt, "<=": OpLe, ">=": OpGe,
	"==": OpEq, "!=": OpNe, "===": OpStrictEq, "!==": OpStrictNe,
	"&": OpBitAnd, "|": OpBitOr, "^": OpBitXor, "<<": OpShl, ">>": OpShr,
	">>>": OpUshr, "instanceof": OpInstanceof, "in": OpIn,
}

func (c *compiler) loadRef(r ast.Ref) {
	if r.Hops() == 0 {
		n := len(c.ch.Code)
		if n > c.fuseBarrier && n > 0 {
			if last := &c.ch.Code[n-1]; last.Op == OpStmt {
				last.Op = OpStmtGetLocal
				last.B, last.C = last.A, last.B
				last.A = int32(r.Slot())
				c.push(1)
				return
			}
		}
		c.emit(OpGetLocal, int32(r.Slot()), 0)
	} else {
		c.emit(OpGetRef, int32(uint32(r)), 0)
	}
	c.push(1)
}

func (c *compiler) storeRef(r ast.Ref) {
	if r.Hops() == 0 {
		c.emitSetLocal(int32(r.Slot()))
	} else {
		c.emit(OpSetRef, int32(uint32(r)), 0)
	}
	c.pop(1)
}

func (c *compiler) loadIdent(n *ast.Ident) {
	switch {
	case n.Ref.Valid():
		c.loadRef(n.Ref)
	case n.Ref.Global():
		c.emit(OpGetGlobal, int32(n.Site), c.name(n.Name))
		c.push(1)
	default:
		c.emit(OpGetDyn, 0, c.name(n.Name))
		c.push(1)
	}
}

// storeIdent writes the top of stack into an identifier reference (popping
// it), with the tree-walker's implicit-global semantics.
func (c *compiler) storeIdent(n *ast.Ident) {
	switch {
	case n.Ref.Valid():
		c.storeRef(n.Ref)
	case n.Ref.Global():
		c.emit(OpSetGlobal, int32(n.Site), c.name(n.Name))
		c.pop(1)
	default:
		c.emit(OpSetDyn, 0, c.name(n.Name))
		c.pop(1)
	}
}

func (c *compiler) unary(n *ast.Unary) {
	switch n.Op {
	case "typeof":
		if id, ok := n.X.(*ast.Ident); ok && !id.Ref.Valid() {
			// typeof tolerates unresolvable names.
			if id.Ref.Global() {
				c.emit(OpTypeofGlobal, int32(id.Site), c.name(id.Name))
			} else {
				c.emit(OpTypeofDyn, 0, c.name(id.Name))
			}
			c.push(1)
			return
		}
		c.expr(n.X)
		c.emit(OpTypeofVal, 0, 0)
	case "delete":
		m, ok := n.X.(*ast.Member)
		if !ok {
			// delete of a non-reference does not evaluate its operand.
			c.emit(OpTrue, 0, 0)
			c.push(1)
			return
		}
		c.expr(m.X)
		if m.Computed {
			c.expr(m.Index)
			c.emit(OpDeleteIndex, 0, 0)
			c.pop(2)
		} else {
			c.emit(OpDeleteMember, c.name(m.Name), 0)
			c.pop(1)
		}
		c.push(1)
	case "!":
		c.expr(n.X)
		c.emit(OpNot, 0, 0)
	case "-":
		c.expr(n.X)
		c.emit(OpNeg, 0, 0)
	case "+":
		c.expr(n.X)
		c.emit(OpToNumber, 0, 0)
	case "~":
		c.expr(n.X)
		c.emit(OpBitNot, 0, 0)
	case "void":
		c.expr(n.X)
		c.emit(OpVoid, 0, 0)
	default:
		c.failed = true
	}
}

func (c *compiler) update(n *ast.Update, want bool) {
	switch t := n.X.(type) {
	case *ast.Ident:
		c.loadIdent(t)
		c.emit(OpToNumber, 0, 0)
		if want && !n.Prefix {
			c.emit(OpDup, 0, 0)
			c.push(1)
		}
		c.emitConst(NumberConst(1))
		if n.Op == "++" {
			c.emit(OpAdd, 0, 0)
		} else {
			c.emit(OpSub, 0, 0)
		}
		c.pop(1)
		if want && n.Prefix {
			c.emit(OpDup, 0, 0)
			c.push(1)
		}
		c.storeIdent(t)
	case *ast.Member:
		c.memberRefDup(t)
		c.emit(OpToNumber, 0, 0)
		if want && !n.Prefix {
			if t.Computed {
				c.emit(OpDupX2, 0, 0)
			} else {
				c.emit(OpDupX1, 0, 0)
			}
			c.push(1)
		}
		c.emitConst(NumberConst(1))
		if n.Op == "++" {
			c.emit(OpAdd, 0, 0)
		} else {
			c.emit(OpSub, 0, 0)
		}
		c.pop(1)
		c.memberSetKeep(t)
		if !want || !n.Prefix {
			// Drop the written value; for a wanted postfix result the
			// pre-increment number was tucked underneath by the DupX above
			// and becomes the top of stack.
			c.emit(OpPop, 0, 0)
			c.pop(1)
		}
	default:
		c.failed = true
	}
}

// memberRefDup evaluates a member reference once (base, and for computed
// references the stringified-at-most-once key), duplicates it, and loads
// the current value: ... → [base (key) value].
func (c *compiler) memberRefDup(m *ast.Member) {
	c.expr(m.X)
	if m.Computed {
		c.expr(m.Index)
		c.emit(OpToPropKey, 0, 0)
		c.emit(OpDup2, 0, 0)
		c.push(2)
		c.emit(OpGetIndex, 0, 0)
		c.pop(2)
		c.push(1)
	} else {
		c.emit(OpDup, 0, 0)
		c.push(1)
		c.emit(OpGetMember, c.name(m.Name), int32(m.Site))
		c.pop(1)
		c.push(1)
	}
}

// memberSetKeep writes [base (key) v] → [v] through the reference.
func (c *compiler) memberSetKeep(m *ast.Member) {
	if m.Computed {
		c.emit(OpSetIndexKeep, 0, 0)
		c.pop(3)
		c.push(1)
	} else {
		c.emit(OpSetMemberKeep, c.name(m.Name), int32(m.Site))
		c.pop(2)
		c.push(1)
	}
}

func (c *compiler) assign(n *ast.Assign, want bool) {
	if n.Op == "=" {
		// Plain assignment evaluates the right-hand side before the target
		// reference, as the tree-walker does.
		c.expr(n.Value)
		if want {
			c.emit(OpDup, 0, 0)
			c.push(1)
		}
		switch t := n.Target.(type) {
		case *ast.Ident:
			c.storeIdent(t)
		case *ast.Member:
			c.expr(t.X)
			if t.Computed {
				c.expr(t.Index)
				c.emit(OpToPropKey, 0, 0)
				c.emit(OpSetIndex, 0, 0)
				c.pop(3)
			} else {
				c.emit(OpSetMember, c.name(t.Name), int32(t.Site))
				c.pop(2)
			}
		default:
			c.failed = true
		}
		return
	}
	// Compound assignment: evaluate the target reference once.
	binOp := n.Op[:len(n.Op)-1]
	op, ok := binaryOps[binOp]
	if !ok {
		c.failed = true
		return
	}
	switch t := n.Target.(type) {
	case *ast.Ident:
		c.loadIdent(t)
		c.expr(n.Value)
		c.emit(op, 0, 0)
		c.pop(1)
		if want {
			c.emit(OpDup, 0, 0)
			c.push(1)
		}
		c.storeIdent(t)
	case *ast.Member:
		c.memberRefDup(t)
		c.expr(n.Value)
		c.emit(op, 0, 0)
		c.pop(1)
		c.memberSetKeep(t)
		if !want {
			c.emit(OpPop, 0, 0)
			c.pop(1)
		}
	default:
		c.failed = true
	}
}

func (c *compiler) call(n *ast.Call) {
	switch callee := n.Callee.(type) {
	case *ast.Member:
		m := callee
		if m.Computed {
			c.expr(m.X)
			c.expr(m.Index)
			c.emit(OpGetMethodIndex, 0, 0)
			c.pop(2)
			c.push(2)
		} else if slot, ok := localSlot(m.X); ok {
			c.emit3(OpGetLocalMethod, slot, c.name(m.Name), int32(m.Site))
			c.push(2)
		} else {
			c.expr(m.X)
			c.emit(OpGetMethod, c.name(m.Name), int32(m.Site))
			c.pop(1)
			c.push(2)
		}
	case *ast.Ident:
		// Plain calls of globals (runtime primitives) and locals
		// (continuation thunks) fuse the `this` push with the callee load;
		// the ubiquitous zero-argument forms fuse the whole call.
		switch {
		case callee.Ref.Global():
			if len(n.Args) == 0 {
				c.emit(OpCall0Global, int32(callee.Site), c.name(callee.Name))
				c.push(1)
				return
			}
			c.emit(OpCalleeGlobal, int32(callee.Site), c.name(callee.Name))
			c.push(2)
		case callee.Ref.Valid() && callee.Ref.Hops() == 0:
			if len(n.Args) == 0 {
				c.emit(OpCall0Local, int32(callee.Ref.Slot()), 0)
				c.push(1)
				return
			}
			c.emit(OpCalleeLocal, int32(callee.Ref.Slot()), 0)
			c.push(2)
		default:
			c.emit(OpUndef, 0, 0)
			c.push(1)
			c.expr(n.Callee)
		}
	default:
		c.emit(OpUndef, 0, 0)
		c.push(1)
		c.expr(n.Callee)
	}
	for _, a := range n.Args {
		c.expr(a)
	}
	c.emit(OpCall, int32(len(n.Args)), 0)
	c.pop(len(n.Args) + 2)
	c.push(1)
}

// localSlot reports whether e is a resolved reference into the current
// frame (hops 0), returning its slot.
func localSlot(e ast.Expr) (int32, bool) {
	id, ok := e.(*ast.Ident)
	if !ok || !id.Ref.Valid() || id.Ref.Hops() != 0 {
		return 0, false
	}
	return int32(id.Ref.Slot()), true
}

// literalConst extracts the constant value of a literal operand, if e is
// one.
func literalConst(e ast.Expr) (Const, bool) {
	switch n := e.(type) {
	case *ast.Number:
		return NumberConst(n.Value), true
	case *ast.Str:
		return StringConst(n.Value), true
	case *ast.Bool:
		return BoolConst(n.Value), true
	}
	return Const{}, false
}
