// Package bytecode lowers resolved AST functions to a flat instruction
// stream. It is the third coordinate-addressing pass of the interpreter
// substrate: PR 1 replaced by-name scope lookups with (hops, slot) Refs,
// PR 2 replaced by-name property lookups with shape-indexed inline-cache
// sites, and this package replaces the tree-walker's recursive switch
// dispatch with a linear fetch–execute loop over those same coordinates.
// Per-instruction dispatch is also the layer production engines instrument
// for dynamic analyses (cf. information-flow control in WebKit's JavaScript
// bytecode), which is what the ROADMAP's follow-on analyses want.
//
// The compiler is strictly an acceleration layer, never a semantic one: it
// consumes the exact tree the tree-walker would execute — after
// internal/resolve has annotated it — and every construct it cannot lower
// (currently try/finally and the rare unresolved declaration) is embedded
// as an escape-hatch instruction that hands the original AST statement back
// to the tree-walker, running in the same environment frame. A function the
// compiler cannot handle at all simply yields no chunk and stays on the
// tree-walker. Program semantics are identical either way; the differential
// harness in internal/core enforces exactly that.
//
// The package knows nothing about the interpreter's runtime types: operand
// meanings are documented here, but execution — including the shared
// inline-cache arrays, engine cost charging, and environment frames — lives
// in internal/interp's dispatch loop.
package bytecode

import (
	"fmt"

	"repro/internal/ast"
)

// Op is a bytecode opcode.
type Op uint8

// Opcodes. Stack effects are written [before] → [after], top of stack on
// the right.
const (
	// OpNop does nothing (alignment/patching aid).
	OpNop Op = iota

	// --- constants and stack shuffling ---

	// OpConst pushes Consts[A].
	OpConst
	// OpUndef pushes undefined.
	OpUndef
	// OpNull pushes null.
	OpNull
	// OpTrue pushes true.
	OpTrue
	// OpFalse pushes false.
	OpFalse
	// OpPop discards the top of stack.
	OpPop
	// OpDup duplicates the top: [a] → [a a].
	OpDup
	// OpDup2 duplicates the top pair: [a b] → [a b a b].
	OpDup2
	// OpDupX1 inserts a copy of the top under the next: [a b] → [b a b].
	OpDupX1
	// OpDupX2 inserts a copy of the top under the next two:
	// [a b c] → [c a b c].
	OpDupX2

	// --- variables ---

	// OpGetLocal pushes slot A of the current frame.
	OpGetLocal
	// OpSetLocal pops into slot A of the current frame.
	OpSetLocal
	// OpGetRef pushes the value at packed Ref A (hops > 0).
	OpGetRef
	// OpSetRef pops into packed Ref A.
	OpSetRef
	// OpGetGlobal pushes the proved-global binding Names[B], caching the
	// global cell at inline-cache site A; ReferenceError when unbound.
	OpGetGlobal
	// OpSetGlobal pops into the proved-global binding Names[B] (site A),
	// creating an implicit global when unbound.
	OpSetGlobal
	// OpGetDyn pushes the dynamically resolved binding Names[B];
	// ReferenceError when unbound.
	OpGetDyn
	// OpSetDyn pops into the nearest binding of Names[B], creating an
	// implicit global when unbound.
	OpSetDyn
	// OpTypeofGlobal pushes typeof of the proved-global Names[B] (site A),
	// "undefined" when unbound.
	OpTypeofGlobal
	// OpTypeofDyn pushes typeof of the dynamic binding Names[B],
	// "undefined" when unbound.
	OpTypeofDyn
	// OpThisDyn pushes the dynamic `this` binding (undefined when absent).
	OpThisDyn
	// OpNewTargetDyn pushes the dynamic `new.target` binding.
	OpNewTargetDyn

	// --- objects and properties ---

	// OpClosure pushes a function object for Funcs[A] closed over the
	// current environment.
	OpClosure
	// OpArray pops A elements and pushes an array of them.
	OpArray
	// OpNewObject pushes a fresh plain object.
	OpNewObject
	// OpSetProp pops a value and defines it as own property Names[A] of
	// the object left on top: [obj v] → [obj].
	OpSetProp
	// OpSetAccessor installs Accessors[A] (an object-literal getter or
	// setter) on the object on top of the stack: [obj] → [obj].
	OpSetAccessor
	// OpGetMember pops the base and pushes base[Names[A]] through
	// inline-cache site B.
	OpGetMember
	// OpSetMember pops the base then a value and writes
	// base[Names[A]] = value through site B: [v base] → [].
	OpSetMember
	// OpSetMemberKeep pops a value then the base, writes through site B,
	// and pushes the value back: [base v] → [v]. Compound assignments and
	// updates, which evaluate the base before the value, use it.
	OpSetMemberKeep
	// OpGetMethod pops the base and pushes the base back followed by
	// base[Names[A]] (site B) — the receiver/callee pair of a method call:
	// [base] → [base fn].
	OpGetMethod
	// OpGetMethodIndex is OpGetMethod for computed keys:
	// [base idx] → [base fn].
	OpGetMethodIndex
	// OpGetIndex pops an index then the base and pushes base[index].
	OpGetIndex
	// OpSetIndex writes an indexed element: [v base idx] → [].
	OpSetIndex
	// OpSetIndexKeep writes an indexed element keeping the value:
	// [base idx v] → [v].
	OpSetIndexKeep
	// OpToPropKey stringifies an object index eagerly (ToPrimitive may run
	// user code, and compound references must run it exactly once);
	// primitive indexes pass through untouched.
	OpToPropKey
	// OpDeleteMember pops the base and deletes base[Names[A]], pushing
	// true.
	OpDeleteMember
	// OpDeleteIndex pops an index then the base, deletes base[index], and
	// pushes true.
	OpDeleteIndex

	// --- calls ---

	// OpCall calls a function with A arguments: [this fn a1..aA] → [ret].
	OpCall
	// OpNew constructs with A arguments: [fn a1..aA] → [ret].
	OpNew
	// OpReturn pops the return value and leaves the function.
	OpReturn
	// OpReturnUndef leaves the function returning undefined.
	OpReturnUndef

	// --- control flow ---

	// OpJump continues at pc A.
	OpJump
	// OpJumpIfFalse pops a value and jumps to A when it is falsy.
	OpJumpIfFalse
	// OpJumpIfTrue pops a value and jumps to A when it is truthy.
	OpJumpIfTrue
	// OpJumpIfFalsyKeep jumps to A keeping the value when falsy, else pops
	// (the && operator).
	OpJumpIfFalsyKeep
	// OpJumpIfTruthyKeep jumps to A keeping the value when truthy, else
	// pops (the || operator).
	OpJumpIfTruthyKeep

	// --- operators ---

	OpAdd
	OpSub
	OpMul
	OpDiv
	OpMod
	OpPow
	OpLt
	OpGt
	OpLe
	OpGe
	OpEq
	OpNe
	OpStrictEq
	OpStrictNe
	OpBitAnd
	OpBitOr
	OpBitXor
	OpShl
	OpShr
	OpUshr
	OpInstanceof
	OpIn
	OpNot
	OpNeg
	OpToNumber
	OpBitNot
	OpVoid
	OpTypeofVal

	// --- statements, exceptions, iteration ---

	// OpStmt marks A consecutive statement boundaries with no code between
	// them: A interpreter steps, A work units, and the step-budget check —
	// the bytecode engine's per-statement accounting must match the
	// tree-walker's. B != 0 additionally charges BranchCost (the statement
	// is an if whose test runs next).
	OpStmt
	// OpChargeBranch charges the engine's BranchCost (an if statement's
	// test is about to run).
	OpChargeBranch
	// OpThrow pops a value and raises it as an exception.
	OpThrow
	// OpTry enters a try/catch region: a handler at pc A guards until the
	// matching OpPopTry. The thrown value is pushed before entering the
	// handler.
	OpTry
	// OpPopTry leaves a try/catch region normally.
	OpPopTry
	// OpEnterCatch pops the thrown value into slot 0 of a fresh catch
	// frame laid out by Scopes[A]; the frame becomes current.
	OpEnterCatch
	// OpLeaveScope pops the current catch frame.
	OpLeaveScope
	// OpForInInit pops a value and pushes a property-name iterator over it
	// (empty for non-objects).
	OpForInInit
	// OpForInNext pushes the iterator's next key, or jumps to A when
	// exhausted (the iterator stays on the stack; the code at A pops it).
	OpForInNext
	// OpExecStmt executes Stmts[A] with the tree-walker in the current
	// environment — the escape hatch for constructs the compiler does not
	// lower (try/finally, unresolved declarations). Abrupt completions are
	// translated back into bytecode control flow through JumpTabs[B].
	OpExecStmt

	// --- fused instructions ---
	//
	// Superinstructions for the sequences instrumented code executes on
	// every mode-dispatch guard and continuation thunk; each replaces two
	// to three plain instructions with one dispatch. The compiler emits
	// them from AST shape alone, so they change no semantics.

	// OpStrictEqConst pushes stack-top === Consts[A] (replacing
	// OpConst+OpStrictEq).
	OpStrictEqConst
	// OpGlobalEqConst pushes <global Names[B], site A> === Consts[C] —
	// the `$mode === "..."` guard at the top of every instrumented
	// function and loop.
	OpGlobalEqConst
	// OpGetLocalMember pushes slot A's member Names[B] through site C.
	OpGetLocalMember
	// OpGetLocalMethod pushes slot A and its member Names[B] (site C) —
	// the receiver/callee pair of a method call on a local.
	OpGetLocalMethod
	// OpCalleeGlobal pushes undefined (the `this` of a plain call) and
	// the proved-global Names[B] (site A).
	OpCalleeGlobal
	// OpCalleeLocal pushes undefined and slot A.
	OpCalleeLocal
	// OpCall0Global calls the proved-global Names[B] (site A) with no
	// arguments and undefined `this`, pushing the result — the shape of
	// every `$suspend()` yield probe.
	OpCall0Global
	// OpCall0Local calls slot A with no arguments and undefined `this`,
	// pushing the result — the shape of every continuation-thunk call.
	OpCall0Local
	// OpJumpGlobalNeConst jumps to A when <global, site B> !== Consts[C] —
	// the complete `if ($mode === "...")` guard in one dispatch. The
	// global's name, needed only on a cache miss, lives in
	// GuardNames[pc of this instruction].
	OpJumpGlobalNeConst
	// OpConstSetLocal stores Consts[A] into slot B.
	OpConstSetLocal
	// OpClosureSetLocal stores a closure of Funcs[A] into slot B — the
	// per-call `$locals`/`$reenter` thunk assignment.
	OpClosureSetLocal
	// OpSetLocalStmt stores into slot A, then marks B statement
	// boundaries (C != 0 adds the BranchCost charge) — the ubiquitous
	// assignment-then-next-statement sequence.
	OpSetLocalStmt
	// OpJumpIfFalseStmt pops a value and jumps to A when falsy; on the
	// fall-through path it marks B statement boundaries (C != 0 adds
	// BranchCost).
	OpJumpIfFalseStmt
	// OpStmtGetLocal marks B statement boundaries (C != 0 adds
	// BranchCost), then pushes slot A.
	OpStmtGetLocal
	// OpStmtConst marks B statement boundaries (C != 0 adds BranchCost),
	// then pushes Consts[A].
	OpStmtConst
)

// Instr is one instruction. A, B, and C are opcode-specific operands: pc
// targets, constant/name/function indexes, packed Refs, inline-cache sites,
// or argument counts.
type Instr struct {
	Op      Op
	A, B, C int32
}

// ConstKind discriminates a compiler constant's payload.
type ConstKind uint8

// Constant kinds. Undefined and null have dedicated opcodes (OpUndef,
// OpNull), so they normally never reach the pool; the kinds exist so a
// Const zero value is still well-formed.
const (
	ConstUndefined ConstKind = iota
	ConstNull
	ConstBool
	ConstNumber
	ConstString
)

// Const is one constant-pool entry: a typed literal with no boxed
// representation, so the execution engine can convert the pool to its own
// value representation once per chunk instead of re-boxing per fetch.
// Bool payloads ride in Num (0/1). The struct is comparable, which the
// compiler's dedup map relies on.
type Const struct {
	Kind ConstKind
	Num  float64
	Str  string
}

// NumberConst builds a number constant.
func NumberConst(f float64) Const { return Const{Kind: ConstNumber, Num: f} }

// StringConst builds a string constant.
func StringConst(s string) Const { return Const{Kind: ConstString, Str: s} }

// BoolConst builds a boolean constant.
func BoolConst(b bool) Const {
	if b {
		return Const{Kind: ConstBool, Num: 1}
	}
	return Const{Kind: ConstBool}
}

// display renders a constant for disassembly.
func (c Const) display() string {
	switch c.Kind {
	case ConstNumber:
		return fmt.Sprintf("%v", c.Num)
	case ConstString:
		return fmt.Sprintf("%q", c.Str)
	case ConstBool:
		if c.Num != 0 {
			return "true"
		}
		return "false"
	case ConstNull:
		return "null"
	}
	return "undefined"
}

// Accessor describes one getter or setter of an object literal.
type Accessor struct {
	Name   int32 // Names index of the property key
	Fn     int32 // Funcs index of the accessor function literal
	Setter bool
}

// JumpTarget is one enclosing breakable construct visible at an escape-
// hatch instruction, with everything the dispatch loop needs to translate a
// break/continue completion into the jump the compiler would have emitted:
// target pcs plus the iterator pops, catch-scope pops, and handler pops the
// jump must perform first.
type JumpTarget struct {
	Labels     []string // labels naming this construct ("" never appears)
	Loop       bool     // accepts continue (labeled or not)
	BreakPlain bool     // accepts unlabeled break (loops and switches)
	BreakPC    int32
	ContPC     int32 // -1 for non-loop targets
	BreakFix   JumpFix
	ContFix    JumpFix
}

// JumpFix is the unwinding a translated jump performs before continuing.
type JumpFix struct {
	PopIters    int // for-in iterators to pop off the value stack
	LeaveScopes int // catch frames to leave
	PopTries    int // try handlers to pop
}

// Chunk is the compiled form of one function body. The caller-side frame
// protocol (parameter slots, this/new.target/arguments, hoisted function
// declarations) is unchanged from the tree-walker: internal/interp sets up
// the environment exactly as before and then either walks the tree or runs
// the chunk.
type Chunk struct {
	Fn   *ast.Func
	Code []Instr

	Consts    []Const          // typed literal constants
	Names     []string         // property and global names
	Funcs     []*ast.Func      // nested function literals, OpClosure operands
	Scopes    []*ast.ScopeInfo // catch-clause frame layouts
	Accessors []Accessor       // object-literal accessor properties
	Stmts     []ast.Stmt       // escape-hatch statements (OpExecStmt)
	JumpTabs  [][]JumpTarget   // per escape-hatch site, innermost first

	// MaxStack is the exact operand-stack high-water mark; the dispatch
	// loop carves a window of this size from its stack arena.
	MaxStack int
	// MaxTries is the try-handler high-water mark.
	MaxTries int

	// GuardNames maps the pc of an OpJumpGlobalNeConst to the Names index
	// of its global, consulted only on an inline-cache miss.
	GuardNames map[int32]int32
}

// opNames is the disassembly table.
var opNames = [...]string{
	OpNop: "nop", OpConst: "const", OpUndef: "undef", OpNull: "null",
	OpTrue: "true", OpFalse: "false", OpPop: "pop", OpDup: "dup",
	OpDup2: "dup2", OpDupX1: "dupx1", OpDupX2: "dupx2",
	OpGetLocal: "getlocal", OpSetLocal: "setlocal",
	OpGetRef: "getref", OpSetRef: "setref", OpGetGlobal: "getglobal",
	OpSetGlobal: "setglobal", OpGetDyn: "getdyn", OpSetDyn: "setdyn",
	OpTypeofGlobal: "typeofglobal", OpTypeofDyn: "typeofdyn",
	OpThisDyn: "thisdyn", OpNewTargetDyn: "newtargetdyn",
	OpClosure: "closure", OpArray: "array", OpNewObject: "newobject",
	OpSetProp: "setprop", OpSetAccessor: "setaccessor",
	OpGetMember: "getmember", OpSetMember: "setmember",
	OpSetMemberKeep: "setmemberkeep", OpGetMethod: "getmethod",
	OpGetIndex: "getindex", OpSetIndex: "setindex",
	OpSetIndexKeep: "setindexkeep", OpToPropKey: "topropkey",
	OpGetMethodIndex: "getmethodindex",
	OpDeleteMember:   "delmember", OpDeleteIndex: "delindex",
	OpCall: "call", OpNew: "new", OpReturn: "return",
	OpReturnUndef: "returnundef", OpJump: "jump",
	OpJumpIfFalse: "jumpfalse", OpJumpIfTrue: "jumptrue",
	OpJumpIfFalsyKeep: "jumpfalsykeep", OpJumpIfTruthyKeep: "jumptruthykeep",
	OpAdd: "add", OpSub: "sub", OpMul: "mul", OpDiv: "div", OpMod: "mod",
	OpPow: "pow", OpLt: "lt", OpGt: "gt", OpLe: "le", OpGe: "ge",
	OpEq: "eq", OpNe: "ne", OpStrictEq: "stricteq", OpStrictNe: "strictne",
	OpBitAnd: "band", OpBitOr: "bor", OpBitXor: "bxor", OpShl: "shl",
	OpShr: "shr", OpUshr: "ushr", OpInstanceof: "instanceof", OpIn: "in",
	OpNot: "not", OpNeg: "neg", OpToNumber: "tonumber", OpBitNot: "bitnot",
	OpVoid: "void", OpTypeofVal: "typeofval", OpStmt: "stmt",
	OpChargeBranch: "chargebranch", OpThrow: "throw", OpTry: "try",
	OpPopTry: "poptry", OpEnterCatch: "entercatch",
	OpLeaveScope: "leavescope", OpForInInit: "forininit",
	OpForInNext: "forinnext", OpExecStmt: "execstmt",
	OpStrictEqConst: "stricteqconst", OpGlobalEqConst: "globaleqconst",
	OpGetLocalMember: "getlocalmember", OpGetLocalMethod: "getlocalmethod",
	OpCalleeGlobal: "calleeglobal", OpCalleeLocal: "calleelocal",
	OpCall0Global: "call0global", OpCall0Local: "call0local",
	OpJumpGlobalNeConst: "jumpglobalneconst", OpConstSetLocal: "constsetlocal",
	OpClosureSetLocal: "closuresetlocal", OpSetLocalStmt: "setlocalstmt",
	OpJumpIfFalseStmt: "jumpfalsestmt", OpStmtGetLocal: "stmtgetlocal",
	OpStmtConst: "stmtconst",
}

// String returns the opcode's mnemonic.
func (op Op) String() string {
	if int(op) < len(opNames) && opNames[op] != "" {
		return opNames[op]
	}
	return fmt.Sprintf("op(%d)", uint8(op))
}

// Disassemble renders the chunk as one instruction per line, for tests and
// debugging.
func (c *Chunk) Disassemble() string {
	var b []byte
	for pc, ins := range c.Code {
		b = append(b, fmt.Sprintf("%4d  %-14s", pc, ins.Op)...)
		switch ins.Op {
		case OpConst:
			b = append(b, " "+c.Consts[ins.A].display()...)
		case OpGetMember, OpSetMember, OpSetMemberKeep, OpGetMethod,
			OpDeleteMember, OpSetProp:
			b = append(b, fmt.Sprintf(" %q", c.Names[ins.A])...)
		case OpGetGlobal, OpSetGlobal, OpTypeofGlobal, OpGetDyn, OpSetDyn,
			OpTypeofDyn, OpCalleeGlobal, OpCall0Global:
			b = append(b, fmt.Sprintf(" %q", c.Names[ins.B])...)
		case OpStrictEqConst:
			b = append(b, " "+c.Consts[ins.A].display()...)
		case OpGlobalEqConst:
			b = append(b, fmt.Sprintf(" %q %s", c.Names[ins.B], c.Consts[ins.C].display())...)
		case OpGetLocalMember, OpGetLocalMethod:
			b = append(b, fmt.Sprintf(" %d %q", ins.A, c.Names[ins.B])...)
		case OpGetLocal, OpSetLocal, OpCall, OpNew, OpArray, OpClosure,
			OpJump, OpJumpIfFalse, OpJumpIfTrue, OpJumpIfFalsyKeep,
			OpJumpIfTruthyKeep, OpTry, OpForInNext, OpExecStmt,
			OpEnterCatch, OpSetAccessor:
			b = append(b, fmt.Sprintf(" %d", ins.A)...)
		case OpGetRef, OpSetRef:
			r := ast.Ref(uint32(ins.A))
			b = append(b, fmt.Sprintf(" (%d,%d)", r.Hops(), r.Slot())...)
		}
		b = append(b, '\n')
	}
	return string(b)
}
