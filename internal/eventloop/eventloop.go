// Package eventloop is the browser event loop substrate: a single-threaded
// FIFO macrotask queue with setTimeout-style deferred tasks and a pluggable
// clock.
//
// Stopify's execution model is built on returning to this loop: instrumented
// programs periodically capture their continuation, enqueue its resumption,
// and return, so that other events (a Pause button, a timer) can run in
// between (§2, §5.1). The loop also records how long each task ran, which is
// exactly the "time between yields" responsiveness metric of Figure 2c.
package eventloop

import (
	"sort"
	"sync"
	"time"
)

// Clock supplies the loop's notion of time in milliseconds. A virtual clock
// makes estimator and responsiveness tests deterministic.
type Clock interface {
	// Now returns the current time in milliseconds.
	Now() float64
	// Advance moves time forward; real clocks sleep, virtual clocks jump.
	Advance(ms float64)
}

// RealClock is wall-clock time.
type RealClock struct{ start time.Time }

// NewRealClock returns a Clock backed by the system timer.
func NewRealClock() *RealClock { return &RealClock{start: time.Now()} }

// Now implements Clock.
func (c *RealClock) Now() float64 { return float64(time.Since(c.start)) / float64(time.Millisecond) }

// Advance implements Clock by sleeping.
func (c *RealClock) Advance(ms float64) { time.Sleep(time.Duration(ms * float64(time.Millisecond))) }

// VirtualClock is a manually advanced clock.
type VirtualClock struct{ t float64 }

// NewVirtualClock returns a virtual clock starting at 0 ms.
func NewVirtualClock() *VirtualClock { return &VirtualClock{} }

// Now implements Clock.
func (c *VirtualClock) Now() float64 { return c.t }

// Advance implements Clock.
func (c *VirtualClock) Advance(ms float64) { c.t += ms }

// Task is a unit of work on the loop.
type Task func()

type queued struct {
	fn  Task
	due float64
	seq int
}

// Loop is a macrotask queue with single-threaded execution semantics: one
// goroutine at a time pumps it (Run/RunOne), exactly like the browser's
// main thread. The queue itself is mutex-guarded so that *other* goroutines
// may Post, Stop, or inspect it concurrently — that is what makes external
// Pause/Resume/Kill on a running program goroutine-safe, and what lets the
// supervisor's control plane talk to guests owned by worker goroutines.
type Loop struct {
	Clock Clock

	mu      sync.Mutex
	pending []queued
	seq     int
	stopped bool

	// TaskDurations records how long each executed task ran, in ms. In
	// browser terms this is how long the page was unresponsive, i.e. the
	// interval between yields (Figure 2c / Figure 7).
	TaskDurations []float64

	// OnTurn, if set, is invoked between tasks; the webide example uses it
	// to poll for user input (the "browser UI thread" getting a chance to
	// run).
	OnTurn func()
}

// New returns an empty loop on the given clock.
func New(clock Clock) *Loop { return &Loop{Clock: clock} }

// Post enqueues fn to run after delayMs milliseconds, like setTimeout.
// Browsers clamp tiny delays; we run FIFO among due tasks, which preserves
// the ordering guarantees Stopify relies on.
func (l *Loop) Post(fn Task, delayMs float64) {
	if delayMs < 0 {
		delayMs = 0
	}
	due := l.Clock.Now() + delayMs
	l.mu.Lock()
	l.pending = append(l.pending, queued{fn: fn, due: due, seq: l.seq})
	l.seq++
	l.mu.Unlock()
}

// Stop makes Run return after the current task completes; queued tasks are
// discarded. This is how "killing" a page works.
func (l *Loop) Stop() {
	l.mu.Lock()
	l.stopped = true
	l.mu.Unlock()
}

// Len reports the number of queued tasks.
func (l *Loop) Len() int {
	l.mu.Lock()
	n := len(l.pending)
	l.mu.Unlock()
	return n
}

// NextDue reports the earliest due time (in the loop's clock domain) among
// queued tasks. A scheduler uses it to park a program that is only waiting
// on a timer instead of sleeping a worker on it.
func (l *Loop) NextDue() (float64, bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if len(l.pending) == 0 {
		return 0, false
	}
	min := l.pending[0].due
	for _, q := range l.pending[1:] {
		if q.due < min {
			min = q.due
		}
	}
	return min, true
}

// Run drains the queue, advancing the clock across idle gaps, until no
// tasks remain or Stop is called. It returns the number of tasks executed.
func (l *Loop) Run() int {
	l.mu.Lock()
	l.stopped = false
	l.mu.Unlock()
	ran := 0
	for l.step() {
		ran++
		if l.OnTurn != nil {
			l.OnTurn()
		}
	}
	return ran
}

// RunOne executes the next due task, if any, and reports whether it did.
func (l *Loop) RunOne() bool {
	if !l.step() {
		return false
	}
	if l.OnTurn != nil {
		l.OnTurn()
	}
	return true
}

// step pops the earliest-due task (FIFO among ties) under the queue lock
// and runs it outside the lock, so tasks are free to Post and concurrent
// controllers are never blocked behind guest execution.
func (l *Loop) step() bool {
	l.mu.Lock()
	if len(l.pending) == 0 || l.stopped {
		l.mu.Unlock()
		return false
	}
	sort.SliceStable(l.pending, func(i, j int) bool {
		if l.pending[i].due != l.pending[j].due {
			return l.pending[i].due < l.pending[j].due
		}
		return l.pending[i].seq < l.pending[j].seq
	})
	next := l.pending[0]
	l.pending = l.pending[1:]
	l.mu.Unlock()
	if now := l.Clock.Now(); next.due > now {
		l.Clock.Advance(next.due - now)
	}
	start := l.Clock.Now()
	next.fn()
	dur := l.Clock.Now() - start
	l.mu.Lock()
	l.TaskDurations = append(l.TaskDurations, dur)
	l.mu.Unlock()
	return true
}
