package eventloop

import (
	"testing"
	"time"
)

func TestFIFOOrdering(t *testing.T) {
	loop := New(NewVirtualClock())
	var got []int
	for i := 0; i < 5; i++ {
		i := i
		loop.Post(func() { got = append(got, i) }, 0)
	}
	if n := loop.Run(); n != 5 {
		t.Fatalf("ran %d tasks, want 5", n)
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("order = %v, want FIFO", got)
		}
	}
}

func TestTimerOrdering(t *testing.T) {
	clock := NewVirtualClock()
	loop := New(clock)
	var got []string
	loop.Post(func() { got = append(got, "late") }, 50)
	loop.Post(func() { got = append(got, "early") }, 10)
	loop.Post(func() { got = append(got, "now") }, 0)
	loop.Run()
	want := []string{"now", "early", "late"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
	if clock.Now() < 50 {
		t.Errorf("virtual clock should advance to the last timer, now=%v", clock.Now())
	}
}

func TestTaskEnqueuesTask(t *testing.T) {
	loop := New(NewVirtualClock())
	count := 0
	var reschedule func()
	reschedule = func() {
		count++
		if count < 10 {
			loop.Post(reschedule, 0)
		}
	}
	loop.Post(reschedule, 0)
	loop.Run()
	if count != 10 {
		t.Errorf("count = %d, want 10", count)
	}
}

func TestStop(t *testing.T) {
	loop := New(NewVirtualClock())
	count := 0
	var reschedule func()
	reschedule = func() {
		count++
		if count == 3 {
			loop.Stop()
		}
		loop.Post(reschedule, 0)
	}
	loop.Post(reschedule, 0)
	loop.Run()
	if count != 3 {
		t.Errorf("count = %d, want 3 (stopped)", count)
	}
}

func TestTaskDurations(t *testing.T) {
	clock := NewVirtualClock()
	loop := New(clock)
	loop.Post(func() { clock.Advance(25) }, 0)
	loop.Post(func() { clock.Advance(75) }, 0)
	loop.Run()
	if len(loop.TaskDurations) != 2 {
		t.Fatalf("durations = %v", loop.TaskDurations)
	}
	if loop.TaskDurations[0] != 25 || loop.TaskDurations[1] != 75 {
		t.Errorf("durations = %v, want [25 75]", loop.TaskDurations)
	}
}

func TestRunOne(t *testing.T) {
	loop := New(NewVirtualClock())
	ran := false
	loop.Post(func() { ran = true }, 0)
	if !loop.RunOne() {
		t.Fatal("RunOne should run the queued task")
	}
	if !ran {
		t.Fatal("task did not run")
	}
	if loop.RunOne() {
		t.Fatal("RunOne on empty queue should report false")
	}
}

func TestRealClockAdvance(t *testing.T) {
	c := NewRealClock()
	t0 := c.Now()
	c.Advance(5)
	if c.Now()-t0 < 4 {
		t.Errorf("real clock should sleep ~5ms, advanced %.2f", c.Now()-t0)
	}
}

func TestVirtualClockNoWall(t *testing.T) {
	start := time.Now()
	clock := NewVirtualClock()
	loop := New(clock)
	loop.Post(func() {}, 10000) // 10 virtual seconds
	loop.Run()
	if time.Since(start) > time.Second {
		t.Error("virtual clock must not sleep on the wall clock")
	}
	if clock.Now() < 10000 {
		t.Error("virtual clock should have jumped to the timer's due time")
	}
}
