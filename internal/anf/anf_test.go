package anf

import (
	"bytes"
	"testing"

	"repro/internal/desugar"
	"repro/internal/interp"
	"repro/internal/parser"
	"repro/internal/printer"
)

// corpus is shared by the shape tests and the semantics-preservation tests:
// each program exercises constructs the desugar+ANF pipeline must handle.
var corpus = []string{
	`console.log(1 + 2 * 3);`,
	`function f(a, b) { return a + b; } console.log(f(f(1, 2), f(3, 4)));`,
	`function g(x) { return x * 2; } console.log(g(1) + g(2) + g(3));`,
	`var x = 0; for (var i = 0; i < 5; i++) { x += i; } console.log(x);`,
	`var s = 0; var i = 10; while (i-- > 0) s++; console.log(s, i);`,
	`var n = 0; do { n++; } while (n < 4); console.log(n);`,
	`var o = { a: 1, b: 2 }; var t = 0; for (var k in o) { t++; } console.log(t);`,
	`function c(v) { return v < 3; } var j = 0; while (c(j)) { j++; } console.log(j);`,
	`var r = []; outer: for (var i = 0; i < 3; i++) { for (var j = 0; j < 3; j++) { if (j > i) continue outer; r.push(i * 10 + j); } } console.log(r.join(","));`,
	`function f(x) { switch (x) { case 0: return "zero"; case 1: case 2: return "small"; default: return "big"; } } console.log(f(0), f(1), f(2), f(5));`,
	`var log = []; switch (2) { case 1: log.push("a"); case 2: log.push("b"); case 3: log.push("c"); break; default: log.push("d"); } console.log(log.join(""));`,
	`var x = 1; x += 2; x *= 3; x -= 4; console.log(x);`,
	`var a = [5]; a[0] += 10; console.log(a[0]);`,
	`var o = { n: 1 }; console.log(o.n++, ++o.n, o.n--, o.n);`,
	`var i = 0; var a = [0, 0]; a[i++] = 9; console.log(a[0], a[1], i);`,
	`console.log(true && 1, false && 1, 0 || "x", 2 || "y");`,
	`function t() { calls++; return true; } var calls = 0; var v = false && t(); console.log(calls);`,
	`function f() { return 7; } var v = f() || 9; console.log(v);`,
	`function f() { return 0; } var v = f() || f() + 9; console.log(v);`,
	`var x = 1 < 2 ? "yes" : "no"; console.log(x);`,
	`function a() { return 1; } function b() { return 2; } console.log(true ? a() : b(), false ? a() : b());`,
	`var x = (1, 2, 3); console.log(x);`,
	`function mk() { var n = 0; return function () { n++; return n; }; } var c = mk(); c(); console.log(c());`,
	`var f = function (x) { return x + 1; }; console.log(f(41));`,
	`var g = (a) => a * 3; console.log(g(7));`,
	`function Box(v) { this.v = v; this.get = () => this.v; } var b = new Box(5); console.log(b.get());`,
	`function P(x) { this.x = x; } P.prototype.d = function () { return this.x * 2; }; console.log(new P(21).d());`,
	`try { throw new Error("e1"); } catch (e) { console.log(e.message); } finally { console.log("fin"); }`,
	`function f() { try { return 1; } finally { console.log("f"); } } console.log(f());`,
	`var r; try { null.x; } catch (e) { r = e.name; } console.log(r);`,
	`console.log(typeof xundef, typeof 3, typeof "s");`,
	`var o = { a: 1 }; delete o.a; console.log("a" in o);`,
	`var s = "4"; s++; console.log(s, typeof s);`,
	`var n = 5; console.log(n++ + ++n);`,
	`var obj = { m: function (k) { return this.base + k; }, base: 10 }; console.log(obj.m(5));`,
	`function fib(n) { return n < 2 ? n : fib(n - 1) + fib(n - 2); } console.log(fib(12));`,
	`var arr = [3, 1, 2]; arr.sort(function (a, b) { return a - b; }); console.log(arr.join(""));`,
	`var total = 0; for (var i = 0; i < 3; i++) { if (i === 1) continue; total += i; } console.log(total);`,
	`L: { console.log("in"); break L; } console.log("after");`,
	`var x = 10; { var x = 20; } console.log(x);`,
	`console.log([1, 2].concat([3]).length);`,
}

func pipeline(t *testing.T, src string) string {
	t.Helper()
	prog, err := parser.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	nm := &desugar.Namer{}
	prog = desugar.Apply(prog, desugar.Options{}, nm)
	prog = Normalize(prog)
	if err := Check(prog); err != nil {
		t.Fatalf("ANF check failed for %q:\n%s\nerror: %v", src, printer.Print(prog), err)
	}
	// Round-trip through the printer so the test also validates that the
	// normalized tree prints and reparses.
	return runProg(t, printer.Print(prog))
}

func runProg(t *testing.T, src string) string {
	t.Helper()
	prog, err := parser.Parse(src)
	if err != nil {
		t.Fatalf("reparse of normalized output failed: %v\n%s", err, src)
	}
	var buf bytes.Buffer
	in := interp.New(interp.Options{Out: &buf, Seed: 7})
	if rerr := in.RunProgram(prog); rerr != nil {
		t.Fatalf("normalized program failed: %v\n%s", rerr, src)
	}
	return buf.String()
}

func runRaw(t *testing.T, src string) string {
	t.Helper()
	prog, err := parser.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	var buf bytes.Buffer
	in := interp.New(interp.Options{Out: &buf, Seed: 7})
	if rerr := in.RunProgram(prog); rerr != nil {
		t.Fatalf("raw program failed: %v", rerr)
	}
	return buf.String()
}

func TestSemanticsPreserved(t *testing.T) {
	for _, src := range corpus {
		raw := runRaw(t, src)
		got := pipeline(t, src)
		if got != raw {
			t.Errorf("pipeline changed semantics for:\n%s\nraw:  %q\nanf:  %q", src, raw, got)
		}
	}
}

func TestCheckRejectsNestedCalls(t *testing.T) {
	prog, err := parser.Parse("var x = f(g(1));")
	if err != nil {
		t.Fatal(err)
	}
	if Check(prog) == nil {
		t.Error("Check should reject nested calls")
	}
}

func TestCheckRejectsCallInCondition(t *testing.T) {
	prog, err := parser.Parse("if (f()) { x = 1; }")
	if err != nil {
		t.Fatal(err)
	}
	if Check(prog) == nil {
		t.Error("Check should reject calls in conditions")
	}
}

func TestTailCallsPreserved(t *testing.T) {
	prog, err := parser.Parse("function f(n) { return g(n); }")
	if err != nil {
		t.Fatal(err)
	}
	nm := &desugar.Namer{}
	prog = desugar.Apply(prog, desugar.Options{}, nm)
	prog = Normalize(prog)
	out := printer.Print(prog)
	if want := "return g(n);"; !bytes.Contains([]byte(out), []byte(want)) {
		t.Errorf("tail call should remain in place:\n%s", out)
	}
}

func TestNormalizeIsIdempotentOnShape(t *testing.T) {
	for _, src := range corpus[:10] {
		prog, err := parser.Parse(src)
		if err != nil {
			t.Fatal(err)
		}
		nm := &desugar.Namer{}
		prog = desugar.Apply(prog, desugar.Options{}, nm)
		prog = Normalize(prog)
		if err := Check(prog); err != nil {
			t.Fatalf("first normalize: %v", err)
		}
	}
}
