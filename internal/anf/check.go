package anf

import (
	"fmt"

	"repro/internal/ast"
)

// Check verifies the A-normal-form invariants and returns the first
// violation found, or nil. The instrumentation pass and the property-based
// tests rely on it.
func Check(prog *ast.Program) error {
	return checkStmts(prog.Body)
}

func checkStmts(body []ast.Stmt) error {
	for _, s := range body {
		if err := checkStmt(s); err != nil {
			return err
		}
	}
	return nil
}

func checkStmt(s ast.Stmt) error {
	switch st := s.(type) {
	case nil, *ast.Break, *ast.Continue, *ast.Empty:
		return nil
	case *ast.VarDecl:
		for _, d := range st.Decls {
			if d.Init == nil {
				continue
			}
			if err := checkNamed(d.Init); err != nil {
				return err
			}
		}
		return nil
	case *ast.ExprStmt:
		a, ok := st.X.(*ast.Assign)
		if !ok || a.Op != "=" {
			return fmt.Errorf("anf: expression statement is not a plain assignment: %T", st.X)
		}
		switch target := a.Target.(type) {
		case *ast.Ident:
			return checkNamed(a.Value)
		case *ast.Member:
			if err := checkAtomicMemberRef(target); err != nil {
				return err
			}
			return checkAtom(a.Value)
		default:
			return fmt.Errorf("anf: bad assignment target %T", a.Target)
		}
	case *ast.Block:
		return checkStmts(st.Body)
	case *ast.If:
		if err := checkCondition(st.Test); err != nil {
			return err
		}
		if err := checkStmt(st.Cons); err != nil {
			return err
		}
		if st.Alt != nil {
			return checkStmt(st.Alt)
		}
		return nil
	case *ast.While:
		if err := checkCondition(st.Test); err != nil {
			return err
		}
		return checkStmt(st.Body)
	case *ast.Return:
		if st.Arg == nil {
			return nil
		}
		if call, ok := st.Arg.(*ast.Call); ok {
			return checkCallParts(call) // tail call
		}
		return checkAtom(st.Arg)
	case *ast.Labeled:
		return checkStmt(st.Body)
	case *ast.Throw:
		return checkAtom(st.Arg)
	case *ast.Try:
		if err := checkStmts(st.Block.Body); err != nil {
			return err
		}
		if st.Catch != nil {
			if err := checkStmts(st.Catch.Body); err != nil {
				return err
			}
		}
		if st.Finally != nil {
			return checkStmts(st.Finally.Body)
		}
		return nil
	case *ast.FuncDecl:
		return checkStmts(st.Fn.Body)
	default:
		return fmt.Errorf("anf: unexpected statement %T", s)
	}
}

// checkNamed allows the named-position forms: calls, news, and single pure
// operations over atoms.
func checkNamed(e ast.Expr) error {
	switch x := e.(type) {
	case *ast.Call:
		return checkCallParts(x)
	case *ast.New:
		if err := checkAtom(x.Callee); err != nil {
			return err
		}
		return checkAtoms(x.Args)
	case *ast.Binary:
		if err := checkAtom(x.L); err != nil {
			return err
		}
		return checkAtom(x.R)
	case *ast.Unary:
		if x.Op == "delete" {
			if m, ok := x.X.(*ast.Member); ok {
				return checkAtomicMemberRef(m)
			}
		}
		return checkAtom(x.X)
	case *ast.Member:
		return checkAtomicMemberRef(x)
	case *ast.Logical:
		if err := checkAtom(x.L); err != nil {
			return err
		}
		if !pureSimple(x.R) {
			return fmt.Errorf("anf: impure logical right operand %T", x.R)
		}
		return nil
	case *ast.Cond:
		if err := checkAtom(x.Test); err != nil {
			return err
		}
		if !pureSimple(x.Cons) || !pureSimple(x.Alt) {
			return fmt.Errorf("anf: impure conditional branch")
		}
		return nil
	case *ast.Array:
		return checkAtoms(x.Elems)
	case *ast.Object:
		for _, p := range x.Props {
			if p.Kind == ast.PropInit {
				if err := checkAtom(p.Value); err != nil {
					return err
				}
			} else if fn, ok := p.Value.(*ast.Func); ok {
				if err := checkStmts(fn.Body); err != nil {
					return err
				}
			}
		}
		return nil
	case *ast.Func:
		return checkStmts(x.Body)
	default:
		return checkAtom(e)
	}
}

func checkCallParts(c *ast.Call) error {
	switch callee := c.Callee.(type) {
	case *ast.Ident:
	case *ast.Member:
		if err := checkAtomicMemberRef(callee); err != nil {
			return err
		}
	default:
		return fmt.Errorf("anf: callee is %T, want ident or member of atom", c.Callee)
	}
	return checkAtoms(c.Args)
}

func checkAtomicMemberRef(m *ast.Member) error {
	if err := checkAtom(m.X); err != nil {
		return err
	}
	if m.Computed {
		return checkAtom(m.Index)
	}
	return nil
}

func checkAtoms(es []ast.Expr) error {
	for _, e := range es {
		if err := checkAtom(e); err != nil {
			return err
		}
	}
	return nil
}

func checkAtom(e ast.Expr) error {
	if isAtom(e) {
		return nil
	}
	if fn, ok := e.(*ast.Func); ok {
		return checkStmts(fn.Body)
	}
	return fmt.Errorf("anf: %T is not atomic", e)
}

// checkCondition requires call-free conditions (pure expressions over atoms
// and member reads).
func checkCondition(e ast.Expr) error {
	bad := false
	ast.Walk(e, func(n ast.Node) bool {
		switch n.(type) {
		case *ast.Call, *ast.New, *ast.Assign, *ast.Update, *ast.Seq, *ast.Func:
			bad = true
			return false
		}
		return !bad
	})
	if bad {
		return fmt.Errorf("anf: condition contains effects")
	}
	return nil
}
