// Package anf A-normalizes JavaScript (Flanagan et al., cited in §3.1 of
// the paper): after the transform, every function application either names
// its result (`var t = f(x)` or `x = f(x)`) or sits in tail position
// (`return f(x)`), and every operand is atomic. This is step (1) of
// Stopify's compilation strategy — the continuation instrumentation needs
// every capture point to be a statement boundary with a label.
//
// The pass expects desugared input (no for/do-while/for-in/switch, no
// update or compound assignments, no arrows) and preserves evaluation
// order: non-atomic subexpressions are hoisted left-to-right into fresh
// `$t` temporaries.
package anf

import (
	"fmt"

	"repro/internal/ast"
)

// Normalize rewrites prog into A-normal form in place and returns it.
func Normalize(prog *ast.Program) *ast.Program {
	n := &norm{}
	prog.Body = n.body(prog.Body)
	return prog
}

type norm struct{ tmp int }

func (n *norm) fresh() string {
	n.tmp++
	return fmt.Sprintf("$t%d", n.tmp)
}

func (n *norm) body(stmts []ast.Stmt) []ast.Stmt {
	var out []ast.Stmt
	for _, s := range stmts {
		n.stmt(s, &out)
	}
	return out
}

func (n *norm) stmt(s ast.Stmt, out *[]ast.Stmt) {
	switch st := s.(type) {
	case nil:
		return
	case *ast.VarDecl:
		for _, d := range st.Decls {
			if d.Init == nil {
				*out = append(*out, ast.Var(d.Name, nil))
				continue
			}
			init := n.exprKeep(d.Init, out)
			*out = append(*out, ast.Var(d.Name, init))
		}
	case *ast.ExprStmt:
		n.exprStmt(st.X, out)
	case *ast.Block:
		*out = append(*out, &ast.Block{P: st.P, Body: n.body(st.Body)})
	case *ast.If:
		test := n.test(st.Test, out)
		cons := n.nested(st.Cons)
		var alt ast.Stmt
		if st.Alt != nil {
			alt = n.nested(st.Alt)
		}
		*out = append(*out, &ast.If{P: st.P, Test: test, Cons: cons, Alt: alt})
	case *ast.While:
		n.whileStmt(st, out)
	case *ast.Return:
		n.returnStmt(st, out)
	case *ast.Break, *ast.Continue, *ast.Empty:
		*out = append(*out, s)
	case *ast.Labeled:
		inner := n.nested(st.Body)
		*out = append(*out, &ast.Labeled{P: st.P, Label: st.Label, Body: inner})
	case *ast.Throw:
		arg := n.expr(st.Arg, out)
		*out = append(*out, &ast.Throw{P: st.P, Arg: arg})
	case *ast.Try:
		t := &ast.Try{P: st.P, CatchParam: st.CatchParam}
		t.Block = &ast.Block{Body: n.body(st.Block.Body)}
		if st.Catch != nil {
			t.Catch = &ast.Block{Body: n.body(st.Catch.Body)}
		}
		if st.Finally != nil {
			t.Finally = &ast.Block{Body: n.body(st.Finally.Body)}
		}
		*out = append(*out, t)
	case *ast.FuncDecl:
		st.Fn.Body = n.body(st.Fn.Body)
		*out = append(*out, st)
	default:
		// Loops other than while and switch must have been desugared.
		panic(fmt.Sprintf("anf: unexpected statement %T (run desugar first)", s))
	}
}

// exprStmt normalizes an expression in statement position, dropping results
// that are pure atoms.
func (n *norm) exprStmt(e ast.Expr, out *[]ast.Stmt) {
	switch x := e.(type) {
	case *ast.Seq:
		for _, sub := range x.Exprs {
			n.exprStmt(sub, out)
		}
	case *ast.Assign:
		n.assign(x, out)
	case *ast.Call:
		call := n.normCall(x, out)
		*out = append(*out, ast.Var(n.fresh(), call))
	case *ast.New:
		nw := n.normNew(x, out)
		*out = append(*out, ast.Var(n.fresh(), nw))
	default:
		v := n.expr(e, out)
		if !isAtom(v) {
			*out = append(*out, ast.ExprOf(v))
		}
	}
}

// assign normalizes `target = value` in statement position.
func (n *norm) assign(a *ast.Assign, out *[]ast.Stmt) {
	switch target := a.Target.(type) {
	case *ast.Ident:
		v := n.exprKeep(a.Value, out)
		*out = append(*out, ast.ExprOf(ast.SetId(target.Name, v)))
	case *ast.Member:
		// Evaluation order: base, index, then value.
		base := n.expr(target.X, out)
		var ref *ast.Member
		if target.Computed {
			idx := n.expr(target.Index, out)
			ref = ast.Idx(base, idx)
		} else {
			ref = &ast.Member{X: base, Name: target.Name}
		}
		v := n.expr(a.Value, out)
		*out = append(*out, ast.ExprOf(ast.SetTo(ref, v)))
	default:
		panic("anf: invalid assignment target")
	}
}

func (n *norm) whileStmt(st *ast.While, out *[]ast.Stmt) {
	if !containsEffects(st.Test) {
		body := n.nested(st.Body)
		*out = append(*out, &ast.While{P: st.P, Test: st.Test, Body: body})
		return
	}
	// while (c()) body  =>  while (true) { var t = c(); if (!t) break; body }
	var pre []ast.Stmt
	t := n.expr(st.Test, &pre)
	pre = append(pre, ast.IfThen(ast.Not(t), &ast.Break{}))
	body := n.nested(st.Body)
	if b, ok := body.(*ast.Block); ok {
		pre = append(pre, b.Body...)
	} else {
		pre = append(pre, body)
	}
	*out = append(*out, &ast.While{P: st.P, Test: ast.Boollit(true), Body: ast.BlockOf(pre...)})
}

func (n *norm) returnStmt(st *ast.Return, out *[]ast.Stmt) {
	if st.Arg == nil {
		*out = append(*out, st)
		return
	}
	// A directly returned call is a tail call and stays in place (§3.2.2).
	if call, ok := st.Arg.(*ast.Call); ok {
		normed := n.normCall(call, out)
		*out = append(*out, &ast.Return{P: st.P, Arg: normed})
		return
	}
	arg := n.expr(st.Arg, out)
	*out = append(*out, &ast.Return{P: st.P, Arg: arg})
}

// nested normalizes a statement used as a loop/if body.
func (n *norm) nested(s ast.Stmt) ast.Stmt {
	var out []ast.Stmt
	n.stmt(s, &out)
	if len(out) == 1 {
		return out[0]
	}
	return ast.BlockOf(out...)
}

// test normalizes a condition: call-free conditions stay, anything
// effectful is hoisted to an atom.
func (n *norm) test(e ast.Expr, out *[]ast.Stmt) ast.Expr {
	if !containsEffects(e) {
		return e
	}
	return n.expr(e, out)
}

// expr normalizes e to an atom, emitting prelude statements.
func (n *norm) expr(e ast.Expr, out *[]ast.Stmt) ast.Expr {
	switch x := e.(type) {
	case nil:
		return nil // array-literal elision hole
	case *ast.Ident, *ast.Number, *ast.Str, *ast.Bool, *ast.Null, *ast.This, *ast.NewTarget:
		return e
	case *ast.Func:
		x.Body = n.body(x.Body)
		return x
	case *ast.Member:
		base := n.expr(x.X, out)
		var m ast.Expr
		if x.Computed {
			m = ast.Idx(base, n.expr(x.Index, out))
		} else {
			m = &ast.Member{X: base, Name: x.Name}
		}
		return n.name(m, out)
	case *ast.Call:
		return n.name(n.normCall(x, out), out)
	case *ast.New:
		return n.name(n.normNew(x, out), out)
	case *ast.Unary:
		return n.name(n.normUnary(x, out), out)
	case *ast.Binary:
		l := n.expr(x.L, out)
		r := n.expr(x.R, out)
		return n.name(&ast.Binary{P: x.P, Op: x.Op, L: l, R: r}, out)
	case *ast.Logical:
		if pureSimple(x.R) {
			l := n.expr(x.L, out)
			return n.name(&ast.Logical{P: x.P, Op: x.Op, L: l, R: x.R}, out)
		}
		// var t = L; if (t) { t = R }   (&&, dually for ||)
		t := n.fresh()
		l := n.expr(x.L, out)
		*out = append(*out, ast.Var(t, l))
		var guard ast.Expr = ast.Id(t)
		if x.Op == "||" {
			guard = ast.Not(ast.Id(t))
		}
		var rhs []ast.Stmt
		rv := n.expr(x.R, &rhs)
		rhs = append(rhs, ast.ExprOf(ast.SetId(t, rv)))
		*out = append(*out, ast.IfThen(guard, rhs...))
		return ast.Id(t)
	case *ast.Cond:
		if pureSimple(x.Cons) && pureSimple(x.Alt) {
			test := n.expr(x.Test, out)
			return n.name(&ast.Cond{P: x.P, Test: test, Cons: x.Cons, Alt: x.Alt}, out)
		}
		t := n.fresh()
		*out = append(*out, ast.Var(t, nil))
		test := n.test(x.Test, out)
		var consS, altS []ast.Stmt
		cv := n.expr(x.Cons, &consS)
		consS = append(consS, ast.ExprOf(ast.SetId(t, cv)))
		av := n.expr(x.Alt, &altS)
		altS = append(altS, ast.ExprOf(ast.SetId(t, av)))
		*out = append(*out, ast.IfElse(test, ast.BlockOf(consS...), ast.BlockOf(altS...)))
		return ast.Id(t)
	case *ast.Assign:
		t := n.fresh()
		switch target := x.Target.(type) {
		case *ast.Ident:
			v := n.exprKeep(x.Value, out)
			*out = append(*out, ast.Var(t, v))
			*out = append(*out, ast.ExprOf(ast.SetId(target.Name, ast.Id(t))))
		case *ast.Member:
			base := n.expr(target.X, out)
			var ref *ast.Member
			if target.Computed {
				ref = ast.Idx(base, n.expr(target.Index, out))
			} else {
				ref = &ast.Member{X: base, Name: target.Name}
			}
			v := n.expr(x.Value, out)
			*out = append(*out, ast.Var(t, v))
			*out = append(*out, ast.ExprOf(ast.SetTo(ref, ast.Id(t))))
		default:
			panic("anf: invalid assignment target")
		}
		return ast.Id(t)
	case *ast.Seq:
		for i := 0; i < len(x.Exprs)-1; i++ {
			n.exprStmt(x.Exprs[i], out)
		}
		return n.expr(x.Exprs[len(x.Exprs)-1], out)
	case *ast.Array:
		elems := make([]ast.Expr, len(x.Elems))
		for i, el := range x.Elems {
			elems[i] = n.expr(el, out)
		}
		return n.name(&ast.Array{P: x.P, Elems: elems}, out)
	case *ast.Object:
		props := make([]ast.Property, len(x.Props))
		for i, p := range x.Props {
			if p.Kind == ast.PropInit {
				props[i] = ast.Property{Kind: p.Kind, Key: p.Key, Value: n.expr(p.Value, out)}
			} else {
				fn := p.Value.(*ast.Func)
				fn.Body = n.body(fn.Body)
				props[i] = ast.Property{Kind: p.Kind, Key: p.Key, Value: fn}
			}
		}
		return n.name(&ast.Object{P: x.P, Props: props}, out)
	case *ast.Update:
		// normalizeAssignments removes these; accept a leftover by lowering
		// its operand only (semantics preserved for idents).
		x.X = n.expr(x.X, out)
		return n.name(x, out)
	}
	panic(fmt.Sprintf("anf: unknown expression %T", e))
}

// exprKeep normalizes e for a named position (var init / ident assignment):
// a call may remain at the top, and a single pure operation on atoms needs
// no temporary.
func (n *norm) exprKeep(e ast.Expr, out *[]ast.Stmt) ast.Expr {
	switch x := e.(type) {
	case *ast.Call:
		return n.normCall(x, out)
	case *ast.New:
		return n.normNew(x, out)
	case *ast.Binary:
		l := n.expr(x.L, out)
		r := n.expr(x.R, out)
		return &ast.Binary{P: x.P, Op: x.Op, L: l, R: r}
	case *ast.Unary:
		return n.normUnary(x, out)
	case *ast.Member:
		base := n.expr(x.X, out)
		if x.Computed {
			return ast.Idx(base, n.expr(x.Index, out))
		}
		return &ast.Member{X: base, Name: x.Name}
	case *ast.Array, *ast.Object, *ast.Func, *ast.Logical, *ast.Cond:
		return n.expr(e, out)
	default:
		return n.expr(e, out)
	}
}

// normUnary atomizes a unary operand; delete keeps its member reference
// (only the base and index are hoisted) since deleting a copy of the value
// would be meaningless.
func (n *norm) normUnary(x *ast.Unary, out *[]ast.Stmt) ast.Expr {
	if x.Op == "delete" {
		if m, ok := x.X.(*ast.Member); ok {
			base := n.expr(m.X, out)
			var ref *ast.Member
			if m.Computed {
				ref = ast.Idx(base, n.expr(m.Index, out))
			} else {
				ref = &ast.Member{X: base, Name: m.Name}
			}
			return &ast.Unary{P: x.P, Op: "delete", X: ref}
		}
		return x
	}
	return &ast.Unary{P: x.P, Op: x.Op, X: n.expr(x.X, out)}
}

// name hoists e into a fresh temporary and returns the reference.
func (n *norm) name(e ast.Expr, out *[]ast.Stmt) ast.Expr {
	t := n.fresh()
	*out = append(*out, ast.Var(t, e))
	return ast.Id(t)
}

// normCall normalizes callee and arguments of a call to atoms, preserving
// method-call receivers (a member callee keeps its shape so `this` binds).
func (n *norm) normCall(c *ast.Call, out *[]ast.Stmt) *ast.Call {
	var callee ast.Expr
	if m, ok := c.Callee.(*ast.Member); ok {
		base := n.expr(m.X, out)
		if m.Computed {
			callee = ast.Idx(base, n.expr(m.Index, out))
		} else {
			callee = &ast.Member{X: base, Name: m.Name}
		}
	} else {
		callee = n.expr(c.Callee, out)
	}
	args := make([]ast.Expr, len(c.Args))
	for i, a := range c.Args {
		args[i] = n.expr(a, out)
	}
	return &ast.Call{P: c.P, Callee: callee, Args: args}
}

func (n *norm) normNew(x *ast.New, out *[]ast.Stmt) *ast.New {
	callee := n.expr(x.Callee, out)
	args := make([]ast.Expr, len(x.Args))
	for i, a := range x.Args {
		args[i] = n.expr(a, out)
	}
	return &ast.New{P: x.P, Callee: callee, Args: args}
}

// isAtom reports trivially pure expressions. A nil expression — an array
// literal's elision hole — is vacuously atomic.
func isAtom(e ast.Expr) bool {
	switch e.(type) {
	case nil:
		return true
	case *ast.Ident, *ast.Number, *ast.Str, *ast.Bool, *ast.Null, *ast.This, *ast.NewTarget:
		return true
	}
	return false
}

// pureSimple reports expressions with no side effects and no user-code
// entry points: atoms, member reads, and pure operators over them. (Member
// reads can throw on null receivers, so keeping them conditional is more
// faithful than hoisting.)
func pureSimple(e ast.Expr) bool {
	switch x := e.(type) {
	case *ast.Ident, *ast.Number, *ast.Str, *ast.Bool, *ast.Null, *ast.This, *ast.NewTarget:
		return true
	case *ast.Member:
		if x.Computed {
			return pureSimple(x.X) && pureSimple(x.Index)
		}
		return pureSimple(x.X)
	case *ast.Unary:
		return x.Op != "delete" && pureSimple(x.X)
	case *ast.Binary:
		return pureSimple(x.L) && pureSimple(x.R)
	case *ast.Logical:
		return pureSimple(x.L) && pureSimple(x.R)
	case *ast.Cond:
		return pureSimple(x.Test) && pureSimple(x.Cons) && pureSimple(x.Alt)
	}
	return false
}

// containsEffects reports whether e contains calls, allocations,
// assignments, or anything else that must be hoisted out of a condition.
func containsEffects(e ast.Expr) bool {
	if e == nil {
		return false
	}
	found := false
	ast.Walk(e, func(node ast.Node) bool {
		switch node.(type) {
		case *ast.Call, *ast.New, *ast.Assign, *ast.Update, *ast.Seq,
			*ast.Array, *ast.Object, *ast.Func:
			found = true
			return false
		}
		return !found
	})
	return found
}
