// Package resolve implements static scope resolution for the interpreter
// substrate: a pass that runs after the Stopify pipeline (or after plain
// parsing, for raw runs) and annotates every lexical reference with a
// (hops, slot) coordinate, so the interpreter can replace map-based
// environment chains with slice-backed frames — the same
// resolve-before-execute move real engines make in their bytecode
// front-ends, and the same static-scope analysis Stopify itself relies on
// when it boxes assignable captured variables (§3.2.1 of the paper).
//
// The pass is strictly an annotation: trees that skip it (hand-built
// fragments, code eval'd under a raw host) still run on dynamic map frames,
// and any single reference the resolver cannot place — a global, a name
// bound only at runtime, a coordinate that overflows the packed Ref — is
// simply left unresolved and falls back to by-name lookup. Program
// semantics are identical either way.
//
// Scope model. The interpreter creates exactly one environment frame per
// function call and one per entered catch clause; blocks do not create
// frames (let/const are renamed to var upstream). The resolver mirrors that
// chain: it walks function bodies with a stack of function and catch
// scopes, hoists var and function declarations into the function scope
// (sharing ast.HoistedDecls with the interpreter so the two models cannot
// drift), and counts hops from the reference site to the defining scope.
// Top-level code runs in the global frame, which is dynamic by design —
// builtins, the Stopify runtime, and eval'd code all define names there at
// runtime — so references that reach the top are left unresolved.
package resolve

import (
	"sync/atomic"

	"repro/internal/ast"
)

// Inline-cache site IDs. Every non-computed member access and every
// proved-global identifier reference gets a process-unique positive ID; the
// interpreter owns one cache entry per ID (per realm), so two realms
// executing the same tree never share cache state, while re-executing a
// site in one realm always lands on the same entry. IDs are process-unique
// rather than per-program because one realm runs many resolved trees (the
// prelude, the main program, every eval'd fragment) and their sites must
// not collide. 0 is reserved for "no cache" — the zero value of
// unresolved/hand-built nodes.
var (
	memberSites atomic.Uint32
	globalSites atomic.Uint32
)

// Program resolves every function in prog in place.
func Program(p *ast.Program) {
	Stmts(p.Body)
}

// Stmts resolves top-level statements: the statements themselves run in the
// dynamic global frame, and every function literal within gets a slot
// layout. It is what eval hooks call on freshly compiled fragments.
func Stmts(body []ast.Stmt) {
	// Top-level function declarations are hoisted into the global frame
	// before execution, so their closures are created with the global
	// environment — resolve them against it, not against whatever catch
	// scope their statement happens to sit in.
	_, fns := ast.HoistedDecls(body)
	for _, fn := range fns {
		resolveFunc(fn, nil)
	}
	resolveStmts(body, nil)
}

// scope is one frame in the static chain. A nil *scope is the dynamic
// global frame: lookups that reach it resolve to nothing.
type scope struct {
	parent *scope
	names  []string
	index  map[string]int

	// info is the layout being built for a function scope; nil for catch
	// scopes.
	info *scopeExtra
}

// scopeExtra carries the function-scope bookkeeping needed while resolving
// its body.
type scopeExtra struct {
	layout *ast.ScopeInfo
	// argumentsSlot is the implicit `arguments` slot, recorded into the
	// layout only if some reference actually resolves to it.
	argumentsSlot int
}

func (s *scope) define(name string) int {
	if slot, ok := s.index[name]; ok {
		return slot
	}
	slot := len(s.names)
	s.names = append(s.names, name)
	s.index[name] = slot
	return slot
}

// lookup finds name in the static chain and returns its packed coordinate.
// A name bound by no enclosing scope resolves to RefGlobal — a proof the
// interpreter may skip every slot layout — and a coordinate that overflows
// the packing returns 0, plain dynamic lookup.
func lookup(sc *scope, name string) ast.Ref {
	hops := 0
	for s := sc; s != nil; s = s.parent {
		if slot, ok := s.index[name]; ok {
			if s.info != nil && slot == s.info.argumentsSlot {
				// The arguments object is observed; the interpreter must
				// materialize it on entry to this function — even when the
				// coordinate below overflows and the reference itself stays
				// dynamic, since the by-name fallback reads the same slot.
				s.info.layout.ArgumentsSlot = slot
			}
			r, ok := ast.MakeRef(hops, slot)
			if !ok {
				return 0
			}
			return r
		}
		hops++
	}
	return ast.RefGlobal
}

// resolveFunc lays out fn's frame and resolves its body.
func resolveFunc(fn *ast.Func, enclosing *scope) {
	sc := &scope{parent: enclosing, index: make(map[string]int)}
	layout := &ast.ScopeInfo{
		SelfSlot:      -1,
		ThisSlot:      -1,
		NewTargetSlot: -1,
		ArgumentsSlot: -1,
	}
	sc.info = &scopeExtra{layout: layout, argumentsSlot: -1}

	// Slot assignment mirrors the interpreter's dynamic define order on
	// call entry, so later writes to a reused name overwrite earlier ones
	// exactly as repeated map defines did: self name, parameters, then the
	// implicit bindings, then hoisted declarations.
	if fn.Name != "" && !fn.Arrow {
		layout.SelfSlot = sc.define(fn.Name)
	}
	layout.ParamSlots = make([]int, len(fn.Params))
	for i, p := range fn.Params {
		layout.ParamSlots[i] = sc.define(p)
	}
	if !fn.Arrow {
		layout.ThisSlot = sc.define("this")
		layout.NewTargetSlot = sc.define("new.target")
		sc.info.argumentsSlot = sc.define("arguments")
	}
	vars, fns := ast.HoistedDecls(fn.Body)
	for _, v := range vars {
		sc.define(v)
	}
	for _, fd := range fns {
		layout.FnDecls = append(layout.FnDecls, ast.FnSlot{Fn: fd, Slot: sc.define(fd.Name)})
	}

	// Hoisted declarations become closures of this frame on entry (Call's
	// FnDecls loop), even when the declaration statement sits inside a
	// catch block — so their bodies resolve against this scope, never a
	// catch scope on the way down. resolveStmt leaves FuncDecls alone for
	// the same reason.
	for _, fd := range fns {
		resolveFunc(fd, sc)
	}
	resolveStmts(fn.Body, sc)
	layout.Names = sc.names
	layout.Index = sc.index
	fn.Scope = layout
}

func resolveStmts(body []ast.Stmt, sc *scope) {
	for _, s := range body {
		resolveStmt(s, sc)
	}
}

func resolveStmt(s ast.Stmt, sc *scope) {
	switch n := s.(type) {
	case nil:
	case *ast.VarDecl:
		for i := range n.Decls {
			d := &n.Decls[i]
			resolveExpr(d.Init, sc)
			d.Ref = lookup(sc, d.Name)
		}
	case *ast.ExprStmt:
		resolveExpr(n.X, sc)
	case *ast.Block:
		resolveStmts(n.Body, sc)
	case *ast.If:
		resolveExpr(n.Test, sc)
		resolveStmt(n.Cons, sc)
		if n.Alt != nil {
			resolveStmt(n.Alt, sc)
		}
	case *ast.While:
		resolveExpr(n.Test, sc)
		resolveStmt(n.Body, sc)
	case *ast.DoWhile:
		resolveStmt(n.Body, sc)
		resolveExpr(n.Test, sc)
	case *ast.For:
		if n.Init != nil {
			resolveStmt(n.Init, sc)
		}
		resolveExpr(n.Test, sc)
		resolveExpr(n.Update, sc)
		resolveStmt(n.Body, sc)
	case *ast.ForIn:
		resolveExpr(n.Obj, sc)
		n.Ref = lookup(sc, n.Name)
		resolveStmt(n.Body, sc)
	case *ast.Return:
		resolveExpr(n.Arg, sc)
	case *ast.Labeled:
		resolveStmt(n.Body, sc)
	case *ast.Switch:
		resolveExpr(n.Disc, sc)
		for _, c := range n.Cases {
			resolveExpr(c.Test, sc)
			resolveStmts(c.Body, sc)
		}
	case *ast.Throw:
		resolveExpr(n.Arg, sc)
	case *ast.Try:
		resolveStmts(n.Block.Body, sc)
		if n.Catch != nil {
			csc := &scope{parent: sc, index: make(map[string]int)}
			csc.define(n.CatchParam)
			n.CatchScope = &ast.ScopeInfo{
				Names:         csc.names,
				Index:         csc.index,
				SelfSlot:      -1,
				ThisSlot:      -1,
				NewTargetSlot: -1,
				ArgumentsSlot: -1,
			}
			resolveStmts(n.Catch.Body, csc)
		}
		if n.Finally != nil {
			resolveStmts(n.Finally.Body, sc)
		}
	case *ast.FuncDecl:
		// Already resolved at its hoist site (resolveFunc or Stmts), against
		// the frame its closure is actually created in.
	}
}

func resolveExpr(e ast.Expr, sc *scope) {
	switch n := e.(type) {
	case nil:
	case *ast.Ident:
		n.Ref = lookup(sc, n.Name)
		if n.Ref.Global() && n.Site == 0 {
			n.Site = globalSites.Add(1)
		}
	case *ast.Number, *ast.Str:
		// Literals carry no resolution state: the interpreter's tagged
		// Value representation evaluates them without allocating, so the
		// historical pre-boxing annotation is gone.
	case *ast.This:
		n.Ref = lookup(sc, "this")
	case *ast.NewTarget:
		n.Ref = lookup(sc, "new.target")
	case *ast.Array:
		for _, el := range n.Elems {
			resolveExpr(el, sc)
		}
	case *ast.Object:
		for _, p := range n.Props {
			resolveExpr(p.Value, sc)
		}
	case *ast.Func:
		resolveFunc(n, sc)
	case *ast.Unary:
		resolveExpr(n.X, sc)
	case *ast.Update:
		resolveExpr(n.X, sc)
	case *ast.Binary:
		resolveExpr(n.L, sc)
		resolveExpr(n.R, sc)
	case *ast.Logical:
		resolveExpr(n.L, sc)
		resolveExpr(n.R, sc)
	case *ast.Assign:
		resolveExpr(n.Target, sc)
		resolveExpr(n.Value, sc)
	case *ast.Cond:
		resolveExpr(n.Test, sc)
		resolveExpr(n.Cons, sc)
		resolveExpr(n.Alt, sc)
	case *ast.Call:
		resolveExpr(n.Callee, sc)
		for _, a := range n.Args {
			resolveExpr(a, sc)
		}
	case *ast.New:
		resolveExpr(n.Callee, sc)
		for _, a := range n.Args {
			resolveExpr(a, sc)
		}
	case *ast.Member:
		resolveExpr(n.X, sc)
		if n.Computed {
			resolveExpr(n.Index, sc)
		} else if n.Site == 0 {
			n.Site = memberSites.Add(1)
		}
	case *ast.Seq:
		for _, x := range n.Exprs {
			resolveExpr(x, sc)
		}
	}
}
