package resolve_test

import (
	"bytes"
	"testing"

	"repro/internal/ast"
	"repro/internal/interp"
	"repro/internal/parser"
	"repro/internal/resolve"
)

// runDynamic executes src on map frames only (no resolution) and returns
// console output.
func runDynamic(t *testing.T, src string) string {
	t.Helper()
	prog, err := parser.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	var buf bytes.Buffer
	in := interp.New(interp.Options{Out: &buf})
	if err := in.RunProgram(prog); err != nil {
		t.Fatalf("dynamic run: %v", err)
	}
	return buf.String()
}

// runResolved executes src through the resolver and returns console output.
func runResolved(t *testing.T, src string) string {
	t.Helper()
	prog, err := parser.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	resolve.Program(prog)
	var buf bytes.Buffer
	in := interp.New(interp.Options{Out: &buf})
	if err := in.RunProgram(prog); err != nil {
		t.Fatalf("resolved run: %v", err)
	}
	return buf.String()
}

// same asserts that slot frames and map frames produce identical output —
// the resolver must be a pure performance transformation.
func same(t *testing.T, src string) string {
	t.Helper()
	want := runDynamic(t, src)
	got := runResolved(t, src)
	if got != want {
		t.Fatalf("resolved output diverges:\n dynamic: %q\nresolved: %q\nsource:%s", want, got, src)
	}
	return got
}

func TestShadowing(t *testing.T) {
	out := same(t, `
var x = "global";
function outer(x) {
	function inner() { var x = "inner"; return x; }
	return x + "/" + inner();
}
console.log(outer("param"), x);
function catcher() {
	var e = "local";
	try { throw "thrown"; } catch (e) { return e; }
	return e;
}
console.log(catcher());
`)
	if out != "param/inner global\nthrown\n" {
		t.Fatalf("unexpected output %q", out)
	}
}

func TestClosureCapturesLoopVariable(t *testing.T) {
	// var has function scope: every closure shares the same frame slot, so
	// all of them see the final value — the classic var-capture behavior the
	// slot representation must preserve.
	out := same(t, `
var fns = [];
function make() {
	for (var i = 0; i < 3; i++) { fns.push(function () { return i; }); }
}
make();
console.log(fns[0](), fns[1](), fns[2]());
`)
	if out != "3 3 3\n" {
		t.Fatalf("loop capture should share one slot: %q", out)
	}
}

func TestHoistingIntoSlotFrames(t *testing.T) {
	out := same(t, `
function f() {
	var seen = typeof x;
	var called = g();
	var x = 1;
	function g() { return "hoisted"; }
	return seen + "/" + called + "/" + x;
}
console.log(f());
`)
	if out != "undefined/hoisted/1\n" {
		t.Fatalf("hoisting semantics changed: %q", out)
	}
}

func TestNamedFunctionExpressionSelfReference(t *testing.T) {
	same(t, `
var fact = function fac(n) { return n < 2 ? 1 : n * fac(n - 1); };
console.log(fact(5));
`)
}

func TestDuplicateParams(t *testing.T) {
	same(t, `
function f(a, a) { return String(a); }
console.log(f(1), f(1, 2));
`)
}

func TestThisAndNewTarget(t *testing.T) {
	same(t, `
function Point(x) {
	this.x = x;
	this.isNew = new.target !== undefined;
}
var p = new Point(3);
console.log(p.x, p.isNew);
var o = { v: 7, get: function () { return this.v; } };
console.log(o.get());
`)
}

func TestArgumentsObject(t *testing.T) {
	same(t, `
function count() { return arguments.length; }
function second() { return arguments[1]; }
function forward() { return count.apply(this, arguments); }
console.log(count(1, 2, 3), second("a", "b"), forward(1, 2));
`)
}

func TestImplicitGlobalFromFunction(t *testing.T) {
	same(t, `
function leak() { leaked = 99; }
leak();
console.log(leaked);
`)
}

func TestGlobalLateBinding(t *testing.T) {
	// f is created before `later` exists; the reference must stay dynamic
	// and observe the global's current value on every call.
	same(t, `
function f() { return later; }
var later = 1;
console.log(f());
later = 2;
console.log(f());
`)
}

func TestForInLoopVariable(t *testing.T) {
	same(t, `
function keys(o) {
	var out = [];
	for (var k in o) { out.push(k); }
	return out.join(",");
}
console.log(keys({a: 1, b: 2}));
for (var g in {x: 1}) { console.log(g); }
`)
}

func TestTryCatchFinally(t *testing.T) {
	same(t, `
function f() {
	var log = [];
	try {
		try { throw "inner"; } catch (e) { log.push(e); e = "rebound"; log.push(e); throw "outer"; }
	} catch (e) {
		log.push(e);
	} finally {
		log.push("finally");
	}
	return log.join("|");
}
console.log(f());
`)
}

func TestFuncDeclHoistedOutOfCatch(t *testing.T) {
	// A function declaration inside a catch block is hoisted: its closure
	// is created at function entry with the *function* frame, so it cannot
	// see the catch parameter and its captures must not count the catch
	// frame as a hop. (Regression: the resolver once resolved these
	// against the catch scope, skewing every captured Ref by one frame.)
	out := same(t, `
function f() {
	var x = 1;
	try { throw 0; } catch (e) { function g() { return x; } console.log(g()); }
}
f();
function h(a, b) {
	try { throw 42; } catch (e) { function g2() { return typeof e; } console.log(g2()); }
}
h();
`)
	if out != "1\nundefined\n" {
		t.Fatalf("catch-hoisted function declarations broken: %q", out)
	}
}

func TestFuncDeclInTopLevelCatch(t *testing.T) {
	// Same hoisting rule at the top level: the closure is created in the
	// global frame before the try even runs.
	same(t, `
var y = "global";
try { throw "boom"; } catch (e) { function g() { return y + "/" + typeof e; } }
console.log(g());
`)
}

func TestDeeplyNestedClosures(t *testing.T) {
	same(t, `
function a(x) {
	return function b(y) {
		return function c(z) {
			try { throw z; } catch (w) { return x + y + w; }
		};
	};
}
console.log(a(1)(2)(3));
`)
}

func TestCompoundAndUpdateOnSlots(t *testing.T) {
	same(t, `
function f() {
	var n = 10;
	n += 5;
	n -= 2;
	n++;
	--n;
	var post = n++;
	return String(n) + "/" + String(post);
}
console.log(f());
`)
}

func TestMemberUpdateEvaluatesIndexOnce(t *testing.T) {
	// a[j++]++ and a[k] += v must evaluate base and index exactly once.
	out := same(t, `
function f() {
	var j = 0;
	var a = [10, 20];
	a[j++]++;
	var calls = 0;
	function pick() { calls++; return a; }
	pick()[0] += 100;
	return String(j) + "/" + a.join(",") + "/" + calls;
}
console.log(f());
`)
	if out != "1/111,20/1\n" {
		t.Fatalf("member update side effects ran more than once: %q", out)
	}
}

func TestSwitchAndLabeledLoops(t *testing.T) {
	same(t, `
function f(k) {
	var out = [];
	outer: for (var i = 0; i < 3; i++) {
		for (var j = 0; j < 3; j++) {
			if (j === k) { continue outer; }
			if (i === 2) { break outer; }
			out.push(i * 10 + j);
		}
	}
	switch (k) {
	case 1: out.push("one");
	case 2: out.push("two"); break;
	default: out.push("other");
	}
	return out.join(",");
}
console.log(f(1), f(0), f(5));
`)
}

// --- Layout unit tests -----------------------------------------------------

func mustParse(t *testing.T, src string) *ast.Program {
	t.Helper()
	prog, err := parser.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	resolve.Program(prog)
	return prog
}

func TestFrameLayout(t *testing.T) {
	prog := mustParse(t, `function f(a, b) { var c; function g() {} return a; }`)
	fn := prog.Body[0].(*ast.FuncDecl).Fn
	sc := fn.Scope
	if sc == nil {
		t.Fatal("function was not resolved")
	}
	// Layout: f, a, b, this, new.target, arguments, c, g.
	if len(sc.Names) != 8 {
		t.Fatalf("expected 8 slots, got %d: %v", len(sc.Names), sc.Names)
	}
	if sc.SelfSlot != 0 || sc.Names[sc.SelfSlot] != "f" {
		t.Errorf("self slot: %d %v", sc.SelfSlot, sc.Names)
	}
	if len(sc.ParamSlots) != 2 || sc.Names[sc.ParamSlots[0]] != "a" || sc.Names[sc.ParamSlots[1]] != "b" {
		t.Errorf("param slots: %v %v", sc.ParamSlots, sc.Names)
	}
	if sc.ThisSlot < 0 || sc.NewTargetSlot < 0 {
		t.Errorf("this/new.target slots missing: %+v", sc)
	}
	if sc.ArgumentsSlot != -1 {
		t.Errorf("arguments never referenced, slot should be elided: %d", sc.ArgumentsSlot)
	}
	if len(sc.FnDecls) != 1 || sc.Names[sc.FnDecls[0].Slot] != "g" {
		t.Errorf("fn decls: %+v", sc.FnDecls)
	}
	ret := fn.Body[len(fn.Body)-1].(*ast.Return)
	ref := ret.Arg.(*ast.Ident).Ref
	if !ref.Valid() || ref.Hops() != 0 || ref.Slot() != sc.ParamSlots[0] {
		t.Errorf("return a should resolve to (0, param slot): hops=%d slot=%d", ref.Hops(), ref.Slot())
	}
}

func TestArgumentsSlotMaterializedWhenReferenced(t *testing.T) {
	prog := mustParse(t, `function f() { return arguments.length; }`)
	sc := prog.Body[0].(*ast.FuncDecl).Fn.Scope
	if sc.ArgumentsSlot < 0 {
		t.Fatalf("arguments referenced but slot elided: %+v", sc)
	}
}

func TestGlobalReferencesStayDynamic(t *testing.T) {
	prog := mustParse(t, `var g = 1; function f() { return g; }`)
	if ref := prog.Body[0].(*ast.VarDecl).Decls[0].Ref; ref.Valid() {
		t.Errorf("top-level var must stay dynamic, got ref %v", ref)
	}
	fn := prog.Body[1].(*ast.FuncDecl).Fn
	ret := fn.Body[0].(*ast.Return)
	if ref := ret.Arg.(*ast.Ident).Ref; ref.Valid() {
		t.Errorf("reference to a global must stay dynamic, got ref %v", ref)
	}
}

func TestClosureHops(t *testing.T) {
	prog := mustParse(t, `function f(x) { return function () { return x; }; }`)
	outer := prog.Body[0].(*ast.FuncDecl).Fn
	inner := outer.Body[0].(*ast.Return).Arg.(*ast.Func)
	ref := inner.Body[0].(*ast.Return).Arg.(*ast.Ident).Ref
	if !ref.Valid() || ref.Hops() != 1 {
		t.Fatalf("captured x should be one hop out, got valid=%v hops=%d", ref.Valid(), ref.Hops())
	}
	if ref.Slot() != outer.Scope.ParamSlots[0] {
		t.Fatalf("captured x slot mismatch: %d vs %d", ref.Slot(), outer.Scope.ParamSlots[0])
	}
}

func TestCatchScopeLayout(t *testing.T) {
	prog := mustParse(t, `function f() { var v; try { v = 1; } catch (e) { v = e; } }`)
	fn := prog.Body[0].(*ast.FuncDecl).Fn
	try := fn.Body[1].(*ast.Try)
	if try.CatchScope == nil || len(try.CatchScope.Names) != 1 || try.CatchScope.Names[0] != "e" {
		t.Fatalf("catch scope layout: %+v", try.CatchScope)
	}
	// Inside the catch block, v lives one hop out (past the catch frame).
	assign := try.Catch.Body[0].(*ast.ExprStmt).X.(*ast.Assign)
	ref := assign.Target.(*ast.Ident).Ref
	if !ref.Valid() || ref.Hops() != 1 {
		t.Fatalf("v inside catch should hop the catch frame: valid=%v hops=%d", ref.Valid(), ref.Hops())
	}
	eref := assign.Value.(*ast.Ident).Ref
	if !eref.Valid() || eref.Hops() != 0 || eref.Slot() != 0 {
		t.Fatalf("e should be slot 0 of the catch frame: valid=%v hops=%d slot=%d", eref.Valid(), eref.Hops(), eref.Slot())
	}
}

func BenchmarkResolvedCalls(b *testing.B) { benchCalls(b, true) }
func BenchmarkDynamicCalls(b *testing.B)  { benchCalls(b, false) }

func benchCalls(b *testing.B, resolved bool) {
	src := `
function fib(n) { if (n < 2) { return n; } return fib(n - 1) + fib(n - 2); }
fib(16);
`
	prog, err := parser.Parse(src)
	if err != nil {
		b.Fatal(err)
	}
	if resolved {
		resolve.Program(prog)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		in := interp.New(interp.Options{})
		if err := in.RunProgram(prog); err != nil {
			b.Fatal(err)
		}
	}
}
