package instrument

import (
	"strings"
	"testing"

	"repro/internal/anf"
	"repro/internal/ast"
	"repro/internal/boxes"
	"repro/internal/desugar"
	"repro/internal/parser"
	"repro/internal/printer"
)

func compile(t *testing.T, src string, opts Options) (*ast.Program, string) {
	t.Helper()
	prog, err := parser.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	nm := &desugar.Namer{}
	desugar.Apply(prog, desugar.Options{}, nm)
	anf.Normalize(prog)
	boxes.Box(prog)
	Apply(prog, opts)
	out := printer.Print(prog)
	if _, err := parser.Parse(out); err != nil {
		t.Fatalf("instrumented output does not reparse: %v\n%s", err, out)
	}
	return prog, out
}

func TestCheckedShape(t *testing.T) {
	_, out := compile(t, `
function f(x) {
  var a = g(x);
  return a + 1;
}`, Options{Strategy: Checked})
	for _, want := range []string{
		`$mode === "restore"`,
		"$rstack.pop()",
		"$k.label",
		// Thunks are lazy (ISSUE 4): $reenter is declared uninitialized
		// and materialized at the capture site; the locals snapshot is an
		// inline array literal there. Normal-mode calls allocate neither.
		"$reenter || ($reenter =",
		"locals: [x, a, $t1]",
		"$k.reenter()",
		`$mode === "capture"`,
		"$stack.push({ label: 1,",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("checked output missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "$shadow.push") {
		t.Error("checked strategy must not use the shadow stack")
	}
}

func TestExceptionalShape(t *testing.T) {
	_, out := compile(t, `function f(x) { var a = g(x); return a; }`, Options{Strategy: Exceptional})
	if !strings.Contains(out, "try {") || !strings.Contains(out, "$isCap(") {
		t.Errorf("exceptional sites need handlers:\n%s", out)
	}
	if !strings.Contains(out, "throw $e") {
		t.Errorf("exceptional handler must rethrow:\n%s", out)
	}
}

func TestEagerShape(t *testing.T) {
	_, out := compile(t, `function f(x) { var a = g(x); return a; }`, Options{Strategy: Eager})
	if !strings.Contains(out, "$shadow.push({ label: 1,") {
		t.Errorf("eager sites push eagerly:\n%s", out)
	}
	if !strings.Contains(out, "$shadow.pop()") {
		t.Errorf("eager sites must pop on return:\n%s", out)
	}
}

func TestTailCallsNotInstrumented(t *testing.T) {
	prog, _ := compile(t, `function f(n) { return g(n); }`, Options{Strategy: Checked})
	fn := findFunc(prog, "f")
	if fn == nil {
		t.Fatal("f not found")
	}
	// A tail-call-only function needs no machinery at all (§3.2.2).
	out := printer.PrintStmt(&ast.FuncDecl{Fn: fn})
	if strings.Contains(out, "$locals") {
		t.Errorf("tail-only function should be uninstrumented:\n%s", out)
	}
}

func TestLeafFunctionsPayNothing(t *testing.T) {
	prog, _ := compile(t, `function leaf(a, b) { return a * b + 1; }`, Options{Strategy: Checked})
	fn := findFunc(prog, "leaf")
	out := printer.PrintStmt(&ast.FuncDecl{Fn: fn})
	if strings.Contains(out, "$mode") {
		t.Errorf("leaf function should carry no instrumentation:\n%s", out)
	}
}

func TestLabelsAreContiguousPerFunction(t *testing.T) {
	prog, _ := compile(t, `
function f() {
  var a = g();
  if (a) { var b = g(); } else { var c = g(); }
  while (a) { var d = g(); a = a - 1; }
  return a;
}`, Options{Strategy: Checked})
	fn := findFunc(prog, "f")
	var labels []int
	ast.Walk(fn, func(n ast.Node) bool {
		if c, ok := n.(*ast.Call); ok && c.Label > 0 {
			labels = append(labels, c.Label)
		}
		if inner, ok := n.(*ast.Func); ok && inner != fn {
			return false
		}
		return true
	})
	if len(labels) < 4 {
		t.Fatalf("expected several labels, got %v", labels)
	}
	seen := map[int]bool{}
	max := 0
	for _, l := range labels {
		if seen[l] {
			t.Fatalf("duplicate label %d", l)
		}
		seen[l] = true
		if l > max {
			max = l
		}
	}
	for i := 1; i <= max; i++ {
		if !seen[i] {
			t.Fatalf("labels not dense: missing %d in %v", i, labels)
		}
	}
}

func TestWrappedCtorProtocol(t *testing.T) {
	_, out := compile(t, `
function F(x) {
  this.x = init(x);
  return 0;
}`, Options{Strategy: Checked, WrappedCtors: true})
	for _, want := range []string{"var $nt = new.target", "$nt !== undefined", "return this"} {
		if !strings.Contains(out, want) {
			t.Errorf("wrapped-ctor output missing %q:\n%s", want, out)
		}
	}
}

func TestArgsModesReenter(t *testing.T) {
	src := `function f(a, b) { var x = g(a); return x + b; }`
	_, plain := compile(t, src, Options{Strategy: Checked, Args: ArgsNone})
	if !strings.Contains(plain, "f.call(this, a, b)") {
		t.Errorf("args=none reenter should pass formals:\n%s", plain)
	}
	_, varargs := compile(t, src, Options{Strategy: Checked, Args: ArgsVarargs})
	if !strings.Contains(varargs, "f.apply(this, arguments)") {
		t.Errorf("args=varargs reenter should apply arguments:\n%s", varargs)
	}
	_, mixed := compile(t, src, Options{Strategy: Checked, Args: ArgsMixed})
	if !strings.Contains(mixed, "arguments = $l[") {
		t.Errorf("args=mixed must restore the arguments object:\n%s", mixed)
	}
}

func TestCatchReentryShape(t *testing.T) {
	_, out := compile(t, `
function f() {
  try {
    risky();
  } catch (e) {
    var r = recover(e);
    return r;
  }
  return 0;
}`, Options{Strategy: Checked})
	if !strings.Contains(out, "$isSig($ct)") {
		t.Errorf("catch must rethrow runtime signals:\n%s", out)
	}
	if !strings.Contains(out, "throw $exn") {
		t.Errorf("restore must re-enter catch via rethrow:\n%s", out)
	}
}

func TestFinallyReturnBookkeeping(t *testing.T) {
	_, out := compile(t, `
function f() {
  try {
    return work();
  } finally {
    var c = cleanup();
  }
}`, Options{Strategy: Checked})
	if !strings.Contains(out, "$finret") || !strings.Contains(out, "$finv") {
		t.Errorf("try/finally needs completion bookkeeping:\n%s", out)
	}
}

func TestStrategyString(t *testing.T) {
	if Checked.String() != "checked" || Exceptional.String() != "exceptional" || Eager.String() != "eager" {
		t.Error("Strategy.String")
	}
}

func findFunc(prog *ast.Program, name string) *ast.Func {
	var found *ast.Func
	ast.Walk(prog, func(n ast.Node) bool {
		if fn, ok := n.(*ast.Func); ok && fn.Name == name {
			found = fn
			return false
		}
		return true
	})
	return found
}
