package instrument

import (
	"repro/internal/ast"
)

// ---------------------------------------------------------------------------
// Pre-passes over one function body
// ---------------------------------------------------------------------------

// declsToAssigns converts var declarations into plain assignments; all
// locals are declared once in the prologue so restore-mode assignments can
// precede the original declaration sites. Initializer-less declarations
// disappear. top indicates the outermost call (returns a fresh slice).
func (c *fctx) declsToAssigns(body []ast.Stmt, top bool) []ast.Stmt {
	out := make([]ast.Stmt, 0, len(body))
	for _, s := range body {
		switch n := s.(type) {
		case *ast.VarDecl:
			for _, d := range n.Decls {
				if d.Init == nil {
					continue
				}
				out = append(out, ast.ExprOf(ast.SetId(d.Name, d.Init)))
			}
		case *ast.Block:
			n.Body = c.declsToAssigns(n.Body, false)
			out = append(out, n)
		case *ast.If:
			n.Cons = c.declsToAssignsNested(n.Cons)
			if n.Alt != nil {
				n.Alt = c.declsToAssignsNested(n.Alt)
			}
			out = append(out, n)
		case *ast.While:
			n.Body = c.declsToAssignsNested(n.Body)
			out = append(out, n)
		case *ast.Labeled:
			n.Body = c.declsToAssignsNested(n.Body)
			out = append(out, n)
		case *ast.Try:
			n.Block.Body = c.declsToAssigns(n.Block.Body, false)
			if n.Catch != nil {
				n.Catch.Body = c.declsToAssigns(n.Catch.Body, false)
			}
			if n.Finally != nil {
				n.Finally.Body = c.declsToAssigns(n.Finally.Body, false)
			}
			out = append(out, n)
		default:
			out = append(out, s)
		}
	}
	return out
}

func (c *fctx) declsToAssignsNested(s ast.Stmt) ast.Stmt {
	out := c.declsToAssigns([]ast.Stmt{s}, false)
	if len(out) == 1 {
		return out[0]
	}
	return ast.BlockOf(out...)
}

// rewriteFinallyReturns implements the completion-value preservation of
// §3.1.1: inside every `try ... finally`, `return e` becomes
//
//	$finret = 1; $finv = e; return $finv;
//
// so that a continuation captured inside the finalizer can re-enter it by
// re-returning the saved value. Tail calls inside such try blocks become
// named calls (they were never real tail calls — the finalizer runs after).
func (c *fctx) rewriteFinallyReturns(body []ast.Stmt) []ast.Stmt {
	for i, s := range body {
		body[i] = c.finStmt(s)
	}
	return body
}

func (c *fctx) finStmt(s ast.Stmt) ast.Stmt {
	switch n := s.(type) {
	case *ast.Block:
		c.rewriteFinallyReturns(n.Body)
	case *ast.If:
		n.Cons = c.finStmt(n.Cons)
		if n.Alt != nil {
			n.Alt = c.finStmt(n.Alt)
		}
	case *ast.While:
		n.Body = c.finStmt(n.Body)
	case *ast.Labeled:
		n.Body = c.finStmt(n.Body)
	case *ast.Try:
		if n.Finally != nil {
			finret := c.fresh("$finret")
			finv := c.fresh("$finv")
			n.Block.Body = rewriteReturns(n.Block.Body, finret, finv)
			if n.Catch != nil {
				n.Catch.Body = rewriteReturns(n.Catch.Body, finret, finv)
			}
			c.fin[n] = &finInfo{finret: finret, finv: finv}
		}
		c.rewriteFinallyReturns(n.Block.Body)
		if n.Catch != nil {
			c.rewriteFinallyReturns(n.Catch.Body)
		}
		if n.Finally != nil {
			c.rewriteFinallyReturns(n.Finally.Body)
		}
	}
	return s
}

// finInfo records the completion-saving locals of a try/finally.
type finInfo struct{ finret, finv string }

// eagerShadowDepths allocates, for every try with a catch clause, a local
// that records the shadow-stack depth at try entry; the catch handler trims
// the shadow stack back to it, since an exception unwinds past the per-call
// pops of the eager strategy.
func (c *fctx) eagerShadowDepths(body []ast.Stmt) []ast.Stmt {
	out := make([]ast.Stmt, 0, len(body))
	for _, s := range body {
		switch n := s.(type) {
		case *ast.Try:
			if n.Catch != nil {
				sd := c.fresh("$sd")
				c.shadowDepth[n] = sd
				out = append(out, ast.ExprOf(ast.SetId(sd, ast.Dot(ast.Id(ShadowVar), "length"))))
			}
			n.Block.Body = c.eagerShadowDepths(n.Block.Body)
			if n.Catch != nil {
				n.Catch.Body = c.eagerShadowDepths(n.Catch.Body)
			}
			if n.Finally != nil {
				n.Finally.Body = c.eagerShadowDepths(n.Finally.Body)
			}
			out = append(out, n)
		case *ast.Block:
			n.Body = c.eagerShadowDepths(n.Body)
			out = append(out, n)
		case *ast.If:
			n.Cons = c.eagerShadowNested(n.Cons)
			if n.Alt != nil {
				n.Alt = c.eagerShadowNested(n.Alt)
			}
			out = append(out, n)
		case *ast.While:
			n.Body = c.eagerShadowNested(n.Body)
			out = append(out, n)
		case *ast.Labeled:
			n.Body = c.eagerShadowNested(n.Body)
			out = append(out, n)
		default:
			out = append(out, s)
		}
	}
	return out
}

func (c *fctx) eagerShadowNested(s ast.Stmt) ast.Stmt {
	out := c.eagerShadowDepths([]ast.Stmt{s})
	if len(out) == 1 {
		return out[0]
	}
	return ast.BlockOf(out...)
}

// rewriteReturns rewrites returns (not inside nested functions or nested
// try-finally blocks, which have their own rewriting) to save their value.
func rewriteReturns(body []ast.Stmt, finret, finv string) []ast.Stmt {
	out := make([]ast.Stmt, 0, len(body))
	for _, s := range body {
		out = append(out, rewriteReturnStmt(s, finret, finv)...)
	}
	return out
}

func rewriteReturnStmt(s ast.Stmt, finret, finv string) []ast.Stmt {
	switch n := s.(type) {
	case *ast.Return:
		arg := n.Arg
		if arg == nil {
			arg = ast.Undef()
		}
		return []ast.Stmt{
			ast.ExprOf(ast.SetId(finv, arg)),
			ast.ExprOf(ast.SetId(finret, ast.Int(1))),
			&ast.Return{P: n.P, Arg: ast.Id(finv)},
		}
	case *ast.Block:
		n.Body = rewriteReturns(n.Body, finret, finv)
		return []ast.Stmt{n}
	case *ast.If:
		n.Cons = wrapReturns(n.Cons, finret, finv)
		if n.Alt != nil {
			n.Alt = wrapReturns(n.Alt, finret, finv)
		}
		return []ast.Stmt{n}
	case *ast.While:
		n.Body = wrapReturns(n.Body, finret, finv)
		return []ast.Stmt{n}
	case *ast.Labeled:
		n.Body = wrapReturns(n.Body, finret, finv)
		return []ast.Stmt{n}
	case *ast.Try:
		// A nested try-finally rewrites its own returns later; a nested
		// try-catch still propagates returns to our finalizer.
		if n.Finally == nil {
			n.Block.Body = rewriteReturns(n.Block.Body, finret, finv)
			if n.Catch != nil {
				n.Catch.Body = rewriteReturns(n.Catch.Body, finret, finv)
			}
		}
		return []ast.Stmt{n}
	default:
		return []ast.Stmt{s}
	}
}

func wrapReturns(s ast.Stmt, finret, finv string) ast.Stmt {
	out := rewriteReturnStmt(s, finret, finv)
	if len(out) == 1 {
		return out[0]
	}
	return ast.BlockOf(out...)
}

// ---------------------------------------------------------------------------
// Labeling
// ---------------------------------------------------------------------------

// labelSites assigns a unique label to every non-tail application site in
// the body (step 3 of §3.1). Sites are ExprStmt assignments whose value is
// a Call or New; labels are assigned in DFS statement order, so the label
// set of any subtree is a contiguous range.
func (c *fctx) labelSites(body []ast.Stmt) {
	c.nextLabel = 1
	var walk func(s ast.Stmt)
	walk = func(s ast.Stmt) {
		switch n := s.(type) {
		case *ast.ExprStmt:
			if a, ok := n.X.(*ast.Assign); ok {
				switch v := a.Value.(type) {
				case *ast.Call:
					v.Label = c.nextLabel
					c.nextLabel++
				case *ast.New:
					v.Label = c.nextLabel
					c.nextLabel++
				}
			}
		case *ast.Block:
			for _, st := range n.Body {
				walk(st)
			}
		case *ast.If:
			walk(n.Cons)
			if n.Alt != nil {
				walk(n.Alt)
			}
		case *ast.While:
			walk(n.Body)
		case *ast.Labeled:
			walk(n.Body)
		case *ast.Try:
			for _, st := range n.Block.Body {
				walk(st)
			}
			if n.Catch != nil {
				for _, st := range n.Catch.Body {
					walk(st)
				}
			}
			if n.Finally != nil {
				for _, st := range n.Finally.Body {
					walk(st)
				}
			}
		}
	}
	for _, s := range body {
		walk(s)
	}
}

// labelRange returns the contiguous [lo, hi] label range contained in the
// statements (0, 0 when none).
func labelRange(stmts ...ast.Stmt) (int, int) {
	lo, hi := 0, 0
	var walk func(s ast.Stmt)
	record := func(l int) {
		if l == 0 {
			return
		}
		if lo == 0 || l < lo {
			lo = l
		}
		if l > hi {
			hi = l
		}
	}
	walk = func(s ast.Stmt) {
		switch n := s.(type) {
		case *ast.ExprStmt:
			if a, ok := n.X.(*ast.Assign); ok {
				switch v := a.Value.(type) {
				case *ast.Call:
					record(v.Label)
				case *ast.New:
					record(v.Label)
				}
			}
		case *ast.Block:
			for _, st := range n.Body {
				walk(st)
			}
		case *ast.If:
			walk(n.Cons)
			if n.Alt != nil {
				walk(n.Alt)
			}
		case *ast.While:
			walk(n.Body)
		case *ast.Labeled:
			walk(n.Body)
		case *ast.Try:
			for _, st := range n.Block.Body {
				walk(st)
			}
			if n.Catch != nil {
				for _, st := range n.Catch.Body {
					walk(st)
				}
			}
			if n.Finally != nil {
				for _, st := range n.Finally.Body {
					walk(st)
				}
			}
		}
	}
	for _, s := range stmts {
		if s != nil {
			walk(s)
		}
	}
	return lo, hi
}

// labelTest builds the ℓ ∈ s test of Figure 4a for a contiguous range.
func labelTest(lo, hi int) ast.Expr {
	if lo == 0 {
		return ast.Boollit(false)
	}
	if lo == hi {
		return ast.Bin("===", ast.Id("$lbl"), ast.Int(lo))
	}
	return ast.Log("&&",
		ast.Bin(">=", ast.Id("$lbl"), ast.Int(lo)),
		ast.Bin("<=", ast.Id("$lbl"), ast.Int(hi)),
	)
}

// ---------------------------------------------------------------------------
// The K transform (Figure 4a)
// ---------------------------------------------------------------------------

// kStmts rewrites a statement list. Maximal runs of label-free statements
// are grouped under a single normal-mode guard — semantically identical to
// the paper's per-statement `if (normal)` wrapping, with less interpreter
// overhead.
func (c *fctx) kStmts(body []ast.Stmt) []ast.Stmt {
	var out []ast.Stmt
	var run []ast.Stmt
	flush := func() {
		if len(run) == 0 {
			return
		}
		out = append(out, ast.IfThen(isMode(ModeNormal), run...))
		run = nil
	}
	for _, s := range body {
		if c.opts.PerStatementGuards {
			flush()
		}
		if site, ok := callSite(s); ok {
			flush()
			out = append(out, c.site(site))
			continue
		}
		if lo, _ := labelRange(s); lo != 0 {
			flush()
			out = append(out, c.kCompound(s))
			continue
		}
		if fd, ok := s.(*ast.FuncDecl); ok {
			// Hoisted declarations execute before the prologue; keep them
			// outside guards so the binding exists in every mode.
			flush()
			out = append(out, fd)
			continue
		}
		run = append(run, s)
	}
	flush()
	return out
}

// callSite recognizes a labeled application statement.
func callSite(s ast.Stmt) (*ast.ExprStmt, bool) {
	es, ok := s.(*ast.ExprStmt)
	if !ok {
		return nil, false
	}
	a, ok := es.X.(*ast.Assign)
	if !ok {
		return nil, false
	}
	switch v := a.Value.(type) {
	case *ast.Call:
		return es, v.Label != 0
	case *ast.New:
		return es, v.Label != 0
	}
	return nil, false
}

// kCompound rewrites a label-containing compound statement.
func (c *fctx) kCompound(s ast.Stmt) ast.Stmt {
	switch n := s.(type) {
	case *ast.Block:
		return &ast.Block{P: n.P, Body: c.kStmts(n.Body)}
	case *ast.Labeled:
		return &ast.Labeled{P: n.P, Label: n.Label, Body: c.kCompoundOrSite(n.Body)}
	case *ast.If:
		consLo, consHi := labelRange(n.Cons)
		test := ast.Log("&&", isMode(ModeNormal), n.Test)
		var fullTest ast.Expr = test
		if consLo != 0 {
			fullTest = ast.Log("||", test, labelTest(consLo, consHi))
		}
		cons := c.kCompoundOrSite(n.Cons)
		if n.Alt == nil {
			return &ast.If{P: n.P, Test: fullTest, Cons: cons}
		}
		altLo, altHi := labelRange(n.Alt)
		var altGuard ast.Expr = isMode(ModeNormal)
		if altLo != 0 {
			altGuard = ast.Log("||", altGuard, labelTest(altLo, altHi))
		}
		alt := ast.IfThen(altGuard, c.kCompoundOrSite(n.Alt))
		return &ast.If{P: n.P, Test: fullTest, Cons: cons, Alt: alt}
	case *ast.While:
		lo, hi := labelRange(n.Body)
		test := ast.Log("||",
			ast.Log("&&", isMode(ModeNormal), n.Test),
			labelTest(lo, hi),
		)
		return &ast.While{P: n.P, Test: test, Body: c.kCompoundOrSite(n.Body)}
	case *ast.Try:
		return c.kTry(n)
	default:
		// A label-containing statement can only be one of the forms above.
		panic("instrument: unexpected label-containing statement")
	}
}

// kCompoundOrSite dispatches a nested statement that may itself be a call
// site, a label-containing compound, or plain code.
func (c *fctx) kCompoundOrSite(s ast.Stmt) ast.Stmt {
	if site, ok := callSite(s); ok {
		return c.site(site)
	}
	if lo, _ := labelRange(s); lo != 0 {
		return c.kCompound(s)
	}
	return ast.IfThen(isMode(ModeNormal), s)
}

// kTry implements the try/catch/finally re-entry machinery of §3.1.1.
func (c *fctx) kTry(n *ast.Try) ast.Stmt {
	blockLo, blockHi := labelRange(stmtsOf(n.Block)...)
	var catchLo, catchHi, finLo, finHi int
	if n.Catch != nil {
		catchLo, catchHi = labelRange(stmtsOf(n.Catch)...)
	}
	if n.Finally != nil {
		finLo, finHi = labelRange(stmtsOf(n.Finally)...)
	}

	var tryBody []ast.Stmt

	// Re-enter the catch clause by re-throwing the saved exception.
	if catchLo != 0 {
		tryBody = append(tryBody, ast.IfThen(
			ast.Log("&&", isMode(ModeRestore), labelTest(catchLo, catchHi)),
			&ast.Throw{Arg: ast.Id(n.CatchParam)},
		))
	}
	// Re-enter the finalizer: when the try completed with a return, re-raise
	// that completion; otherwise fall through and let the finalizer run.
	if finLo != 0 {
		fi := c.fin[n]
		if fi != nil {
			tryBody = append(tryBody, ast.IfThen(
				ast.Log("&&",
					ast.Log("&&", isMode(ModeRestore), labelTest(finLo, finHi)),
					ast.Bin("===", ast.Id(fi.finret), ast.Int(1)),
				),
				ast.Ret(ast.Id(fi.finv)),
			))
		}
	}
	guard := isMode(ModeNormal)
	if blockLo != 0 {
		guard = ast.Log("||", guard, ast.Log("&&", isMode(ModeRestore), labelTest(blockLo, blockHi)))
	}
	tryBody = append(tryBody, ast.IfThen(guard, c.kStmts(n.Block.Body)...))

	out := &ast.Try{P: n.P, Block: ast.BlockOf(tryBody...)}

	if n.Catch != nil {
		ct := "$ct"
		catchBody := []ast.Stmt{
			ast.IfThen(ast.CallId(IsSigFn, ast.Id(ct)), &ast.Throw{Arg: ast.Id(ct)}),
		}
		if c.opts.Strategy == Eager {
			if sd := c.shadowDepth[n]; sd != "" {
				catchBody = append(catchBody, ast.ExprOf(ast.SetTo(
					ast.Dot(ast.Id(ShadowVar), "length"), ast.Id(sd))))
			}
		}
		catchBody = append(catchBody, ast.ExprOf(ast.SetId(n.CatchParam, ast.Id(ct))))
		catchBody = append(catchBody, c.kStmts(n.Catch.Body)...)
		out.CatchParam = ct
		out.Catch = ast.BlockOf(catchBody...)
	}
	if n.Finally != nil {
		out.Finally = ast.BlockOf(c.kStmts(n.Finally.Body)...)
	}
	return out
}

func stmtsOf(b *ast.Block) []ast.Stmt {
	if b == nil {
		return nil
	}
	return b.Body
}

// ---------------------------------------------------------------------------
// The A transform (Figure 4 b/c/d)
// ---------------------------------------------------------------------------

// site rewrites one labeled application statement per the selected
// strategy.
func (c *fctx) site(es *ast.ExprStmt) ast.Stmt {
	a := es.X.(*ast.Assign)
	var label int
	switch v := a.Value.(type) {
	case *ast.Call:
		label = v.Label
	case *ast.New:
		label = v.Label
	}

	guard := ast.Log("||", isMode(ModeNormal), ast.Bin("===", ast.Id("$lbl"), ast.Int(label)))

	// target = $mode === "normal" ? <app> : $k.reenter();
	apply := ast.ExprOf(ast.SetTo(a.Target, &ast.Cond{
		Test: isMode(ModeNormal),
		Cons: a.Value,
		Alt:  ast.CallN(ast.Dot(ast.Id("$k"), "reenter")),
	}))
	clearLbl := ast.ExprOf(ast.SetId("$lbl", ast.Int(-1)))

	switch c.opts.Strategy {
	case Checked:
		return ast.IfThen(guard,
			apply,
			ast.IfThen(isMode(ModeCapture),
				c.pushFrame(StackVar, label),
				&ast.Return{},
			),
			clearLbl,
		)
	case Exceptional:
		handler := ast.BlockOf(
			ast.IfThen(ast.CallId(IsCapFn, ast.Id("$e")), c.pushFrame(StackVar, label)),
			&ast.Throw{Arg: ast.Id("$e")},
		)
		try := &ast.Try{
			Block:      ast.BlockOf(apply, clearLbl),
			CatchParam: "$e",
			Catch:      handler,
		}
		return ast.IfThen(guard, try)
	case Eager:
		return ast.IfThen(guard,
			c.pushFrame(ShadowVar, label),
			apply,
			clearLbl,
			ast.ExprOf(ast.CallN(ast.Dot(ast.Id(ShadowVar), "pop"))),
		)
	}
	panic("instrument: unknown strategy")
}

// pushFrame emits the reified continuation frame of Figure 3 line 17:
//
//	<stack>.push({ label: j, locals: [l1, ...], reenter:
//	               $reenter || ($reenter = () => F.call(this, p...)) })
//
// The locals snapshot is an inline array literal and the reenter thunk is
// created lazily at the site — calls that never reach a capture site in
// capture mode (i.e. every normal-mode call) allocate neither, which is
// what lets the engine's call path run thunk-allocation-free. The eager
// strategy still pays the frame object and array on every call, which is
// precisely its cost model.
func (c *fctx) pushFrame(stack string, label int) ast.Stmt {
	elems := make([]ast.Expr, len(c.locals))
	for i, name := range c.locals {
		elems[i] = ast.Id(name)
	}
	frame := &ast.Object{Props: []ast.Property{
		{Kind: ast.PropInit, Key: "label", Value: ast.Int(label)},
		{Kind: ast.PropInit, Key: "locals", Value: &ast.Array{Elems: elems}},
		{Kind: ast.PropInit, Key: "reenter",
			Value: ast.Log("||", ast.Id("$reenter"), ast.SetId("$reenter", c.reenterArrow()))},
	}}
	return ast.ExprOf(ast.CallN(ast.Dot(ast.Id(stack), "push"), frame))
}
