// Package instrument implements the paper's core contribution: the K⟦·⟧ /
// A⟦·⟧ compilation of Figures 3 and 4, which rewrites A-normalized
// JavaScript so every function can run in three modes —
//
//	normal:  execute as written
//	capture: unwind, reifying one stack frame per activation
//	restore: re-enter frames, jump to the saved label, and resume
//
// A reified frame carries the call-site label, a snapshot of the locals,
// and a reenter thunk (Figure 3). Three interchangeable strategies decide
// how frames are captured (§3.2): checked-return (a conditional after every
// call), exceptional (a handler around every call), and eager (a shadow
// stack maintained during normal execution). Constructors are either
// desugared away before this pass or handled dynamically with new.target
// (§3.2 "Constructors"); the arity sub-languages of §4.2 choose how reenter
// re-applies the function. §3.1.1's catch/finally re-entry is implemented
// by re-throwing a saved exception and re-returning a saved completion
// value.
//
// Instrumented code communicates with the runtime (internal/rt) through JS
// globals ($mode, $stack, $rstack, $shadow) and runtime natives ($C,
// $suspend, $bp, $isSig, $isCap), mirroring the paper's generated code.
package instrument

import (
	"repro/internal/ast"
)

// Strategy selects the continuation representation (Figure 4 b/c/d).
type Strategy int

// Continuation strategies.
const (
	Checked     Strategy = iota // Figure 4b: check a flag after every call
	Exceptional                 // Figure 4c: handler around every call
	Eager                       // Figure 4d: maintain a shadow stack
)

func (s Strategy) String() string {
	switch s {
	case Checked:
		return "checked"
	case Exceptional:
		return "exceptional"
	case Eager:
		return "eager"
	}
	return "unknown"
}

// ArgsMode selects the arity sub-language (§4.2, Figure 5's Args column).
type ArgsMode int

// Arity sub-languages.
const (
	ArgsNone    ArgsMode = iota // ✗ — reenter passes formals positionally
	ArgsVarargs                 // V — reenter applies the arguments object
	ArgsMixed                   // M — apply arguments and restore formals
	ArgsFull                    // ✓ — formals already live in arguments[i]
)

// Options configures the instrumentation.
type Options struct {
	Strategy Strategy
	// WrappedCtors preserves new-expressions and makes every function
	// constructor-safe using new.target; when false, constructors must
	// have been desugared to $construct beforehand.
	WrappedCtors bool
	Args         ArgsMode
	// PerStatementGuards emits the paper's literal K⟦·⟧ output — an `if
	// (normal)` around every individual statement (Figure 4a) — instead of
	// grouping maximal label-free runs under one guard. Used by the
	// ablation benchmarks; grouping is semantically identical and faster.
	PerStatementGuards bool
}

// Names of the runtime globals and primitives shared between generated
// code and internal/rt.
const (
	ModeVar   = "$mode"
	StackVar  = "$stack"
	RStackVar = "$rstack"
	ShadowVar = "$shadow"
	SuspendFn = "$suspend"
	BpFn      = "$bp"
	IsSigFn   = "$isSig"
	IsCapFn   = "$isCap"
	CFn       = "$C"

	ModeNormal  = "normal"
	ModeCapture = "capture"
	ModeRestore = "restore"
)

// Apply instruments every function in prog in place. The program's top
// level is expected to contain only declarations (the core compiler wraps
// user statements into a $main function first).
func Apply(prog *ast.Program, opts Options) *ast.Program {
	var fns []*ast.Func
	ast.Walk(prog, func(n ast.Node) bool {
		if fn, ok := n.(*ast.Func); ok {
			fns = append(fns, fn)
		}
		return true
	})
	for _, fn := range fns {
		instrumentFunc(fn, opts)
	}
	return prog
}

// instrumentFunc rewrites one function body. Nested functions are
// instrumented by their own Apply visit; this pass never descends into
// them.
func instrumentFunc(fn *ast.Func, opts Options) {
	if !hasNonTailSites(fn.Body) {
		// No non-tail call sites: the function can never be suspended nor
		// re-entered, so it needs no machinery (leaf functions pay nothing,
		// and tail calls stay uninstrumented per §3.2.2).
		return
	}
	c := &fctx{
		opts:        opts,
		fname:       fn.Name,
		fin:         map[*ast.Try]*finInfo{},
		shadowDepth: map[*ast.Try]string{},
	}

	body := fn.Body
	body = c.renameCatchParams(body)
	if opts.WrappedCtors {
		body = c.ctorProtocol(body)
	}
	body = c.rewriteFinallyReturns(body)
	if opts.Strategy == Eager {
		body = c.eagerShadowDepths(body)
	}
	// Locals must be collected before declsToAssigns erases the var
	// declarations. pushFrame (inside kStmts) inlines this list at every
	// capture site, so it rides on the context.
	c.locals = c.localsList(fn, body)
	c.params = fn.Params
	body = c.declsToAssigns(body, true)
	c.labelSites(body)

	fn.Body = append(c.prologue(fn, c.locals), c.kStmts(body)...)
}

// hasNonTailSites reports whether the body contains any application outside
// tail position (Call or New anywhere except directly under `return`).
func hasNonTailSites(body []ast.Stmt) bool {
	found := false
	var walkStmt func(s ast.Stmt)
	checkExpr := func(e ast.Expr) {
		if e == nil || found {
			return
		}
		ast.Walk(e, func(n ast.Node) bool {
			switch n.(type) {
			case *ast.Call, *ast.New:
				found = true
				return false
			case *ast.Func:
				return false // nested functions are separate scopes
			}
			return !found
		})
	}
	walkStmt = func(s ast.Stmt) {
		if found {
			return
		}
		switch n := s.(type) {
		case *ast.VarDecl:
			for _, d := range n.Decls {
				checkExpr(d.Init)
			}
		case *ast.ExprStmt:
			checkExpr(n.X)
		case *ast.Block:
			for _, st := range n.Body {
				walkStmt(st)
			}
		case *ast.If:
			checkExpr(n.Test)
			walkStmt(n.Cons)
			if n.Alt != nil {
				walkStmt(n.Alt)
			}
		case *ast.While:
			checkExpr(n.Test)
			walkStmt(n.Body)
		case *ast.Return:
			if call, ok := n.Arg.(*ast.Call); ok {
				// Tail position: only the callee/args could contain nested
				// applications, but post-ANF they are atoms.
				for _, a := range call.Args {
					checkExpr(a)
				}
				if m, isMember := call.Callee.(*ast.Member); isMember {
					checkExpr(m.X)
					if m.Computed {
						checkExpr(m.Index)
					}
				}
				return
			}
			checkExpr(n.Arg)
		case *ast.Labeled:
			walkStmt(n.Body)
		case *ast.Throw:
			checkExpr(n.Arg)
		case *ast.Try:
			// A function with try/finally needs instrumentation for return
			// bookkeeping only when it has sites; recurse normally.
			for _, st := range n.Block.Body {
				walkStmt(st)
			}
			if n.Catch != nil {
				for _, st := range n.Catch.Body {
					walkStmt(st)
				}
			}
			if n.Finally != nil {
				for _, st := range n.Finally.Body {
					walkStmt(st)
				}
			}
		}
	}
	for _, s := range body {
		walkStmt(s)
	}
	return found
}

// fctx is per-function instrumentation state.
type fctx struct {
	opts        Options
	fname       string
	params      []string // formal parameters, for the reenter thunk
	locals      []string // capture/restore locals list, for pushFrame
	nextLabel   int      // next call-site label; labels start at 1
	extra       []string
	ctv         string // constructor-protocol return temp
	genSym      int
	fin         map[*ast.Try]*finInfo
	shadowDepth map[*ast.Try]string
}

func (c *fctx) fresh(prefix string) string {
	c.genSym++
	name := prefix + itoa(c.genSym)
	c.extra = append(c.extra, name)
	return name
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}

// localsList builds the ordered locals vector used by the locals() thunk
// and the restore prologue. Order: formals, arguments (when the arity mode
// reifies it), declared vars and function names, then generated locals.
func (c *fctx) localsList(fn *ast.Func, body []ast.Stmt) []string {
	var names []string
	seen := map[string]bool{}
	add := func(n string) {
		if !seen[n] {
			seen[n] = true
			names = append(names, n)
		}
	}
	if c.opts.Args != ArgsFull {
		for _, p := range fn.Params {
			add(p)
		}
	}
	if c.opts.Args == ArgsMixed || c.opts.Args == ArgsFull {
		add("arguments")
	}
	for _, v := range declaredNames(body) {
		add(v)
	}
	for _, v := range c.extra {
		add(v)
	}
	return names
}

// declaredNames lists var and function declarations without entering
// nested functions.
func declaredNames(body []ast.Stmt) []string {
	var names []string
	var walk func(s ast.Stmt)
	walk = func(s ast.Stmt) {
		switch n := s.(type) {
		case *ast.VarDecl:
			for _, d := range n.Decls {
				names = append(names, d.Name)
			}
		case *ast.FuncDecl:
			names = append(names, n.Fn.Name)
		case *ast.Block:
			for _, st := range n.Body {
				walk(st)
			}
		case *ast.If:
			walk(n.Cons)
			if n.Alt != nil {
				walk(n.Alt)
			}
		case *ast.While:
			walk(n.Body)
		case *ast.Labeled:
			walk(n.Body)
		case *ast.Try:
			for _, st := range n.Block.Body {
				walk(st)
			}
			if n.Catch != nil {
				for _, st := range n.Catch.Body {
					walk(st)
				}
			}
			if n.Finally != nil {
				for _, st := range n.Finally.Body {
					walk(st)
				}
			}
		}
	}
	for _, s := range body {
		walk(s)
	}
	return names
}

// ---------------------------------------------------------------------------
// Prologue (Figure 3 lines 5–13)
// ---------------------------------------------------------------------------

func isMode(mode string) ast.Expr {
	return ast.Bin("===", ast.Id(ModeVar), ast.Strlit(mode))
}

func (c *fctx) prologue(fn *ast.Func, locals []string) []ast.Stmt {
	var out []ast.Stmt

	// var l1, l2, ... ;  — every non-formal local, so restore can assign
	// before the original declarations run.
	decl := &ast.VarDecl{}
	isParam := map[string]bool{}
	for _, p := range fn.Params {
		isParam[p] = true
	}
	for _, name := range locals {
		if !isParam[name] && name != "arguments" {
			decl.Decls = append(decl.Decls, ast.Declarator{Name: name})
		}
	}
	if len(decl.Decls) > 0 {
		out = append(out, decl)
	}

	if c.opts.WrappedCtors {
		out = append(out, ast.Var("$nt", &ast.NewTarget{}))
	}
	// $reenter starts undefined and is materialized lazily at the first
	// capture site a call reaches (pushFrame): calls that never suspend —
	// the overwhelming majority — allocate no thunk closures at all. The
	// historical prologue created $locals and $reenter arrows on every
	// call, which was the dominant allocation of instrumented execution.
	out = append(out, &ast.VarDecl{Decls: []ast.Declarator{
		{Name: "$lbl", Init: ast.Int(-1)},
		{Name: "$k"},
		{Name: "$reenter"},
	}})

	// if ($mode === "restore") { restoreFrame }
	restore := []ast.Stmt{
		ast.ExprOf(ast.SetId("$k", ast.CallN(ast.Dot(ast.Id(RStackVar), "pop")))),
		ast.ExprOf(ast.SetId("$lbl", ast.Dot(ast.Id("$k"), "label"))),
		ast.Var("$l", ast.Dot(ast.Id("$k"), "locals")),
	}
	for i, name := range locals {
		restore = append(restore, ast.ExprOf(ast.SetId(name, ast.Idx(ast.Id("$l"), ast.Int(i)))))
	}
	restore = append(restore, ast.ExprOf(ast.SetId("$k",
		ast.Idx(ast.Id(RStackVar), ast.Bin("-", ast.Dot(ast.Id(RStackVar), "length"), ast.Int(1))))))
	out = append(out, ast.IfThen(isMode(ModeRestore), restore...))

	return out
}

// reenterArrow builds the reenter thunk: an arrow (lexical this) that
// re-invokes the function — F.call(this, p...) under ArgsNone, or
// F.apply(this, arguments) when the arity sub-language reifies the
// arguments object. Each pushFrame site materializes it lazily
// (`$reenter || ($reenter = <arrow>)`), so it is only ever evaluated on
// the first capture a call performs.
func (c *fctx) reenterArrow() ast.Expr {
	var reenterBody ast.Expr
	switch c.opts.Args {
	case ArgsNone:
		args := []ast.Expr{&ast.This{}}
		for _, p := range c.params {
			args = append(args, ast.Id(p))
		}
		reenterBody = ast.CallN(ast.Dot(ast.Id(c.fname), "call"), args...)
	default: // Varargs, Mixed, Full re-apply the arguments object
		reenterBody = ast.CallN(ast.Dot(ast.Id(c.fname), "apply"), &ast.This{}, ast.Id("arguments"))
	}
	return ast.ArrowFn(nil, ast.Ret(reenterBody))
}

// ---------------------------------------------------------------------------
// Pre-passes
// ---------------------------------------------------------------------------

// renameCatchParams renames every catch parameter to a fresh function-wide
// local ($e<N>) so the caught exception participates in locals capture and
// can be re-thrown to re-enter the clause (§3.1.1).
func (c *fctx) renameCatchParams(body []ast.Stmt) []ast.Stmt {
	for i, s := range body {
		body[i] = c.renameCatchStmt(s)
	}
	return body
}

func (c *fctx) renameCatchStmt(s ast.Stmt) ast.Stmt {
	switch n := s.(type) {
	case *ast.Block:
		c.renameCatchParams(n.Body)
	case *ast.If:
		n.Cons = c.renameCatchStmt(n.Cons)
		if n.Alt != nil {
			n.Alt = c.renameCatchStmt(n.Alt)
		}
	case *ast.While:
		n.Body = c.renameCatchStmt(n.Body)
	case *ast.Labeled:
		n.Body = c.renameCatchStmt(n.Body)
	case *ast.Try:
		c.renameCatchParams(n.Block.Body)
		if n.Catch != nil {
			fresh := c.fresh("$exn")
			renameIdent(n.Catch.Body, n.CatchParam, fresh)
			n.CatchParam = fresh
			c.renameCatchParams(n.Catch.Body)
		}
		if n.Finally != nil {
			c.renameCatchParams(n.Finally.Body)
		}
	}
	return s
}

// renameIdent renames free occurrences of old to new inside body,
// respecting shadowing by nested functions.
func renameIdent(body []ast.Stmt, old, new string) {
	for _, s := range body {
		ast.Walk(s, func(node ast.Node) bool {
			switch n := node.(type) {
			case *ast.Ident:
				if n.Name == old {
					n.Name = new
				}
			case *ast.Func:
				for _, p := range n.Params {
					if p == old {
						return false
					}
				}
				for _, d := range declaredNames(n.Body) {
					if d == old {
						return false
					}
				}
				if n.Name == old {
					return false
				}
			}
			return true
		})
	}
}

// ctorProtocol implements §3.2's wrapped-constructor strategy: capture
// new.target into $nt, rewrite new.target references, and make every return
// honor the constructor protocol (return `this` unless the function
// explicitly returns an object), so that re-entering a constructor as a
// plain function during restore yields the right value.
func (c *fctx) ctorProtocol(body []ast.Stmt) []ast.Stmt {
	c.ctv = c.fresh("$ctv")
	// $nt is declared in the prologue but must also travel in the reified
	// frame: a restored constructor re-enters as a plain call, where
	// new.target is undefined.
	c.extra = append(c.extra, "$nt")
	rewriteNewTarget(body)
	out := c.ctorReturns(body)
	// Implicit completion: constructors return `this`.
	out = append(out, ast.IfThen(
		ast.Bin("!==", ast.Id("$nt"), ast.Undef()),
		ast.Ret(&ast.This{}),
	))
	return out
}

func rewriteNewTarget(body []ast.Stmt) {
	for _, s := range body {
		rewriteNewTargetStmt(s)
	}
}

func rewriteNewTargetStmt(s ast.Stmt) {
	replace := func(e ast.Expr) ast.Expr {
		if _, ok := e.(*ast.NewTarget); ok {
			return ast.Id("$nt")
		}
		return e
	}
	swapInStmt(s, replace)
}

// ctorReturns rewrites `return e` into the explicit protocol:
//
//	$ctv = e;
//	if ($nt !== undefined && $ctv is not object-like) return this;
//	return $ctv;
func (c *fctx) ctorReturns(body []ast.Stmt) []ast.Stmt {
	var out []ast.Stmt
	for _, s := range body {
		out = append(out, c.ctorReturnStmt(s)...)
	}
	return out
}

func (c *fctx) ctorReturnStmt(s ast.Stmt) []ast.Stmt {
	switch n := s.(type) {
	case *ast.Return:
		arg := n.Arg
		if arg == nil {
			arg = ast.Undef()
		}
		return []ast.Stmt{
			ast.ExprOf(ast.SetId(c.ctv, arg)),
			ast.IfThen(
				ast.Log("&&",
					ast.Bin("!==", ast.Id("$nt"), ast.Undef()),
					notObjectLike(ast.Id(c.ctv)),
				),
				ast.Ret(&ast.This{}),
			),
			ast.Ret(ast.Id(c.ctv)),
		}
	case *ast.Block:
		n.Body = c.ctorReturns(n.Body)
		return []ast.Stmt{n}
	case *ast.If:
		n.Cons = c.wrapCtor(n.Cons)
		if n.Alt != nil {
			n.Alt = c.wrapCtor(n.Alt)
		}
		return []ast.Stmt{n}
	case *ast.While:
		n.Body = c.wrapCtor(n.Body)
		return []ast.Stmt{n}
	case *ast.Labeled:
		n.Body = c.wrapCtor(n.Body)
		return []ast.Stmt{n}
	case *ast.Try:
		n.Block.Body = c.ctorReturns(n.Block.Body)
		if n.Catch != nil {
			n.Catch.Body = c.ctorReturns(n.Catch.Body)
		}
		if n.Finally != nil {
			n.Finally.Body = c.ctorReturns(n.Finally.Body)
		}
		return []ast.Stmt{n}
	default:
		return []ast.Stmt{s}
	}
}

func (c *fctx) wrapCtor(s ast.Stmt) ast.Stmt {
	out := c.ctorReturnStmt(s)
	if len(out) == 1 {
		return out[0]
	}
	return ast.BlockOf(out...)
}

// notObjectLike builds `(x === null || (typeof x !== "object" && typeof x
// !== "function"))` — the values a constructor's return does not override.
func notObjectLike(x ast.Expr) ast.Expr {
	return ast.Log("||",
		ast.Bin("===", x, &ast.Null{}),
		ast.Log("&&",
			ast.Bin("!==", &ast.Unary{Op: "typeof", X: x}, ast.Strlit("object")),
			ast.Bin("!==", &ast.Unary{Op: "typeof", X: x}, ast.Strlit("function")),
		),
	)
}

// swapInStmt applies an expression replacement function shallowly through a
// statement tree without entering nested functions.
func swapInStmt(s ast.Stmt, replace func(ast.Expr) ast.Expr) {
	var doExpr func(e ast.Expr) ast.Expr
	doExpr = func(e ast.Expr) ast.Expr {
		if e == nil {
			return nil
		}
		if r := replace(e); r != e {
			return r
		}
		switch n := e.(type) {
		case *ast.Array:
			for i := range n.Elems {
				n.Elems[i] = doExpr(n.Elems[i])
			}
		case *ast.Object:
			for i := range n.Props {
				if _, isFn := n.Props[i].Value.(*ast.Func); !isFn {
					n.Props[i].Value = doExpr(n.Props[i].Value)
				}
			}
		case *ast.Unary:
			n.X = doExpr(n.X)
		case *ast.Update:
			n.X = doExpr(n.X)
		case *ast.Binary:
			n.L = doExpr(n.L)
			n.R = doExpr(n.R)
		case *ast.Logical:
			n.L = doExpr(n.L)
			n.R = doExpr(n.R)
		case *ast.Assign:
			n.Target = doExpr(n.Target)
			n.Value = doExpr(n.Value)
		case *ast.Cond:
			n.Test = doExpr(n.Test)
			n.Cons = doExpr(n.Cons)
			n.Alt = doExpr(n.Alt)
		case *ast.Call:
			n.Callee = doExpr(n.Callee)
			for i := range n.Args {
				n.Args[i] = doExpr(n.Args[i])
			}
		case *ast.New:
			n.Callee = doExpr(n.Callee)
			for i := range n.Args {
				n.Args[i] = doExpr(n.Args[i])
			}
		case *ast.Member:
			n.X = doExpr(n.X)
			if n.Computed {
				n.Index = doExpr(n.Index)
			}
		case *ast.Seq:
			for i := range n.Exprs {
				n.Exprs[i] = doExpr(n.Exprs[i])
			}
		}
		return e
	}
	var doStmt func(st ast.Stmt)
	doStmt = func(st ast.Stmt) {
		switch n := st.(type) {
		case *ast.VarDecl:
			for i := range n.Decls {
				if n.Decls[i].Init != nil {
					n.Decls[i].Init = doExpr(n.Decls[i].Init)
				}
			}
		case *ast.ExprStmt:
			n.X = doExpr(n.X)
		case *ast.Block:
			for _, sub := range n.Body {
				doStmt(sub)
			}
		case *ast.If:
			n.Test = doExpr(n.Test)
			doStmt(n.Cons)
			if n.Alt != nil {
				doStmt(n.Alt)
			}
		case *ast.While:
			n.Test = doExpr(n.Test)
			doStmt(n.Body)
		case *ast.Return:
			if n.Arg != nil {
				n.Arg = doExpr(n.Arg)
			}
		case *ast.Labeled:
			doStmt(n.Body)
		case *ast.Throw:
			n.Arg = doExpr(n.Arg)
		case *ast.Try:
			for _, sub := range n.Block.Body {
				doStmt(sub)
			}
			if n.Catch != nil {
				for _, sub := range n.Catch.Body {
					doStmt(sub)
				}
			}
			if n.Finally != nil {
				for _, sub := range n.Finally.Body {
					doStmt(sub)
				}
			}
		}
	}
	doStmt(s)
}
