package bench

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"repro/internal/baselines"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/langs"
	"repro/internal/langs/native"
	"repro/internal/stats"
)

// pick returns at most n benchmarks in quick mode, all otherwise.
func pick(cfg Config, bs []langs.Benchmark, n int) []langs.Benchmark {
	if cfg.Quick && len(bs) > n {
		return bs[:n]
	}
	return bs
}

// baseOpts is the harness-wide Stopify configuration: yield every 100 ms
// with the approx estimator, per §6.1's setup.
func baseOpts() core.Opts {
	o := core.Defaults()
	o.YieldIntervalMs = 100
	o.Timer = "approx"
	return o
}

// Fig2aImplicits reproduces Figure 2a: the Python suite with conservative
// (full-implicits) settings versus the PyJS sub-language (no implicits).
func Fig2aImplicits(cfg Config) (string, error) {
	eng := engine.Chrome()
	py := langs.Python()
	t := newTable("Figure 2a — implicit method calls vs none (Python/PyJS, chrome)")
	t.row("%-18s %12s %12s %8s", "benchmark", "implicits ✓", "implicits ✗", "ratio")
	var ratios []float64
	for _, b := range pick(cfg, py.Benchmarks, 4) {
		conservative := py.Opts(baseOpts())
		conservative.Implicits = "full"
		withImpl, err := slowdown(b.Name, b.Source, conservative, eng, cfg)
		if err != nil {
			return "", err
		}
		tuned := py.Opts(baseOpts())
		noImpl, err := slowdown(b.Name, b.Source, tuned, eng, cfg)
		if err != nil {
			return "", err
		}
		ratio := withImpl.Slowdown / noImpl.Slowdown
		ratios = append(ratios, ratio)
		t.row("%-18s %11.1fx %11.1fx %7.1fx", b.Name, withImpl.Slowdown, noImpl.Slowdown, ratio)
	}
	t.row("paper: conservative settings cost several times more than the sub-language (Fig 2a)")
	t.row("measured mean implicit-cost ratio: %.1fx", stats.Mean(ratios))
	return t.String(), nil
}

// Fig2bConstructors reproduces Figure 2b: desugared versus dynamic
// (wrapped) constructors on a Chrome-like and an Edge-like engine. The
// class-heavy Java suite supplies the constructor pressure.
func Fig2bConstructors(cfg Config) (string, error) {
	jv := langs.Java()
	t := newTable("Figure 2b — constructor encoding by engine (Java/JSweet suite)")
	t.row("%-16s %10s %10s %10s %10s", "benchmark", "chr/desug", "chr/dyn", "edge/desug", "edge/dyn")
	engines := []*engine.Profile{engine.Chrome(), engine.Edge()}
	sums := map[string]float64{}
	for _, b := range pick(cfg, jv.Benchmarks, 3) {
		vals := map[string]float64{}
		for _, eng := range engines {
			for _, ctor := range []string{"direct", "wrapped"} {
				o := jv.Opts(baseOpts())
				o.Ctor = ctor
				m, err := slowdown(b.Name, b.Source, o, eng, cfg)
				if err != nil {
					return "", err
				}
				key := eng.Name + "/" + ctor
				vals[key] = m.Slowdown
				sums[key] += m.Slowdown
			}
		}
		t.row("%-16s %9.1fx %9.1fx %9.1fx %9.1fx", b.Name,
			vals["chrome/direct"], vals["chrome/wrapped"], vals["edge/direct"], vals["edge/wrapped"])
	}
	t.row("paper: desugaring wins on Chrome, the dynamic check wins on Edge (Fig 2b)")
	t.row("measured: chrome desugar %.1f vs dynamic %.1f; edge desugar %.1f vs dynamic %.1f",
		sums["chrome/direct"], sums["chrome/wrapped"], sums["edge/direct"], sums["edge/wrapped"])
	return t.String(), nil
}

// yieldIntervals runs one program and returns the observed gaps between
// yields (the event-loop task durations, which is how long the "browser"
// was blocked).
func yieldIntervals(src string, opts core.Opts, eng *engine.Profile) ([]float64, error) {
	c, err := core.Compile(src, opts)
	if err != nil {
		return nil, err
	}
	run, err := c.NewRun(core.RunConfig{Engine: eng, Seed: 1})
	if err != nil {
		return nil, err
	}
	if err := run.RunToCompletion(); err != nil {
		return nil, err
	}
	durations := run.Loop.TaskDurations
	if len(durations) > 1 {
		durations = durations[:len(durations)-1] // final partial slice
	}
	return durations, nil
}

// Fig2cYieldInterval reproduces Figure 2c: average time between yields for
// the countdown estimator (fixed execution-rate assumption) versus the
// sampling estimator, on two engines. Quick mode shrinks δ so short
// benchmarks still yield repeatedly.
func Fig2cYieldInterval(cfg Config) (string, error) {
	delta := 100.0
	countdownN := 1000000
	reps := 40
	if cfg.Quick {
		delta = 5
		countdownN = 40000
		reps = 4
	}
	py := langs.Python()
	t := newTable(fmt.Sprintf("Figure 2c — average time between yields (δ=%.0fms)", delta))
	t.row("%-18s %16s %16s %16s %16s", "benchmark", "chrome/countdown", "chrome/approx", "edge/countdown", "edge/approx")
	for _, b := range pick(cfg, py.Benchmarks, 3) {
		src := loopify(b.Source, reps)
		row := []string{}
		for _, eng := range []*engine.Profile{engine.Chrome(), engine.Edge()} {
			for _, timer := range []string{"countdown", "approx"} {
				o := py.Opts(baseOpts())
				o.Timer = timer
				o.YieldIntervalMs = delta
				o.CountdownN = countdownN
				gaps, err := yieldIntervals(src, o, eng)
				if err != nil {
					return "", err
				}
				if len(gaps) == 0 {
					row = append(row, "(no yields)")
					continue
				}
				row = append(row, fmt.Sprintf("%7.1fms", stats.Mean(gaps)))
			}
		}
		t.row("%-18s %16s %16s %16s %16s", b.Name, row[0], row[1], row[2], row[3])
	}
	t.row("paper: countdown varies wildly across benchmarks and engines; approx stays near δ (Fig 2c)")
	return t.String(), nil
}

// Fig7Estimators reproduces Figure 7: mean ± stddev of the interrupt
// interval for the countdown, approx, and exact estimators.
func Fig7Estimators(cfg Config) (string, error) {
	delta := 100.0
	countdownN := 1000000
	reps := 40
	if cfg.Quick {
		delta = 5
		countdownN = 40000
		reps = 4
	}
	py := langs.Python()
	eng := engine.Chrome()
	t := newTable(fmt.Sprintf("Figure 7 — estimator strategies, interrupt interval μ±σ (δ=%.0fms)", delta))
	t.row("%-18s %18s %18s %18s", "benchmark", "countdown", "approximate", "exact")
	for _, b := range pick(cfg, py.Benchmarks, 3) {
		src := loopify(b.Source, reps)
		cells := []string{}
		for _, timer := range []string{"countdown", "approx", "exact"} {
			o := py.Opts(baseOpts())
			o.Timer = timer
			o.YieldIntervalMs = delta
			o.CountdownN = countdownN
			gaps, err := yieldIntervals(src, o, eng)
			if err != nil {
				return "", err
			}
			if len(gaps) == 0 {
				cells = append(cells, "(no yields)")
				continue
			}
			cells = append(cells, fmt.Sprintf("%6.1f ± %5.1f ms", stats.Mean(gaps), stats.Stddev(gaps)))
		}
		t.row("%-18s %18s %18s %18s", b.Name, cells[0], cells[1], cells[2])
	}
	t.row("paper: countdown μ ranges 68–386ms; approx ≈ δ; exact ≈ δ with tiny σ (Fig 7)")
	return t.String(), nil
}

// loopify repeats a benchmark's whole source body inside a driver loop by
// wrapping it in a function executed reps times — used by the
// responsiveness experiments, which need programs that run much longer
// than δ.
func loopify(src string, reps int) string {
	return "function $benchBody() {\n" + src + "\n}\n" +
		fmt.Sprintf("for (var $r = 0; $r < %d; $r++) { $benchBody(); }\n", reps)
}

// Fig5Table prints the compiler/sub-language matrix.
func Fig5Table() string {
	t := newTable("Figure 5 — compilers and their sub-languages")
	t.row("%-12s %-14s %-6s %-8s %-8s %-6s %6s", "language", "compiler", "impl", "args", "getters", "eval", "benchs")
	for _, p := range langs.All() {
		t.row("%-12s %-14s %-6s %-8s %-8v %-6v %6d",
			p.Name, p.Compiler, p.Impl, p.Args, p.Getters, p.Eval, len(p.Benchmarks))
	}
	t.row("total benchmarks: %d (paper: 147)", langs.TotalBenchmarks())
	return t.String()
}

// LangResult is one language × engine cell of Figure 10.
type LangResult struct {
	Language string
	Engine   string
	Median   float64
	CDF      []stats.CDFPoint
}

// Fig10Languages reproduces Figure 10: slowdown distributions for the nine
// §6.1 languages across the five platforms, using each language's
// sub-language and each engine's best strategy (Figure 11).
func Fig10Languages(cfg Config) (string, []LangResult, error) {
	engines := engine.Profiles()
	names := []string{"chrome", "chromebook", "edge", "firefox", "safari"}
	if cfg.Quick {
		names = []string{"chrome", "edge"}
	}
	t := newTable("Figure 10 — median slowdown by language and platform")
	header := fmt.Sprintf("%-12s", "language")
	for _, n := range names {
		header += fmt.Sprintf(" %11s", n)
	}
	t.row("%s", header)

	var results []LangResult
	profiles := langs.All()[:9] // Pyret is §6.4
	if cfg.Quick {
		profiles = profiles[:3]
	}
	for _, p := range profiles {
		line := fmt.Sprintf("%-12s", p.Name)
		for _, en := range names {
			eng := engines[en]
			opts := p.Opts(baseOpts())
			opts.Cont, opts.Ctor = BestStrategy(eng)
			var slowdowns []float64
			for _, b := range pick(cfg, p.Benchmarks, 2) {
				m, err := slowdown(b.Name, b.Source, opts, eng, cfg)
				if err != nil {
					return "", nil, fmt.Errorf("%s on %s: %w", p.Name, en, err)
				}
				slowdowns = append(slowdowns, m.Slowdown)
			}
			med := stats.Median(slowdowns)
			results = append(results, LangResult{Language: p.Name, Engine: en, Median: med, CDF: stats.CDF(slowdowns)})
			line += fmt.Sprintf(" %10.1fx", med)
		}
		t.row("%s", line)
	}
	t.row("paper medians (chrome): C++ 11.6, Clojure 9.1, Dart 3.0, Java 8.1, JS 20.0, OCaml 5.4, Python 1.7, Scala 14.6, Scheme 8.8")
	return t.String(), results, nil
}

// BestStrategy returns the per-engine continuation and constructor choices
// Figure 11 reports: exceptional+desugar everywhere except Edge-like
// engines, where checked+dynamic wins.
func BestStrategy(eng *engine.Profile) (cont, ctor string) {
	if eng.TryCost > 10 {
		return "checked", "wrapped"
	}
	return "exceptional", "direct"
}

// Fig11Strategies measures every strategy pair per engine and reports the
// winner, reproducing Figure 11's table.
func Fig11Strategies(cfg Config) (string, map[string][2]string, error) {
	t := newTable("Figure 11 — best implementation strategy per engine")
	t.row("%-12s %-14s %-12s", "platform", "continuations", "constructors")
	suite := pick(cfg, langs.Java().Benchmarks, 2)
	winners := map[string][2]string{}
	names := []string{"chrome", "edge", "firefox", "safari"}
	if cfg.Quick {
		names = []string{"chrome", "edge"}
	}
	for _, en := range names {
		eng := engine.Profiles()[en]
		bestCont, bestCtor, best := "", "", 0.0
		for _, cont := range []string{"checked", "exceptional", "eager"} {
			for _, ctor := range []string{"direct", "wrapped"} {
				total := 0.0
				for _, b := range suite {
					o := langs.Java().Opts(baseOpts())
					o.Cont = cont
					o.Ctor = ctor
					m, err := slowdown(b.Name, b.Source, o, eng, cfg)
					if err != nil {
						return "", nil, err
					}
					total += m.Slowdown
				}
				if bestCont == "" || total < best {
					best = total
					bestCont, bestCtor = cont, ctor
				}
			}
		}
		winners[en] = [2]string{bestCont, bestCtor}
		label := bestCtor
		if label == "direct" {
			label = "desugar"
		} else {
			label = "dynamic"
		}
		t.row("%-12s %-14s %-12s", en, bestCont, label)
	}
	t.row("paper: Edge checked+dynamic; Chrome/Firefox/Safari exceptional+desugar (Fig 11)")
	return t.String(), winners, nil
}

// Fig12Skulpt reproduces Figure 12: Stopify-compiled Python versus a
// Skulpt-like execution layer; values below 1 mean Stopify is faster.
func Fig12Skulpt(cfg Config) (string, error) {
	py := langs.Python()
	eng := engine.Chrome()
	t := newTable("Figure 12 — slowdown relative to Skulpt (μ; <1 means Stopify faster)")
	t.row("%-18s %10s", "benchmark", "μ")
	var all []float64
	for _, b := range pick(cfg, py.Benchmarks, 4) {
		opts := py.Opts(baseOpts())
		stopMs, err := timeStopified(b.Source, opts, eng, cfg.Repeats)
		if err != nil {
			return "", err
		}
		skSrc, err := baselines.CompileSkulpt(b.Source)
		if err != nil {
			return "", err
		}
		skMs, err := timeSource(skSrc, eng, cfg.Repeats)
		if err != nil {
			return "", err
		}
		ratio := stopMs / skMs
		all = append(all, ratio)
		t.row("%-18s %9.2f", b.Name, ratio)
	}
	t.row("paper: 0.08–1.25, Stopify faster or competitive on all benchmarks (Fig 12)")
	t.row("measured mean: %.2f", stats.Mean(all))
	return t.String(), nil
}

// Fig13OctaneKraken reproduces Figure 13: Stopify's slowdown on an
// Octane-like suite versus a Kraken-like suite under full-JavaScript
// settings.
func Fig13OctaneKraken(cfg Config) (string, error) {
	eng := engine.Chrome()
	js := langs.JavaScript()
	t := newTable("Figure 13 — Octane-like vs Kraken-like (JavaScript, full sub-language)")
	measure := func(suite []langs.Benchmark) ([]float64, error) {
		var out []float64
		for _, b := range pick(cfg, suite, 2) {
			o := js.Opts(baseOpts())
			// Octane/Kraken sources are plain JavaScript: full implicits.
			m, err := slowdown(b.Name, b.Source, o, eng, cfg)
			if err != nil {
				return nil, err
			}
			out = append(out, m.Slowdown)
			t.row("  %-22s %8.1fx", b.Name, m.Slowdown)
		}
		return out, nil
	}
	t.row("octane-like:")
	oct, err := measure(langs.OctaneLike())
	if err != nil {
		return "", err
	}
	t.row("kraken-like:")
	kra, err := measure(langs.KrakenLike())
	if err != nil {
		return "", err
	}
	t.row("medians: octane-like %.1fx, kraken-like %.1fx", stats.Median(oct), stats.Median(kra))
	t.row("paper: Octane median 1.3x vs Kraken median 41.0x — implicit-call frequency decides (Fig 13)")
	return t.String(), nil
}

// Fig14Pyret reproduces Figure 14: Pyret on Stopify versus classic Pyret's
// own gas-counting instrumentation (countdown timer), plus the deep-stack
// penalty the paper reports for deeply recursive benchmarks.
func Fig14Pyret(cfg Config) (string, error) {
	py := langs.Pyret()
	eng := engine.Chrome()
	t := newTable("Figure 14 — Pyret with Stopify vs classic Pyret")
	t.row("%-18s %10s", "benchmark", "ratio")
	var ratios []float64
	for _, b := range pick(cfg, py.Benchmarks, 3) {
		stopifyOpts := py.Opts(baseOpts())
		stopifyOpts.Cont, stopifyOpts.Ctor = BestStrategy(eng)
		stopMs, err := timeStopified(b.Source, stopifyOpts, eng, cfg.Repeats)
		if err != nil {
			return "", err
		}
		classic := py.Opts(baseOpts())
		classic.Timer = "countdown"
		classic.CountdownN = 100000
		classicMs, err := timeStopified(b.Source, classic, eng, cfg.Repeats)
		if err != nil {
			return "", err
		}
		r := stopMs / classicMs
		ratios = append(ratios, r)
		t.row("%-18s %9.2f", b.Name, r)
	}
	t.row("paper: median 1.1x on Chrome — Stopify matches five years of hand instrumentation (Fig 14)")
	t.row("measured median: %.2f", stats.Median(ratios))
	return t.String(), nil
}

// Fig15Native reproduces Figure 15: the cost of running in the browser
// substrate (our interpreter) relative to native, without Stopify.
func Fig15Native(cfg Config) (string, error) {
	eng := engine.Chrome()
	jsSources := map[string]string{
		"fib":           langs.Python().Benchmarks[3].Source,
		"nbody":         langs.Python().Benchmarks[5].Source,
		"spectral_norm": langs.Python().Benchmarks[9].Source,
		"binary_trees":  langs.Python().Benchmarks[1].Source,
		"scimark_fft":   langs.Python().Benchmarks[8].Source,
	}
	t := newTable("Figure 15 — browser-vs-native slowdown (no Stopify)")
	t.row("%-16s %12s", "kernel", "slowdown")
	kernels := native.Kernels()
	if cfg.Quick {
		kernels = kernels[:3]
	}
	for _, k := range kernels {
		src, ok := jsSources[k.Name]
		if !ok {
			continue
		}
		// Native timing.
		start := time.Now()
		sink := 0.0
		for i := 0; i < cfg.Repeats; i++ {
			sink += k.Run()
		}
		nativeMs := float64(time.Since(start)) / 1e6 / float64(cfg.Repeats)
		_ = sink
		jsMs, err := timeRaw(src, eng, cfg.Repeats)
		if err != nil {
			return "", err
		}
		ratio := jsMs / nativeMs
		t.row("%-16s %11.0fx", k.Name, ratio)
	}
	t.row("paper: 0.5x–68x by compiler; ratios here reflect a tree-walking engine (Fig 15)")
	return t.String(), nil
}

// Strawmen reproduces §3's claim: CPS and generator implementations of
// continuations are substantially slower than Stopify's checked-return
// approach.
func Strawmen(cfg Config) (string, error) {
	eng := engine.Chrome()
	suite := []langs.Benchmark{
		langs.Python().Benchmarks[3], // fib
		{Name: "tak", Source: strawmanTak},
		{Name: "sumloop", Source: strawmanSumLoop},
		{Name: "evenodd", Source: strawmanEvenOdd},
	}
	if cfg.Quick {
		suite = suite[:2]
	}
	t := newTable("§3 strawmen — slowdown vs raw (lower is better)")
	t.row("%-12s %10s %10s %10s", "benchmark", "checked", "cps", "generator")
	var ck, cp, gn []float64
	for _, b := range suite {
		opts := core.Defaults()
		opts.Cont = "checked"
		opts.YieldIntervalMs = 100
		m, err := slowdown(b.Name, b.Source, opts, eng, cfg)
		if err != nil {
			return "", err
		}
		raw := m.RawMs

		cpsSrc, err := baselines.CompileCPS(b.Source)
		if err != nil {
			return "", err
		}
		cpsMs, err := timeSource(cpsSrc, eng, cfg.Repeats)
		if err != nil {
			return "", err
		}
		genSrc, err := baselines.CompileGen(b.Source)
		if err != nil {
			return "", err
		}
		genMs, err := timeSource(genSrc, eng, cfg.Repeats)
		if err != nil {
			return "", err
		}
		ck = append(ck, m.Slowdown)
		cp = append(cp, cpsMs/raw)
		gn = append(gn, genMs/raw)
		t.row("%-12s %9.1fx %9.1fx %9.1fx", b.Name, m.Slowdown, cpsMs/raw, genMs/raw)
	}
	t.row("paper: cps ≈3x and generators ≈2x slower than the checked-return approach (§3)")
	t.row("measured means: checked %.1fx, cps %.1fx, generators %.1fx",
		stats.Mean(ck), stats.Mean(cp), stats.Mean(gn))
	return t.String(), nil
}

const strawmanTak = `
function tak(x, y, z) {
  if (y >= x) { return z; }
  return tak(tak(x - 1, y, z), tak(y - 1, z, x), tak(z - 1, x, y));
}
console.log("tak", tak(12, 6, 0));
`

const strawmanSumLoop = `
function step(acc, i) { return acc + i * i; }
function run(n) {
  var acc = 0;
  for (var i = 0; i < n; i++) { acc = step(acc, i); }
  return acc;
}
console.log("sumloop", run(4000));
`

const strawmanEvenOdd = `
function even(n) { if (n === 0) { return true; } return odd(n - 1); }
function odd(n) { if (n === 0) { return false; } return even(n - 1); }
var t = 0;
for (var i = 0; i < 200; i++) { if (even(i % 90)) { t++; } }
console.log("evenodd", t);
`

// CodeSize reproduces §6.1's code-growth observation (8x ± 5x).
func CodeSize(cfg Config) (string, error) {
	t := newTable("§6.1 — code growth after instrumentation")
	var factors []float64
	for _, p := range langs.All() {
		for _, b := range pick(cfg, p.Benchmarks, 2) {
			c, err := core.Compile(b.Source, p.Opts(baseOpts()))
			if err != nil {
				return "", fmt.Errorf("%s/%s: %w", p.Name, b.Name, err)
			}
			factors = append(factors, float64(c.CompiledBytes)/float64(c.SourceBytes))
		}
	}
	sort.Float64s(factors)
	t.row("benchmarks measured: %d", len(factors))
	t.row("growth factor: mean %.1fx, stddev %.1fx, median %.1fx",
		stats.Mean(factors), stats.Stddev(factors), stats.Median(factors))
	t.row("paper: 8x mean with 5x stddev (§6.1)")
	return t.String(), nil
}

// Experiments maps figure identifiers to runners, for the CLI.
func Experiments() map[string]func(Config) (string, error) {
	return map[string]func(Config) (string, error){
		"2a":               Fig2aImplicits,
		"2b":               Fig2bConstructors,
		"2c":               Fig2cYieldInterval,
		"5":                func(Config) (string, error) { return Fig5Table(), nil },
		"7":                Fig7Estimators,
		"10":               func(cfg Config) (string, error) { s, _, err := Fig10Languages(cfg); return s, err },
		"11":               func(cfg Config) (string, error) { s, _, err := Fig11Strategies(cfg); return s, err },
		"12":               Fig12Skulpt,
		"13":               Fig13OctaneKraken,
		"14":               Fig14Pyret,
		"15":               Fig15Native,
		"strawmen":         Strawmen,
		"codesize":         CodeSize,
		"ablation-guards":  AblationGuards,
		"ablation-sample":  AblationSampleMs,
		"ablation-segment": AblationRestoreSegment,
	}
}

// Order lists experiments in presentation order.
func Order() []string {
	return []string{
		"5", "2a", "2b", "2c", "7", "10", "11", "12", "13", "14", "15",
		"strawmen", "codesize",
		"ablation-guards", "ablation-sample", "ablation-segment",
	}
}

// RunAll executes every experiment and concatenates the tables.
func RunAll(cfg Config) (string, error) {
	var b strings.Builder
	for _, id := range Order() {
		out, err := Experiments()[id](cfg)
		if err != nil {
			return b.String(), fmt.Errorf("figure %s: %w", id, err)
		}
		b.WriteString(out)
		b.WriteString("\n")
	}
	return b.String(), nil
}
