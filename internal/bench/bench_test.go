package bench

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/langs"
)

// TestEveryExperimentRuns smoke-tests each figure at quick settings; the
// full-size runs live in cmd/stopibench and the root bench_test.go.
func TestEveryExperimentRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("experiments are slow")
	}
	cfg := QuickConfig()
	for _, id := range Order() {
		id := id
		t.Run(id, func(t *testing.T) {
			out, err := Experiments()[id](cfg)
			if err != nil {
				t.Fatalf("figure %s: %v", id, err)
			}
			if !strings.Contains(out, "==") {
				t.Fatalf("figure %s produced no table:\n%s", id, out)
			}
		})
	}
}

func TestSlowdownMeasurement(t *testing.T) {
	m, err := slowdown("fib", langs.Python().Benchmarks[3].Source,
		langs.Python().Opts(baseOpts()), engine.Chrome(), QuickConfig())
	if err != nil {
		t.Fatal(err)
	}
	if m.Slowdown <= 1 {
		t.Errorf("instrumentation cannot be free: slowdown %.2f", m.Slowdown)
	}
	if m.RawMs <= 0 || m.StopMs <= 0 {
		t.Errorf("timings must be positive: %+v", m)
	}
}

func TestVerifyCatchesDivergence(t *testing.T) {
	// A program whose output depends on yielding would diverge; verifySame
	// must catch plain mismatches. Simulate by comparing against a
	// different program through the raw path: use an args-sensitive program
	// under a sub-language that cannot support it.
	src := `
function f(a) { return arguments.length; }
console.log(f(1, 2, 3));`
	// args=none restores via formals only; a continuation captured inside f
	// would change the count. verifySame runs without captures here, so
	// this passes — the point is just that verifySame runs both sides.
	if err := verifySame(src, core.Defaults(), engine.Uniform()); err != nil {
		t.Fatalf("verifySame: %v", err)
	}
}

func TestBestStrategyMatchesFig11(t *testing.T) {
	cont, ctor := BestStrategy(engine.Edge())
	if cont != "checked" || ctor != "wrapped" {
		t.Errorf("edge should pick checked+wrapped, got %s+%s", cont, ctor)
	}
	cont, ctor = BestStrategy(engine.Chrome())
	if cont != "exceptional" || ctor != "direct" {
		t.Errorf("chrome should pick exceptional+direct, got %s+%s", cont, ctor)
	}
}

func TestLoopify(t *testing.T) {
	src := loopify(`console.log("x");`, 3)
	out, err := core.RunRaw(src, core.RunConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if strings.Count(out, "x\n") != 3 {
		t.Errorf("loopify should repeat the body: %q", out)
	}
}
