// Package bench is the experiment harness: it regenerates every table and
// figure of the paper's evaluation (§2 and §6) against this repository's
// substrates. Each experiment returns structured results plus a rendered
// text table whose rows mirror what the paper reports; EXPERIMENTS.md
// records paper-versus-measured for each.
package bench

import (
	"bytes"
	"fmt"
	"runtime/debug"
	"time"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/eventloop"
	"repro/internal/stats"
)

func init() {
	// The harness runs many short-lived interpreter realms whose live heap
	// is tiny while their allocation rate is enormous — the worst case for
	// Go's default GOGC=100, which was spending ~a quarter of benchmark
	// wall time in collection cycles with near-empty live sets. Batch
	// benchmarking is a throughput workload; trade heap headroom for it
	// the way any engine embedder would. This is harness configuration,
	// not library behavior: importing internal/interp leaves the host's
	// GC policy alone.
	debug.SetGCPercent(800)
}

// Config controls measurement effort.
type Config struct {
	// Repeats is the number of timed runs per data point (the paper uses
	// 10).
	Repeats int
	// Quick shrinks everything for smoke tests and testing.B integration.
	Quick bool
}

// DefaultConfig matches the paper's methodology at laptop scale.
func DefaultConfig() Config { return Config{Repeats: 5} }

// QuickConfig is for tests and -quick runs.
func QuickConfig() Config { return Config{Repeats: 1, Quick: true} }

// Measurement is one timed data point.
type Measurement struct {
	Name     string
	Slowdown float64
	RawMs    float64
	StopMs   float64
}

// timeStopified compiles once, then times Repeats executions, returning the
// median wall-clock milliseconds.
func timeStopified(src string, opts core.Opts, eng *engine.Profile, repeats int) (float64, error) {
	c, err := core.Compile(src, opts)
	if err != nil {
		return 0, err
	}
	var samples []float64
	for i := 0; i < repeats; i++ {
		run, err := c.NewRun(core.RunConfig{Engine: eng, Seed: 1})
		if err != nil {
			return 0, err
		}
		start := time.Now()
		if err := run.RunToCompletion(); err != nil {
			return 0, fmt.Errorf("stopified run: %w", err)
		}
		samples = append(samples, float64(time.Since(start))/1e6)
	}
	return stats.Median(samples), nil
}

// timeRaw times the uninstrumented program.
func timeRaw(src string, eng *engine.Profile, repeats int) (float64, error) {
	var samples []float64
	for i := 0; i < repeats; i++ {
		start := time.Now()
		if _, err := core.RunRaw(src, core.RunConfig{Engine: eng, Seed: 1}); err != nil {
			return 0, fmt.Errorf("raw run: %w", err)
		}
		samples = append(samples, float64(time.Since(start))/1e6)
	}
	return stats.Median(samples), nil
}

// timeSource times an already-transformed plain-JS program (the baselines).
func timeSource(src string, eng *engine.Profile, repeats int) (float64, error) {
	return timeRaw(src, eng, repeats)
}

// verifySame checks that the stopified program prints what the raw program
// prints before anything is timed.
func verifySame(src string, opts core.Opts, eng *engine.Profile) error {
	want, err := core.RunRaw(src, core.RunConfig{Engine: eng, Clock: eventloop.NewVirtualClock(), Seed: 1})
	if err != nil {
		return fmt.Errorf("raw: %w", err)
	}
	got, err := core.RunSource(src, opts, core.RunConfig{Engine: eng, Clock: eventloop.NewVirtualClock(), Seed: 1})
	if err != nil {
		return fmt.Errorf("stopified: %w", err)
	}
	if got != want {
		return fmt.Errorf("output mismatch: raw %q vs stopified %q", want, got)
	}
	return nil
}

// slowdown measures time(stopified)/time(raw) for one benchmark.
func slowdown(name, src string, opts core.Opts, eng *engine.Profile, cfg Config) (Measurement, error) {
	if err := verifySame(src, opts, eng); err != nil {
		return Measurement{}, fmt.Errorf("%s: %w", name, err)
	}
	raw, err := timeRaw(src, eng, cfg.Repeats)
	if err != nil {
		return Measurement{}, fmt.Errorf("%s: %w", name, err)
	}
	stop, err := timeStopified(src, opts, eng, cfg.Repeats)
	if err != nil {
		return Measurement{}, fmt.Errorf("%s: %w", name, err)
	}
	m := Measurement{Name: name, RawMs: raw, StopMs: stop}
	if raw > 0 {
		m.Slowdown = stop / raw
	}
	return m, nil
}

// table is a tiny text-table builder.
type table struct {
	buf   bytes.Buffer
	title string
}

func newTable(title string) *table {
	t := &table{title: title}
	fmt.Fprintf(&t.buf, "== %s ==\n", title)
	return t
}

func (t *table) row(format string, args ...interface{}) {
	fmt.Fprintf(&t.buf, format+"\n", args...)
}

func (t *table) String() string { return t.buf.String() }
