package bench

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/eventloop"
	"repro/internal/langs"
	"repro/internal/stats"
)

// AblationGuards measures the statement-grouping optimization DESIGN.md §4
// calls out: the paper's K⟦·⟧ wraps every statement in its own `if
// (normal)` (Figure 4a); this implementation groups maximal label-free runs
// under one guard. Both are semantically identical; the ablation quantifies
// the saving.
func AblationGuards(cfg Config) (string, error) {
	eng := engine.Chrome()
	py := langs.Python()
	t := newTable("Ablation — per-statement guards (paper-literal) vs grouped guards")
	t.row("%-18s %12s %12s %8s", "benchmark", "grouped", "per-stmt", "ratio")
	var ratios []float64
	for _, b := range pick(cfg, py.Benchmarks, 3) {
		grouped := py.Opts(baseOpts())
		mg, err := slowdown(b.Name, b.Source, grouped, eng, cfg)
		if err != nil {
			return "", err
		}
		literal := py.Opts(baseOpts())
		literal.PerStatementGuards = true
		ml, err := slowdown(b.Name, b.Source, literal, eng, cfg)
		if err != nil {
			return "", err
		}
		r := ml.Slowdown / mg.Slowdown
		ratios = append(ratios, r)
		t.row("%-18s %11.1fx %11.1fx %7.2f", b.Name, mg.Slowdown, ml.Slowdown, r)
	}
	t.row("grouping buys a mean %.2fx reduction in instrumentation overhead", stats.Mean(ratios))
	return t.String(), nil
}

// AblationSampleMs varies the approx estimator's clock-sampling period t
// (§5.1: t trades clock-read cost against estimate accuracy).
func AblationSampleMs(cfg Config) (string, error) {
	eng := engine.Chrome()
	py := langs.Python()
	delta := 100.0
	reps := 40
	if cfg.Quick {
		delta = 5
		reps = 4
	}
	t := newTable(fmt.Sprintf("Ablation — approx estimator sampling period t (δ=%.0fms)", delta))
	t.row("%-10s %16s %14s", "t (ms)", "interval μ±σ", "slowdown")
	b := py.Benchmarks[3] // fib
	src := loopify(b.Source, reps)
	raw, err := timeRaw(src, eng, cfg.Repeats)
	if err != nil {
		return "", err
	}
	for _, sample := range []float64{5, 25, 100} {
		o := py.Opts(baseOpts())
		o.YieldIntervalMs = delta
		o.SampleMs = sample
		gaps, err := yieldIntervals(src, o, eng)
		if err != nil {
			return "", err
		}
		stopMs, err := timeStopified(src, o, eng, cfg.Repeats)
		if err != nil {
			return "", err
		}
		cell := "(no yields)"
		if len(gaps) > 0 {
			cell = fmt.Sprintf("%6.1f ± %5.1f", stats.Mean(gaps), stats.Stddev(gaps))
		}
		t.row("%-10.0f %16s %13.1fx", sample, cell, stopMs/raw)
	}
	t.row("smaller t tracks rate changes faster but reads the clock more often (§5.1)")
	return t.String(), nil
}

// AblationRestoreSegment varies the segmented-restore chunk size for
// deep-stack workloads (DESIGN.md §4.4): segments near the deep limit cause
// immediate re-capture after restore; tiny segments pay excessive restore
// round-trips.
func AblationRestoreSegment(cfg Config) (string, error) {
	eng := &engine.Profile{Name: "shallow", Speed: 1, TryCost: 1, ThrowCost: 8,
		CallCost: 2, NewCost: 30, ObjectCreateCost: 20, PropCost: 1, MaxStack: 500}
	depth := 20000
	if cfg.Quick {
		depth = 4000
	}
	src := fmt.Sprintf(`
function sum(n) { if (n === 0) { return 0; } return n + sum(n - 1); }
console.log(sum(%d));`, depth)
	t := newTable(fmt.Sprintf("Ablation — restore segment size (deep recursion %d on a %d-frame engine)", depth, eng.MaxStack))
	t.row("%-12s %10s %10s", "segment", "time", "restores")
	for _, seg := range []int{eng.MaxStack / 32, eng.MaxStack / 8, eng.MaxStack / 5} {
		o := core.Defaults()
		o.YieldIntervalMs = 0
		o.DeepStacks = true
		o.RestoreSegment = seg
		c, err := core.Compile(src, o)
		if err != nil {
			return "", err
		}
		run, err := c.NewRun(core.RunConfig{Engine: eng, Clock: eventloop.NewVirtualClock(), Seed: 1})
		if err != nil {
			return "", err
		}
		start := time.Now()
		if err := run.RunToCompletion(); err != nil {
			return "", fmt.Errorf("segment %d: %w", seg, err)
		}
		t.row("%-12d %8.0fms %10d", seg, float64(time.Since(start))/1e6, run.RT.Restores)
	}
	t.row("too-large segments leave no headroom below the deep limit and thrash (DESIGN.md §4.4)")
	return t.String(), nil
}
