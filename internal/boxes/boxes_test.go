package boxes

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/anf"
	"repro/internal/ast"
	"repro/internal/desugar"
	"repro/internal/interp"
	"repro/internal/parser"
	"repro/internal/printer"
)

func boxPipeline(t *testing.T, src string) (*ast.Program, string) {
	t.Helper()
	prog, err := parser.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	nm := &desugar.Namer{}
	desugar.Apply(prog, desugar.Options{}, nm)
	anf.Normalize(prog)
	Box(prog)
	return prog, printer.Print(prog)
}

func runSrc(t *testing.T, src string) string {
	t.Helper()
	prog, err := parser.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v\n%s", err, src)
	}
	var buf bytes.Buffer
	in := interp.New(interp.Options{Out: &buf, Seed: 1})
	if err := in.RunProgram(prog); err != nil {
		t.Fatalf("run: %v\n%s", err, src)
	}
	return buf.String()
}

func TestBoxingPreservesSemantics(t *testing.T) {
	sources := []string{
		`function counter() { var n = 0; return function () { n = n + 1; return n; }; }
		 var c = counter(); c(); c(); console.log(c());`,
		`function f(start) { var x = start; function bump() { x = x + 1; } bump(); bump(); return x; }
		 console.log(f(10));`,
		`function make(a) { return function (b) { a = a + b; return a; }; }
		 var acc = make(100); acc(1); console.log(acc(2));`,
		`function twice(x) { function inner() { return x; } x = x * 2; return inner(); }
		 console.log(twice(5));`,
		`var shared = 0;
		 function f() { var local = 1; function g() { var local = 2; return local; } shared = g(); return local; }
		 console.log(f(), shared);`,
	}
	for _, src := range sources {
		want := runSrc(t, src)
		_, boxed := boxPipeline(t, src)
		got := runSrc(t, boxed)
		if got != want {
			t.Errorf("boxing changed semantics:\n%s\nwant %q got %q\n--- boxed ---\n%s", src, want, got, boxed)
		}
	}
}

func TestBoxesOnlyWhatNeedsBoxing(t *testing.T) {
	// p is a parameter that is captured but never assigned: parameters are
	// bound before any capture point, so it needs no box. z is assigned but
	// never captured. x is assigned and captured: boxed. A captured var
	// like y is boxed even though its only write is the declaration,
	// because a capture can land between closure hoisting and the
	// initializer (see the prologue-allocation comment in boxScope).
	src := `
function f(p) {
  var x = 1;
  var y = 2;
  var z = 3;
  z = 4;
  function g() { x = x + y + p; return x; }
  return g() + z;
}
console.log(f(0));`
	_, out := boxPipeline(t, src)
	if !strings.Contains(out, "x.v") {
		t.Errorf("x should be boxed:\n%s", out)
	}
	if !strings.Contains(out, "y.v") {
		t.Errorf("y (captured, initialized declaration) should be boxed:\n%s", out)
	}
	if strings.Contains(out, "p.v") {
		t.Errorf("p (read-only captured parameter) should not be boxed:\n%s", out)
	}
	if strings.Contains(out, "z.v") {
		t.Errorf("z (uncaptured) should not be boxed:\n%s", out)
	}
}

func TestBoxedParamGetsEntryBox(t *testing.T) {
	src := `
function f(p) {
  function g() { p = p + 1; return p; }
  g();
  return p;
}
console.log(f(5));`
	_, out := boxPipeline(t, src)
	if !strings.Contains(out, "p = { v: p }") {
		t.Errorf("boxed parameter should be cell-allocated on entry:\n%s", out)
	}
	if got := runSrc(t, out); got != "6\n" {
		t.Errorf("boxed param semantics: %q", got)
	}
}

func TestBoxAllocationIsAtFunctionEntry(t *testing.T) {
	// The box for a variable declared late in the body must be allocated in
	// the prologue (DESIGN.md §4: capture before the declaration would
	// otherwise split the closures from the restored code).
	src := `
function f() {
  function g() { return late; }
  g();
  var late = 1;
  late = 2;
  function h() { late = late + 1; }
  h();
  return late;
}
console.log(f());`
	prog, out := boxPipeline(t, src)
	fd := findFunc(prog, "f")
	if fd == nil {
		t.Fatalf("function f not found:\n%s", out)
	}
	first := printer.PrintStmt(fd.Body[0])
	if !strings.Contains(first, "{ v: undefined }") {
		t.Errorf("first statement of f should allocate the box, got:\n%s\nfull:\n%s", first, out)
	}
	if got := runSrc(t, out); got != "3\n" {
		t.Errorf("late-box semantics: %q", got)
	}
}

func TestShadowingRespectsScopes(t *testing.T) {
	src := `
function outer() {
  var v = 1;
  function mid() {
    var v = 10;
    function inner() { v = v + 1; return v; }
    inner();
    return v;
  }
  function bump() { v = v + 100; }
  bump();
  return mid() + v;
}
console.log(outer());`
	want := runSrc(t, src)
	_, out := boxPipeline(t, src)
	if got := runSrc(t, out); got != want {
		t.Errorf("shadowed boxing broke: want %q got %q\n%s", want, got, out)
	}
}

func findFunc(prog *ast.Program, name string) *ast.Func {
	var found *ast.Func
	ast.Walk(prog, func(n ast.Node) bool {
		if fn, ok := n.(*ast.Func); ok && fn.Name == name {
			found = fn
			return false
		}
		return true
	})
	return found
}
