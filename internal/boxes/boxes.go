// Package boxes implements §3.2.1 of the paper: assignable variables that
// are captured by nested functions are boxed (moved into a one-field heap
// cell) so that, after a continuation restores a function's locals into a
// fresh environment, closures created before the capture still share state
// with the restored code. This is the same solution scheme2js uses.
//
// The pass runs after A-normalization and before instrumentation, so reads
// become `x.v` member atoms and writes become `x.v = e` member assignments —
// shapes the instrumentation already handles. Boxes are plain object
// literals; no runtime support is needed.
package boxes

import (
	"sort"

	"repro/internal/ast"
)

// Box rewrites prog in place and returns it.
func Box(prog *ast.Program) *ast.Program {
	prog.Body = boxScope(nil, prog.Body)
	return prog
}

// boxScope processes one function scope: params and body. It returns the
// rewritten body (with box allocations inserted). Nested functions are
// processed recursively.
func boxScope(params []string, body []ast.Stmt) []ast.Stmt {
	locals := map[string]bool{}
	funcNames := map[string]bool{}
	for _, p := range params {
		locals[p] = true
	}
	collectDecls(body, locals, funcNames)

	assigned := map[string]bool{}
	captured := map[string]bool{}
	analyze(body, locals, assigned, captured)

	boxed := map[string]bool{}
	for name := range locals {
		// Function-declaration names are not boxed: rebinding a hoisted
		// function is rare and the declaration form cannot initialize a box.
		if assigned[name] && captured[name] && !funcNames[name] {
			boxed[name] = true
		}
	}

	// Recurse into nested functions first (their own scopes), then rewrite
	// this scope's boxed references.
	rewriteNestedScopes(body)
	if len(boxed) == 0 {
		return body
	}
	out := rewriteBoxed(body, boxed)

	// Allocate every box at function entry, before the first possible
	// suspension point. If boxes were allocated at the original declaration
	// sites, a continuation captured between closure hoisting and the
	// declaration would restore into a fresh environment whose box the old
	// closures never see; allocating up front puts the box reference into
	// the very first reified frame, shared across every restore.
	var prologue []ast.Stmt
	for _, p := range params {
		if boxed[p] {
			prologue = append(prologue, ast.ExprOf(ast.SetId(p, boxLiteral(ast.Id(p)))))
		}
	}
	isParam := map[string]bool{}
	for _, p := range params {
		isParam[p] = true
	}
	var boxedVars []string
	for name := range boxed {
		if !isParam[name] {
			boxedVars = append(boxedVars, name)
		}
	}
	sort.Strings(boxedVars)
	for _, name := range boxedVars {
		prologue = append(prologue, ast.Var(name, boxLiteral(ast.Undef())))
	}
	return append(prologue, out...)
}

func boxLiteral(init ast.Expr) ast.Expr {
	return &ast.Object{Props: []ast.Property{{Kind: ast.PropInit, Key: "v", Value: init}}}
}

// collectDecls gathers var and function declarations without entering
// nested functions.
func collectDecls(body []ast.Stmt, locals, funcNames map[string]bool) {
	var walk func(s ast.Stmt)
	walk = func(s ast.Stmt) {
		switch n := s.(type) {
		case *ast.VarDecl:
			for _, d := range n.Decls {
				locals[d.Name] = true
			}
		case *ast.FuncDecl:
			locals[n.Fn.Name] = true
			funcNames[n.Fn.Name] = true
		case *ast.Block:
			for _, st := range n.Body {
				walk(st)
			}
		case *ast.If:
			walk(n.Cons)
			if n.Alt != nil {
				walk(n.Alt)
			}
		case *ast.While:
			walk(n.Body)
		case *ast.Labeled:
			walk(n.Body)
		case *ast.Try:
			for _, st := range n.Block.Body {
				walk(st)
			}
			if n.Catch != nil {
				for _, st := range n.Catch.Body {
					walk(st)
				}
			}
			if n.Finally != nil {
				for _, st := range n.Finally.Body {
					walk(st)
				}
			}
		}
	}
	for _, s := range body {
		walk(s)
	}
}

// analyze records which scope locals are assigned (in this scope) and which
// are assigned or referenced from inside nested functions (via
// analyzeInner, which handles shadowing).
func analyze(body []ast.Stmt, locals map[string]bool, assigned, captured map[string]bool) {
	mark := func(name string, isWrite bool) {
		if !locals[name] {
			return
		}
		if isWrite {
			assigned[name] = true
		}
	}
	var walkExpr func(e ast.Expr)
	var walkStmt func(s ast.Stmt)
	enterFunc := func(fn *ast.Func) {
		sub := make(map[string]bool, len(fn.Params))
		for _, p := range fn.Params {
			sub[p] = true
		}
		inner := map[string]bool{}
		fnames := map[string]bool{}
		collectDecls(fn.Body, inner, fnames)
		for k := range inner {
			sub[k] = true
		}
		if fn.Name != "" {
			sub[fn.Name] = true // named function expressions bind their name
		}
		analyzeInner(fn.Body, locals, sub, assigned, captured)
	}
	walkExpr = func(e ast.Expr) {
		switch n := e.(type) {
		case nil:
			return
		case *ast.Ident:
			mark(n.Name, false)
		case *ast.Assign:
			if id, ok := n.Target.(*ast.Ident); ok {
				mark(id.Name, true)
			} else {
				walkExpr(n.Target)
			}
			walkExpr(n.Value)
		case *ast.Update:
			if id, ok := n.X.(*ast.Ident); ok {
				mark(id.Name, true)
			} else {
				walkExpr(n.X)
			}
		case *ast.Func:
			enterFunc(n)
		default:
			ast.Walk(e, func(node ast.Node) bool {
				switch sub := node.(type) {
				case *ast.Ident:
					mark(sub.Name, false)
					return false
				case *ast.Assign:
					walkExpr(sub)
					return false
				case *ast.Update:
					walkExpr(sub)
					return false
				case *ast.Func:
					enterFunc(sub)
					return false
				}
				return true
			})
		}
	}
	walkStmt = func(s ast.Stmt) {
		switch n := s.(type) {
		case nil:
		case *ast.VarDecl:
			for _, d := range n.Decls {
				if d.Init != nil {
					mark(d.Name, true)
					walkExpr(d.Init)
				}
			}
		case *ast.ExprStmt:
			walkExpr(n.X)
		case *ast.Block:
			for _, st := range n.Body {
				walkStmt(st)
			}
		case *ast.If:
			walkExpr(n.Test)
			walkStmt(n.Cons)
			if n.Alt != nil {
				walkStmt(n.Alt)
			}
		case *ast.While:
			walkExpr(n.Test)
			walkStmt(n.Body)
		case *ast.Return:
			walkExpr(n.Arg)
		case *ast.Labeled:
			walkStmt(n.Body)
		case *ast.Throw:
			walkExpr(n.Arg)
		case *ast.Try:
			for _, st := range n.Block.Body {
				walkStmt(st)
			}
			if n.Catch != nil {
				for _, st := range n.Catch.Body {
					walkStmt(st)
				}
			}
			if n.Finally != nil {
				for _, st := range n.Finally.Body {
					walkStmt(st)
				}
			}
		case *ast.FuncDecl:
			enterFunc(n.Fn)
		}
	}
	for _, s := range body {
		walkStmt(s)
	}

}

// analyzeInner walks a nested function body: every unshadowed reference to
// an outer local is a capture, and writes also count as assignments.
func analyzeInner(body []ast.Stmt, locals, shadow map[string]bool, assigned, captured map[string]bool) {
	for _, s := range body {
		ast.Walk(s, func(node ast.Node) bool {
			switch n := node.(type) {
			case *ast.Ident:
				if locals[n.Name] && !shadow[n.Name] {
					captured[n.Name] = true
				}
			case *ast.Assign:
				if id, ok := n.Target.(*ast.Ident); ok && locals[id.Name] && !shadow[id.Name] {
					assigned[id.Name] = true
					captured[id.Name] = true
				}
			case *ast.Func:
				sub := make(map[string]bool, len(shadow))
				for k := range shadow {
					sub[k] = true
				}
				for _, p := range n.Params {
					sub[p] = true
				}
				inner := map[string]bool{}
				fnames := map[string]bool{}
				collectDecls(n.Body, inner, fnames)
				for k := range inner {
					sub[k] = true
				}
				if n.Name != "" {
					sub[n.Name] = true
				}
				analyzeInner(n.Body, locals, sub, assigned, captured)
				return false
			}
			return true
		})
	}
}

// rewriteNestedScopes recursively boxes nested functions.
func rewriteNestedScopes(body []ast.Stmt) {
	for _, s := range body {
		ast.Walk(s, func(node ast.Node) bool {
			if fn, ok := node.(*ast.Func); ok {
				fn.Body = boxScope(fn.Params, fn.Body)
				return false
			}
			return true
		})
	}
}

// rewriteBoxed rewrites reads and writes of boxed names to go through the
// box cell, in this scope and (for unshadowed names) in nested functions.
func rewriteBoxed(body []ast.Stmt, boxed map[string]bool) []ast.Stmt {
	out := make([]ast.Stmt, 0, len(body))
	for _, s := range body {
		out = append(out, rewriteBoxedStmt(s, boxed))
	}
	return out
}

func rewriteBoxedStmt(s ast.Stmt, boxed map[string]bool) ast.Stmt {
	switch n := s.(type) {
	case nil:
		return nil
	case *ast.VarDecl:
		// The box itself is allocated in the function prologue, so a boxed
		// declaration becomes a write through the box: var x = e  =>  x.v = e.
		var out []ast.Stmt
		rewritten := false
		for i := range n.Decls {
			d := &n.Decls[i]
			init := rewriteBoxedExpr(d.Init, boxed)
			if boxed[d.Name] {
				rewritten = true
				if init != nil {
					out = append(out, ast.ExprOf(ast.SetTo(
						&ast.Member{X: ast.Id(d.Name), Name: "v"}, init)))
				}
				continue
			}
			d.Init = init
			out = append(out, &ast.VarDecl{P: n.P, Decls: []ast.Declarator{*d}})
		}
		if !rewritten {
			return n
		}
		if len(out) == 0 {
			return &ast.Empty{P: n.P}
		}
		if len(out) == 1 {
			return out[0]
		}
		return ast.BlockOf(out...)
	case *ast.ExprStmt:
		n.X = rewriteBoxedExpr(n.X, boxed)
		return n
	case *ast.Block:
		n.Body = rewriteBoxed(n.Body, boxed)
		return n
	case *ast.If:
		n.Test = rewriteBoxedExpr(n.Test, boxed)
		n.Cons = rewriteBoxedStmt(n.Cons, boxed)
		if n.Alt != nil {
			n.Alt = rewriteBoxedStmt(n.Alt, boxed)
		}
		return n
	case *ast.While:
		n.Test = rewriteBoxedExpr(n.Test, boxed)
		n.Body = rewriteBoxedStmt(n.Body, boxed)
		return n
	case *ast.Return:
		n.Arg = rewriteBoxedExpr(n.Arg, boxed)
		return n
	case *ast.Labeled:
		n.Body = rewriteBoxedStmt(n.Body, boxed)
		return n
	case *ast.Throw:
		n.Arg = rewriteBoxedExpr(n.Arg, boxed)
		return n
	case *ast.Try:
		n.Block.Body = rewriteBoxed(n.Block.Body, boxed)
		if n.Catch != nil {
			sub := boxed
			if boxed[n.CatchParam] {
				sub = cloneWithout(boxed, n.CatchParam)
			}
			n.Catch.Body = rewriteBoxed(n.Catch.Body, sub)
		}
		if n.Finally != nil {
			n.Finally.Body = rewriteBoxed(n.Finally.Body, boxed)
		}
		return n
	case *ast.FuncDecl:
		n.Fn.Body = rewriteBoxedInNested(n.Fn, boxed)
		return n
	default:
		return s
	}
}

func cloneWithout(m map[string]bool, key string) map[string]bool {
	out := make(map[string]bool, len(m))
	for k := range m {
		if k != key {
			out[k] = true
		}
	}
	return out
}

func rewriteBoxedExpr(e ast.Expr, boxed map[string]bool) ast.Expr {
	switch n := e.(type) {
	case nil:
		return nil
	case *ast.Ident:
		if boxed[n.Name] {
			return &ast.Member{P: n.P, X: n, Name: "v"}
		}
		return n
	case *ast.Assign:
		n.Value = rewriteBoxedExpr(n.Value, boxed)
		if id, ok := n.Target.(*ast.Ident); ok && boxed[id.Name] {
			n.Target = &ast.Member{P: id.P, X: id, Name: "v"}
		} else {
			n.Target = rewriteBoxedExpr(n.Target, boxed)
		}
		return n
	case *ast.Func:
		n.Body = rewriteBoxedInNested(n, boxed)
		return n
	case *ast.Member:
		n.X = rewriteBoxedExpr(n.X, boxed)
		if n.Computed {
			n.Index = rewriteBoxedExpr(n.Index, boxed)
		}
		return n
	case *ast.Call:
		n.Callee = rewriteBoxedExpr(n.Callee, boxed)
		for i := range n.Args {
			n.Args[i] = rewriteBoxedExpr(n.Args[i], boxed)
		}
		return n
	case *ast.New:
		n.Callee = rewriteBoxedExpr(n.Callee, boxed)
		for i := range n.Args {
			n.Args[i] = rewriteBoxedExpr(n.Args[i], boxed)
		}
		return n
	case *ast.Unary:
		n.X = rewriteBoxedExpr(n.X, boxed)
		return n
	case *ast.Binary:
		n.L = rewriteBoxedExpr(n.L, boxed)
		n.R = rewriteBoxedExpr(n.R, boxed)
		return n
	case *ast.Logical:
		n.L = rewriteBoxedExpr(n.L, boxed)
		n.R = rewriteBoxedExpr(n.R, boxed)
		return n
	case *ast.Cond:
		n.Test = rewriteBoxedExpr(n.Test, boxed)
		n.Cons = rewriteBoxedExpr(n.Cons, boxed)
		n.Alt = rewriteBoxedExpr(n.Alt, boxed)
		return n
	case *ast.Seq:
		for i := range n.Exprs {
			n.Exprs[i] = rewriteBoxedExpr(n.Exprs[i], boxed)
		}
		return n
	case *ast.Array:
		for i := range n.Elems {
			n.Elems[i] = rewriteBoxedExpr(n.Elems[i], boxed)
		}
		return n
	case *ast.Object:
		for i := range n.Props {
			n.Props[i].Value = rewriteBoxedExpr(n.Props[i].Value, boxed)
		}
		return n
	case *ast.Update:
		n.X = rewriteBoxedExpr(n.X, boxed)
		return n
	default:
		return e
	}
}

// rewriteBoxedInNested rewrites boxed outer references inside a nested
// function, honoring shadowing.
func rewriteBoxedInNested(fn *ast.Func, boxed map[string]bool) []ast.Stmt {
	sub := make(map[string]bool, len(boxed))
	for k := range boxed {
		sub[k] = true
	}
	for _, p := range fn.Params {
		delete(sub, p)
	}
	inner := map[string]bool{}
	fnames := map[string]bool{}
	collectDecls(fn.Body, inner, fnames)
	for k := range inner {
		delete(sub, k)
	}
	if fn.Name != "" {
		delete(sub, fn.Name)
	}
	if len(sub) == 0 {
		return fn.Body
	}
	return rewriteBoxed(fn.Body, sub)
}
