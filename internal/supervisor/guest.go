package supervisor

import (
	"bytes"
	"sort"
	"strconv"
	"sync"
	"time"

	"repro/internal/core"
)

// Lane selects a guest's scheduling class. Interactive guests are favored
// by the weighted round-robin pick (Options.InteractiveWeight) so short,
// latency-sensitive tenants are not stuck behind batch work — but batch
// guests still get a guaranteed share, so neither lane can starve the
// other.
type Lane int

const (
	// LaneBatch is the default: throughput-oriented, scheduled fairly.
	LaneBatch Lane = iota
	// LaneInteractive is the low-latency lane.
	LaneInteractive
)

// String names the lane.
func (l Lane) String() string {
	if l == LaneInteractive {
		return "interactive"
	}
	return "batch"
}

// Policy is the per-tenant resource contract the supervisor enforces.
type Policy struct {
	// Lane selects the scheduling class.
	Lane Lane
	// WallDeadline bounds the guest's total wall-clock lifetime, measured
	// from admission. A guest past its deadline is killed at its next
	// preemption point with ErrDeadline — an infinite loop dies without
	// taking a worker with it. Zero means no deadline.
	WallDeadline time.Duration
	// MaxTotalSteps bounds total statements executed across all quanta
	// (interp.ErrStepBudget — a hard, uncatchable abort). Zero means
	// unlimited.
	MaxTotalSteps uint64
	// MaxOutputBytes caps console output; exceeding it truncates the
	// output and kills the guest with ErrOutputLimit. Zero picks
	// DefaultMaxOutput.
	MaxOutputBytes int
	// MemBudgetBytes bounds the guest realm's allocation meter
	// (interp.ErrMemLimit — a hard, uncatchable abort at the next
	// statement boundary). The budget covers the guest program's own
	// Value-graph growth, not the runtime prelude, and like MaxTotalSteps
	// it is cumulative across quanta. Zero means unmetered.
	MemBudgetBytes uint64
}

// DefaultMaxOutput is the output cap applied when a policy leaves
// MaxOutputBytes zero.
const DefaultMaxOutput = 1 << 20

// State is a guest's position in the scheduling lifecycle.
type State int

const (
	// StateQueued: admitted and runnable, waiting for a worker.
	StateQueued State = iota
	// StateRunning: owned by a worker goroutine right now.
	StateRunning
	// StateSleeping: parked until its earliest timer comes due.
	StateSleeping
	// StatePaused: externally paused (Guest.Pause); not schedulable until
	// Guest.Resume.
	StatePaused
	// StateDone: finished — result available, Done() closed.
	StateDone
)

// String names the state.
func (s State) String() string {
	switch s {
	case StateQueued:
		return "queued"
	case StateRunning:
		return "running"
	case StateSleeping:
		return "sleeping"
	case StatePaused:
		return "paused"
	case StateDone:
		return "done"
	}
	return "invalid"
}

// Result is a finished guest's outcome.
type Result struct {
	// Output is the guest's console output, truncated at the policy's
	// output cap.
	Output string
	// Truncated reports whether Output hit the cap.
	Truncated bool
	// Err is the completion error: nil for normal completion, a *interp.
	// Thrown for an uncaught guest exception, ErrDeadline / ErrOutputLimit
	// / rt.ErrKilled / ErrShutdown / interp.ErrMemLimit for supervisor
	// terminations, interp.ErrStepBudget for an exhausted step budget, or
	// ErrInternalFault when the worker's recover barrier caught an engine
	// panic while this guest was running.
	Err error
	// Steps is the total statements executed.
	Steps uint64
	// Quanta is how many scheduling turns the guest received.
	Quanta int
	// Preemptions counts quantum-expiry parks (a subset of Quanta).
	Preemptions int
	// QueueWait is total time spent runnable-but-waiting.
	QueueWait time.Duration
	// WallTime is admission to completion.
	WallTime time.Duration
}

// Info is a point-in-time snapshot of a guest (Guest.Inspect) — the
// observability the serving façade exposes per run.
type Info struct {
	ID          uint64  `json:"id"`
	Lane        string  `json:"lane"`
	State       string  `json:"state"`
	Steps       uint64  `json:"steps"`
	Quanta      int     `json:"quanta"`
	Preemptions int     `json:"preemptions"`
	OutputBytes int     `json:"output_bytes"`
	Truncated   bool    `json:"output_truncated"`
	QueueWaitMs float64 `json:"queue_wait_ms"`
	Parked      bool    `json:"parked,omitempty"`
	Error       string  `json:"error,omitempty"`
	DeadlineMs  float64 `json:"deadline_remaining_ms,omitempty"`
}

// Guest is one supervised program: a compiled Stopify run plus the
// scheduling state the supervisor tracks for it. All fields behind mu;
// the embedded run's own control surface (rt) has its own locking.
type Guest struct {
	ID  uint64
	sup *Supervisor

	mu       sync.Mutex
	state    State
	lane     Lane
	pol      Policy
	compiled *core.Compiled
	run      *core.AsyncRun // created on the first scheduling turn
	out      *cappedWriter

	killReq  error // external termination request, consumed by the scheduler
	pauseReq bool  // external pause request, consumed at the next park

	// home is the index of the guest's run queue (work-stealing migrates
	// it). Guarded by sup.mu, not g.mu — it is queue topology, not guest
	// state.
	home int

	// Park state (the MaxResident residency limiter, park.go). A parked
	// guest has no realm: run is nil and the serialized snapshot lives in
	// parkBlob (or on disk at parkPath when ParkDir is set). replayOut marks
	// a guest admitted from an external blob (Supervisor.Restore), whose
	// carried output must be replayed into out on first restore.
	parked    bool
	parkBlob  []byte
	parkPath  string
	parkedAt  time.Time
	replayOut bool
	lastTurn  time.Time // when the guest last held a worker (LRU park order)

	submitted  time.Time
	deadline   time.Time // zero: none
	readySince time.Time // when the guest last became runnable
	queueWait  time.Duration
	steps      uint64
	quanta     int
	preempts   int
	sleepTimer *time.Timer

	// profFolded accumulates the guest's sampling-profiler output across
	// turns (the worker harvests the realm after each quantum), so the
	// profile survives parks, restores, and the realm's destruction.
	profFolded map[string]uint64

	res    Result
	doneCh chan struct{}
}

// addProfile merges one turn's harvested folded-stack samples.
func (g *Guest) addProfile(folded map[string]uint64) {
	g.mu.Lock()
	if g.profFolded == nil {
		g.profFolded = make(map[string]uint64, len(folded))
	}
	for k, v := range folded {
		g.profFolded[k] += v
	}
	g.mu.Unlock()
}

// ProfileFolded returns a copy of the guest's accumulated sampling profile:
// ";"-joined JS call stacks (root first) mapped to sampled statement
// counts. Nil when profiling is off (Options.ProfileEvery == 0) or nothing
// has been sampled yet. Safe from any goroutine.
func (g *Guest) ProfileFolded() map[string]uint64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	return copyCounts(g.profFolded)
}

// FoldedText renders a folded-stack profile in the flamegraph collapsed
// format — one "stack count" line per stack, sorted by stack for
// deterministic output. A non-empty prefix is prepended to every stack
// (multi-tenant dumps prefix "guest<id>" so tenants stay distinguishable
// in one flamegraph).
func FoldedText(folded map[string]uint64, prefix string) []byte {
	stacks := make([]string, 0, len(folded))
	for k := range folded {
		stacks = append(stacks, k)
	}
	sort.Strings(stacks)
	var buf bytes.Buffer
	for _, k := range stacks {
		if prefix != "" {
			buf.WriteString(prefix)
			buf.WriteByte(';')
		}
		buf.WriteString(k)
		buf.WriteByte(' ')
		buf.WriteString(strconv.FormatUint(folded[k], 10))
		buf.WriteByte('\n')
	}
	return buf.Bytes()
}

// Done returns a channel closed when the guest finishes.
func (g *Guest) Done() <-chan struct{} { return g.doneCh }

// Wait blocks until the guest finishes and returns its result.
func (g *Guest) Wait() Result {
	<-g.doneCh
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.res
}

// Result returns the outcome of a finished guest (zero Result before
// completion; check Done or State first).
func (g *Guest) Result() Result {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.res
}

// State reports the guest's current scheduling state.
func (g *Guest) State() State {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.state
}

// Kill requests graceful termination with reason (rt.ErrKilled when nil).
// A guest a worker currently owns stops at its next preemption point; a
// parked guest is finalized immediately. Safe from any goroutine; no-op
// after completion.
func (g *Guest) Kill(reason error) {
	g.sup.killGuest(g, reason)
}

// Pause takes the guest off the scheduler: a queued or sleeping guest stops
// being schedulable immediately, a running one parks at its next preemption
// point. Safe from any goroutine.
func (g *Guest) Pause() {
	g.sup.pauseGuest(g)
}

// Resume makes an externally paused guest runnable again.
func (g *Guest) Resume() {
	g.sup.resumeGuest(g)
}

// Inspect snapshots the guest's scheduling state and counters. Step and
// output figures are as of the guest's last completed turn.
func (g *Guest) Inspect() Info {
	g.mu.Lock()
	defer g.mu.Unlock()
	info := Info{
		ID:          g.ID,
		Lane:        g.lane.String(),
		State:       g.state.String(),
		Steps:       g.steps,
		Quanta:      g.quanta,
		Preemptions: g.preempts,
		QueueWaitMs: float64(g.queueWait) / float64(time.Millisecond),
		Parked:      g.parked,
	}
	if g.out != nil {
		info.OutputBytes, info.Truncated = g.out.Stats()
	}
	if g.state == StateDone && g.res.Err != nil {
		info.Error = g.res.Err.Error()
	}
	if !g.deadline.IsZero() && g.state != StateDone {
		if rem := time.Until(g.deadline); rem > 0 {
			info.DeadlineMs = float64(rem) / float64(time.Millisecond)
		}
	}
	return info
}

// Output returns the console output produced so far (safe while running —
// the capped writer has its own lock).
func (g *Guest) Output() string {
	g.mu.Lock()
	out := g.out
	g.mu.Unlock()
	if out == nil {
		return ""
	}
	return out.String()
}

// OutputSince returns a copy of the console output from byte offset off
// (clamped into the recorded range) plus the offset to resume from — the
// incremental read a streaming endpoint serves. Offsets are stable: the
// buffer is append-only until the guest is removed.
func (g *Guest) OutputSince(off int) ([]byte, int) {
	g.mu.Lock()
	out := g.out
	g.mu.Unlock()
	if out == nil {
		return nil, 0
	}
	return out.readFrom(off)
}

// OutputChanged returns a channel closed at the next output append. Fetch it
// BEFORE calling OutputSince — the read-then-wait order is what makes a
// follower lossless (a write landing between the two closes the channel the
// follower is about to select on).
func (g *Guest) OutputChanged() <-chan struct{} {
	g.mu.Lock()
	out := g.out
	g.mu.Unlock()
	if out == nil {
		ch := make(chan struct{})
		close(ch)
		return ch
	}
	return out.changed()
}

// cappedWriter is a guest's console sink: a bounded buffer whose overflow
// fires a one-shot callback (the supervisor kills the guest with
// ErrOutputLimit). Locked because controllers read output while the worker
// goroutine writes it.
type cappedWriter struct {
	mu         sync.Mutex
	max        int
	buf        []byte
	truncated  bool
	onOverflow func()
	notify     chan struct{} // closed and replaced on append (broadcast to followers)
}

func newCappedWriter(max int) *cappedWriter {
	if max <= 0 {
		max = DefaultMaxOutput
	}
	return &cappedWriter{max: max, notify: make(chan struct{})}
}

// Write implements io.Writer. It always reports success — the guest's
// console.log must not start erroring — but stops recording at the cap and
// triggers the overflow callback exactly once.
func (w *cappedWriter) Write(p []byte) (int, error) {
	w.mu.Lock()
	room := w.max - len(w.buf)
	if room >= len(p) {
		if len(p) == 0 {
			w.mu.Unlock()
			return 0, nil
		}
		w.buf = append(w.buf, p...)
		note := w.notify
		w.notify = make(chan struct{})
		w.mu.Unlock()
		close(note)
		return len(p), nil
	}
	if room > 0 {
		w.buf = append(w.buf, p[:room]...)
	}
	first := !w.truncated
	w.truncated = true
	cb := w.onOverflow
	note := w.notify
	w.notify = make(chan struct{})
	w.mu.Unlock()
	close(note) // the truncation point itself is an event followers want
	if first && cb != nil {
		cb()
	}
	return len(p), nil
}

// String returns the recorded output.
func (w *cappedWriter) String() string {
	w.mu.Lock()
	defer w.mu.Unlock()
	return string(w.buf)
}

// Stats reports recorded length and whether the cap was hit.
func (w *cappedWriter) Stats() (int, bool) {
	w.mu.Lock()
	defer w.mu.Unlock()
	return len(w.buf), w.truncated
}

// Bytes returns a copy of the recorded output. Its presence is what lets
// core.AsyncRun.Snapshot carry a supervised guest's console output by value
// instead of pinning the guest on an opaque sink.
func (w *cappedWriter) Bytes() []byte {
	w.mu.Lock()
	defer w.mu.Unlock()
	return append([]byte(nil), w.buf...)
}

// readFrom copies the recorded output from byte offset off (clamped into
// range) and reports the offset to resume from.
func (w *cappedWriter) readFrom(off int) ([]byte, int) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if off < 0 {
		off = 0
	}
	if off > len(w.buf) {
		off = len(w.buf)
	}
	data := append([]byte(nil), w.buf[off:]...)
	return data, off + len(data)
}

// changed returns the current notification channel; it is closed (and
// replaced) by the next append.
func (w *cappedWriter) changed() <-chan struct{} {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.notify
}

// setOverflow installs the overflow callback (before the guest first runs).
func (w *cappedWriter) setOverflow(fn func()) {
	w.mu.Lock()
	w.onOverflow = fn
	w.mu.Unlock()
}
