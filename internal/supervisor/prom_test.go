package supervisor

import (
	"bufio"
	"bytes"
	"fmt"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

// promValidate is a promtool-check-metrics-style validator for the text
// exposition format (0.0.4): metric names are legal, every sample's family
// has a preceding # TYPE, counters follow the _total convention, values
// parse, and no (name, labelset) repeats within a scrape.
func promValidate(t *testing.T, scrape []byte) {
	t.Helper()
	var (
		nameRe   = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)
		sampleRe = regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[^}]*\})? (\S+)$`)
		typed    = map[string]string{} // family -> counter|gauge|summary
		seen     = map[string]bool{}   // name{labels} uniqueness
	)
	sc := bufio.NewScanner(bytes.NewReader(scrape))
	line := 0
	for sc.Scan() {
		line++
		text := sc.Text()
		if text == "" {
			continue
		}
		if strings.HasPrefix(text, "# TYPE ") {
			parts := strings.Fields(text)
			if len(parts) != 4 || !nameRe.MatchString(parts[2]) {
				t.Errorf("line %d: malformed TYPE: %q", line, text)
				continue
			}
			switch parts[3] {
			case "counter", "gauge", "summary", "histogram", "untyped":
			default:
				t.Errorf("line %d: unknown metric type %q", line, parts[3])
			}
			if _, dup := typed[parts[2]]; dup {
				t.Errorf("line %d: duplicate TYPE for %s", line, parts[2])
			}
			typed[parts[2]] = parts[3]
			continue
		}
		if strings.HasPrefix(text, "#") {
			continue // HELP or comment
		}
		m := sampleRe.FindStringSubmatch(text)
		if m == nil {
			t.Errorf("line %d: unparseable sample line: %q", line, text)
			continue
		}
		name, labels, value := m[1], m[2], m[3]
		if _, err := strconv.ParseFloat(value, 64); err != nil {
			t.Errorf("line %d: value %q does not parse: %v", line, value, err)
		}
		key := name + labels
		if seen[key] {
			t.Errorf("line %d: duplicate sample %s", line, key)
		}
		seen[key] = true

		// Resolve the family: summaries expose name{quantile}, name_sum,
		// name_count under one TYPE summary declaration.
		family := name
		if typed[family] == "" {
			if f := strings.TrimSuffix(name, "_sum"); typed[f] == "summary" {
				family = f
			} else if f := strings.TrimSuffix(name, "_count"); typed[f] == "summary" {
				family = f
			}
		}
		kind := typed[family]
		if kind == "" {
			t.Errorf("line %d: sample %s has no preceding # TYPE", line, name)
			continue
		}
		if kind == "counter" && !strings.HasSuffix(name, "_total") {
			t.Errorf("line %d: counter %s does not end in _total", line, name)
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if len(seen) == 0 {
		t.Fatal("scrape contained no samples")
	}
}

// TestWritePromValidScrape renders a real supervisor's metrics — after a
// workload that populates completions, kills, preemptions, and latency
// digests — and validates the scrape line by line.
func TestWritePromValidScrape(t *testing.T) {
	s := New(Options{Workers: 2, QuantumSteps: 300})
	defer s.Close()
	for i := 0; i < 3; i++ {
		g, err := s.Submit(SubmitOptions{Source: guestSrc(i)})
		if err != nil {
			t.Fatal(err)
		}
		g.Wait()
	}
	// One external kill so a cause-labeled kill counter is nonzero.
	hostile, err := s.Submit(SubmitOptions{Source: `while (true) {}`})
	if err != nil {
		t.Fatal(err)
	}
	hostile.Kill(nil)
	hostile.Wait()

	m := s.Metrics()
	var buf bytes.Buffer
	WriteProm(&buf, m, s.Windows())
	promValidate(t, buf.Bytes())

	scrape := buf.String()
	wantLine := fmt.Sprintf("stopify_guests_completed_total %d", m.Completed)
	if !strings.Contains(scrape, wantLine) {
		t.Errorf("scrape missing %q", wantLine)
	}
	if !strings.Contains(scrape, "stopify_sched_latency_ms{quantile=\"0.99\"}") {
		t.Error("scrape missing sched-latency P99 quantile")
	}
	if !strings.Contains(scrape, `stopify_kills_total{cause="explicit"} 1`) {
		t.Error("scrape missing the explicit-kill cause counter")
	}
	if m.Completed != 3 {
		t.Errorf("workload completed %d guests, want 3", m.Completed)
	}
}

// TestWritePromWindowGauges: the newest *complete* window — not the
// still-filling last bucket — backs the windowed gauges, and with fewer than
// two windows they are omitted rather than rendered as misleading zeros.
func TestWritePromWindowGauges(t *testing.T) {
	wins := []WindowSummary{
		{StartMs: 0, WidthMs: 1000, Turns: 100, P50: 1, P99: 2},
		{StartMs: 1000, WidthMs: 1000, Turns: 200, P50: 3, P99: 4},
		{StartMs: 2000, WidthMs: 1000, Turns: 5, P50: 9, P99: 9}, // still filling
	}
	var buf bytes.Buffer
	WriteProm(&buf, Metrics{}, wins)
	promValidate(t, buf.Bytes())
	out := buf.String()
	if !strings.Contains(out, "stopify_window_sched_latency_p99_ms 4") {
		t.Errorf("window P99 gauge not taken from newest complete window:\n%s", out)
	}
	if !strings.Contains(out, "stopify_window_turns 200") {
		t.Errorf("window turns gauge not taken from newest complete window:\n%s", out)
	}

	buf.Reset()
	WriteProm(&buf, Metrics{}, wins[:1])
	if strings.Contains(buf.String(), "stopify_window_") {
		t.Error("window gauges rendered with no complete window available")
	}
	promValidate(t, buf.Bytes())
}
