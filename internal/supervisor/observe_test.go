package supervisor

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/interp"
)

// TestGuestProfileHarvest: with Options.ProfileEvery set, a guest's folded
// profile accumulates across turns, names the guest's own JS functions, and
// stays readable after the guest finishes.
func TestGuestProfileHarvest(t *testing.T) {
	if !interp.ProfilerEnabled() {
		t.Skip("profiler compiled out (stopify_noprof)")
	}
	s := New(Options{Workers: 1, QuantumSteps: 300, ProfileEvery: 97})
	defer s.Close()
	g, err := s.Submit(SubmitOptions{Source: guestSrc(1)})
	if err != nil {
		t.Fatal(err)
	}
	if res := g.Wait(); res.Err != nil {
		t.Fatalf("guest failed: %v", res.Err)
	}
	folded := g.ProfileFolded()
	if len(folded) == 0 {
		t.Fatal("profiler armed but no samples harvested")
	}
	sawFib := false
	for stack := range folded {
		if strings.Contains(stack, "fib") {
			sawFib = true
		}
	}
	if !sawFib {
		t.Errorf("no stack names the guest's fib function; folded = %v", folded)
	}

	text := string(FoldedText(folded, "guest1"))
	if !strings.HasPrefix(text, "guest1;") {
		t.Errorf("FoldedText prefix missing: %q", text[:min(len(text), 40)])
	}
	for _, line := range strings.Split(strings.TrimSpace(text), "\n") {
		if !strings.HasPrefix(line, "guest1;") || !strings.Contains(line, " ") {
			t.Fatalf("malformed folded line %q", line)
		}
	}
}

// TestGuestProfileDisabled: without ProfileEvery the harvest path must stay
// silent — no allocations, no phantom profiles.
func TestGuestProfileDisabled(t *testing.T) {
	s := New(Options{Workers: 1, QuantumSteps: 300})
	defer s.Close()
	g, err := s.Submit(SubmitOptions{Source: guestSrc(1)})
	if err != nil {
		t.Fatal(err)
	}
	g.Wait()
	if folded := g.ProfileFolded(); folded != nil {
		t.Fatalf("profiler disabled but harvested %v", folded)
	}
}

// TestRunLoadArtifacts is the acceptance check for the post-mortem pipeline:
// a short sustained-load run must leave a loadable Chrome-trace artifact and
// a non-empty per-tenant folded-stack profile.
func TestRunLoadArtifacts(t *testing.T) {
	dir := t.TempDir()
	cfg := LoadConfig{
		ArrivalRate:  150,
		Duration:     1500 * time.Millisecond,
		Workers:      2,
		QuantumSteps: 2000,
		MaxResident:  -1,
		Seed:         1,
		ProfileEvery: 500,
		TraceOut:     filepath.Join(dir, "trace.json"),
		ProfileOut:   filepath.Join(dir, "profile.folded"),
	}
	res, err := RunLoad(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Unexpected > 0 {
		t.Fatalf("%d unexpected outcomes: %s", res.Unexpected, res.FirstUnexpected)
	}

	raw, err := os.ReadFile(cfg.TraceOut)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []json.RawMessage `json:"traceEvents"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("trace artifact is not valid Chrome trace JSON: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("trace artifact has no events")
	}

	if !interp.ProfilerEnabled() {
		return // under stopify_noprof the trace half above is the whole check
	}
	prof, err := os.ReadFile(cfg.ProfileOut)
	if err != nil {
		t.Fatal(err)
	}
	lines := bytes.Split(bytes.TrimSpace(prof), []byte("\n"))
	if len(lines) == 0 || len(lines[0]) == 0 {
		t.Fatal("profile artifact is empty")
	}
	for _, line := range lines {
		if !bytes.HasPrefix(line, []byte("guest")) {
			t.Fatalf("profile line %q lacks the per-tenant guest prefix", line)
		}
	}
	// The load mix's own JS functions must be attributed by name.
	if !bytes.Contains(prof, []byte("$main")) {
		t.Error("profile names no guest code at all")
	}
}
