//go:build !chaos

package supervisor

import "repro/internal/core"

// chaosBeforeTurn is the production stub of the fault-injection seam: an
// empty function the compiler erases. The real hook plumbing lives in
// chaos_enabled.go under -tags=chaos.
func chaosBeforeTurn(g *Guest, run *core.AsyncRun) {}
