// Package supervisor is the multi-tenant execution layer: it admits,
// schedules, and polices many stopified guest programs concurrently on a
// bounded pool of worker goroutines (N workers, M ≫ N guests).
//
// The paper retrofits execution control onto one program — pause, resume,
// and graceful termination at instrumentation-inserted yield points (§2,
// §5.1). This package turns that per-run control into fleet-level
// preemptive scheduling: every guest's statement-boundary quantum hook
// (interp.ArmQuantum) plus its $suspend yield points become preemption
// points, so a worker hands out a step quantum, lets the guest run, and
// gets control back when the quantum expires — the guest parks its own
// continuation exactly as if a user had pressed the stop button. Parked
// guests requeue round-robin, with a weighted lane for interactive
// tenants, and every guest carries a resource policy (wall-clock deadline,
// total step budget, output cap) the supervisor enforces from outside the
// worker. None of this requires guest cooperation beyond what the Stopify
// compiler already inserted, which is the point: untrusted code gets
// paused, resumed, inspected, and killed mid-flight without threads,
// processes, or engine support.
package supervisor

import (
	"errors"
	"fmt"
	"os"
	"runtime/debug"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/rt"
)

// Termination and admission errors.
var (
	// ErrDeadline reports a guest killed for exceeding its wall-clock
	// deadline.
	ErrDeadline = errors.New("supervisor: wall-clock deadline exceeded")
	// ErrOutputLimit reports a guest killed for exceeding its output cap.
	ErrOutputLimit = errors.New("supervisor: output limit exceeded")
	// ErrShutdown reports a guest killed because the supervisor closed.
	ErrShutdown = errors.New("supervisor: shut down")
	// ErrStalled reports a guest that stopped making progress with no
	// pending work, no timers, and no pause — typically a blocking
	// operation the supervisor does not provide.
	ErrStalled = errors.New("supervisor: guest stalled with no pending work")
	// ErrQueueFull is Submit's backpressure signal: the admission bound
	// (Options.MaxPending) is reached; retry later or shed load.
	ErrQueueFull = errors.New("supervisor: admission queue full")
	// ErrClosed reports a Submit after Close.
	ErrClosed = errors.New("supervisor: closed")
	// ErrInternalFault reports a guest terminated because the engine
	// panicked while executing it — an engine bug, not the guest's error
	// and not a policy kill. The worker's recover barrier quarantines the
	// guest (its realm state is unknown and never touched again), captures
	// the stack to metrics, and survives to serve the next guest: the
	// blast radius of an engine bug is one tenant, not the process.
	ErrInternalFault = errors.New("supervisor: internal engine fault")
)

// Options configures a Supervisor.
type Options struct {
	// Workers is the executor pool size (N goroutines). Default 4.
	Workers int
	// MaxPending bounds admitted-but-unfinished guests; Submit beyond it
	// returns ErrQueueFull. Default 4096.
	MaxPending int
	// QuantumSteps is the statement budget of one scheduling turn.
	// Default 2000.
	QuantumSteps uint64
	// InteractiveWeight is how many interactive guests run per batch
	// guest when both lanes are waiting. Default 4.
	InteractiveWeight int
	// SleepSlackMs: a guest whose next timer is further out than this is
	// parked on a host timer instead of busy-waiting a worker. Default 1.
	SleepSlackMs float64
	// Backend forces an execution engine for guests ("tree"/"bytecode");
	// empty uses the process default (STOPIFY_BACKEND).
	Backend string
	// MaxResident bounds live guest realms in memory. Beyond it, idle
	// guests (paused or asleep) are parked — serialized through the
	// snapshot codec and their realms dropped — least-recently-run first,
	// and restored transparently when next touched. 0 means unbounded.
	MaxResident int
	// ParkDir, when set, spills parked snapshots to disk instead of
	// holding the blobs in memory.
	ParkDir string
	// MetricsWindow is the bucket width of the windowed scheduling-latency
	// digest (Supervisor.Windows) — the over-time view the sustained-load
	// harness gates on, as opposed to the whole-run reservoir. Default 1s.
	MetricsWindow time.Duration
	// TraceCapacity bounds the flight recorder's total retained events
	// (trace.go); oldest are overwritten. 0 means the default (16384);
	// negative disables tracing entirely.
	TraceCapacity int
	// ProfileEvery arms the guest-level sampling profiler in every guest
	// realm: each guest's JS call stack is sampled every that many
	// statements and the folded-stack counts accumulate on the Guest
	// (Guest.ProfileFolded). 0 leaves profiling off.
	ProfileEvery uint64
	// DefaultPolicy applies to guests submitted without one.
	DefaultPolicy Policy
}

func (o *Options) normalize() {
	if o.Workers <= 0 {
		o.Workers = 4
	}
	if o.MaxPending <= 0 {
		o.MaxPending = 4096
	}
	if o.QuantumSteps == 0 {
		o.QuantumSteps = 2000
	}
	if o.InteractiveWeight <= 0 {
		o.InteractiveWeight = 4
	}
	if o.SleepSlackMs <= 0 {
		o.SleepSlackMs = 1
	}
	if o.MetricsWindow <= 0 {
		o.MetricsWindow = time.Second
	}
}

// SubmitOptions describes one guest program.
type SubmitOptions struct {
	// Source is the guest JavaScript.
	Source string
	// Compile overrides the Stopify compile options. Zero value: core
	// defaults with time-based yielding disabled (the quantum, not a
	// timer, drives preemption under the supervisor). Suspend is forced
	// on — without $suspend yield points a guest could not be preempted.
	Compile core.Opts
	// Policy overrides the supervisor's DefaultPolicy when non-nil.
	Policy *Policy
}

// Supervisor schedules guests onto its worker pool. Create with New, feed
// with Submit, stop with Close.
type Supervisor struct {
	opts Options

	mu       sync.Mutex
	cond     *sync.Cond  // runnable work or shutdown
	idle     *sync.Cond  // pending == 0 (Drain)
	queues   []laneQueue // one two-lane run queue per worker (work-stealing)
	nextHome int         // round-robin home-queue assignment for new guests
	pending  int         // admitted, not yet done
	resident int         // unfinished guests holding a live realm (run != nil)
	parkedN  int         // unfinished guests whose realm is a parked snapshot
	nextID   uint64
	guests   map[uint64]*Guest
	// residents mirrors the subset of guests with run != nil so the
	// MaxResident park scan is O(resident), not O(every guest ever
	// admitted) — under sustained arrivals the full registry grows without
	// bound and an all-guests scan per turn boundary is quadratic.
	residents map[uint64]*Guest
	closed    bool

	wg      sync.WaitGroup
	metrics metrics
	tracer  *traceRecorder // nil when Options.TraceCapacity < 0
}

// New starts a supervisor and its worker pool.
func New(opts Options) *Supervisor {
	opts.normalize()
	s := &Supervisor{
		opts:      opts,
		guests:    make(map[uint64]*Guest),
		residents: make(map[uint64]*Guest),
	}
	s.cond = sync.NewCond(&s.mu)
	s.idle = sync.NewCond(&s.mu)
	if opts.TraceCapacity >= 0 {
		// One shard per worker plus one for control-plane goroutines.
		s.tracer = newTraceRecorder(opts.Workers+1, opts.TraceCapacity)
	}
	s.queues = make([]laneQueue, opts.Workers)
	for i := range s.queues {
		s.queues[i].rrCredit = opts.InteractiveWeight
	}
	s.metrics.initWindows(time.Now(), opts.MetricsWindow)
	s.wg.Add(opts.Workers)
	for i := 0; i < opts.Workers; i++ {
		go s.worker(i)
	}
	return s
}

// Submit compiles source and admits it as a guest. Compile errors are
// returned synchronously; ErrQueueFull signals backpressure. The guest
// starts executing when a worker first picks it up.
func (s *Supervisor) Submit(opt SubmitOptions) (*Guest, error) {
	// Shed load before the expensive stage: a flooded host must not burn
	// CPU compiling sources it is about to reject. This pre-check is
	// racy by design; the post-compile check under the lock is the
	// authoritative one.
	s.mu.Lock()
	closed, pending := s.closed, s.pending
	s.mu.Unlock()
	if closed {
		return nil, ErrClosed
	}
	if pending >= s.opts.MaxPending {
		s.metrics.reject()
		s.trace(-1, TraceEvent{Type: TraceReject})
		return nil, ErrQueueFull
	}

	copts := opt.Compile
	if copts == (core.Opts{}) {
		copts = core.Defaults()
		// Preemption is quantum-driven under the supervisor; the sampling
		// estimator would only add overhead and extra self-yields.
		copts.YieldIntervalMs = 0
	}
	// A guest without suspend points could never be preempted, paused, or
	// killed — unacceptable for multi-tenancy, so the knob is not honored.
	copts.Suspend = true
	compiled, err := core.Compile(opt.Source, copts)
	if err != nil {
		return nil, err
	}

	pol := s.opts.DefaultPolicy
	if opt.Policy != nil {
		pol = *opt.Policy
	}

	now := time.Now()
	g := &Guest{
		sup:        s,
		pol:        pol,
		lane:       pol.Lane,
		compiled:   compiled,
		out:        newCappedWriter(pol.MaxOutputBytes),
		home:       -1, // assigned round-robin on first push
		submitted:  now,
		readySince: now,
		doneCh:     make(chan struct{}),
	}
	if pol.WallDeadline > 0 {
		g.deadline = now.Add(pol.WallDeadline)
	}

	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, ErrClosed
	}
	if s.pending >= s.opts.MaxPending {
		s.mu.Unlock()
		s.metrics.reject()
		s.trace(-1, TraceEvent{Type: TraceReject})
		return nil, ErrQueueFull
	}
	s.nextID++
	g.ID = s.nextID
	s.pending++
	s.guests[g.ID] = g
	s.pushLocked(g)
	s.metrics.submit()
	s.mu.Unlock()
	s.trace(-1, TraceEvent{Type: TraceSubmit, Guest: g.ID, Lane: laneName(g.lane)})
	return g, nil
}

// Guest returns a guest by ID (nil if unknown or removed).
func (s *Supervisor) Guest(id uint64) *Guest {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.guests[id]
}

// Remove forgets a finished guest (its Result stays valid for holders of
// the pointer). Unfinished guests cannot be removed — kill them first.
func (s *Supervisor) Remove(id uint64) bool {
	// Lock order is strictly g.mu → s.mu everywhere (finalize runs under
	// the guest lock and then touches the scheduler), so look the guest up
	// and drop s.mu before taking g.mu.
	s.mu.Lock()
	g, ok := s.guests[id]
	s.mu.Unlock()
	if !ok {
		return false
	}
	g.mu.Lock()
	done := g.state == StateDone
	g.mu.Unlock()
	if !done {
		return false
	}
	s.mu.Lock()
	delete(s.guests, id)
	s.mu.Unlock()
	return true
}

// Drain blocks until every admitted guest has finished.
func (s *Supervisor) Drain() {
	s.mu.Lock()
	for s.pending > 0 {
		s.idle.Wait()
	}
	s.mu.Unlock()
}

// DrainTimeout blocks until every admitted guest has finished or d elapses,
// reporting whether the fleet fully drained. It does not stop admission or
// kill anything — the graceful-shutdown sequence is: stop admitting (the
// façade's job), DrainTimeout, then Close to kill whatever remains.
func (s *Supervisor) DrainTimeout(d time.Duration) bool {
	deadline := time.Now().Add(d)
	// idle only broadcasts on pending==0; the timer broadcast wakes the
	// waiters so the deadline check below runs even if guests are stuck.
	t := time.AfterFunc(d, func() {
		s.mu.Lock()
		s.idle.Broadcast()
		s.mu.Unlock()
	})
	defer t.Stop()
	s.mu.Lock()
	defer s.mu.Unlock()
	for s.pending > 0 && time.Now().Before(deadline) {
		s.idle.Wait()
	}
	return s.pending == 0
}

// Close stops admission, kills every unfinished guest (ErrShutdown), and
// waits for the workers to exit.
func (s *Supervisor) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.wg.Wait()
		return
	}
	s.closed = true
	all := make([]*Guest, 0, len(s.guests))
	for _, g := range s.guests {
		all = append(all, g)
	}
	s.cond.Broadcast()
	s.mu.Unlock()
	for _, g := range all {
		s.killGuest(g, ErrShutdown)
	}
	s.wg.Wait()
}

// ---------------------------------------------------------------------------
// Run queues (per-worker, with work-stealing)
// ---------------------------------------------------------------------------

// laneQueue is one worker's two-lane run queue. Each admitted guest gets a
// home queue (round-robin across workers); its owner pops with the weighted
// interactive/batch pick, and a worker whose own queue is empty steals from
// the deepest sibling backlog instead of sleeping — the fix for the turn
// imbalance the sustained-load harness exposes when one worker's tenants
// happen to be the long-turn ones. All queues live under s.mu; "stealing"
// here is about queue topology (affinity plus rebalancing), not lock-free
// deques.
type laneQueue struct {
	interactive []*Guest
	batch       []*Guest
	rrCredit    int // interactive picks left before a batch pick
}

func (q *laneQueue) depth() int { return len(q.interactive) + len(q.batch) }

// pop implements the weighted round-robin pick between the queue's lanes:
// when both have waiting guests, weight interactive turns run per batch
// turn; a lone non-empty lane always runs. Returns nil when both are empty.
func (q *laneQueue) pop(weight int) *Guest {
	var g *Guest
	switch {
	case len(q.interactive) > 0 && len(q.batch) > 0:
		if q.rrCredit > 0 {
			q.rrCredit--
			g, q.interactive = q.interactive[0], q.interactive[1:]
		} else {
			q.rrCredit = weight
			g, q.batch = q.batch[0], q.batch[1:]
		}
	case len(q.interactive) > 0:
		g, q.interactive = q.interactive[0], q.interactive[1:]
	case len(q.batch) > 0:
		g, q.batch = q.batch[0], q.batch[1:]
	}
	return g
}

// pushLocked appends g to its home queue's lane and wakes a worker. Caller
// holds s.mu; g must already be StateQueued (or about to be treated as
// such). A first-time guest (home < 0) is assigned its home round-robin.
// Any worker the Signal wakes can run the guest — if its own queue is
// empty it steals — so one cond covers all queues.
func (s *Supervisor) pushLocked(g *Guest) {
	if g.home < 0 {
		g.home = s.nextHome
		s.nextHome = (s.nextHome + 1) % len(s.queues)
	}
	q := &s.queues[g.home]
	if g.lane == LaneInteractive {
		q.interactive = append(q.interactive, g)
	} else {
		q.batch = append(q.batch, g)
	}
	s.cond.Signal()
}

// popLocked picks the next guest for worker w: its own queue first, then a
// steal from the sibling with the deepest backlog. Returns nil when every
// queue is empty. It pops unconditionally — it cannot inspect guest state,
// because the lock order is strictly g.mu → s.mu — so every caller must
// perform the worker's claim step (take g.mu, verify StateQueued, discard
// otherwise) before running what it popped; killed and paused guests are
// weeded out there.
func (s *Supervisor) popLocked(w int) (g *Guest, stolen bool) {
	if g := s.queues[w].pop(s.opts.InteractiveWeight); g != nil {
		return g, false
	}
	victim, depth := -1, 0
	for i := range s.queues {
		if i == w {
			continue
		}
		if d := s.queues[i].depth(); d > depth {
			victim, depth = i, d
		}
	}
	if victim < 0 {
		return nil, false
	}
	g = s.queues[victim].pop(s.opts.InteractiveWeight)
	if g != nil {
		// The thief becomes the new home: a guest that keeps getting stolen
		// is a guest whose home worker is overloaded, so migrate it.
		g.home = w
		s.metrics.steal()
	}
	return g, g != nil
}

// requeue puts a parked guest back on its lane. From is the state the
// transition is valid from (a stale timer or resume must not re-admit a
// guest that moved on).
func (s *Supervisor) requeue(g *Guest, from State) {
	g.mu.Lock()
	if g.state != from {
		g.mu.Unlock()
		return
	}
	g.state = StateQueued
	g.readySince = time.Now()
	g.mu.Unlock()
	s.mu.Lock()
	closed := s.closed
	if !closed {
		s.pushLocked(g)
	}
	s.mu.Unlock()
	if closed {
		// Nobody will dequeue this guest again (workers are exiting), and
		// Close's kill sweep may already have run while it was mid-
		// transition — dropping it silently would hang Wait/Drain, so
		// finalize it here.
		g.mu.Lock()
		s.finalizeLocked(g, ErrShutdown)
		g.mu.Unlock()
	}
}

// ---------------------------------------------------------------------------
// External control (any goroutine)
// ---------------------------------------------------------------------------

// killGuest implements Guest.Kill. A worker-owned guest is signaled
// through the runtime (lands at the next yield point); any parked guest is
// finalized right here, on the caller.
func (s *Supervisor) killGuest(g *Guest, reason error) {
	if reason == nil {
		reason = rt.ErrKilled
	}
	s.trace(-1, TraceEvent{Type: TraceKill, Guest: g.ID, Cause: outcomeCause(reason)})
	g.mu.Lock()
	switch g.state {
	case StateDone:
		g.mu.Unlock()
		return
	case StateRunning:
		// The owning worker consumes killReq at its next classification
		// point; rt.Kill makes the guest reach one quickly.
		if g.killReq == nil {
			g.killReq = reason
		}
		run := g.run
		g.mu.Unlock()
		if run != nil {
			run.Kill(reason)
		}
		return
	default:
		// Queued, sleeping, or paused: no goroutine is executing the
		// guest, so finalize synchronously. A queued guest stays in the
		// lane slice; the worker's claim step discards it on pop (it is
		// no longer StateQueued).
		if g.killReq == nil {
			g.killReq = reason
		}
		if g.sleepTimer != nil {
			g.sleepTimer.Stop()
			g.sleepTimer = nil
		}
		s.finalizeLocked(g, reason)
		g.mu.Unlock()
	}
}

// pauseGuest implements Guest.Pause.
func (s *Supervisor) pauseGuest(g *Guest) {
	s.trace(-1, TraceEvent{Type: TracePause, Guest: g.ID})
	g.mu.Lock()
	defer g.mu.Unlock()
	switch g.state {
	case StateDone, StatePaused:
		return
	case StateRunning:
		g.pauseReq = true
		if g.run != nil {
			// Park at the next yield point; the worker classifies the
			// park as an external pause and withholds the requeue.
			g.run.Pause(nil)
		}
	case StateSleeping:
		if g.sleepTimer != nil {
			g.sleepTimer.Stop()
			g.sleepTimer = nil
		}
		g.state = StatePaused
	case StateQueued:
		// Left in the lane slice; the worker's claim step discards it.
		g.state = StatePaused
	}
}

// resumeGuest implements Guest.Resume.
func (s *Supervisor) resumeGuest(g *Guest) {
	s.trace(-1, TraceEvent{Type: TraceResume, Guest: g.ID})
	g.mu.Lock()
	g.pauseReq = false
	if g.state != StatePaused {
		g.mu.Unlock()
		return
	}
	g.mu.Unlock()
	s.requeue(g, StatePaused)
}

// ---------------------------------------------------------------------------
// The scheduler proper (worker goroutines)
// ---------------------------------------------------------------------------

func (s *Supervisor) worker(w int) {
	defer s.wg.Done()
	for {
		s.mu.Lock()
		var g *Guest
		var stolen bool
		for {
			g, stolen = s.popLocked(w)
			if g != nil || s.closed {
				break
			}
			s.cond.Wait()
		}
		s.mu.Unlock()
		if g == nil {
			return // closed and drained
		}
		// Claim: the pop handed us the only queue reference, but control
		// calls may have moved the guest off Queued (pause, kill) while it
		// waited — skip those.
		g.mu.Lock()
		if g.state != StateQueued {
			g.mu.Unlock()
			continue
		}
		g.state = StateRunning
		wait := time.Since(g.readySince)
		g.queueWait += wait
		g.quanta++
		lane := g.lane
		g.mu.Unlock()
		s.metrics.schedLatency(wait)
		s.trace(w, TraceEvent{
			Type: TraceSchedule, Guest: g.ID, Lane: laneName(lane),
			Steal: stolen, WaitUs: wait.Microseconds(),
		})
		s.safeTurn(g, w)
	}
}

// safeTurn is the worker's recover barrier: a panic anywhere in the guest's
// turn — the dispatch loop, a builtin, the runtime, an injected chaos fault
// — finalizes that one guest with ErrInternalFault and lets the worker
// live. The barrier is sound because every panic source inside runTurn
// (NewRun, RunOne, Kill, the chaos hook) executes with no supervisor locks
// held: the recovery path can safely take g.mu to finalize. The guest's
// realm is quarantined — its AsyncRun is never resumed or pumped again —
// since a panic mid-dispatch leaves engine invariants unknown.
func (s *Supervisor) safeTurn(g *Guest, w int) {
	defer func() {
		if r := recover(); r != nil {
			s.metrics.internalFault(r, debug.Stack())
			g.mu.Lock()
			if g.sleepTimer != nil {
				g.sleepTimer.Stop()
				g.sleepTimer = nil
			}
			s.finalizeLocked(g, ErrInternalFault)
			g.mu.Unlock()
		}
	}()
	s.runTurn(g, w)
	// Residency enforcement rides on turn boundaries: if this turn pushed
	// the fleet over MaxResident, park idle guests before taking new work.
	s.maybeParkSome()
}

// runTurn gives g one scheduling quantum on the calling worker, then
// classifies how the quantum ended: finished, preempted (requeue), asleep
// on a timer, externally paused, or dead by policy.
func (s *Supervisor) runTurn(g *Guest, w int) {
	turnStart := time.Now()

	g.mu.Lock()
	killReq := g.killReq
	deadline := g.deadline
	g.mu.Unlock()

	// Policy gate before burning any cycles on a condemned guest.
	if killReq == nil && !deadline.IsZero() && time.Now().After(deadline) {
		killReq = ErrDeadline
	}
	if killReq != nil {
		if g.run != nil {
			g.run.Kill(killReq) // a parked run finishes synchronously
		}
		g.mu.Lock()
		s.finalizeLocked(g, killReq)
		g.mu.Unlock()
		return
	}

	// No realm: either the first turn (instantiate and start $main — NewRun
	// executes the prelude, so it happens here on a worker, not at Submit)
	// or a parked guest being touched (rebuild the realm from its snapshot).
	if g.run == nil {
		g.mu.Lock()
		parked := g.parked
		g.mu.Unlock()
		var err error
		if parked {
			err = s.restoreGuest(g)
		} else {
			err = s.startGuest(g)
		}
		if err != nil {
			g.mu.Lock()
			s.finalizeLocked(g, err)
			g.mu.Unlock()
			return
		}
	}
	run := g.run

	// Fault-injection seam: a no-op unless built with -tags=chaos AND a
	// hook is installed. Runs on the worker that owns the guest this turn,
	// with no locks held, so an injected panic exercises exactly the
	// recover barrier a real engine bug would.
	chaosBeforeTurn(g, run)

	run.ArmQuantum(s.opts.QuantumSteps)
	if run.Paused() {
		run.Resume()
	}

	// Pump the guest's event loop until the quantum ends. Each RunOne is
	// bounded: the quantum hook pauses the guest within QuantumSteps
	// statements (plus the distance to its next $suspend), so a worker is
	// never trapped by an infinite loop. A guest is complete when $main's
	// chain finished AND the loop drained (timer callbacks run to
	// completion, browser-style) — unless it finished with an error,
	// which is terminal immediately.
	var (
		completed bool
		sleeping  bool
		sleepFor  time.Duration
		stalled   bool
		preempted bool
	)
	clock := run.Loop.Clock
	for {
		if run.Paused() {
			preempted = true
			break
		}
		fin := run.Finished()
		if fin {
			if _, err := run.Result(); err != nil {
				completed = true
				break
			}
		}
		due, ok := run.Loop.NextDue()
		if !ok {
			completed, stalled = fin, !fin
			break
		}
		if gap := due - clock.Now(); gap > s.opts.SleepSlackMs {
			sleeping = true
			sleepFor = time.Duration(gap * float64(time.Millisecond))
			break
		}
		// Mid-turn policy check: a deadline that expires while the guest
		// runs converts the next yield into a kill.
		if !deadline.IsZero() && time.Now().After(deadline) {
			run.Kill(ErrDeadline)
		}
		run.Loop.RunOne()
	}
	turnDur := time.Since(turnStart)
	s.metrics.turn(turnDur)

	// Harvest the sampling profiler while this worker still owns the realm:
	// the folded stacks accumulate on the Guest, so the profile survives
	// parks, restores, and the realm's destruction at finish.
	if prof := run.TakeProfileFolded(); prof != nil {
		g.addProfile(prof)
	}

	// Classify.
	g.mu.Lock()
	g.steps = run.Steps()
	g.lastTurn = time.Now()
	if preempted && !g.pauseReq {
		g.preempts++
	}
	killReq = g.killReq
	turnCause := "error"
	switch {
	case completed:
		turnCause = "complete"
	case killReq != nil:
		turnCause = "kill"
	case (preempted || sleeping) && g.pauseReq:
		turnCause = "pause"
	case preempted:
		turnCause = "preempt"
	case sleeping:
		turnCause = "sleep"
	case stalled:
		turnCause = "stall"
	}
	turnSteps := g.steps
	switch {
	case completed:
		// A kill that raced normal completion loses: the guest's own
		// result stands.
		_, err := run.Result()
		s.finalizeLocked(g, err)
		g.mu.Unlock()
	case killReq != nil:
		// Kill arrived during the turn but the guest parked before the
		// runtime delivered it; finish it here.
		g.mu.Unlock()
		run.Kill(killReq)
		g.mu.Lock()
		s.finalizeLocked(g, killReq)
		g.mu.Unlock()
	case preempted && g.pauseReq:
		g.pauseReq = false
		g.state = StatePaused
		g.mu.Unlock()
	case preempted:
		g.mu.Unlock()
		s.metrics.preempt()
		s.requeue(g, StateRunning)
	case sleeping:
		// An external Pause acknowledged during this turn wins over the
		// timer park: the guest must not wake and run code later despite
		// the confirmed pause. (Its due timer simply waits until Resume.)
		if g.pauseReq {
			g.pauseReq = false
			g.state = StatePaused
			g.mu.Unlock()
			break
		}
		// A timer-parked guest must not outlive its wall deadline: clamp
		// the wake-up so the turn-start policy gate kills it on schedule
		// instead of letting a long setTimeout hold a pending slot for
		// hours past its deadline.
		if !deadline.IsZero() {
			if remain := time.Until(deadline); remain < sleepFor {
				if remain < 0 {
					remain = 0
				}
				sleepFor = remain
			}
		}
		g.state = StateSleeping
		g.sleepTimer = time.AfterFunc(sleepFor, func() {
			g.mu.Lock()
			g.sleepTimer = nil
			g.mu.Unlock()
			s.requeue(g, StateSleeping)
		})
		g.mu.Unlock()
	case stalled:
		s.finalizeLocked(g, ErrStalled)
		g.mu.Unlock()
	default:
		// Unreachable: the pump loop only exits through the cases above.
		s.finalizeLocked(g, fmt.Errorf("supervisor: internal scheduling error"))
		g.mu.Unlock()
	}
	s.trace(w, TraceEvent{
		Type: TraceTurn, Guest: g.ID, DurUs: turnDur.Microseconds(),
		Cause: turnCause, Steps: turnSteps,
	})
	if turnCause == "preempt" {
		s.trace(w, TraceEvent{Type: TracePreempt, Guest: g.ID})
	}
}

// startGuest builds g's realm (AsyncRun), wires the preemption hook and
// output policing, and starts $main. Worker goroutine only.
func (s *Supervisor) startGuest(g *Guest) error {
	cfg := core.RunConfig{
		Out:            g.out,
		Backend:        s.opts.Backend,
		MaxSteps:       g.pol.MaxTotalSteps,
		MemBudgetBytes: g.pol.MemBudgetBytes,
		ProfileEvery:   s.opts.ProfileEvery,
	}
	run, err := g.compiled.NewRun(cfg)
	if err != nil {
		return err
	}
	// The hook runs on the worker mid-execution: parking is just the
	// paper's pause button pressed by the scheduler instead of a human.
	run.SetOnQuantum(func() { run.Pause(nil) })
	g.out.setOverflow(func() { run.Kill(ErrOutputLimit) })
	g.mu.Lock()
	g.run = run
	g.mu.Unlock()
	s.mu.Lock()
	s.resident++
	s.residents[g.ID] = g
	s.mu.Unlock()
	run.Run(nil)
	return nil
}

// finalizeLocked completes g (idempotent). Caller holds g.mu.
func (s *Supervisor) finalizeLocked(g *Guest, err error) {
	if g.state == StateDone {
		return
	}
	g.state = StateDone
	now := time.Now()
	output, truncated := "", false
	if g.out != nil {
		output = g.out.String()
		_, truncated = g.out.Stats()
	}
	if g.run != nil {
		g.steps = g.run.Steps()
	}
	g.res = Result{
		Output:      output,
		Truncated:   truncated,
		Err:         err,
		Steps:       g.steps,
		Quanta:      g.quanta,
		Preemptions: g.preempts,
		QueueWait:   g.queueWait,
		WallTime:    now.Sub(g.submitted),
	}
	close(g.doneCh)

	// Release park artifacts: a guest killed while parked leaves neither a
	// stale spill file nor a phantom entry in the residency gauges.
	wasResident, wasParked := g.run != nil, g.parked
	g.parked = false
	g.parkBlob = nil
	if g.parkPath != "" {
		os.Remove(g.parkPath)
		g.parkPath = ""
	}

	s.mu.Lock()
	s.pending--
	if wasResident {
		s.resident--
		delete(s.residents, g.ID)
	}
	if wasParked {
		s.parkedN--
	}
	// The completion counters move in the same critical section as the
	// pending/resident gauges (metrics.mu nests inside s.mu), so a Metrics
	// scrape can never see the counter bump without the gauge drop.
	s.metrics.finish(err, g.steps)
	if s.pending == 0 {
		s.idle.Broadcast()
	}
	s.mu.Unlock()
	s.trace(-1, TraceEvent{
		Type: TraceFinish, Guest: g.ID, Cause: outcomeCause(err), Steps: g.steps,
	})
}
