package supervisor

import (
	"fmt"
	"io"
	"sort"
	"strconv"
)

// Prometheus text exposition (version 0.0.4) of the supervisor's metrics.
// Every counter and gauge in Metrics appears under a stable, documented
// name (the table lives in DESIGN_supervisor.md "Observability"); the
// latency digests render as summaries with quantile labels plus the exact
// running _sum/_count the reservoirs carry. The JSON shape stays the
// default on /metrics — this is the ?format=prom rendering.

// promQuantiles are the summary quantiles exposed for each latency digest.
var promQuantiles = []struct {
	label string
	pick  func(LatencySummary) float64
}{
	{"0.5", func(l LatencySummary) float64 { return l.P50 }},
	{"0.9", func(l LatencySummary) float64 { return l.P90 }},
	{"0.99", func(l LatencySummary) float64 { return l.P99 }},
}

func promF(x float64) string { return strconv.FormatFloat(x, 'g', -1, 64) }

func promCounter(w io.Writer, name, help string, v uint64) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
}

func promGauge(w io.Writer, name, help string, v float64) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %s\n", name, help, name, name, promF(v))
}

func promSummary(w io.Writer, name, help string, l LatencySummary) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s summary\n", name, help, name)
	for _, q := range promQuantiles {
		fmt.Fprintf(w, "%s{quantile=%q} %s\n", name, q.label, promF(q.pick(l)))
	}
	fmt.Fprintf(w, "%s_sum %s\n%s_count %d\n", name, promF(l.SumMs), name, l.Count)
}

// WriteProm renders one scrape. The Metrics value is a single consistent
// snapshot (Supervisor.Metrics takes it under one lock acquisition);
// windows may be nil to skip the windowed-latency gauges.
func WriteProm(w io.Writer, m Metrics, windows []WindowSummary) {
	promCounter(w, "stopify_guests_submitted_total", "Guests admitted via Submit or Restore.", m.Submitted+m.RestoreAdmits)
	promCounter(w, "stopify_guests_rejected_total", "Admissions refused by the MaxPending backpressure bound.", m.Rejected)
	promCounter(w, "stopify_guests_completed_total", "Guests that finished without error.", m.Completed)
	promCounter(w, "stopify_guests_failed_total", "Guests that finished with a guest-earned error (uncaught throw, step budget, stall).", m.Failed)
	promCounter(w, "stopify_guests_killed_total", "Guests terminated by supervisor policy or external kill.", m.Killed)

	fmt.Fprintf(w, "# HELP stopify_kills_total Policy terminations by cause.\n# TYPE stopify_kills_total counter\n")
	for _, kv := range []struct {
		cause string
		n     uint64
	}{
		{"deadline", m.KilledDeadline},
		{"output", m.KilledOutput},
		{"mem", m.KilledMem},
		{"shutdown", m.KilledShutdown},
		{"explicit", m.KilledExplicit},
	} {
		fmt.Fprintf(w, "stopify_kills_total{cause=%q} %d\n", kv.cause, kv.n)
	}

	promCounter(w, "stopify_preemptions_total", "Quantum-expiry preemptions (guest parked by the scheduler and requeued).", m.Preemptions)
	promCounter(w, "stopify_steals_total", "Guests run by a worker other than their home queue's (work stealing).", m.Steals)
	promCounter(w, "stopify_steps_total", "Guest statements executed across all finished guests.", m.StepsTotal)
	promCounter(w, "stopify_internal_faults_total", "Engine panics recovered by the worker barrier (one quarantined guest each).", m.InternalFaults)

	promGauge(w, "stopify_guests_active", "Admitted, unfinished guests right now.", float64(m.Active))
	promGauge(w, "stopify_guests_queued", "Guests waiting in run queues right now.", float64(m.Queued))
	promGauge(w, "stopify_guests_resident", "Unfinished guests holding a live realm in memory.", float64(m.ResidentGuests))
	promGauge(w, "stopify_guests_parked", "Unfinished guests whose realm is a serialized snapshot.", float64(m.ParkedGuests))

	promCounter(w, "stopify_parks_total", "Idle guests serialized out of memory by the residency limiter.", m.Parks)
	promCounter(w, "stopify_restores_total", "Parked guests whose realm was rebuilt on touch.", m.Restores)
	promCounter(w, "stopify_restore_admits_total", "Guests admitted from external snapshot blobs (Supervisor.Restore).", m.RestoreAdmits)
	promCounter(w, "stopify_snapshot_bytes_total", "Cumulative bytes of park snapshots produced.", m.SnapshotBytesTotal)

	fmt.Fprintf(w, "# HELP stopify_park_pins_total Park attempts refused by the snapshot codec, by pin kind.\n# TYPE stopify_park_pins_total counter\n")
	reasons := make([]string, 0, len(m.ParkPinsByReason))
	for k := range m.ParkPinsByReason {
		reasons = append(reasons, k)
	}
	sort.Strings(reasons)
	for _, k := range reasons {
		fmt.Fprintf(w, "stopify_park_pins_total{reason=%q} %d\n", k, m.ParkPinsByReason[k])
	}

	promSummary(w, "stopify_sched_latency_ms", "How long runnable guests waited for a worker, in milliseconds (whole-run reservoir).", m.SchedLatency)
	promSummary(w, "stopify_turn_duration_ms", "How long guests held a worker per scheduling turn, in milliseconds.", m.TurnDuration)
	promSummary(w, "stopify_restore_latency_ms", "Restore-on-touch realm rebuild latency, in milliseconds.", m.RestoreLatency)
	promGauge(w, "stopify_sched_latency_max_ms", "Worst scheduling latency retained by the whole-run reservoir.", m.SchedLatency.Max)

	// The newest *complete* window of the over-time digest: the last bucket
	// is still filling, so expose the one before it (matching how the load
	// harness reads the series).
	if len(windows) >= 2 {
		win := windows[len(windows)-2]
		promGauge(w, "stopify_window_sched_latency_p50_ms", "P50 scheduling latency of the newest complete metrics window.", win.P50)
		promGauge(w, "stopify_window_sched_latency_p99_ms", "P99 scheduling latency of the newest complete metrics window.", win.P99)
		promGauge(w, "stopify_window_turns", "Scheduling turns in the newest complete metrics window.", float64(win.Turns))
	}
}
