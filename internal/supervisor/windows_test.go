package supervisor

import (
	"testing"
	"time"
)

// Windows() ring edge cases: the windowed scheduling-latency digest must
// stay contiguous, bounded, and monotonic no matter how long the supervisor
// serves or what the clock does. These drive metrics.windowAdd directly —
// pushing the ring past windowRingCap through real scheduling would take
// hours of wall clock.

func TestWindowsEmpty(t *testing.T) {
	var s Supervisor
	if got := s.Windows(); len(got) != 0 {
		t.Fatalf("fresh supervisor has %d windows, want 0", len(got))
	}
	// winLen unset: samples are dropped, not filed into a phantom bucket.
	s.metrics.mu.Lock()
	s.metrics.windowAdd(time.Now(), 1.0)
	s.metrics.mu.Unlock()
	if got := s.Windows(); len(got) != 0 {
		t.Fatalf("windowAdd with no window width produced %d windows, want 0", len(got))
	}
}

func TestWindowsContiguousAndMonotonic(t *testing.T) {
	var s Supervisor
	m := &s.metrics
	t0 := time.Unix(1000, 0)
	m.initWindows(t0, 100*time.Millisecond)

	m.mu.Lock()
	m.windowAdd(t0.Add(10*time.Millisecond), 1.0)  // bucket 0
	m.windowAdd(t0.Add(320*time.Millisecond), 2.0) // bucket 3 (1, 2 stay empty)
	m.windowAdd(t0.Add(350*time.Millisecond), 4.0) // bucket 3 again
	m.mu.Unlock()

	wins := s.Windows()
	if len(wins) != 4 {
		t.Fatalf("got %d windows, want 4 (contiguous through empty buckets)", len(wins))
	}
	for i, w := range wins {
		if want := float64(i) * 100; w.StartMs != want {
			t.Errorf("window %d StartMs = %v, want %v", i, w.StartMs, want)
		}
		if w.WidthMs != 100 {
			t.Errorf("window %d WidthMs = %v, want 100", i, w.WidthMs)
		}
		if i > 0 && wins[i].StartMs != wins[i-1].StartMs+wins[i-1].WidthMs {
			t.Errorf("window %d does not start where %d ends", i, i-1)
		}
	}
	if wins[1].Turns != 0 || wins[2].Turns != 0 {
		t.Errorf("empty buckets carry turns: %+v", wins[1:3])
	}
	if wins[3].Turns != 2 || wins[3].Max != 4.0 {
		t.Errorf("bucket 3 = %+v, want 2 turns max 4.0", wins[3])
	}
}

func TestWindowsRingWrapAndClockSkew(t *testing.T) {
	var s Supervisor
	m := &s.metrics
	t0 := time.Unix(1000, 0)
	m.initWindows(t0, time.Millisecond)

	m.mu.Lock()
	m.windowAdd(t0, 1.0)
	// Land a sample far enough out that the ring must drop old buckets.
	over := 10
	m.windowAdd(t0.Add(time.Duration(windowRingCap+over-1)*time.Millisecond), 2.0)
	m.mu.Unlock()

	wins := s.Windows()
	if len(wins) != windowRingCap {
		t.Fatalf("ring holds %d windows, want cap %d", len(wins), windowRingCap)
	}
	// The oldest `over` buckets were dropped: the series now starts at their
	// successor, and the absolute timeline is preserved.
	if want := float64(over); wins[0].StartMs != want {
		t.Errorf("after wrap, first window StartMs = %v, want %v", wins[0].StartMs, want)
	}
	last := wins[len(wins)-1]
	if last.Turns != 1 || last.Max != 2.0 {
		t.Errorf("newest bucket = %+v, want the sample that forced the wrap", last)
	}

	// Clock skew: a sample timestamped before the retained range must land in
	// the oldest retained bucket, not panic or resurrect a dropped one.
	m.mu.Lock()
	m.windowAdd(t0, 9.0) // bucket index 0 < winBase
	m.mu.Unlock()
	wins = s.Windows()
	if len(wins) != windowRingCap {
		t.Fatalf("skewed sample changed ring length to %d", len(wins))
	}
	if wins[0].Turns != 1 || wins[0].Max != 9.0 {
		t.Errorf("skewed sample not filed into oldest retained bucket: %+v", wins[0])
	}
}

// TestWorstWindowP99Threshold pins the SLO gate's window filter: buckets
// with fewer than minWindowTurns turns are statistical noise and must not
// decide the worst-window figure; when nothing qualifies, the whole-run
// fallback is used.
func TestWorstWindowP99Threshold(t *testing.T) {
	wins := []WindowSummary{
		{Turns: minWindowTurns - 1, P99: 500}, // under-filled: ignored
		{Turns: minWindowTurns, P99: 5},
		{Turns: minWindowTurns + 10, P99: 7},
	}
	if got := worstWindowP99(wins, 99); got != 7 {
		t.Errorf("worstWindowP99 = %v, want 7 (the under-filled 500 must not win)", got)
	}
	if got := worstWindowP99([]WindowSummary{{Turns: 3, P99: 500}}, 42); got != 42 {
		t.Errorf("worstWindowP99 with no qualifying window = %v, want fallback 42", got)
	}
	if got := worstWindowP99(nil, 13); got != 13 {
		t.Errorf("worstWindowP99(nil) = %v, want fallback 13", got)
	}
}
