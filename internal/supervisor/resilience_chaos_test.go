//go:build chaos

package supervisor

import (
	"errors"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
)

// Chaos-tagged resilience tests: these drive the SetChaosHook seam
// directly (it only exists under -tags=chaos) to aim panics at specific
// guests and then assert the failure domain held — the worker survives,
// exactly one tenant dies, and shutdown paths converge while faults are
// in flight. The CI chaos leg runs them under -race.

// TestWorkerSurvivesInjectedPanic pins the recover barrier on a
// one-worker pool: if the panic killed the worker goroutine, the second
// guest could never be scheduled.
func TestWorkerSurvivesInjectedPanic(t *testing.T) {
	for _, backend := range []string{core.BackendTree, core.BackendBytecode} {
		t.Run(backend, func(t *testing.T) {
			s := New(Options{Workers: 1, QuantumSteps: 300, Backend: backend})
			defer s.Close()
			SetChaosHook(func(ct ChaosTurn) {
				if ct.GuestID == 1 {
					panic("chaos: injected engine fault")
				}
			})
			defer SetChaosHook(nil)

			victim, err := s.Submit(SubmitOptions{Source: guestSrc(1)})
			if err != nil {
				t.Fatal(err)
			}
			if res := victim.Wait(); !errors.Is(res.Err, ErrInternalFault) {
				t.Fatalf("victim: err=%v, want ErrInternalFault", res.Err)
			}

			bystander, err := s.Submit(SubmitOptions{Source: guestSrc(2)})
			if err != nil {
				t.Fatal(err)
			}
			res := bystander.Wait()
			if res.Err != nil {
				t.Fatalf("bystander on the same worker: %v", res.Err)
			}
			if res.Output != guestWant(2) {
				t.Fatalf("bystander output %q, want %q", res.Output, guestWant(2))
			}

			m := s.Metrics()
			if m.InternalFaults != 1 {
				t.Errorf("InternalFaults=%d, want 1", m.InternalFaults)
			}
			if !strings.Contains(m.LastFault, "chaos") || m.LastFaultStack == "" {
				t.Errorf("fault diagnostics not captured: LastFault=%q stack=%dB",
					m.LastFault, len(m.LastFaultStack))
			}
		})
	}
}

// TestDrainRacesInternalFaults submits a fleet where every fifth guest
// panics its worker mid-turn, then drains: the drain must converge (no
// hung Wait on a guest whose turn blew up), every guest must be finalized
// exactly once, and the bookkeeping must balance.
func TestDrainRacesInternalFaults(t *testing.T) {
	for _, backend := range []string{core.BackendTree, core.BackendBytecode} {
		t.Run(backend, func(t *testing.T) {
			n := 60
			s := New(Options{Workers: 4, MaxPending: n, QuantumSteps: 200, Backend: backend})
			defer s.Close()
			SetChaosHook(func(ct ChaosTurn) {
				if ct.GuestID%5 == 0 {
					panic("chaos: injected engine fault")
				}
			})
			defer SetChaosHook(nil)

			guests := make([]*Guest, 0, n)
			for i := 0; i < n; i++ {
				g, err := s.Submit(SubmitOptions{Source: guestSrc(i)})
				if err != nil {
					t.Fatal(err)
				}
				guests = append(guests, g)
			}
			if !s.DrainTimeout(30 * time.Second) {
				t.Fatal("drain did not converge with faults in flight")
			}

			var faulted, clean int
			for i, g := range guests {
				res := g.Wait() // must not hang: drain says everyone finished
				switch {
				case errors.Is(res.Err, ErrInternalFault):
					faulted++
				case res.Err == nil:
					clean++
					if res.Output != guestWant(i) {
						t.Errorf("guest %d output diverged under chaos", i)
					}
				default:
					t.Errorf("guest %d: unexpected err %v", i, res.Err)
				}
				// Finalized exactly once: the result is immutable after Done.
				if again := g.Wait(); again.Err != res.Err || again.Output != res.Output {
					t.Errorf("guest %d: second Wait returned a different result", i)
				}
			}
			if faulted != n/5 || clean != n-n/5 {
				t.Errorf("faulted=%d clean=%d, want %d/%d", faulted, clean, n/5, n-n/5)
			}

			m := s.Metrics()
			if m.Active != 0 {
				t.Errorf("Active=%d after drain, want 0 (double-finalize would skew this)", m.Active)
			}
			if m.InternalFaults != uint64(n/5) || m.Completed != uint64(n-n/5) {
				t.Errorf("InternalFaults=%d Completed=%d, want %d/%d",
					m.InternalFaults, m.Completed, n/5, n-n/5)
			}
		})
	}
}

// TestCloseRacesInternalFaults slams Close into a fleet that is actively
// panicking workers: every guest must still reach a terminal state
// (ErrShutdown, ErrInternalFault, or clean completion) and Close must
// return with no worker leaked and no guest finalized twice.
func TestCloseRacesInternalFaults(t *testing.T) {
	for _, backend := range []string{core.BackendTree, core.BackendBytecode} {
		t.Run(backend, func(t *testing.T) {
			n := 60
			s := New(Options{Workers: 4, MaxPending: n, QuantumSteps: 200, Backend: backend})
			SetChaosHook(func(ct ChaosTurn) {
				if ct.GuestID%5 == 0 {
					panic("chaos: injected engine fault")
				}
			})
			defer SetChaosHook(nil)

			guests := make([]*Guest, 0, n)
			for i := 0; i < n; i++ {
				g, err := s.Submit(SubmitOptions{Source: guestSrc(i)})
				if err != nil {
					t.Fatal(err)
				}
				guests = append(guests, g)
			}
			s.Close() // immediate: races the in-flight panics

			for i, g := range guests {
				res := g.Wait()
				if res.Err != nil &&
					!errors.Is(res.Err, ErrShutdown) &&
					!errors.Is(res.Err, ErrInternalFault) {
					t.Errorf("guest %d: unexpected terminal err %v", i, res.Err)
				}
			}
			if m := s.Metrics(); m.Active != 0 {
				t.Errorf("Active=%d after Close, want 0", m.Active)
			}
		})
	}
}
