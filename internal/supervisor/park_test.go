package supervisor

import (
	"errors"
	"fmt"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/snapshot"
)

// sleeperSrc builds a guest that computes, parks on a timer (the window in
// which the residency limiter can take its realm), then computes more and
// prints a seed-dependent result — so a park/restore that corrupted state,
// lost output, or revived the wrong guest is visible in the output. The
// sleep is long enough to outlast the fleet's submission phase even under
// the race detector (Submit compiles synchronously, so race-mode admission
// runs at ~100 guests/sec): residency must accumulate past MaxResident
// while guests are still arriving, or the limiter has nothing to do.
func sleeperSrc(seed int) string {
	return fmt.Sprintf(`
var s = %d;
for (var i = 0; i < 300; i++) { s = (s + i * 7) %% 99991; }
console.log("pre%d", s);
setTimeout(function () {
  for (var i = 0; i < 200; i++) { s = (s + i * 3) %% 99991; }
  console.log("post%d", s);
}, 1500);
`, seed, seed, seed)
}

func sleeperWant(seed int) string {
	s := seed
	for i := 0; i < 300; i++ {
		s = (s + i*7) % 99991
	}
	pre := s
	for i := 0; i < 200; i++ {
		s = (s + i*3) % 99991
	}
	return fmt.Sprintf("pre%d %d\npost%d %d\n", seed, pre, seed, s)
}

// TestParkRestoreFleet is the residency acceptance demo: a fleet far larger
// than MaxResident, every guest sleeping mid-program, completes with
// byte-exact outputs while the limiter cycles realms through disk.
func TestParkRestoreFleet(t *testing.T) {
	n := 1000
	if testing.Short() {
		n = 120
	}
	s := New(Options{
		Workers:      4,
		MaxPending:   n + 10,
		QuantumSteps: 1000,
		MaxResident:  100,
		ParkDir:      t.TempDir(),
	})
	defer s.Close()

	guests := make([]*Guest, 0, n)
	for i := 0; i < n; i++ {
		g, err := s.Submit(SubmitOptions{Source: sleeperSrc(i)})
		if err != nil {
			t.Fatal(err)
		}
		guests = append(guests, g)
	}
	for i, g := range guests {
		res := g.Wait()
		if res.Err != nil {
			t.Fatalf("guest %d failed: %v", i, res.Err)
		}
		if want := sleeperWant(i); res.Output != want {
			t.Fatalf("guest %d output %q, want %q", i, res.Output, want)
		}
	}

	m := s.Metrics()
	if m.Parks == 0 || m.Restores == 0 {
		t.Fatalf("limiter never cycled: parks=%d restores=%d pins=%d (MaxResident=%d, n=%d)",
			m.Parks, m.Restores, m.ParkPins, 100, n)
	}
	if m.SnapshotBytesTotal == 0 {
		t.Error("snapshot_bytes_total not accounted")
	}
	if m.ResidentGuests != 0 || m.ParkedGuests != 0 {
		t.Errorf("gauges leak after drain: resident=%d parked=%d", m.ResidentGuests, m.ParkedGuests)
	}
	t.Logf("n=%d parks=%d restores=%d bytes=%d restoreLat P50=%.2fms P99=%.2fms",
		n, m.Parks, m.Restores, m.SnapshotBytesTotal,
		m.RestoreLatency.P50, m.RestoreLatency.P99)
}

// waitState polls until g reaches want or the deadline passes.
func waitState(t *testing.T, g *Guest, want State) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if g.State() == want {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("guest never reached %v (state %v)", want, g.State())
}

// parkNow forces a guest through the limiter path directly (unit-level; the
// fleet test exercises the scheduler-driven path).
func parkNow(t *testing.T, s *Supervisor, g *Guest) {
	t.Helper()
	if !s.tryPark(g) {
		t.Fatalf("tryPark refused (state %v)", g.State())
	}
	if !g.Inspect().Parked {
		t.Fatal("guest not marked parked")
	}
}

// pausedGuest submits src and pauses it mid-flight — after its first output
// line, so the guest demonstrably started executing before the park.
func pausedGuest(t *testing.T, s *Supervisor, src string) *Guest {
	t.Helper()
	g, err := s.Submit(SubmitOptions{Source: src})
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for g.Output() == "" && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if g.Output() == "" {
		t.Fatal("guest produced no output before the pause")
	}
	g.Pause()
	waitState(t, g, StatePaused)
	return g
}

const longLoopSrc = `
console.log("phase1");
var s = 0;
for (var i = 0; i < 2000000; i++) { s = (s + i) % 1048573; }
console.log("phase2", s);
`

// TestParkedGuestResumesFromDisk pauses a guest, parks it to disk, resumes,
// and expects the full computation to finish from the spilled snapshot.
func TestParkedGuestResumesFromDisk(t *testing.T) {
	dir := t.TempDir()
	s := New(Options{Workers: 1, QuantumSteps: 2000, ParkDir: dir})
	defer s.Close()
	g := pausedGuest(t, s, `
console.log("a");
var s = 0;
for (var i = 0; i < 300000; i++) { s = (s + i) % 7919; }
console.log("b", s);
`)
	parkNow(t, s, g)
	files, _ := filepath.Glob(filepath.Join(dir, "guest-*.snap"))
	if len(files) != 1 {
		t.Fatalf("expected one spill file, found %v", files)
	}
	g.Resume()
	res := g.Wait()
	if res.Err != nil {
		t.Fatalf("restored guest failed: %v", res.Err)
	}
	want := "a\nb 4236\n"
	s2 := 0
	for i := 0; i < 300000; i++ {
		s2 = (s2 + i) % 7919
	}
	want = fmt.Sprintf("a\nb %d\n", s2)
	if res.Output != want {
		t.Fatalf("output %q, want %q", res.Output, want)
	}
	if files, _ = filepath.Glob(filepath.Join(dir, "guest-*.snap")); len(files) != 0 {
		t.Fatalf("spill file not cleaned up after restore: %v", files)
	}
}

// TestParkedGuestKilledCleansUp kills a parked guest and expects the spill
// file gone and the gauges balanced.
func TestParkedGuestKilledCleansUp(t *testing.T) {
	dir := t.TempDir()
	s := New(Options{Workers: 1, QuantumSteps: 2000, ParkDir: dir})
	defer s.Close()
	g := pausedGuest(t, s, longLoopSrc)
	parkNow(t, s, g)
	g.Kill(nil)
	res := g.Wait()
	if res.Err == nil {
		t.Fatal("killed guest reported success")
	}
	if files, _ := filepath.Glob(filepath.Join(dir, "guest-*.snap")); len(files) != 0 {
		t.Fatalf("spill file survived the kill: %v", files)
	}
	m := s.Metrics()
	if m.ResidentGuests != 0 || m.ParkedGuests != 0 {
		t.Fatalf("gauges leak: resident=%d parked=%d", m.ResidentGuests, m.ParkedGuests)
	}
}

// TestSnapshotHandoffAcrossSupervisors moves a half-finished guest between
// two supervisors in the same process via SnapshotGuest → Restore — the
// in-process twin of the cross-daemon endpoint hand-off.
func TestSnapshotHandoffAcrossSupervisors(t *testing.T) {
	a := New(Options{Workers: 1, QuantumSteps: 2000})
	defer a.Close()
	b := New(Options{Workers: 1, QuantumSteps: 2000})
	defer b.Close()

	g := pausedGuest(t, a, longLoopSrc)
	if got := g.Output(); got != "phase1\n" {
		t.Fatalf("pre-handoff output %q", got)
	}
	blob, err := a.SnapshotGuest(g.ID)
	if err != nil {
		t.Fatalf("SnapshotGuest: %v", err)
	}
	g.Kill(nil) // source side is done with it
	g.Wait()

	g2, err := b.Restore(blob, nil)
	if err != nil {
		t.Fatalf("Restore: %v", err)
	}
	res := g2.Wait()
	if res.Err != nil {
		t.Fatalf("restored guest failed: %v", res.Err)
	}
	s := 0
	for i := 0; i < 2000000; i++ {
		s = (s + i) % 1048573
	}
	want := fmt.Sprintf("phase1\nphase2 %d\n", s)
	if res.Output != want {
		t.Fatalf("handed-off output %q, want %q", res.Output, want)
	}
	if res.Steps == 0 {
		t.Error("restored guest lost its cumulative step accounting")
	}
	if m := b.Metrics(); m.RestoreAdmits != 1 {
		t.Errorf("restore_admits=%d, want 1", m.RestoreAdmits)
	}
}

// TestSnapshotGuestNotQuiescent: a running or queued guest refuses to
// serialize; the caller must pause it first.
func TestSnapshotGuestNotQuiescent(t *testing.T) {
	s := New(Options{Workers: 1, QuantumSteps: 1000})
	defer s.Close()
	g, err := s.Submit(SubmitOptions{Source: longLoopSrc})
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	var snapErr error
	for time.Now().Before(deadline) {
		if st := g.State(); st == StateRunning || st == StateQueued {
			_, snapErr = s.SnapshotGuest(g.ID)
			break
		}
		time.Sleep(time.Millisecond)
	}
	if !errors.Is(snapErr, ErrNotQuiescent) {
		t.Fatalf("SnapshotGuest on busy guest = %v, want ErrNotQuiescent", snapErr)
	}
	if _, err := s.SnapshotGuest(999999); !errors.Is(err, ErrUnknownGuest) {
		t.Fatalf("unknown ID error = %v", err)
	}
	g.Kill(nil)
	g.Wait()
}

// TestPinShrunkGuestParks: guests holding the state that used to pin them
// resident — a live bound function, a Date instance, a cancelled timer
// handle — now park and restore like any other guest (wire v2's data-backed
// representations).
func TestPinShrunkGuestParks(t *testing.T) {
	s := New(Options{Workers: 1, QuantumSteps: 2000, MaxResident: 1})
	defer s.Close()
	g := pausedGuest(t, s, `
var d = new Date();
function mul(a, b) { return a * b; }
var dbl = mul.bind(null, 2);
var dead = setTimeout(function () { console.log("never"); }, 0);
clearTimeout(dead);
console.log("x");
var s = 0;
for (var i = 0; i < 200000; i++) { s = (s + dbl(i)) % 101; }
console.log("y", s, typeof d.getTime());
`)
	if !s.tryPark(g) {
		t.Fatal("pin-shrunk guest did not park")
	}
	if m := s.Metrics(); m.ParkPins != 0 {
		t.Errorf("park_pins=%d (%v), want 0", m.ParkPins, m.ParkPinsByReason)
	}
	g.Resume()
	res := g.Wait()
	if res.Err != nil {
		t.Fatalf("restored guest failed: %v", res.Err)
	}
	s2 := 0
	for i := 0; i < 200000; i++ {
		s2 = (s2 + 2*i) % 101
	}
	if want := fmt.Sprintf("x\ny %d number\n", s2); res.Output != want {
		t.Fatalf("output %q, want %q", res.Output, want)
	}
}

// TestPinnedGuestStaysResident: a guest the codec still cannot serialize (a
// closure over eval-compiled code); the limiter must skip it, count the pin
// under its kind, and let it finish resident rather than kill or corrupt it.
func TestPinnedGuestStaysResident(t *testing.T) {
	s := New(Options{Workers: 1, QuantumSteps: 2000, MaxResident: 1})
	defer s.Close()
	copts := core.Defaults()
	copts.YieldIntervalMs = 0
	copts.Eval = true
	g, err := s.Submit(SubmitOptions{Source: `
eval("step = function (s, i) { return (s + i) % 101; };");
console.log("x");
var s = 0;
for (var i = 0; i < 200000; i++) { s = step(s, i); }
console.log("y", s);
`, Compile: copts})
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for g.Output() == "" && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	g.Pause()
	waitState(t, g, StatePaused)
	if s.tryPark(g) {
		t.Fatal("pinned guest was parked")
	}
	m := s.Metrics()
	if m.ParkPins == 0 {
		t.Error("pin not accounted in park_pins")
	}
	if m.ParkPinsByReason[snapshot.PinEval] == 0 {
		t.Errorf("park_pins_by_reason=%v, want an %q entry", m.ParkPinsByReason, snapshot.PinEval)
	}
	g.Resume()
	res := g.Wait()
	if res.Err != nil {
		t.Fatalf("pinned guest failed: %v", res.Err)
	}
	s2 := 0
	for i := 0; i < 200000; i++ {
		s2 = (s2 + i) % 101
	}
	if want := fmt.Sprintf("x\ny %d\n", s2); res.Output != want {
		t.Fatalf("output %q, want %q", res.Output, want)
	}
}

// TestRestoreRejectsGarbage: corrupt blobs fail admission synchronously.
func TestRestoreRejectsGarbage(t *testing.T) {
	s := New(Options{Workers: 1})
	defer s.Close()
	if _, err := s.Restore([]byte("not a snapshot"), nil); err == nil {
		t.Fatal("garbage blob admitted")
	}
	if _, err := s.Restore(nil, nil); err == nil {
		t.Fatal("nil blob admitted")
	}
}
