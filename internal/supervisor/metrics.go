package supervisor

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"repro/internal/interp"
	"repro/internal/rt"
	"repro/internal/stats"
)

// metrics is the supervisor's aggregate instrumentation: admission and
// completion counters plus two latency distributions — scheduling latency
// (how long a runnable guest waited for a worker; the fleet-level
// responsiveness number, bounded P99 = no starvation) and turn duration
// (how long a guest held a worker between yields, the multi-tenant analogue
// of the paper's Figure 2c time-between-yields).
type metrics struct {
	mu          sync.Mutex
	submitted   uint64
	rejected    uint64
	completed   uint64 // finished without error
	failed      uint64 // guest error (uncaught throw, step budget, stall)
	killed      uint64 // supervisor termination (kill, deadline, output cap, mem, shutdown)
	preemptions uint64
	stepsTotal  uint64

	// Per-cause kill counters (each also counted in killed), so an operator
	// can tell a fleet dying of deadlines from one dying of memory budgets.
	killDeadline uint64
	killOutput   uint64
	killMem      uint64
	killShutdown uint64
	killExplicit uint64 // external Guest.Kill (rt.ErrKilled or custom reason)

	// Engine faults: guests terminated by the worker's recover barrier
	// (ErrInternalFault). Neither completed, failed, nor killed — an engine
	// bug is nobody's policy. The most recent panic value and stack are
	// kept for diagnosis.
	internalFaults uint64
	lastFault      string
	lastFaultStack string

	// Residency limiter traffic: parks (guests serialized out of memory),
	// restores (realms rebuilt on touch), pins (park attempts refused by
	// the codec), total snapshot bytes produced, and admissions via
	// Supervisor.Restore from external blobs.
	parks         uint64
	restores      uint64
	parkPins      uint64
	snapshotBytes uint64
	restoreAdmits uint64

	sched      reservoir
	turns      reservoir
	restoreLat reservoir
}

func (m *metrics) park(blobLen int) {
	m.mu.Lock()
	m.parks++
	m.snapshotBytes += uint64(blobLen)
	m.mu.Unlock()
}

func (m *metrics) parkPinned() {
	m.mu.Lock()
	m.parkPins++
	m.mu.Unlock()
}

func (m *metrics) restoreDone(d time.Duration) {
	m.mu.Lock()
	m.restores++
	m.restoreLat.add(float64(d) / float64(time.Millisecond))
	m.mu.Unlock()
}

func (m *metrics) restoreAdmit() {
	m.mu.Lock()
	m.restoreAdmits++
	m.mu.Unlock()
}

// internalFault records one recovered engine panic.
func (m *metrics) internalFault(r interface{}, stack []byte) {
	m.mu.Lock()
	m.internalFaults++
	m.lastFault = fmt.Sprint(r)
	m.lastFaultStack = string(stack)
	m.mu.Unlock()
}

func (m *metrics) submit() {
	m.mu.Lock()
	m.submitted++
	m.mu.Unlock()
}

func (m *metrics) reject() {
	m.mu.Lock()
	m.rejected++
	m.mu.Unlock()
}

func (m *metrics) preempt() {
	m.mu.Lock()
	m.preemptions++
	m.mu.Unlock()
}

func (m *metrics) schedLatency(d time.Duration) {
	m.mu.Lock()
	m.sched.add(float64(d) / float64(time.Millisecond))
	m.mu.Unlock()
}

func (m *metrics) turn(d time.Duration) {
	m.mu.Lock()
	m.turns.add(float64(d) / float64(time.Millisecond))
	m.mu.Unlock()
}

func (m *metrics) finish(err error, steps uint64) {
	m.mu.Lock()
	switch {
	case err == nil:
		m.completed++
	case errors.Is(err, ErrInternalFault):
		// Counted by internalFault (which captured the stack); finish only
		// accounts the steps.
	case isSupervisorKill(err):
		m.killed++
		switch {
		case errors.Is(err, ErrDeadline):
			m.killDeadline++
		case errors.Is(err, ErrOutputLimit):
			m.killOutput++
		case errors.Is(err, interp.ErrMemLimit):
			m.killMem++
		case errors.Is(err, ErrShutdown):
			m.killShutdown++
		default:
			m.killExplicit++
		}
	default:
		m.failed++
	}
	m.stepsTotal += steps
	m.mu.Unlock()
}

// isSupervisorKill classifies terminations the supervisor (or an external
// controller) imposed, as opposed to errors the guest earned. The memory
// budget counts as a supervisor kill, like the output cap: both are policy
// limits enforced from outside, not errors the guest's own code raised.
func isSupervisorKill(err error) bool {
	switch err {
	case ErrDeadline, ErrOutputLimit, ErrShutdown:
		return true
	}
	return errors.Is(err, rt.ErrKilled) || errors.Is(err, interp.ErrMemLimit)
}

// LatencySummary is the percentile digest of one distribution, in
// milliseconds.
type LatencySummary struct {
	Count int     `json:"count"`
	P50   float64 `json:"p50_ms"`
	P90   float64 `json:"p90_ms"`
	P99   float64 `json:"p99_ms"`
	Max   float64 `json:"max_ms"`
}

// Metrics is a point-in-time aggregate snapshot (Supervisor.Metrics).
type Metrics struct {
	Submitted   uint64 `json:"submitted"`
	Rejected    uint64 `json:"rejected"`
	Completed   uint64 `json:"completed"`
	Failed      uint64 `json:"failed"`
	Killed      uint64 `json:"killed"`
	Preemptions uint64 `json:"preemptions"`
	StepsTotal  uint64 `json:"steps_total"`
	Active      int    `json:"active"`
	Queued      int    `json:"queued"`

	// Per-cause breakdown of Killed.
	KilledDeadline uint64 `json:"killed_deadline"`
	KilledOutput   uint64 `json:"killed_output"`
	KilledMem      uint64 `json:"killed_mem"`
	KilledShutdown uint64 `json:"killed_shutdown"`
	KilledExplicit uint64 `json:"killed_explicit"`

	// Engine faults recovered by the worker barrier; LastFault and
	// LastFaultStack describe the most recent one.
	InternalFaults uint64 `json:"internal_faults"`
	LastFault      string `json:"last_fault,omitempty"`
	LastFaultStack string `json:"last_fault_stack,omitempty"`

	// Residency limiter: live realms vs parked snapshots right now, park /
	// restore traffic, and how long a restore-on-touch stalls a turn.
	ResidentGuests     int            `json:"resident_guests"`
	ParkedGuests       int            `json:"parked_guests"`
	Parks              uint64         `json:"parks"`
	Restores           uint64         `json:"restores"`
	ParkPins           uint64         `json:"park_pins"`
	SnapshotBytesTotal uint64         `json:"snapshot_bytes_total"`
	RestoreAdmits      uint64         `json:"restore_admits"`
	RestoreLatency     LatencySummary `json:"restore_latency"`

	SchedLatency LatencySummary `json:"sched_latency"`
	TurnDuration LatencySummary `json:"turn_duration"`
}

// Metrics snapshots the aggregate counters and latency digests.
func (s *Supervisor) Metrics() Metrics {
	s.mu.Lock()
	active := s.pending
	queued := len(s.interactive) + len(s.batch)
	resident := s.resident
	parked := s.parkedN
	s.mu.Unlock()

	m := &s.metrics
	m.mu.Lock()
	defer m.mu.Unlock()
	return Metrics{
		Submitted:          m.submitted,
		Rejected:           m.rejected,
		Completed:          m.completed,
		Failed:             m.failed,
		Killed:             m.killed,
		Preemptions:        m.preemptions,
		StepsTotal:         m.stepsTotal,
		Active:             active,
		Queued:             queued,
		KilledDeadline:     m.killDeadline,
		KilledOutput:       m.killOutput,
		KilledMem:          m.killMem,
		KilledShutdown:     m.killShutdown,
		KilledExplicit:     m.killExplicit,
		InternalFaults:     m.internalFaults,
		LastFault:          m.lastFault,
		LastFaultStack:     m.lastFaultStack,
		ResidentGuests:     resident,
		ParkedGuests:       parked,
		Parks:              m.parks,
		Restores:           m.restores,
		ParkPins:           m.parkPins,
		SnapshotBytesTotal: m.snapshotBytes,
		RestoreAdmits:      m.restoreAdmits,
		RestoreLatency:     m.restoreLat.summary(),
		SchedLatency:       m.sched.summary(),
		TurnDuration:       m.turns.summary(),
	}
}

// reservoir keeps an exact sample set up to its capacity and degrades to
// uniform reservoir sampling beyond it, so percentile digests stay O(cap)
// no matter how long the supervisor serves. Callers hold metrics.mu.
type reservoir struct {
	samples []float64
	seen    int
	rng     *rand.Rand
}

const reservoirCap = 1 << 16

func (r *reservoir) add(x float64) {
	r.seen++
	if len(r.samples) < reservoirCap {
		r.samples = append(r.samples, x)
		return
	}
	if r.rng == nil {
		r.rng = rand.New(rand.NewSource(1))
	}
	if i := r.rng.Intn(r.seen); i < reservoirCap {
		r.samples[i] = x
	}
}

func (r *reservoir) summary() LatencySummary {
	if len(r.samples) == 0 {
		return LatencySummary{}
	}
	max := r.samples[0]
	for _, x := range r.samples {
		if x > max {
			max = x
		}
	}
	return LatencySummary{
		Count: r.seen,
		P50:   stats.Quantile(r.samples, 0.50),
		P90:   stats.Quantile(r.samples, 0.90),
		P99:   stats.Quantile(r.samples, 0.99),
		Max:   max,
	}
}
