package supervisor

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"repro/internal/interp"
	"repro/internal/rt"
	"repro/internal/stats"
)

// metrics is the supervisor's aggregate instrumentation: admission and
// completion counters plus two latency distributions — scheduling latency
// (how long a runnable guest waited for a worker; the fleet-level
// responsiveness number, bounded P99 = no starvation) and turn duration
// (how long a guest held a worker between yields, the multi-tenant analogue
// of the paper's Figure 2c time-between-yields).
type metrics struct {
	mu          sync.Mutex
	submitted   uint64
	rejected    uint64
	completed   uint64 // finished without error
	failed      uint64 // guest error (uncaught throw, step budget, stall)
	killed      uint64 // supervisor termination (kill, deadline, output cap, mem, shutdown)
	preemptions uint64
	steals      uint64 // guests run by a worker other than their home queue's
	stepsTotal  uint64

	// Per-cause kill counters (each also counted in killed), so an operator
	// can tell a fleet dying of deadlines from one dying of memory budgets.
	killDeadline uint64
	killOutput   uint64
	killMem      uint64
	killShutdown uint64
	killExplicit uint64 // external Guest.Kill (rt.ErrKilled or custom reason)

	// Engine faults: guests terminated by the worker's recover barrier
	// (ErrInternalFault). Neither completed, failed, nor killed — an engine
	// bug is nobody's policy. The most recent panic value and stack are
	// kept for diagnosis.
	internalFaults uint64
	lastFault      string
	lastFaultStack string

	// Residency limiter traffic: parks (guests serialized out of memory),
	// restores (realms rebuilt on touch), pins (park attempts refused by
	// the codec), total snapshot bytes produced, and admissions via
	// Supervisor.Restore from external blobs.
	parks         uint64
	restores      uint64
	parkPins      uint64
	parkPinKinds  map[string]uint64
	snapshotBytes uint64
	restoreAdmits uint64

	sched      reservoir
	turns      reservoir
	restoreLat reservoir

	// Windowed scheduling latency: a ring of fixed-width time buckets over
	// the supervisor's lifetime, so a sustained-load run sees P99 *over
	// time* — a latency cliff in minute 25 of a 30-minute run is invisible
	// in the whole-run reservoir above but unmissable in its window.
	winStart time.Time
	winLen   time.Duration
	winBase  int // absolute index of windows[0] (ring has dropped winBase older buckets)
	windows  []windowBucket
}

// windowBucket accumulates one time slice's scheduling-latency samples.
type windowBucket struct {
	samples []float64 // ms; capped at windowSampleCap via reservoir downsampling
	seen    int
	rng     *rand.Rand
}

const (
	// windowSampleCap bounds one bucket's exact sample set.
	windowSampleCap = 8192
	// windowRingCap bounds how many buckets are retained (oldest dropped).
	windowRingCap = 4096
)

func (b *windowBucket) add(x float64) {
	b.seen++
	if len(b.samples) < windowSampleCap {
		b.samples = append(b.samples, x)
		return
	}
	if b.rng == nil {
		b.rng = rand.New(rand.NewSource(int64(b.seen)))
	}
	if i := b.rng.Intn(b.seen); i < windowSampleCap {
		b.samples[i] = x
	}
}

func (m *metrics) initWindows(start time.Time, width time.Duration) {
	m.mu.Lock()
	m.winStart = start
	m.winLen = width
	m.mu.Unlock()
}

// windowAdd files one scheduling-latency sample into its time bucket.
// Caller holds m.mu.
func (m *metrics) windowAdd(now time.Time, ms float64) {
	if m.winLen <= 0 {
		return
	}
	idx := int(now.Sub(m.winStart) / m.winLen)
	if idx < m.winBase {
		idx = m.winBase // clock skew: file into the oldest retained bucket
	}
	for m.winBase+len(m.windows) <= idx {
		m.windows = append(m.windows, windowBucket{})
		if len(m.windows) > windowRingCap {
			drop := len(m.windows) - windowRingCap
			m.windows = m.windows[drop:]
			m.winBase += drop
		}
	}
	m.windows[idx-m.winBase].add(ms)
}

// WindowSummary is one time slice of the windowed scheduling-latency
// digest: percentiles of how long runnable guests waited for a worker
// during [StartMs, StartMs+WidthMs) of the supervisor's life.
type WindowSummary struct {
	StartMs float64 `json:"start_ms"`
	WidthMs float64 `json:"width_ms"`
	Turns   int     `json:"turns"`
	P50     float64 `json:"p50_ms"`
	P90     float64 `json:"p90_ms"`
	P99     float64 `json:"p99_ms"`
	Max     float64 `json:"max_ms"`
}

// Windows returns the retained windowed scheduling-latency digest, oldest
// first. Empty buckets (no turns scheduled in that slice) are included, so
// the series is contiguous in time.
func (s *Supervisor) Windows() []WindowSummary {
	m := &s.metrics
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]WindowSummary, len(m.windows))
	width := float64(m.winLen) / float64(time.Millisecond)
	for i := range m.windows {
		b := &m.windows[i]
		w := WindowSummary{
			StartMs: float64(m.winBase+i) * width,
			WidthMs: width,
			Turns:   b.seen,
		}
		if len(b.samples) > 0 {
			max := b.samples[0]
			for _, x := range b.samples {
				if x > max {
					max = x
				}
			}
			w.P50 = stats.Quantile(b.samples, 0.50)
			w.P90 = stats.Quantile(b.samples, 0.90)
			w.P99 = stats.Quantile(b.samples, 0.99)
			w.Max = max
		}
		out[i] = w
	}
	return out
}

func (m *metrics) park(blobLen int) {
	m.mu.Lock()
	m.parks++
	m.snapshotBytes += uint64(blobLen)
	m.mu.Unlock()
}

// parkPinned records a park attempt the codec refused, keyed by the
// PinError's coarse kind (snapshot.Pin* constants; "other" for
// non-pin failures). The per-kind split makes pin-set changes measurable:
// shrinking the set (wire v2 serializing bound functions and Dates) should
// empty the kinds it removed while leaving eval/task/host pins visible.
func (m *metrics) parkPinned(kind string) {
	m.mu.Lock()
	m.parkPins++
	if m.parkPinKinds == nil {
		m.parkPinKinds = make(map[string]uint64)
	}
	m.parkPinKinds[kind]++
	m.mu.Unlock()
}

func (m *metrics) restoreDone(d time.Duration) {
	m.mu.Lock()
	m.restores++
	m.restoreLat.add(float64(d) / float64(time.Millisecond))
	m.mu.Unlock()
}

func (m *metrics) restoreAdmit() {
	m.mu.Lock()
	m.restoreAdmits++
	m.mu.Unlock()
}

// internalFault records one recovered engine panic.
func (m *metrics) internalFault(r interface{}, stack []byte) {
	m.mu.Lock()
	m.internalFaults++
	m.lastFault = fmt.Sprint(r)
	m.lastFaultStack = string(stack)
	m.mu.Unlock()
}

func (m *metrics) submit() {
	m.mu.Lock()
	m.submitted++
	m.mu.Unlock()
}

func (m *metrics) reject() {
	m.mu.Lock()
	m.rejected++
	m.mu.Unlock()
}

func (m *metrics) preempt() {
	m.mu.Lock()
	m.preemptions++
	m.mu.Unlock()
}

func (m *metrics) schedLatency(d time.Duration) {
	ms := float64(d) / float64(time.Millisecond)
	m.mu.Lock()
	m.sched.add(ms)
	m.windowAdd(time.Now(), ms)
	m.mu.Unlock()
}

func (m *metrics) steal() {
	m.mu.Lock()
	m.steals++
	m.mu.Unlock()
}

func (m *metrics) turn(d time.Duration) {
	m.mu.Lock()
	m.turns.add(float64(d) / float64(time.Millisecond))
	m.mu.Unlock()
}

func (m *metrics) finish(err error, steps uint64) {
	m.mu.Lock()
	switch {
	case err == nil:
		m.completed++
	case errors.Is(err, ErrInternalFault):
		// Counted by internalFault (which captured the stack); finish only
		// accounts the steps.
	case isSupervisorKill(err):
		m.killed++
		switch {
		case errors.Is(err, ErrDeadline):
			m.killDeadline++
		case errors.Is(err, ErrOutputLimit):
			m.killOutput++
		case errors.Is(err, interp.ErrMemLimit):
			m.killMem++
		case errors.Is(err, ErrShutdown):
			m.killShutdown++
		default:
			m.killExplicit++
		}
	default:
		m.failed++
	}
	m.stepsTotal += steps
	m.mu.Unlock()
}

// isSupervisorKill classifies terminations the supervisor (or an external
// controller) imposed, as opposed to errors the guest earned. The memory
// budget counts as a supervisor kill, like the output cap: both are policy
// limits enforced from outside, not errors the guest's own code raised.
func isSupervisorKill(err error) bool {
	switch err {
	case ErrDeadline, ErrOutputLimit, ErrShutdown:
		return true
	}
	return errors.Is(err, rt.ErrKilled) || errors.Is(err, interp.ErrMemLimit)
}

// LatencySummary is the percentile digest of one distribution, in
// milliseconds.
type LatencySummary struct {
	Count int     `json:"count"`
	SumMs float64 `json:"sum_ms"`
	P50   float64 `json:"p50_ms"`
	P90   float64 `json:"p90_ms"`
	P99   float64 `json:"p99_ms"`
	Max   float64 `json:"max_ms"`
}

// Metrics is a point-in-time aggregate snapshot (Supervisor.Metrics).
type Metrics struct {
	Submitted   uint64 `json:"submitted"`
	Rejected    uint64 `json:"rejected"`
	Completed   uint64 `json:"completed"`
	Failed      uint64 `json:"failed"`
	Killed      uint64 `json:"killed"`
	Preemptions uint64 `json:"preemptions"`
	Steals      uint64 `json:"steals"`
	StepsTotal  uint64 `json:"steps_total"`
	Active      int    `json:"active"`
	Queued      int    `json:"queued"`

	// Per-cause breakdown of Killed.
	KilledDeadline uint64 `json:"killed_deadline"`
	KilledOutput   uint64 `json:"killed_output"`
	KilledMem      uint64 `json:"killed_mem"`
	KilledShutdown uint64 `json:"killed_shutdown"`
	KilledExplicit uint64 `json:"killed_explicit"`

	// Engine faults recovered by the worker barrier; LastFault and
	// LastFaultStack describe the most recent one.
	InternalFaults uint64 `json:"internal_faults"`
	LastFault      string `json:"last_fault,omitempty"`
	LastFaultStack string `json:"last_fault_stack,omitempty"`

	// Residency limiter: live realms vs parked snapshots right now, park /
	// restore traffic, and how long a restore-on-touch stalls a turn.
	ResidentGuests int    `json:"resident_guests"`
	ParkedGuests   int    `json:"parked_guests"`
	Parks          uint64 `json:"parks"`
	Restores       uint64 `json:"restores"`
	ParkPins       uint64 `json:"park_pins"`
	// ParkPinsByReason splits ParkPins by snapshot.PinError kind ("native",
	// "eval", "task", ...; "other" for non-pin snapshot failures), so
	// operators can see *why* guests stay resident and codec work that
	// shrinks the pin set shows up as kinds going to zero.
	ParkPinsByReason   map[string]uint64 `json:"park_pins_by_reason,omitempty"`
	SnapshotBytesTotal uint64            `json:"snapshot_bytes_total"`
	RestoreAdmits      uint64            `json:"restore_admits"`
	RestoreLatency     LatencySummary    `json:"restore_latency"`

	SchedLatency LatencySummary `json:"sched_latency"`
	TurnDuration LatencySummary `json:"turn_duration"`
}

// Metrics snapshots the aggregate counters and latency digests. The whole
// snapshot is taken inside one s.mu critical section with metrics.mu nested
// (the lock order everywhere is g.mu → s.mu → metrics.mu), so the gauges
// and the counters are mutually consistent: a park moves resident/parked
// and bumps the park counter under the same s.mu hold, and a scrape can
// never observe one without the other.
func (s *Supervisor) Metrics() Metrics {
	s.mu.Lock()
	defer s.mu.Unlock()
	active := s.pending
	queued := 0
	for i := range s.queues {
		queued += s.queues[i].depth()
	}
	resident := s.resident
	parked := s.parkedN

	m := &s.metrics
	m.mu.Lock()
	defer m.mu.Unlock()
	return Metrics{
		Submitted:          m.submitted,
		Rejected:           m.rejected,
		Completed:          m.completed,
		Failed:             m.failed,
		Killed:             m.killed,
		Preemptions:        m.preemptions,
		Steals:             m.steals,
		StepsTotal:         m.stepsTotal,
		Active:             active,
		Queued:             queued,
		KilledDeadline:     m.killDeadline,
		KilledOutput:       m.killOutput,
		KilledMem:          m.killMem,
		KilledShutdown:     m.killShutdown,
		KilledExplicit:     m.killExplicit,
		InternalFaults:     m.internalFaults,
		LastFault:          m.lastFault,
		LastFaultStack:     m.lastFaultStack,
		ResidentGuests:     resident,
		ParkedGuests:       parked,
		Parks:              m.parks,
		Restores:           m.restores,
		ParkPins:           m.parkPins,
		ParkPinsByReason:   copyCounts(m.parkPinKinds),
		SnapshotBytesTotal: m.snapshotBytes,
		RestoreAdmits:      m.restoreAdmits,
		RestoreLatency:     m.restoreLat.summary(),
		SchedLatency:       m.sched.summary(),
		TurnDuration:       m.turns.summary(),
	}
}

// copyCounts snapshots a counter map (nil in, nil out) so Metrics values
// stay immutable after return.
func copyCounts(src map[string]uint64) map[string]uint64 {
	if len(src) == 0 {
		return nil
	}
	out := make(map[string]uint64, len(src))
	for k, v := range src {
		out[k] = v
	}
	return out
}

// reservoir keeps an exact sample set up to its capacity and degrades to
// uniform reservoir sampling beyond it, so percentile digests stay O(cap)
// no matter how long the supervisor serves. Callers hold metrics.mu.
type reservoir struct {
	samples []float64
	seen    int
	sum     float64 // exact running sum over all seen samples (Prometheus _sum)
	rng     *rand.Rand
}

const reservoirCap = 1 << 16

func (r *reservoir) add(x float64) {
	r.seen++
	r.sum += x
	if len(r.samples) < reservoirCap {
		r.samples = append(r.samples, x)
		return
	}
	if r.rng == nil {
		r.rng = rand.New(rand.NewSource(1))
	}
	if i := r.rng.Intn(r.seen); i < reservoirCap {
		r.samples[i] = x
	}
}

func (r *reservoir) summary() LatencySummary {
	if len(r.samples) == 0 {
		return LatencySummary{}
	}
	max := r.samples[0]
	for _, x := range r.samples {
		if x > max {
			max = x
		}
	}
	return LatencySummary{
		Count: r.seen,
		SumMs: r.sum,
		P50:   stats.Quantile(r.samples, 0.50),
		P90:   stats.Quantile(r.samples, 0.90),
		P99:   stats.Quantile(r.samples, 0.99),
		Max:   max,
	}
}
