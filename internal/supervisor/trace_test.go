package supervisor

import (
	"encoding/json"
	"testing"
)

// traceTypes collects the set of event types in a trace.
func traceTypes(evs []TraceEvent) map[string]int {
	out := map[string]int{}
	for _, ev := range evs {
		out[ev.Type]++
	}
	return out
}

// TestTraceRecordsLifecycle runs one guest to completion and checks the
// flight recorder captured its whole life in order: submit, schedule, turns
// with preemptions, finish — with worker, cause, and step attribution.
func TestTraceRecordsLifecycle(t *testing.T) {
	s := New(Options{Workers: 2, QuantumSteps: 300})
	defer s.Close()
	g, err := s.Submit(SubmitOptions{Source: guestSrc(1)})
	if err != nil {
		t.Fatal(err)
	}
	if res := g.Wait(); res.Err != nil {
		t.Fatalf("guest failed: %v", res.Err)
	}

	evs := s.Trace(0)
	if len(evs) == 0 {
		t.Fatal("flight recorder is empty after a full guest lifecycle")
	}
	for i := 1; i < len(evs); i++ {
		if evs[i].Seq <= evs[i-1].Seq {
			t.Fatalf("events not in strict seq order: %d then %d", evs[i-1].Seq, evs[i].Seq)
		}
	}
	types := traceTypes(evs)
	for _, want := range []string{TraceSubmit, TraceSchedule, TraceTurn, TracePreempt, TraceFinish} {
		if types[want] == 0 {
			t.Errorf("no %q event recorded; have %v", want, types)
		}
	}
	if types[TraceTurn] < 2 {
		t.Errorf("a 300-step quantum run recorded %d turns, want several", types[TraceTurn])
	}

	var finish *TraceEvent
	for i := range evs {
		ev := &evs[i]
		switch ev.Type {
		case TraceFinish:
			finish = ev
		case TraceSchedule, TraceTurn:
			if ev.Worker < 0 || ev.Worker >= 2 {
				t.Errorf("%s event on worker %d, want 0..1", ev.Type, ev.Worker)
			}
		}
	}
	if finish == nil {
		t.Fatal("no finish event")
	}
	if finish.Guest != g.ID || finish.Cause != "ok" || finish.Steps == 0 {
		t.Errorf("finish = %+v, want guest %d cause ok with steps", finish, g.ID)
	}
}

// TestTracePerGuestFilter submits two guests and checks ?id=-style filtering
// isolates one tenant's events.
func TestTracePerGuestFilter(t *testing.T) {
	s := New(Options{Workers: 2, QuantumSteps: 300})
	defer s.Close()
	g1, err := s.Submit(SubmitOptions{Source: guestSrc(1)})
	if err != nil {
		t.Fatal(err)
	}
	g2, err := s.Submit(SubmitOptions{Source: guestSrc(2)})
	if err != nil {
		t.Fatal(err)
	}
	g1.Wait()
	g2.Wait()

	evs := s.Trace(g1.ID)
	if len(evs) == 0 {
		t.Fatal("per-guest filter returned nothing")
	}
	for _, ev := range evs {
		if ev.Guest != g1.ID {
			t.Fatalf("filtered trace leaked guest %d's %s event", ev.Guest, ev.Type)
		}
	}
	if types := traceTypes(evs); types[TraceFinish] != 1 {
		t.Errorf("guest %d has %d finish events, want 1", g1.ID, types[TraceFinish])
	}
	if got := s.Trace(99999); len(got) != 0 {
		t.Errorf("unknown guest id returned %d events", len(got))
	}
}

// TestTraceRingOverwrites bounds the recorder: a long-lived fleet must keep
// the newest events and stay within capacity, never grow without bound.
func TestTraceRingOverwrites(t *testing.T) {
	// Two shards (1 worker + control) at minimum per-shard size.
	s := New(Options{Workers: 1, QuantumSteps: 5000, TraceCapacity: 2})
	defer s.Close()
	for i := 0; i < 40; i++ {
		g, err := s.Submit(SubmitOptions{Source: `console.log("x");`})
		if err != nil {
			t.Fatal(err)
		}
		g.Wait()
	}
	evs := s.Trace(0)
	if len(evs) == 0 || len(evs) > 2*64 {
		t.Fatalf("ring holds %d events, want (0, %d]", len(evs), 2*64)
	}
	// The newest finish must still be there — overwrite drops oldest-first.
	var maxSeq uint64
	sawRecentFinish := false
	for _, ev := range evs {
		if ev.Seq > maxSeq {
			maxSeq = ev.Seq
		}
		if ev.Type == TraceFinish && ev.Guest == 40 {
			sawRecentFinish = true
		}
	}
	if !sawRecentFinish {
		t.Error("newest guest's finish event was evicted; ring is not oldest-first")
	}
}

// TestTraceDisabled: a negative capacity turns the recorder off entirely —
// the nil-tracer fast path.
func TestTraceDisabled(t *testing.T) {
	s := New(Options{Workers: 1, QuantumSteps: 1000, TraceCapacity: -1})
	defer s.Close()
	g, err := s.Submit(SubmitOptions{Source: `console.log("x");`})
	if err != nil {
		t.Fatal(err)
	}
	g.Wait()
	if evs := s.Trace(0); evs != nil {
		t.Fatalf("disabled recorder returned %d events", len(evs))
	}
}

// TestChromeTraceFormat checks the ?format=chrome rendering is valid JSON in
// the trace-event shape: turns as complete ("X") slices with durations,
// everything else as instants, plus thread-name metadata so the tracks are
// labeled.
func TestChromeTraceFormat(t *testing.T) {
	s := New(Options{Workers: 2, QuantumSteps: 300})
	defer s.Close()
	g, err := s.Submit(SubmitOptions{Source: guestSrc(3)})
	if err != nil {
		t.Fatal(err)
	}
	g.Wait()

	raw := ChromeTrace(s.Trace(0))
	var doc struct {
		TraceEvents []struct {
			Name string                 `json:"name"`
			Ph   string                 `json:"ph"`
			Ts   float64                `json:"ts"`
			Dur  float64                `json:"dur"`
			Pid  int                    `json:"pid"`
			Tid  int                    `json:"tid"`
			Args map[string]interface{} `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("ChromeTrace output is not valid JSON: %v", err)
	}
	var slices, instants, meta int
	for _, ev := range doc.TraceEvents {
		switch ev.Ph {
		case "X":
			slices++
			if ev.Dur < 0 || ev.Ts < 0 {
				t.Errorf("slice %q has negative ts/dur: %+v", ev.Name, ev)
			}
		case "i":
			instants++
		case "M":
			meta++
		}
	}
	if slices == 0 || instants == 0 || meta == 0 {
		t.Errorf("chrome trace has %d slices, %d instants, %d metadata events; want all three kinds",
			slices, instants, meta)
	}
}
