package supervisor

import (
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/interp"
	"repro/internal/rt"
)

// guestSrc builds a small CPU-bound guest whose output depends on seed, so
// cross-guest state bleed would be visible in the asserted output.
func guestSrc(seed int) string {
	return fmt.Sprintf(`
var s = %d;
for (var i = 0; i < 400; i++) { s = (s + i * 7) %% 99991; }
function fib(n) { if (n < 2) { return n; } return fib(n - 1) + fib(n - 2); }
console.log("g%d", s, fib(10));
`, seed, seed)
}

// guestWant computes guestSrc's expected output host-side.
func guestWant(seed int) string {
	s := seed
	for i := 0; i < 400; i++ {
		s = (s + i*7) % 99991
	}
	var fib func(int) int
	fib = func(n int) int {
		if n < 2 {
			return n
		}
		return fib(n-1) + fib(n-2)
	}
	return fmt.Sprintf("g%d %d %d\n", seed, s, fib(10))
}

func TestSingleGuestCompletes(t *testing.T) {
	s := New(Options{Workers: 2, QuantumSteps: 300})
	defer s.Close()
	g, err := s.Submit(SubmitOptions{Source: guestSrc(1)})
	if err != nil {
		t.Fatal(err)
	}
	res := g.Wait()
	if res.Err != nil {
		t.Fatalf("guest failed: %v", res.Err)
	}
	if res.Output != guestWant(1) {
		t.Fatalf("output %q, want %q", res.Output, guestWant(1))
	}
	if res.Quanta < 2 || res.Preemptions < 1 {
		t.Errorf("expected a multi-quantum run with preemptions, got quanta=%d preemptions=%d",
			res.Quanta, res.Preemptions)
	}
	if res.Steps == 0 {
		t.Error("steps not recorded")
	}
}

// TestThousandGuestsFourWorkers is the acceptance demo: 1,000 concurrent
// guests on a 4-worker pool, round-robin preempted, all completing with
// byte-exact outputs, with a misbehaving infinite-loop guest killed at its
// deadline without affecting any neighbor, and a bounded scheduling-latency
// P99.
func TestThousandGuestsFourWorkers(t *testing.T) {
	n := 1000
	if testing.Short() {
		n = 100
	}
	s := New(Options{Workers: 4, MaxPending: n + 10, QuantumSteps: 1000})
	defer s.Close()

	// One hostile tenant: an infinite loop with a deadline. It is admitted
	// in the middle of the fleet so its kill happens while neighbors run.
	hostileAt := n / 2
	var hostile *Guest

	guests := make([]*Guest, 0, n)
	for i := 0; i < n; i++ {
		if i == hostileAt {
			pol := Policy{WallDeadline: 300 * time.Millisecond}
			h, err := s.Submit(SubmitOptions{Source: `while (true) { var x = 1; }`, Policy: &pol})
			if err != nil {
				t.Fatal(err)
			}
			hostile = h
		}
		g, err := s.Submit(SubmitOptions{Source: guestSrc(i)})
		if err != nil {
			t.Fatal(err)
		}
		guests = append(guests, g)
	}

	for i, g := range guests {
		res := g.Wait()
		if res.Err != nil {
			t.Fatalf("guest %d failed: %v", i, res.Err)
		}
		if want := guestWant(i); res.Output != want {
			t.Fatalf("guest %d output %q, want %q", i, res.Output, want)
		}
	}
	hres := hostile.Wait()
	if !errors.Is(hres.Err, ErrDeadline) {
		t.Fatalf("hostile guest: err=%v, want ErrDeadline", hres.Err)
	}

	m := s.Metrics()
	if m.Completed != uint64(n) || m.Killed != 1 {
		t.Errorf("metrics completed=%d killed=%d, want %d/1", m.Completed, m.Killed, n)
	}
	if m.Preemptions == 0 {
		t.Error("no preemptions recorded — quanta are not landing")
	}
	// No guest starves: bounded P99 scheduling latency. The bound is
	// deliberately generous (shared CI machines), but a starved guest
	// would wait for the whole fleet — tens of seconds — not this.
	if m.SchedLatency.P99 > 5000 {
		t.Errorf("P99 scheduling latency %.1fms exceeds bound", m.SchedLatency.P99)
	}
	t.Logf("n=%d sched P50=%.2fms P99=%.2fms max=%.2fms; %d preemptions, %d steps",
		n, m.SchedLatency.P50, m.SchedLatency.P99, m.SchedLatency.Max,
		m.Preemptions, m.StepsTotal)
}

func TestOutputCapKillsGuest(t *testing.T) {
	s := New(Options{Workers: 1, QuantumSteps: 500})
	defer s.Close()
	pol := Policy{MaxOutputBytes: 256}
	g, err := s.Submit(SubmitOptions{
		Source: `while (true) { console.log("spam spam spam spam"); }`,
		Policy: &pol,
	})
	if err != nil {
		t.Fatal(err)
	}
	res := g.Wait()
	if !errors.Is(res.Err, ErrOutputLimit) {
		t.Fatalf("err=%v, want ErrOutputLimit", res.Err)
	}
	if !res.Truncated || len(res.Output) != 256 {
		t.Fatalf("output not truncated at cap: len=%d truncated=%v", len(res.Output), res.Truncated)
	}
}

func TestStepBudgetKillsGuest(t *testing.T) {
	s := New(Options{Workers: 1, QuantumSteps: 500})
	defer s.Close()
	pol := Policy{MaxTotalSteps: 5000}
	g, err := s.Submit(SubmitOptions{
		Source: `var i = 0; while (true) { i++; }`,
		Policy: &pol,
	})
	if err != nil {
		t.Fatal(err)
	}
	res := g.Wait()
	if !errors.Is(res.Err, interp.ErrStepBudget) {
		t.Fatalf("err=%v, want ErrStepBudget", res.Err)
	}
	// The budget is enforced across resumes: the guest was preempted at
	// least once before the cumulative counter tripped.
	if res.Quanta < 2 {
		t.Errorf("budget tripped within one quantum (quanta=%d); re-arming untested", res.Quanta)
	}
}

func TestExternalKill(t *testing.T) {
	s := New(Options{Workers: 1, QuantumSteps: 200})
	defer s.Close()
	g, err := s.Submit(SubmitOptions{Source: `while (true) { var x = 1; }`})
	if err != nil {
		t.Fatal(err)
	}
	time.Sleep(20 * time.Millisecond) // let it start spinning
	g.Kill(nil)
	res := g.Wait()
	if !errors.Is(res.Err, rt.ErrKilled) {
		t.Fatalf("err=%v, want ErrKilled", res.Err)
	}

	// Killing a guest that never got a worker (paused first) finalizes
	// immediately.
	g2, err := s.Submit(SubmitOptions{Source: guestSrc(7)})
	if err != nil {
		t.Fatal(err)
	}
	g2.Pause()
	custom := errors.New("evicted")
	g2.Kill(custom)
	res2 := g2.Wait()
	if !errors.Is(res2.Err, custom) {
		t.Fatalf("err=%v, want custom kill reason", res2.Err)
	}
}

func TestPauseResume(t *testing.T) {
	s := New(Options{Workers: 1, QuantumSteps: 200})
	defer s.Close()
	g, err := s.Submit(SubmitOptions{Source: `
var n = 0;
for (var i = 0; i < 20000; i++) { n += i; }
console.log("done", n);
`})
	if err != nil {
		t.Fatal(err)
	}
	time.Sleep(10 * time.Millisecond)
	g.Pause()
	// Wait for the pause to land (the guest parks at its next yield).
	deadline := time.Now().Add(2 * time.Second)
	for g.State() != StatePaused && g.State() != StateDone && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if st := g.State(); st == StateDone {
		t.Skip("guest finished before the pause landed; timing too tight on this host")
	} else if st != StatePaused {
		t.Fatalf("state=%v, want paused", st)
	}
	stepsAtPause := g.Inspect().Steps
	time.Sleep(30 * time.Millisecond)
	if now := g.Inspect().Steps; now != stepsAtPause {
		t.Fatalf("paused guest advanced: %d -> %d", stepsAtPause, now)
	}
	g.Resume()
	res := g.Wait()
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	if !strings.HasPrefix(res.Output, "done ") {
		t.Fatalf("output %q", res.Output)
	}
}

func TestBackpressure(t *testing.T) {
	s := New(Options{Workers: 1, MaxPending: 2, QuantumSteps: 200})
	defer s.Close()
	// Two slow guests fill the admission bound.
	for i := 0; i < 2; i++ {
		if _, err := s.Submit(SubmitOptions{
			Source: `var i = 0; while (i < 200000) { i++; }`,
		}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := s.Submit(SubmitOptions{Source: guestSrc(1)}); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("err=%v, want ErrQueueFull", err)
	}
	m := s.Metrics()
	if m.Rejected != 1 {
		t.Errorf("rejected=%d, want 1", m.Rejected)
	}
	s.Drain()
	// Capacity freed: admission works again.
	if _, err := s.Submit(SubmitOptions{Source: guestSrc(2)}); err != nil {
		t.Fatalf("post-drain submit failed: %v", err)
	}
}

// TestInteractiveLanePriority: with one worker saturated by batch guests,
// an interactive guest submitted after all of them still finishes ahead of
// most, because the weighted round-robin favors its lane.
func TestInteractiveLanePriority(t *testing.T) {
	s := New(Options{Workers: 1, QuantumSteps: 300, InteractiveWeight: 4})
	defer s.Close()

	var finished atomic.Int64
	const batchN = 8
	batchRank := make(chan int64, batchN)
	batch := make([]*Guest, 0, batchN)
	for i := 0; i < batchN; i++ {
		g, err := s.Submit(SubmitOptions{
			Source: `var i = 0; while (i < 60000) { i++; }`,
		})
		if err != nil {
			t.Fatal(err)
		}
		batch = append(batch, g)
	}
	ipol := Policy{Lane: LaneInteractive}
	ig, err := s.Submit(SubmitOptions{Source: guestSrc(3), Policy: &ipol})
	if err != nil {
		t.Fatal(err)
	}

	go func() {
		for _, g := range batch {
			g := g
			go func() {
				<-g.Done()
				batchRank <- finished.Add(1)
			}()
		}
	}()
	<-ig.Done()
	interactiveRank := finished.Add(1)
	s.Drain()
	if res := ig.Result(); res.Err != nil || res.Output != guestWant(3) {
		t.Fatalf("interactive guest: %+v", res)
	}
	// The interactive guest was submitted last; without the priority lane
	// it would finish last (rank 9 of 9). Allow slack for scheduling
	// jitter, but it must beat most of the batch.
	if interactiveRank > 4 {
		t.Errorf("interactive guest finished at rank %d of %d; lane priority ineffective",
			interactiveRank, batchN+1)
	}
}

// TestSleepingGuestReleasesWorker: a guest waiting on setTimeout must not
// hold its worker — a CPU guest submitted behind it on a 1-worker pool
// completes while the sleeper sleeps.
func TestSleepingGuestReleasesWorker(t *testing.T) {
	s := New(Options{Workers: 1, QuantumSteps: 500})
	defer s.Close()
	sleeper, err := s.Submit(SubmitOptions{Source: `
setTimeout(function () { console.log("woke"); }, 150);
`})
	if err != nil {
		t.Fatal(err)
	}
	cpu, err := s.Submit(SubmitOptions{Source: guestSrc(5)})
	if err != nil {
		t.Fatal(err)
	}
	cres := cpu.Wait()
	if cres.Err != nil || cres.Output != guestWant(5) {
		t.Fatalf("cpu guest: %+v", cres)
	}
	if st := sleeper.State(); st == StateDone {
		t.Log("sleeper finished before cpu guest; host too slow to observe overlap")
	}
	sres := sleeper.Wait()
	if sres.Err != nil {
		t.Fatalf("sleeper: %v", sres.Err)
	}
	if sres.Output != "woke\n" {
		t.Fatalf("sleeper output %q", sres.Output)
	}
}

// TestSleeperDeadlineClamped: a guest parked on a far-future timer must
// still die at its wall deadline — the sleep timer is clamped so the guest
// cannot hold a pending slot for the timer's full duration.
func TestSleeperDeadlineClamped(t *testing.T) {
	s := New(Options{Workers: 1, QuantumSteps: 500})
	defer s.Close()
	pol := Policy{WallDeadline: 250 * time.Millisecond}
	g, err := s.Submit(SubmitOptions{
		Source: `setTimeout(function () { console.log("never"); }, 3600000);`,
		Policy: &pol,
	})
	if err != nil {
		t.Fatal(err)
	}
	select {
	case <-g.Done():
	case <-time.After(10 * time.Second):
		t.Fatal("sleeping guest not killed at its deadline")
	}
	res := g.Result()
	if !errors.Is(res.Err, ErrDeadline) {
		t.Fatalf("err=%v, want ErrDeadline", res.Err)
	}
	if res.Output != "" {
		t.Fatalf("timer fired despite deadline: %q", res.Output)
	}
}

func TestUncaughtGuestErrorIsIsolated(t *testing.T) {
	s := New(Options{Workers: 2, QuantumSteps: 300})
	defer s.Close()
	bad, err := s.Submit(SubmitOptions{Source: `
function boom() { throw new Error("guest bug"); }
boom();
`})
	if err != nil {
		t.Fatal(err)
	}
	good, err := s.Submit(SubmitOptions{Source: guestSrc(9)})
	if err != nil {
		t.Fatal(err)
	}
	bres := bad.Wait()
	if bres.Err == nil || !strings.Contains(bres.Err.Error(), "guest bug") {
		t.Fatalf("bad guest err=%v, want its own Error", bres.Err)
	}
	gres := good.Wait()
	if gres.Err != nil || gres.Output != guestWant(9) {
		t.Fatalf("neighbor affected: %+v", gres)
	}
	m := s.Metrics()
	if m.Failed != 1 {
		t.Errorf("failed=%d, want 1", m.Failed)
	}
}

func TestCompileErrorSynchronous(t *testing.T) {
	s := New(Options{Workers: 1})
	defer s.Close()
	if _, err := s.Submit(SubmitOptions{Source: `var = ;`}); err == nil {
		t.Fatal("syntax error not reported at Submit")
	}
}

func TestCloseKillsUnfinished(t *testing.T) {
	s := New(Options{Workers: 1, QuantumSteps: 200})
	g, err := s.Submit(SubmitOptions{Source: `while (true) { var x = 1; }`})
	if err != nil {
		t.Fatal(err)
	}
	time.Sleep(10 * time.Millisecond)
	s.Close()
	res := g.Wait()
	if !errors.Is(res.Err, ErrShutdown) {
		t.Fatalf("err=%v, want ErrShutdown", res.Err)
	}
	if _, err := s.Submit(SubmitOptions{Source: "1;"}); !errors.Is(err, ErrClosed) {
		t.Fatalf("submit after close: err=%v, want ErrClosed", err)
	}
}

// TestCloseUnderLoad: closing while many guests are mid-quantum must
// finalize every guest — including ones a worker was classifying at that
// exact moment (the requeue-after-close window). Every Wait must return.
func TestCloseUnderLoad(t *testing.T) {
	for round := 0; round < 5; round++ {
		s := New(Options{Workers: 4, QuantumSteps: 100})
		var guests []*Guest
		for i := 0; i < 24; i++ {
			g, err := s.Submit(SubmitOptions{Source: `var i = 0; while (i < 10000000) { i++; }`})
			if err != nil {
				t.Fatal(err)
			}
			guests = append(guests, g)
		}
		time.Sleep(time.Duration(round) * 3 * time.Millisecond) // vary the window
		s.Close()
		for i, g := range guests {
			select {
			case <-g.Done():
			case <-time.After(15 * time.Second):
				t.Fatalf("round %d: guest %d (state %v) never finalized after Close", round, i, g.State())
			}
		}
	}
}

func TestInspectAndRemove(t *testing.T) {
	s := New(Options{Workers: 2, QuantumSteps: 300})
	defer s.Close()
	g, err := s.Submit(SubmitOptions{Source: guestSrc(11)})
	if err != nil {
		t.Fatal(err)
	}
	if got := s.Guest(g.ID); got != g {
		t.Fatal("lookup by ID failed")
	}
	g.Wait()
	info := g.Inspect()
	if info.State != "done" || info.Steps == 0 || info.OutputBytes == 0 {
		t.Fatalf("inspect: %+v", info)
	}
	if !s.Remove(g.ID) {
		t.Fatal("remove finished guest failed")
	}
	if s.Guest(g.ID) != nil {
		t.Fatal("guest still resolvable after Remove")
	}
}

// TestGuestBackendSelection pins that the supervisor honors the engine
// option — guests run on the bytecode engine when asked.
func TestGuestBackendSelection(t *testing.T) {
	for _, be := range []string{core.BackendTree, core.BackendBytecode} {
		s := New(Options{Workers: 1, QuantumSteps: 300, Backend: be})
		g, err := s.Submit(SubmitOptions{Source: guestSrc(13)})
		if err != nil {
			t.Fatal(err)
		}
		if res := g.Wait(); res.Err != nil || res.Output != guestWant(13) {
			t.Fatalf("backend %s: %+v", be, res)
		}
		s.Close()
	}
}
