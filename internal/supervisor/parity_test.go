package supervisor

import (
	"bytes"
	"testing"

	"repro/internal/core"
)

// Preemption parity (ISSUE 5): a program chopped into many tiny quanta —
// preempted, requeued, and resumed over and over by the supervisor — must
// produce byte-identical output and the identical error to one unbounded
// run, on both execution engines. Preemption is supposed to be invisible
// to the guest; any divergence means a continuation capture or a frame
// restore corrupted program state.

// parityPrograms covers the state a capture/restore cycle could corrupt:
// loop counters, closure captures, deep recursion, try/finally unwinding,
// uncaught errors, and cross-turn timer state.
var parityPrograms = []struct {
	name string
	src  string
}{
	{"loops", `
var s = 0;
for (var i = 0; i < 3000; i++) { s = (s * 31 + i) % 1000003; }
var t = 0, j = 0;
while (j < 500) { t += j * j; j++; }
console.log(s, t);
`},
	{"closures", `
var fns = [];
function mk(i) { var n = i * 3; return function () { return n + i; }; }
for (var i = 0; i < 200; i++) { fns.push(mk(i)); }
var total = 0;
for (var k = 0; k < fns.length; k++) { total += fns[k](); }
console.log(total);
`},
	{"recursion", `
function ack(m, n) {
  if (m === 0) { return n + 1; }
  if (n === 0) { return ack(m - 1, 1); }
  return ack(m - 1, ack(m, n - 1));
}
console.log(ack(2, 6), ack(1, 40));
`},
	{"tryfinally", `
var log = [];
function risky(i) {
  try {
    if (i % 3 === 0) { throw new Error("e" + i); }
    return "ok" + i;
  } finally {
    log.push(i);
  }
}
var out = [];
for (var i = 0; i < 60; i++) {
  try { out.push(risky(i)); } catch (e) { out.push(e.message); }
}
console.log(out.join(","), log.length);
`},
	{"uncaught", `
var n = 0;
for (var i = 0; i < 800; i++) { n += i; }
console.log("before", n);
undefinedFunction(n);
console.log("after");
`},
	{"strings", `
var s = "";
for (var i = 0; i < 120; i++) { s += (i % 10); }
var o = {};
for (var j = 0; j < 50; j++) { o["k" + (j % 7)] = s.length + j; }
var ks = [];
for (var k in o) { ks.push(k + "=" + o[k]); }
console.log(s.length, ks.join(" "));
`},
	// Note what is deliberately absent: a program observing the
	// *interleaving* of timer callbacks with main-loop progress. Under
	// preemption a yielding main lets due timers run earlier than an
	// unbounded run would — that is scheduling made visible (the entire
	// point of yielding), not state corruption, so it is out of parity
	// scope. The timercb program instead preempts inside a callback and
	// demands the callback's own state survive.
	{"timercb", `
setTimeout(function () {
  var s = 0;
  for (var i = 0; i < 2000; i++) { s += i * 2; }
  console.log("cb", s);
}, 0);
`},
}

// unboundedRun executes src without any quantum.
func unboundedRun(t *testing.T, src, backend string) (string, string) {
	t.Helper()
	out, err := core.RunSource(src, core.Defaults(), core.RunConfig{Backend: backend})
	return out, errString(err)
}

func errString(err error) string {
	if err == nil {
		return ""
	}
	return err.Error()
}

// TestPreemptionParitySupervisor runs every program under brutally small
// supervisor quanta (25 statements — hundreds of preemptions per program)
// on a 2-worker pool and compares against the unbounded run.
func TestPreemptionParitySupervisor(t *testing.T) {
	for _, backend := range []string{core.BackendTree, core.BackendBytecode} {
		s := New(Options{Workers: 2, QuantumSteps: 25, Backend: backend})
		for _, p := range parityPrograms {
			p := p
			t.Run(backend+"/"+p.name, func(t *testing.T) {
				wantOut, wantErr := unboundedRun(t, p.src, backend)
				g, err := s.Submit(SubmitOptions{Source: p.src})
				if err != nil {
					t.Fatal(err)
				}
				res := g.Wait()
				if res.Output != wantOut {
					t.Errorf("output diverged under preemption:\n  quantum:   %q\n  unbounded: %q",
						res.Output, wantOut)
				}
				if got := errString(res.Err); got != wantErr {
					t.Errorf("error diverged under preemption: %q vs %q", got, wantErr)
				}
				if res.Err == nil && res.Preemptions < 5 {
					t.Errorf("only %d preemptions — quantum did not slice the run", res.Preemptions)
				}
			})
		}
		s.Close()
	}
}

// TestPreemptionParityCoreQuantum drives the same re-arm cycle through the
// public core API — RunConfig.QuantumSteps/OnQuantum plus ArmQuantum and
// Pause/Resume across turns — without the supervisor, pinning the plumbing
// the supervisor is built on.
func TestPreemptionParityCoreQuantum(t *testing.T) {
	for _, backend := range []string{core.BackendTree, core.BackendBytecode} {
		for _, p := range parityPrograms {
			p := p
			t.Run(backend+"/"+p.name, func(t *testing.T) {
				wantOut, wantErr := unboundedRun(t, p.src, backend)

				c, err := core.Compile(p.src, core.Defaults())
				if err != nil {
					t.Fatal(err)
				}
				var buf bytes.Buffer
				// RunConfig carries the initial quantum and hook; the hook
				// guards against firing during NewRun (prelude execution),
				// before the handle exists.
				var run *core.AsyncRun
				run, err = c.NewRun(core.RunConfig{
					Out:          &buf,
					Backend:      backend,
					QuantumSteps: 20,
					OnQuantum: func() {
						if run != nil {
							run.Pause(nil)
						}
					},
				})
				if err != nil {
					t.Fatal(err)
				}
				// The prelude may have consumed the initial quantum (the
				// hook is one-shot); re-arm for $main.
				run.ArmQuantum(20)
				run.Run(nil)
				resumes := 0
				for {
					if run.Paused() {
						resumes++
						run.ArmQuantum(20)
						run.Resume()
					}
					if !run.Loop.RunOne() {
						if run.Paused() {
							continue
						}
						break
					}
					if run.Finished() {
						if _, e := run.Result(); e != nil {
							break
						}
					}
				}
				_, rerr := run.Result()
				if buf.String() != wantOut {
					t.Errorf("output diverged: %q vs %q", buf.String(), wantOut)
				}
				if got := errString(rerr); got != wantErr {
					t.Errorf("error diverged: %q vs %q", got, wantErr)
				}
				if rerr == nil && resumes < 10 {
					t.Errorf("only %d pause/resume cycles; quantum not engaging", resumes)
				}
			})
		}
	}
}
