package supervisor

import (
	"errors"
	"fmt"
	"strings"
	"time"
)

// The supervisor throughput target (stopibench -supervisor): M guests
// through an N-worker pool, reporting guests/sec and the scheduling-latency
// distribution — the serving-scenario numbers the ROADMAP's north star asks
// for, recorded alongside BENCH_interp.json as BENCH_supervisor.json.

// BenchConfig sizes a supervisor throughput run.
type BenchConfig struct {
	Guests       int    `json:"guests"`        // default 1000
	Workers      int    `json:"workers"`       // default 4
	QuantumSteps uint64 `json:"quantum_steps"` // default 2000
	// HostileEvery makes every k-th guest an infinite loop with a 250 ms
	// deadline — the misbehaving-tenant injection. 0 disables.
	HostileEvery int `json:"hostile_every"`
	// InteractiveEvery routes every k-th guest through the interactive
	// lane. 0 disables.
	InteractiveEvery int `json:"interactive_every"`
	// Backend forces the guests' execution engine ("" = process default).
	Backend string `json:"backend,omitempty"`
}

func (c *BenchConfig) normalize() {
	if c.Guests <= 0 {
		c.Guests = 1000
	}
	if c.Workers <= 0 {
		c.Workers = 4
	}
	if c.QuantumSteps == 0 {
		c.QuantumSteps = 2000
	}
}

// BenchResult is one throughput measurement.
type BenchResult struct {
	Config       BenchConfig    `json:"config"`
	WallMs       float64        `json:"wall_ms"`
	GuestsPerSec float64        `json:"guests_per_sec"`
	Completed    uint64         `json:"completed"`
	Killed       uint64         `json:"killed"`
	Failed       uint64         `json:"failed"`
	Preemptions  uint64         `json:"preemptions"`
	StepsTotal   uint64         `json:"steps_total"`
	Sched        LatencySummary `json:"sched_latency"`
	Turn         LatencySummary `json:"turn_duration"`
}

// benchWorkloads is the guest mix: loop-heavy, call-heavy, string/property
// heavy, and a timer user — small programs, many tenants, like the
// embedded-script serving scenario. Each returns output depending on its
// seed so the harness can verify isolation cheaply.
var benchWorkloads = []func(seed int) (src, want string){
	func(seed int) (string, string) {
		n := 0
		for i := 0; i < 2500; i++ {
			n = (n + i*3 + seed) % 99991
		}
		return fmt.Sprintf(`
var n = 0;
for (var i = 0; i < 2500; i++) { n = (n + i * 3 + %d) %% 99991; }
console.log("sum", n);
`, seed), fmt.Sprintf("sum %d\n", n)
	},
	func(seed int) (string, string) {
		var fib func(int) int
		fib = func(n int) int {
			if n < 2 {
				return n
			}
			return fib(n-1) + fib(n-2)
		}
		k := 12 + seed%3
		return fmt.Sprintf(`
function fib(n) { if (n < 2) { return n; } return fib(n - 1) + fib(n - 2); }
console.log("fib", fib(%d));
`, k), fmt.Sprintf("fib %d\n", fib(k))
	},
	func(seed int) (string, string) {
		var b strings.Builder
		for i := 0; i < 40; i++ {
			fmt.Fprintf(&b, "%d", (seed+i)%10)
		}
		return fmt.Sprintf(`
var s = "";
for (var i = 0; i < 40; i++) { s += (%d + i) %% 10; }
var o = {};
for (var j = 0; j < 60; j++) { o["k" + (j %% 8)] = j; }
var c = 0;
for (var k in o) { c++; }
console.log(s, c);
`, seed), b.String() + " 8\n"
	},
	func(seed int) (string, string) {
		return fmt.Sprintf(`
var acc = %d;
setTimeout(function () {
  for (var i = 0; i < 500; i++) { acc += i; }
  console.log("timer", acc);
}, 1);
for (var j = 0; j < 800; j++) { acc += 0; }
`, seed), fmt.Sprintf("timer %d\n", seed+124750)
	},
}

// RunBench executes the throughput target and verifies every guest's
// output — a throughput number from corrupted guests would be worthless.
func RunBench(cfg BenchConfig) (*BenchResult, error) {
	cfg.normalize()
	s := New(Options{
		Workers:      cfg.Workers,
		MaxPending:   cfg.Guests + cfg.Guests/8 + 8,
		QuantumSteps: cfg.QuantumSteps,
		Backend:      cfg.Backend,
	})
	defer s.Close()

	type expect struct {
		g       *Guest
		want    string
		hostile bool
	}
	start := time.Now()
	guests := make([]expect, 0, cfg.Guests)
	for i := 0; i < cfg.Guests; i++ {
		if cfg.HostileEvery > 0 && i%cfg.HostileEvery == cfg.HostileEvery-1 {
			pol := Policy{WallDeadline: 250 * time.Millisecond}
			g, err := s.Submit(SubmitOptions{
				Source: `while (true) { var x = 1; }`,
				Policy: &pol,
			})
			if err != nil {
				return nil, fmt.Errorf("submit hostile %d: %w", i, err)
			}
			guests = append(guests, expect{g: g, hostile: true})
			continue
		}
		src, want := benchWorkloads[i%len(benchWorkloads)](i)
		var pol *Policy
		if cfg.InteractiveEvery > 0 && i%cfg.InteractiveEvery == 0 {
			pol = &Policy{Lane: LaneInteractive}
		}
		g, err := s.Submit(SubmitOptions{Source: src, Policy: pol})
		if err != nil {
			return nil, fmt.Errorf("submit %d: %w", i, err)
		}
		guests = append(guests, expect{g: g, want: want})
	}

	for i, e := range guests {
		res := e.g.Wait()
		if e.hostile {
			if !errors.Is(res.Err, ErrDeadline) {
				return nil, fmt.Errorf("hostile guest %d: err=%v, want deadline kill", i, res.Err)
			}
			continue
		}
		if res.Err != nil {
			return nil, fmt.Errorf("guest %d failed: %w", i, res.Err)
		}
		if res.Output != e.want {
			return nil, fmt.Errorf("guest %d output %q, want %q — isolation broken", i, res.Output, e.want)
		}
	}
	wall := time.Since(start)

	m := s.Metrics()
	return &BenchResult{
		Config:       cfg,
		WallMs:       float64(wall) / float64(time.Millisecond),
		GuestsPerSec: float64(cfg.Guests) / wall.Seconds(),
		Completed:    m.Completed,
		Killed:       m.Killed,
		Failed:       m.Failed,
		Preemptions:  m.Preemptions,
		StepsTotal:   m.StepsTotal,
		Sched:        m.SchedLatency,
		Turn:         m.TurnDuration,
	}, nil
}

// Format renders the result as the stopibench report block.
func (r *BenchResult) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "supervisor throughput: %d guests, %d workers, quantum %d steps\n",
		r.Config.Guests, r.Config.Workers, r.Config.QuantumSteps)
	fmt.Fprintf(&b, "  wall %.0f ms — %.0f guests/sec (completed %d, killed %d, failed %d)\n",
		r.WallMs, r.GuestsPerSec, r.Completed, r.Killed, r.Failed)
	fmt.Fprintf(&b, "  scheduling latency: P50 %.2f ms  P90 %.2f ms  P99 %.2f ms  max %.2f ms (%d turns)\n",
		r.Sched.P50, r.Sched.P90, r.Sched.P99, r.Sched.Max, r.Sched.Count)
	fmt.Fprintf(&b, "  turn duration:      P50 %.2f ms  P90 %.2f ms  P99 %.2f ms  max %.2f ms\n",
		r.Turn.P50, r.Turn.P90, r.Turn.P99, r.Turn.Max)
	fmt.Fprintf(&b, "  %d preemptions, %d guest statements\n", r.Preemptions, r.StepsTotal)
	return b.String()
}
