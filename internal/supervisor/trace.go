package supervisor

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/interp"
)

// The flight recorder: a bounded, lock-light ring of structured lifecycle
// events — every admission, claim, turn, preemption, park, restore, pin,
// kill, and finish the supervisor performs. It answers the post-mortem
// question the aggregate metrics cannot: *which* tenant was on *which*
// worker when the worst window's P99 spiked, and what the scheduler did
// about it. The ring is sharded per worker (plus one shard for control-
// plane goroutines) so recording a turn never contends with another
// worker's shard; each shard is a fixed-size overwrite ring, so a
// long-running fleet keeps the most recent events and the recorder's
// memory stays constant. A global atomic sequence number gives the merged
// view a total order without any cross-shard locking.
//
// Two renderings: JSON-lines (one TraceEvent per line, grep-friendly) and
// the Chrome trace-event format (ChromeTrace), which about://tracing and
// Perfetto load directly — turns appear as duration slices on per-worker
// tracks, control events as instants.

// TraceEvent is one recorded lifecycle event. Seq orders events globally;
// TsUs is microseconds since the supervisor started. Worker is the shard
// that recorded the event (-1 = a control-plane goroutine: Submit, an
// external Kill/Pause/Resume, a sleep-timer requeue).
type TraceEvent struct {
	Seq    uint64 `json:"seq"`
	TsUs   int64  `json:"ts_us"`
	DurUs  int64  `json:"dur_us,omitempty"`
	Type   string `json:"type"`
	Guest  uint64 `json:"guest,omitempty"`
	Worker int    `json:"worker"`
	Lane   string `json:"lane,omitempty"`
	Steal  bool   `json:"steal,omitempty"`
	Cause  string `json:"cause,omitempty"`
	Bytes  int    `json:"bytes,omitempty"`
	Steps  uint64 `json:"steps,omitempty"`
	WaitUs int64  `json:"wait_us,omitempty"`
}

// Event types recorded by the supervisor.
const (
	// TraceSubmit: a guest was admitted (Submit or Restore; the latter
	// carries the blob size in Bytes).
	TraceSubmit = "submit"
	// TraceReject: admission refused — queue full.
	TraceReject = "reject"
	// TraceSchedule: a worker claimed a queued guest. WaitUs is the queue
	// wait; Steal marks a cross-queue steal; Lane is the guest's lane.
	TraceSchedule = "schedule"
	// TraceTurn: one scheduling quantum ended. DurUs spans the turn, Cause
	// says how it ended (preempt, pause, sleep, complete, kill, stall,
	// error), Steps is the guest's cumulative statement count after it.
	TraceTurn = "turn"
	// TracePreempt: the quantum hook preempted the guest (also the Cause of
	// the enclosing turn; the instant makes preemption rates visible on the
	// timeline).
	TracePreempt = "preempt"
	// TracePause / TraceResume: external pause/resume requests.
	TracePause  = "pause"
	TraceResume = "resume"
	// TracePark: an idle guest was serialized out of memory (Bytes = blob).
	TracePark = "park"
	// TraceRestore: a parked guest's realm was rebuilt (Bytes = blob,
	// DurUs = rebuild latency).
	TraceRestore = "restore"
	// TracePin: the codec refused a park; Cause is the pin kind.
	TracePin = "pin"
	// TraceKill: an external or policy kill request arrived; Cause is the
	// reason.
	TraceKill = "kill"
	// TraceFinish: the guest completed; Cause classifies the outcome (ok,
	// deadline, output, mem, shutdown, killed, fault, stalled, error) and
	// Steps is its lifetime statement count.
	TraceFinish = "finish"
)

// traceShard is one worker's (or the control plane's) private ring.
type traceShard struct {
	mu   sync.Mutex
	buf  []TraceEvent
	next int  // write cursor
	full bool // buf has wrapped at least once
}

type traceRecorder struct {
	start  time.Time
	seq    atomic.Uint64
	shards []traceShard
}

// defaultTraceCapacity is the total event budget when Options.TraceCapacity
// is 0: enough for several seconds of sustained-load history (a turn emits
// two events) at a few MB, small enough to keep resident forever.
const defaultTraceCapacity = 16384

func newTraceRecorder(shards, capacity int) *traceRecorder {
	if capacity <= 0 {
		capacity = defaultTraceCapacity
	}
	per := capacity / shards
	if per < 64 {
		per = 64
	}
	tr := &traceRecorder{start: time.Now(), shards: make([]traceShard, shards)}
	for i := range tr.shards {
		tr.shards[i].buf = make([]TraceEvent, per)
	}
	return tr
}

// emit stamps and records ev on the given shard. The only lock taken is the
// shard's own, and workers own distinct shards, so tracing adds no
// cross-worker contention; control-plane emitters share the last shard.
func (tr *traceRecorder) emit(shard int, ev TraceEvent) {
	ev.Seq = tr.seq.Add(1)
	ev.TsUs = time.Since(tr.start).Microseconds()
	sh := &tr.shards[shard]
	sh.mu.Lock()
	sh.buf[sh.next] = ev
	sh.next++
	if sh.next == len(sh.buf) {
		sh.next = 0
		sh.full = true
	}
	sh.mu.Unlock()
}

// events merges every shard's retained events, filtered to one guest when
// guest != 0, ordered by the global sequence number.
func (tr *traceRecorder) events(guest uint64) []TraceEvent {
	var out []TraceEvent
	for i := range tr.shards {
		sh := &tr.shards[i]
		sh.mu.Lock()
		n := sh.next
		if sh.full {
			n = len(sh.buf)
		}
		for j := 0; j < n; j++ {
			if guest == 0 || sh.buf[j].Guest == guest {
				out = append(out, sh.buf[j])
			}
		}
		sh.mu.Unlock()
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Seq < out[j].Seq })
	return out
}

// trace records ev on worker w's shard (w < 0: the control shard). A nil
// recorder (Options.TraceCapacity < 0) makes every call a no-op compare.
func (s *Supervisor) trace(w int, ev TraceEvent) {
	tr := s.tracer
	if tr == nil {
		return
	}
	ev.Worker = w
	shard := len(tr.shards) - 1 // control
	if w >= 0 && w < len(tr.shards)-1 {
		shard = w
	}
	tr.emit(shard, ev)
}

// Trace returns the flight recorder's retained events in global order,
// filtered to one guest when guestID != 0. Empty when tracing is disabled.
func (s *Supervisor) Trace(guestID uint64) []TraceEvent {
	if s.tracer == nil {
		return nil
	}
	return s.tracer.events(guestID)
}

// TraceJSONLines renders events one JSON object per line (the stopifyd
// /trace default).
func TraceJSONLines(evs []TraceEvent) []byte {
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	for _, ev := range evs {
		enc.Encode(ev) // a TraceEvent cannot fail to marshal
	}
	return buf.Bytes()
}

// ChromeTrace renders events in the Chrome trace-event JSON format:
// about://tracing (or Perfetto) shows each worker as a track, turns as
// duration slices named by guest, and everything else as instant markers.
func ChromeTrace(evs []TraceEvent) []byte {
	maxWorker := 0
	for _, ev := range evs {
		if ev.Worker > maxWorker {
			maxWorker = ev.Worker
		}
	}
	ctlTid := maxWorker + 1

	type chromeEvent struct {
		Name  string                 `json:"name"`
		Cat   string                 `json:"cat,omitempty"`
		Ph    string                 `json:"ph"`
		Ts    int64                  `json:"ts"`
		Dur   int64                  `json:"dur,omitempty"`
		Pid   int                    `json:"pid"`
		Tid   int                    `json:"tid"`
		Scope string                 `json:"s,omitempty"`
		Args  map[string]interface{} `json:"args,omitempty"`
	}
	out := make([]chromeEvent, 0, len(evs)+ctlTid+1)
	for tid := 0; tid <= ctlTid; tid++ {
		name := fmt.Sprintf("worker %d", tid)
		if tid == ctlTid {
			name = "control"
		}
		out = append(out, chromeEvent{
			Name: "thread_name", Ph: "M", Pid: 1, Tid: tid,
			Args: map[string]interface{}{"name": name},
		})
	}
	for _, ev := range evs {
		tid := ev.Worker
		if tid < 0 {
			tid = ctlTid
		}
		args := map[string]interface{}{"seq": ev.Seq}
		if ev.Guest != 0 {
			args["guest"] = ev.Guest
		}
		if ev.Lane != "" {
			args["lane"] = ev.Lane
		}
		if ev.Steal {
			args["steal"] = true
		}
		if ev.Cause != "" {
			args["cause"] = ev.Cause
		}
		if ev.Bytes != 0 {
			args["bytes"] = ev.Bytes
		}
		if ev.Steps != 0 {
			args["steps"] = ev.Steps
		}
		if ev.WaitUs != 0 {
			args["wait_us"] = ev.WaitUs
		}
		if ev.Type == TraceTurn {
			ts := ev.TsUs - ev.DurUs
			if ts < 0 {
				ts = 0
			}
			out = append(out, chromeEvent{
				Name: fmt.Sprintf("guest %d", ev.Guest), Cat: "turn", Ph: "X",
				Ts: ts, Dur: ev.DurUs, Pid: 1, Tid: tid, Args: args,
			})
			continue
		}
		out = append(out, chromeEvent{
			Name: ev.Type, Cat: "lifecycle", Ph: "i", Ts: ev.TsUs,
			Pid: 1, Tid: tid, Scope: "t", Args: args,
		})
	}
	b, _ := json.Marshal(map[string]interface{}{"traceEvents": out})
	return b
}

// laneName renders a lane for trace events.
func laneName(l Lane) string {
	if l == LaneInteractive {
		return "interactive"
	}
	return "batch"
}

// outcomeCause classifies a finish error for trace events — the same
// buckets as the per-cause kill counters, plus the guest-earned ones.
func outcomeCause(err error) string {
	switch {
	case err == nil:
		return "ok"
	case errors.Is(err, ErrDeadline):
		return "deadline"
	case errors.Is(err, ErrOutputLimit):
		return "output"
	case errors.Is(err, ErrShutdown):
		return "shutdown"
	case errors.Is(err, ErrStalled):
		return "stalled"
	case errors.Is(err, ErrInternalFault):
		return "fault"
	case errors.Is(err, interp.ErrMemLimit):
		return "mem"
	case isSupervisorKill(err):
		return "killed"
	default:
		return "error"
	}
}
