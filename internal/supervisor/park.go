package supervisor

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"time"

	"repro/internal/core"
	"repro/internal/snapshot"
)

// Residency limiting: with Options.MaxResident set, the supervisor keeps at
// most that many live realms in memory. When a turn ends over the limit,
// idle guests — externally paused or asleep on a timer, least-recently-run
// first — are serialized through the snapshot codec and their realms
// dropped; the blob lives in memory or, with Options.ParkDir, on disk.
// Touching a parked guest (its timer fires, Resume, a worker picks it up)
// restores the realm transparently before the turn runs. A guest the codec
// cannot serialize (a closure over eval code, an unledgered task, an opaque
// host payload — see snapshot.PinError; bound functions and Date instances
// left this list with wire v2) simply stays resident: parking is an
// optimization, not a correctness boundary. Refused parks are counted per
// pin kind (Metrics.ParkPinsByReason) so the residual pin set stays
// observable.
//
// The same machinery gives guests process mobility: SnapshotGuest hands a
// quiescent guest's blob to the caller (stopifyd's snapshot endpoint), and
// Supervisor.Restore admits a blob produced by any process as a new guest.

// Residency errors.
var (
	// ErrUnknownGuest reports an ID with no admitted guest.
	ErrUnknownGuest = errors.New("supervisor: unknown guest")
	// ErrNotQuiescent reports a snapshot request against a guest that is
	// running or queued to run; pause it first and retry once it parks.
	ErrNotQuiescent = errors.New("supervisor: guest is not quiescent (pause it first)")
	// ErrFinished reports a snapshot request against a finished guest.
	ErrFinished = errors.New("supervisor: guest already finished")
)

// maybeParkSome enforces MaxResident after a scheduling turn: while the
// resident-realm count exceeds the limit, park idle guests LRU-first. Runs
// on a worker with no locks held.
func (s *Supervisor) maybeParkSome() {
	max := s.opts.MaxResident
	if max <= 0 {
		return
	}
	s.mu.Lock()
	over := s.resident - max
	if over <= 0 {
		s.mu.Unlock()
		return
	}
	// Scan only guests holding a live realm: the full registry keeps every
	// finished guest for result/output lookup, so iterating it here would
	// cost O(total admissions) per turn boundary under sustained load.
	cands := make([]*Guest, 0, len(s.residents))
	for _, g := range s.residents {
		cands = append(cands, g)
	}
	s.mu.Unlock()

	type scored struct {
		g    *Guest
		last time.Time
	}
	idle := make([]scored, 0, len(cands))
	for _, g := range cands {
		g.mu.Lock()
		if g.run != nil && !g.parked && (g.state == StatePaused || g.state == StateSleeping) {
			idle = append(idle, scored{g, g.lastTurn})
		}
		g.mu.Unlock()
	}
	sort.Slice(idle, func(i, j int) bool { return idle[i].last.Before(idle[j].last) })

	for _, c := range idle {
		s.mu.Lock()
		over = s.resident - max
		s.mu.Unlock()
		if over <= 0 {
			return
		}
		s.tryPark(c.g)
	}
}

// tryPark serializes one idle guest and drops its realm. Reports whether the
// guest was parked; a pinned or non-idle guest is left untouched.
func (s *Supervisor) tryPark(g *Guest) bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	// Re-validate under the lock: the guest may have been claimed, killed,
	// or finished since the candidate scan.
	if g.run == nil || g.parked || (g.state != StatePaused && g.state != StateSleeping) {
		return false
	}
	blob, err := g.run.Snapshot()
	if err != nil {
		// Pinned (or transiently non-quiescent): stays resident.
		kind := "other"
		var perr *snapshot.PinError
		if errors.As(err, &perr) && perr.Kind != "" {
			kind = perr.Kind
		}
		s.metrics.parkPinned(kind)
		s.trace(-1, TraceEvent{Type: TracePin, Guest: g.ID, Cause: kind})
		return false
	}
	g.parkBlob = blob
	g.parkPath = ""
	if s.opts.ParkDir != "" {
		path := filepath.Join(s.opts.ParkDir, fmt.Sprintf("guest-%d.snap", g.ID))
		if werr := os.WriteFile(path, blob, 0o600); werr == nil {
			g.parkPath = path
			g.parkBlob = nil
		}
		// On write failure the blob silently stays in memory: parking
		// degrades, it does not kill tenants.
	}
	g.parked = true
	g.parkedAt = time.Now()
	g.run = nil
	s.mu.Lock()
	s.resident--
	delete(s.residents, g.ID)
	s.parkedN++
	// Counter and gauges move atomically under s.mu (metrics.mu nests
	// inside), so a Metrics scrape never sees the park counted while the
	// guest still looks resident.
	s.metrics.park(len(blob))
	s.mu.Unlock()
	s.trace(-1, TraceEvent{Type: TracePark, Guest: g.ID, Bytes: len(blob)})
	return true
}

// restoreGuest rebuilds a parked guest's realm before a turn (restore on
// touch). Worker goroutine, no locks held.
func (s *Supervisor) restoreGuest(g *Guest) error {
	g.mu.Lock()
	blob, path, parkedAt, replay := g.parkBlob, g.parkPath, g.parkedAt, g.replayOut
	g.mu.Unlock()
	if blob == nil && path != "" {
		b, err := os.ReadFile(path)
		if err != nil {
			return fmt.Errorf("supervisor: reading parked snapshot: %w", err)
		}
		blob = b
	}
	if blob == nil {
		return errors.New("supervisor: parked guest has no snapshot")
	}
	var elapsed float64
	if !parkedAt.IsZero() {
		elapsed = float64(time.Since(parkedAt)) / float64(time.Millisecond)
	}
	start := time.Now()
	run, err := core.RestoreWith(core.RunConfig{
		Out:            g.out,
		Backend:        s.opts.Backend,
		MaxSteps:       g.pol.MaxTotalSteps,
		MemBudgetBytes: g.pol.MemBudgetBytes,
		ProfileEvery:   s.opts.ProfileEvery,
	}, blob, core.RestoreOptions{ReplayOutput: replay, ElapsedMs: elapsed})
	if err != nil {
		return err
	}
	// Re-wire the scheduling hooks exactly as startGuest does.
	run.SetOnQuantum(func() { run.Pause(nil) })
	g.out.setOverflow(func() { run.Kill(ErrOutputLimit) })

	g.mu.Lock()
	g.run = run
	g.parked = false
	g.parkBlob = nil
	g.parkPath = ""
	g.replayOut = false
	g.mu.Unlock()
	if path != "" {
		os.Remove(path)
	}
	restoreDur := time.Since(start)
	s.mu.Lock()
	s.resident++
	s.residents[g.ID] = g
	s.parkedN--
	s.metrics.restoreDone(restoreDur)
	s.mu.Unlock()
	s.trace(-1, TraceEvent{
		Type: TraceRestore, Guest: g.ID, Bytes: len(blob),
		DurUs: restoreDur.Microseconds(),
	})
	return nil
}

// SnapshotGuest serializes a quiescent guest — paused, asleep on a timer,
// or already parked — without disturbing it. Running or queued guests
// return ErrNotQuiescent: pause the guest and retry once it parks. The
// returned blob is the caller's; the guest keeps executing here unless the
// caller also kills it (the daemon's hand-off endpoint does exactly that).
func (s *Supervisor) SnapshotGuest(id uint64) ([]byte, error) {
	s.mu.Lock()
	g := s.guests[id]
	s.mu.Unlock()
	if g == nil {
		return nil, ErrUnknownGuest
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	switch {
	case g.state == StateDone:
		return nil, ErrFinished
	case g.parked:
		if g.parkBlob != nil {
			return append([]byte(nil), g.parkBlob...), nil
		}
		return os.ReadFile(g.parkPath)
	case (g.state == StatePaused || g.state == StateSleeping) && g.run != nil:
		return g.run.Snapshot()
	default:
		return nil, ErrNotQuiescent
	}
}

// Restore admits a snapshot blob — from SnapshotGuest here, or from another
// process entirely — as a new guest under pol (DefaultPolicy when nil). The
// blob's carried console output replays into the new guest's output buffer,
// and its cumulative step/memory accounting carries over, so policy budgets
// span the guest's whole life across processes. The guest is queued; a
// worker rebuilds its realm on first touch.
func (s *Supervisor) Restore(blob []byte, pol *Policy) (*Guest, error) {
	// Validate the header before admission so a corrupt blob fails the
	// caller synchronously, not the worker later.
	if _, err := core.SnapshotMeta(blob); err != nil {
		return nil, err
	}

	s.mu.Lock()
	closed, pending := s.closed, s.pending
	s.mu.Unlock()
	if closed {
		return nil, ErrClosed
	}
	if pending >= s.opts.MaxPending {
		s.metrics.reject()
		s.trace(-1, TraceEvent{Type: TraceReject})
		return nil, ErrQueueFull
	}

	p := s.opts.DefaultPolicy
	if pol != nil {
		p = *pol
	}
	now := time.Now()
	g := &Guest{
		sup:        s,
		pol:        p,
		lane:       p.Lane,
		out:        newCappedWriter(p.MaxOutputBytes),
		home:       -1, // assigned round-robin on first push
		parked:     true,
		parkBlob:   append([]byte(nil), blob...),
		parkedAt:   now,
		replayOut:  true,
		submitted:  now,
		readySince: now,
		doneCh:     make(chan struct{}),
	}
	if p.WallDeadline > 0 {
		g.deadline = now.Add(p.WallDeadline)
	}

	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, ErrClosed
	}
	if s.pending >= s.opts.MaxPending {
		s.mu.Unlock()
		s.metrics.reject()
		s.trace(-1, TraceEvent{Type: TraceReject})
		return nil, ErrQueueFull
	}
	s.nextID++
	g.ID = s.nextID
	s.pending++
	s.parkedN++
	s.guests[g.ID] = g
	s.pushLocked(g)
	s.metrics.restoreAdmit()
	s.mu.Unlock()
	s.trace(-1, TraceEvent{
		Type: TraceSubmit, Guest: g.ID, Lane: laneName(g.lane), Bytes: len(blob),
	})
	return g, nil
}
