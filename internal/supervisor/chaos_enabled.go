//go:build chaos

package supervisor

import (
	"sync"

	"repro/internal/core"
)

// This file exists only under -tags=chaos: it is the fault-injection seam
// the chaos harness (internal/supervisor/chaos) drives. Production builds
// compile chaos_disabled.go instead, where the per-turn call is an empty
// function the compiler erases — the scheduler hot path pays nothing for
// the seam's existence.

// ChaosTurn is the handle a chaos hook receives at the top of one
// scheduling turn, on the worker goroutine that owns the guest for the
// turn (so Run's owner-goroutine-only surface is legal to touch).
type ChaosTurn struct {
	// GuestID identifies the tenant about to run.
	GuestID uint64
	// Run is the guest's realm handle. The hook runs as the turn's owner:
	// Run.In.ChargeMem simulates an allocation storm, panicking simulates
	// an engine bug at the exact point a real one would surface.
	Run *core.AsyncRun
}

var (
	chaosMu sync.RWMutex
	chaosFn func(ChaosTurn)
)

// SetChaosHook installs (or, with nil, removes) the process-wide fault
// hook. Only present under -tags=chaos.
func SetChaosHook(fn func(ChaosTurn)) {
	chaosMu.Lock()
	chaosFn = fn
	chaosMu.Unlock()
}

func chaosBeforeTurn(g *Guest, run *core.AsyncRun) {
	chaosMu.RLock()
	fn := chaosFn
	chaosMu.RUnlock()
	if fn != nil {
		fn(ChaosTurn{GuestID: g.ID, Run: run})
	}
}
