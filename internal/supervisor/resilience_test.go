package supervisor

import (
	"errors"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/interp"
)

// Untagged resilience tests: the memory-budget failure domain, exercised
// through the supervisor's public surface only (no chaos seam needed — a
// hostile allocator is just a guest program).

// hostileAllocSrc allocates ~24 KB of metered storage per loop iteration,
// so a small budget is exhausted within the very first quantum.
const hostileAllocSrc = `
var keep = [];
while (true) { keep.push(new Array(1000)); }
`

// TestMemHostileAllocatorIsolated is the acceptance scenario: one guest
// allocating as fast as the engine allows, killed with ErrMemLimit within
// a quantum of exceeding its budget, while 100 well-behaved neighbors
// sharing the workers complete with byte-exact output.
func TestMemHostileAllocatorIsolated(t *testing.T) {
	for _, backend := range []string{core.BackendTree, core.BackendBytecode} {
		t.Run(backend, func(t *testing.T) {
			n := 100
			if testing.Short() {
				n = 30
			}
			s := New(Options{Workers: 4, MaxPending: n + 10, QuantumSteps: 1000, Backend: backend})
			defer s.Close()

			pol := Policy{MemBudgetBytes: 256 << 10}
			neighbors := make([]*Guest, 0, n)
			var hostile *Guest
			for i := 0; i < n; i++ {
				g, err := s.Submit(SubmitOptions{Source: guestSrc(i), Policy: &pol})
				if err != nil {
					t.Fatal(err)
				}
				neighbors = append(neighbors, g)
				if i == n/2 {
					// Admitted mid-fleet so its kill happens while
					// neighbors are actively sharing the workers.
					hostile, err = s.Submit(SubmitOptions{Source: hostileAllocSrc, Policy: &pol})
					if err != nil {
						t.Fatal(err)
					}
				}
			}

			res := hostile.Wait()
			if !errors.Is(res.Err, interp.ErrMemLimit) {
				t.Fatalf("hostile allocator: err=%v, want ErrMemLimit", res.Err)
			}
			// ~24 KB of metered bytes per statement against a 256 KiB budget:
			// the budget is gone a dozen statements in, and the shared
			// boundary check must kill within that same quantum — not after
			// the scheduler happens to look again.
			if res.Quanta > 1 {
				t.Errorf("hostile allocator survived %d quanta, want death within its first", res.Quanta)
			}

			for i, g := range neighbors {
				nres := g.Wait()
				if nres.Err != nil {
					t.Errorf("neighbor %d: %v", i, nres.Err)
				} else if nres.Output != guestWant(i) {
					t.Errorf("neighbor %d output %q, want %q", i, nres.Output, guestWant(i))
				}
			}

			m := s.Metrics()
			if m.KilledMem != 1 {
				t.Errorf("KilledMem=%d, want 1", m.KilledMem)
			}
			if m.Killed != 1 {
				t.Errorf("Killed=%d, want 1 (mem kills are supervisor kills)", m.Killed)
			}
			if m.Completed != uint64(n) {
				t.Errorf("Completed=%d, want %d", m.Completed, n)
			}
		})
	}
}

// TestMemBudgetUnmeteredNeighbors pins that the budget is per-tenant: an
// unmetered guest in the same fleet allocates freely while the metered
// hostile one dies.
func TestMemBudgetUnmeteredNeighbors(t *testing.T) {
	s := New(Options{Workers: 2, QuantumSteps: 500})
	defer s.Close()

	metered := Policy{MemBudgetBytes: 128 << 10}
	big := `
var keep = [];
for (var i = 0; i < 500; i++) { keep.push(new Array(100)); }
console.log("big", keep.length);
`
	free, err := s.Submit(SubmitOptions{Source: big})
	if err != nil {
		t.Fatal(err)
	}
	capped, err := s.Submit(SubmitOptions{Source: big, Policy: &metered})
	if err != nil {
		t.Fatal(err)
	}
	if res := free.Wait(); res.Err != nil || res.Output != "big 500\n" {
		t.Errorf("unmetered guest: err=%v output=%q", res.Err, res.Output)
	}
	if res := capped.Wait(); !errors.Is(res.Err, interp.ErrMemLimit) {
		t.Errorf("metered guest: err=%v, want ErrMemLimit", res.Err)
	}
}

// TestDrainRacesMemKills drains a fleet in which a quarter of the guests
// are hostile allocators dying of ErrMemLimit while the rest run to
// completion: the drain must converge, every guest is finalized exactly
// once, and the per-cause counter matches.
func TestDrainRacesMemKills(t *testing.T) {
	for _, backend := range []string{core.BackendTree, core.BackendBytecode} {
		t.Run(backend, func(t *testing.T) {
			n := 40
			s := New(Options{Workers: 4, MaxPending: n, QuantumSteps: 200, Backend: backend})
			defer s.Close()

			// The short quantum preempts each guest ~100 times, and every
			// preemption's continuation capture is itself metered (~6-9 KB);
			// the budget must cover that scheduler traffic with room to
			// spare, while the hostile allocator (24 KB per statement) still
			// blows through it inside one quantum.
			pol := Policy{MemBudgetBytes: 4 << 20}
			guests := make([]*Guest, 0, n)
			hostiles := 0
			for i := 0; i < n; i++ {
				src := guestSrc(i)
				if i%4 == 0 {
					src = hostileAllocSrc
					hostiles++
				}
				g, err := s.Submit(SubmitOptions{Source: src, Policy: &pol})
				if err != nil {
					t.Fatal(err)
				}
				guests = append(guests, g)
			}
			if !s.DrainTimeout(30 * time.Second) {
				t.Fatal("drain did not converge with mem kills in flight")
			}

			for i, g := range guests {
				res := g.Wait()
				if i%4 == 0 {
					if !errors.Is(res.Err, interp.ErrMemLimit) {
						t.Errorf("hostile %d: err=%v, want ErrMemLimit", i, res.Err)
					}
				} else if res.Err != nil {
					t.Errorf("guest %d: %v", i, res.Err)
				}
				if again := g.Wait(); again.Err != res.Err {
					t.Errorf("guest %d: second Wait disagreed", i)
				}
			}

			m := s.Metrics()
			if m.Active != 0 {
				t.Errorf("Active=%d after drain, want 0", m.Active)
			}
			if m.KilledMem != uint64(hostiles) {
				t.Errorf("KilledMem=%d, want %d", m.KilledMem, hostiles)
			}
			if m.Completed != uint64(n-hostiles) {
				t.Errorf("Completed=%d, want %d", m.Completed, n-hostiles)
			}
		})
	}
}

// TestDrainTimeoutExpires pins the timeout half of DrainTimeout: a guest
// that never finishes (infinite loop, no deadline) must make DrainTimeout
// return false at its deadline rather than hang, and Close then reaps it.
func TestDrainTimeoutExpires(t *testing.T) {
	s := New(Options{Workers: 1, QuantumSteps: 200})
	g, err := s.Submit(SubmitOptions{Source: `while (true) {}`})
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if s.DrainTimeout(150 * time.Millisecond) {
		t.Fatal("DrainTimeout reported drained with an immortal guest")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("DrainTimeout took %v to give up", elapsed)
	}
	s.Close()
	if res := g.Wait(); !errors.Is(res.Err, ErrShutdown) {
		t.Fatalf("immortal guest: err=%v, want ErrShutdown from Close", res.Err)
	}
	if m := s.Metrics(); m.KilledShutdown != 1 {
		t.Errorf("KilledShutdown=%d, want 1", m.KilledShutdown)
	}
}

// TestMemKillCountersInMetrics pins the operator view: repeated budget
// kills land in KilledMem (and Killed), never in InternalFaults.
func TestMemKillCountersInMetrics(t *testing.T) {
	s := New(Options{Workers: 2, QuantumSteps: 200})
	defer s.Close()
	pol := Policy{MemBudgetBytes: 64 << 10}
	for i := 0; i < 3; i++ {
		g, err := s.Submit(SubmitOptions{Source: hostileAllocSrc, Policy: &pol})
		if err != nil {
			t.Fatal(err)
		}
		if res := g.Wait(); !errors.Is(res.Err, interp.ErrMemLimit) {
			t.Fatalf("run %d: err=%v, want ErrMemLimit", i, res.Err)
		}
	}
	m := s.Metrics()
	if m.KilledMem != 3 || m.Killed != 3 {
		t.Errorf("KilledMem=%d Killed=%d, want 3/3", m.KilledMem, m.Killed)
	}
	if m.InternalFaults != 0 {
		t.Errorf("InternalFaults=%d, want 0 — a budget kill is policy, not a fault", m.InternalFaults)
	}
}
