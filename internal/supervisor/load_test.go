package supervisor

import (
	"testing"
	"time"
)

// A short sustained-load run is the integration test for the whole serving
// stack at once: open-loop arrivals, lane scheduling with work-stealing,
// churn-driven pause/resume/kill, and park/restore through MaxResident on
// the hot path — with every finished guest's output verified.
func TestRunLoadShortSustained(t *testing.T) {
	res, err := RunLoad(LoadConfig{
		ArrivalRate: 300,
		Duration:    2 * time.Second,
		Workers:     4,
		MaxResident: 8, // tiny on purpose: force park/restore traffic
		Seed:        42,
	})
	if err != nil {
		t.Fatalf("RunLoad: %v", err)
	}
	if res.Unexpected != 0 || res.Stragglers != 0 {
		t.Fatalf("unexpected=%d stragglers=%d (first: %s)",
			res.Unexpected, res.Stragglers, res.FirstUnexpected)
	}
	if res.Arrivals < 100 {
		t.Errorf("arrivals = %d, want a few hundred at 300/s over 2s", res.Arrivals)
	}
	if res.Admitted != res.Arrivals-res.Rejected {
		t.Errorf("admitted %d != arrivals %d - rejected %d", res.Admitted, res.Arrivals, res.Rejected)
	}
	if res.Parks == 0 || res.Restores == 0 {
		t.Errorf("parks=%d restores=%d — MaxResident=8 under churn must park and restore", res.Parks, res.Restores)
	}
	if res.ParkPins != 0 {
		// The mix holds bound functions, Dates, and cancelled timer handles
		// across parks on purpose; since wire v2 none of them may pin.
		t.Errorf("park_pins=%d (%v), want 0 for the standard profile mix",
			res.ParkPins, res.ParkPinsByReason)
	}
	if res.ChurnPauses == 0 || res.ChurnKills == 0 {
		t.Errorf("churn idle: pauses=%d kills=%d", res.ChurnPauses, res.ChurnKills)
	}
	if res.ErrorRate > 0.01 {
		t.Errorf("error rate %.4f > 0.01 (rejected=%d)", res.ErrorRate, res.Rejected)
	}
	if len(res.Windows) == 0 {
		t.Fatal("no windowed metrics recorded")
	}
	turns := 0
	for _, w := range res.Windows {
		turns += w.Turns
	}
	if turns == 0 {
		t.Error("windowed digest saw zero turns")
	}
	if res.WorstWindowP99 <= 0 {
		t.Errorf("worst window P99 = %v, want > 0", res.WorstWindowP99)
	}
	if res.Format() == "" {
		t.Error("empty report")
	}
}

// The fixed-arrival variant must hit its schedule deterministically.
func TestRunLoadFixedArrivals(t *testing.T) {
	res, err := RunLoad(LoadConfig{
		ArrivalRate:    100,
		Duration:       time.Second,
		FixedArrivals:  true,
		Workers:        2,
		MaxResident:    -1, // unbounded: the no-parking configuration still holds SLO
		HostileEvery:   -1,
		ChurnKillEvery: -1,
		Seed:           7,
	})
	if err != nil {
		t.Fatalf("RunLoad: %v", err)
	}
	// A metronome at 100/s over 1s fires exactly 100 times (t=0 included,
	// modulo the final boundary).
	if res.Arrivals < 95 || res.Arrivals > 105 {
		t.Errorf("fixed arrivals = %d, want ~100", res.Arrivals)
	}
	if res.Unexpected != 0 || res.Stragglers != 0 {
		t.Fatalf("unexpected=%d stragglers=%d (first: %s)",
			res.Unexpected, res.Stragglers, res.FirstUnexpected)
	}
	if res.ChurnKills != 0 {
		t.Errorf("kills disabled but ChurnKills = %d", res.ChurnKills)
	}
}
