// Package chaos is the supervisor's fault-injection harness. It drives the
// build-tagged hook seam in internal/supervisor (chaosBeforeTurn, compiled
// only under -tags=chaos) to inject engine panics, allocation storms, and
// timer stalls into a live fleet, so the resilience claims — blast radius
// of exactly one tenant, workers that survive engine bugs, drains that
// converge under fire — are tested rather than asserted.
//
// The package's real content (the Injector and its fault kinds) lives in
// injector.go behind the chaos build tag; this file exists so the package
// remains buildable in production configurations where the seam is erased.
package chaos
