//go:build chaos

package chaos_test

import (
	"errors"
	"fmt"
	"testing"

	"repro/internal/interp"
	"repro/internal/supervisor"
	"repro/internal/supervisor/chaos"
)

// chaosGuestSrc builds a deterministic guest whose output depends on its
// seed, so any cross-tenant corruption — state bleed, lost writes, a worker
// dying mid-fleet — shows up as a byte diff against the calm run.
func chaosGuestSrc(seed int) string {
	return fmt.Sprintf(`
var s = %d;
var keep = [];
for (var i = 0; i < 300; i++) {
  s = (s + i * 13) %% 99991;
  if (i %% 50 === 0) { keep.push({round: i, acc: s}); }
}
function mix(n) { if (n < 2) { return n; } return mix(n - 1) + mix(n - 2); }
console.log("chaos%d", s, mix(9), keep.length);
`, seed, seed)
}

type fleetResult struct {
	output string
	err    error
}

// runFleet submits n seeded guests to a fresh supervisor and waits for all
// of them. Guest IDs are 1..n in submission order (single submitting
// goroutine on a fresh supervisor), which is what lets the caller arm an
// injector before any guest exists.
func runFleet(t *testing.T, n int, sup *supervisor.Supervisor) map[int]fleetResult {
	t.Helper()
	pol := supervisor.Policy{MemBudgetBytes: 8 << 20}
	guests := make([]*supervisor.Guest, 0, n)
	for i := 0; i < n; i++ {
		g, err := sup.Submit(supervisor.SubmitOptions{
			Source: chaosGuestSrc(i),
			Policy: &pol,
		})
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		if g.ID != uint64(i+1) {
			t.Fatalf("guest %d got ID %d; the fault plan assumes sequential IDs", i, g.ID)
		}
		guests = append(guests, g)
	}
	out := make(map[int]fleetResult, n)
	for i, g := range guests {
		res := g.Wait()
		out[i] = fleetResult{output: res.Output, err: res.Err}
	}
	return out
}

// TestChaosBlastRadius is the acceptance run: a 500-guest fleet with ≥20
// injected faults (engine panics, allocation storms, worker stalls, slow
// turns). The blast radius of every fault must be exactly one tenant —
// every non-faulted guest's output is byte-identical to a fault-free run
// of the same fleet, destructive faults map to their designated errors,
// and the supervisor itself survives to serve new work.
func TestChaosBlastRadius(t *testing.T) {
	n := 500
	if testing.Short() {
		n = 120
	}

	// The deterministic fault plan: one fault every 20 guests, cycling
	// through the four kinds. 24 faults in the full fleet, 6 of each.
	plan := make(map[uint64]chaos.Fault)
	for k := 0; uint64(k*20+10) <= uint64(n); k++ {
		plan[uint64(k*20+10)] = chaos.Fault(k % 4)
	}
	if len(plan) < 20 && !testing.Short() {
		t.Fatalf("fault plan has %d faults, want >= 20", len(plan))
	}

	// Calm run: the fault-free ground truth.
	calmSup := supervisor.New(supervisor.Options{Workers: 8, MaxPending: n + 10, QuantumSteps: 1000})
	calm := runFleet(t, n, calmSup)
	calmSup.Close()
	for i, r := range calm {
		if r.err != nil {
			t.Fatalf("calm run: guest %d failed: %v", i, r.err)
		}
	}

	// Storm run: same fleet, injector armed before any guest is admitted.
	inj := chaos.NewInjector()
	for id, f := range plan {
		inj.Arm(id, f)
	}
	inj.Install()
	defer inj.Uninstall()

	stormSup := supervisor.New(supervisor.Options{Workers: 8, MaxPending: n + 10, QuantumSteps: 1000})
	defer stormSup.Close()
	storm := runFleet(t, n, stormSup)

	if fired := inj.Fired(); len(fired) != len(plan) {
		t.Errorf("fired %d faults, armed %d: %v", len(fired), len(plan), fired)
	}

	var wantPanics, wantStorms uint64
	for i := 0; i < n; i++ {
		r := storm[i]
		f, faulted := plan[uint64(i+1)]
		switch {
		case faulted && f == chaos.FaultPanic:
			wantPanics++
			if !errors.Is(r.err, supervisor.ErrInternalFault) {
				t.Errorf("guest %d (panic fault): err=%v, want ErrInternalFault", i, r.err)
			}
		case faulted && f == chaos.FaultAllocStorm:
			wantStorms++
			if !errors.Is(r.err, interp.ErrMemLimit) {
				t.Errorf("guest %d (alloc storm): err=%v, want ErrMemLimit", i, r.err)
			}
		default:
			// Non-faulted guests, and the timing faults (stall/slow-turn),
			// must be bit-for-bit indistinguishable from the calm fleet.
			if r.err != nil {
				t.Errorf("guest %d: err=%v, want clean completion", i, r.err)
			}
			if r.output != calm[i].output {
				t.Errorf("guest %d: output diverged from calm run:\nstorm: %q\ncalm:  %q",
					i, r.output, calm[i].output)
			}
		}
	}

	m := stormSup.Metrics()
	if m.InternalFaults != wantPanics {
		t.Errorf("InternalFaults=%d, want %d", m.InternalFaults, wantPanics)
	}
	if m.KilledMem != wantStorms {
		t.Errorf("KilledMem=%d, want %d", m.KilledMem, wantStorms)
	}
	if want := uint64(n) - wantPanics - wantStorms; m.Completed != want {
		t.Errorf("Completed=%d, want %d", m.Completed, want)
	}
	if m.LastFault == "" || m.LastFaultStack == "" {
		t.Error("panic diagnostics not captured in metrics")
	}

	// The fleet took 24 faults; the supervisor must still serve new work.
	g, err := stormSup.Submit(supervisor.SubmitOptions{Source: chaosGuestSrc(9999)})
	if err != nil {
		t.Fatalf("post-storm submit: %v", err)
	}
	if res := g.Wait(); res.Err != nil {
		t.Fatalf("post-storm guest failed: %v", res.Err)
	}
}
