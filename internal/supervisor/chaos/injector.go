//go:build chaos

package chaos

import (
	"sync"
	"time"

	"repro/internal/supervisor"
)

// Fault is one kind of injected failure. Each simulates, at the turn
// boundary, a class of incident the fleet must contain to a single tenant.
type Fault int

const (
	// FaultPanic panics on the guest's worker goroutine, exactly where an
	// engine bug would surface — it exercises the worker's recover barrier
	// and the ErrInternalFault finalization path.
	FaultPanic Fault = iota
	// FaultAllocStorm charges a huge allocation against the guest's memory
	// meter, simulating a runaway allocator; the guest must die with
	// interp.ErrMemLimit at its next statement boundary. Only bites guests
	// that have a MemBudgetBytes policy.
	FaultAllocStorm
	// FaultStall blocks the worker for a long beat, simulating a wedged
	// native call; neighbors must keep completing on the remaining workers.
	FaultStall
	// FaultSlowTurn blocks the worker briefly, simulating a degraded host;
	// it should be absorbed with no guest-visible effect at all.
	FaultSlowTurn
)

func (f Fault) String() string {
	switch f {
	case FaultPanic:
		return "panic"
	case FaultAllocStorm:
		return "alloc-storm"
	case FaultStall:
		return "stall"
	case FaultSlowTurn:
		return "slow-turn"
	}
	return "unknown"
}

// Injector is a deterministic fault plan: guest ID → fault, fired at most
// once per guest, on that guest's first scheduled turn. Determinism matters
// — the blast-radius test compares a chaotic fleet byte-for-byte against a
// calm one, so the set of faulted tenants must be exact, not sampled.
type Injector struct {
	mu    sync.Mutex
	plan  map[uint64]Fault
	fired map[uint64]Fault

	// StallFor / SlowFor are the sleep lengths for the two timing faults.
	StallFor time.Duration
	SlowFor  time.Duration
}

// NewInjector returns an empty plan with default timings.
func NewInjector() *Injector {
	return &Injector{
		plan:     make(map[uint64]Fault),
		fired:    make(map[uint64]Fault),
		StallFor: 100 * time.Millisecond,
		SlowFor:  5 * time.Millisecond,
	}
}

// Arm schedules a fault for a guest's next turn.
func (inj *Injector) Arm(guestID uint64, f Fault) {
	inj.mu.Lock()
	inj.plan[guestID] = f
	inj.mu.Unlock()
}

// Fired reports which faults have actually been delivered.
func (inj *Injector) Fired() map[uint64]Fault {
	inj.mu.Lock()
	defer inj.mu.Unlock()
	out := make(map[uint64]Fault, len(inj.fired))
	for id, f := range inj.fired {
		out[id] = f
	}
	return out
}

// Install registers the injector as the process-wide chaos hook. Call
// Uninstall (or supervisor.SetChaosHook(nil)) when the storm is over.
func (inj *Injector) Install() { supervisor.SetChaosHook(inj.hook) }

// Uninstall removes the hook.
func (inj *Injector) Uninstall() { supervisor.SetChaosHook(nil) }

// hook runs at the top of every scheduling turn, on the worker goroutine
// that owns the guest for the turn.
func (inj *Injector) hook(t supervisor.ChaosTurn) {
	inj.mu.Lock()
	f, ok := inj.plan[t.GuestID]
	if ok {
		delete(inj.plan, t.GuestID)
		inj.fired[t.GuestID] = f
	}
	inj.mu.Unlock()
	if !ok {
		return
	}
	switch f {
	case FaultPanic:
		panic("chaos: injected engine fault")
	case FaultAllocStorm:
		// The hook is the turn's owner, so the realm's meter is ours to
		// poison; the guest dies at its next statement boundary.
		t.Run.In.ChargeMem(1 << 40)
	case FaultStall:
		time.Sleep(inj.StallFor)
	case FaultSlowTurn:
		time.Sleep(inj.SlowFor)
	}
}
