package supervisor

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/rt"
)

// The sustained-load target (stopibench -supervisor -arrival-rate=R
// -duration=D): an open-loop generator pushes guests at the fleet at a rate
// the fleet does not control — Poisson arrivals by default, a fixed
// metronome on request — while a churn driver pauses, resumes, and kills
// random live tenants the whole time. MaxResident is deliberately small, so
// every pause and every sleeping tenant routes through the snapshot
// park/restore machinery on the hot path. The result is windowed: P50/P90/
// P99 scheduling latency per time bucket over the run, because a closed-loop
// batch number (RunBench) cannot see a latency cliff that builds up under
// steady-state queueing, and a whole-run percentile averages the cliff away.

// Hostile guests in the load mix get this long to live.
const hostileDeadline = 200 * time.Millisecond

// minWindowTurns is how many scheduling turns a window needs before its P99
// counts toward WorstWindowP99 — the startup and drain-tail buckets with a
// handful of samples would otherwise dominate the gate with noise.
const minWindowTurns = 25

// LoadConfig sizes a sustained open-loop load run.
type LoadConfig struct {
	// ArrivalRate is the mean guest arrival rate, guests/sec. Default 200.
	ArrivalRate float64 `json:"arrival_rate"`
	// Duration is the generation period; after it the generator stops and
	// the run drains. Default 10s.
	Duration time.Duration `json:"duration_ns"`
	// FixedArrivals replaces the Poisson process with a fixed-interval
	// metronome (deterministic spacing, same mean rate).
	FixedArrivals bool   `json:"fixed_arrivals,omitempty"`
	Workers       int    `json:"workers"`       // default 4
	QuantumSteps  uint64 `json:"quantum_steps"` // default 2000
	// MaxResident bounds live realms; 0 picks Workers*8 (small on purpose —
	// the harness wants park/restore on the hot path), negative disables.
	MaxResident int `json:"max_resident"`
	// MaxPending is the admission bound; arrivals beyond it are rejected
	// and count toward the error rate (shed load is an SLO violation in an
	// open-loop world). Default 4096.
	MaxPending int    `json:"max_pending"`
	ParkDir    string `json:"park_dir,omitempty"`
	Backend    string `json:"backend,omitempty"`
	// HostileEvery makes every k-th arrival an infinite loop with a 200 ms
	// deadline. Default 100; negative disables.
	HostileEvery int `json:"hostile_every"`
	// ChurnTick paces the churn driver: each tick it pauses one random live
	// guest (resumed 100–300 ms later), and every ChurnKillEvery-th tick it
	// kills one instead. Defaults 10 ms and 8; negative ChurnKillEvery
	// disables kills.
	ChurnTick      time.Duration `json:"churn_tick_ns"`
	ChurnKillEvery int           `json:"churn_kill_every"`
	// Seed drives arrival spacing, profile jitter, and churn targeting.
	// Default 1.
	Seed int64 `json:"seed"`
	// MetricsWindow is the windowed-percentile bucket width. Default 1s.
	MetricsWindow time.Duration `json:"metrics_window_ns"`
	// DrainBudget bounds the post-generation drain; guests still unfinished
	// after it count as errors. Default 60s.
	DrainBudget time.Duration `json:"drain_budget_ns"`
	// ProfileEvery arms the guest-level sampling profiler in every guest
	// (statement period); 0 leaves it off. The per-tenant folded stacks go
	// to ProfileOut.
	ProfileEvery uint64 `json:"profile_every,omitempty"`
	// TraceOut, when set, writes the run's flight-recorder history as a
	// Chrome trace-event JSON file (load it in about://tracing) after the
	// drain — the post-mortem artifact every SLO-gate run leaves behind.
	TraceOut string `json:"trace_out,omitempty"`
	// ProfileOut, when set, writes every tenant's folded-stack profile
	// (lines prefixed guest<id>;) to one flamegraph-ready file. Requires
	// ProfileEvery.
	ProfileOut string `json:"profile_out,omitempty"`
}

func (c *LoadConfig) normalize() {
	if c.ArrivalRate <= 0 {
		c.ArrivalRate = 200
	}
	if c.Duration <= 0 {
		c.Duration = 10 * time.Second
	}
	if c.Workers <= 0 {
		c.Workers = 4
	}
	if c.QuantumSteps == 0 {
		c.QuantumSteps = 2000
	}
	if c.MaxResident == 0 {
		c.MaxResident = c.Workers * 8
	}
	if c.MaxResident < 0 {
		c.MaxResident = 0 // unbounded
	}
	if c.MaxPending <= 0 {
		c.MaxPending = 4096
	}
	if c.HostileEvery == 0 {
		c.HostileEvery = 100
	}
	if c.ChurnTick <= 0 {
		c.ChurnTick = 10 * time.Millisecond
	}
	if c.ChurnKillEvery == 0 {
		c.ChurnKillEvery = 8
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.MetricsWindow <= 0 {
		c.MetricsWindow = time.Second
	}
	if c.DrainBudget <= 0 {
		c.DrainBudget = 60 * time.Second
	}
}

// LoadResult is one sustained-load measurement. Sched/Turn are whole-run
// digests; Windows is the over-time view the SLO gate reads.
type LoadResult struct {
	Config LoadConfig `json:"config"`
	WallMs float64    `json:"wall_ms"` // generation + drain
	GenMs  float64    `json:"gen_ms"`  // generation period actually used

	Arrivals int `json:"arrivals"`
	Admitted int `json:"admitted"`
	Rejected int `json:"rejected"`

	ChurnPauses  int `json:"churn_pauses"`
	ChurnResumes int `json:"churn_resumes"`
	ChurnKills   int `json:"churn_kills"`

	Completed uint64 `json:"completed"`
	Killed    uint64 `json:"killed"`
	Failed    uint64 `json:"failed"`
	// Unexpected counts guests whose outcome contradicts their profile:
	// wrong output, an error nobody asked for, a hostile that outlived its
	// deadline. Zero is the only acceptable value on a healthy build.
	Unexpected int `json:"unexpected"`
	// Stragglers are guests still unfinished when DrainBudget expired.
	Stragglers      int    `json:"stragglers"`
	FirstUnexpected string `json:"first_unexpected,omitempty"`
	// ErrorRate is (Unexpected + Stragglers + Rejected) / Arrivals — the
	// figure -supervisor-check gates on alongside P99.
	ErrorRate float64 `json:"error_rate"`

	Preemptions uint64 `json:"preemptions"`
	Steals      uint64 `json:"steals"`
	Parks       uint64 `json:"parks"`
	Restores    uint64 `json:"restores"`
	ParkPins    uint64 `json:"park_pins"`
	// ParkPinsByReason breaks ParkPins down by snapshot.PinError kind;
	// the standard mix must keep it empty (gated in the verify pass).
	ParkPinsByReason map[string]uint64 `json:"park_pins_by_reason,omitempty"`
	StepsTotal       uint64            `json:"steps_total"`

	Sched      LatencySummary `json:"sched_latency"`
	Turn       LatencySummary `json:"turn_duration"`
	RestoreLat LatencySummary `json:"restore_latency"`

	// WorstWindowP99 is the maximum windowed P99 over windows with at least
	// minWindowTurns samples (whole-run P99 when no window qualifies) — the
	// "was there a bad minute" number.
	WorstWindowP99 float64         `json:"worst_window_p99_ms"`
	Windows        []WindowSummary `json:"windows"`
}

// loadRec is the harness's book entry for one admitted guest. churnKilled is
// written only by the churn driver goroutine and read only after it joins.
type loadRec struct {
	g           *Guest
	want        string
	hostile     bool
	churnKilled bool
}

// Tenant profiles. Batch guests reuse the throughput mix (benchWorkloads);
// the two profiles below add what an open-loop serving fleet actually has:
// sessions that go idle mid-flight and become park candidates.

// loadInteractiveProgram is a multi-turn REPL session: bursts of work
// separated by think-time sleeps, on the interactive lane. While it sleeps
// it is exactly the idle-but-live tenant MaxResident parks — and what it
// holds across those parks is deliberately the state wire v2 un-pinned: the
// turn callback is a *bound* function, a Date from session start must read
// the same time-value after every restore, and each turn schedules a decoy
// timer it immediately cancels (the cancelled handle rides the ledger; if
// cancellation were lost across a park the decoy would run an extra turn
// and the output check below would catch it).
func loadInteractiveProgram(seed int) (src, want string) {
	const turns = 3
	sleep := 40 + seed%80
	acc := seed % 9973
	var w strings.Builder
	for t := 0; t < turns; t++ {
		for i := 0; i < 300; i++ {
			acc = (acc + i*7 + seed) % 9973
		}
		fmt.Fprintf(&w, "t%d %d\n", t, acc)
	}
	w.WriteString("bye stable\n")
	src = fmt.Sprintf(`
var born = new Date();
var t0 = born.getTime();
var acc = %d;
var turn = 0;
function stepImpl(tag) {
  for (var i = 0; i < 300; i++) { acc = (acc + i * 7 + %d) %% 9973; }
  console.log(tag + turn, acc);
  turn++;
  if (turn < %d) {
    var decoy = setTimeout(step, %d);
    setTimeout(step, %d);
    clearTimeout(decoy);
  } else {
    console.log("bye", born.getTime() === t0 ? "stable" : "drift");
  }
}
var step = stepImpl.bind(null, "t");
step();
`, seed%9973, seed, turns, sleep, sleep)
	return src, w.String()
}

// loadSleeperProgram sleeps first and computes after — admitted, instantly
// idle, parked under residency pressure, restored when the timer fires. The
// pending timer carries forwarded extra args, a cancelled twin rides the
// ledger beside it, and a Date instance must stay internally consistent
// after restore; a codec fault in any of them corrupts the verified output.
func loadSleeperProgram(seed int) (src, want string) {
	sleep := 150 + (seed*37)%350
	src = fmt.Sprintf(`
var mark = new Date();
function wake(bonus, tag) {
  var n = 0;
  for (var i = 0; i < 200; i++) { n += i; }
  console.log(tag, n + bonus, mark.getTime() === mark.valueOf() ? "ok" : "bad");
}
var dead = setTimeout(wake, %d, 0, "never");
clearTimeout(dead);
setTimeout(wake, %d, %d, "woke");
`, sleep, sleep, seed)
	return src, fmt.Sprintf("woke %d ok\n", 19900+seed)
}

// worstWindowP99 is the "was there a bad minute" number: the maximum
// windowed P99 over windows with at least minWindowTurns samples, or
// fallback (the whole-run P99) when no window has enough turns to be
// statistically meaningful.
func worstWindowP99(windows []WindowSummary, fallback float64) float64 {
	worst := 0.0
	for _, w := range windows {
		if w.Turns >= minWindowTurns && w.P99 > worst {
			worst = w.P99
		}
	}
	if worst == 0 {
		worst = fallback
	}
	return worst
}

// RunLoad executes one sustained open-loop load run and verifies every
// finished guest's outcome against its profile.
func RunLoad(cfg LoadConfig) (*LoadResult, error) {
	cfg.normalize()
	s := New(Options{
		Workers:       cfg.Workers,
		MaxPending:    cfg.MaxPending,
		QuantumSteps:  cfg.QuantumSteps,
		Backend:       cfg.Backend,
		MaxResident:   cfg.MaxResident,
		ParkDir:       cfg.ParkDir,
		MetricsWindow: cfg.MetricsWindow,
		ProfileEvery:  cfg.ProfileEvery,
	})
	defer s.Close()

	var (
		recMu sync.Mutex
		recs  []*loadRec
	)
	// pickLive probes a few random records for one that is still in flight.
	pickLive := func(rng *rand.Rand) *loadRec {
		recMu.Lock()
		defer recMu.Unlock()
		if len(recs) == 0 {
			return nil
		}
		for probe := 0; probe < 4; probe++ {
			r := recs[rng.Intn(len(recs))]
			if r.g.State() != StateDone {
				return r
			}
		}
		return nil
	}

	// The churn driver: session lifecycle noise at a steady beat, on top of
	// whatever the arrival process is doing. Pauses are always paired with a
	// delayed Resume, so nothing it touches can hang the drain.
	var (
		stopChurn = make(chan struct{})
		churnWG   sync.WaitGroup
		pauses    int
		kills     int
		resumes   atomic.Int64
	)
	churnWG.Add(1)
	go func() {
		defer churnWG.Done()
		rng := rand.New(rand.NewSource(cfg.Seed + 1))
		tick := time.NewTicker(cfg.ChurnTick)
		defer tick.Stop()
		for n := 1; ; n++ {
			select {
			case <-stopChurn:
				return
			case <-tick.C:
			}
			rec := pickLive(rng)
			if rec == nil || rec.hostile {
				// Hostiles die by deadline, on schedule; churning them
				// would turn the deadline assertion into a coin flip.
				continue
			}
			if cfg.ChurnKillEvery > 0 && n%cfg.ChurnKillEvery == 0 {
				// Flag before Kill: if the kill races normal completion
				// and loses, verification accepts either outcome.
				rec.churnKilled = true
				rec.g.Kill(nil)
				kills++
				continue
			}
			rec.g.Pause()
			pauses++
			g := rec.g
			delay := time.Duration(100+rng.Intn(200)) * time.Millisecond
			time.AfterFunc(delay, func() {
				g.Resume()
				resumes.Add(1)
			})
		}
	}()

	// The open-loop generator. `next` advances by the arrival process alone
	// — when submission falls behind schedule the loop catches up without
	// sleeping, like real traffic that does not slow down because the
	// server did.
	rng := rand.New(rand.NewSource(cfg.Seed))
	interval := float64(time.Second) / cfg.ArrivalRate
	start := time.Now()
	end := start.Add(cfg.Duration)
	next := start
	arrivals, admitted, rejected := 0, 0, 0
	for next.Before(end) {
		if d := time.Until(next); d > 0 {
			time.Sleep(d)
		}
		i := arrivals
		arrivals++
		var (
			src, want string
			pol       *Policy
			hostile   bool
		)
		switch {
		case cfg.HostileEvery > 0 && i%cfg.HostileEvery == cfg.HostileEvery-1:
			hostile = true
			src = `while (true) { var x = 1; }`
			pol = &Policy{WallDeadline: hostileDeadline}
		case i%4 == 1:
			src, want = loadInteractiveProgram(i)
			pol = &Policy{Lane: LaneInteractive}
		case i%4 == 3:
			src, want = loadSleeperProgram(i)
		default:
			src, want = benchWorkloads[(i/2)%len(benchWorkloads)](i)
		}
		g, err := s.Submit(SubmitOptions{Source: src, Policy: pol})
		switch {
		case errors.Is(err, ErrQueueFull):
			rejected++
		case err != nil:
			close(stopChurn)
			churnWG.Wait()
			return nil, fmt.Errorf("submit %d: %w", i, err)
		default:
			rec := &loadRec{g: g, want: want, hostile: hostile}
			recMu.Lock()
			recs = append(recs, rec)
			recMu.Unlock()
			admitted++
		}
		if cfg.FixedArrivals {
			next = next.Add(time.Duration(interval))
		} else {
			next = next.Add(time.Duration(rng.ExpFloat64() * interval))
		}
	}
	genWall := time.Since(start)

	close(stopChurn)
	churnWG.Wait()
	drained := s.DrainTimeout(cfg.DrainBudget)
	wall := time.Since(start)

	// Verify every finished guest against its profile. The churn driver has
	// joined, so churnKilled reads are ordered; the generator is this
	// goroutine, so recs is complete.
	unexpected, stragglers := 0, 0
	firstBad := ""
	note := func(format, output string, a ...interface{}) {
		unexpected++
		if firstBad == "" {
			firstBad = fmt.Sprintf(format, a...)
			if output != "" {
				firstBad += fmt.Sprintf(" (output %q)", output)
			}
		}
	}
	for idx, r := range recs {
		select {
		case <-r.g.Done():
		default:
			stragglers++ // DrainBudget expired on this guest
			continue
		}
		res := r.g.Result()
		switch {
		case r.hostile:
			if !errors.Is(res.Err, ErrDeadline) {
				note("hostile guest %d: err=%v, want deadline kill", "", idx, res.Err)
			}
		case r.churnKilled:
			// The kill may have raced normal completion and lost; both a
			// clean kill and a correct completion are in-contract.
			if errors.Is(res.Err, rt.ErrKilled) {
				break
			}
			if res.Err != nil || res.Output != r.want {
				note("churn-killed guest %d: err=%v, want kill or clean finish", res.Output, idx, res.Err)
			}
		case res.Err != nil:
			note("guest %d failed: %v", res.Output, idx, res.Err)
		case res.Output != r.want:
			note("guest %d output mismatch, want %q — isolation broken", res.Output, idx, r.want)
		}
	}
	if !drained && firstBad == "" {
		firstBad = fmt.Sprintf("%d guests unfinished after %v drain budget", stragglers, cfg.DrainBudget)
	}

	// Snapshot instrumentation before the deferred Close pollutes the kill
	// counters with shutdown kills of stragglers.
	m := s.Metrics()
	// Every standard profile holds only serializable state — bound
	// functions, Date instances, and cancelled timer handles all cross the
	// snapshot boundary since wire v2 — so a pinned park attempt here is a
	// codec regression surfacing under load, not expected traffic.
	if m.ParkPins > 0 {
		note("%d park attempts pinned (%v) — standard profiles must serialize",
			"", int(m.ParkPins), m.ParkPinsByReason)
	}
	windows := s.Windows()
	worst := worstWindowP99(windows, m.SchedLatency.P99)

	// Post-mortem artifacts, written while the supervisor (and its flight
	// recorder) is still alive. Failures are reported, not fatal: a run that
	// met its SLOs does not fail because a disk was full.
	var artifactErr error
	if cfg.TraceOut != "" {
		artifactErr = os.WriteFile(cfg.TraceOut, ChromeTrace(s.Trace(0)), 0o644)
	}
	if cfg.ProfileOut != "" && artifactErr == nil {
		var prof bytes.Buffer
		for _, r := range recs {
			if folded := r.g.ProfileFolded(); folded != nil {
				prof.Write(FoldedText(folded, fmt.Sprintf("guest%d", r.g.ID)))
			}
		}
		artifactErr = os.WriteFile(cfg.ProfileOut, prof.Bytes(), 0o644)
	}
	if artifactErr != nil && firstBad == "" {
		firstBad = fmt.Sprintf("artifact write failed: %v", artifactErr)
	}

	res := &LoadResult{
		Config:           cfg,
		WallMs:           float64(wall) / float64(time.Millisecond),
		GenMs:            float64(genWall) / float64(time.Millisecond),
		Arrivals:         arrivals,
		Admitted:         admitted,
		Rejected:         rejected,
		ChurnPauses:      pauses,
		ChurnResumes:     int(resumes.Load()),
		ChurnKills:       kills,
		Completed:        m.Completed,
		Killed:           m.Killed,
		Failed:           m.Failed,
		Unexpected:       unexpected,
		Stragglers:       stragglers,
		FirstUnexpected:  firstBad,
		Preemptions:      m.Preemptions,
		Steals:           m.Steals,
		Parks:            m.Parks,
		Restores:         m.Restores,
		ParkPins:         m.ParkPins,
		ParkPinsByReason: m.ParkPinsByReason,
		StepsTotal:       m.StepsTotal,
		Sched:            m.SchedLatency,
		Turn:             m.TurnDuration,
		RestoreLat:       m.RestoreLatency,
		WorstWindowP99:   worst,
		Windows:          windows,
	}
	if arrivals > 0 {
		res.ErrorRate = float64(unexpected+stragglers+rejected) / float64(arrivals)
	}
	return res, nil
}

// Format renders the result as the stopibench report block.
func (r *LoadResult) Format() string {
	var b strings.Builder
	process := "poisson"
	if r.Config.FixedArrivals {
		process = "fixed"
	}
	fmt.Fprintf(&b, "supervisor sustained load: %.0f guests/sec (%s) for %v, %d workers, quantum %d, max-resident %d\n",
		r.Config.ArrivalRate, process, r.Config.Duration, r.Config.Workers, r.Config.QuantumSteps, r.Config.MaxResident)
	fmt.Fprintf(&b, "  arrivals %d (admitted %d, rejected %d) — completed %d, killed %d, failed %d, unexpected %d, stragglers %d\n",
		r.Arrivals, r.Admitted, r.Rejected, r.Completed, r.Killed, r.Failed, r.Unexpected, r.Stragglers)
	fmt.Fprintf(&b, "  churn: %d pauses, %d resumes, %d kills — parks %d, restores %d, pins %d, steals %d, preemptions %d\n",
		r.ChurnPauses, r.ChurnResumes, r.ChurnKills, r.Parks, r.Restores, r.ParkPins, r.Steals, r.Preemptions)
	fmt.Fprintf(&b, "  error rate %.4f\n", r.ErrorRate)
	if r.FirstUnexpected != "" {
		fmt.Fprintf(&b, "  first unexpected: %s\n", r.FirstUnexpected)
	}
	fmt.Fprintf(&b, "  sched latency (whole run): P50 %.2f ms  P90 %.2f ms  P99 %.2f ms  max %.2f ms (%d turns)\n",
		r.Sched.P50, r.Sched.P90, r.Sched.P99, r.Sched.Max, r.Sched.Count)
	fmt.Fprintf(&b, "  turn duration:             P50 %.2f ms  P90 %.2f ms  P99 %.2f ms  max %.2f ms\n",
		r.Turn.P50, r.Turn.P90, r.Turn.P99, r.Turn.Max)
	if r.RestoreLat.Count > 0 {
		fmt.Fprintf(&b, "  restore-on-touch:          P50 %.2f ms  P90 %.2f ms  P99 %.2f ms  max %.2f ms (%d restores)\n",
			r.RestoreLat.P50, r.RestoreLat.P90, r.RestoreLat.P99, r.RestoreLat.Max, r.RestoreLat.Count)
	}
	if len(r.Windows) > 0 {
		fmt.Fprintf(&b, "  windowed sched latency (%.0f ms buckets):\n", r.Windows[0].WidthMs)
		// Cap the table at ~60 rows; long runs print every k-th window.
		stride := (len(r.Windows) + 59) / 60
		for i := 0; i < len(r.Windows); i += stride {
			w := r.Windows[i]
			fmt.Fprintf(&b, "    t+%6.1fs  turns %5d  P50 %7.2f  P90 %7.2f  P99 %7.2f  max %7.2f\n",
				w.StartMs/1000, w.Turns, w.P50, w.P90, w.P99, w.Max)
		}
	}
	fmt.Fprintf(&b, "  worst window P99: %.2f ms\n", r.WorstWindowP99)
	return b.String()
}
