package baselines

import (
	"repro/internal/ast"
	"repro/internal/desugar"
	"repro/internal/parser"
	"repro/internal/printer"
)

// skulptPrelude routes arithmetic through dispatching helpers the way an
// interpreter's opcode handlers do.
const skulptPrelude = `
function $sk_bin(op, a, b) {
  switch (op) {
    case "+": return a + b;
    case "-": return a - b;
    case "*": return a * b;
    case "/": return a / b;
    case "%": return a % b;
    case "<": return a < b;
    case "<=": return a <= b;
    case ">": return a > b;
    case ">=": return a >= b;
    case "===": return a === b;
    case "!==": return a !== b;
    default: return undefined;
  }
}
function $sk_truth(v) { return !!v; }
`

// CompileSkulpt models Skulpt for the Figure 12 comparison (§6.3): Skulpt
// is a Python interpreter written in JavaScript, so every arithmetic
// operation and comparison dispatches through a handler function instead of
// compiling to a primitive — the structural reason compiled-and-stopified
// PyJS beats it. Per the paper's experimental setup, the Skulpt side is
// configured to neither yield nor time out, so no suspension machinery is
// added at all.
func CompileSkulpt(source string) (string, error) {
	prog, err := parser.Parse(source)
	if err != nil {
		return "", err
	}
	nm := &desugar.Namer{}
	desugar.Apply(prog, desugar.Options{}, nm)
	rewriteToDispatch(prog)
	return skulptPrelude + printer.Print(prog), nil
}

var skulptOps = map[string]bool{
	"+": true, "-": true, "*": true, "/": true, "%": true,
	"<": true, "<=": true, ">": true, ">=": true, "===": true, "!==": true,
}

// rewriteToDispatch replaces primitive operators with handler calls,
// bottom-up across the whole program.
func rewriteToDispatch(prog *ast.Program) {
	var doExpr func(e ast.Expr) ast.Expr
	var doStmt func(s ast.Stmt)
	var doBody func(body []ast.Stmt)
	doExpr = func(e ast.Expr) ast.Expr {
		switch n := e.(type) {
		case nil:
			return nil
		case *ast.Binary:
			n.L = doExpr(n.L)
			n.R = doExpr(n.R)
			if skulptOps[n.Op] {
				return ast.CallId("$sk_bin", ast.Strlit(n.Op), n.L, n.R)
			}
			return n
		case *ast.Logical:
			n.L = doExpr(n.L)
			n.R = doExpr(n.R)
			return n
		case *ast.Unary:
			n.X = doExpr(n.X)
			return n
		case *ast.Update:
			n.X = doExpr(n.X)
			return n
		case *ast.Assign:
			n.Target = doExpr(n.Target)
			n.Value = doExpr(n.Value)
			return n
		case *ast.Cond:
			n.Test = doExpr(n.Test)
			n.Cons = doExpr(n.Cons)
			n.Alt = doExpr(n.Alt)
			return n
		case *ast.Call:
			n.Callee = doExpr(n.Callee)
			for i := range n.Args {
				n.Args[i] = doExpr(n.Args[i])
			}
			return n
		case *ast.New:
			n.Callee = doExpr(n.Callee)
			for i := range n.Args {
				n.Args[i] = doExpr(n.Args[i])
			}
			return n
		case *ast.Member:
			n.X = doExpr(n.X)
			if n.Computed {
				n.Index = doExpr(n.Index)
			}
			return n
		case *ast.Seq:
			for i := range n.Exprs {
				n.Exprs[i] = doExpr(n.Exprs[i])
			}
			return n
		case *ast.Array:
			for i := range n.Elems {
				n.Elems[i] = doExpr(n.Elems[i])
			}
			return n
		case *ast.Object:
			for i := range n.Props {
				n.Props[i].Value = doExpr(n.Props[i].Value)
			}
			return n
		case *ast.Func:
			doBody(n.Body)
			return n
		default:
			return e
		}
	}
	doStmt = func(s ast.Stmt) {
		switch n := s.(type) {
		case *ast.VarDecl:
			for i := range n.Decls {
				if n.Decls[i].Init != nil {
					n.Decls[i].Init = doExpr(n.Decls[i].Init)
				}
			}
		case *ast.ExprStmt:
			n.X = doExpr(n.X)
		case *ast.Block:
			doBody(n.Body)
		case *ast.If:
			n.Test = doExpr(n.Test)
			doStmt(n.Cons)
			if n.Alt != nil {
				doStmt(n.Alt)
			}
		case *ast.While:
			n.Test = doExpr(n.Test)
			doStmt(n.Body)
		case *ast.Return:
			if n.Arg != nil {
				n.Arg = doExpr(n.Arg)
			}
		case *ast.Labeled:
			doStmt(n.Body)
		case *ast.Throw:
			n.Arg = doExpr(n.Arg)
		case *ast.Try:
			doBody(n.Block.Body)
			if n.Catch != nil {
				doBody(n.Catch.Body)
			}
			if n.Finally != nil {
				doBody(n.Finally.Body)
			}
		case *ast.FuncDecl:
			doBody(n.Fn.Body)
		}
	}
	doBody = func(body []ast.Stmt) {
		for _, s := range body {
			doStmt(s)
		}
	}
	doBody(prog.Body)
}
