// Package baselines implements the systems Stopify is measured against:
//
//   - a CPS + trampoline compiler (the first strawman of §3, ~3× slower
//     than Stopify's approach)
//   - a generator-style transform (the second strawman, ~2× slower)
//   - a Skulpt-like execution layer (Figure 12's comparison, §6.3)
//   - the classic Pyret configuration (Figure 14's comparison, §6.4)
//
// Each baseline produces plain JavaScript that runs on the interpreter
// without the Stopify runtime, so its cost can be compared against
// instrumented code on equal footing.
package baselines

import (
	"fmt"

	"repro/internal/anf"
	"repro/internal/ast"
	"repro/internal/desugar"
	"repro/internal/parser"
	"repro/internal/printer"
)

// cpsPrelude is the trampoline runtime: $invoke dispatches on whether the
// callee is CPS-converted (natives are called directly and their result
// bounced to the continuation), and $tramp bounces until a non-thunk value
// appears — which keeps the native stack flat, the standard fix for CPS on
// stackless-hostile platforms.
const cpsPrelude = `
function $mark(f) { f.$cps = true; return f; }
function $invoke(f, self, args, k) {
  if (f.$cps === true) {
    args.push(k);
    return { $b: true, fn: f, self: self, args: args };
  }
  return { $b: true, fn: k, self: null, args: [f.apply(self, args)] };
}
function $bounce(k, v) { return { $b: true, fn: k, self: null, args: [v] }; }
function $tramp(b) {
  while (b !== null && typeof b === "object" && b.$b === true) {
    b = b.fn.apply(b.self, b.args);
  }
  return b;
}
`

// CompileCPS converts source to continuation-passing style with a
// trampoline. It supports the control constructs the numeric benchmark
// subset uses (calls, if, while, plain statements); try/catch and labeled
// jumps across suspension points are rejected — this is a strawman, not a
// product, which is the paper's point.
func CompileCPS(source string) (string, error) {
	prog, err := parser.Parse(source)
	if err != nil {
		return "", err
	}
	nm := &desugar.Namer{}
	// Wrap in $cpsmain so top-level statements have a function context.
	wrapped := &ast.Program{Body: []ast.Stmt{
		&ast.FuncDecl{Fn: &ast.Func{Name: "$cpsmain", Body: prog.Body}},
	}}
	desugar.Apply(wrapped, desugar.Options{}, nm)
	anf.Normalize(wrapped)

	c := &cpsCtx{nm: nm}
	var fns []*ast.Func
	ast.Walk(wrapped, func(n ast.Node) bool {
		if fn, ok := n.(*ast.Func); ok {
			fns = append(fns, fn)
		}
		return true
	})
	for _, fn := range fns {
		if err := c.convertFunc(fn); err != nil {
			return "", err
		}
	}

	out := cpsPrelude + printer.Print(wrapped) +
		"$cpsmain.$cps = true;\n" +
		"$tramp($invoke($cpsmain, undefined, [], function (v) { return v; }));\n"
	return out, nil
}

type cpsCtx struct {
	nm *desugar.Namer

	// Join targets for control flow crossing suspension points: labeled
	// blocks map to their end-join; the innermost converted loop maps
	// unlabeled break/continue to its join and head.
	labelJoins  map[string]string
	curLoopJoin string
	curLoopHead string
}

// convertFunc rewrites one function into CPS: an extra $cc parameter, every
// application a trampoline bounce, every return a bounce to $cc.
func (c *cpsCtx) convertFunc(fn *ast.Func) error {
	if c.labelJoins == nil {
		c.labelJoins = map[string]string{}
	}
	fn.Params = append(fn.Params, "$cc")
	body, err := c.stmts(fn.Body, retToCC())
	if err != nil {
		return fmt.Errorf("cps: function %s: %w", fn.Name, err)
	}
	// Mark functions created inside this body so $invoke dispatches right;
	// markers are inserted where functions are bound (see bindMarkers).
	fn.Body = body
	return nil
}

// retToCC is the continuation "return to caller".
func retToCC() []ast.Stmt {
	return []ast.Stmt{ast.Ret(ast.CallId("$bounce", ast.Id("$cc"), ast.Undef()))}
}

// stmts CPS-converts a statement list; rest is the already-converted
// continuation of the list.
func (c *cpsCtx) stmts(body []ast.Stmt, rest []ast.Stmt) ([]ast.Stmt, error) {
	out := rest
	for i := len(body) - 1; i >= 0; i-- {
		converted, err := c.stmt(body[i], out)
		if err != nil {
			return nil, err
		}
		out = converted
	}
	return out, nil
}

func (c *cpsCtx) stmt(s ast.Stmt, rest []ast.Stmt) ([]ast.Stmt, error) {
	switch n := s.(type) {
	case *ast.VarDecl:
		// Post-ANF: single declarator. A call initializer suspends.
		if len(n.Decls) == 1 {
			d := n.Decls[0]
			if call, ok := d.Init.(*ast.Call); ok {
				return c.callSite(ast.Id(d.Name), call, rest, true)
			}
			if _, ok := d.Init.(*ast.New); ok {
				return nil, fmt.Errorf("new-expressions are not supported by the CPS strawman")
			}
			c.markFuncInits(n)
		}
		return append([]ast.Stmt{n}, rest...), nil
	case *ast.ExprStmt:
		if a, ok := n.X.(*ast.Assign); ok {
			if call, isCall := a.Value.(*ast.Call); isCall {
				return c.callSite(a.Target, call, rest, false)
			}
			if _, isNew := a.Value.(*ast.New); isNew {
				return nil, fmt.Errorf("new-expressions are not supported by the CPS strawman")
			}
			if fnv, isFn := a.Value.(*ast.Func); isFn {
				a.Value = ast.CallId("$mark", fnv)
			}
		}
		return append([]ast.Stmt{n}, rest...), nil
	case *ast.Return:
		if call, ok := n.Arg.(*ast.Call); ok {
			inv, err := invokeExpr(call, ast.Id("$cc"))
			if err != nil {
				return nil, err
			}
			return []ast.Stmt{ast.Ret(inv)}, nil
		}
		arg := n.Arg
		if arg == nil {
			arg = ast.Undef()
		}
		return []ast.Stmt{ast.Ret(ast.CallId("$bounce", ast.Id("$cc"), arg))}, nil
	case *ast.Block:
		return c.stmts(n.Body, rest)
	case *ast.If:
		if !containsCalls(n) {
			// Pure branches may still return (bounce to $cc) or jump to a
			// converted loop or labeled block (bounce to its join).
			rewriteReturnsToBounce(n)
			c.rewriteJumpsToBounce(n)
			return append([]ast.Stmt{n}, rest...), nil
		}
		join := c.nm.Fresh("$j")
		joinBody := rest
		goJoin := ast.Ret(ast.CallId("$bounce", ast.Id(join), ast.Undef()))
		cons, err := c.stmts(blockStmts(n.Cons), []ast.Stmt{goJoin})
		if err != nil {
			return nil, err
		}
		var alt []ast.Stmt
		if n.Alt != nil {
			alt, err = c.stmts(blockStmts(n.Alt), []ast.Stmt{goJoin})
			if err != nil {
				return nil, err
			}
		} else {
			alt = []ast.Stmt{goJoin}
		}
		return []ast.Stmt{
			&ast.FuncDecl{Fn: &ast.Func{Name: join, Params: []string{}, Body: joinBody}},
			&ast.If{Test: n.Test, Cons: ast.BlockOf(cons...), Alt: ast.BlockOf(alt...)},
		}, nil
	case *ast.While:
		if !containsCalls(n) {
			rewriteReturnsToBounce(n)
			return append([]ast.Stmt{n}, rest...), nil
		}
		loop := c.nm.Fresh("$loop")
		join := c.nm.Fresh("$j")
		joinBody := rest
		goLoop := ast.Ret(ast.CallId("$bounce", ast.Id(loop), ast.Undef()))
		goJoin := ast.Ret(ast.CallId("$bounce", ast.Id(join), ast.Undef()))
		prevJoin, prevHead := c.curLoopJoin, c.curLoopHead
		c.curLoopJoin, c.curLoopHead = join, loop
		loopBody, err := c.stmts(blockStmts(n.Body), []ast.Stmt{goLoop})
		c.curLoopJoin, c.curLoopHead = prevJoin, prevHead
		if err != nil {
			return nil, err
		}
		loopFn := &ast.Func{Name: loop, Body: append([]ast.Stmt{
			ast.IfThen(ast.Not(n.Test), goJoin),
		}, loopBody...)}
		return []ast.Stmt{
			&ast.FuncDecl{Fn: &ast.Func{Name: join, Body: joinBody}},
			&ast.FuncDecl{Fn: loopFn},
			goLoop,
		}, nil
	case *ast.Break:
		if n.Label == "" {
			if c.curLoopJoin == "" {
				return append([]ast.Stmt{s}, rest...), nil
			}
			return []ast.Stmt{ast.Ret(ast.CallId("$bounce", ast.Id(c.curLoopJoin), ast.Undef()))}, nil
		}
		if join, ok := c.labelJoins[n.Label]; ok {
			return []ast.Stmt{ast.Ret(ast.CallId("$bounce", ast.Id(join), ast.Undef()))}, nil
		}
		return append([]ast.Stmt{s}, rest...), nil
	case *ast.Continue:
		if n.Label == "" && c.curLoopHead != "" {
			return []ast.Stmt{ast.Ret(ast.CallId("$bounce", ast.Id(c.curLoopHead), ast.Undef()))}, nil
		}
		return nil, fmt.Errorf("labeled continue across a CPS suspension point is not supported")
	case *ast.FuncDecl:
		marker := ast.ExprOf(ast.SetTo(ast.Dot(ast.Id(n.Fn.Name), "$cps"), ast.Boollit(true)))
		return append([]ast.Stmt{n, marker}, rest...), nil
	case *ast.Try:
		return nil, fmt.Errorf("try/catch is not supported by the CPS strawman")
	case *ast.Labeled:
		if !containsCalls(n.Body) {
			rewriteReturnsToBounce(n)
			return append([]ast.Stmt{n}, rest...), nil
		}
		join := c.nm.Fresh("$j")
		goJoin := ast.Ret(ast.CallId("$bounce", ast.Id(join), ast.Undef()))
		c.labelJoins[n.Label] = join
		converted, err := c.stmts(blockStmts(n.Body), []ast.Stmt{goJoin})
		delete(c.labelJoins, n.Label)
		if err != nil {
			return nil, err
		}
		out := []ast.Stmt{&ast.FuncDecl{Fn: &ast.Func{Name: join, Body: rest}}}
		return append(out, converted...), nil
	default:
		return append([]ast.Stmt{s}, rest...), nil
	}
}

// callSite converts `target = f(args)` into a trampoline bounce whose
// continuation stores the result and runs the rest.
func (c *cpsCtx) callSite(target ast.Expr, call *ast.Call, rest []ast.Stmt, declare bool) ([]ast.Stmt, error) {
	v := c.nm.Fresh("$v")
	var store ast.Stmt
	if id, ok := target.(*ast.Ident); ok && declare {
		store = ast.Var(id.Name, ast.Id(v))
	} else {
		store = ast.ExprOf(ast.SetTo(target, ast.Id(v)))
	}
	contBody := append([]ast.Stmt{store}, rest...)
	cont := &ast.Func{Name: c.nm.Fresh("$k"), Params: []string{v}, Body: contBody}
	inv, err := invokeExpr(call, cont)
	if err != nil {
		return nil, err
	}
	return []ast.Stmt{ast.Ret(inv)}, nil
}

// invokeExpr builds $invoke(f, this, [args], k).
func invokeExpr(call *ast.Call, k ast.Expr) (ast.Expr, error) {
	var fnExpr, selfExpr ast.Expr
	if m, ok := call.Callee.(*ast.Member); ok {
		selfExpr = m.X
		fnExpr = call.Callee
	} else {
		selfExpr = ast.Undef()
		fnExpr = call.Callee
	}
	return ast.CallId("$invoke", fnExpr, selfExpr, &ast.Array{Elems: call.Args}, k), nil
}

// markFuncInits wraps function-expression initializers with $mark.
func (c *cpsCtx) markFuncInits(decl *ast.VarDecl) {
	for i := range decl.Decls {
		if fn, ok := decl.Decls[i].Init.(*ast.Func); ok {
			decl.Decls[i].Init = ast.CallId("$mark", fn)
		}
	}
}

// rewriteJumpsToBounce converts break/continue inside a pure region that
// target a converted loop or labeled block into join bounces. Nested loops
// shield their own unlabeled jumps.
func (c *cpsCtx) rewriteJumpsToBounce(s ast.Stmt) {
	var walk func(st ast.Stmt, shielded bool) ast.Stmt
	walk = func(st ast.Stmt, shielded bool) ast.Stmt {
		switch n := st.(type) {
		case *ast.Break:
			if n.Label == "" {
				if !shielded && c.curLoopJoin != "" {
					return ast.Ret(ast.CallId("$bounce", ast.Id(c.curLoopJoin), ast.Undef()))
				}
				return n
			}
			if join, ok := c.labelJoins[n.Label]; ok {
				return ast.Ret(ast.CallId("$bounce", ast.Id(join), ast.Undef()))
			}
			return n
		case *ast.Continue:
			if n.Label == "" && !shielded && c.curLoopHead != "" {
				return ast.Ret(ast.CallId("$bounce", ast.Id(c.curLoopHead), ast.Undef()))
			}
			return n
		case *ast.Block:
			for i := range n.Body {
				n.Body[i] = walk(n.Body[i], shielded)
			}
			return n
		case *ast.If:
			n.Cons = walk(n.Cons, shielded)
			if n.Alt != nil {
				n.Alt = walk(n.Alt, shielded)
			}
			return n
		case *ast.While:
			n.Body = walk(n.Body, true)
			return n
		case *ast.Labeled:
			n.Body = walk(n.Body, shielded)
			return n
		default:
			return st
		}
	}
	walk(s, false)
}

// rewriteReturnsToBounce converts `return e` inside a pure (call-free)
// region to a trampoline bounce, without entering nested functions.
func rewriteReturnsToBounce(s ast.Stmt) {
	switch n := s.(type) {
	case *ast.Return:
		arg := n.Arg
		if arg == nil {
			arg = ast.Undef()
		}
		n.Arg = ast.CallId("$bounce", ast.Id("$cc"), arg)
	case *ast.Block:
		for _, st := range n.Body {
			rewriteReturnsToBounce(st)
		}
	case *ast.If:
		rewriteReturnsToBounce(n.Cons)
		if n.Alt != nil {
			rewriteReturnsToBounce(n.Alt)
		}
	case *ast.While:
		rewriteReturnsToBounce(n.Body)
	case *ast.Labeled:
		rewriteReturnsToBounce(n.Body)
	}
}

func blockStmts(s ast.Stmt) []ast.Stmt {
	if b, ok := s.(*ast.Block); ok {
		return b.Body
	}
	if s == nil {
		return nil
	}
	return []ast.Stmt{s}
}

func containsCalls(s ast.Stmt) bool {
	found := false
	ast.Walk(s, func(n ast.Node) bool {
		switch n.(type) {
		case *ast.Call, *ast.New:
			found = true
			return false
		case *ast.Func:
			return false
		}
		return !found
	})
	return found
}
