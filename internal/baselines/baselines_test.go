package baselines

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/eventloop"
)

func cfg() core.RunConfig {
	return core.RunConfig{Clock: eventloop.NewVirtualClock(), Seed: 1}
}

// strawmanCorpus is the numeric subset both strawmen support.
var strawmanCorpus = []string{
	`function fib(n) { if (n < 2) { return n; } return fib(n - 1) + fib(n - 2); }
	 console.log(fib(14));`,
	`function tak(x, y, z) {
	   if (y >= x) { return z; }
	   return tak(tak(x - 1, y, z), tak(y - 1, z, x), tak(z - 1, x, y));
	 }
	 console.log(tak(10, 5, 0));`,
	`function step(acc, i) { return acc + i * i; }
	 var acc = 0;
	 for (var i = 0; i < 200; i++) { acc = step(acc, i); }
	 console.log(acc);`,
	`function even(n) { if (n === 0) { return true; } return odd(n - 1); }
	 function odd(n) { if (n === 0) { return false; } return even(n - 1); }
	 console.log(even(100), odd(100));`,
	`function apply1(f, x) { return f(x); }
	 var dbl = function (v) { return v * 2; };
	 console.log(apply1(dbl, 21));`,
	`function abs(x) { if (x < 0) { return -x; } return x; }
	 var t = 0;
	 for (var i = -50; i < 50; i++) { t += abs(i); }
	 console.log(t);`,
	`console.log(Math.floor(3.9), Math.max(1, 2, 3));`,
}

func TestCPSPreservesSemantics(t *testing.T) {
	for _, src := range strawmanCorpus {
		want, err := core.RunRaw(src, cfg())
		if err != nil {
			t.Fatalf("raw: %v", err)
		}
		cpsSrc, err := CompileCPS(src)
		if err != nil {
			t.Fatalf("CompileCPS(%q): %v", src, err)
		}
		got, err := core.RunRaw(cpsSrc, cfg())
		if err != nil {
			t.Fatalf("cps run failed: %v\n--- transformed ---\n%s", err, cpsSrc)
		}
		if got != want {
			t.Errorf("cps changed semantics:\n%s\nraw: %q\ncps: %q", src, want, got)
		}
	}
}

func TestCPSKeepsStackFlat(t *testing.T) {
	// Deep non-tail-looking recursion via the trampoline must not overflow
	// a shallow native stack: the continuation chain lives on the heap.
	src := `
function count(n) { if (n === 0) { return 0; } return 1 + count(n - 1); }
console.log(count(200));`
	cpsSrc, err := CompileCPS(src)
	if err != nil {
		t.Fatal(err)
	}
	got, err := core.RunRaw(cpsSrc, cfg())
	if err != nil {
		t.Fatal(err)
	}
	if got != "200\n" {
		t.Errorf("got %q", got)
	}
}

func TestCPSRejectsUnsupported(t *testing.T) {
	for _, src := range []string{
		`try { f(); } catch (e) { }`,
		`function f() { return new Object(); } f();`,
	} {
		if _, err := CompileCPS(src); err == nil {
			t.Errorf("CompileCPS(%q) should be rejected by the strawman", src)
		}
	}
}

func TestGenPreservesSemantics(t *testing.T) {
	for _, src := range strawmanCorpus {
		want, err := core.RunRaw(src, cfg())
		if err != nil {
			t.Fatalf("raw: %v", err)
		}
		genSrc, err := CompileGen(src)
		if err != nil {
			t.Fatalf("CompileGen: %v", err)
		}
		got, err := core.RunRaw(genSrc, cfg())
		if err != nil {
			t.Fatalf("gen run failed: %v\n--- transformed ---\n%s", err, genSrc)
		}
		if got != want {
			t.Errorf("gen changed semantics:\n%s\nraw: %q\ngen: %q", src, want, got)
		}
	}
}

func TestSkulptPreservesSemantics(t *testing.T) {
	srcs := append(strawmanCorpus,
		`var o = { a: 1 }; o.a += 2; console.log(o.a);`,
		`try { throw new Error("x"); } catch (e) { console.log(e.message); }`,
	)
	for _, src := range srcs {
		want, err := core.RunRaw(src, cfg())
		if err != nil {
			t.Fatalf("raw: %v", err)
		}
		skSrc, err := CompileSkulpt(src)
		if err != nil {
			t.Fatalf("CompileSkulpt: %v", err)
		}
		got, err := core.RunRaw(skSrc, cfg())
		if err != nil {
			t.Fatalf("skulpt run failed: %v\n%s", err, skSrc)
		}
		if got != want {
			t.Errorf("skulpt changed semantics:\n%s\nraw: %q\nsk: %q", src, want, got)
		}
	}
}

func TestSkulptAddsDispatch(t *testing.T) {
	out, err := CompileSkulpt(`var x = 1 + 2 * 3;`)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "$sk_bin") {
		t.Error("skulpt transform should route arithmetic through $sk_bin")
	}
}
