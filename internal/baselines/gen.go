package baselines

import (
	"repro/internal/anf"
	"repro/internal/ast"
	"repro/internal/desugar"
	"repro/internal/parser"
	"repro/internal/printer"
)

// genPrelude supports the generator-style strawman: a converted function
// returns a generator object whose next() produces a {value, done} record;
// $gennext drives one-shot generators and passes native results through
// untouched.
const genPrelude = `
function $gennext(r) {
  if (r !== null && typeof r === "object" && r.$g === true) {
    return r.next().value;
  }
  return r;
}
`

// CompileGen models the second strawman of §3: implementing one-shot
// continuations with generators. Real generators turn every function into
// a generator factory and every call into .next() dispatch; the structural
// costs are a generator object and resumption closure per activation, a
// result record per return, and an extra dispatch call per application —
// which is exactly what this transform reproduces:
//
//	function f(a) { body }        =>  function f(a) {
//	                                    return { $g: true, next: function () { body' } };
//	                                  }
//	x = f(a)                      =>  x = $gennext(f(a))
//
// where body' wraps every return in a {value, done} record. `this` and
// `arguments` inside converted functions are not supported — it is a
// strawman for the numeric comparison of §3, not a product.
func CompileGen(source string) (string, error) {
	prog, err := parser.Parse(source)
	if err != nil {
		return "", err
	}
	nm := &desugar.Namer{}
	desugar.Apply(prog, desugar.Options{}, nm)
	anf.Normalize(prog)

	var fns []*ast.Func
	ast.Walk(prog, func(n ast.Node) bool {
		if fn, ok := n.(*ast.Func); ok {
			fns = append(fns, fn)
		}
		return true
	})
	for _, fn := range fns {
		genFunc(fn)
	}
	genUnwrapCalls(prog)
	return genPrelude + printer.Print(prog), nil
}

// genFunc turns the function into a generator factory: calling it
// allocates the generator object and the resumption closure; next() runs
// the original body.
func genFunc(fn *ast.Func) {
	genWrapReturns(fn.Body)
	body := append(fn.Body, ast.Ret(genRecord(ast.Undef())))
	next := &ast.Func{Body: body}
	genObj := &ast.Object{Props: []ast.Property{
		{Kind: ast.PropInit, Key: "$g", Value: ast.Boollit(true)},
		{Kind: ast.PropInit, Key: "next", Value: next},
	}}
	fn.Body = []ast.Stmt{ast.Ret(genObj)}
}

func genRecord(v ast.Expr) ast.Expr {
	return &ast.Object{Props: []ast.Property{
		{Kind: ast.PropInit, Key: "$gen", Value: ast.Boollit(true)},
		{Kind: ast.PropInit, Key: "done", Value: ast.Boollit(true)},
		{Kind: ast.PropInit, Key: "value", Value: v},
	}}
}

func genWrapReturns(body []ast.Stmt) {
	for _, s := range body {
		genWrapReturnStmt(s)
	}
}

func genWrapReturnStmt(s ast.Stmt) {
	switch n := s.(type) {
	case *ast.Return:
		arg := n.Arg
		if arg == nil {
			arg = ast.Undef()
		}
		if call, ok := arg.(*ast.Call); ok {
			n.Arg = genRecord(ast.CallId("$gennext", call))
			return
		}
		n.Arg = genRecord(arg)
	case *ast.Block:
		genWrapReturns(n.Body)
	case *ast.If:
		genWrapReturnStmt(n.Cons)
		if n.Alt != nil {
			genWrapReturnStmt(n.Alt)
		}
	case *ast.While:
		genWrapReturnStmt(n.Body)
	case *ast.Labeled:
		genWrapReturnStmt(n.Body)
	case *ast.Try:
		genWrapReturns(n.Block.Body)
		if n.Catch != nil {
			genWrapReturns(n.Catch.Body)
		}
		if n.Finally != nil {
			genWrapReturns(n.Finally.Body)
		}
	}
}

// genUnwrapCalls routes every named application through $gennext.
func genUnwrapCalls(prog *ast.Program) {
	var rewrite func(body []ast.Stmt)
	unwrap := func(e ast.Expr) ast.Expr {
		if call, ok := e.(*ast.Call); ok {
			if id, isId := call.Callee.(*ast.Ident); isId && (id.Name == "$gennext") {
				return e
			}
			return ast.CallId("$gennext", call)
		}
		return e
	}
	var doStmt func(s ast.Stmt)
	doStmt = func(s ast.Stmt) {
		switch n := s.(type) {
		case *ast.VarDecl:
			for i := range n.Decls {
				if n.Decls[i].Init != nil {
					n.Decls[i].Init = unwrap(n.Decls[i].Init)
				}
			}
		case *ast.ExprStmt:
			if a, ok := n.X.(*ast.Assign); ok {
				a.Value = unwrap(a.Value)
			}
		case *ast.Block:
			rewrite(n.Body)
		case *ast.If:
			doStmt(n.Cons)
			if n.Alt != nil {
				doStmt(n.Alt)
			}
		case *ast.While:
			doStmt(n.Body)
		case *ast.Labeled:
			doStmt(n.Body)
		case *ast.Try:
			rewrite(n.Block.Body)
			if n.Catch != nil {
				rewrite(n.Catch.Body)
			}
			if n.Finally != nil {
				rewrite(n.Finally.Body)
			}
		case *ast.FuncDecl:
			rewrite(n.Fn.Body)
		}
		// Reach call sites inside function expressions (including the next()
		// closures genFunc introduced).
		ast.Walk(s, func(node ast.Node) bool {
			if fn, ok := node.(*ast.Func); ok {
				rewrite(fn.Body)
				return false
			}
			return true
		})
	}
	rewrite = func(body []ast.Stmt) {
		for _, s := range body {
			doStmt(s)
		}
	}
	rewrite(prog.Body)
}
