package rt

import (
	"math"

	"repro/internal/instrument"
	"repro/internal/interp"
)

// installNatives defines the runtime primitives instrumented code calls.
func (r *R) installNatives() {
	in := r.In

	defineNative := func(name string, fn interp.NativeFunc) {
		in.DefineGlobal(name, interp.ObjectValue(in.NewNative(name, fn)))
	}

	// $C — Sitaram & Felleisen's unary control operator (§3): reify the
	// continuation, pass it to the argument, run the body in an empty
	// continuation.
	defineNative(instrument.CFn, func(in *interp.Interp, this interp.Value, args []interp.Value) (interp.Value, error) {
		if len(args) == 0 {
			return interp.Undefined, in.Throw("TypeError", "$C requires a function")
		}
		if in.InAtomic() {
			return interp.Undefined, in.Throw("Error", "cannot capture a continuation inside a native callback")
		}
		f := args[0]
		r.beginCapture(func(frames Frames) {
			k := r.makeContinuation(frames)
			r.runStep(func() (interp.Value, error) {
				return in.Call(f, interp.Undefined, []interp.Value{interp.ObjectValue(k)}, interp.Undefined)
			})
		})
		return r.captureReturn()
	})

	// $suspend — the maySuspend of Figure 6: estimate elapsed time and
	// yield to the event loop when δ has passed, a pause is requested, or
	// the deep-stack limit is hit.
	defineNative(instrument.SuspendFn, func(in *interp.Interp, this interp.Value, args []interp.Value) (interp.Value, error) {
		if r.mustKill.Load() {
			// Graceful termination (R.Kill): unwind with a plain Go error.
			// Unlike a capture this needs no instrumented unwinding — a Go
			// error propagates through any frame, native ones included, so
			// kill is not deferred by atomic sections.
			return interp.Undefined, r.killReason()
		}
		deepPressure := r.opts.DeepStacks && in.Depth() > r.opts.DeepLimit
		timeDue := r.est != nil && r.est.due()
		if !deepPressure && !timeDue && !r.mustPause.Load() {
			return interp.Undefined, nil
		}
		if in.InAtomic() {
			// Inside a native callback (sort comparator, valueOf from a raw
			// conversion): a continuation cannot unwind through the native
			// frame, so defer the yield to the next suspend point.
			return interp.Undefined, nil
		}
		if r.est != nil {
			r.est.reset()
		}
		r.Yields++
		aux := r.curAux
		r.beginCapture(func(frames Frames) {
			// Ledgered (snapshot.go): a yield's queued resume is part of
			// the program's serializable state, and the posted task parks
			// instead of resuming when a pause request is armed.
			r.postResume(frames, aux, 0)
		})
		return r.captureReturn()
	})

	// $bp — breakpoints and single-stepping (§5.2): called before every
	// statement when debugging is enabled, with the original source line.
	defineNative(instrument.BpFn, func(in *interp.Interp, this interp.Value, args []interp.Value) (interp.Value, error) {
		r.mu.Lock()
		if len(args) > 0 && args[0].IsNumber() {
			r.currentLine = int(args[0].Num())
		}
		line := r.currentLine
		hit := r.opts.Debug && (r.stepping || r.breakpoints[line])
		r.mu.Unlock()
		if !hit {
			return interp.Undefined, nil
		}
		if in.InAtomic() {
			return interp.Undefined, nil
		}
		aux := r.curAux
		r.beginCapture(func(frames Frames) {
			r.Loop.Post(func() {
				r.mu.Lock()
				r.paused = true
				r.savedK = frames
				r.savedAux = aux
				cb := r.onBreak
				r.mu.Unlock()
				if cb != nil {
					cb(line)
				}
			}, 0)
		})
		return r.captureReturn()
	})

	// setTimeout — Stopify-managed, shadowing the interpreter's raw
	// builtin: callbacks run under the driver (runStep), so yields,
	// pauses, kills, and quantum preemption work inside a timer callback
	// exactly as inside $main. The raw builtin calls the function
	// directly, which would strand a capture begun in the callback (the
	// unwound sentinel has no driver to land on). Completion of a
	// callback after the program finished is a no-op (finish is
	// idempotent); an error it raises then is dropped, as browsers drop
	// late uncaught exceptions.
	defineNative("setTimeout", func(in *interp.Interp, this interp.Value, args []interp.Value) (interp.Value, error) {
		if len(args) == 0 {
			return interp.Undefined, in.Throw("TypeError", "setTimeout requires a callback")
		}
		fn := args[0]
		delay := 0.0
		if len(args) > 1 {
			d, err := in.ToNumber(args[1])
			if err != nil {
				return interp.Undefined, err
			}
			delay = d
		}
		var extra []interp.Value
		if len(args) > 2 {
			extra = append([]interp.Value(nil), args[2:]...)
		}
		// Ledgered (snapshot.go): pending timers serialize as
		// (due-offset, callback, extra-args, handle) records.
		id := r.nextTimerID()
		r.postTimer(LedgerEntry{Fn: fn, Args: extra, TimerID: id}, delay)
		return interp.NumberValue(float64(id)), nil
	})

	// clearTimeout — shadows the interpreter's raw builtin with the
	// ledgered version: the cancellation marks the pending entry rather
	// than touching the loop, so it survives snapshot/restore.
	defineNative("clearTimeout", func(in *interp.Interp, this interp.Value, args []interp.Value) (interp.Value, error) {
		if len(args) == 0 {
			return interp.Undefined, nil
		}
		idf, err := in.ToNumber(args[0])
		if err != nil {
			return interp.Undefined, err
		}
		if idf == math.Trunc(idf) && idf >= 1 {
			r.cancelTimer(uint64(idf))
		}
		return interp.Undefined, nil
	})

	// Signal predicates used by instrumented catch clauses and exceptional
	// call-site handlers.
	defineNative(instrument.IsSigFn, func(in *interp.Interp, this interp.Value, args []interp.Value) (interp.Value, error) {
		if len(args) == 0 {
			return interp.False, nil
		}
		_, ok := isSignal(args[0])
		return interp.BoolValue(ok), nil
	})
	defineNative(instrument.IsCapFn, func(in *interp.Interp, this interp.Value, args []interp.Value) (interp.Value, error) {
		if len(args) == 0 {
			return interp.False, nil
		}
		o := args[0].Obj()
		return interp.BoolValue(o != nil && o.Class == classCapture), nil
	})

	// Getter-sub-language support (§4.3): raw, accessor-free property
	// access plus accessor lookup, so the $get/$set prelude can invoke user
	// getters as ordinary instrumented calls.
	defineNative("$lookupGetter", func(in *interp.Interp, this interp.Value, args []interp.Value) (interp.Value, error) {
		return lookupAccessor(in, args, false)
	})
	defineNative("$lookupSetter", func(in *interp.Interp, this interp.Value, args []interp.Value) (interp.Value, error) {
		return lookupAccessor(in, args, true)
	})
	defineNative("$rawGet", func(in *interp.Interp, this interp.Value, args []interp.Value) (interp.Value, error) {
		if len(args) < 2 {
			return interp.Undefined, nil
		}
		key, err := in.ToStringValue(args[1])
		if err != nil {
			return interp.Undefined, err
		}
		return in.RawGet(args[0], key)
	})
	defineNative("$rawSet", func(in *interp.Interp, this interp.Value, args []interp.Value) (interp.Value, error) {
		if len(args) < 3 {
			return interp.Undefined, nil
		}
		key, err := in.ToStringValue(args[1])
		if err != nil {
			return interp.Undefined, err
		}
		if err := in.SetMember(args[0], key, args[2]); err != nil {
			return interp.Undefined, err
		}
		return args[2], nil
	})

	// Bound-function support for the $construct prelude (§3.2): `new` on a
	// bound function must construct the ultimate target with the bound args
	// prepended and boundThis ignored, but the prelude's f.apply(o, args)
	// would substitute boundThis for the fresh object. $boundFn unwraps one
	// bound layer (undefined for ordinary functions) and $boundArgs prepends
	// that layer's bound args; the prelude loops until the target is plain
	// and only then allocates and applies. Both natives terminate trivially,
	// so they cannot strand a capture begun in the constructor body.
	defineNative("$boundFn", func(in *interp.Interp, this interp.Value, args []interp.Value) (interp.Value, error) {
		if len(args) == 0 {
			return interp.Undefined, nil
		}
		if o := args[0].Obj(); o != nil && o.Bound != nil {
			return o.Bound.Target, nil
		}
		return interp.Undefined, nil
	})
	defineNative("$boundArgs", func(in *interp.Interp, this interp.Value, args []interp.Value) (interp.Value, error) {
		if len(args) < 2 {
			return interp.Undefined, nil
		}
		o := args[0].Obj()
		rest := args[1].Obj()
		if o == nil || o.Bound == nil || rest == nil {
			return args[1], nil
		}
		all := make([]interp.Value, 0, len(o.Bound.Args)+len(rest.Elems))
		all = append(all, o.Bound.Args...)
		all = append(all, rest.Elems...)
		return interp.ObjectValue(in.NewArray(all)), nil
	})
}

// lookupAccessor finds a getter or setter on the prototype chain without
// invoking it. The walk itself lives in interp.LookupAccessor so it shares
// the interpreter's shape-aware path cache — property layout is a private
// concern of the interpreter now that objects are shape-and-slots backed.
func lookupAccessor(in *interp.Interp, args []interp.Value, setter bool) (interp.Value, error) {
	if len(args) < 2 {
		return interp.Undefined, nil
	}
	if !args[1].IsString() {
		return interp.Undefined, nil
	}
	return in.LookupAccessor(args[0], args[1].Str(), setter), nil
}
