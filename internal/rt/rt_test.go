package rt

import (
	"testing"

	"repro/internal/eventloop"
)

// ---------------------------------------------------------------------------
// Estimators (§5.1, Figure 6)
// ---------------------------------------------------------------------------

func TestExactEstimator(t *testing.T) {
	clock := eventloop.NewVirtualClock()
	e := &exactEst{clock: clock, delta: 100}
	if e.due() {
		t.Fatal("not due at t=0")
	}
	clock.Advance(99)
	if e.due() {
		t.Fatal("not due before δ")
	}
	clock.Advance(2)
	if !e.due() {
		t.Fatal("due after δ")
	}
	e.reset()
	if e.due() {
		t.Fatal("reset must restart the interval")
	}
}

func TestCountdownEstimator(t *testing.T) {
	e := &countdownEst{n: 5, counter: 5}
	fires := 0
	for i := 0; i < 20; i++ {
		if e.due() {
			fires++
			e.reset()
		}
	}
	if fires != 4 {
		t.Errorf("countdown(5) over 20 calls fired %d times, want 4", fires)
	}
}

// TestApproxEstimatorConvergence drives the sampling estimator with a
// simulated steady call rate and checks the interval between yields
// converges near δ — the property Figure 7 measures.
func TestApproxEstimatorConvergence(t *testing.T) {
	clock := eventloop.NewVirtualClock()
	e := newApproxEst(clock, 100, 25)
	const perMs = 50 // calls per virtual millisecond
	var intervals []float64
	last := clock.Now()
	calls := 0
	for clock.Now() < 5000 {
		calls++
		if calls%perMs == 0 {
			clock.Advance(1)
		}
		if e.due() {
			now := clock.Now()
			intervals = append(intervals, now-last)
			last = now
			e.reset()
		}
	}
	if len(intervals) < 10 {
		t.Fatalf("too few yields: %d", len(intervals))
	}
	// Skip the warmup, then require the steady-state mean near δ.
	tail := intervals[len(intervals)/2:]
	sum := 0.0
	for _, v := range tail {
		sum += v
	}
	mean := sum / float64(len(tail))
	if mean < 50 || mean > 200 {
		t.Errorf("steady-state interval %.1f ms, want ≈100 ms (intervals %v)", mean, tail)
	}
}

// TestApproxAdaptsToRateChange doubles the call rate mid-run; the estimator
// must re-converge instead of keeping the stale velocity (the failure mode
// of the countdown approach, §2).
func TestApproxAdaptsToRateChange(t *testing.T) {
	clock := eventloop.NewVirtualClock()
	e := newApproxEst(clock, 100, 25)
	measure := func(perMs int, untilMs float64) []float64 {
		var intervals []float64
		last := clock.Now()
		calls := 0
		for clock.Now() < untilMs {
			calls++
			if calls%perMs == 0 {
				clock.Advance(1)
			}
			if e.due() {
				intervals = append(intervals, clock.Now()-last)
				last = clock.Now()
				e.reset()
			}
		}
		return intervals
	}
	measure(40, 3000)
	fast := measure(400, 8000) // 10x the rate
	if len(fast) < 5 {
		t.Fatalf("too few yields after rate change: %d", len(fast))
	}
	tail := fast[len(fast)/2:]
	sum := 0.0
	for _, v := range tail {
		sum += v
	}
	mean := sum / float64(len(tail))
	if mean < 40 || mean > 250 {
		t.Errorf("after rate change interval %.1f ms, want ≈100 ms", mean)
	}
}

func TestEstimatorKindString(t *testing.T) {
	if Exact.String() != "exact" || Countdown.String() != "countdown" || Approx.String() != "approx" {
		t.Error("EstimatorKind.String")
	}
}
