package rt

import (
	"repro/internal/instrument"
	"repro/internal/interp"
)

// Snapshot support. A parked program is already first-class data — savedK
// plus everything reachable from it — except for one host-side leak: tasks
// sitting in the event loop are opaque Go closures. The runtime therefore
// keeps a ledger of every task *it* posts, as serializable descriptors
// (timer callbacks by Value, queued resumes by Frames), so a snapshot can
// enumerate the queue and a restore can rebuild it. A task the runtime did
// not post — a Blocking resume, a debugger $bp park — has no descriptor,
// and its presence pins the program unsnapshotable (the codec reports the
// mismatch as a typed error rather than silently dropping the task).

// TaskKind discriminates ledger entries.
type TaskKind uint8

const (
	// TaskTimer is a setTimeout callback: (callback Value, due offset).
	TaskTimer TaskKind = iota + 1
	// TaskResume is a queued continuation restore: a $suspend yield or an
	// external Resume that has been posted but has not run yet.
	TaskResume
)

// LedgerEntry describes one pending event-loop task in serializable form.
// In PendingTasks output, Due is an offset in milliseconds relative to the
// loop clock at the time of the call (clamped to ≥ 0); entries are ordered
// by original post order, which together with the loop's (due, seq) sort
// reproduces the source queue's FIFO-among-due ordering on restore.
type LedgerEntry struct {
	Kind   TaskKind
	Fn     interp.Value   // TaskTimer: the callback
	Args   []interp.Value // TaskTimer: extra setTimeout args, forwarded to Fn
	Frames Frames         // TaskResume: the continuation
	Aux    bool           // TaskResume: the turn tag to restore under
	Due    float64

	// TimerID is the guest-visible setTimeout handle (clearTimeout's key);
	// Cancelled marks a cleared timer whose queued loop task will fire as a
	// no-op. The entry stays in the ledger after clearTimeout — removing it
	// would desync Loop.Len() from the ledger and false-pin the snapshot —
	// so cancellation records ride the serialized pending-task list.
	TimerID   uint64
	Cancelled bool

	seq uint64
}

// postTimer posts a ledgered setTimeout callback task. The caller fills
// Fn/Args/TimerID (and Cancelled, when reposting a cleared timer from a
// snapshot).
func (r *R) postTimer(e LedgerEntry, delay float64) {
	e.Kind = TaskTimer
	e.Aux = true
	fn, fnArgs := e.Fn, e.Args
	r.postTracked(e, delay, func(cancelled bool) {
		if cancelled {
			return
		}
		r.curAux = true
		r.runStep(func() (interp.Value, error) {
			return r.In.Call(fn, interp.Undefined, fnArgs, interp.Undefined)
		})
	})
}

// postResume posts a ledgered continuation-restore task. The task honors a
// pause request that arrived while it was queued by parking instead of
// running — the same semantics as the $suspend yield it usually is.
func (r *R) postResume(frames Frames, aux bool, delay float64) {
	r.postTracked(LedgerEntry{Kind: TaskResume, Frames: frames, Aux: aux}, delay, func(bool) {
		if r.mustPause.Load() {
			r.mustPause.Store(false)
			r.mu.Lock()
			if kerr := r.killErr; kerr != nil {
				// A kill arrived while this resume was queued. Parking now
				// would strand it: no guest code runs while parked, and
				// Kill's synchronous paused-finish path already ran before
				// we flipped paused back on. Finish here instead.
				r.paused = false
				r.savedK = nil
				r.mu.Unlock()
				r.finish(interp.Undefined, kerr)
				return
			}
			r.paused = true
			r.savedK = frames
			r.savedAux = aux
			cb := r.onPause
			r.mu.Unlock()
			if cb != nil {
				cb()
			}
			return
		}
		r.curAux = aux
		r.startRestore(frames, interp.Undefined, nil)
	})
}

// postTracked records e in the ledger, posts run, and removes the entry
// when the task starts. Due is recorded absolute (loop-clock domain) and
// converted to an offset by PendingTasks. The entry's Cancelled flag —
// which clearTimeout may set while the task is queued — is read under mu at
// fire time and handed to run.
func (r *R) postTracked(e LedgerEntry, delay float64, run func(cancelled bool)) {
	if delay < 0 {
		delay = 0
	}
	r.mu.Lock()
	r.ledgerSeq++
	id := r.ledgerSeq
	e.seq = id
	e.Due = r.Loop.Clock.Now() + delay
	r.ledger[id] = &e
	r.mu.Unlock()
	r.Loop.Post(func() {
		r.mu.Lock()
		cancelled := r.ledger[id] != nil && r.ledger[id].Cancelled
		delete(r.ledger, id)
		r.mu.Unlock()
		run(cancelled)
	}, delay)
}

// nextTimerID issues the next guest-visible setTimeout handle (starting at
// 1, matching the raw interpreter's sequence exactly).
func (r *R) nextTimerID() uint64 {
	r.mu.Lock()
	r.timerSeq++
	id := r.timerSeq
	r.mu.Unlock()
	return id
}

// cancelTimer marks the pending timer with guest handle id cancelled; its
// queued loop task fires as a no-op. Unknown or already-fired IDs are
// ignored, as clearTimeout is.
func (r *R) cancelTimer(id uint64) {
	r.mu.Lock()
	for _, e := range r.ledger {
		if e.Kind == TaskTimer && e.TimerID == id {
			e.Cancelled = true
		}
	}
	r.mu.Unlock()
}

// TimerSeq reports the last issued setTimeout handle, for the snapshot
// header; SetTimerSeq restores it so a restored guest keeps issuing unique,
// deterministic IDs.
func (r *R) TimerSeq() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.timerSeq
}

// SetTimerSeq seeds the setTimeout handle counter (snapshot restore).
func (r *R) SetTimerSeq(n uint64) {
	r.mu.Lock()
	r.timerSeq = n
	r.mu.Unlock()
}

// PendingTasks returns the ledgered pending tasks in post order, Due
// rewritten as a non-negative offset from the loop clock's current time.
// The caller compares len(PendingTasks()) against Loop.Len() to detect
// unledgered (host-posted, unsnapshotable) tasks.
func (r *R) PendingTasks() []LedgerEntry {
	now := r.Loop.Clock.Now()
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]LedgerEntry, 0, len(r.ledger))
	for _, e := range r.ledger {
		out = append(out, *e)
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j-1].seq > out[j].seq; j-- {
			out[j-1], out[j] = out[j], out[j-1]
		}
	}
	for i := range out {
		if off := out[i].Due - now; off > 0 {
			out[i].Due = off
		} else {
			out[i].Due = 0
		}
	}
	return out
}

// RepostLedger rebuilds a snapshot's pending-task queue in a restored
// runtime, in original post order. elapsedMs is wall time that passed
// between snapshot and restore: timer due-offsets shrink by it (never below
// zero), so a parked guest's timers fire on schedule rather than restarting
// their full delay.
func (r *R) RepostLedger(entries []LedgerEntry, elapsedMs float64) {
	for _, e := range entries {
		delay := e.Due - elapsedMs
		if delay < 0 {
			delay = 0
		}
		switch e.Kind {
		case TaskTimer:
			// Reposted wholesale, cancellation flag included: a cancelled
			// timer stays a ledgered no-op until its due time, exactly as in
			// the source process.
			r.postTimer(e, delay)
		case TaskResume:
			r.postResume(e.Frames, e.Aux, delay)
		}
	}
}

// ParkState is the runtime's serializable control state, read at a
// quiescent point (parked, or between turns with no guest code running).
type ParkState struct {
	Paused bool   // parked at a yield: Frames/Aux hold the saved turn
	Frames Frames // savedK (nil unless Paused)
	Aux    bool
	Done   bool // main chain completed (the loop may still drain timers)
}

// SnapshotState reads the park state. The caller guarantees quiescence (no
// goroutine is executing guest code); mu covers the control fields.
func (r *R) SnapshotState() ParkState {
	r.mu.Lock()
	defer r.mu.Unlock()
	return ParkState{Paused: r.paused, Frames: r.savedK, Aux: r.savedAux, Done: r.done}
}

// AdoptParked places a freshly built runtime into a decoded snapshot's
// control state: paused with a saved continuation, mid-flight between
// turns, or done (main finished, timers draining). Run is never called on
// an adopted runtime — the caller reposts the ledger and either Resumes (if
// paused) or just pumps the loop.
func (r *R) AdoptParked(st ParkState, onDone func(interp.Value, error)) {
	r.contain = true
	r.mu.Lock()
	r.onDone = onDone
	r.done = st.Done
	r.paused = st.Paused
	r.savedK = st.Frames
	r.savedAux = st.Aux
	r.mu.Unlock()
}

// NewBottomNative builds the native that terminates a restored stack —
// behaviorally identical to the one bottomFrame installs, so a decoded
// bottom frame re-enters exactly like the original.
func (r *R) NewBottomNative() *interp.Object {
	return r.In.NewNative("$bottom", r.bottomReenter)
}

// RestoredContinuation allocates a continuation object whose frames are
// supplied later, so the decoder can materialize the object first (other
// decoded values may reference it, including its own frames — continuation
// graphs are cyclic) and fill the frames once every node exists.
func (r *R) RestoredContinuation() (k *interp.Object, fill func(Frames)) {
	var frames Frames
	k = r.In.NewNative("continuation", func(in *interp.Interp, this interp.Value, args []interp.Value) (interp.Value, error) {
		v := interp.Undefined
		if len(args) > 0 {
			v = args[0]
		}
		return interp.Undefined, &interp.Thrown{Value: interp.ObjectValue(r.restoreSentinel(frames, v))}
	})
	return k, func(f Frames) {
		frames = f
		k.Extra = f
	}
}

// ModeNormal reports whether the runtime is in normal mode — the only mode
// a consistent snapshot can be taken in (capture/restore are transient
// within a turn and never survive to a quiescent point).
func (r *R) ModeNormal() bool { return r.mode == instrument.ModeNormal }
