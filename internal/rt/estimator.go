package rt

import "repro/internal/eventloop"

// EstimatorKind selects how elapsed time is estimated between yields (§5.1,
// Figure 6 and Figure 7).
type EstimatorKind int

// Estimator kinds.
const (
	// Exact checks the system clock on every maySuspend call — accurate but
	// needlessly expensive; it is what Skulpt does.
	Exact EstimatorKind = iota
	// Countdown yields after a fixed number of maySuspend calls, assuming a
	// fixed execution rate — cheap but wildly variable across benchmarks
	// and engines; it is what classic Pyret does (Figure 2c).
	Countdown
	// Approx samples the clock occasionally and estimates elapsed time from
	// the measured call rate (velocity) — Stopify's estimator (Figure 6).
	Approx
)

func (k EstimatorKind) String() string {
	switch k {
	case Exact:
		return "exact"
	case Countdown:
		return "countdown"
	case Approx:
		return "approx"
	}
	return "unknown"
}

// estimator decides when the yield interval δ has elapsed.
type estimator interface {
	// due is called once per maySuspend and reports whether to yield now.
	due() bool
	// reset marks a yield point.
	reset()
}

// exactEst reads the clock on every call.
type exactEst struct {
	clock eventloop.Clock
	delta float64
	last  float64
}

func (e *exactEst) due() bool { return e.clock.Now()-e.last >= e.delta }
func (e *exactEst) reset()    { e.last = e.clock.Now() }

// countdownEst yields every n calls.
type countdownEst struct {
	n       int
	counter int
}

func (e *countdownEst) due() bool {
	e.counter--
	return e.counter <= 0
}

func (e *countdownEst) reset() { e.counter = e.n }

// approxEst implements Figure 6: it counts calls (distance), occasionally
// samples the clock to maintain an estimate of the call rate (velocity, in
// calls per millisecond), and yields when distance/velocity reaches δ. The
// sampling period t controls estimate accuracy versus clock-read cost.
type approxEst struct {
	clock eventloop.Clock
	delta float64 // δ: desired yield interval, ms
	t     float64 // resample period, ms

	distance    float64 // calls since last yield
	sinceSample float64 // calls since last clock read
	counter     int     // calls until next clock read
	lastTime    float64
	velocity    float64 // calls per ms
}

func newApproxEst(clock eventloop.Clock, delta, t float64) *approxEst {
	return &approxEst{clock: clock, delta: delta, t: t, lastTime: clock.Now()}
}

func (e *approxEst) due() bool {
	e.distance++
	e.sinceSample++
	e.counter--
	if e.counter <= 0 {
		now := e.clock.Now()
		dt := now - e.lastTime
		if dt > 0 {
			e.velocity = e.sinceSample / dt
		} else {
			// The clock has not advanced: we are running faster than its
			// resolution. Scale the estimate up so sampling backs off.
			if e.velocity == 0 {
				e.velocity = 1
			} else {
				e.velocity *= 4
			}
		}
		e.lastTime = now
		e.sinceSample = 0
		next := int(e.t * e.velocity)
		if next < 1 {
			next = 1
		}
		if next > 1<<20 {
			next = 1 << 20
		}
		e.counter = next
	}
	return e.velocity > 0 && e.distance/e.velocity >= e.delta
}

func (e *approxEst) reset() { e.distance = 0 }
