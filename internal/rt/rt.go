// Package rt is the Stopify runtime system: the driver loop that manages
// the normal/capture/restore execution modes (§3.1), first-class
// continuation values, the elapsed-time estimators of §5.1, pause/resume
// and breakpoints (§5.2), simulated blocking calls, and segmented restore —
// the mechanism behind deep stacks (§5.2 and DESIGN.md §4.4).
//
// Instrumented programs talk to the runtime through the JS globals $mode,
// $stack, $rstack and $shadow, and through the natives $C, $suspend, $bp,
// $isSig and $isCap installed by New.
package rt

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/eventloop"
	"repro/internal/instrument"
	"repro/internal/interp"
)

// ErrKilled reports a program that was gracefully terminated from outside
// (R.Kill): execution stopped at a yield point and unwound without running
// any further guest code. It is a plain Go error, not a Thrown, so guest
// try/catch can never intercept it — the uncatchability the paper's
// graceful termination promises (§2).
var ErrKilled = errors.New("stopify: killed")

// Options configures a runtime instance.
type Options struct {
	Strategy instrument.Strategy

	// YieldIntervalMs is δ: the desired interval between yields to the
	// event loop. Zero or negative disables time-based yielding (the
	// program still yields for pauses, breakpoints, and deep stacks).
	YieldIntervalMs float64
	Estimator       EstimatorKind
	// CountdownN is the fixed call budget for the countdown estimator.
	CountdownN int
	// SampleMs is the approx estimator's clock-sampling period t.
	SampleMs float64

	// DeepStacks bounds native stack growth by capturing and resuming on an
	// empty stack whenever the interpreter depth exceeds DeepLimit.
	DeepStacks bool
	DeepLimit  int

	// RestoreSegment caps how many frames are re-entered per native stack
	// excursion during restore; pending outer frames are restored lazily as
	// inner segments return. Zero picks a limit from the engine stack.
	RestoreSegment int

	// Debug enables $bp: breakpoints and single-stepping.
	Debug bool
}

// Frames is a reified continuation: canonical order holds the bottom frame
// (which ends restoration) at index 0 and the outermost caller last.
type Frames []interp.Value

// R is one runtime instance, bound to an interpreter realm and event loop.
type R struct {
	In   *interp.Interp
	Loop *eventloop.Loop

	opts Options
	mode string

	stackObj  *interp.Object // $stack: capture-order frames (checked/exceptional)
	rstackObj *interp.Object // $rstack: frames being re-entered
	shadowObj *interp.Object // $shadow: eager live stack

	onCaptureAction func(Frames)
	pendingFrames   Frames // eager capture's precomputed canonical frames
	pendingOuter    Frames // outer segments awaiting lazy restore
	restoreValue    interp.Value
	restoreThrow    error
	restoreDepth    int  // live startRestore nesting on the Go stack
	contain         bool // adopted from a snapshot: recover guest-turn panics

	est estimator

	// mu guards the externally touchable control state: everything the
	// pause/kill/breakpoint API reads or writes from goroutines other than
	// the one pumping the event loop. The execution-mode machinery above
	// ($mode, $stack, capture/restore state) is deliberately outside it —
	// only the executing goroutine touches it, and a yield point is the
	// only place control transfers.
	mu        sync.Mutex
	mustPause atomic.Bool
	mustKill  atomic.Bool
	killErr   error // under mu; the reason Kill recorded
	paused    bool  // under mu
	savedK    Frames
	savedAux  bool // under mu; the parked turn's aux tag
	onPause   func()

	// curAux tags the turn the driver is currently executing. The main
	// chain — Run's initial task and every capture/restore descended from
	// it — is aux=false; its completion finishes the program. Timer
	// callbacks (the rt setTimeout) are aux=true turns: they share the
	// whole capture/restore machinery, but completing one just ends that
	// turn. The tag rides along through yields: a capture taken inside a
	// callback restores as a callback. (A continuation captured on one
	// chain and applied on the other keeps the applying turn's tag — an
	// exotic case; first-class cross-turn control transfer has no single
	// right answer here.) Only the pumping goroutine touches it.
	curAux bool

	breakpoints map[int]bool
	stepping    bool
	currentLine int
	onBreak     func(line int)

	onDone func(interp.Value, error)
	done   bool // under mu

	// ledger tracks runtime-posted pending tasks in serializable form
	// (snapshot.go); under mu.
	ledger    map[uint64]*LedgerEntry
	ledgerSeq uint64

	// timerSeq numbers guest setTimeout calls (IDs start at 1). It is a
	// separate counter from ledgerSeq — which also counts $suspend resume
	// posts — so the ID sequence a stopified guest observes matches the
	// raw interpreter's exactly. Serialized in the snapshot header and
	// restored via SetTimerSeq, keeping IDs unique across a park. Under mu.
	timerSeq uint64

	// Stats observable by the harness.
	Yields   int
	Captures int
	Restores int
}

// New installs the runtime globals and natives into in and returns the
// runtime.
func New(in *interp.Interp, loop *eventloop.Loop, opts Options) *R {
	if opts.DeepLimit <= 0 {
		opts.DeepLimit = in.MaxDepth() / 2
	}
	if opts.RestoreSegment <= 0 {
		// Each restored frame costs about two native frames (the reenter
		// thunk plus the function itself), so a segment must leave the
		// resumed program plenty of headroom below DeepLimit — otherwise a
		// deep recursion would re-capture after every few calls.
		opts.RestoreSegment = in.MaxDepth() / 8
		if opts.RestoreSegment < 16 {
			opts.RestoreSegment = 16
		}
	}
	if opts.SampleMs <= 0 {
		opts.SampleMs = 25
	}
	if opts.CountdownN <= 0 {
		opts.CountdownN = 100000
	}
	r := &R{In: in, Loop: loop, opts: opts, breakpoints: map[int]bool{}, ledger: map[uint64]*LedgerEntry{}}
	r.stackObj = in.NewArray(nil)
	r.rstackObj = in.NewArray(nil)
	r.shadowObj = in.NewArray(nil)
	in.DefineGlobal(instrument.StackVar, interp.ObjectValue(r.stackObj))
	in.DefineGlobal(instrument.RStackVar, interp.ObjectValue(r.rstackObj))
	in.DefineGlobal(instrument.ShadowVar, interp.ObjectValue(r.shadowObj))
	r.setMode(instrument.ModeNormal)

	if opts.YieldIntervalMs > 0 {
		switch opts.Estimator {
		case Exact:
			r.est = &exactEst{clock: in.Clock, delta: opts.YieldIntervalMs, last: in.Clock.Now()}
		case Countdown:
			r.est = &countdownEst{n: opts.CountdownN, counter: opts.CountdownN}
		default:
			r.est = newApproxEst(in.Clock, opts.YieldIntervalMs, opts.SampleMs)
		}
	}

	r.installNatives()
	return r
}

func (r *R) setMode(m string) {
	r.mode = m
	r.In.DefineGlobal(instrument.ModeVar, interp.StringValue(m))
	// Tag profiler samples taken while the instrumentation unwinds or
	// rebuilds stacks: those statements are continuation machinery, not the
	// user frame that happens to be executing, and the profile should say so.
	switch m {
	case instrument.ModeNormal:
		r.In.SetProfilePhase("")
	default:
		r.In.SetProfilePhase("(" + m + ")")
	}
}

// Mode reports the current execution mode (for tests).
func (r *R) Mode() string { return r.mode }

// Done reports whether the program has completed. Safe from any goroutine.
func (r *R) Done() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.done
}

// Paused reports whether the program is suspended awaiting Resume. Safe
// from any goroutine.
func (r *R) Paused() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.paused
}

// CurrentLine reports the last $bp line executed (original source line).
func (r *R) CurrentLine() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.currentLine
}

// ---------------------------------------------------------------------------
// Signals and continuation values
// ---------------------------------------------------------------------------

const (
	classCapture = "CaptureSignal"
	classRestore = "RestoreSignal"
)

type restoreData struct {
	frames Frames
	value  interp.Value
}

func (r *R) captureSentinel() *interp.Object {
	return &interp.Object{Class: classCapture}
}

func (r *R) restoreSentinel(frames Frames, v interp.Value) *interp.Object {
	return &interp.Object{Class: classRestore, Extra: &restoreData{frames: frames, value: v}}
}

func isSignal(v interp.Value) (*interp.Object, bool) {
	o := v.Obj()
	if o == nil {
		return nil, false
	}
	if o.Class == classCapture || o.Class == classRestore {
		return o, true
	}
	return nil, false
}

// makeContinuation wraps frames as a callable JS value: applying it aborts
// the current continuation (by throwing a restore sentinel the driver
// catches) and reinstates the saved one (§3).
func (r *R) makeContinuation(frames Frames) *interp.Object {
	k := r.In.NewNative("continuation", func(in *interp.Interp, this interp.Value, args []interp.Value) (interp.Value, error) {
		v := interp.Undefined
		if len(args) > 0 {
			v = args[0]
		}
		return interp.Undefined, &interp.Thrown{Value: interp.ObjectValue(r.restoreSentinel(frames, v))}
	})
	k.Extra = frames
	return k
}

// ContinuationFrames extracts the frames from a continuation value made by
// makeContinuation (used by the blocking API and tests).
func ContinuationFrames(k *interp.Object) (Frames, bool) {
	f, ok := k.Extra.(Frames)
	return f, ok
}

// bottomFrame builds the frame that terminates restoration: re-entering it
// flips execution back to normal mode and produces the restore value (or
// re-raises a pending exception when a segment is resumed in throw mode).
func (r *R) bottomFrame() *interp.Object {
	frame := r.In.NewPlainObject()
	frame.SetOwn("label", interp.NumberValue(0))
	frame.SetOwn("reenter", interp.ObjectValue(r.In.NewNative("$bottom", r.bottomReenter)))
	return frame
}

// bottomReenter is the $bottom native's body, shared with the snapshot
// decoder (NewBottomNative) so decoded bottom frames behave identically.
func (r *R) bottomReenter(in *interp.Interp, this interp.Value, args []interp.Value) (interp.Value, error) {
	if n := len(r.rstackObj.Elems); n > 0 {
		r.rstackObj.Elems = r.rstackObj.Elems[:n-1]
	}
	r.setMode(instrument.ModeNormal)
	if r.restoreThrow != nil {
		t := r.restoreThrow
		r.restoreThrow = nil
		return interp.Undefined, t
	}
	return r.restoreValue, nil
}

// ---------------------------------------------------------------------------
// Capture
// ---------------------------------------------------------------------------

// beginCapture arms a capture: it records what to do with the continuation
// once the stack has unwound, and prepares the strategy-specific state. The
// caller (a native invoked from instrumented code) then returns normally
// (checked) or returns the capture sentinel as a throw (exceptional/eager).
func (r *R) beginCapture(onCapture func(Frames)) {
	r.Captures++
	r.onCaptureAction = onCapture
	switch r.opts.Strategy {
	case instrument.Eager:
		// The shadow stack is already materialized: canonicalize now.
		frames := make(Frames, 0, len(r.shadowObj.Elems)+1)
		frames = append(frames, interp.ObjectValue(r.bottomFrame()))
		for i := len(r.shadowObj.Elems) - 1; i >= 0; i-- {
			frames = append(frames, r.shadowObj.Elems[i])
		}
		r.pendingFrames = frames
		r.setMode(instrument.ModeCapture)
	default:
		// Unwinding code pushes frames innermost-first after the bottom.
		r.stackObj.Elems = append(r.stackObj.Elems[:0], interp.ObjectValue(r.bottomFrame()))
		r.setMode(instrument.ModeCapture)
	}
}

// captureReturn produces the value/error a capturing native returns so the
// unwind proceeds per strategy.
func (r *R) captureReturn() (interp.Value, error) {
	if r.opts.Strategy == instrument.Checked {
		return interp.Undefined, nil
	}
	return interp.Undefined, &interp.Thrown{Value: interp.ObjectValue(r.captureSentinel())}
}

// finishCapture runs once the stack has fully unwound to the driver: it
// assembles the canonical continuation (including any outer segments still
// pending from a segmented restore) and hands it to the armed action.
func (r *R) finishCapture() {
	var frames Frames
	if r.opts.Strategy == instrument.Eager {
		frames = r.pendingFrames
		r.pendingFrames = nil
	} else {
		frames = append(Frames{}, r.stackObj.Elems...)
	}
	frames = append(frames, r.pendingOuter...)
	r.pendingOuter = nil
	r.stackObj.Elems = nil
	r.shadowObj.Elems = r.shadowObj.Elems[:0]
	r.setMode(instrument.ModeNormal)
	act := r.onCaptureAction
	r.onCaptureAction = nil
	act(frames)
}

// ---------------------------------------------------------------------------
// Restore (with segmentation — deep stacks)
// ---------------------------------------------------------------------------

// maxRestoreDepth bounds how deep startRestore may nest on the Go stack.
// Restores recurse through afterStep (segmented restores and continuation
// applications within one turn), and a cyclic continuation — constructible
// only from a corrupt snapshot blob, since guests cannot forge Frames —
// would otherwise recurse forever without consuming guest steps, overflowing
// the engine stack before MaxSteps or the preemption watchdog can act.
const maxRestoreDepth = 32768

// startRestore reinstates a continuation. Only the innermost RestoreSegment
// frames are re-entered on the native stack; outer frames wait in
// pendingOuter and are restored as inner segments return (DESIGN.md §4.4).
func (r *R) startRestore(frames Frames, v interp.Value, throwErr error) {
	if len(frames) == 0 {
		r.afterStep(v, throwErr)
		return
	}
	if r.restoreDepth >= maxRestoreDepth {
		r.finish(interp.Undefined, r.In.Throw("Error", "continuation restore depth exceeded (cyclic or corrupt continuation)"))
		return
	}
	r.restoreDepth++
	defer func() { r.restoreDepth-- }()
	r.Restores++
	r.stackObj.Elems = nil
	r.shadowObj.Elems = r.shadowObj.Elems[:0]
	seg := frames
	if len(frames) > r.opts.RestoreSegment {
		seg = frames[:r.opts.RestoreSegment]
		r.pendingOuter = append(append(Frames{}, frames[r.opts.RestoreSegment:]...), r.pendingOuter...)
	}
	r.restoreValue = v
	r.restoreThrow = throwErr
	r.rstackObj.Elems = append(r.rstackObj.Elems[:0], seg...)
	r.setMode(instrument.ModeRestore)

	top := seg[len(seg)-1]
	if !top.IsObject() {
		r.finish(interp.Undefined, r.In.Throw("Error", "corrupt continuation frame"))
		return
	}
	reenter, err := r.In.GetMember(top, "reenter")
	if err != nil {
		r.finish(interp.Undefined, err)
		return
	}
	r.runStep(func() (interp.Value, error) {
		return r.In.Call(reenter, interp.Undefined, nil, interp.Undefined)
	})
}

// continueSegments resumes the next pending outer segment with the inner
// segment's completion (a value or an exception).
func (r *R) continueSegments(v interp.Value, throwErr error) {
	frames := append(Frames{interp.ObjectValue(r.bottomFrame())}, r.pendingOuter...)
	r.pendingOuter = nil
	r.startRestore(frames, v, throwErr)
}

// ---------------------------------------------------------------------------
// Driver
// ---------------------------------------------------------------------------

// Run schedules fn (typically $main) on the event loop and reports the
// final result through onDone. The caller pumps the loop.
func (r *R) Run(fn interp.Value, onDone func(interp.Value, error)) {
	r.mu.Lock()
	r.onDone = onDone
	r.done = false
	r.mu.Unlock()
	r.Loop.Post(func() {
		r.curAux = false
		r.runStep(func() (interp.Value, error) {
			return r.In.Call(fn, interp.Undefined, nil, interp.Undefined)
		})
	}, 0)
}

// runStep executes one synchronous slice of the program and dispatches on
// how it ended. Restored runtimes additionally contain panics: a snapshot
// blob that decodes cleanly can still encode a semantically inconsistent
// graph (a closure paired with a wrong-layout environment chain, say) whose
// execution faults deep inside the interpreter, and Restore is documented
// as safe on untrusted cross-process blobs. Fresh runs keep panicking
// loudly — there a panic is an engine bug, not hostile input.
func (r *R) runStep(invoke func() (interp.Value, error)) {
	if r.contain {
		defer func() {
			if p := recover(); p != nil {
				r.finish(interp.Undefined, fmt.Errorf("stopify: internal fault in restored guest: %v", p))
			}
		}()
	}
	v, err := invoke()
	r.afterStep(v, err)
}

func (r *R) afterStep(v interp.Value, err error) {
	if err != nil {
		if t, ok := err.(*interp.Thrown); ok {
			if sig, isSig := isSignal(t.Value); isSig {
				switch sig.Class {
				case classCapture:
					r.finishCapture()
					return
				case classRestore:
					data := sig.Extra.(*restoreData)
					r.pendingOuter = nil // the applied continuation replaces it
					r.startRestore(data.frames, data.value, nil)
					return
				}
			}
			// An ordinary exception escaping this segment propagates into
			// the pending outer frames, or terminates the program.
			if len(r.pendingOuter) > 0 {
				r.continueSegments(interp.Undefined, t)
				return
			}
		}
		r.finish(interp.Undefined, err)
		return
	}
	if r.mode == instrument.ModeCapture {
		// Checked-return unwinding completed.
		r.finishCapture()
		return
	}
	if len(r.pendingOuter) > 0 {
		r.continueSegments(v, nil)
		return
	}
	if r.curAux {
		// An auxiliary turn (timer callback) completing just ends the
		// turn; only the main chain's completion finishes the program.
		return
	}
	r.finish(v, nil)
}

// finish completes the program (idempotent). It deliberately touches no
// execution-goroutine state: Kill may invoke it from a controller
// goroutine while an auxiliary timer turn still executes guest code, so
// anything outside mu (pendingOuter, mode, the interpreter) is off limits.
// pendingOuter needs no clearing here — it never survives a task (segments
// are consumed within afterStep, and a pause folds them into savedK), so
// a later aux turn cannot observe stale outer frames.
func (r *R) finish(v interp.Value, err error) {
	r.mu.Lock()
	if r.done {
		r.mu.Unlock()
		return
	}
	r.done = true
	cb := r.onDone
	r.mu.Unlock()
	if cb != nil {
		cb(v, err)
	}
}

// ---------------------------------------------------------------------------
// Execution-control API (§2, Figure 1)
// ---------------------------------------------------------------------------

// Pause requests suspension at the next yield point; onPause runs once the
// program has stopped. Safe to call from other goroutines.
func (r *R) Pause(onPause func()) {
	r.mu.Lock()
	r.onPause = onPause
	r.mu.Unlock()
	r.mustPause.Store(true)
}

// Resume restarts a paused program by posting the saved continuation's
// restoration to the event loop. Safe to call from other goroutines — the
// restore itself runs on whichever goroutine pumps the loop.
func (r *R) Resume() {
	r.mu.Lock()
	if !r.paused {
		r.mu.Unlock()
		return
	}
	r.paused = false
	frames := r.savedK
	aux := r.savedAux
	r.savedK = nil
	r.mu.Unlock()
	r.postResume(frames, aux, 0)
}

// Kill gracefully terminates the program: a running program stops at its
// next yield point and completes with reason (ErrKilled when reason is
// nil); a paused program is finished immediately, its saved continuation
// discarded. The error is not a JavaScript exception, so guest code cannot
// catch it. Safe from any goroutine; Kill after completion is a no-op.
func (r *R) Kill(reason error) {
	if reason == nil {
		reason = ErrKilled
	}
	r.mu.Lock()
	if r.done {
		r.mu.Unlock()
		return
	}
	if r.killErr == nil {
		r.killErr = reason
	}
	if r.paused {
		// Parked at a yield point: no goroutine is executing guest code,
		// so finish synchronously on the caller.
		r.paused = false
		r.savedK = nil
		reason = r.killErr
		r.mu.Unlock()
		r.finish(interp.Undefined, reason)
		return
	}
	r.mu.Unlock()
	r.mustKill.Store(true)
}

// killReason consumes the armed kill, returning its error.
func (r *R) killReason() error {
	r.mustKill.Store(false)
	r.mu.Lock()
	reason := r.killErr
	r.mu.Unlock()
	if reason == nil {
		reason = ErrKilled
	}
	return reason
}

// SetBreakpoint arms a breakpoint on an original source line.
func (r *R) SetBreakpoint(line int) {
	r.mu.Lock()
	r.breakpoints[line] = true
	r.mu.Unlock()
}

// ClearBreakpoint removes a breakpoint.
func (r *R) ClearBreakpoint(line int) {
	r.mu.Lock()
	delete(r.breakpoints, line)
	r.mu.Unlock()
}

// StepOnce resumes and stops again at the next statement.
func (r *R) StepOnce(onBreak func(line int)) {
	r.mu.Lock()
	r.stepping = true
	r.onBreak = onBreak
	r.mu.Unlock()
	r.Resume()
}

// OnBreak registers the breakpoint-hit callback.
func (r *R) OnBreak(fn func(line int)) {
	r.mu.Lock()
	r.onBreak = fn
	r.mu.Unlock()
}

// ResumeFromBreak continues after a breakpoint without stepping.
func (r *R) ResumeFromBreak() {
	r.mu.Lock()
	r.stepping = false
	r.mu.Unlock()
	r.Resume()
}

// Blocking registers a native that simulates a blocking operation (§5.2):
// calling name(args...) from JS suspends the program, invokes start with
// the arguments and a resume callback, and continues with the value passed
// to resume — which may happen after timers or external events.
func (r *R) Blocking(name string, start func(args []interp.Value, resume func(interp.Value))) {
	r.In.DefineGlobal(name, interp.ObjectValue(r.In.NewNative(name, func(in *interp.Interp, this interp.Value, args []interp.Value) (interp.Value, error) {
		saved := append([]interp.Value(nil), args...)
		aux := r.curAux
		r.beginCapture(func(frames Frames) {
			start(saved, func(result interp.Value) {
				r.Loop.Post(func() {
					r.curAux = aux
					r.startRestore(frames, result, nil)
				}, 0)
			})
		})
		return r.captureReturn()
	})))
}
