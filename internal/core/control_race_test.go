package core

import (
	"errors"
	"math/rand"
	"sync"
	"testing"
	"time"

	"repro/internal/rt"
)

// External-control stress (ISSUE 5 satellite): the AsyncRun control surface
// — Pause, Resume, Kill, Paused, Finished, Result — is documented safe from
// any goroutine while another goroutine pumps the event loop. These tests
// hammer that surface under the race detector; they also pin liveness (a
// kill always lands, a pause/resume storm never wedges the run).

// stressProgram spins long enough that control operations land mid-flight
// but terminates on its own if nobody kills it.
const stressProgram = `
var s = 0;
for (var i = 0; i < 400000; i++) { s = (s + i) % 65521; }
console.log("end", s);
`

// pump drives the run like Wait but keeps servicing the loop while the
// program is paused (so a concurrent Resume always finds a consumer) until
// the program finishes or the deadline passes.
func pump(t *testing.T, run *AsyncRun, deadline time.Time) {
	t.Helper()
	for !run.Finished() && time.Now().Before(deadline) {
		if !run.Loop.RunOne() {
			// Paused (or momentarily idle): yield the CPU briefly and
			// re-check; a controller goroutine owns progress now.
			time.Sleep(50 * time.Microsecond)
		}
	}
}

func TestControlRacePauseResumeKill(t *testing.T) {
	run := compileStress(t)
	run.Run(nil)

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		rng := rand.New(rand.NewSource(42))
		for {
			select {
			case <-stop:
				return
			default:
			}
			switch rng.Intn(5) {
			case 0:
				run.Pause(nil)
			case 1:
				run.Resume()
			case 2:
				run.Paused()
			case 3:
				run.Finished()
			case 4:
				run.Result()
			}
		}
	}()

	deadline := time.Now().Add(20 * time.Second)
	pumpUntil := time.Now().Add(150 * time.Millisecond)
	for !run.Finished() && time.Now().Before(pumpUntil) {
		if !run.Loop.RunOne() {
			time.Sleep(50 * time.Microsecond)
		}
	}
	// End the storm with a kill; whatever state the run is in, it must
	// terminate.
	run.Kill(nil)
	close(stop)
	wg.Wait()
	// A Resume posted by the storm after the kill is harmless, but the
	// pump must drain until completion sticks.
	pump(t, run, deadline)
	if !run.Finished() {
		t.Fatal("run wedged: neither finished nor killable after control storm")
	}
	if _, err := run.Result(); err != nil && !errors.Is(err, rt.ErrKilled) {
		t.Fatalf("unexpected completion error: %v", err)
	}
}

// TestControlRaceKillLandsWhileRunning: Kill from another goroutine
// terminates a spinning program promptly, and the uncatchable reason is
// reported.
func TestControlRaceKillLandsWhileRunning(t *testing.T) {
	c, err := Compile(`
var i = 0;
while (true) { i = i + 1; }
`, Defaults())
	if err != nil {
		t.Fatal(err)
	}
	run, err := c.NewRun(RunConfig{})
	if err != nil {
		t.Fatal(err)
	}
	// Tight quantum so the spin yields frequently even without a timer
	// estimator racing the wall clock.
	run.SetOnQuantum(func() { run.Pause(nil) })
	run.ArmQuantum(5000)
	run.Run(nil)

	reason := errors.New("evicted by test")
	go func() {
		time.Sleep(10 * time.Millisecond)
		run.Kill(reason)
	}()

	deadline := time.Now().Add(20 * time.Second)
	for !run.Finished() && time.Now().Before(deadline) {
		if run.Paused() {
			run.ArmQuantum(5000)
			run.Resume()
		}
		if !run.Loop.RunOne() {
			time.Sleep(50 * time.Microsecond)
		}
	}
	if !run.Finished() {
		t.Fatal("kill never landed on the spinning program")
	}
	if _, err := run.Result(); !errors.Is(err, reason) {
		t.Fatalf("err=%v, want the kill reason", err)
	}
}

// TestControlRacePausedKill: killing a parked program finalizes it
// synchronously from the controller goroutine.
func TestControlRacePausedKill(t *testing.T) {
	run := compileStress(t)
	run.Run(nil)
	parked := make(chan struct{})
	run.Pause(func() { close(parked) })
	deadline := time.Now().Add(20 * time.Second)
	for {
		select {
		case <-parked:
		default:
			if !run.Finished() && time.Now().Before(deadline) {
				run.Loop.RunOne()
				continue
			}
		}
		break
	}
	if run.Finished() {
		t.Skip("program completed before the pause landed")
	}
	done := make(chan struct{})
	go func() {
		run.Kill(nil) // controller goroutine, parked program
		close(done)
	}()
	<-done
	if !run.Finished() {
		t.Fatal("kill of a parked program did not finalize it")
	}
	if _, err := run.Result(); !errors.Is(err, rt.ErrKilled) {
		t.Fatalf("err=%v, want ErrKilled", err)
	}
}

// TestControlRaceKillPausedWithPendingTimer: Kill from a controller while
// the main chain is parked but an auxiliary timer callback still executes
// guest code on the pumping goroutine — the shape where a kill's
// synchronous finish must not touch execution state.
func TestControlRaceKillPausedWithPendingTimer(t *testing.T) {
	opts := Defaults()
	opts.YieldIntervalMs = 1
	c, err := Compile(`
setTimeout(function () {
  var w = 0;
  for (var i = 0; i < 200000; i++) { w += i; }
  console.log("cb", w);
}, 1);
var s = 0;
for (var i = 0; i < 400000; i++) { s += i; }
console.log("main", s);
`, opts)
	if err != nil {
		t.Fatal(err)
	}
	run, err := c.NewRun(RunConfig{})
	if err != nil {
		t.Fatal(err)
	}
	run.Run(nil)
	// Pause the main chain, then keep pumping so the timer callback runs
	// while a second goroutine kills the paused program.
	run.Pause(nil)
	killed := make(chan struct{})
	go func() {
		time.Sleep(3 * time.Millisecond)
		run.Kill(nil)
		close(killed)
	}()
	deadline := time.Now().Add(20 * time.Second)
	for !run.Finished() && time.Now().Before(deadline) {
		if !run.Loop.RunOne() {
			time.Sleep(50 * time.Microsecond)
		}
	}
	<-killed
	if !run.Finished() {
		t.Fatal("kill did not finalize the paused program")
	}
}

func compileStress(t *testing.T) *AsyncRun {
	t.Helper()
	opts := Defaults()
	// A short yield interval gives the pause storm plenty of landing
	// sites even on the approx estimator.
	opts.YieldIntervalMs = 1
	c, err := Compile(stressProgram, opts)
	if err != nil {
		t.Fatal(err)
	}
	run, err := c.NewRun(RunConfig{})
	if err != nil {
		t.Fatal(err)
	}
	return run
}
