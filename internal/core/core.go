// Package core is the Stopify compiler driver: it composes the pipeline
// (desugar → A-normalize → box → instrument), assembles the runtime
// prelude, and exposes the stopify() API of Figure 1 — compile a program
// with a sub-language specification and get back an AsyncRun with run,
// pause, resume, breakpoints, stepping, and blocking operations.
package core

import (
	"bytes"
	"fmt"
	"io"
	"os"
	"sync"

	"repro/internal/anf"
	"repro/internal/ast"
	"repro/internal/boxes"
	"repro/internal/desugar"
	"repro/internal/engine"
	"repro/internal/eventloop"
	"repro/internal/instrument"
	"repro/internal/interp"
	"repro/internal/parser"
	"repro/internal/printer"
	"repro/internal/resolve"
	"repro/internal/rt"
	"repro/internal/snapshot"
)

// Opts mirrors the stopify options object of Figure 1, plus host knobs
// (engine profile, clock, output).
type Opts struct {
	// Cont selects the continuation representation: "checked",
	// "exceptional", or "eager" (§3.2).
	Cont string
	// Ctor selects the constructor strategy: "direct" (desugar to
	// Object.create) or "wrapped" (dynamic new.target handling) (§3.2).
	Ctor string
	// Timer selects the elapsed-time estimator: "exact", "countdown", or
	// "approx" (§5.1).
	Timer string
	// YieldIntervalMs is δ; zero disables periodic yielding.
	YieldIntervalMs float64
	// CountdownN is the call budget for the countdown estimator.
	CountdownN int
	// DeepStacks simulates an arbitrarily deep stack (§5.2).
	DeepStacks bool
	// Implicits is the Impl column of Figure 5: "none", "plus", or "full".
	Implicits string
	// Args is the arity sub-language (§4.2): "none", "varargs", "mixed",
	// or "full".
	Args string
	// Getters instruments property access for user accessors (§4.3).
	Getters bool
	// Eval compiles eval'd strings with Stopify (§4.3); without it, eval
	// throws.
	Eval bool
	// Debug inserts $bp before every statement for breakpoints and
	// stepping (§5.2).
	Debug bool
	// Suspend inserts $suspend in every function and loop; disabling it
	// yields a continuation-only build (library/testing use).
	Suspend bool
	// SampleMs is the approx estimator's clock-sampling period t (§5.1);
	// zero picks the default.
	SampleMs float64
	// RestoreSegment caps frames re-entered per native stack excursion
	// during restore; zero picks a limit from the engine's stack size.
	RestoreSegment int
	// PerStatementGuards selects the paper's literal per-statement `if
	// (normal)` wrapping instead of grouped guards (ablation knob).
	PerStatementGuards bool
	// LegacyPrelude compiles the wire-v1 prelude text instead of the
	// current one. Restore sets it automatically for version-1 snapshot
	// blobs, and re-parks carry it forward in their headers: a blob's
	// saved continuations index prelude functions by code-table position,
	// so the restoring realm must compile the exact prelude source the
	// parking realm did. Fresh runs leave it off.
	LegacyPrelude bool
}

// Defaults returns the configuration used when callers leave Opts zeroed:
// checked continuations, desugared constructors, the approx estimator with
// a 100 ms yield interval, and the most restrictive sub-language.
func Defaults() Opts {
	return Opts{
		Cont:            "checked",
		Ctor:            "direct",
		Timer:           "approx",
		YieldIntervalMs: 100,
		Implicits:       "none",
		Args:            "none",
		Suspend:         true,
	}
}

func (o *Opts) normalize() error {
	def := Defaults()
	if o.Cont == "" {
		o.Cont = def.Cont
	}
	if o.Ctor == "" {
		o.Ctor = def.Ctor
	}
	if o.Timer == "" {
		o.Timer = def.Timer
	}
	if o.Implicits == "" {
		o.Implicits = def.Implicits
	}
	if o.Args == "" {
		o.Args = def.Args
	}
	switch o.Cont {
	case "checked", "exceptional", "eager":
	default:
		return fmt.Errorf("stopify: unknown continuation strategy %q", o.Cont)
	}
	switch o.Ctor {
	case "direct", "wrapped":
	default:
		return fmt.Errorf("stopify: unknown constructor strategy %q", o.Ctor)
	}
	switch o.Timer {
	case "exact", "countdown", "approx":
	default:
		return fmt.Errorf("stopify: unknown timer %q", o.Timer)
	}
	switch o.Implicits {
	case "none", "plus", "full":
	default:
		return fmt.Errorf("stopify: unknown implicits mode %q", o.Implicits)
	}
	switch o.Args {
	case "none", "varargs", "mixed", "full":
	default:
		return fmt.Errorf("stopify: unknown args mode %q", o.Args)
	}
	return nil
}

func (o Opts) strategy() instrument.Strategy {
	switch o.Cont {
	case "exceptional":
		return instrument.Exceptional
	case "eager":
		return instrument.Eager
	default:
		return instrument.Checked
	}
}

func (o Opts) argsMode() instrument.ArgsMode {
	switch o.Args {
	case "varargs":
		return instrument.ArgsVarargs
	case "mixed":
		return instrument.ArgsMixed
	case "full":
		return instrument.ArgsFull
	default:
		return instrument.ArgsNone
	}
}

func (o Opts) implicitsMode() desugar.ImplicitsMode {
	switch o.Implicits {
	case "plus":
		return desugar.ImplicitsPlus
	case "full":
		return desugar.ImplicitsFull
	default:
		return desugar.ImplicitsNone
	}
}

func (o Opts) estimator() rt.EstimatorKind {
	switch o.Timer {
	case "exact":
		return rt.Exact
	case "countdown":
		return rt.Countdown
	default:
		return rt.Approx
	}
}

// Compiled is the output of the Stopify compiler.
type Compiled struct {
	Prog *ast.Program
	Opts Opts

	// SourceText is the original source, retained so a snapshot can embed
	// it and a restoring process can recompile an identical program.
	SourceText string

	// SourceBytes and CompiledBytes measure code growth (§6.1).
	SourceBytes   int
	CompiledBytes int

	// codeTable is built lazily: only snapshot/restore needs it, and one
	// table serves every run of this compiled program.
	codeOnce sync.Once
	code     *snapshot.CodeTable
}

// codeTable returns the program's deterministic function/scope ID table.
func (c *Compiled) codeTable() *snapshot.CodeTable {
	c.codeOnce.Do(func() { c.code = snapshot.NewCodeTable(c.Prog) })
	return c.code
}

// Compile runs source through the full Stopify pipeline.
func Compile(source string, opts Opts) (*Compiled, error) {
	if err := opts.normalize(); err != nil {
		return nil, err
	}
	userProg, err := parser.Parse(source)
	if err != nil {
		return nil, err
	}
	nm := &desugar.Namer{}
	merged, err := compileProgram(userProg, opts, nm, "$main", true)
	if err != nil {
		return nil, err
	}
	c := &Compiled{
		Prog:        merged,
		Opts:        opts,
		SourceText:  source,
		SourceBytes: len(source),
	}
	c.CompiledBytes = len(printer.Print(merged))
	return c, nil
}

// compileProgram wraps user statements into a function named mainName,
// desugars, merges the prelude (when requested), normalizes, boxes, and
// instruments.
func compileProgram(userProg *ast.Program, opts Opts, nm *desugar.Namer, mainName string, withPrelude bool) (*ast.Program, error) {
	wrapped := &ast.Program{Body: []ast.Stmt{
		&ast.FuncDecl{Fn: &ast.Func{Name: mainName, Body: userProg.Body}},
	}}

	desugar.Apply(wrapped, desugar.Options{
		Implicits:   opts.implicitsMode(),
		Getters:     opts.Getters,
		CtorDesugar: opts.Ctor == "direct",
		ArgsFull:    opts.Args == "full",
		Suspend:     opts.Suspend,
		Breakpoints: opts.Debug,
	}, nm)

	var body []ast.Stmt
	if withPrelude {
		preludeProg, err := parser.Parse(preludeSource(opts))
		if err != nil {
			return nil, fmt.Errorf("stopify: internal prelude error: %w", err)
		}
		desugar.Apply(preludeProg, desugar.Options{}, nm)
		body = append(body, preludeProg.Body...)
	}
	body = append(body, wrapped.Body...)
	merged := &ast.Program{Body: body}

	anf.Normalize(merged)
	boxes.Box(merged)
	instrument.Apply(merged, instrument.Options{
		Strategy:           opts.strategy(),
		WrappedCtors:       opts.Ctor == "wrapped",
		Args:               opts.argsMode(),
		PerStatementGuards: opts.PerStatementGuards,
	})
	// Static scope resolution runs last, on the final tree the interpreter
	// will execute: every pass above is free to synthesize bindings, and the
	// annotations must describe exactly what runs.
	resolve.Program(merged)
	return merged, nil
}

// Source prints the compiled JavaScript.
func (c *Compiled) Source() string { return printer.Print(c.Prog) }

// Execution engine ("backend") names accepted by RunConfig.Backend and the
// STOPIFY_BACKEND environment variable.
const (
	// BackendTree is the tree-walking interpreter — the default.
	BackendTree = "tree"
	// BackendBytecode lowers resolved function bodies to flat bytecode
	// (internal/bytecode) and dispatches them through internal/interp's
	// fetch–execute loop; dynamic code (the global frame, direct eval
	// fragments, unresolved trees) stays on the tree-walker.
	BackendBytecode = "bytecode"
)

// RunConfig is the host environment for one execution.
type RunConfig struct {
	Engine *engine.Profile // nil: uniform test profile
	Clock  eventloop.Clock // nil: real clock
	Out    io.Writer       // nil: discard console output
	Seed   uint64          // Math.random seed

	// Backend selects the execution engine: BackendTree or
	// BackendBytecode. Empty consults the STOPIFY_BACKEND environment
	// variable and defaults to the tree-walker — which is how CI forces
	// its bytecode matrix leg without touching every call site.
	Backend string

	// MaxSteps aborts execution once the interpreter's statement counter
	// exceeds it (interp.ErrStepBudget); 0 means unlimited. The
	// differential fuzz harness uses it to bound both engines at the same
	// statement boundary.
	MaxSteps uint64

	// QuantumSteps arms a cooperative scheduling quantum: after that many
	// statements (counted at the same boundaries as MaxSteps, on both
	// engines) OnQuantum fires once. The hook is one-shot; re-arm it with
	// AsyncRun.ArmQuantum — which is what the supervisor does at the top
	// of every scheduling turn, making statement boundaries preemption
	// points. 0 disables.
	QuantumSteps uint64
	// OnQuantum is the quantum-expiry hook; it runs on the goroutine
	// executing the program. A scheduler's hook typically requests a
	// pause (AsyncRun.Pause), parking the program at its next yield
	// point.
	OnQuantum func()

	// MemBudgetBytes aborts execution with interp.ErrMemLimit once the
	// realm's allocation meter passes it; 0 means unmetered. The meter is
	// zeroed after the runtime prelude executes, so the budget measures the
	// guest program's own Value-graph growth, and — like MaxSteps — it is
	// cumulative across pause/resume.
	MemBudgetBytes uint64

	// ProfileEvery arms the guest-level sampling profiler: every that many
	// statements the interpreter samples the JS call stack and attributes
	// the interval to it (folded-stack accumulation; see
	// interp.StartProfile). 0 leaves profiling off; builds tagged
	// stopify_noprof compile the seam out and ignore this.
	ProfileEvery uint64
}

// useBytecode resolves the configured backend. Unknown names are an error:
// a typo in a CI matrix or benchmark flag should fail loudly, not silently
// measure the wrong engine.
func (cfg *RunConfig) useBytecode() (bool, error) {
	b := cfg.Backend
	if b == "" {
		b = os.Getenv("STOPIFY_BACKEND")
	}
	switch b {
	case "", BackendTree:
		return false, nil
	case BackendBytecode:
		return true, nil
	}
	return false, fmt.Errorf("stopify: unknown backend %q (want %q or %q)", b, BackendTree, BackendBytecode)
}

// AsyncRun is the run/pause/resume handle of Figure 1.
//
// Concurrency contract: exactly one goroutine at a time pumps the event
// loop (Wait, RunToCompletion, or manual Loop.RunOne) and owns the
// interpreter realm — In, and mutating methods like ArmQuantum, belong to
// it. The control surface — Pause, Resume, Kill, Paused, Finished, Result
// — is safe from any goroutine, which is what lets a supervisor (or a stop
// button on another thread) steer a running program from outside.
type AsyncRun struct {
	In   *interp.Interp
	Loop *eventloop.Loop
	RT   *rt.R

	compiled  *Compiled
	evalTurns int

	// reg and out support Snapshot: the host-object re-link table built at
	// realm construction, and the configured output sink (snapshots carry
	// console output by value when the sink can expose it).
	reg *snapshot.Registry
	out io.Writer

	mu       sync.Mutex
	result   interp.Value
	err      error
	finished bool
}

// NewRun instantiates an interpreter realm, runtime, and event loop for the
// compiled program.
func (c *Compiled) NewRun(cfg RunConfig) (*AsyncRun, error) {
	a, err := c.newRealm(cfg)
	if err != nil {
		return nil, err
	}
	// Define the prelude and $main.
	if err := a.In.RunProgram(c.Prog); err != nil {
		return nil, err
	}
	// The prelude's closures and tables are the runtime's fixed cost, not
	// the guest's: start the allocation meter at zero for $main.
	a.In.ResetMemMeter()
	return a, nil
}

// newRealm builds the interpreter realm, runtime, event loop, and host
// registry — everything up to (but not including) running the compiled
// program. NewRun then executes the program; Restore instead populates the
// realm from a snapshot blob. Both paths share this function so the
// pre-program host graph — what the snapshot registry indexes — is
// identical on the encoding and decoding sides.
func (c *Compiled) newRealm(cfg RunConfig) (*AsyncRun, error) {
	bc, err := cfg.useBytecode()
	if err != nil {
		return nil, err
	}
	clock := cfg.Clock
	if clock == nil {
		clock = eventloop.NewRealClock()
	}
	loop := eventloop.New(clock)
	in := interp.New(interp.Options{
		Engine:       cfg.Engine,
		Clock:        clock,
		Loop:         loop,
		Out:          cfg.Out,
		Seed:         cfg.Seed,
		Bytecode:     bc,
		MaxSteps:     cfg.MaxSteps,
		QuantumSteps: cfg.QuantumSteps,
		OnQuantum:    cfg.OnQuantum,
		MemBudget:    cfg.MemBudgetBytes,
		ProfileEvery: cfg.ProfileEvery,
	})
	runtime := rt.New(in, loop, rt.Options{
		Strategy:        c.Opts.strategy(),
		YieldIntervalMs: c.Opts.YieldIntervalMs,
		Estimator:       c.Opts.estimator(),
		CountdownN:      c.Opts.CountdownN,
		SampleMs:        c.Opts.SampleMs,
		DeepStacks:      c.Opts.DeepStacks,
		RestoreSegment:  c.Opts.RestoreSegment,
		Debug:           c.Opts.Debug,
	})
	a := &AsyncRun{In: in, Loop: loop, RT: runtime, compiled: c, out: cfg.Out}
	// The registry must be built here — after the interpreter and runtime
	// install their globals, before any guest code runs — so encoding and
	// decoding realms index the same host graph.
	a.reg = snapshot.NewRegistry(in)

	if c.Opts.Eval {
		opts := c.Opts
		in.EvalHook = func(src string) ([]ast.Stmt, error) {
			evalProg, err := parser.Parse(src)
			if err != nil {
				return nil, err
			}
			nm := &desugar.Namer{}
			evalMerged, err := compileProgram(evalProg, opts, nm, nm.Fresh("$eval"), false)
			if err != nil {
				return nil, err
			}
			// The compiled program is a single function declaration; define
			// it and invoke it immediately. Strict eval semantics: the code
			// sees only the global scope, and the immediate invocation must
			// terminate without capturing (the "T" sub-language of §4.3).
			fd := evalMerged.Body[0].(*ast.FuncDecl)
			return []ast.Stmt{
				fd,
				ast.ExprOf(ast.CallId(fd.Fn.Name)),
			}, nil
		}
	}

	return a, nil
}

// Run starts the program; onDone (optional) observes completion. The
// caller drives the event loop (or uses Wait).
func (a *AsyncRun) Run(onDone func()) {
	mainFn, ok := a.In.Global.Lookup("$main")
	if !ok {
		a.mu.Lock()
		a.finished = true
		a.err = fmt.Errorf("stopify: $main is not defined")
		a.mu.Unlock()
		return
	}
	a.RT.Run(mainFn, func(v interp.Value, err error) {
		a.mu.Lock()
		a.result = v
		a.err = err
		a.finished = true
		a.mu.Unlock()
		if onDone != nil {
			onDone()
		}
	})
}

// Wait pumps the event loop until the program finishes or stalls (paused
// with no pending work) and returns the completion error, if any. After a
// successful $main completion it keeps draining queued work — timer
// callbacks run to completion, as they do in a browser and in the
// un-stopified baseline (RunRaw drains its loop); an error stops the
// program immediately. Like that baseline, draining honors timer delays on
// a real clock: a program that parks an hour-long setTimeout keeps Wait
// busy for the hour, and a self-rescheduling timer chain never returns —
// a host that serves such programs should bound them with a policy (the
// supervisor's wall deadline) or pump the loop itself instead of Wait.
func (a *AsyncRun) Wait() error {
	for a.Loop.Len() > 0 {
		if a.Finished() {
			if _, err := a.Result(); err != nil {
				break
			}
		}
		a.Loop.RunOne()
	}
	_, err := a.Result()
	return err
}

// RunToCompletion is Run + Wait.
func (a *AsyncRun) RunToCompletion() error {
	a.Run(nil)
	return a.Wait()
}

// Pause requests suspension at the next yield point (§2). Safe from any
// goroutine.
func (a *AsyncRun) Pause(onPause func()) { a.RT.Pause(onPause) }

// Resume continues a paused program. Safe from any goroutine.
func (a *AsyncRun) Resume() { a.RT.Resume() }

// Paused reports whether the program is parked at a yield point awaiting
// Resume. Safe from any goroutine.
func (a *AsyncRun) Paused() bool { return a.RT.Paused() }

// Kill gracefully terminates the program: it stops at its next yield point
// (immediately, if currently paused) and completes with reason — rt.ErrKilled
// when nil — which guest code cannot catch. Safe from any goroutine.
func (a *AsyncRun) Kill(reason error) { a.RT.Kill(reason) }

// ArmQuantum re-arms the cooperative quantum: RunConfig.OnQuantum fires
// after n more statements. Owner-goroutine only (call it between event-loop
// turns, never while another goroutine is pumping this run).
func (a *AsyncRun) ArmQuantum(n uint64) { a.In.ArmQuantum(n) }

// SetOnQuantum installs or replaces the quantum hook (owner-goroutine only).
func (a *AsyncRun) SetOnQuantum(fn func()) { a.In.SetOnQuantum(fn) }

// SetMaxSteps re-arms the hard step budget (owner-goroutine only); the
// counter is cumulative, so raising it extends a budget across resumes.
func (a *AsyncRun) SetMaxSteps(n uint64) { a.In.SetMaxSteps(n) }

// Steps reports statements executed so far (owner-goroutine only; a
// scheduler snapshots it between turns).
func (a *AsyncRun) Steps() uint64 { return a.In.Steps }

// MemUsed reports bytes the allocation meter has charged so far
// (owner-goroutine only; a scheduler snapshots it between turns).
func (a *AsyncRun) MemUsed() uint64 { return a.In.MemUsed() }

// SetMemBudget re-arms (or, with 0, disarms) the allocation budget
// (owner-goroutine only); the meter is cumulative, so raising it extends a
// budget across resumes.
func (a *AsyncRun) SetMemBudget(n uint64) { a.In.SetMemBudget(n) }

// StartProfile arms the guest-level sampling profiler with the given
// statement period; 0 disarms (owner-goroutine only). No-op when the
// stopify_noprof build tag compiled the seam out.
func (a *AsyncRun) StartProfile(every uint64) { a.In.StartProfile(every) }

// TakeProfileFolded drains the profiler's folded-stack samples accumulated
// since the last drain — ";"-joined JS call stacks, root first, mapped to
// statement counts. Nil when nothing was sampled. Owner-goroutine only; a
// scheduler harvests between turns.
func (a *AsyncRun) TakeProfileFolded() map[string]uint64 { return a.In.TakeProfileFolded() }

// Finished reports whether the program has completed. Safe from any
// goroutine.
func (a *AsyncRun) Finished() bool {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.finished
}

// Result returns the completion value and error. Safe from any goroutine.
func (a *AsyncRun) Result() (interp.Value, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.result, a.err
}

// RunSource is a convenience: compile and run to completion, returning
// console output.
func RunSource(source string, opts Opts, cfg RunConfig) (string, error) {
	var buf bytes.Buffer
	if cfg.Out == nil {
		cfg.Out = &buf
	}
	c, err := Compile(source, opts)
	if err != nil {
		return "", err
	}
	run, err := c.NewRun(cfg)
	if err != nil {
		return "", err
	}
	err = run.RunToCompletion()
	return buf.String(), err
}

// RunRaw executes source without Stopify (the baseline denominator in every
// slowdown measurement), returning console output.
func RunRaw(source string, cfg RunConfig) (string, error) {
	bc, err := cfg.useBytecode()
	if err != nil {
		return "", err
	}
	prog, err := parser.Parse(source)
	if err != nil {
		return "", err
	}
	resolve.Program(prog)
	var buf bytes.Buffer
	out := cfg.Out
	if out == nil {
		out = &buf
	}
	clock := cfg.Clock
	if clock == nil {
		clock = eventloop.NewRealClock()
	}
	loop := eventloop.New(clock)
	in := interp.New(interp.Options{
		Engine: cfg.Engine, Clock: clock, Loop: loop, Out: out,
		Seed: cfg.Seed, Bytecode: bc, MaxSteps: cfg.MaxSteps,
	})
	// Raw execution has the browser's native eval: parse, resolve, and run
	// directly. The fragment's own statements execute in the dynamic global
	// frame; only functions within get slot frames.
	in.EvalHook = func(src string) ([]ast.Stmt, error) {
		p, err := parser.Parse(src)
		if err != nil {
			return nil, err
		}
		resolve.Program(p)
		return p.Body, nil
	}
	if err := in.RunProgram(prog); err != nil {
		return buf.String(), err
	}
	loop.Run()
	return buf.String(), nil
}
