package core

import "testing"

// Regression tests for the numeric-coercion and array-semantics fixes that
// rode along with the shape/inline-cache work, plus end-to-end property
// semantics exercising the caches the way user programs do: raw execution
// (resolved trees with per-site ICs) and the full Stopify pipeline (whose
// getter sub-language routes access through $rawGet).

func runRawCase(t *testing.T, src string) string {
	t.Helper()
	out, err := RunRaw(src, RunConfig{})
	if err != nil {
		t.Fatalf("RunRaw error: %v\noutput: %s", err, out)
	}
	return out
}

func TestToInt32Uint32LargeMagnitude(t *testing.T) {
	// int64(math.Trunc(1e20)) is out of range; the spec's modulo-2^32
	// reduction is not. 1e20|0 must be 1661992960, not 0.
	out := runRawCase(t, `console.log(1e20|0, 1e20>>>0, -1e20|0, (-3.5)>>>0, ~1e20);`)
	if want := "1661992960 1661992960 -1661992960 4294967293 -1661992961\n"; out != want {
		t.Errorf("got %q want %q", out, want)
	}
}

func TestNegativeZeroStringification(t *testing.T) {
	// String(-0) is "0" (ES5 §9.8.1); -0 itself keeps its sign for
	// arithmetic (1/-0 === -Infinity); and o[-0] names the same property
	// as o[0].
	out := runRawCase(t, `console.log(String(-0), -0, 1/-0);
var o = {}; o[-0] = 7; console.log(o[0], o["0"], o[-0]);`)
	if want := "0 0 -Infinity\n7 7 7\n"; out != want {
		t.Errorf("got %q want %q", out, want)
	}
}

func TestDeleteArrayElementWithNamedProps(t *testing.T) {
	// The old fast path required the array to have NO named properties, so
	// a.foo=1 made delete a[1] silently keep the element.
	out := runRawCase(t, `var a = [1, 2, 3];
a.foo = 1;
delete a[1];
console.log(a[1], a.length, a.foo);
delete a.foo;
console.log(a.foo);`)
	if want := "undefined 3 1\nundefined\n"; out != want {
		t.Errorf("got %q want %q", out, want)
	}
}

func TestArrayLiteralElisions(t *testing.T) {
	out := runRawCase(t, `var a = [,1];
console.log(a.length, a[0], a[1]);
var b = [1,,3];
console.log(b.length, b.join("-"));
var c = [1,,];
console.log(c.length);
var d = [,];
console.log(d.length);
var e = [1,];
console.log(e.length);`)
	if want := "2 undefined 1\n3 1--3\n2\n1\n1\n"; out != want {
		t.Errorf("got %q want %q", out, want)
	}
}

// TestBugfixesUnderStopify re-runs the same semantics through the full
// pipeline: desugar → ANF (which must tolerate elision holes) → box →
// instrument → resolve.
func TestBugfixesUnderStopify(t *testing.T) {
	cases := []struct{ name, src, want string }{
		{"coercion", `console.log(1e20|0, (-3.5)>>>0);`, "1661992960 4294967293\n"},
		{"negzero", `var o={}; o[-0]=7; console.log(String(-0), o[0]);`, "0 7\n"},
		{"delete", `var a=[1,2,3]; a.foo=1; delete a[1]; console.log(a[1], a.foo);`, "undefined 1\n"},
		{"elision", `var a=[,1,,3,,]; console.log(a.length, a.join("|"));`, "5 |1||3|\n"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			out, err := RunSource(c.src, Defaults(), RunConfig{})
			if err != nil {
				t.Fatal(err)
			}
			if out != c.want {
				t.Errorf("got %q want %q", out, c.want)
			}
		})
	}
}

// TestPropertySemanticsThroughCaches drives repeated property access —
// monomorphic hits, shape changes mid-stream, prototype-chain hits, and
// every invalidation source — through ordinary programs so the inline
// caches are exercised exactly as user code exercises them.
func TestPropertySemanticsThroughCaches(t *testing.T) {
	cases := []struct{ name, src, want string }{
		{"constructor-shapes",
			`function P(x){this.x=x;} var s=0; for(var i=0;i<100;i++){var p=new P(i); s+=p.x;} console.log(s);`,
			"4950\n"},
		{"polymorphic-read",
			`var o={a:1,b:2}; function f(q){return q.b;} var s=0; for(var i=0;i<10;i++)s+=f(o); console.log(s, f({b:7,a:0}));`,
			"20 7\n"},
		{"proto-method-hit",
			`var proto={m:function(){return 5;}}; var o=Object.create(proto); function g(q){return q.m();} console.log(g(o)+g(o));`,
			"10\n"},
		{"delete-invalidation",
			`var o={}; function rd(q){return q.x;} o.x=1; console.log(rd(o)); delete o.x; console.log(rd(o));`,
			"1\nundefined\n"},
		{"accessor-invalidation",
			`var o={x:1}; function rd(q){return q.x;} console.log(rd(o)); Object.defineProperty(o,"x",{get:function(){return 42;}}); console.log(rd(o));`,
			"1\n42\n"},
		{"proto-mutation-invalidation",
			`var a={m:1}, b=Object.create(a); function rd(q){return q.m;} console.log(rd(b)); Object.setPrototypeOf(b,{m:9}); console.log(rd(b));`,
			"1\n9\n"},
		{"intermediate-shadow",
			`var a={}, b=Object.create(a), c=Object.create(b); a.m=3; function rd(q){return q.m;} console.log(rd(c)); b.m=8; console.log(rd(c));`,
			"3\n8\n"},
		{"set-transition-vs-proto-setter",
			`var proto={}; var o=Object.create(proto); function wr(q,v){q.z=v;} wr(o,1); var o2=Object.create(proto);
			 Object.defineProperty(proto,"z",{set:function(v){this.got=v;}}); wr(o2,5); console.log(o2.z, o2.got, o.z);`,
			"undefined 5 1\n"},
		{"set-ic-warm-site-vs-accessor-object",
			`function w(o,v){o.x=v;} var a={x:0}; w(a,1); w(a,2); var called=false;
			 var b={set x(v){called=true;}}; w(b,3); console.log(called, b.x, a.x);`,
			"true undefined 2\n"},
		{"set-ic-accessor-survives-delete-rebuild",
			`function w(o,v){o.x=v;} var d={x:0}; w(d,1); w(d,2);
			 var o={x:0,y:0}; var got; Object.defineProperty(o,"x",{set:function(v){got=v;}});
			 delete o.y; w(o,9); console.log(got, o.x);`,
			"9 undefined\n"},
		{"set-ic-accessor-survives-proto-swap",
			`function w(o,v){o.x=v;} var P={};
			 var d=Object.create(P); d.x=0; w(d,1); w(d,2);
			 var got; var q={x:0}; Object.defineProperty(q,"x",{set:function(v){got=v;}});
			 Object.setPrototypeOf(q,P); w(q,7); console.log(got, q.x);`,
			"7 undefined\n"},
		{"global-cell",
			`g1=5; function f(){return g1;} var s=0; for(var i=0;i<10;i++)s+=f(); g1=1; console.log(s+f());`,
			"51\n"},
		{"keys-order-after-delete",
			`var o={a:1,b:2,c:3}; delete o.b; o.d=4; console.log(Object.keys(o).join(","));`,
			"a,c,d\n"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if got := runRawCase(t, c.src); got != c.want {
				t.Errorf("raw: got %q want %q", got, c.want)
			}
			got, err := RunSource(c.src, Defaults(), RunConfig{})
			if err != nil {
				t.Fatal(err)
			}
			if got != c.want {
				t.Errorf("stopified: got %q want %q", got, c.want)
			}
		})
	}
}
