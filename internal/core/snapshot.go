package core

import (
	"encoding/json"
	"fmt"
	"time"

	"repro/internal/interp"
	"repro/internal/snapshot"
)

// Snapshot/restore: a paused AsyncRun serializes to a self-contained blob —
// program source, compile options, the guest's reachable Value graph, the
// saved continuation, pending timers, console output, and cumulative
// step/memory accounting — and Restore rebuilds a runnable AsyncRun from it
// in this process or another one. The codec itself lives in
// internal/snapshot; this file binds it to the compile pipeline (source and
// options ride in the blob header so the restoring side can rebuild an
// identical realm) and to AsyncRun's lifecycle.

// snapshotHeader is the host metadata embedded in every blob: what Restore
// needs before it can build a realm to decode into.
type snapshotHeader struct {
	Source string `json:"source"`
	Opts   Opts   `json:"opts"`
}

// Snapshot serializes the run. The run must be quiescent — paused at a
// yield point, parked between turns, or finished — and the caller must hold
// the owner-goroutine role (no goroutine may be pumping the event loop).
// Snapshot is read-only: on success or failure the run is unharmed and can
// keep executing.
//
// A *snapshot.PinError means the guest's live state reaches outside the
// serializable boundary (a bound-function native, eval-compiled code, a
// blocking host call in flight); the guest stays resident.
func (a *AsyncRun) Snapshot() ([]byte, error) {
	a.mu.Lock()
	finished, result, runErr := a.finished, a.result, a.err
	a.mu.Unlock()
	if finished && runErr != nil {
		return nil, fmt.Errorf("stopify: cannot snapshot a failed run: %w", runErr)
	}
	var outBytes []byte
	if a.out != nil {
		sink, ok := a.out.(interface{ Bytes() []byte })
		if !ok {
			return nil, &snapshot.PinError{
				Kind:   snapshot.PinRegistry,
				Reason: fmt.Sprintf("output sink %T cannot be carried by value (no Bytes method)", a.out),
			}
		}
		outBytes = sink.Bytes()
	}
	hdr, err := json.Marshal(snapshotHeader{Source: a.compiled.SourceText, Opts: a.compiled.Opts})
	if err != nil {
		return nil, fmt.Errorf("stopify: encoding snapshot header: %w", err)
	}
	return snapshot.Encode(snapshot.Input{
		In:         a.In,
		RT:         a.RT,
		Code:       a.compiled.codeTable(),
		Reg:        a.reg,
		HostMeta:   hdr,
		Output:     outBytes,
		Result:     result,
		WallUnixMs: float64(time.Now().UnixMilli()),
		TimerSeq:   a.RT.TimerSeq(),
	})
}

// RestoreOptions tunes Restore.
type RestoreOptions struct {
	// ReplayOutput writes the blob's carried console output to the new
	// run's Out before resuming, so the destination stream reads as a
	// continuation of the source's. A supervisor that persists output
	// separately turns this off.
	ReplayOutput bool
	// ElapsedMs is wall time spent parked, credited against pending timer
	// due-offsets so a restored guest's timers fire on schedule instead of
	// restarting their full delay.
	ElapsedMs float64
	// OnDone observes completion, like the callback passed to Run.
	OnDone func()
}

// Restore rebuilds a runnable AsyncRun from a Snapshot blob with output
// replay on. See RestoreWith.
func Restore(cfg RunConfig, blob []byte) (*AsyncRun, error) {
	return RestoreWith(cfg, blob, RestoreOptions{ReplayOutput: true})
}

// RestoreWith recompiles the blob's embedded source under its embedded
// options, builds a fresh realm under cfg's host knobs (engine profile,
// clock, output, backend, budgets), and decodes the blob into it. The
// compiled program is never executed — every JS-level binding, prelude
// included, comes from the blob — so the restored realm's state is the
// source realm's, not a fresh program's.
//
// cfg.Seed is ignored: the blob carries the Math.random generator state.
// Step and memory accounting resume cumulatively from the snapshot's
// figures, so cfg.MaxSteps and cfg.MemBudgetBytes bound the guest's whole
// life, not just the time since this restore.
//
// The returned run is in the blob's control state: paused (call Resume),
// mid-flight between turns (pump the loop), or finished draining timers.
func RestoreWith(cfg RunConfig, blob []byte, ro RestoreOptions) (*AsyncRun, error) {
	meta, err := snapshot.ReadMeta(blob)
	if err != nil {
		return nil, err
	}
	var hdr snapshotHeader
	if err := json.Unmarshal(meta.HostMeta, &hdr); err != nil {
		return nil, fmt.Errorf("stopify: snapshot header: %w", err)
	}
	if meta.Version == 1 {
		// A v1 blob's continuations index the old prelude's code table; the
		// flag rides in Opts so re-parks of this guest stay restorable.
		hdr.Opts.LegacyPrelude = true
	}
	c, err := Compile(hdr.Source, hdr.Opts)
	if err != nil {
		return nil, fmt.Errorf("stopify: recompiling snapshot source: %w", err)
	}
	a, err := c.newRealm(cfg)
	if err != nil {
		return nil, err
	}
	d, err := snapshot.Decode(blob, a.In, a.RT, c.codeTable(), a.reg)
	if err != nil {
		return nil, err
	}
	a.In.SetRandState(d.Meta.Rand)
	// Decode allocations were charged to the fresh meter; overwrite with the
	// snapshot's cumulative figures so budgets span park/restore cycles.
	a.In.SetAccounting(d.Meta.Steps, d.Meta.MemUsed)
	// Continue the setTimeout handle sequence where the source left off, so
	// IDs stay unique (and clearTimeout keys stay valid) across the park.
	a.RT.SetTimerSeq(d.Meta.TimerSeq)
	if ro.ReplayOutput && len(d.Meta.Output) > 0 && a.out != nil {
		if _, err := a.out.Write(d.Meta.Output); err != nil {
			return nil, fmt.Errorf("stopify: replaying snapshot output: %w", err)
		}
	}
	onDone := ro.OnDone
	a.RT.AdoptParked(d.State, func(v interp.Value, err error) {
		a.mu.Lock()
		a.result = v
		a.err = err
		a.finished = true
		a.mu.Unlock()
		if onDone != nil {
			onDone()
		}
	})
	if d.State.Done {
		// The main chain completed before the snapshot; the restored run is
		// already finished and only drains its remaining timers.
		a.mu.Lock()
		a.result = d.Result
		a.finished = true
		a.mu.Unlock()
	}
	a.RT.RepostLedger(d.Ledger, ro.ElapsedMs)
	return a, nil
}

// SnapshotInfo is the cheap, header-only view of a blob — what an admission
// controller needs before committing to a full decode.
type SnapshotInfo struct {
	// Steps and MemUsed are the guest's cumulative counters at park time.
	Steps   uint64
	MemUsed uint64
	// OutputLen is the carried console output's size in bytes.
	OutputLen int
	// Paused and Done describe the control state: paused at a yield point,
	// or finished with timers still draining. Neither set means the guest
	// was parked mid-flight between event-loop turns.
	Paused bool
	Done   bool
	// WallUnixMs is the snapshot's wall-clock timestamp (Unix milliseconds);
	// a restorer subtracts it from the current time to credit parked time
	// against pending timers.
	WallUnixMs float64
}

// SnapshotMeta parses a blob's header without building a realm or decoding
// the graph.
func SnapshotMeta(blob []byte) (SnapshotInfo, error) {
	m, err := snapshot.ReadMeta(blob)
	if err != nil {
		return SnapshotInfo{}, err
	}
	return SnapshotInfo{
		Steps:      m.Steps,
		MemUsed:    m.MemUsed,
		OutputLen:  len(m.Output),
		Paused:     m.Paused,
		Done:       m.Done,
		WallUnixMs: m.WallUnixMs,
	}, nil
}
