package core

import (
	"testing"
)

// contOpts builds a continuation-only configuration (no timer yields), so
// these tests exercise $C in isolation.
func contOpts(cont string) Opts {
	o := Defaults()
	o.Cont = cont
	o.Suspend = false
	o.YieldIntervalMs = 0
	return o
}

// TestContinuationEarlyExit uses $C as an escape continuation — the classic
// early exit from a deep search.
func TestContinuationEarlyExit(t *testing.T) {
	src := `
function findFirst(arr, pred) {
  return $C(function (k) {
    for (var i = 0; i < arr.length; i++) {
      if (pred(arr[i])) { k(arr[i]); }
    }
    return k(-1);
  });
}
var data = [3, 8, 12, 5, 40];
console.log(findFirst(data, function (x) { return x > 10; }));
console.log(findFirst(data, function (x) { return x > 100; }));`
	for _, cont := range []string{"checked", "exceptional", "eager"} {
		got, err := RunSource(src, contOpts(cont), cfgVirtual())
		if err != nil {
			t.Fatalf("%s: %v", cont, err)
		}
		if got != "12\n-1\n" {
			t.Errorf("%s: got %q", cont, got)
		}
	}
}

// TestContinuationMultiShot re-applies a saved continuation several times;
// frames are restored from immutable snapshots, so continuations are
// multi-shot (unlike the generator strawman's one-shot ones, §3).
func TestContinuationMultiShot(t *testing.T) {
	src := `
var saved = null;
var hits = 0;
function go() {
  var v = 10 + $C(function (k) { saved = k; return k(1); });
  hits = hits + 1;
  if (hits < 3) { saved(hits * 10); }
  return v;
}
console.log(go(), hits);`
	for _, cont := range []string{"checked", "exceptional", "eager"} {
		got, err := RunSource(src, contOpts(cont), cfgVirtual())
		if err != nil {
			t.Fatalf("%s: %v", cont, err)
		}
		// Third entry: v = 10 + 20 (saved(20) from hits==2), hits == 3.
		if got != "30 3\n" {
			t.Errorf("%s: got %q", cont, got)
		}
	}
}

// TestContinuationAcrossClosureState verifies boxed state stays shared when
// a continuation rewinds: the counter keeps counting from where it was,
// while control returns to the captured point.
func TestContinuationAcrossClosureState(t *testing.T) {
	src := `
function counter() { var n = 0; return function () { n = n + 1; return n; }; }
var tick = counter();
var once = false;
var v = $C(function (k) { return k(tick()); });
if (!once) {
  once = true;
  // v is 1 from the first pass; tick again through the same closure.
  console.log(v, tick());
}`
	got, err := RunSource(src, contOpts("checked"), cfgVirtual())
	if err != nil {
		t.Fatal(err)
	}
	if got != "1 2\n" {
		t.Errorf("got %q", got)
	}
}

// TestContinuationThroughCatch captures inside a catch clause and restores
// through it (§3.1.1's first case).
func TestContinuationThroughCatch(t *testing.T) {
	src := `
function risky() { throw new Error("bang"); }
function run() {
  try {
    risky();
  } catch (e) {
    var v = label(e.message);
    return v + "!";
  }
  return "no-throw";
}
function label(m) { return "caught-" + m; }
console.log(run());`
	o := contOpts("checked")
	o.Suspend = true
	o.Timer = "countdown"
	o.CountdownN = 2 // capture inside the catch body's call
	o.YieldIntervalMs = 1
	for _, cont := range []string{"checked", "exceptional", "eager"} {
		o.Cont = cont
		got, err := RunSource(src, o, cfgVirtual())
		if err != nil {
			t.Fatalf("%s: %v", cont, err)
		}
		if got != "caught-bang!\n" {
			t.Errorf("%s: got %q", cont, got)
		}
	}
}

// TestContinuationThroughFinally suspends inside a finalizer reached via
// return (§3.1.1's second case).
func TestContinuationThroughFinally(t *testing.T) {
	src := `
function audit(x) { return x; }
function f() {
  try {
    return audit("value");
  } finally {
    audit("cleanup1");
    audit("cleanup2");
  }
}
console.log(f());`
	o := Defaults()
	o.Timer = "countdown"
	o.CountdownN = 3
	o.YieldIntervalMs = 1
	for _, cont := range []string{"checked", "exceptional", "eager"} {
		o.Cont = cont
		got, err := RunSource(src, o, cfgVirtual())
		if err != nil {
			t.Fatalf("%s: %v", cont, err)
		}
		if got != "value\n" {
			t.Errorf("%s: got %q", cont, got)
		}
	}
}

// TestSuspendCountsAreBounded sanity-checks that the approx estimator does
// not yield pathologically often on a virtual clock (velocity backoff).
func TestSuspendCountsAreBounded(t *testing.T) {
	src := `var s = 0; for (var i = 0; i < 5000; i++) { s += i; } console.log(s);`
	o := Defaults() // approx, δ=100ms
	c, err := Compile(src, o)
	if err != nil {
		t.Fatal(err)
	}
	run, err := c.NewRun(cfgVirtual())
	if err != nil {
		t.Fatal(err)
	}
	if err := run.RunToCompletion(); err != nil {
		t.Fatal(err)
	}
	if run.RT.Yields > 50 {
		t.Errorf("approx estimator yielded %d times on a virtual clock", run.RT.Yields)
	}
}
