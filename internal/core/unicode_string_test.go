package core

import "testing"

// Absolute-output pins for the WTF-8 single-character semantics (ISSUE 8).
// The differential corpus (unicodeEdgePrograms) proves the engines agree
// with each other and survive a snapshot round-trip; these cases pin what
// the agreed-upon answer actually is, raw under both engines and through
// the full Stopify pipeline.

func runUnicodeCase(t *testing.T, src, want string) {
	t.Helper()
	for _, backend := range []string{BackendTree, BackendBytecode} {
		out, err := RunRaw(src, RunConfig{Backend: backend})
		if err != nil {
			t.Fatalf("[raw/%s] error: %v\noutput: %s", backend, err, out)
		}
		if out != want {
			t.Errorf("[raw/%s] got %q want %q", backend, out, want)
		}
		c, err := Compile(src, Defaults())
		if err != nil {
			t.Fatalf("[stopified/%s] compile: %v", backend, err)
		}
		var buf outBuf
		run, err := c.NewRun(RunConfig{Backend: backend, Out: &buf})
		if err != nil {
			t.Fatalf("[stopified/%s] NewRun: %v", backend, err)
		}
		if err := run.RunToCompletion(); err != nil {
			t.Fatalf("[stopified/%s] run: %v", backend, err)
		}
		run.Loop.Run()
		if buf.String() != want {
			t.Errorf("[stopified/%s] got %q want %q", backend, buf.String(), want)
		}
	}
}

type outBuf struct{ b []byte }

func (o *outBuf) Write(p []byte) (int, error) { o.b = append(o.b, p...); return len(p), nil }
func (o *outBuf) String() string              { return string(o.b) }

func TestUnicodeIndexCharAtCharCode(t *testing.T) {
	// length counts bytes; single-character reads decode the character
	// starting at the offset; charCodeAt returns the code point.
	runUnicodeCase(t, `var s = "añ€🙂";
console.log(s.length, s[0], s[1], s[3], s[6]);
console.log(s.charAt(0), s.charAt(1), s.charAt(3), s.charAt(6));
console.log(s.charCodeAt(0), s.charCodeAt(1), s.charCodeAt(3), s.charCodeAt(6));`,
		"10 a ñ € 🙂\na ñ € 🙂\n97 241 8364 128578\n")
}

func TestUnicodeCodePointAtAndAt(t *testing.T) {
	// codePointAt reads the full code point at a byte offset (WTF-8 stores
	// supplementary characters whole, so no pair combining); at() accepts
	// negative byte offsets from the end and returns undefined out of range.
	runUnicodeCase(t, `var s = "añ€🙂";
console.log(s.codePointAt(0), s.codePointAt(6), s.codePointAt(99));
console.log(s.at(1), s.at(-4), s.at(-99), s.at(99));`,
		"97 128578 undefined\nñ 🙂 undefined undefined\n")
}

func TestUnicodeSplitJoinRoundTrip(t *testing.T) {
	runUnicodeCase(t, `var s = "héllo wörld";
var a = s.split("");
console.log(a.length, a.join("") === s, a[1], a[1].length);`,
		"11 true é 2\n")
}

func TestUnicodeFromCharCodeSurrogates(t *testing.T) {
	// fromCharCode(c).charCodeAt(0) === c for every band of the BMP,
	// including the surrogate range WriteRune used to mangle to U+FFFD.
	runUnicodeCase(t, `var codes = [65, 0xE9, 0x20AC, 0xD800, 0xDBFF, 0xDC00, 0xDFFF, 0xFFFF];
var bad = 0;
for (var i = 0; i < codes.length; i++) {
  if (String.fromCharCode(codes[i]).charCodeAt(0) !== codes[i]) { bad++; }
}
console.log(bad, String.fromCharCode(0xD800).length);`,
		"0 3\n")
}

func TestUnicodeMidSequenceFallback(t *testing.T) {
	// A mid-character offset reads the raw continuation byte — the
	// one-byte view that keeps arbitrary byte strings self-consistent.
	runUnicodeCase(t, `var s = "€";
console.log(s[0] === s, s[1].length, s.charCodeAt(1), s.charCodeAt(2));`,
		"true 1 130 172\n")
}

func TestUnicodeEscapeLiteralsMatchFromCharCode(t *testing.T) {
	runUnicodeCase(t, `var s = "é€\ud834";
console.log(s.length, s.charCodeAt(5), s === String.fromCharCode(0xE9, 0x20AC, 0xD834));`,
		"8 55348 true\n")
}
