package core

import "strings"

// preludeSource assembles the JavaScript runtime prelude for the selected
// sub-language. Prelude functions are compiled through the same pipeline as
// user code (so a user valueOf that captures a continuation unwinds cleanly
// through $add or $construct), but they are never themselves rewritten in
// terms of each other: implicit and getter desugaring apply to user code
// only.
func preludeSource(opts Opts) string {
	var b strings.Builder
	if opts.Ctor == "direct" {
		if opts.LegacyPrelude {
			b.WriteString(preludeConstructV1)
		} else {
			b.WriteString(preludeConstruct)
		}
	}
	if opts.Implicits != "none" {
		b.WriteString(preludeToPrim)
		b.WriteString(preludePlus)
	}
	if opts.Implicits == "full" {
		b.WriteString(preludeArith)
	}
	if opts.Getters {
		b.WriteString(preludeGetters)
	}
	return b.String()
}

// preludeConstruct desugars `new` (§3.2): allocate via Object.create, apply
// the constructor as a plain function, and honor the override-by-object
// rule. Bound functions are unwrapped first ($boundFn/$boundArgs natives):
// applying a bound function would substitute boundThis for the fresh
// object, but `new boundFn(...)` must construct the ultimate target with
// the bound args prepended and boundThis ignored. The unwrapping stays in
// JS so a constructor body that captures a continuation never has a native
// construct frame above it.
const preludeConstruct = `
function $construct(f, args) {
  var t = $boundFn(f);
  while (t !== undefined) {
    args = $boundArgs(f, args);
    f = t;
    t = $boundFn(f);
  }
  var o = Object.create(f.prototype);
  var r = f.apply(o, args);
  if (r !== null && (typeof r === "object" || typeof r === "function")) {
    return r;
  }
  return o;
}
`

// preludeConstructV1 is the wire-v1 prelude's $construct, kept verbatim for
// realms restoring version-1 snapshot blobs: the old code table indexed
// this exact source, and a v1 blob cannot hold a bound function anyway
// (they pinned the guest before wire v2), so the missing unwrap loop is
// unreachable from restored state. A guest that creates bound functions
// *after* a v1 restore keeps the old (pre-fix) `new boundFn` behavior
// until it finishes or re-parks and migrates.
const preludeConstructV1 = `
function $construct(f, args) {
  var o = Object.create(f.prototype);
  var r = f.apply(o, args);
  if (r !== null && (typeof r === "object" || typeof r === "function")) {
    return r;
  }
  return o;
}
`

// preludeToPrim is ToPrimitive with user valueOf/toString calls exposed as
// ordinary (instrumented) applications — the implicit calls of §4.1.
const preludeToPrim = `
function $toPrim(v, hint) {
  if (v === null || (typeof v !== "object" && typeof v !== "function")) {
    return v;
  }
  var m1 = v.valueOf;
  var m2 = v.toString;
  if (hint === "string") {
    var tmp = m1; m1 = m2; m2 = tmp;
  }
  if (typeof m1 === "function") {
    var r1 = m1.call(v);
    if (r1 === null || (typeof r1 !== "object" && typeof r1 !== "function")) {
      return r1;
    }
  }
  if (typeof m2 === "function") {
    var r2 = m2.call(v);
    if (r2 === null || (typeof r2 !== "object" && typeof r2 !== "function")) {
      return r2;
    }
  }
  throw new TypeError("cannot convert object to primitive value");
}
`

// preludePlus exposes the + operator's implicit conversions (the JSweet
// sub-language needs only this much, Figure 5).
const preludePlus = `
function $add(a, b) {
  a = $toPrim(a, "default");
  b = $toPrim(b, "default");
  return a + b;
}
`

// preludeArith exposes every remaining conversion site for the full
// implicits mode (JavaScript-as-source, §4.1).
const preludeArith = `
function $sub(a, b) { return $toPrim(a, "number") - $toPrim(b, "number"); }
function $mul(a, b) { return $toPrim(a, "number") * $toPrim(b, "number"); }
function $div(a, b) { return $toPrim(a, "number") / $toPrim(b, "number"); }
function $mod(a, b) { return $toPrim(a, "number") % $toPrim(b, "number"); }
function $lt(a, b) { return $toPrim(a, "number") < $toPrim(b, "number"); }
function $le(a, b) { return $toPrim(a, "number") <= $toPrim(b, "number"); }
function $gt(a, b) { return $toPrim(a, "number") > $toPrim(b, "number"); }
function $ge(a, b) { return $toPrim(a, "number") >= $toPrim(b, "number"); }
function $neg(a) { return -$toPrim(a, "number"); }
function $tonum(a) { return +$toPrim(a, "number"); }
function $eq(a, b) {
  var ao = a !== null && (typeof a === "object" || typeof a === "function");
  var bo = b !== null && (typeof b === "object" || typeof b === "function");
  if (ao && !bo) { return $eq($toPrim(a, "default"), b); }
  if (bo && !ao) { return $eq(a, $toPrim(b, "default")); }
  return a == b;
}
function $ne(a, b) { return !$eq(a, b); }
`

// preludeGetters routes property access through accessor lookup so user
// getters and setters run as instrumented calls (§4.3).
const preludeGetters = `
function $get(o, k) {
  var g = $lookupGetter(o, k);
  if (g !== undefined) {
    return g.call(o);
  }
  return $rawGet(o, k);
}
function $set(o, k, v) {
  var s = $lookupSetter(o, k);
  if (s !== undefined) {
    s.call(o, v);
    return v;
  }
  return $rawSet(o, k, v);
}
`
