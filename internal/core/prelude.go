package core

import "strings"

// preludeSource assembles the JavaScript runtime prelude for the selected
// sub-language. Prelude functions are compiled through the same pipeline as
// user code (so a user valueOf that captures a continuation unwinds cleanly
// through $add or $construct), but they are never themselves rewritten in
// terms of each other: implicit and getter desugaring apply to user code
// only.
func preludeSource(opts Opts) string {
	var b strings.Builder
	if opts.Ctor == "direct" {
		b.WriteString(preludeConstruct)
	}
	if opts.Implicits != "none" {
		b.WriteString(preludeToPrim)
		b.WriteString(preludePlus)
	}
	if opts.Implicits == "full" {
		b.WriteString(preludeArith)
	}
	if opts.Getters {
		b.WriteString(preludeGetters)
	}
	return b.String()
}

// preludeConstruct desugars `new` (§3.2): allocate via Object.create, apply
// the constructor as a plain function, and honor the override-by-object
// rule.
const preludeConstruct = `
function $construct(f, args) {
  var o = Object.create(f.prototype);
  var r = f.apply(o, args);
  if (r !== null && (typeof r === "object" || typeof r === "function")) {
    return r;
  }
  return o;
}
`

// preludeToPrim is ToPrimitive with user valueOf/toString calls exposed as
// ordinary (instrumented) applications — the implicit calls of §4.1.
const preludeToPrim = `
function $toPrim(v, hint) {
  if (v === null || (typeof v !== "object" && typeof v !== "function")) {
    return v;
  }
  var m1 = v.valueOf;
  var m2 = v.toString;
  if (hint === "string") {
    var tmp = m1; m1 = m2; m2 = tmp;
  }
  if (typeof m1 === "function") {
    var r1 = m1.call(v);
    if (r1 === null || (typeof r1 !== "object" && typeof r1 !== "function")) {
      return r1;
    }
  }
  if (typeof m2 === "function") {
    var r2 = m2.call(v);
    if (r2 === null || (typeof r2 !== "object" && typeof r2 !== "function")) {
      return r2;
    }
  }
  throw new TypeError("cannot convert object to primitive value");
}
`

// preludePlus exposes the + operator's implicit conversions (the JSweet
// sub-language needs only this much, Figure 5).
const preludePlus = `
function $add(a, b) {
  a = $toPrim(a, "default");
  b = $toPrim(b, "default");
  return a + b;
}
`

// preludeArith exposes every remaining conversion site for the full
// implicits mode (JavaScript-as-source, §4.1).
const preludeArith = `
function $sub(a, b) { return $toPrim(a, "number") - $toPrim(b, "number"); }
function $mul(a, b) { return $toPrim(a, "number") * $toPrim(b, "number"); }
function $div(a, b) { return $toPrim(a, "number") / $toPrim(b, "number"); }
function $mod(a, b) { return $toPrim(a, "number") % $toPrim(b, "number"); }
function $lt(a, b) { return $toPrim(a, "number") < $toPrim(b, "number"); }
function $le(a, b) { return $toPrim(a, "number") <= $toPrim(b, "number"); }
function $gt(a, b) { return $toPrim(a, "number") > $toPrim(b, "number"); }
function $ge(a, b) { return $toPrim(a, "number") >= $toPrim(b, "number"); }
function $neg(a) { return -$toPrim(a, "number"); }
function $tonum(a) { return +$toPrim(a, "number"); }
function $eq(a, b) {
  var ao = a !== null && (typeof a === "object" || typeof a === "function");
  var bo = b !== null && (typeof b === "object" || typeof b === "function");
  if (ao && !bo) { return $eq($toPrim(a, "default"), b); }
  if (bo && !ao) { return $eq(a, $toPrim(b, "default")); }
  return a == b;
}
function $ne(a, b) { return !$eq(a, b); }
`

// preludeGetters routes property access through accessor lookup so user
// getters and setters run as instrumented calls (§4.3).
const preludeGetters = `
function $get(o, k) {
  var g = $lookupGetter(o, k);
  if (g !== undefined) {
    return g.call(o);
  }
  return $rawGet(o, k);
}
function $set(o, k, v) {
  var s = $lookupSetter(o, k);
  if (s !== undefined) {
    s.call(o, v);
    return v;
  }
  return $rawSet(o, k, v);
}
`
