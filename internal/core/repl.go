package core

import (
	"fmt"

	"repro/internal/ast"
	"repro/internal/desugar"
	"repro/internal/interp"
	"repro/internal/parser"
)

// Eval compiles a source snippet with this run's options and executes it as
// a new top-level turn sharing the global environment — a REPL interaction.
// The snippet runs under full execution control: it can be paused, it
// yields on schedule, and an infinite loop in one REPL entry does not wedge
// the host (§6.4: Pyret's REPL is one of the features Stopify subsumes).
//
// onDone receives the completion value or error. The caller pumps the event
// loop (Wait, or its own loop) exactly as for Run.
func (a *AsyncRun) Eval(src string, onDone func(interp.Value, error)) error {
	evalProg, err := parser.Parse(src)
	if err != nil {
		return err
	}
	promoteDeclsToGlobals(evalProg)
	// A trailing expression statement becomes the turn's value, so a REPL
	// can echo it.
	if n := len(evalProg.Body); n > 0 {
		if es, ok := evalProg.Body[n-1].(*ast.ExprStmt); ok {
			evalProg.Body[n-1] = &ast.Return{Arg: es.X}
		}
	}
	a.evalTurns++
	name := fmt.Sprintf("$repl%d", a.evalTurns)
	nm := &desugar.Namer{}
	merged, err := compileProgram(evalProg, a.compiled.Opts, nm, name, false)
	if err != nil {
		return err
	}
	// Define the compiled turn's function in the shared realm...
	if err := a.In.RunProgram(merged); err != nil {
		return err
	}
	fn, ok := a.In.Global.Lookup(name)
	if !ok {
		return fmt.Errorf("stopify: repl turn %s not defined", name)
	}
	// ...and run it through the driver, like $main.
	a.RT.Run(fn, func(v interp.Value, err error) {
		a.finished = true
		if onDone != nil {
			onDone(v, err)
		}
	})
	a.finished = false
	return nil
}

// promoteDeclsToGlobals converts the snippet's top-level declarations into
// assignments so they land in the shared global scope — REPL semantics
// rather than strict-eval semantics. (The turn body becomes a function, so
// a plain declaration would otherwise be turn-local.)
func promoteDeclsToGlobals(prog *ast.Program) {
	var out []ast.Stmt
	for _, s := range prog.Body {
		switch n := s.(type) {
		case *ast.FuncDecl:
			out = append(out, ast.ExprOf(ast.SetId(n.Fn.Name, n.Fn)))
		case *ast.VarDecl:
			for _, d := range n.Decls {
				init := d.Init
				if init == nil {
					init = ast.Undef()
				}
				out = append(out, ast.ExprOf(ast.SetId(d.Name, init)))
			}
		default:
			out = append(out, s)
		}
	}
	prog.Body = out
}

// EvalAndWait is Eval plus pumping the loop to completion; it returns the
// snippet's completion value.
func (a *AsyncRun) EvalAndWait(src string) (interp.Value, error) {
	var result interp.Value
	var rerr error
	if err := a.Eval(src, func(v interp.Value, e error) { result = v; rerr = e }); err != nil {
		return interp.Undefined, err
	}
	if err := a.Wait(); err != nil {
		return interp.Undefined, err
	}
	return result, rerr
}
