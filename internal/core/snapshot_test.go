package core_test

import (
	"bytes"
	"errors"
	"hash/fnv"
	"os"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/eventloop"
	"repro/internal/snapshot"
)

// Snapshot round-trip tests: a guest parked at an arbitrary yield point must
// serialize, restore into a fresh realm (same process here; the CI smoke
// test covers another process), and resume to exactly the outcome of never
// having been serialized. The baseline leg is pause-resume-in-place, which
// has identical scheduling semantics to park-restore by construction; for
// programs that are idle (no pending timers) at the park point, the calm
// run is also asserted equal, per the paper's transparency claim.

// parkQuantum picks a deterministic but program-varied statement count for
// the injected pause, so the corpus collectively parks at many different
// program points without flaky randomness.
func parkQuantum(name string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(name))
	return 200 + h.Sum64()%20_000
}

// runToPark starts the program and pumps until it parks at the injected
// quantum pause or finishes. It returns the run and its output sink.
func runToPark(t *testing.T, c *core.Compiled, backend string, quantum uint64) (*core.AsyncRun, *bytes.Buffer) {
	t.Helper()
	var run *core.AsyncRun
	buf := &bytes.Buffer{}
	run, err := c.NewRun(core.RunConfig{
		Backend:      backend,
		Clock:        eventloop.NewVirtualClock(),
		Out:          buf,
		Seed:         1,
		MaxSteps:     diffBudget,
		QuantumSteps: quantum,
		OnQuantum:    func() { run.Pause(nil) },
	})
	if err != nil {
		t.Fatalf("NewRun: %v", err)
	}
	run.Run(nil)
	for !run.Paused() && run.Loop.Len() > 0 {
		if run.Finished() {
			if _, err := run.Result(); err != nil {
				break
			}
		}
		run.Loop.RunOne()
	}
	return run, buf
}

// finish resumes a parked run (if parked) and drives it to completion,
// draining timers as a page would, and flattens the result.
func finish(run *core.AsyncRun, buf *bytes.Buffer) outcome {
	var o outcome
	if run.Paused() {
		run.Resume()
	}
	if err := run.Wait(); err != nil {
		o.err = err.Error()
	}
	run.Loop.Run()
	o.out = buf.String()
	return o
}

func roundTripProgram(t *testing.T, p diffProgram, backend string) {
	t.Helper()
	c, err := core.Compile(p.src, p.opts)
	if err != nil {
		t.Skipf("does not compile under these options: %v", err)
	}
	quantum := parkQuantum(p.name)

	// Leg A: pause at the quantum, resume in place.
	runA, bufA := runToPark(t, c, backend, quantum)
	parked := runA.Paused()
	idleAtPark := parked && runA.Loop.Len() == 0
	if !parked {
		// The program finished before the quantum fired; nothing to park.
		t.Skipf("finished before quantum %d", quantum)
	}

	// Leg B: identical run, but serialize at the park point and resume a
	// restored twin instead.
	runB, bufB := runToPark(t, c, backend, quantum)
	if !runB.Paused() {
		t.Fatalf("leg B did not park where leg A did")
	}
	blob, err := runB.Snapshot()
	if perr := (*snapshot.PinError)(nil); errors.As(err, &perr) {
		// Pinned guests (live bound functions, Date instances, eval
		// closures) are a documented boundary, not a failure — but the
		// pinned run must be unharmed by the attempt.
		inPlace := finish(runB, bufB)
		if a := finish(runA, bufA); a != inPlace {
			t.Fatalf("pinned snapshot attempt perturbed the run:\n  A: %v\n  B: %v", a, inPlace)
		}
		t.Skipf("pinned: %v", err)
	}
	if err != nil {
		t.Fatalf("Snapshot: %v", err)
	}

	bufR := &bytes.Buffer{}
	restored, err := core.RestoreWith(core.RunConfig{
		Backend:  backend,
		Clock:    eventloop.NewVirtualClock(),
		Out:      bufR,
		MaxSteps: diffBudget,
	}, blob, core.RestoreOptions{ReplayOutput: true})
	if err != nil {
		t.Fatalf("Restore: %v", err)
	}

	a := finish(runA, bufA)
	b := finish(restored, bufR)
	if a != b {
		t.Fatalf("snapshot round-trip diverged:\n  in-place: %v\n  restored: %v", a, b)
	}
	if idleAtPark && !strings.Contains(b.err, "step budget") {
		// No pending tasks at the park point: pausing cannot have reordered
		// anything, so the calm (never-paused) run must match too. The one
		// exception is a run aborted by the step budget: re-entering frames
		// after a pause costs a few statements of its own, so a budgeted
		// program exhausts at a slightly different output point than the
		// never-paused run (equally for in-place resume and restore, as the
		// A/B comparison above proves).
		calm, _ := runStopifiedOutcome(t, c, backend)
		if calm != b {
			t.Fatalf("restored run diverged from calm run:\n  calm:     %v\n  restored: %v", calm, b)
		}
	}
}

// TestSnapshotRoundTripDifferential round-trips the whole corpus through the
// codec at per-program park points, on both engines.
func TestSnapshotRoundTripDifferential(t *testing.T) {
	for _, backend := range []string{core.BackendTree, core.BackendBytecode} {
		for _, p := range corpusPrograms(t) {
			p, backend := p, backend
			t.Run(backend+"/"+p.name, func(t *testing.T) {
				roundTripProgram(t, p, backend)
			})
		}
	}
}

// adversarialPrograms target the codec's hard cases: cyclic graphs, shape
// re-interning with accessors and deletions, escaped closures over shared
// frames, host-object mutation deltas, and value edge cases (-0, NaN,
// numeric-looking keys).
func adversarialPrograms() []diffProgram {
	opts := core.Defaults()
	opts.Getters = true
	mk := func(name, src string) diffProgram {
		return diffProgram{name: name, src: src, opts: opts}
	}
	return []diffProgram{
		mk("cycles", `
			var a = {name: "a"};
			var b = {name: "b", peer: a};
			a.peer = b;
			a.self = a;
			var ring = [a, b];
			ring.push(ring);
			var n = 0;
			for (var i = 0; i < 60000; i++) { n = (n + i) % 97; }
			console.log(a.peer.peer.self.name, b.peer.name, ring[2][0].name, n);
		`),
		mk("accessors", `
			var hits = 0;
			var o = {base: 10};
			Object.defineProperty(o, "twice", {
				get: function () { hits++; return this.base * 2; },
				set: function (v) { this.base = v; },
				enumerable: true
			});
			var before = o.twice;
			var n = 0;
			for (var i = 0; i < 60000; i++) { n = (n + o.twice) % 1000003; }
			o.twice = 21;
			console.log(before, o.twice, o.base, hits, n);
		`),
		mk("escaped-closures", `
			function counter(start) {
				var n = start;
				return {
					inc: function () { n++; return n; },
					dec: function () { n--; return n; },
					read: function () { return n; }
				};
			}
			var c1 = counter(100), c2 = counter(-5);
			var sum = 0;
			for (var i = 0; i < 50000; i++) {
				sum += c1.inc() + c2.dec();
			}
			console.log(c1.read(), c2.read(), sum % 1000003);
		`),
		mk("weird-keys", `
			var o = {};
			o[-0] = "neg-zero-key";
			o[NaN] = "nan-key";
			o["0"] = "zero-string";
			o[""] = "empty";
			o["__proto__x"] = "protoish";
			var vals = [0/-1, 0/0, 1/0, -1/0, 9007199254740993];
			var n = 0;
			for (var i = 0; i < 60000; i++) { n = (n + i * i) % 65521; }
			console.log(o[0], o[NaN], o[""], o["__proto__x"], vals.join(","), n);
		`),
		mk("shape-churn", `
			var objs = [];
			for (var i = 0; i < 50; i++) {
				var o = {a: i};
				if (i % 2) { o.b = i * 2; }
				if (i % 3) { o.c = i * 3; delete o.a; }
				o["k" + (i % 7)] = i;
				objs.push(o);
			}
			var n = 0;
			for (var i = 0; i < 60000; i++) {
				var o = objs[i % objs.length];
				n = (n + (o.a || 0) + (o.b || 0) + (o.c || 0)) % 1000003;
			}
			console.log(n, JSON.stringify ? "js" : "nojs", objs.length);
		`),
		mk("host-deltas", `
			Object.prototype.tagged = "yes";
			Array.prototype.second = function () { return this[1]; };
			var arr = [10, 20, 30];
			var n = 0;
			for (var i = 0; i < 60000; i++) { n = (n + arr.second()) % 99991; }
			console.log(({}).tagged, arr.second(), n);
		`),
		mk("prototype-chains", `
			function Base() { this.kind = "base"; }
			Base.prototype.describe = function () { return "I am " + this.kind; };
			function Derived() { Base.call(this); this.kind = "derived"; }
			Derived.prototype = Object.create(Base.prototype);
			Derived.prototype.shout = function () { return this.describe().toUpperCase(); };
			var d = new Derived();
			var n = 0;
			for (var i = 0; i < 50000; i++) { n = (n + d.shout().length) % 4093; }
			console.log(d.describe(), d.shout(), n);
		`),
		mk("rand-state", `
			var before = [];
			for (var i = 0; i < 3; i++) { before.push(Math.random()); }
			var n = 0;
			for (var i = 0; i < 60000; i++) { n = (n + i) % 31; }
			var after = [];
			for (var i = 0; i < 3; i++) { after.push(Math.random()); }
			console.log(before.length, after.length, before[0] < 1, after[0] < 1, after.join(",").length > 5);
		`),
		mk("sparse-and-strings", `
			var a = [];
			a[0] = "start";
			a[50] = "mid";
			a.big = "non-index";
			var s = "";
			for (var i = 0; i < 40000; i++) { s = "x"; }
			var unicode = "café ☃";
			console.log(a.length, a[50], a.big, s.length, unicode.length, unicode);
		`),
		mk("try-catch-park", `
			function risky(i) {
				if (i % 1000 === 999) { throw {code: i}; }
				return i * 2;
			}
			var caught = 0, sum = 0;
			for (var i = 0; i < 30000; i++) {
				try { sum = (sum + risky(i)) % 1000003; }
				catch (e) { caught += 1; }
			}
			console.log(caught, sum);
		`),
	}
}

// TestSnapshotAdversarial round-trips the hard-case corpus on both engines.
func TestSnapshotAdversarial(t *testing.T) {
	for _, backend := range []string{core.BackendTree, core.BackendBytecode} {
		for _, p := range adversarialPrograms() {
			p, backend := p, backend
			t.Run(backend+"/"+p.name, func(t *testing.T) {
				roundTripProgram(t, p, backend)
			})
		}
	}
}

// TestSnapshotTimers parks a guest whose event loop holds pending timers and
// checks the restored twin fires them in the same order; it also snapshots
// after $main completed (Done state, timers still draining).
func TestSnapshotTimers(t *testing.T) {
	src := `
		var log = [];
		setTimeout(function () { log.push("t50"); console.log(log.join(">")); }, 50);
		setTimeout(function () { log.push("t10"); }, 10);
		var n = 0;
		for (var i = 0; i < 60000; i++) { n = (n + i) % 101; }
		log.push("main" + n);
	`
	p := diffProgram{name: "timers", src: src, opts: core.Defaults()}
	t.Run("parked-with-pending", func(t *testing.T) {
		roundTripProgram(t, p, core.BackendTree)
	})

	t.Run("done-draining", func(t *testing.T) {
		c, err := core.Compile(src, core.Defaults())
		if err != nil {
			t.Fatal(err)
		}
		buf := &bytes.Buffer{}
		run, err := c.NewRun(core.RunConfig{Clock: eventloop.NewVirtualClock(), Out: buf})
		if err != nil {
			t.Fatal(err)
		}
		run.Run(nil)
		for !run.Finished() {
			run.Loop.RunOne()
		}
		// $main is done; both timers are still queued. Park here.
		blob, err := run.Snapshot()
		if err != nil {
			t.Fatalf("Snapshot of done-draining run: %v", err)
		}
		info, err := core.SnapshotMeta(blob)
		if err != nil {
			t.Fatalf("SnapshotMeta: %v", err)
		}
		if !info.Done || info.Paused {
			t.Fatalf("meta = %+v, want Done && !Paused", info)
		}
		bufR := &bytes.Buffer{}
		restored, err := core.Restore(core.RunConfig{Clock: eventloop.NewVirtualClock(), Out: bufR}, blob)
		if err != nil {
			t.Fatalf("Restore: %v", err)
		}
		if !restored.Finished() {
			t.Fatal("restored Done guest should report Finished")
		}
		restored.Loop.Run()
		want := finish(run, buf)
		got := outcome{out: bufR.String()}
		if want != got {
			t.Fatalf("drain divergence:\n  source:   %v\n  restored: %v", want, got)
		}
		if !strings.Contains(got.out, "t10>t50") {
			t.Fatalf("timers fired out of order: %q", got.out)
		}
	})
}

// pinShrinkPrograms is state that used to pin a guest resident — bound
// functions built from captured-native closures, Date instances whose
// methods closed over Go time calls, fire-and-forget timer handles — and
// now serializes as plain data (interp.BoundFunction, interp.DateData, the
// ledger's TimerID/Cancelled fields). Each program holds such state live
// across the park point; a PinError here is a regression, not a boundary.
func pinShrinkPrograms() []diffProgram {
	mk := func(name, src string) diffProgram {
		return diffProgram{name: name, src: src, opts: core.Defaults()}
	}
	return []diffProgram{
		mk("bound-chain", `
			function add3(a, b, c) { return a + b + c; }
			var add1 = add3.bind(null, 1);
			var add2 = add1.bind({ignored: true}, 10);
			var n = 0;
			for (var i = 0; i < 60000; i++) { n = (n + add2(i)) % 1000003; }
			console.log(add3.length, add1.length, add2.length, add2(5), n);
		`),
		mk("bound-construct", `
			function Point(x, y) { this.x = x; this.y = y; }
			Point.prototype.norm = function () { return this.x * this.x + this.y * this.y; };
			var P7 = Point.bind({hijack: "me"}, 7);
			var n = 0;
			for (var i = 0; i < 60000; i++) { n = (n + i) % 4093; }
			var p = new P7(9);
			console.log(p.x, p.y, p.norm(), p instanceof Point, p instanceof P7,
				p.hijack === undefined, n);
		`),
		mk("date-instances", `
			var d0 = new Date();
			var t0 = d0.getTime();
			var fixed = new Date(86400000);
			var n = 0;
			for (var i = 0; i < 60000; i++) { n = (n + i) % 101; }
			var stable = d0.getTime() === t0 && d0.valueOf() === t0;
			console.log(typeof t0, stable, fixed.getTime(), typeof Date(), n);
		`),
		mk("timer-handles", `
			var log = ["start"];
			var t1 = setTimeout(function (a, b) {
				log.push("t1" + a + b);
				console.log(log.join(","));
			}, 30, "x", "y");
			var t2 = setTimeout(function () { log.push("t2-should-not-fire"); }, 20);
			var t3 = setTimeout(function () { log.push("t3"); }, 10);
			clearTimeout(t2);
			clearTimeout(9999);
			var n = 0;
			for (var i = 0; i < 60000; i++) { n = (n + i) % 97; }
			log.push("main" + n + ":" + t1 + ":" + t2 + ":" + t3);
		`),
	}
}

// roundTripNoPin is roundTripProgram with the pin escape hatch closed: the
// program must serialize, restore, and finish byte-identically to the
// in-place leg.
func roundTripNoPin(t *testing.T, p diffProgram, backend string) {
	t.Helper()
	c, err := core.Compile(p.src, p.opts)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	quantum := parkQuantum(p.name)

	runA, bufA := runToPark(t, c, backend, quantum)
	if !runA.Paused() {
		t.Fatalf("program finished before quantum %d; grow its main loop", quantum)
	}
	runB, bufB := runToPark(t, c, backend, quantum)
	if !runB.Paused() {
		t.Fatal("leg B did not park where leg A did")
	}
	blob, err := runB.Snapshot()
	var perr *snapshot.PinError
	if errors.As(err, &perr) {
		t.Fatalf("pin-shrink regression: %s state pinned the guest (kind %q): %v",
			p.name, perr.Kind, err)
	}
	if err != nil {
		t.Fatalf("Snapshot: %v", err)
	}
	_ = bufB

	bufR := &bytes.Buffer{}
	restored, err := core.RestoreWith(core.RunConfig{
		Backend:  backend,
		Clock:    eventloop.NewVirtualClock(),
		Out:      bufR,
		MaxSteps: diffBudget,
	}, blob, core.RestoreOptions{ReplayOutput: true})
	if err != nil {
		t.Fatalf("Restore: %v", err)
	}
	a := finish(runA, bufA)
	b := finish(restored, bufR)
	if a != b {
		t.Fatalf("round trip diverged:\n  in-place: %v\n  restored: %v", a, b)
	}
	if a.out == "" || a.err != "" {
		t.Fatalf("corpus program did not produce clean output: %v", a)
	}
}

// TestSnapshotPinShrink round-trips guests holding live bound functions
// (called and constructed), Date instances, and pending cancelled and
// uncancelled timers with forwarded extra args, on both engines. These were
// all PinError cases before wire v2.
func TestSnapshotPinShrink(t *testing.T) {
	for _, backend := range []string{core.BackendTree, core.BackendBytecode} {
		for _, p := range pinShrinkPrograms() {
			p, backend := p, backend
			t.Run(backend+"/"+p.name, func(t *testing.T) {
				roundTripNoPin(t, p, backend)
			})
		}
	}
}

// TestSnapshotPins checks that each still-documented non-serializable
// obstruction yields a typed PinError naming it, and leaves the guest
// runnable. (Bound functions and Date instances used to live in this list;
// since wire v2 they serialize — TestSnapshotPinShrink covers them.)
func TestSnapshotPins(t *testing.T) {
	evalOpts := core.Defaults()
	evalOpts.Eval = true
	cases := []struct {
		name, src  string
		opts       core.Opts
		wantKind   string
		wantReason string
	}{
		{"eval-closure", `
			eval("make = function (n) { return function (m) { return n + m; }; };");
			var f = make(7);
			var n = 0;
			for (var i = 0; i < 60000; i++) { n = (n + f(i)) % 1000003; }
			console.log(n);
		`, evalOpts, snapshot.PinEval, "eval"},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			c, err := core.Compile(tc.src, tc.opts)
			if err != nil {
				t.Fatal(err)
			}
			run, buf := runToPark(t, c, core.BackendTree, 5000)
			if !run.Paused() {
				t.Fatal("program did not park")
			}
			_, err = run.Snapshot()
			var perr *snapshot.PinError
			if !errors.As(err, &perr) {
				t.Fatalf("Snapshot = %v, want *snapshot.PinError", err)
			}
			if perr.Kind != tc.wantKind {
				t.Fatalf("pin kind = %q, want %q", perr.Kind, tc.wantKind)
			}
			if !strings.Contains(perr.Reason, tc.wantReason) {
				t.Fatalf("pin reason %q does not mention %q", perr.Reason, tc.wantReason)
			}
			// The failed snapshot must not have perturbed the run.
			o := finish(run, buf)
			if o.err != "" || o.out == "" {
				t.Fatalf("pinned run damaged: %v", o)
			}
		})
	}
}

// TestSnapshotWireV1Golden decodes a blob captured from the pre-v2 binary
// (testdata/v1_parked.blob: closures plus two pending timers, parked
// mid-loop at quantum 5000, seed 1, virtual clock). Wire v1 has no
// bound/date node kinds, no timer-handle counter, and re-links host refs
// against a smaller host graph; the legacy registry view must reproduce
// that realm's ordinals exactly so guests parked before the upgrade still
// restore. Re-parking the restored guest then writes wire v2 — the upgrade
// path for long-parked fleets.
func TestSnapshotWireV1Golden(t *testing.T) {
	blob, err := os.ReadFile("testdata/v1_parked.blob")
	if err != nil {
		t.Fatal(err)
	}
	want, err := os.ReadFile("testdata/v1_parked.golden")
	if err != nil {
		t.Fatal(err)
	}
	if got := blob[4]; got != 1 {
		t.Fatalf("golden blob version byte = %d, want 1 (re-capture it from a pre-v2 binary)", got)
	}
	info, err := core.SnapshotMeta(blob)
	if err != nil {
		t.Fatalf("SnapshotMeta on v1 blob: %v", err)
	}
	if info.Steps == 0 || info.MemUsed == 0 {
		t.Fatalf("golden blob carries no accounting: %+v", info)
	}

	buf := &bytes.Buffer{}
	run, err := core.Restore(core.RunConfig{
		Clock: eventloop.NewVirtualClock(), Out: buf, MaxSteps: diffBudget,
	}, blob)
	if err != nil {
		t.Fatalf("decoding the v1 golden blob: %v", err)
	}
	if run.Steps() != info.Steps || run.MemUsed() != info.MemUsed {
		t.Fatalf("restored accounting (%d, %d) != blob header (%d, %d)",
			run.Steps(), run.MemUsed(), info.Steps, info.MemUsed)
	}

	// Re-park immediately: the restored guest lives in a v2 realm, so its
	// next snapshot is wire v2. Finish that twin instead of the original to
	// cover the whole v1 → restore → v2 → restore chain.
	blob2, err := run.Snapshot()
	if err != nil {
		t.Fatalf("re-parking restored v1 guest: %v", err)
	}
	if got := blob2[4]; got != snapshot.Version {
		t.Fatalf("re-park wrote version %d, want %d", got, snapshot.Version)
	}
	buf2 := &bytes.Buffer{}
	run2, err := core.Restore(core.RunConfig{
		Clock: eventloop.NewVirtualClock(), Out: buf2, MaxSteps: diffBudget,
	}, blob2)
	if err != nil {
		t.Fatalf("restoring the re-parked blob: %v", err)
	}
	o := finish(run2, buf2)
	if o.err != "" || o.out != string(want) {
		t.Fatalf("v1 golden run diverged:\n  got:  %v\n  want: out=%q", o, want)
	}
}

// TestSnapshotOutputSinkPin: an output sink the codec cannot carry by value
// pins the guest with a clear reason instead of dropping output.
func TestSnapshotOutputSinkPin(t *testing.T) {
	c, err := core.Compile(`var n = 0; for (var i = 0; i < 60000; i++) { n += i; } console.log(n);`, core.Defaults())
	if err != nil {
		t.Fatal(err)
	}
	var run *core.AsyncRun
	sink := &nullableBuf{} // has String but no Bytes
	run, err = c.NewRun(core.RunConfig{
		Clock: eventloop.NewVirtualClock(), Out: sink,
		QuantumSteps: 5000, OnQuantum: func() { run.Pause(nil) },
	})
	if err != nil {
		t.Fatal(err)
	}
	run.Run(nil)
	for !run.Paused() && run.Loop.Len() > 0 {
		run.Loop.RunOne()
	}
	_, err = run.Snapshot()
	var perr *snapshot.PinError
	if !errors.As(err, &perr) {
		t.Fatalf("Snapshot = %v, want *snapshot.PinError for opaque sink", err)
	}
	if !strings.Contains(perr.Reason, "output sink") {
		t.Fatalf("pin reason %q should mention the output sink", perr.Reason)
	}
}

// TestSnapshotAccounting: cumulative step and memory counters survive the
// round trip, so budgets bound a guest's whole life across parks.
func TestSnapshotAccounting(t *testing.T) {
	c, err := core.Compile(`
		var arr = [];
		for (var i = 0; i < 20000; i++) { arr.push({i: i}); }
		console.log(arr.length);
	`, core.Defaults())
	if err != nil {
		t.Fatal(err)
	}
	run, _ := runToPark(t, c, core.BackendTree, 8000)
	if !run.Paused() {
		t.Fatal("did not park")
	}
	steps, mem := run.Steps(), run.MemUsed()
	if steps == 0 || mem == 0 {
		t.Fatalf("expected nonzero accounting at park, got steps=%d mem=%d", steps, mem)
	}
	blob, err := run.Snapshot()
	if err != nil {
		t.Fatalf("Snapshot: %v", err)
	}
	info, err := core.SnapshotMeta(blob)
	if err != nil {
		t.Fatal(err)
	}
	if info.Steps != steps || info.MemUsed != mem {
		t.Fatalf("meta accounting (%d, %d) != live (%d, %d)", info.Steps, info.MemUsed, steps, mem)
	}
	restored, err := core.Restore(core.RunConfig{Clock: eventloop.NewVirtualClock(), Out: &bytes.Buffer{}}, blob)
	if err != nil {
		t.Fatalf("Restore: %v", err)
	}
	if restored.Steps() != steps || restored.MemUsed() != mem {
		t.Fatalf("restored accounting (%d, %d) != snapshot (%d, %d)",
			restored.Steps(), restored.MemUsed(), steps, mem)
	}
	restored.Resume()
	if err := restored.Wait(); err != nil {
		t.Fatalf("restored run failed: %v", err)
	}
	if restored.Steps() <= steps {
		t.Fatal("restored run did not continue counting from the snapshot figure")
	}
}
