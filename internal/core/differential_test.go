package core_test

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"testing"

	"repro/internal/core"
	"repro/internal/eventloop"
	"repro/internal/langs"
	"repro/internal/parser"
)

// The differential harness: every program of the repository's corpora runs
// under both execution engines — the tree-walker and the bytecode engine —
// and must produce identical console output, identical errors (including
// none), and the same completion kind. This is the primary safety net for
// the second engine: the bytecode compiler is allowed to lower anything it
// wants, as long as no program can tell.

// diffBudget bounds each run; both engines abort with interp.ErrStepBudget
// at the same statement boundary, so a budgeted divergence is still a real
// divergence.
const diffBudget = 3_000_000

// outcome flattens a run's result into a comparable record.
type outcome struct {
	out   string
	err   string
	panic string
}

func (o outcome) String() string {
	return fmt.Sprintf("out=%q err=%q panic=%q", o.out, o.err, o.panic)
}

// runRawOutcome executes source raw under the given backend, capturing
// panics (uncaught event-loop exceptions crash the page, for both engines
// alike) so they compare as outcomes instead of killing the harness.
func runRawOutcome(src, backend string) outcome {
	return runRawBudget(src, backend, diffBudget)
}

func runRawBudget(src, backend string, budget uint64) (o outcome) {
	defer func() {
		if r := recover(); r != nil {
			o.panic = fmt.Sprint(r)
		}
	}()
	out, err := core.RunRaw(src, core.RunConfig{
		Backend:  backend,
		Clock:    eventloop.NewVirtualClock(),
		Seed:     1,
		MaxSteps: budget,
	})
	o.out = out
	if err != nil {
		o.err = err.Error()
	}
	return o
}

// runStopifiedOutcome compiles once (compilation is engine-independent) and
// executes under the given backend. It returns the outcome plus the number
// of bytecode chunk invocations, so callers can assert the bytecode engine
// actually ran.
func runStopifiedOutcome(t *testing.T, c *core.Compiled, backend string) (o outcome, chunkRuns uint64) {
	t.Helper()
	defer func() {
		if r := recover(); r != nil {
			o.panic = fmt.Sprint(r)
		}
	}()
	var buf nullableBuf
	run, err := c.NewRun(core.RunConfig{
		Backend:  backend,
		Clock:    eventloop.NewVirtualClock(),
		Out:      &buf,
		Seed:     1,
		MaxSteps: diffBudget,
	})
	if err != nil {
		o.err = err.Error()
		return o, 0
	}
	if rerr := run.RunToCompletion(); rerr != nil {
		o.err = rerr.Error()
	}
	run.Loop.Run() // drain remaining timers, as a page would
	o.out = buf.String()
	_, _, runs := run.In.BytecodeStats()
	return o, runs
}

type nullableBuf struct{ b []byte }

func (n *nullableBuf) Write(p []byte) (int, error) { n.b = append(n.b, p...); return len(p), nil }
func (n *nullableBuf) String() string              { return string(n.b) }

// diffProgram is one corpus entry.
type diffProgram struct {
	name string
	src  string
	opts core.Opts // for the stopified leg
}

// corpusPrograms assembles the full differential corpus: every language
// benchmark, the Octane/Kraken-like suites, the JavaScript sources embedded
// in the examples/ programs, and hand-written edge cases covering the bug
// classes PRs 1–2 fixed.
func corpusPrograms(t *testing.T) []diffProgram {
	var progs []diffProgram

	for _, p := range langs.All() {
		opts := p.Opts(core.Defaults())
		opts.Timer = "countdown"
		opts.CountdownN = 1000
		for _, b := range p.Benchmarks {
			progs = append(progs, diffProgram{
				name: p.Name + "/" + b.Name, src: b.Source, opts: opts,
			})
		}
	}
	js := langs.JavaScript()
	jsOpts := js.Opts(core.Defaults())
	jsOpts.Timer = "countdown"
	jsOpts.CountdownN = 1000
	for _, b := range append(langs.OctaneLike(), langs.KrakenLike()...) {
		progs = append(progs, diffProgram{name: "js/" + b.Name, src: b.Source, opts: jsOpts})
	}

	for _, ex := range exampleSources(t) {
		progs = append(progs, diffProgram{name: ex.name, src: ex.src, opts: core.Defaults()})
	}

	for i, src := range edgeCasePrograms {
		progs = append(progs, diffProgram{
			name: fmt.Sprintf("edge/%02d", i), src: src, opts: core.Defaults(),
		})
	}
	for i, src := range valueReprEdgePrograms {
		progs = append(progs, diffProgram{
			name: fmt.Sprintf("valedge/%02d", i), src: src, opts: core.Defaults(),
		})
	}
	for i, src := range unicodeEdgePrograms {
		progs = append(progs, diffProgram{
			name: fmt.Sprintf("unicode/%02d", i), src: src, opts: core.Defaults(),
		})
	}
	return progs
}

// exampleSources extracts the JavaScript programs embedded as raw string
// literals in examples/*/main.go — any backquoted literal that parses as a
// nonempty program joins the corpus.
func exampleSources(t *testing.T) []struct{ name, src string } {
	t.Helper()
	var out []struct{ name, src string }
	files, err := filepath.Glob(filepath.Join("..", "..", "examples", "*", "main.go"))
	if err != nil || len(files) == 0 {
		t.Fatalf("examples/ not found: %v", err)
	}
	rawString := regexp.MustCompile("(?s)`[^`]*`")
	for _, f := range files {
		data, err := os.ReadFile(f)
		if err != nil {
			t.Fatal(err)
		}
		for i, m := range rawString.FindAllString(string(data), -1) {
			src := m[1 : len(m)-1]
			prog, perr := parser.Parse(src)
			if perr != nil || len(prog.Body) == 0 {
				continue
			}
			out = append(out, struct{ name, src string }{
				name: fmt.Sprintf("example/%s/%d", filepath.Base(filepath.Dir(f)), i),
				src:  src,
			})
		}
	}
	if len(out) == 0 {
		t.Fatal("no example sources extracted")
	}
	return out
}

// edgeCasePrograms are the hand-written regression programs: the compiler
// edge cases the bytecode engine must not get wrong, wrapped in functions
// so the bytecode path (which only handles resolved function bodies)
// actually executes them.
var edgeCasePrograms = []string{
	// Elided array holes, length, and join.
	`function f() { var a = [,1,,3,,]; return a.length + ":" + a.join("-"); }
	 console.log(f());`,
	// delete arr[i] with named properties present.
	`function f() { var a = [1,2,3]; a.foo = "x"; delete a[1];
	 return a[1] + "/" + a.length + "/" + a.foo; }
	 console.log(f());`,
	// Accessor vs data shape kinds, including conversion in place.
	`function f() {
	   var o = { get x() { return 1; }, set x(v) { this.y = v; } };
	   var before = o.x; o.x = 42; var o2 = { x: 5 }; o2.x = 6;
	   return before + "," + o.y + "," + o2.x;
	 }
	 console.log(f());`,
	// break/continue through labeled loops, including from a catch.
	`function f() {
	   var log = "";
	   outer: for (var i = 0; i < 4; i++) {
	     inner: for (var j = 0; j < 4; j++) {
	       if (j === 1) { continue inner; }
	       if (j === 2 && i === 1) { continue outer; }
	       try { if (i === 2) { break outer; } } catch (e) {}
	       log += i + "" + j + ";";
	     }
	   }
	   return log;
	 }
	 console.log(f());`,
	// Labeled break out of a switch inside a loop.
	`function f() {
	   var s = "";
	   loop: for (var i = 0; i < 5; i++) {
	     switch (i) {
	       case 1: s += "one"; break;
	       case 2: s += "two"; continue loop;
	       case 3: break loop;
	       default: s += "d" + i;
	     }
	     s += ".";
	   }
	   return s;
	 }
	 console.log(f());`,
	// arguments materialization and mutation.
	`function f(a, b) { arguments[0] = 9; arguments[5] = "x";
	 return a + "," + arguments.length + "," + arguments[5] + "," + arguments[1]; }
	 console.log(f(1, 2, 3));`,
	// try/finally (escape hatch) interacting with return and loops.
	`function f() {
	   var s = "";
	   for (var i = 0; i < 3; i++) {
	     try { if (i === 1) { continue; } s += "t" + i; } finally { s += "f" + i; }
	   }
	   try { return s + "|ret"; } finally { s += "never-seen"; }
	 }
	 console.log(f());`,
	// finally overriding a return completion.
	`function f() { try { return "a"; } finally { return "b"; } }
	 console.log(f());`,
	// throw through nested handlers, rethrow, and error identity.
	`function f() {
	   var s = "";
	   try {
	     try { throw new Error("boom"); } catch (e) { s += "c1:" + e.message + ";"; throw e; }
	   } catch (e2) { s += "c2:" + e2.message; }
	   return s;
	 }
	 console.log(f());`,
	// for-in over an object mutated mid-loop (snapshot semantics), plus
	// prototype properties and implicit-global loop variable semantics.
	`function f() {
	   var o = { a: 1, b: 2, c: 3 };
	   var s = "";
	   for (var k in o) { s += k; if (k === "a") { delete o.b; o.d = 4; } }
	   return s;
	 }
	 console.log(f());`,
	// Computed member compound assignment: index stringified exactly once.
	`function f() {
	   var calls = 0;
	   var key = { toString: function () { calls++; return "k"; } };
	   var o = { k: 10 };
	   o[key] += 5;
	   o[key]++;
	   return o.k + "/" + calls;
	 }
	 console.log(f());`,
	// typeof of unresolvable names; void; delete of non-members.
	`function f() { return typeof nothingHere + "," + typeof f + "," +
	 (void "x") + "," + (delete 1); }
	 console.log(f());`,
	// Deep recursion: both engines must throw the same RangeError.
	`function f(n) { return f(n + 1); }
	 try { f(0); } catch (e) { console.log(e.name); }`,
	// Step-budget exhaustion: both engines abort identically.
	`function f() { var i = 0; while (true) { i++; } }
	 f();`,
	// Closures over loop variables and catch parameters.
	`function f() {
	   var fns = [];
	   for (var i = 0; i < 3; i++) { fns.push(function () { return i; }) }
	   var c;
	   try { throw 7; } catch (e) { c = function () { return e; }; }
	   return fns[0]() + "," + fns[2]() + "," + c();
	 }
	 console.log(f());`,
	// Switch fallthrough with default in the middle.
	`function f(x) {
	   var s = "";
	   switch (x) { case 1: s += "1"; default: s += "d"; case 2: s += "2"; }
	   return s;
	 }
	 console.log(f(1), f(2), f(3));`,
	// Getter/setter invocation through member reads in loops (IC reuse).
	`function f() {
	   var hits = 0;
	   var o = { get v() { hits++; return hits; } };
	   var sum = 0;
	   for (var i = 0; i < 5; i++) { sum += o.v; }
	   return sum + "/" + hits;
	 }
	 console.log(f());`,
	// String/number coercion corners fixed in PR 2.
	`function f() { return (1e20 | 0) + "," + (1e20 >>> 0) + "," + String(-0) + "," +
	 ({} + "") + "," + (-0 === 0); }
	 console.log(f());`,
	// Event-loop interleaving with timers.
	`var log = [];
	 function tick(n) { log.push(n); if (n < 3) { setTimeout(function () { tick(n + 1); }, 10); } }
	 setTimeout(function () { log.push("late"); console.log(log.join(",")); }, 100);
	 tick(0);`,
	// eval of function-defining code (dynamic fallback path).
	`function mk(src) { return eval(src); }
	 var g = mk("function g(x) { return x * 2; } g");
	 console.log(typeof g === "function" ? g(21) : "no-eval");`,
	// `new boundFn()` constructs the target: bound args prepended, boundThis
	// ignored, instances land on the target's prototype chain.
	`function Pair(a, b) { this.a = a; this.b = b; }
	 Pair.prototype.sum = function () { return this.a + this.b; };
	 var P1 = Pair.bind({poison: true}, 10);
	 var p = new P1(5);
	 console.log(p.a, p.b, p.sum(), p.poison === undefined, p instanceof Pair, p instanceof P1);`,
	// Timer handles: real distinct IDs, cancellation (double and unknown
	// cancels are no-ops), extra setTimeout args forwarded to the callback.
	`var a = setTimeout(function () { console.log("A"); }, 20);
	 var b = setTimeout(function (x, y) { console.log("B", x, y); }, 10, "p", "q");
	 var c = setTimeout(function () { console.log("C-dead"); }, 5);
	 console.log(typeof a, a !== b, b !== c, a >= 1);
	 clearTimeout(c);
	 clearTimeout(c);
	 clearTimeout(12345);`,
	// Date without new returns a string (spec 21.4.2); a Date instance's
	// time-value is a data slot, stable after the clock advances.
	`var s = Date();
	 var d = new Date();
	 var t0 = d.getTime();
	 setTimeout(function () {
	   console.log(typeof s, s.length > 10, d.getTime() === t0, typeof d.valueOf());
	 }, 25);`,
	// Bound .length: target arity minus bound args, floored at zero,
	// through re-binding chains.
	`function f4(a, b, c, d) { return a; }
	 var b0 = f4.bind(null);
	 var b2 = f4.bind(null, 1, 2);
	 var b9 = b2.bind(null, 3, 4, 5, 6);
	 console.log(f4.length, b0.length, b2.length, b9.length);`,
	// instanceof consults the bound chain's ultimate target prototype.
	`function Animal() {}
	 function Dog() {}
	 Dog.prototype = new Animal();
	 var D = Dog.bind(null);
	 var DD = D.bind(null);
	 var d = new DD();
	 console.log(d instanceof DD, d instanceof D, d instanceof Dog, d instanceof Animal, typeof DD);`,
}

// valueReprEdgePrograms pin the numeric/string boundary behavior of the
// tagged Value representation (ISSUE 4): the distinctions the unboxed
// representation must preserve (-0's sign, NaN's non-reflexivity, 2^53
// integer exactness, string identity through concat chains and coercions)
// exercised end-to-end so both engines — and raw versus stopified runs —
// agree byte-for-byte. They also seed FuzzBytecodeVsTreewalker.
var valueReprEdgePrograms = []string{
	// -0 as an array key must read/write the same slot as 0; its sign
	// stays observable through division and Infinity formatting.
	`function f() {
	   var a = [10, 20, 30];
	   var z = -0;
	   a[z] = 99;
	   return a[0] + "," + a[-0] + "," + (1 / z) + "," + String(z) + "," + (z === 0);
	 }
	 console.log(f());`,
	// -0 and NaN as object keys: both coerce through String(), so -0
	// lands on "0" and NaN on "NaN".
	`function f() {
	   var o = {};
	   o[-0] = "neg";
	   o[0] = "pos";
	   o[NaN] = "nan";
	   o[0 / 0] = "nan2";
	   var ks = [];
	   for (var k in o) { ks.push(k); }
	   return ks.join("|") + ";" + o["0"] + ";" + o["NaN"];
	 }
	 console.log(f());`,
	// NaN in switch dispatch: never matches any case, including NaN
	// itself; strict equality drives case selection.
	`function f(x) {
	   switch (x) {
	     case NaN: return "nan-case";
	     case 0: return "zero";
	     case "NaN": return "string-nan";
	     default: return "default";
	   }
	 }
	 console.log(f(NaN), f(0 / 0), f(-0), f("NaN"), f(0));`,
	// NaN in a Map-like dispatch table: property lookup via coercion DOES
	// unify every NaN (one "NaN" key), unlike ===.
	`function f() {
	   var table = {};
	   table[NaN] = 0;
	   table[0 / 0] = (table[NaN] || 0) + 1;
	   var hits = 0;
	   var probes = [NaN, 0 / 0, Infinity - Infinity];
	   for (var i = 0; i < probes.length; i++) {
	     if (table[probes[i]] === 1) { hits++; }
	   }
	   return hits + "/" + (NaN === NaN) + "/" + (NaN !== NaN);
	 }
	 console.log(f());`,
	// "" + bigFloat: large magnitudes, exponent formatting, and the 2^53
	// boundary where integer exactness ends.
	`function f() {
	   var parts = [];
	   parts.push("" + 1e21);
	   parts.push("" + 1e20);
	   parts.push("" + 123456789012345680000);
	   parts.push("" + 9007199254740991);
	   parts.push("" + (9007199254740991 + 1));
	   parts.push("" + (9007199254740991 + 2));
	   parts.push("" + 5e-7);
	   parts.push("" + 0.000001);
	   parts.push("" + -1.5e300);
	   return parts.join(" ");
	 }
	 console.log(f());`,
	// String concat chains: growth across many appends, identity of the
	// result under ===, and .length bookkeeping along the way.
	`function f() {
	   var s = "";
	   for (var i = 0; i < 50; i++) {
	     s = s + i + "-";
	   }
	   var t = "";
	   for (var j = 0; j < 50; j++) {
	     t += j;
	     t += "-";
	   }
	   return (s === t) + "/" + s.length + "/" + s.charAt(17) + "/" + s.slice(0, 8);
	 }
	 console.log(f());`,
	// Numeric strings versus numbers at boundaries: loose equality,
	// ordering mixing strings and numbers, hex string coercion.
	`function f() {
	   var r = [];
	   r.push("10" == 10, "0x10" == 16, "" == 0, " \t" == 0, "1e3" == 1000);
	   r.push("10" < "9", 10 < 9, "10" < 9, [2] == 2);
	   r.push(+"-0" === 0, 1 / +"-0");
	   return r.join(",");
	 }
	 console.log(f());`,
	// Integer-exactness of the safe range through arithmetic: the tagged
	// representation must keep every 2^53-range integer bit-exact through
	// +, *, and string round-trips.
	`function f() {
	   var max = 9007199254740991;
	   var a = max - 1;
	   var ok = 0;
	   if (a + 1 === max) { ok++; }
	   if (max + 1 === max + 2) { ok++; }
	   if ((max + "") === "9007199254740991") { ok++; }
	   if (parseInt(max + "") === max) { ok++; }
	   var big = 1;
	   for (var i = 0; i < 53; i++) { big = big * 2; }
	   if (big === max + 1) { ok++; }
	   return ok;
	 }
	 console.log(f());`,
	// typeof/=== lattice over every primitive class, as runtime strings.
	`function f() {
	   var vals = [undefined, null, true, 0, -0, NaN, 1.5, "", "0", "x"];
	   var s = "";
	   for (var i = 0; i < vals.length; i++) {
	     s += typeof vals[i] + ":";
	     for (var j = 0; j < vals.length; j++) {
	       s += (vals[i] === vals[j]) ? "1" : "0";
	     }
	     s += ";";
	   }
	   return s;
	 }
	 console.log(f());`,
	// String indexing and char coercion at the byte level, plus number
	// formatting of char codes flowing back into arithmetic.
	`function f() {
	   var s = "The quick brown fox";
	   var acc = 0;
	   var out = "";
	   for (var i = 0; i < s.length; i++) {
	     acc = (acc * 31 + s.charCodeAt(i)) % 1000003;
	     out = s[i] + out;
	   }
	   return acc + "|" + out + "|" + s[100] + "|" + s["3"];
	 }
	 console.log(f());`,
}

// unicodeEdgePrograms pin the WTF-8 single-character semantics (ISSUE 8):
// strings are byte-indexed, but charAt/computed-index/split("") decode the
// character starting at the offset, charCodeAt returns the decoded code
// point, and fromCharCode round-trips every BMP code unit including lone
// surrogates. Joining the corpus gives them all three legs: raw and
// stopified engine-vs-engine equality plus the snapshot round-trip suite.
var unicodeEdgePrograms = []string{
	// Byte length vs decoded single-character reads across 1/2/3/4-byte
	// characters; charCodeAt yields code points, not lead bytes.
	`function f() {
	   var s = "añ€🙂";
	   return s.length + "|" + s[0] + s[1] + s[3] + s[6] + "|" + s.charAt(3) +
	     "|" + s.charCodeAt(1) + "," + s.charCodeAt(3) + "," + s.charCodeAt(6);
	 }
	 console.log(f());`,
	// codePointAt decodes whole code points (4-byte 🙂 included) and at()
	// takes negative byte offsets from the end.
	`function f() {
	   var s = "añ€🙂";
	   return s.codePointAt(0) + "," + s.codePointAt(1) + "," + s.codePointAt(6) +
	     "|" + s.at(0) + s.at(-4) + "|" + s.at(99) + "," + s.codePointAt(99);
	 }
	 console.log(f());`,
	// split("") segments at character boundaries and join round-trips.
	`function f() {
	   var s = "héllo wörld", a = s.split("");
	   var lens = "";
	   for (var i = 0; i < a.length; i++) { lens += a[i].length; }
	   return a.length + "|" + a.join("") + "|" + (a.join("") === s) + "|" + lens;
	 }
	 console.log(f());`,
	// fromCharCode(c).charCodeAt(0) === c for BMP code units, surrogates
	// included; encoded byte lengths follow the 1/2/3-byte UTF-8 bands.
	`function f() {
	   var codes = [65, 0xE9, 0x20AC, 0xD800, 0xDFFF, 0xFFFF, 0x7F, 0x80, 0x7FF, 0x800];
	   var ok = 0, s = "";
	   for (var i = 0; i < codes.length; i++) {
	     var c = String.fromCharCode(codes[i]);
	     if (c.charCodeAt(0) === codes[i]) { ok++; }
	     s += c;
	   }
	   return ok + "|" + s.length;
	 }
	 console.log(f());`,
	// Byte-offset semantics of concat/indexOf/slice on multi-byte text.
	`function f() {
	   var c = "€" + "円";
	   return c.length + "|" + c.indexOf("円") + "|" + c.slice(3) + "|" +
	     c.charAt(0) + "|" + c.split("").length;
	 }
	 console.log(f());`,
	// Mid-sequence offsets degrade to the one-byte view (self-consistent
	// for arbitrary bytes); a character-start offset reads the whole char.
	`function f() {
	   var s = "€";
	   return s[0] + "|" + s[1].length + "," + s[2].length + "|" +
	     s.charCodeAt(1) + "," + s.charCodeAt(2) + "|" + (s[0] === s);
	 }
	 console.log(f());`,
	// \u escapes agree with fromCharCode, including a lone surrogate.
	`function f() {
	   var s = "é€\ud834";
	   return s.length + "|" + s.charCodeAt(0) + "," + s.charCodeAt(2) + "," +
	     s.charCodeAt(5) + "|" + (s === String.fromCharCode(0xE9, 0x20AC, 0xD834));
	 }
	 console.log(f());`,
}

// TestDifferentialRaw runs the whole corpus raw under both engines.
func TestDifferentialRaw(t *testing.T) {
	for _, p := range corpusPrograms(t) {
		p := p
		t.Run("raw/"+p.name, func(t *testing.T) {
			tree := runRawOutcome(p.src, core.BackendTree)
			bc := runRawOutcome(p.src, core.BackendBytecode)
			if tree != bc {
				t.Fatalf("raw divergence:\n  tree:     %v\n  bytecode: %v", tree, bc)
			}
		})
	}
}

// TestDifferentialStopified compiles the corpus with each program's own
// sub-language options and runs the instrumented output under both engines.
func TestDifferentialStopified(t *testing.T) {
	sawBytecode := false
	for _, p := range corpusPrograms(t) {
		p := p
		t.Run("stopified/"+p.name, func(t *testing.T) {
			c, err := core.Compile(p.src, p.opts)
			if err != nil {
				// Programs outside the configured sub-language are fine —
				// the compile error does not depend on the engine.
				t.Skipf("does not compile under these options: %v", err)
			}
			tree, _ := runStopifiedOutcome(t, c, core.BackendTree)
			bc, runs := runStopifiedOutcome(t, c, core.BackendBytecode)
			if tree != bc {
				t.Fatalf("stopified divergence:\n  tree:     %v\n  bytecode: %v", tree, bc)
			}
			if runs > 0 {
				sawBytecode = true
			}
		})
	}
	if !sawBytecode {
		t.Fatal("bytecode engine never executed a chunk across the whole corpus")
	}
}
