package core

import (
	"strings"
	"testing"
)

// The resolver must leave global references dynamic so that code defined at
// runtime through the eval hook — which the resolver can never see when the
// referring function is compiled — still binds correctly.

func TestResolverEvalLateBindingRaw(t *testing.T) {
	// f is resolved before g exists anywhere; eval defines g in the global
	// frame afterwards, and the call must find it dynamically.
	src := `
function f() { return g(); }
eval("function g() { return 42; }");
console.log(f());
eval("g = function () { return 7; };");
console.log(f());
`
	out, err := RunRaw(src, RunConfig{})
	if err != nil {
		t.Fatalf("raw run: %v", err)
	}
	if out != "42\n7\n" {
		t.Fatalf("late-bound eval globals broken: %q", out)
	}
}

func TestResolverEvalLateBindingStopified(t *testing.T) {
	// Under the stopified eval hook the fragment is wrapped in a function,
	// so declarations stay local to the turn; an (implicit-global)
	// assignment is how eval'd code creates a binding that outlives it.
	src := `
function f() { return g(); }
eval("g = function () { return 42; };");
console.log(f());
`
	o := Defaults()
	o.Eval = true
	out, err := RunSource(src, o, RunConfig{})
	if err != nil {
		t.Fatalf("stopified run: %v", err)
	}
	if !strings.Contains(out, "42") {
		t.Fatalf("stopified eval late binding broken: %q", out)
	}
}

func TestResolverEvalSeesGlobalsNotLocals(t *testing.T) {
	// Eval'd code executes in the global frame (the paper's restricted
	// "T" sub-language of §4.3); a resolved local named like a global must
	// keep its slot value while eval writes the global.
	src := `
var x = 1;
function f() { var x = 2; eval("x = 3;"); return x; }
console.log(f(), x);
`
	out, err := RunRaw(src, RunConfig{})
	if err != nil {
		t.Fatalf("raw run: %v", err)
	}
	if out != "2 3\n" {
		t.Fatalf("eval scope isolation broken: %q", out)
	}
}
