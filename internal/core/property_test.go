package core

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/eventloop"
)

// TestRandomProgramsSurviveStopify is the pipeline's property test: for
// randomly generated (terminating, deterministic) programs, instrumented
// execution under every continuation strategy — with yields forced every
// few calls — must print exactly what raw execution prints.
func TestRandomProgramsSurviveStopify(t *testing.T) {
	seeds := 30
	if testing.Short() {
		seeds = 8
	}
	for seed := 0; seed < seeds; seed++ {
		src := generateProgram(int64(seed))
		want, err := RunRaw(src, cfgVirtual())
		if err != nil {
			t.Fatalf("seed %d: raw run failed: %v\n%s", seed, err, src)
		}
		for _, cont := range []string{"checked", "exceptional", "eager"} {
			got, err := RunSource(src, hammer(cont), cfgVirtual())
			if err != nil {
				t.Fatalf("seed %d (%s): %v\n%s", seed, cont, err, src)
			}
			if got != want {
				t.Fatalf("seed %d (%s) diverged:\n%s\nraw: %q\ngot: %q", seed, cont, src, want, got)
			}
		}
	}
}

// TestRandomProgramsDeterministic double-checks the generator itself: the
// same seed yields the same program and the same output.
func TestRandomProgramsDeterministic(t *testing.T) {
	a := generateProgram(42)
	b := generateProgram(42)
	if a != b {
		t.Fatal("generator is not deterministic")
	}
	out1, err1 := RunRaw(a, RunConfig{Clock: eventloop.NewVirtualClock(), Seed: 9})
	out2, err2 := RunRaw(b, RunConfig{Clock: eventloop.NewVirtualClock(), Seed: 9})
	if err1 != nil || err2 != nil || out1 != out2 {
		t.Fatalf("random program not deterministic: %q vs %q", out1, out2)
	}
}

// generateProgram builds a random but guaranteed-terminating program:
// helper functions call only earlier helpers (no recursion), loops are
// counter-bounded, and all data is numeric.
func generateProgram(seed int64) string {
	g := &progGen{rnd: rand.New(rand.NewSource(seed))}
	var b strings.Builder

	// Helper functions: fn0 is pure; fn1 may call fn0; fn2 may call both.
	for i := 0; i < 3; i++ {
		fmt.Fprintf(&b, "function fn%d(a, b) {\n", i)
		stmts := 1 + g.rnd.Intn(3)
		for s := 0; s < stmts; s++ {
			fmt.Fprintf(&b, "  %s = %s;\n", g.pick([]string{"a", "b"}), g.expr(2, i, []string{"a", "b"}))
		}
		fmt.Fprintf(&b, "  return %s;\n}\n", g.expr(2, i, []string{"a", "b"}))
	}

	// Globals.
	vars := []string{"v0", "v1", "v2", "v3"}
	for _, v := range vars {
		fmt.Fprintf(&b, "var %s = %d;\n", v, g.rnd.Intn(7))
	}

	// A closure over mutable state, exercising the boxing pass.
	b.WriteString("function mkAcc() { var t = 0; return function (k) { t = t + k; return t; }; }\n")
	b.WriteString("var acc = mkAcc();\n")

	for s := 0; s < 6+g.rnd.Intn(6); s++ {
		b.WriteString(g.stmt(0, vars))
	}
	fmt.Fprintf(&b, "console.log(%s, acc(1));\n", strings.Join(vars, ", "))
	return b.String()
}

type progGen struct {
	rnd     *rand.Rand
	counter int
}

func (g *progGen) pick(xs []string) string { return xs[g.rnd.Intn(len(xs))] }

func (g *progGen) fresh() string {
	g.counter++
	return fmt.Sprintf("c%d", g.counter)
}

// expr generates a numeric expression. maxFn bounds which helpers may be
// called (none when 0); names are the readable variables.
func (g *progGen) expr(depth int, maxFn int, names []string) string {
	if depth <= 0 || g.rnd.Intn(3) == 0 {
		if g.rnd.Intn(2) == 0 && len(names) > 0 {
			return g.pick(names)
		}
		return fmt.Sprintf("%d", g.rnd.Intn(12)-2)
	}
	switch g.rnd.Intn(6) {
	case 0, 1:
		op := g.pick([]string{"+", "-", "*", "%", "|", "&"})
		return fmt.Sprintf("(%s %s %s)", g.expr(depth-1, maxFn, names), op, g.expr(depth-1, maxFn, names))
	case 2:
		op := g.pick([]string{"<", "<=", "===", "!=="})
		return fmt.Sprintf("(%s %s %s ? %s : %s)",
			g.expr(depth-1, maxFn, names), op, g.expr(depth-1, maxFn, names),
			g.expr(depth-1, maxFn, names), g.expr(depth-1, maxFn, names))
	case 3:
		if maxFn > 0 {
			return fmt.Sprintf("fn%d(%s, %s)", g.rnd.Intn(maxFn),
				g.expr(depth-1, maxFn, names), g.expr(depth-1, maxFn, names))
		}
		return g.expr(depth-1, maxFn, names)
	case 4:
		return fmt.Sprintf("Math.abs(%s)", g.expr(depth-1, maxFn, names))
	default:
		return fmt.Sprintf("(%s | 0)", g.expr(depth-1, maxFn, names))
	}
}

func (g *progGen) stmt(depth int, vars []string) string {
	switch g.rnd.Intn(5) {
	case 0, 1:
		return fmt.Sprintf("%s = %s;\n", g.pick(vars), g.expr(3, 3, vars))
	case 2:
		return fmt.Sprintf("if (%s) { %s = %s; } else { %s = %s; }\n",
			g.expr(2, 3, vars),
			g.pick(vars), g.expr(2, 3, vars),
			g.pick(vars), g.expr(2, 3, vars))
	case 3:
		c := g.fresh()
		body := fmt.Sprintf("%s = %s;", g.pick(vars), g.expr(2, 3, vars))
		return fmt.Sprintf("var %s = 0;\nwhile (%s < %d) { %s++; %s }\n",
			c, c, 2+g.rnd.Intn(4), c, body)
	default:
		return fmt.Sprintf("%s = acc(%s) %% 1000;\n", g.pick(vars), g.expr(1, 0, vars))
	}
}
