package core_test

import (
	"bytes"
	"encoding/binary"
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/eventloop"
)

// Corrupt-blob robustness: Restore and SnapshotMeta are documented as safe
// on untrusted cross-process blobs — any corruption must surface as an
// error (or a still-terminating guest), never a panic or an unkillable
// loop. These tests mutate a real snapshot byte-by-byte and splice in the
// overflow patterns a crafted blob would use (uvarint lengths and refs near
// 2^64 that wrap naive bounds checks to negative ints).

// corruptSrc exercises every decoder table: objects with props and elems,
// closures over escaped envs, accessors, and a pending timer.
const corruptSrc = `
var shared = { n: 0, arr: [1, 2.5, "x", null] };
Object.defineProperty(shared, "twice", { get: function () { return shared.n * 2; } });
function mk(i) { return function () { shared.n = shared.n + i; return shared.twice; }; }
var fs = [mk(1), mk(2), mk(3)];
setTimeout(function () { print("late " + fs[0]()); }, 5);
var i = 0;
while (i < 200) { fs[i % 3](); i = i + 1; }
print("done " + shared.n);
`

// corruptBudget keeps each surviving mutant's resume cheap; the pristine
// program finishes well inside it.
const corruptBudget = 100_000

// corruptBlob parks corruptSrc mid-run and returns its snapshot.
func corruptBlob(t *testing.T) []byte {
	t.Helper()
	opts := core.Defaults()
	opts.Getters = true
	c, err := core.Compile(corruptSrc, opts)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	run, _ := runToPark(t, c, core.BackendTree, 500)
	if !run.Paused() {
		t.Fatal("program finished before parking")
	}
	blob, err := run.Snapshot()
	if err != nil {
		t.Fatalf("Snapshot: %v", err)
	}
	return blob
}

// tryRestore feeds a (possibly corrupt) blob through both untrusted entry
// points. A panic fails the test via the harness; errors are expected.
func tryRestore(t *testing.T, blob []byte) {
	t.Helper()
	core.SnapshotMeta(blob)
	run, err := core.Restore(core.RunConfig{
		Backend:  core.BackendTree,
		Clock:    eventloop.NewVirtualClock(),
		Out:      &bytes.Buffer{},
		MaxSteps: corruptBudget,
	}, blob)
	if err != nil || run == nil {
		return
	}
	// Mutations that survive decoding must still yield a guest that runs to
	// completion (or a guest error) without crashing the realm.
	run.Resume()
	run.Wait()
	run.Loop.Run()
}

// TestRestoreCorruptBlobMutations overwrites bytes of a real snapshot at
// strided positions and truncates it at every length.
func TestRestoreCorruptBlobMutations(t *testing.T) {
	blob := corruptBlob(t)
	stride := len(blob)/512 + 1
	for i := 0; i < len(blob); i += stride {
		for _, b := range []byte{blob[i] ^ 0xFF, 0xFF, blob[i] ^ 0x01} {
			m := append([]byte{}, blob...)
			m[i] = b
			tryRestore(t, m)
		}
	}
	for n := 0; n < len(blob); n += 7 {
		tryRestore(t, blob[:n])
	}
}

// TestRestoreCorruptBlobSplicedOverflow splices uvarint encodings of values
// near 2^64 into strided positions, the pattern that wraps an unchecked
// `off+n` bounds comparison or an `int(uvarint)` ref conversion negative.
func TestRestoreCorruptBlobSplicedOverflow(t *testing.T) {
	blob := corruptBlob(t)
	payloads := [][]byte{
		binary.AppendUvarint(nil, math.MaxUint64),
		binary.AppendUvarint(nil, math.MaxUint64-2),
		binary.AppendUvarint(nil, uint64(math.MaxInt64)+1),
	}
	stride := len(blob)/512 + 1
	for i := 0; i <= len(blob); i += stride {
		for _, p := range payloads {
			m := append([]byte{}, blob[:i]...)
			m = append(m, p...)
			m = append(m, blob[min(i, len(blob)):]...)
			tryRestore(t, m)
		}
	}
}
