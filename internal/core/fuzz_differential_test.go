package core_test

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/eventloop"
	"repro/internal/parser"
)

// FuzzBytecodeVsTreewalker is the differential fuzz target: any parseable
// input runs raw under both execution engines with a step budget, and any
// difference in output, error, or completion kind is a failure. The seed
// corpus follows the printer fuzz tests' approach — deterministic
// pseudo-random program generation — plus the hand-written edge cases the
// differential harness uses.
func FuzzBytecodeVsTreewalker(f *testing.F) {
	for _, src := range edgeCasePrograms {
		f.Add(src)
	}
	for _, src := range valueReprEdgePrograms {
		f.Add(src)
	}
	for seed := int64(0); seed < 40; seed++ {
		f.Add(randomProgram(rand.New(rand.NewSource(seed))))
	}
	f.Fuzz(func(t *testing.T, src string) {
		if len(src) > 1<<14 {
			t.Skip("oversized input")
		}
		if _, err := parser.Parse(src); err != nil {
			t.Skip("does not parse")
		}
		tree := fuzzOutcome(src, core.BackendTree)
		bc := fuzzOutcome(src, core.BackendBytecode)
		if tree != bc {
			t.Fatalf("engine divergence on:\n%s\n  tree:     %v\n  bytecode: %v",
				src, tree, bc)
		}
	})
}

// fuzzOutcome is runRawOutcome with a tighter budget — fuzz inputs loop
// forever routinely, and both engines abort at the same boundary — and a
// shallow engine stack, so generated runaway recursion throws RangeError
// long before the native stack (inflated by fuzz instrumentation) is at
// risk.
func fuzzOutcome(src, backend string) (o outcome) {
	defer func() {
		if r := recover(); r != nil {
			o.panic = fmt.Sprint(r)
		}
	}()
	eng := engine.Uniform()
	eng.MaxStack = 2000
	out, err := core.RunRaw(src, core.RunConfig{
		Backend:  backend,
		Engine:   eng,
		Clock:    eventloop.NewVirtualClock(),
		Seed:     1,
		MaxSteps: 50_000,
	})
	o.out = out
	if err != nil {
		o.err = err.Error()
	}
	return o
}

// randomProgram generates a deterministic pseudo-random program from
// statement and expression templates covering the constructs the bytecode
// compiler lowers (and the ones it escape-hatches).
func randomProgram(rnd *rand.Rand) string {
	var b strings.Builder
	b.WriteString("function main() {\n var s = \"\"; var n = 0; var o = {a:1,b:2}; var arr = [1,2,3];\n")
	depth := 0
	nStmts := 4 + rnd.Intn(8)
	for i := 0; i < nStmts; i++ {
		b.WriteString(randomStmt(rnd, &depth, 0))
	}
	b.WriteString(" return s + \"|\" + n;\n}\nconsole.log(main());\n")
	return b.String()
}

func randomExpr(rnd *rand.Rand) string {
	exprs := []string{
		"n + 1", "n * 2 - 1", "n & 7", "n >>> 1", "s + n", "arr[n % 3]",
		"o.a + o.b", "typeof o.missing", "n < 10", "n === 3", "s.length",
		"arr.length", "\"x\" + (n | 0)", "(n ? 1 : 2)", "o[\"a\"]",
		"-n", "~n", "!n", "n % 5 === 0 && s !== \"\"", "n > 2 || false",
	}
	return exprs[rnd.Intn(len(exprs))]
}

func randomStmt(rnd *rand.Rand, depth *int, level int) string {
	if level > 2 {
		return fmt.Sprintf(" n = %s;\n", randomExpr(rnd))
	}
	switch rnd.Intn(12) {
	case 0:
		return fmt.Sprintf(" s += %s;\n", randomExpr(rnd))
	case 1:
		return fmt.Sprintf(" n = %s;\n", randomExpr(rnd))
	case 2:
		return fmt.Sprintf(" if (%s) {\n%s } else {\n%s }\n",
			randomExpr(rnd), randomStmt(rnd, depth, level+1), randomStmt(rnd, depth, level+1))
	case 3:
		return fmt.Sprintf(" for (var i%d = 0; i%d < %d; i%d++) {\n%s }\n",
			level, level, 2+rnd.Intn(4), level, randomStmt(rnd, depth, level+1))
	case 4:
		return fmt.Sprintf(" try {\n%s } catch (e%d) { s += \"c\"; }\n",
			randomStmt(rnd, depth, level+1), level)
	case 5:
		return fmt.Sprintf(" try {\n%s } finally { s += \"f\"; }\n",
			randomStmt(rnd, depth, level+1))
	case 6:
		return fmt.Sprintf(" switch (n %% 3) { case 0: s += \"0\"; break; case 1: s += \"1\"; default: s += \"d\"; }\n")
	case 7:
		return fmt.Sprintf(" L%d: for (var j%d = 0; j%d < 3; j%d++) { if (j%d === 1) { %s L%d; } s += j%d; }\n",
			level, level, level, level, level,
			[]string{"break", "continue"}[rnd.Intn(2)], level, level)
	case 8:
		return fmt.Sprintf(" for (var k%d in o) { s += k%d; }\n", level, level)
	case 9:
		return fmt.Sprintf(" o.%s = %s;\n", []string{"a", "b", "c"}[rnd.Intn(3)], randomExpr(rnd))
	case 10:
		return fmt.Sprintf(" arr[%d] = %s; delete arr[%d];\n", rnd.Intn(4), randomExpr(rnd), rnd.Intn(4))
	default:
		return fmt.Sprintf(" (function (x) { n = x + n; })(%s);\n", randomExpr(rnd))
	}
}
