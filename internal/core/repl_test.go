package core

import (
	"bytes"
	"testing"

	"repro/internal/eventloop"
)

// TestREPLTurns drives a multi-turn REPL session over one shared realm:
// definitions persist across turns, each turn is independently suspendable,
// and a runaway turn can be stopped without killing the session (§6.4).
func TestREPLTurns(t *testing.T) {
	c, err := Compile("", hammer("checked"))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	run, err := c.NewRun(RunConfig{Clock: eventloop.NewVirtualClock(), Out: &buf})
	if err != nil {
		t.Fatal(err)
	}
	if err := run.RunToCompletion(); err != nil {
		t.Fatal(err)
	}

	if _, err := run.EvalAndWait(`function square(x) { return x * x; }`); err != nil {
		t.Fatalf("turn 1: %v", err)
	}
	if _, err := run.EvalAndWait(`console.log(square(12));`); err != nil {
		t.Fatalf("turn 2: %v", err)
	}
	if buf.String() != "144\n" {
		t.Fatalf("repl output %q", buf.String())
	}

	// Turn 3 is an infinite loop: stop it, session survives.
	if err := run.Eval(`while (true) { }`, nil); err != nil {
		t.Fatal(err)
	}
	stopped := false
	run.Pause(func() { stopped = true })
	for i := 0; i < 10000 && !stopped; i++ {
		if !run.Loop.RunOne() {
			break
		}
	}
	if !stopped {
		t.Fatal("runaway REPL turn was not stopped")
	}
	// Abandon the paused turn and keep using the session.
	buf.Reset()
	if _, err := run.EvalAndWait(`console.log(square(3));`); err != nil {
		t.Fatalf("turn 4 after stop: %v", err)
	}
	if buf.String() != "9\n" {
		t.Fatalf("post-stop output %q", buf.String())
	}
}

func TestREPLSyntaxError(t *testing.T) {
	c, err := Compile("", Defaults())
	if err != nil {
		t.Fatal(err)
	}
	run, err := c.NewRun(RunConfig{Clock: eventloop.NewVirtualClock()})
	if err != nil {
		t.Fatal(err)
	}
	if err := run.Eval("var = ;", nil); err == nil {
		t.Fatal("syntax error should be reported")
	}
}
