package core

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/engine"
	"repro/internal/eventloop"
	"repro/internal/interp"
)

// programs exercises the whole pipeline; each must print identically with
// and without Stopify, under every continuation strategy, even when forced
// to capture and restore continuations every few calls.
var programs = []string{
	`console.log(1 + 2 * 3);`,
	`function f(a, b) { return a + b; } console.log(f(f(1, 2), f(3, 4)));`,
	`function fib(n) { return n < 2 ? n : fib(n - 1) + fib(n - 2); } console.log(fib(14));`,
	`var s = 0; for (var i = 0; i < 200; i++) { s += i; } console.log(s);`,
	`function g(x) { return x * 2; } var t = 0; for (var i = 0; i < 50; i++) { t += g(i); } console.log(t);`,
	`var n = 0; while (n < 100) { n++; } console.log(n);`,
	`function mk() { var c = 0; return function () { c = c + 1; return c; }; }
	 var a = mk(), b = mk();
	 a(); a(); b();
	 console.log(a(), b());`,
	`function outer() {
	   var total = 0;
	   function add(k) { total = total + k; return total; }
	   for (var i = 1; i <= 10; i++) { add(i); }
	   return total;
	 }
	 console.log(outer());`,
	`function P(x, y) { this.x = x; this.y = y; }
	 P.prototype.mag2 = function () { return this.x * this.x + this.y * this.y; };
	 var p = new P(3, 4);
	 console.log(p.mag2(), p instanceof P);`,
	`function F() { this.a = 1; return { a: 2 }; } console.log(new F().a);`,
	`function G() { this.a = 3; return 7; } console.log(new G().a);`,
	`var o = { n: 5, bump: function (k) { this.n += k; return this.n; } };
	 console.log(o.bump(1), o.bump(2), o.n);`,
	`try { throw new Error("boom"); } catch (e) { console.log(e.message); } finally { console.log("fin"); }`,
	`function thrower() { throw "deep"; }
	 function mid() { thrower(); }
	 try { mid(); } catch (e) { console.log("caught", e); }`,
	`function f() { try { return compute(); } finally { console.log("cleanup"); } }
	 function compute() { return 42; }
	 console.log(f());`,
	`function safeDiv(a, b) {
	   try { if (b === 0) { throw new RangeError("div0"); } return a / b; }
	   catch (e) { return -1; }
	 }
	 console.log(safeDiv(10, 2), safeDiv(1, 0));`,
	`var r = [];
	 outer: for (var i = 0; i < 4; i++) {
	   for (var j = 0; j < 4; j++) {
	     if (j > i) continue outer;
	     if (i === 3) break outer;
	     r.push(i * 10 + j);
	   }
	 }
	 console.log(r.join(","));`,
	`function cls(x) { switch (x % 3) { case 0: return "a"; case 1: return "b"; default: return "c"; } }
	 var out = "";
	 for (var i = 0; i < 9; i++) { out += cls(i); }
	 console.log(out);`,
	`var arr = [];
	 for (var i = 9; i >= 0; i--) { arr.push(i); }
	 arr.sort(function (a, b) { return a - b; });
	 console.log(arr.join(""));`,
	`function even(n) { return n === 0 ? true : odd(n - 1); }
	 function odd(n) { return n === 0 ? false : even(n - 1); }
	 console.log(even(50), odd(51));`,
	`var acc = "";
	 function emit(s) { acc += s; return acc.length; }
	 emit("a"); emit("bc"); emit("d");
	 console.log(acc, acc.length);`,
	`var obj = {};
	 for (var i = 0; i < 5; i++) { obj["k" + i] = i * i; }
	 var sum = 0;
	 for (var k in obj) { sum += obj[k]; }
	 console.log(sum);`,
	`function ack(m, n) {
	   if (m === 0) return n + 1;
	   if (n === 0) return ack(m - 1, 1);
	   return ack(m - 1, ack(m, n - 1));
	 }
	 console.log(ack(2, 3));`,
	`var memo = [0, 1];
	 function fibm(n) { if (memo[n] !== undefined) return memo[n]; var v = fibm(n - 1) + fibm(n - 2); memo[n] = v; return v; }
	 console.log(fibm(30));`,
	`console.log([1, 2, 3].map(function (x) { return x + 1; }).join("-"));`,
	`var x = 0;
	 function setX(v) { x = v; return x; }
	 var got = false && setX(1) || setX(2) && true;
	 console.log(x, got);`,
}

// hammer configures Stopify to yield every few calls, maximizing
// capture/restore churn so correctness bugs cannot hide.
func hammer(cont string) Opts {
	o := Defaults()
	o.Cont = cont
	o.Timer = "countdown"
	o.CountdownN = 4
	o.YieldIntervalMs = 1
	return o
}

func cfgVirtual() RunConfig {
	return RunConfig{Clock: eventloop.NewVirtualClock(), Seed: 3}
}

func TestStrategiesPreserveSemantics(t *testing.T) {
	for _, cont := range []string{"checked", "exceptional", "eager"} {
		cont := cont
		t.Run(cont, func(t *testing.T) {
			for _, src := range programs {
				want, err := RunRaw(src, cfgVirtual())
				if err != nil {
					t.Fatalf("raw run failed: %v\n%s", err, src)
				}
				got, err := RunSource(src, hammer(cont), cfgVirtual())
				if err != nil {
					t.Fatalf("stopified run failed (%s): %v\n%s", cont, err, src)
				}
				if got != want {
					t.Errorf("strategy %s changed semantics:\n%s\nraw:      %q\nstopified: %q", cont, src, want, got)
				}
			}
		})
	}
}

func TestManyYieldsActuallyHappen(t *testing.T) {
	src := `var s = 0; for (var i = 0; i < 500; i++) { s += i; } console.log(s);`
	c, err := Compile(src, hammer("checked"))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	run, err := c.NewRun(RunConfig{Clock: eventloop.NewVirtualClock(), Out: &buf})
	if err != nil {
		t.Fatal(err)
	}
	if err := run.RunToCompletion(); err != nil {
		t.Fatal(err)
	}
	if run.RT.Yields < 50 {
		t.Errorf("expected many yields, got %d", run.RT.Yields)
	}
	if buf.String() != "124750\n" {
		t.Errorf("output = %q", buf.String())
	}
}

func TestConstructorStrategies(t *testing.T) {
	src := `
function Counter(start) { this.n = start; }
Counter.prototype.incr = function () { this.n++; return this.n; };
function Wrapper(inner) { this.inner = inner; this.tag = label(); }
function label() { return "w"; }
var c = new Counter(10);
c.incr(); c.incr();
var w = new Wrapper(c);
console.log(c.n, w.tag, w.inner === c, c instanceof Counter);`
	want, err := RunRaw(src, cfgVirtual())
	if err != nil {
		t.Fatal(err)
	}
	for _, ctor := range []string{"direct", "wrapped"} {
		o := hammer("checked")
		o.Ctor = ctor
		got, err := RunSource(src, o, cfgVirtual())
		if err != nil {
			t.Fatalf("ctor=%s: %v", ctor, err)
		}
		if got != want {
			t.Errorf("ctor=%s: got %q want %q", ctor, got, want)
		}
	}
}

func TestCaptureInsideConstructor(t *testing.T) {
	// The constructor calls a function while the yield hammer is running,
	// so continuations are captured with a partially initialized `this`.
	src := `
function helper(k) { return k * 2; }
function Thing(a) {
  this.x = a;
  this.y = helper(a);
  this.z = this.x + this.y;
}
var total = 0;
for (var i = 0; i < 20; i++) { total += new Thing(i).z; }
console.log(total);`
	want, err := RunRaw(src, cfgVirtual())
	if err != nil {
		t.Fatal(err)
	}
	for _, ctor := range []string{"direct", "wrapped"} {
		for _, cont := range []string{"checked", "exceptional", "eager"} {
			o := hammer(cont)
			o.Ctor = ctor
			got, err := RunSource(src, o, cfgVirtual())
			if err != nil {
				t.Fatalf("ctor=%s cont=%s: %v", ctor, cont, err)
			}
			if got != want {
				t.Errorf("ctor=%s cont=%s: got %q want %q", ctor, cont, got, want)
			}
		}
	}
}

func TestImplicitsModes(t *testing.T) {
	src := `
var obj = { valueOf: function () { return tick(); } };
var ticks = 0;
function tick() { ticks++; return 21; }
console.log(obj + 21, obj * 2, ticks > 0);`
	want, err := RunRaw(src, cfgVirtual())
	if err != nil {
		t.Fatal(err)
	}
	o := hammer("checked")
	o.Implicits = "full"
	got, err := RunSource(src, o, cfgVirtual())
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Errorf("implicits=full: got %q want %q", got, want)
	}
}

func TestImplicitsPlusConcat(t *testing.T) {
	src := `
var name = { toString: function () { return "world"; } };
console.log("hello " + name);`
	o := hammer("checked")
	o.Implicits = "plus"
	got, err := RunSource(src, o, cfgVirtual())
	if err != nil {
		t.Fatal(err)
	}
	if got != "hello world\n" {
		t.Errorf("got %q", got)
	}
}

func TestGettersMode(t *testing.T) {
	src := `
var reads = 0;
var o = {
  _v: 5,
  get v() { reads++; return this._v * 2; },
  set v(x) { this._v = x + 1; }
};
o.v = 9;
console.log(o.v, o._v, reads);`
	want, err := RunRaw(src, cfgVirtual())
	if err != nil {
		t.Fatal(err)
	}
	o := hammer("checked")
	o.Getters = true
	got, err := RunSource(src, o, cfgVirtual())
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Errorf("getters: got %q want %q", got, want)
	}
}

func TestArgsModes(t *testing.T) {
	src := `
function varargs() {
  var t = 0;
  for (var i = 0; i < arguments.length; i++) { t += arguments[i]; }
  return t;
}
function optional(a, b) {
  if (b === undefined) { b = 100; }
  return a + b;
}
console.log(varargs(1, 2, 3), varargs(), optional(1), optional(1, 2));`
	want, err := RunRaw(src, cfgVirtual())
	if err != nil {
		t.Fatal(err)
	}
	// args="none" promises nothing about the arguments object (Figure 5's ✗
	// column): restoring re-applies formals positionally, so a function that
	// reads `arguments` across a capture may observe the formals only. The
	// varargs/mixed/full modes must preserve it exactly.
	for _, mode := range []string{"varargs", "mixed", "full"} {
		o := hammer("checked")
		o.Args = mode
		got, err := RunSource(src, o, cfgVirtual())
		if err != nil {
			t.Fatalf("args=%s: %v", mode, err)
		}
		if got != want {
			t.Errorf("args=%s: got %q want %q", mode, got, want)
		}
	}
	// A formals-only program is safe under args="none".
	plain := `function add3(a, b, c) { return a + b + c; } console.log(add3(1, 2, 3));`
	o := hammer("checked")
	o.Args = "none"
	got, err := RunSource(plain, o, cfgVirtual())
	if err != nil {
		t.Fatalf("args=none: %v", err)
	}
	if got != "6\n" {
		t.Errorf("args=none: got %q", got)
	}
}

func TestArgsFullAliasing(t *testing.T) {
	// Writing arguments[0] must be visible through the formal and vice
	// versa — only the full mode supports this (§4.2).
	src := `
function f(a) {
  arguments[0] = 99;
  var first = a;
  a = 5;
  return first + arguments[0];
}
console.log(f(1));`
	o := hammer("checked")
	o.Args = "full"
	got, err := RunSource(src, o, cfgVirtual())
	if err != nil {
		t.Fatal(err)
	}
	if got != "104\n" {
		t.Errorf("aliasing: got %q want %q", got, "104\n")
	}
}

func TestFirstClassContinuationC(t *testing.T) {
	// The examples from §3 of the paper.
	src1 := `console.log(10 + $C(function (k) { return 0; }));`
	o := Defaults()
	o.Suspend = false
	o.YieldIntervalMs = 0
	got, err := RunSource(src1, o, cfgVirtual())
	if err != nil {
		t.Fatal(err)
	}
	// The program's own console.log never runs: C discards the addition.
	if got != "" {
		t.Errorf("C discard: got %q", got)
	}

	src2 := `
function go() { return 10 + $C(function (k) { return k(1) + 2; }); }
console.log(go());`
	got, err = RunSource(src2, o, cfgVirtual())
	if err != nil {
		t.Fatal(err)
	}
	if got != "11\n" {
		t.Errorf("C restore: got %q want %q", got, "11\n")
	}
}

func TestPauseAndResume(t *testing.T) {
	src := `
var i = 0;
while (i < 100000) { i++; }
console.log("done", i);`
	o := Defaults()
	o.Timer = "countdown"
	o.CountdownN = 50
	o.YieldIntervalMs = 1
	c, err := Compile(src, o)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	run, err := c.NewRun(RunConfig{Clock: eventloop.NewVirtualClock(), Out: &buf})
	if err != nil {
		t.Fatal(err)
	}
	run.Run(nil)
	paused := false
	run.Pause(func() { paused = true })
	// Pump until the pause lands.
	for i := 0; i < 1000 && !paused; i++ {
		if !run.Loop.RunOne() {
			break
		}
	}
	if !paused {
		t.Fatal("program did not pause")
	}
	if run.Finished() {
		t.Fatal("program should not have finished while paused")
	}
	if buf.Len() != 0 {
		t.Fatalf("no output expected while paused, got %q", buf.String())
	}
	run.Resume()
	if err := run.Wait(); err != nil {
		t.Fatal(err)
	}
	if buf.String() != "done 100000\n" {
		t.Errorf("after resume: %q", buf.String())
	}
}

func TestGracefulTerminationOfInfiniteLoop(t *testing.T) {
	// The motivating example (§1, Figure 17): an infinite loop that would
	// freeze a browser tab pauses cleanly under Stopify.
	src := `while (true) { }`
	o := Defaults()
	o.Timer = "countdown"
	o.CountdownN = 25
	o.YieldIntervalMs = 1
	c, err := Compile(src, o)
	if err != nil {
		t.Fatal(err)
	}
	run, err := c.NewRun(RunConfig{Clock: eventloop.NewVirtualClock()})
	if err != nil {
		t.Fatal(err)
	}
	run.Run(nil)
	stopped := false
	run.Pause(func() { stopped = true })
	for i := 0; i < 10000 && !stopped; i++ {
		if !run.Loop.RunOne() {
			break
		}
	}
	if !stopped {
		t.Fatal("infinite loop was not stopped")
	}
	if run.Finished() {
		t.Fatal("infinite loop cannot finish")
	}
}

func TestDeepStacks(t *testing.T) {
	// Recursion far beyond the engine's native stack limit (§5.2). The
	// engine allows 500 frames; the program needs 20000.
	src := `
function sum(n) { if (n === 0) { return 0; } return n + sum(n - 1); }
console.log(sum(20000));`
	eng := &engine.Profile{Name: "shallow", Speed: 1, MaxStack: 500}

	// Without deep stacks: RangeError.
	o := Defaults()
	o.YieldIntervalMs = 0
	o.Suspend = true
	_, err := RunSource(src, o, RunConfig{Engine: eng, Clock: eventloop.NewVirtualClock()})
	if err == nil || !strings.Contains(err.Error(), "RangeError") {
		t.Fatalf("expected RangeError without deep stacks, got %v", err)
	}

	// With deep stacks: completes.
	o.DeepStacks = true
	got, err := RunSource(src, o, RunConfig{Engine: eng, Clock: eventloop.NewVirtualClock()})
	if err != nil {
		t.Fatalf("deep stacks: %v", err)
	}
	if got != "200010000\n" {
		t.Errorf("deep stacks result: %q", got)
	}
}

func TestDeepTailRecursion(t *testing.T) {
	// Tail calls never push frames (§3.2.2), so deep mode turns unbounded
	// tail recursion into a constant-space trampoline.
	src := `
function loop(n, acc) { if (n === 0) { return acc; } return loop(n - 1, acc + n); }
console.log(loop(50000, 0));`
	eng := &engine.Profile{Name: "shallow", Speed: 1, MaxStack: 400}
	o := Defaults()
	o.YieldIntervalMs = 0
	o.DeepStacks = true
	got, err := RunSource(src, o, RunConfig{Engine: eng, Clock: eventloop.NewVirtualClock()})
	if err != nil {
		t.Fatalf("tail recursion: %v", err)
	}
	if got != "1250025000\n" {
		t.Errorf("tail recursion result: %q", got)
	}
}

func TestBreakpointsAndStepping(t *testing.T) {
	src := `var a = 1;
var b = 2;
var c = a + b;
console.log(c);`
	o := Defaults()
	o.Debug = true
	o.YieldIntervalMs = 0
	c, err := Compile(src, o)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	run, err := c.NewRun(RunConfig{Clock: eventloop.NewVirtualClock(), Out: &buf})
	if err != nil {
		t.Fatal(err)
	}
	var hits []int
	run.RT.OnBreak(func(line int) { hits = append(hits, line) })
	run.RT.SetBreakpoint(3)
	run.Run(nil)
	run.Wait()
	if !run.RT.Paused() {
		t.Fatal("expected to stop at breakpoint")
	}
	if len(hits) != 1 || hits[0] != 3 {
		t.Fatalf("breakpoint hits = %v, want [3]", hits)
	}
	if buf.Len() != 0 {
		t.Fatalf("no output before line 3, got %q", buf.String())
	}
	// Single-step to line 4, then run to completion.
	run.RT.StepOnce(func(line int) { hits = append(hits, line) })
	run.Wait()
	if len(hits) != 2 || hits[1] != 4 {
		t.Fatalf("step hits = %v, want [3 4]", hits)
	}
	run.RT.ResumeFromBreak()
	if err := run.Wait(); err != nil {
		t.Fatal(err)
	}
	if buf.String() != "3\n" {
		t.Errorf("final output: %q", buf.String())
	}
}

func TestBlockingOperation(t *testing.T) {
	src := `
var x = blockingDouble(21);
console.log("got", x);`
	o := Defaults()
	o.YieldIntervalMs = 0
	c, err := Compile(src, o)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	run, err := c.NewRun(RunConfig{Clock: eventloop.NewVirtualClock(), Out: &buf})
	if err != nil {
		t.Fatal(err)
	}
	run.RT.Blocking("blockingDouble", func(args []interp.Value, resume func(interp.Value)) {
		n := args[0].Num()
		// Simulate async completion on a timer.
		run.Loop.Post(func() { resume(interp.NumberValue(n * 2)) }, 30)
	})
	run.Run(nil)
	if err := run.Wait(); err != nil {
		t.Fatal(err)
	}
	if buf.String() != "got 42\n" {
		t.Errorf("blocking result: %q", buf.String())
	}
}

func TestEvalSupport(t *testing.T) {
	src := `
eval("makeAdder = function (n) { return function (m) { return n + m; }; };");
var add5 = makeAdder(5);
console.log(add5(37));`
	o := hammer("checked")
	o.Eval = true
	got, err := RunSource(src, o, cfgVirtual())
	if err != nil {
		t.Fatal(err)
	}
	if got != "42\n" {
		t.Errorf("eval: got %q", got)
	}
}

func TestEvalDisabledThrows(t *testing.T) {
	src := `
var failed = false;
try { eval("1 + 1"); } catch (e) { failed = true; }
console.log(failed);`
	o := hammer("checked")
	o.Eval = false
	got, err := RunSource(src, o, cfgVirtual())
	if err != nil {
		t.Fatal(err)
	}
	if got != "true\n" {
		t.Errorf("eval disabled: got %q", got)
	}
}

func TestCodeGrowthMeasured(t *testing.T) {
	src := `function f(x) { return x + 1; } console.log(f(1));`
	c, err := Compile(src, Defaults())
	if err != nil {
		t.Fatal(err)
	}
	if c.CompiledBytes <= c.SourceBytes {
		t.Errorf("instrumentation should grow code: %d -> %d", c.SourceBytes, c.CompiledBytes)
	}
}

func TestUncaughtErrorPropagates(t *testing.T) {
	src := `throw new TypeError("top-level");`
	_, err := RunSource(src, hammer("checked"), cfgVirtual())
	if err == nil || !strings.Contains(err.Error(), "top-level") {
		t.Errorf("expected top-level error, got %v", err)
	}
}

func TestBadOptionsRejected(t *testing.T) {
	for _, o := range []Opts{
		{Cont: "bogus"},
		{Ctor: "bogus"},
		{Timer: "bogus"},
		{Implicits: "bogus"},
		{Args: "bogus"},
	} {
		if _, err := Compile("1;", o); err == nil {
			t.Errorf("options %+v should be rejected", o)
		}
	}
}
