package core_test

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/eventloop"
	"repro/internal/parser"
	"repro/internal/snapshot"
)

// FuzzSnapshotRoundTrip is the codec's fuzz target: any parseable input is
// driven to an arbitrary park point, serialized, restored into a fresh
// realm, and resumed — and any difference from resuming the original run in
// place is a failure. Pinned programs (live natives the codec refuses to
// carry) are skipped, but only after proving the failed snapshot attempt
// left the run unharmed. The seed corpus reuses the differential fuzz
// generator plus the adversarial codec programs (cycles, accessors, escaped
// closures, NaN/−0 keys).
func FuzzSnapshotRoundTrip(f *testing.F) {
	for _, src := range edgeCasePrograms {
		f.Add(src)
	}
	for _, p := range adversarialPrograms() {
		f.Add(p.src)
	}
	for _, p := range pinShrinkPrograms() {
		f.Add(p.src)
	}
	// Targeted seeds for the wire-v2 node kinds: bound chains over varied
	// targets, Date arithmetic, and timer-handle churn.
	f.Add(`function f(a,b,c){return a+b*c;} var g=f.bind({x:1},2); var h=g.bind(null,3);
		var o={m:f}; var bm=o.m.bind(o,5);
		for(var i=0;i<9000;i++){} console.log(h(4), bm(6,7), h.length, new h(10).constructor===undefined);`)
	f.Add(`var a=new Date(0), b=new Date(1e12), c=new Date(NaN);
		for(var i=0;i<9000;i++){} console.log(a.getTime(), b.valueOf(), ""+(c.getTime()!==c.getTime()), typeof Date());`)
	f.Add(`var ids=[]; function cb(){console.log("hit",arguments.length);}
		for(var i=0;i<6;i++){ids.push(setTimeout(cb,5*i,i,"x"));}
		clearTimeout(ids[1]); clearTimeout(ids[3]); clearTimeout(-1); clearTimeout("2.5");
		for(var i=0;i<9000;i++){}`)
	for seed := int64(100); seed < 130; seed++ {
		f.Add(randomProgram(rand.New(rand.NewSource(seed))))
	}
	opts := core.Defaults()
	opts.Getters = true
	f.Fuzz(func(t *testing.T, src string) {
		if len(src) > 1<<14 {
			t.Skip("oversized input")
		}
		if _, err := parser.Parse(src); err != nil {
			t.Skip("does not parse")
		}
		c, err := core.Compile(src, opts)
		if err != nil {
			t.Skip("does not compile")
		}
		// Vary the park point with the input so the fuzzer explores many
		// program positions, not one.
		quantum := parkQuantum(src)%3000 + 50
		for _, backend := range []string{core.BackendTree, core.BackendBytecode} {
			fuzzRoundTrip(t, c, backend, quantum)
		}
	})
}

// fuzzRoundTrip is roundTripProgram with a fuzz-sized step budget: fuzz
// inputs loop forever routinely, and both legs abort at the same boundary.
func fuzzRoundTrip(t *testing.T, c *core.Compiled, backend string, quantum uint64) {
	const budget = 50_000
	park := func() (*core.AsyncRun, *bytes.Buffer) {
		var run *core.AsyncRun
		buf := &bytes.Buffer{}
		run, err := c.NewRun(core.RunConfig{
			Backend:      backend,
			Clock:        eventloop.NewVirtualClock(),
			Out:          buf,
			Seed:         1,
			MaxSteps:     budget,
			QuantumSteps: quantum,
			OnQuantum:    func() { run.Pause(nil) },
		})
		if err != nil {
			t.Fatalf("NewRun: %v", err)
		}
		run.Run(nil)
		for !run.Paused() && run.Loop.Len() > 0 {
			if run.Finished() {
				if _, err := run.Result(); err != nil {
					break
				}
			}
			run.Loop.RunOne()
		}
		return run, buf
	}

	runA, bufA := park()
	if !runA.Paused() {
		return // finished before the quantum; nothing to serialize
	}
	runB, bufB := park()
	if !runB.Paused() {
		t.Fatalf("%s: leg B did not park where leg A did", backend)
	}
	blob, err := runB.Snapshot()
	if perr := (*snapshot.PinError)(nil); errors.As(err, &perr) {
		inPlace := finish(runB, bufB)
		if a := finish(runA, bufA); a != inPlace {
			t.Fatalf("%s: pinned snapshot attempt perturbed the run:\n  A: %v\n  B: %v",
				backend, a, inPlace)
		}
		return
	}
	if err != nil {
		t.Fatalf("%s: Snapshot: %v", backend, err)
	}
	bufR := &bytes.Buffer{}
	restored, err := core.RestoreWith(core.RunConfig{
		Backend:  backend,
		Clock:    eventloop.NewVirtualClock(),
		Out:      bufR,
		MaxSteps: budget,
	}, blob, core.RestoreOptions{ReplayOutput: true})
	if err != nil {
		t.Fatalf("%s: Restore: %v", backend, err)
	}
	a := finish(runA, bufA)
	b := finish(restored, bufR)
	if a != b {
		t.Fatalf("%s: snapshot round-trip diverged:\n  in-place: %v\n  restored: %v",
			backend, a, b)
	}
}
