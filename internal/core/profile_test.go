package core

import (
	"strings"
	"testing"

	"repro/internal/eventloop"
	"repro/internal/interp"
)

// profileSrc keeps most statements inside two named functions so the
// sampler must attribute them by name; crunch dominates.
const profileSrc = `
function crunch(n) {
  var s = 0;
  for (var i = 0; i < n; i++) { s += i * i; }
  return s;
}
function driver() {
  var t = 0;
  for (var k = 0; k < 60; k++) { t += crunch(200); }
  return t;
}
console.log(driver());
`

func profileRun(t *testing.T, backend string) map[string]uint64 {
	t.Helper()
	c, err := Compile(profileSrc, Defaults())
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	run, err := c.NewRun(RunConfig{
		Clock:        eventloop.NewVirtualClock(),
		Backend:      backend,
		ProfileEvery: 97,
	})
	if err != nil {
		t.Fatalf("NewRun: %v", err)
	}
	if err := run.RunToCompletion(); err != nil {
		t.Fatalf("run: %v", err)
	}
	return run.TakeProfileFolded()
}

// TestProfileNamesGuestFunctions is the profiler's ground truth: on both
// engines the folded stacks must name the user's own JS functions, and the
// hot function must carry the bulk of the attributed statements.
func TestProfileNamesGuestFunctions(t *testing.T) {
	if !interp.ProfilerEnabled() {
		t.Skip("profiler compiled out (stopify_noprof)")
	}
	for _, backend := range []string{BackendTree, BackendBytecode} {
		t.Run(backend, func(t *testing.T) {
			folded := profileRun(t, backend)
			if len(folded) == 0 {
				t.Fatal("profiler returned no samples")
			}
			var total, inCrunch uint64
			sawDriver := false
			for stack, n := range folded {
				total += n
				if strings.Contains(stack, "crunch") {
					inCrunch += n
				}
				if strings.Contains(stack, "driver") {
					sawDriver = true
				}
			}
			if !sawDriver {
				t.Errorf("no stack mentions driver; folded = %v", folded)
			}
			if inCrunch*2 < total {
				t.Errorf("crunch holds %d of %d sampled statements; want a majority\nfolded = %v",
					inCrunch, total, folded)
			}
			// Stacks must be root-first: crunch only ever runs under driver.
			for stack := range folded {
				ci := strings.Index(stack, "crunch")
				di := strings.Index(stack, "driver")
				if ci >= 0 && di > ci {
					t.Errorf("stack %q lists crunch before its caller driver", stack)
				}
			}
		})
	}
}

// TestProfileDrainAndRearm checks TakeProfileFolded's drain semantics and
// that a disabled profiler stays silent.
func TestProfileDrainAndRearm(t *testing.T) {
	c, err := Compile(profileSrc, Defaults())
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	run, err := c.NewRun(RunConfig{Clock: eventloop.NewVirtualClock()})
	if err != nil {
		t.Fatalf("NewRun: %v", err)
	}
	if err := run.RunToCompletion(); err != nil {
		t.Fatalf("run: %v", err)
	}
	if got := run.TakeProfileFolded(); got != nil {
		t.Errorf("profiler was never armed, yet produced samples: %v", got)
	}
}
