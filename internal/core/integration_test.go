package core

import (
	"bytes"
	"testing"

	"repro/internal/engine"
	"repro/internal/eventloop"
	"repro/internal/interp"
)

// TestBlockingInterleavesWithTimers checks that a suspended blocking call
// lets other queued events run first — the whole point of yielding to the
// event loop (§2, §5.2).
func TestBlockingInterleavesWithTimers(t *testing.T) {
	src := `
setTimeout(function () { console.log("timer-10"); }, 10);
setTimeout(function () { console.log("timer-50"); }, 50);
console.log("before-block");
var v = slowEcho("payload");
console.log("after-block", v);`
	o := Defaults()
	o.YieldIntervalMs = 0
	c, err := Compile(src, o)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	run, err := c.NewRun(RunConfig{Clock: eventloop.NewVirtualClock(), Out: &buf})
	if err != nil {
		t.Fatal(err)
	}
	run.RT.Blocking("slowEcho", func(args []interp.Value, resume func(interp.Value)) {
		run.Loop.Post(func() { resume(args[0]) }, 30)
	})
	run.Run(nil)
	if err := run.Wait(); err != nil {
		t.Fatal(err)
	}
	// The program finished before the 50 ms timer; drain the page's
	// remaining events like a browser tab that stays open.
	run.Loop.Run()
	want := "before-block\ntimer-10\nafter-block payload\ntimer-50\n"
	if buf.String() != want {
		t.Errorf("interleaving:\ngot  %q\nwant %q", buf.String(), want)
	}
}

// TestYieldingKeepsTimersResponsive runs a long computation with a tight
// yield interval and checks a timer fires long before the computation ends
// — the responsiveness guarantee of §5.1.
func TestYieldingKeepsTimersResponsive(t *testing.T) {
	src := `
var fired = false;
setTimeout(function () { fired = true; console.log("timer during compute"); }, 1);
var s = 0;
for (var i = 0; i < 30000; i++) { s += i; }
console.log("fired-before-done:", fired);`
	o := Defaults()
	o.Timer = "countdown"
	o.CountdownN = 500
	o.YieldIntervalMs = 1
	var buf bytes.Buffer
	c, err := Compile(src, o)
	if err != nil {
		t.Fatal(err)
	}
	// A real clock: compute slices consume time, so the 1 ms timer becomes
	// due between yields. (On a virtual clock, compute takes zero virtual
	// time and resumptions would always outrank the timer.)
	run, err := c.NewRun(RunConfig{Out: &buf})
	if err != nil {
		t.Fatal(err)
	}
	run.Run(nil)
	if err := run.Wait(); err != nil {
		t.Fatal(err)
	}
	want := "timer during compute\nfired-before-done: true\n"
	if buf.String() != want {
		t.Errorf("responsiveness:\ngot  %q\nwant %q", buf.String(), want)
	}
}

// TestWithoutYieldingTimersStarve is the control for the previous test —
// the browser-freezing behaviour Stopify exists to fix (§1).
func TestWithoutYieldingTimersStarve(t *testing.T) {
	src := `
var fired = false;
setTimeout(function () { fired = true; }, 1);
var s = 0;
for (var i = 0; i < 30000; i++) { s += i; }
console.log("fired-before-done:", fired);`
	var buf bytes.Buffer
	_, err := RunRaw(src, RunConfig{Clock: eventloop.NewVirtualClock(), Out: &buf})
	if err != nil {
		t.Fatal(err)
	}
	if got := buf.String(); got != "fired-before-done: false\n" {
		t.Errorf("raw execution should starve the timer, got %q", got)
	}
}

// TestDeepStacksWithYields combines both features: deep recursion and
// periodic yielding in the same run.
func TestDeepStacksWithYields(t *testing.T) {
	src := `
function depth(n) { if (n === 0) { return 0; } return 1 + depth(n - 1); }
console.log(depth(5000));`
	o := Defaults()
	o.Timer = "countdown"
	o.CountdownN = 700
	o.YieldIntervalMs = 1
	o.DeepStacks = true
	eng := Engines500()
	got, err := RunSource(src, o, RunConfig{Engine: eng, Clock: eventloop.NewVirtualClock()})
	if err != nil {
		t.Fatal(err)
	}
	if got != "5000\n" {
		t.Errorf("deep+yield: %q", got)
	}
}

// TestPauseWhileDeeplyRecursive pauses a computation whose stack lives
// mostly in reified segments.
func TestPauseWhileDeeplyRecursive(t *testing.T) {
	src := `
function spin(n) {
  if (n === 0) { return 0; }
  return 1 + spin(n - 1);
}
var total = 0;
for (var round = 0; round < 50; round++) { total += spin(2000); }
console.log(total);`
	o := Defaults()
	o.Timer = "countdown"
	o.CountdownN = 300
	o.YieldIntervalMs = 1
	o.DeepStacks = true
	c, err := Compile(src, o)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	run, err := c.NewRun(RunConfig{Engine: Engines500(), Clock: eventloop.NewVirtualClock(), Out: &buf})
	if err != nil {
		t.Fatal(err)
	}
	run.Run(nil)
	paused := false
	run.Pause(func() { paused = true })
	for i := 0; i < 100000 && !paused; i++ {
		if !run.Loop.RunOne() {
			break
		}
	}
	if !paused {
		t.Fatal("did not pause mid-recursion")
	}
	run.Resume()
	if err := run.Wait(); err != nil {
		t.Fatal(err)
	}
	if buf.String() != "100000\n" {
		t.Errorf("resumed result: %q", buf.String())
	}
}

// Engines500 returns a 500-frame engine used by the deep-stack tests.
func Engines500() *engine.Profile {
	return &engine.Profile{Name: "shallow", Speed: 1, TryCost: 1, BranchCost: 1,
		ThrowCost: 1, CallCost: 1, NewCost: 1, ObjectCreateCost: 1, PropCost: 1,
		MaxStack: 500}
}
