package langs

// Python returns the PyJS profile: PyJS maps Python data structures onto
// JavaScript builtins (lists are arrays, dicts are objects), uses the
// arguments object both for *args and for defaulted parameters (the M entry
// in Figure 5), and never relies on implicit conversions, getters, or eval.
// The benchmarks mirror the paper's Python suite (§2's ten plus the Skulpt
// comparison set of Figure 12).
func Python() *Profile {
	return &Profile{
		Name:     "python",
		Compiler: "PyJS",
		Impl:     "none",
		Args:     "mixed",
		Benchmarks: []Benchmark{
			{Name: "b", Source: pyB},
			{Name: "binary_trees", Source: pyBinaryTrees},
			{Name: "deltablue", Source: pyDeltaBlue},
			{Name: "fib", Source: pyFib},
			{Name: "float", Source: pyFloat},
			{Name: "nbody", Source: pyNBody},
			{Name: "pystone", Source: pyPystone},
			{Name: "richards", Source: pyRichards},
			{Name: "scimark_fft", Source: pyFFT},
			{Name: "spectral_norm", Source: pySpectralNorm},
			{Name: "anagram", Source: pyAnagram},
			{Name: "gcbench", Source: pyGCBench},
			{Name: "schulze", Source: pySchulze},
			{Name: "raytrace_simple", Source: pyRaytrace},
		},
	}
}

// range/len helpers appear in all PyJS output.
const pyHelpers = `
function range(a, b, step) {
  if (arguments.length < 2) { b = a; a = 0; }
  if (arguments.length < 3) { step = 1; }
  var out = [];
  for (var i = a; step > 0 ? i < b : i > b; i += step) { out.push(i); }
  return out;
}
function len(x) { return x.length; }
`

const pyB = pyHelpers + `
// b: tight nested integer loops (PyPy benchmark "b").
function work(n) {
  var t = 0;
  for (var i = 0; i < n; i++) {
    for (var j = 0; j < 50; j++) {
      t = (t + i * j) % 100003;
    }
  }
  return t;
}
console.log("b", work(160));
`

const pyBinaryTrees = pyHelpers + `
// binary_trees: allocate and walk complete binary trees (Shootout).
function makeTree(depth) {
  if (depth === 0) { return { left: null, right: null }; }
  return { left: makeTree(depth - 1), right: makeTree(depth - 1) };
}
function checkTree(t) {
  if (t.left === null) { return 1; }
  return 1 + checkTree(t.left) + checkTree(t.right);
}
var total = 0;
var iters = range(0, 12);
for (var i = 0; i < len(iters); i++) {
  total += checkTree(makeTree(6));
}
console.log("binary_trees", total);
`

const pyDeltaBlue = pyHelpers + `
// deltablue (miniature): one-way dataflow constraint propagation with
// strength-ordered planner, the shape of the classic benchmark.
function Variable(name, value) {
  return { name: name, value: value, determinedBy: null, mark: 0 };
}
function Constraint(strength, input, output) {
  return { strength: strength, input: input, output: output, satisfied: false };
}
function execute(c) { c.output.value = c.input.value + 1; }
function satisfy(c, mark) {
  if (c.output.determinedBy === null || c.output.determinedBy.strength > c.strength) {
    c.output.determinedBy = c;
    c.satisfied = true;
    c.output.mark = mark;
    execute(c);
    return true;
  }
  return false;
}
function plan(constraints, mark) {
  var done = 0;
  for (var i = 0; i < len(constraints); i++) {
    if (satisfy(constraints[i], mark)) { done++; }
  }
  return done;
}
var checksum = 0;
for (var round = 0; round < 30; round++) {
  var vars = [];
  for (var v = 0; v < 20; v++) { vars.push(Variable("v" + v, v)); }
  var cs = [];
  for (var c = 0; c < 19; c++) { cs.push(Constraint((c * 7) % 5, vars[c], vars[c + 1])); }
  checksum += plan(cs, round);
  checksum += vars[19].value;
}
console.log("deltablue", checksum);
`

const pyFib = pyHelpers + `
// fib: naive doubly recursive Fibonacci.
function fib(n) {
  if (n < 2) { return n; }
  return fib(n - 1) + fib(n - 2);
}
console.log("fib", fib(16));
`

const pyFloat = pyHelpers + `
// float: floating-point point transforms (PyPy "float" benchmark shape).
function Point(i) {
  return { x: Math.sin(i), y: Math.cos(i) * 3, z: (i * i) / 7.0 };
}
function normalize(p) {
  var norm = Math.sqrt(p.x * p.x + p.y * p.y + p.z * p.z);
  p.x /= norm; p.y /= norm; p.z /= norm;
  return p;
}
function maximize(points) {
  var next = points[0];
  for (var i = 1; i < len(points); i++) {
    var p = points[i];
    if (p.x > next.x) { next = p; }
  }
  return next;
}
function benchmark(n) {
  var points = [];
  for (var i = 0; i < n; i++) { points.push(normalize(Point(i))); }
  return maximize(points);
}
var best = benchmark(700);
console.log("float", (best.x * 1000 | 0), (best.y * 1000 | 0));
`

const pyNBody = pyHelpers + `
// nbody: planetary orbital simulation (Shootout).
function body(x, y, z, vx, vy, vz, mass) {
  return { x: x, y: y, z: z, vx: vx, vy: vy, vz: vz, mass: mass };
}
var SOLAR_MASS = 4 * Math.PI * Math.PI;
var bodies = [
  body(0, 0, 0, 0, 0, 0, SOLAR_MASS),
  body(4.84, -1.16, -0.103, 0.606, 0.288, -0.0125, 9.54e-4 * SOLAR_MASS),
  body(8.34, 4.12, -0.403, -0.276, 0.499, 0.0023, 2.85e-4 * SOLAR_MASS),
  body(12.89, -15.11, -0.223, 0.296, 0.0237, -0.0029, 4.36e-5 * SOLAR_MASS),
  body(15.37, -25.91, 0.179, 0.268, 0.1662, -0.0095, 5.15e-5 * SOLAR_MASS)
];
function advance(dt) {
  var n = len(bodies);
  for (var i = 0; i < n; i++) {
    var bi = bodies[i];
    for (var j = i + 1; j < n; j++) {
      var bj = bodies[j];
      var dx = bi.x - bj.x, dy = bi.y - bj.y, dz = bi.z - bj.z;
      var d2 = dx * dx + dy * dy + dz * dz;
      var mag = dt / (d2 * Math.sqrt(d2));
      bi.vx -= dx * bj.mass * mag; bi.vy -= dy * bj.mass * mag; bi.vz -= dz * bj.mass * mag;
      bj.vx += dx * bi.mass * mag; bj.vy += dy * bi.mass * mag; bj.vz += dz * bi.mass * mag;
    }
  }
  for (var k = 0; k < n; k++) {
    var b = bodies[k];
    b.x += dt * b.vx; b.y += dt * b.vy; b.z += dt * b.vz;
  }
}
function energy() {
  var e = 0;
  for (var i = 0; i < len(bodies); i++) {
    var bi = bodies[i];
    e += 0.5 * bi.mass * (bi.vx * bi.vx + bi.vy * bi.vy + bi.vz * bi.vz);
    for (var j = i + 1; j < len(bodies); j++) {
      var bj = bodies[j];
      var dx = bi.x - bj.x, dy = bi.y - bj.y, dz = bi.z - bj.z;
      e -= bi.mass * bj.mass / Math.sqrt(dx * dx + dy * dy + dz * dz);
    }
  }
  return e;
}
for (var step = 0; step < 120; step++) { advance(0.01); }
console.log("nbody", (energy() * 1e6 | 0));
`

const pyPystone = pyHelpers + `
// pystone: record copies, array writes and procedure calls (the classic
// Dhrystone translation that ships with CPython).
var IntGlob = 0;
var Array1 = [];
for (var z = 0; z < 51; z++) { Array1.push(0); }
function Proc1(rec) {
  var next = { ptr: null, discr: 0, enumComp: 0, intComp: rec.intComp, stringComp: rec.stringComp };
  next.intComp = 5;
  next.enumComp = Proc3(next.intComp);
  rec.ptr = next;
  return rec;
}
function Proc3(x) {
  if (x > 2) { IntGlob = x + 1; return 1; }
  return 2;
}
function Proc8(arr, idx, val) {
  arr[idx] = val;
  arr[idx + 1] = arr[idx];
  arr[idx + 30] = idx;
  IntGlob = 5;
}
function Func2(s1, s2) {
  if (s1.charCodeAt(1) === s2.charCodeAt(2)) { return 1; }
  return 0;
}
function loop(n) {
  var rec = { ptr: null, discr: 0, enumComp: 0, intComp: 40, stringComp: "DHRYSTONE PROGRAM" };
  var check = 0;
  for (var i = 0; i < n; i++) {
    rec = Proc1(rec);
    Proc8(Array1, i % 20, i);
    check += Func2("DHRYSTONE", "PROGRAM") + IntGlob + rec.ptr.intComp;
  }
  return check;
}
console.log("pystone", loop(900));
`

const pyRichards = pyHelpers + `
// richards (miniature): an OS task scheduler with packet queues and state
// machines — heavy method dispatch through a small class hierarchy.
var ID_IDLE = 0, ID_WORK = 1, ID_HANDLER = 2;
function Packet(link, id, kind) { return { link: link, id: id, kind: kind, a1: 0 }; }
function append(packet, queue) {
  packet.link = null;
  if (queue === null) { return packet; }
  var p = queue;
  while (p.link !== null) { p = p.link; }
  p.link = packet;
  return queue;
}
function Task(id, priority, queue, fn) {
  return { id: id, priority: priority, queue: queue, fn: fn, state: queue === null ? 1 : 0, held: false };
}
function Scheduler() {
  return { tasks: [], current: null, queueCount: 0, holdCount: 0 };
}
function schedule(sched, iterations) {
  for (var round = 0; round < iterations; round++) {
    for (var t = 0; t < len(sched.tasks); t++) {
      var task = sched.tasks[t];
      if (task.held) { sched.holdCount++; task.held = false; continue; }
      var packet = task.queue;
      if (packet !== null) { task.queue = packet.link; }
      task.queue = task.fn(task, packet);
      sched.queueCount++;
    }
  }
}
function idleFn(task, packet) {
  task.held = task.id % 2 === 0;
  return task.queue;
}
function workFn(task, packet) {
  if (packet === null) { return task.queue; }
  packet.a1 = (packet.a1 + task.priority) % 26;
  return append(packet, task.queue);
}
var sched = Scheduler();
var q0 = append(Packet(null, ID_WORK, 2), null);
q0 = append(Packet(null, ID_WORK, 2), q0);
sched.tasks.push(Task(ID_IDLE, 0, null, idleFn));
sched.tasks.push(Task(ID_WORK, 1000, q0, workFn));
sched.tasks.push(Task(ID_HANDLER, 2000, append(Packet(null, ID_HANDLER, 1), null), workFn));
schedule(sched, 700);
console.log("richards", sched.queueCount, sched.holdCount);
`

const pyFFT = pyHelpers + `
// scimark_fft: in-place radix-2 complex FFT over a power-of-two signal.
function fft(re, im) {
  var n = len(re);
  // bit reversal
  var j = 0;
  for (var i = 0; i < n - 1; i++) {
    if (i < j) {
      var tr = re[i]; re[i] = re[j]; re[j] = tr;
      var ti = im[i]; im[i] = im[j]; im[j] = ti;
    }
    var m = n >> 1;
    while (m >= 1 && j >= m) { j -= m; m >>= 1; }
    j += m;
  }
  for (var size = 2; size <= n; size <<= 1) {
    var half = size >> 1;
    var step = Math.PI / half;
    for (var base = 0; base < n; base += size) {
      for (var k = 0; k < half; k++) {
        var ang = step * k;
        var wr = Math.cos(ang), wi = -Math.sin(ang);
        var idx = base + k, jdx = idx + half;
        var xr = wr * re[jdx] - wi * im[jdx];
        var xi = wr * im[jdx] + wi * re[jdx];
        re[jdx] = re[idx] - xr; im[jdx] = im[idx] - xi;
        re[idx] += xr; im[idx] += xi;
      }
    }
  }
}
var N = 256;
var re = [], im = [];
for (var i = 0; i < N; i++) { re.push(Math.sin(i)); im.push(0); }
for (var round = 0; round < 4; round++) { fft(re, im); }
var acc = 0;
for (var i = 0; i < N; i++) { acc += re[i] * re[i] + im[i] * im[i]; }
console.log("scimark_fft", (acc | 0));
`

const pySpectralNorm = pyHelpers + `
// spectral_norm: power-method estimate of the spectral norm (Shootout).
function A(i, j) { return 1 / ((i + j) * (i + j + 1) / 2 + i + 1); }
function Av(v) {
  var out = [];
  for (var i = 0; i < len(v); i++) {
    var s = 0;
    for (var j = 0; j < len(v); j++) { s += A(i, j) * v[j]; }
    out.push(s);
  }
  return out;
}
function Atv(v) {
  var out = [];
  for (var i = 0; i < len(v); i++) {
    var s = 0;
    for (var j = 0; j < len(v); j++) { s += A(j, i) * v[j]; }
    out.push(s);
  }
  return out;
}
var u = [];
for (var i = 0; i < 24; i++) { u.push(1); }
var v = null;
for (var it = 0; it < 6; it++) {
  v = Atv(Av(u));
  u = Atv(Av(v));
}
var vBv = 0, vv = 0;
for (var i = 0; i < len(u); i++) { vBv += u[i] * v[i]; vv += v[i] * v[i]; }
console.log("spectral_norm", (Math.sqrt(vBv / vv) * 1e9 | 0));
`

const pyAnagram = pyHelpers + `
// anagram: group words by sorted letters using dictionary-style objects.
function sortLetters(w) {
  var cs = w.split("");
  // insertion sort, as PyJS emits for sorted()
  for (var i = 1; i < len(cs); i++) {
    var c = cs[i], j = i - 1;
    while (j >= 0 && cs[j] > c) { cs[j + 1] = cs[j]; j--; }
    cs[j + 1] = c;
  }
  return cs.join("");
}
var words = [];
var seed = 7;
for (var i = 0; i < 260; i++) {
  var w = "";
  for (var k = 0; k < 6; k++) {
    seed = (seed * 1103515245 + 12345) % 2147483647;
    w += String.fromCharCode(97 + seed % 7);
  }
  words.push(w);
}
var groups = {};
var maxSize = 0;
for (var i = 0; i < len(words); i++) {
  var key = sortLetters(words[i]);
  if (groups[key] === undefined) { groups[key] = []; }
  groups[key].push(words[i]);
  if (len(groups[key]) > maxSize) { maxSize = len(groups[key]); }
}
var distinct = 0;
for (var k in groups) { distinct++; }
console.log("anagram", distinct, maxSize);
`

const pyGCBench = pyHelpers + `
// gcbench: build and drop trees to stress allocation (Boehm's GCBench).
function Node() { return { left: null, right: null, i: 0, j: 0 }; }
function populate(depth, node) {
  if (depth <= 0) { return; }
  node.left = Node();
  node.right = Node();
  populate(depth - 1, node.left);
  populate(depth - 1, node.right);
}
function treeSize(depth) { return (1 << (depth + 1)) - 1; }
var kept = Node();
populate(7, kept);
var churn = 0;
for (var i = 0; i < 24; i++) {
  var temp = Node();
  populate(5, temp);
  churn += treeSize(5);
}
function count(node) {
  if (node === null) { return 0; }
  return 1 + count(node.left) + count(node.right);
}
console.log("gcbench", count(kept), churn);
`

const pySchulze = pyHelpers + `
// schulze: the Schulze voting method — Floyd-Warshall over pairwise
// preferences (the slowest Skulpt benchmark in Figure 12).
var C = 10;
var d = [];
for (var i = 0; i < C; i++) {
  var row = [];
  for (var j = 0; j < C; j++) { row.push(i === j ? 0 : ((i * 31 + j * 17) % 23)); }
  d.push(row);
}
var p = [];
for (var i = 0; i < C; i++) {
  var row = [];
  for (var j = 0; j < C; j++) {
    row.push(i !== j && d[i][j] > d[j][i] ? d[i][j] : 0);
  }
  p.push(row);
}
for (var rep = 0; rep < 14; rep++) {
  for (var i = 0; i < C; i++) {
    for (var j = 0; j < C; j++) {
      if (i === j) { continue; }
      for (var k = 0; k < C; k++) {
        if (i !== k && j !== k) {
          var via = p[j][i] < p[i][k] ? p[j][i] : p[i][k];
          if (via > p[j][k]) { p[j][k] = via; }
        }
      }
    }
  }
}
var winner = -1, best = -1;
for (var i = 0; i < C; i++) {
  var wins = 0;
  for (var j = 0; j < C; j++) { if (i !== j && p[i][j] > p[j][i]) { wins++; } }
  if (wins > best) { best = wins; winner = i; }
}
console.log("schulze", winner, best);
`

const pyRaytrace = pyHelpers + `
// raytrace_simple: sphere intersection tests over a pixel grid.
function dot(ax, ay, az, bx, by, bz) { return ax * bx + ay * by + az * bz; }
function hitSphere(ox, oy, oz, dx, dy, dz, cx, cy, cz, r) {
  var lx = cx - ox, ly = cy - oy, lz = cz - oz;
  var tca = dot(lx, ly, lz, dx, dy, dz);
  if (tca < 0) { return -1; }
  var d2 = dot(lx, ly, lz, lx, ly, lz) - tca * tca;
  if (d2 > r * r) { return -1; }
  return tca - Math.sqrt(r * r - d2);
}
var spheres = [];
for (var s = 0; s < 6; s++) {
  spheres.push({ x: s - 3, y: (s % 3) - 1, z: 6 + s, r: 0.8 });
}
var hits = 0, shade = 0;
var W = 36, H = 24;
for (var py = 0; py < H; py++) {
  for (var px = 0; px < W; px++) {
    var dx = (px - W / 2) / W, dy = (py - H / 2) / H, dz = 1;
    var norm = Math.sqrt(dx * dx + dy * dy + dz * dz);
    dx /= norm; dy /= norm; dz /= norm;
    var nearest = 1e9;
    for (var s = 0; s < len(spheres); s++) {
      var sp = spheres[s];
      var t = hitSphere(0, 0, 0, dx, dy, dz, sp.x, sp.y, sp.z, sp.r);
      if (t >= 0 && t < nearest) { nearest = t; }
    }
    if (nearest < 1e9) { hits++; shade += nearest; }
  }
}
console.log("raytrace_simple", hits, (shade * 100 | 0));
`
