package langs

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/eventloop"
)

// TestBenchmarksRunRaw verifies every benchmark runs and prints a
// deterministic, non-empty checksum line starting with its name.
func TestBenchmarksRunRaw(t *testing.T) {
	for _, p := range All() {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			for _, b := range p.Benchmarks {
				out, err := core.RunRaw(b.Source, core.RunConfig{Clock: eventloop.NewVirtualClock(), Seed: 1})
				if err != nil {
					t.Errorf("%s/%s failed: %v", p.Name, b.Name, err)
					continue
				}
				if !strings.HasPrefix(out, b.Name+" ") && !strings.HasPrefix(out, b.Name+"\n") {
					t.Errorf("%s/%s output should start with its name: %q", p.Name, b.Name, out)
				}
				out2, err := core.RunRaw(b.Source, core.RunConfig{Clock: eventloop.NewVirtualClock(), Seed: 1})
				if err != nil || out2 != out {
					t.Errorf("%s/%s is not deterministic", p.Name, b.Name)
				}
			}
		})
	}
}

// TestBenchmarksSurviveStopify runs every benchmark under its profile's
// sub-language with aggressive yielding and requires identical output — the
// self-validation the harness relies on before timing anything.
func TestBenchmarksSurviveStopify(t *testing.T) {
	for _, p := range All() {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			opts := p.Opts(core.Defaults())
			opts.Timer = "countdown"
			opts.CountdownN = 40
			opts.YieldIntervalMs = 1
			for _, b := range p.Benchmarks {
				want, err := core.RunRaw(b.Source, core.RunConfig{Clock: eventloop.NewVirtualClock(), Seed: 1})
				if err != nil {
					t.Fatalf("%s/%s raw: %v", p.Name, b.Name, err)
				}
				got, err := core.RunSource(b.Source, opts, core.RunConfig{Clock: eventloop.NewVirtualClock(), Seed: 1})
				if err != nil {
					t.Errorf("%s/%s stopified: %v", p.Name, b.Name, err)
					continue
				}
				if got != want {
					t.Errorf("%s/%s changed under stopify:\nraw: %q\ngot: %q", p.Name, b.Name, want, got)
				}
			}
		})
	}
}

func TestSuiteShape(t *testing.T) {
	all := All()
	if len(all) != 10 {
		t.Fatalf("expected 10 profiles, got %d", len(all))
	}
	if n := TotalBenchmarks(); n < 80 {
		t.Errorf("suite too small: %d benchmarks", n)
	}
	if ByName("python") == nil || ByName("nope") != nil {
		t.Error("ByName lookup broken")
	}
	if len(OctaneLike()) < 4 || len(KrakenLike()) < 4 {
		t.Error("octane/kraken suites too small")
	}
}
