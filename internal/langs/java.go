package langs

// Java returns the JSweet profile: Java-style class hierarchies compiled to
// constructor functions with prototype methods, interface dispatch through
// method tables, and Java's implicit toString in string concatenation (the
// + entry in Figure 5's Impl column and M in Args — JSweet uses arguments
// for overload dispatch).
func Java() *Profile {
	return &Profile{
		Name:     "java",
		Compiler: "JSweet",
		Impl:     "plus",
		Args:     "mixed",
		Benchmarks: []Benchmark{
			{Name: "arraylist", Source: javaArrayList},
			{Name: "tostring_concat", Source: javaToStringConcat},
			{Name: "inheritance", Source: javaInheritance},
			{Name: "hashmap", Source: javaHashMap},
			{Name: "overloads", Source: javaOverloads},
			{Name: "interfaces", Source: javaInterfaces},
			{Name: "stringbuilder", Source: javaStringBuilder},
			{Name: "exceptions", Source: javaExceptions},
			{Name: "scimark_sor", Source: javaSOR},
		},
	}
}

const javaArrayList = `
function ArrayList() { this.elementData = []; this.size = 0; }
ArrayList.prototype.add = function (e) { this.elementData[this.size++] = e; return true; };
ArrayList.prototype.get = function (i) { return this.elementData[i]; };
ArrayList.prototype.set = function (i, e) { var old = this.elementData[i]; this.elementData[i] = e; return old; };
var list = new ArrayList();
for (var i = 0; i < 350; i++) { list.add(i % 23); }
var sum = 0;
for (var i = 0; i < list.size; i++) { sum += list.get(i); }
list.set(0, 99);
console.log("arraylist", sum, list.get(0));
`

const javaToStringConcat = `
function Money(cents) { this.cents = cents; }
Money.prototype.toString = function () {
  return "$" + ((this.cents / 100) | 0) + "." + (this.cents % 100);
};
var report = "";
for (var i = 0; i < 40; i++) {
  report = report + new Money(i * 137) + "\n";
}
console.log("tostring_concat", report.length);
`

const javaInheritance = `
function Animal(name) { this.name = name; }
Animal.prototype.speak = function () { return this.name + " makes a sound"; };
Animal.prototype.legs = function () { return 4; };
function Dog(name) { Animal.call(this, name); }
Dog.prototype = Object.create(Animal.prototype);
Dog.prototype.speak = function () { return this.name + " barks"; };
function Bird(name) { Animal.call(this, name); }
Bird.prototype = Object.create(Animal.prototype);
Bird.prototype.legs = function () { return 2; };
var zoo = [];
for (var i = 0; i < 120; i++) {
  zoo.push(i % 2 === 0 ? new Dog("d" + i) : new Bird("b" + i));
}
var legs = 0, chars = 0;
for (var i = 0; i < zoo.length; i++) {
  legs += zoo[i].legs();
  chars += zoo[i].speak().length;
}
console.log("inheritance", legs, chars);
`

const javaHashMap = `
function HashMap() { this.buckets = []; for (var i = 0; i < 16; i++) { this.buckets.push([]); } this.count = 0; }
HashMap.prototype.hash = function (key) {
  var h = 0;
  for (var i = 0; i < key.length; i++) { h = (h * 31 + key.charCodeAt(i)) | 0; }
  return (h & 0x7fffffff) % 16;
};
HashMap.prototype.put = function (key, value) {
  var b = this.buckets[this.hash(key)];
  for (var i = 0; i < b.length; i++) {
    if (b[i].key === key) { b[i].value = value; return; }
  }
  b.push({ key: key, value: value });
  this.count++;
};
HashMap.prototype.get = function (key) {
  var b = this.buckets[this.hash(key)];
  for (var i = 0; i < b.length; i++) {
    if (b[i].key === key) { return b[i].value; }
  }
  return null;
};
var map = new HashMap();
for (var i = 0; i < 200; i++) { map.put("key" + (i % 60), i); }
var total = 0;
for (var i = 0; i < 60; i++) { total += map.get("key" + i); }
console.log("hashmap", map.count, total);
`

const javaOverloads = `
// Overloaded methods dispatch on arguments.length in JSweet output.
function Calc() { this.acc = 0; }
Calc.prototype.add = function (a, b) {
  if (arguments.length === 1) { this.acc += a; return this; }
  this.acc += a * b;
  return this;
};
var c = new Calc();
for (var i = 0; i < 300; i++) {
  if (i % 2 === 0) { c.add(i); } else { c.add(i, 2); }
}
console.log("overloads", c.acc);
`

const javaInterfaces = `
// Comparable/Comparator-style dispatch.
function byValue(a, b) { return a.value - b.value; }
function Item(value, weight) { this.value = value; this.weight = weight; }
Item.prototype.compareTo = function (o) { return byValue(this, o); };
var items = [];
var seed = 5;
for (var i = 0; i < 90; i++) {
  seed = (seed * 48271) % 2147483647;
  items.push(new Item(seed % 500, i));
}
// selection sort via compareTo
for (var i = 0; i < items.length; i++) {
  var min = i;
  for (var j = i + 1; j < items.length; j++) {
    if (items[j].compareTo(items[min]) < 0) { min = j; }
  }
  var t = items[i]; items[i] = items[min]; items[min] = t;
}
var ordered = true;
for (var i = 1; i < items.length; i++) {
  if (items[i - 1].value > items[i].value) { ordered = false; }
}
console.log("interfaces", ordered, items[0].value);
`

const javaStringBuilder = `
function StringBuilder() { this.parts = []; }
StringBuilder.prototype.append = function (x) { this.parts.push("" + x); return this; };
StringBuilder.prototype.toString = function () { return this.parts.join(""); };
var sb = new StringBuilder();
for (var i = 0; i < 200; i++) {
  sb.append(i).append(",");
}
var s = sb.toString();
console.log("stringbuilder", s.length, s.charAt(10));
`

const javaExceptions = `
function CheckedError(code) { this.code = code; }
function mightFail(n) {
  if (n % 7 === 0) { throw new CheckedError(n); }
  return n * 2;
}
var handled = 0, total = 0;
for (var i = 0; i < 250; i++) {
  try {
    total += mightFail(i);
  } catch (e) {
    handled++;
    total += e.code;
  }
}
console.log("exceptions", handled, total);
`

const javaSOR = `
// SciMark's successive over-relaxation kernel.
var N = 24;
var G = [];
for (var i = 0; i < N; i++) {
  var row = [];
  for (var j = 0; j < N; j++) { row.push(((i * j) % 13) / 13); }
  G.push(row);
}
var omega = 1.25;
for (var p = 0; p < 20; p++) {
  for (var i = 1; i < N - 1; i++) {
    var Gi = G[i], Gim = G[i - 1], Gip = G[i + 1];
    for (var j = 1; j < N - 1; j++) {
      Gi[j] = omega * 0.25 * (Gim[j] + Gip[j] + Gi[j - 1] + Gi[j + 1]) + (1 - omega) * Gi[j];
    }
  }
}
console.log("scimark_sor", (G[12][12] * 1e9) | 0);
`
