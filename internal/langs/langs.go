// Package langs models the ten source-language compilers of the paper's
// evaluation (Figure 5). Each Profile pairs the sub-language options that
// compiler's output inhabits (its Impl/Args/Getters/Eval row) with a suite
// of benchmark programs written in the style that compiler actually emits —
// PyJS's dictionary-backed objects and optional arguments, ScalaJS's boxed
// values and translated standard library, Emscripten's flat
// typed-array-style code, and so on (see DESIGN.md §1 for the substitution
// argument).
//
// Every benchmark prints a deterministic checksum, so the harness can
// verify that instrumented and raw runs agree before trusting a timing.
package langs

import "repro/internal/core"

// Benchmark is one program of a language's suite.
type Benchmark struct {
	Name   string
	Source string
}

// Profile describes one compiler: its name, the sub-language it targets,
// and its benchmarks.
type Profile struct {
	Name     string // source language ("python", "scala", ...)
	Compiler string // the compiler of Figure 5 ("PyJS", "ScalaJS", ...)

	// Sub-language columns of Figure 5.
	Impl    string // "none", "plus", "full"
	Args    string // "none", "varargs", "mixed", "full"
	Getters bool
	Eval    bool

	Benchmarks []Benchmark
}

// Opts returns the Stopify configuration exploiting this profile's
// sub-language, with the given continuation/constructor/timer choices
// layered on top.
func (p *Profile) Opts(base core.Opts) core.Opts {
	base.Implicits = p.Impl
	base.Args = p.Args
	base.Getters = p.Getters
	base.Eval = p.Eval
	return base
}

// All returns the nine §6.1 language profiles plus Pyret (§6.4), in the
// order the paper lists them.
func All() []*Profile {
	return []*Profile{
		Python(),
		Scala(),
		Scheme(),
		Clojure(),
		Dart(),
		Cpp(),
		OCaml(),
		Java(),
		JavaScript(),
		Pyret(),
	}
}

// ByName finds a profile.
func ByName(name string) *Profile {
	for _, p := range All() {
		if p.Name == name {
			return p
		}
	}
	return nil
}

// TotalBenchmarks counts benchmarks across all profiles (147 in the paper;
// we aim for the same order of magnitude).
func TotalBenchmarks() int {
	n := 0
	for _, p := range All() {
		n += len(p.Benchmarks)
	}
	return n
}
