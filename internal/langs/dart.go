package langs

// Dart returns the dart2js profile: class-heavy code whose getters are
// trivial internal accessors that always terminate (the T entries of
// Figure 5), and eval used only as compression for trivially terminating
// generated functions.
func Dart() *Profile {
	return &Profile{
		Name:     "dart",
		Compiler: "dart2js",
		Impl:     "none",
		Args:     "none",
		Getters:  true,
		Eval:     true,
		Benchmarks: []Benchmark{
			{Name: "class_fields", Source: dartClassFields},
			{Name: "getters_hot", Source: dartGettersHot},
			{Name: "iterator", Source: dartIterator},
			{Name: "matrix", Source: dartMatrix},
			{Name: "tree_visit", Source: dartTreeVisit},
			{Name: "eval_ctors", Source: dartEvalCtors},
			{Name: "queue_sim", Source: dartQueueSim},
			{Name: "complex", Source: dartComplex},
		},
	}
}

const dartClassFields = `
function Rect(w, h) { this._w = w; this._h = h; }
Object.defineProperty(Rect.prototype, "area", {
  get: function () { return this._w * this._h; }
});
Object.defineProperty(Rect.prototype, "perimeter", {
  get: function () { return 2 * (this._w + this._h); }
});
var total = 0;
for (var i = 1; i <= 250; i++) {
  var r = new Rect(i, i + 1);
  total = (total + r.area + r.perimeter) % 1000003;
}
console.log("class_fields", total);
`

const dartGettersHot = `
function Vec(x, y) { this._x = x; this._y = y; }
Object.defineProperty(Vec.prototype, "x", { get: function () { return this._x; } });
Object.defineProperty(Vec.prototype, "y", { get: function () { return this._y; } });
Vec.prototype.plus = function (o) { return new Vec(this.x + o.x, this.y + o.y); };
var v = new Vec(0, 0);
for (var i = 0; i < 200; i++) { v = v.plus(new Vec(1, 2)); }
console.log("getters_hot", v.x, v.y);
`

const dartIterator = `
function ListIterator(list) { this._list = list; this._i = -1; this.current = null; }
ListIterator.prototype.moveNext = function () {
  this._i++;
  if (this._i < this._list.length) { this.current = this._list[this._i]; return true; }
  return false;
};
var data = [];
for (var i = 0; i < 300; i++) { data.push(i * 3 % 11); }
var sum = 0;
var it = new ListIterator(data);
while (it.moveNext()) { sum += it.current; }
console.log("iterator", sum);
`

const dartMatrix = `
function Matrix(n) {
  this.n = n;
  this.data = [];
  for (var i = 0; i < n * n; i++) { this.data.push((i * 7) % 5); }
}
Matrix.prototype.at = function (r, c) { return this.data[r * this.n + c]; };
Matrix.prototype.mul = function (o) {
  var out = new Matrix(this.n);
  for (var r = 0; r < this.n; r++) {
    for (var c = 0; c < this.n; c++) {
      var s = 0;
      for (var k = 0; k < this.n; k++) { s += this.at(r, k) * o.at(k, c); }
      out.data[r * this.n + c] = s % 101;
    }
  }
  return out;
};
var m = new Matrix(12);
var p = m.mul(m).mul(m);
console.log("matrix", p.at(3, 4), p.at(7, 7));
`

const dartTreeVisit = `
function Node(v) { this.value = v; this.children = []; }
Node.prototype.add = function (c) { this.children.push(c); return this; };
Node.prototype.visit = function (fn) {
  fn(this);
  for (var i = 0; i < this.children.length; i++) { this.children[i].visit(fn); }
};
function build(depth, fan) {
  var n = new Node(depth);
  if (depth > 0) {
    for (var i = 0; i < fan; i++) { n.add(build(depth - 1, fan)); }
  }
  return n;
}
var count = 0, sum = 0;
build(6, 3).visit(function (n) { count++; sum += n.value; });
console.log("tree_visit", count, sum);
`

const dartEvalCtors = `
// dart2js uses eval as compression for trivial generated constructors
// (the T entry in Figure 5's Eval column).
eval("MakeA = function () { return { kind: 'A', size: 1 }; };");
eval("MakeB = function () { return { kind: 'B', size: 2 }; };");
var sizes = 0;
for (var i = 0; i < 150; i++) {
  var v = i % 2 === 0 ? MakeA() : MakeB();
  sizes += v.size;
}
console.log("eval_ctors", sizes);
`

const dartQueueSim = `
function Queue() { this._in = []; this._out = []; }
Queue.prototype.add = function (x) { this._in.push(x); };
Queue.prototype.removeFirst = function () {
  if (this._out.length === 0) {
    while (this._in.length > 0) { this._out.push(this._in.pop()); }
  }
  return this._out.pop();
};
Object.defineProperty(Queue.prototype, "isEmpty", {
  get: function () { return this._in.length === 0 && this._out.length === 0; }
});
var q = new Queue();
var served = 0;
for (var t = 0; t < 300; t++) {
  q.add(t);
  if (t % 3 === 0) {
    while (!q.isEmpty) { served += q.removeFirst() % 7; if (served % 5 === 0) { break; } }
  }
}
console.log("queue_sim", served);
`

const dartComplex = `
function Complex(re, im) { this.re = re; this.im = im; }
Complex.prototype.mul = function (o) {
  return new Complex(this.re * o.re - this.im * o.im, this.re * o.im + this.im * o.re);
};
Complex.prototype.add = function (o) { return new Complex(this.re + o.re, this.im + o.im); };
Object.defineProperty(Complex.prototype, "abs2", {
  get: function () { return this.re * this.re + this.im * this.im; }
});
// Mandelbrot membership over a tiny grid.
var inside = 0;
for (var y = -6; y <= 6; y++) {
  for (var x = -12; x <= 4; x++) {
    var c = new Complex(x / 8, y / 8);
    var z = new Complex(0, 0);
    var it = 0;
    while (it < 20 && z.abs2 < 4) { z = z.mul(z).add(c); it++; }
    if (it === 20) { inside++; }
  }
}
console.log("complex", inside);
`
