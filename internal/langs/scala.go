package langs

// Scala returns the ScalaJS profile. ScalaJS translates the Scala standard
// library directly to JavaScript instead of mapping onto JS builtins
// (§6.1's explanation of its higher Stopify cost), so the benchmarks route
// every collection operation through translated library functions, box
// values in wrapper objects, and use + for string building (the + entry in
// Figure 5's Impl column).
func Scala() *Profile {
	return &Profile{
		Name:     "scala",
		Compiler: "ScalaJS",
		Impl:     "plus",
		Args:     "none",
		Benchmarks: []Benchmark{
			{Name: "list_ops", Source: scalaListOps},
			{Name: "fib_boxed", Source: scalaFibBoxed},
			{Name: "case_classes", Source: scalaCaseClasses},
			{Name: "fold_sum", Source: scalaFoldSum},
			{Name: "string_builder", Source: scalaStringBuilder},
			{Name: "pattern_match", Source: scalaPatternMatch},
			{Name: "vector_update", Source: scalaVectorUpdate},
			{Name: "tak", Source: scalaTak},
			{Name: "queens", Source: scalaQueens},
			{Name: "streams", Source: scalaStreams},
		},
	}
}

// ScalaJS-style runtime shims: cons lists, boxed ints, Option.
const scalaRuntime = `
function Nil$() { return { isEmpty: true }; }
function Cons(head, tail) { return { isEmpty: false, head: head, tail: tail }; }
function List_length(xs) { var n = 0; while (!xs.isEmpty) { n++; xs = xs.tail; } return n; }
function List_map(xs, f) {
  if (xs.isEmpty) { return xs; }
  return Cons(f(xs.head), List_map(xs.tail, f));
}
function List_filter(xs, f) {
  if (xs.isEmpty) { return xs; }
  if (f(xs.head)) { return Cons(xs.head, List_filter(xs.tail, f)); }
  return List_filter(xs.tail, f);
}
function List_foldLeft(xs, z, f) {
  while (!xs.isEmpty) { z = f(z, xs.head); xs = xs.tail; }
  return z;
}
function List_range(a, b) {
  if (a >= b) { return Nil$(); }
  return Cons(a, List_range(a + 1, b));
}
function BoxedInt(v) { return { value: v }; }
function unbox(b) { return b.value; }
function Some(v) { return { defined: true, get: v }; }
function None$() { return { defined: false, get: null }; }
`

const scalaListOps = scalaRuntime + `
var xs = List_range(0, 300);
var ys = List_map(xs, function (x) { return x * 3; });
var zs = List_filter(ys, function (x) { return x % 2 === 0; });
console.log("list_ops", List_length(zs), List_foldLeft(zs, 0, function (a, b) { return a + b; }));
`

const scalaFibBoxed = scalaRuntime + `
function fib(n) {
  if (unbox(n) < 2) { return n; }
  return BoxedInt(unbox(fib(BoxedInt(unbox(n) - 1))) + unbox(fib(BoxedInt(unbox(n) - 2))));
}
console.log("fib_boxed", unbox(fib(BoxedInt(15))));
`

const scalaCaseClasses = scalaRuntime + `
function Point(x, y) { this.x = x; this.y = y; }
Point.prototype.copy = function (x, y) { return new Point(x, y); };
Point.prototype.equals$ = function (o) { return this.x === o.x && this.y === o.y; };
Point.prototype.hashCode$ = function () { return this.x * 31 + this.y; };
var acc = 0;
for (var i = 0; i < 400; i++) {
  var p = new Point(i, i * 2);
  var q = p.copy(p.x + 1, p.y);
  if (!p.equals$(q)) { acc += q.hashCode$() % 97; }
}
console.log("case_classes", acc);
`

const scalaFoldSum = scalaRuntime + `
var total = 0;
for (var round = 0; round < 10; round++) {
  var xs = List_range(0, 120);
  total += List_foldLeft(xs, 0, function (a, b) { return a + b * b; }) % 10007;
}
console.log("fold_sum", total);
`

const scalaStringBuilder = scalaRuntime + `
// Scala's + on mixed values relies on implicit toString (Impl = +).
function Show(n) { this.n = n; }
Show.prototype.toString = function () { return "S(" + this.n + ")"; };
var out = "";
for (var i = 0; i < 60; i++) {
  out = out + new Show(i) + ";";
}
console.log("string_builder", out.length);
`

const scalaPatternMatch = scalaRuntime + `
function Leaf(v) { return { tag: 0, v: v }; }
function Branch(l, r) { return { tag: 1, l: l, r: r }; }
function build(depth, v) {
  if (depth === 0) { return Leaf(v); }
  return Branch(build(depth - 1, v * 2), build(depth - 1, v * 2 + 1));
}
function evalTree(t) {
  switch (t.tag) {
    case 0: return t.v % 13;
    case 1: return evalTree(t.l) + evalTree(t.r);
    default: return 0;
  }
}
var acc = 0;
for (var i = 0; i < 10; i++) { acc += evalTree(build(7, i)); }
console.log("pattern_match", acc);
`

const scalaVectorUpdate = scalaRuntime + `
// Persistent-style updates: every write copies, as Vector does.
function updated(arr, idx, v) {
  var copy = [];
  for (var i = 0; i < arr.length; i++) { copy.push(arr[i]); }
  copy[idx] = v;
  return copy;
}
var vec = [];
for (var i = 0; i < 40; i++) { vec.push(0); }
for (var step = 0; step < 120; step++) {
  vec = updated(vec, step % 40, step);
}
var sum = 0;
for (var i = 0; i < vec.length; i++) { sum += vec[i]; }
console.log("vector_update", sum);
`

const scalaTak = scalaRuntime + `
function tak(x, y, z) {
  if (y >= x) { return z; }
  return tak(tak(x - 1, y, z), tak(y - 1, z, x), tak(z - 1, x, y));
}
console.log("tak", tak(12, 6, 0));
`

const scalaQueens = scalaRuntime + `
function safe(queens, col, delta) {
  if (queens.isEmpty) { return true; }
  var q = queens.head;
  if (q === col || q === col + delta || q === col - delta) { return false; }
  return safe(queens.tail, col, delta + 1);
}
function place(n, row, queens) {
  if (row === 0) { return 1; }
  var count = 0;
  for (var col = 1; col <= n; col++) {
    if (safe(queens, col, 1)) {
      count += place(n, row - 1, Cons(col, queens));
    }
  }
  return count;
}
console.log("queens", place(6, 6, Nil$()));
`

const scalaStreams = scalaRuntime + `
// Lazy streams via thunks, the Stream.from(1).map(...).take(n) idiom.
function StreamCons(head, tailThunk) { return { head: head, tail: tailThunk }; }
function from(n) { return StreamCons(n, function () { return from(n + 1); }); }
function mapS(s, f) {
  return StreamCons(f(s.head), function () { return mapS(s.tail(), f); });
}
function takeSum(s, n) {
  var acc = 0;
  while (n > 0) { acc += s.head; s = s.tail(); n--; }
  return acc;
}
console.log("streams", takeSum(mapS(from(1), function (x) { return x * x; }), 150));
`
