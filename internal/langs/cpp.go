package langs

// Cpp returns the Emscripten profile: flat, C-like code over preallocated
// numeric arrays standing in for linear memory, few small functions, heavy
// while loops, and bit operations — no implicit conversions, getters, or
// eval; varargs only through the arguments object (printf-style shims).
func Cpp() *Profile {
	return &Profile{
		Name:     "cpp",
		Compiler: "Emscripten",
		Impl:     "none",
		Args:     "varargs",
		Benchmarks: []Benchmark{
			{Name: "memops", Source: cppMemops},
			{Name: "crc32", Source: cppCrc32},
			{Name: "nsieve_bits", Source: cppNsieveBits},
			{Name: "fannkuch", Source: cppFannkuch},
			{Name: "quicksort_heap", Source: cppQuicksort},
			{Name: "fixedpoint", Source: cppFixedpoint},
			{Name: "hashloop", Source: cppHashloop},
			{Name: "struct_array", Source: cppStructArray},
		},
	}
}

const cppHeap = `
// Linear memory: HEAP32 stands in for Emscripten's typed-array views.
var HEAP32 = [];
for (var $i = 0; $i < 4096; $i++) { HEAP32.push(0); }
`

const cppMemops = cppHeap + `
function memset32(ptr, val, n) {
  var end = ptr + n;
  while (ptr < end) { HEAP32[ptr] = val; ptr++; }
}
function memcpy32(dst, src, n) {
  var i = 0;
  while (i < n) { HEAP32[dst + i] = HEAP32[src + i]; i++; }
}
memset32(0, 7, 1024);
var sum = 0;
for (var round = 0; round < 12; round++) {
  memcpy32(2048, 0, 1024);
  sum = (sum + HEAP32[2048 + round * 13]) | 0;
}
console.log("memops", sum);
`

const cppCrc32 = cppHeap + `
// CRC-32 table computation and streaming update, all bit ops.
var table = [];
for (var n = 0; n < 256; n++) {
  var c = n;
  for (var k = 0; k < 8; k++) {
    c = (c & 1) ? (0xedb88320 ^ (c >>> 1)) : (c >>> 1);
  }
  table.push(c >>> 0);
}
function crcUpdate(crc, byteVal) {
  return ((crc >>> 8) ^ table[(crc ^ byteVal) & 0xff]) >>> 0;
}
var crc = 0xffffffff;
for (var i = 0; i < 3000; i++) {
  crc = crcUpdate(crc, (i * 31) & 0xff);
}
console.log("crc32", (crc ^ 0xffffffff) >>> 0);
`

const cppNsieveBits = cppHeap + `
function nsieve(m) {
  var words = (m >> 5) + 1;
  for (var w = 0; w < words; w++) { HEAP32[w] = 0; }
  var count = 0;
  for (var i = 2; i < m; i++) {
    if ((HEAP32[i >> 5] & (1 << (i & 31))) === 0) {
      count++;
      for (var j = i + i; j < m; j += i) {
        HEAP32[j >> 5] = HEAP32[j >> 5] | (1 << (j & 31));
      }
    }
  }
  return count;
}
console.log("nsieve_bits", nsieve(8000));
`

const cppFannkuch = cppHeap + `
function fannkuch(n) {
  var perm = [], perm1 = [], count = [];
  for (var i = 0; i < n; i++) { perm.push(0); perm1.push(i); count.push(0); }
  var maxFlips = 0, r = n;
  var checksum = 0, sign = 1, iter = 0;
  while (true) {
    while (r !== 1) { count[r - 1] = r; r--; }
    for (var i = 0; i < n; i++) { perm[i] = perm1[i]; }
    var flips = 0;
    var k = perm[0];
    while (k !== 0) {
      for (var lo = 0, hi = k; lo < hi; lo++, hi--) {
        var t = perm[lo]; perm[lo] = perm[hi]; perm[hi] = t;
      }
      flips++;
      k = perm[0];
    }
    if (flips > maxFlips) { maxFlips = flips; }
    checksum += sign * flips;
    sign = -sign;
    iter++;
    while (true) {
      if (r === n) { console.log("fannkuch", maxFlips, checksum, iter); return; }
      var p0 = perm1[0];
      for (var i = 0; i < r; i++) { perm1[i] = perm1[i + 1]; }
      perm1[r] = p0;
      count[r]--;
      if (count[r] > 0) { break; }
      r++;
    }
  }
}
fannkuch(6);
`

const cppQuicksort = cppHeap + `
// In-place quicksort over the heap with an explicit stack (no recursion,
// as -O2 output often looks).
var N = 700;
var seedQ = 42;
for (var i = 0; i < N; i++) {
  seedQ = (seedQ * 1103515245 + 12345) & 0x7fffffff;
  HEAP32[i] = seedQ % 10000;
}
var stack = [0, N - 1];
while (stack.length > 0) {
  var hi = stack.pop(), lo = stack.pop();
  if (lo >= hi) { continue; }
  var pivot = HEAP32[(lo + hi) >> 1];
  var i = lo, j = hi;
  while (i <= j) {
    while (HEAP32[i] < pivot) { i++; }
    while (HEAP32[j] > pivot) { j--; }
    if (i <= j) {
      var t = HEAP32[i]; HEAP32[i] = HEAP32[j]; HEAP32[j] = t;
      i++; j--;
    }
  }
  stack.push(lo); stack.push(j);
  stack.push(i); stack.push(hi);
}
var ok = true;
for (var i = 1; i < N; i++) { if (HEAP32[i - 1] > HEAP32[i]) { ok = false; } }
console.log("quicksort_heap", ok, HEAP32[0], HEAP32[N - 1]);
`

const cppFixedpoint = cppHeap + `
// 16.16 fixed-point arithmetic loop.
function fxmul(a, b) { return ((a >> 8) * (b >> 8)) | 0; }
var x = 1 << 16;
var acc = 0;
for (var i = 0; i < 4000; i++) {
  x = fxmul(x, (1 << 16) + 37) + 11;
  x = x & 0x7fffffff;
  acc = (acc + (x >> 12)) | 0;
}
console.log("fixedpoint", acc);
`

const cppHashloop = cppHeap + `
// FNV-1a over synthetic buffers, open-addressed table insert.
function fnv(start, n) {
  var h = 0x811c9dc5 | 0;
  for (var i = 0; i < n; i++) {
    h = (h ^ (HEAP32[start + i] & 0xff)) | 0;
    h = (h * 16777619) | 0;
  }
  return h >>> 0;
}
for (var i = 0; i < 512; i++) { HEAP32[i] = (i * 2654435761) | 0; }
var tableBase = 1024, tableSize = 256;
for (var i = 0; i < tableSize; i++) { HEAP32[tableBase + i] = -1; }
var collisions = 0;
for (var k = 0; k < 200; k++) {
  var h = fnv(k % 400, 16) % tableSize;
  while (HEAP32[tableBase + h] !== -1) { h = (h + 1) % tableSize; collisions++; }
  HEAP32[tableBase + h] = k;
}
console.log("hashloop", collisions);
`

const cppStructArray = cppHeap + `
// Array-of-structs layout: stride-4 records {x, y, dx, dy} updated in bulk.
var COUNT = 200;
for (var i = 0; i < COUNT; i++) {
  HEAP32[i * 4] = i;           // x
  HEAP32[i * 4 + 1] = -i;      // y
  HEAP32[i * 4 + 2] = (i % 7) - 3;  // dx
  HEAP32[i * 4 + 3] = (i % 5) - 2;  // dy
}
for (var step = 0; step < 40; step++) {
  for (var i = 0; i < COUNT; i++) {
    var base = i * 4;
    HEAP32[base] = HEAP32[base] + HEAP32[base + 2];
    HEAP32[base + 1] = HEAP32[base + 1] + HEAP32[base + 3];
    if (HEAP32[base] > 1000 || HEAP32[base] < -1000) { HEAP32[base + 2] = -HEAP32[base + 2]; }
  }
}
var cx = 0, cy = 0;
for (var i = 0; i < COUNT; i++) { cx += HEAP32[i * 4]; cy += HEAP32[i * 4 + 1]; }
console.log("struct_array", cx, cy);
`
