package langs

// Scheme returns the scheme2js profile: everything is a closure or a cons
// cell, recursion replaces loops, and variadic procedures ride on the
// arguments object (the V entry in Figure 5). The benchmarks follow the
// Larceny suite the paper cites.
func Scheme() *Profile {
	return &Profile{
		Name:     "scheme",
		Compiler: "scheme2js",
		Impl:     "none",
		Args:     "varargs",
		Benchmarks: []Benchmark{
			{Name: "ctak_style", Source: schemeCtak},
			{Name: "deriv", Source: schemeDeriv},
			{Name: "destruct", Source: schemeDestruct},
			{Name: "divrec", Source: schemeDivrec},
			{Name: "sumloop", Source: schemeSumloop},
			{Name: "mergesort", Source: schemeMergesort},
			{Name: "primes", Source: schemePrimes},
			{Name: "church", Source: schemeChurch},
			{Name: "apply_list", Source: schemeApplyList},
		},
	}
}

const schemeRuntime = `
function cons(a, d) { return { car: a, cdr: d }; }
function car(p) { return p.car; }
function cdr(p) { return p.cdr; }
function isPair(p) { return p !== null && typeof p === "object" && p.car !== undefined; }
function list() {
  var out = null;
  for (var i = arguments.length - 1; i >= 0; i--) { out = cons(arguments[i], out); }
  return out;
}
function length(xs) { var n = 0; while (xs !== null) { n++; xs = xs.cdr; } return n; }
function reverseList(xs) {
  var out = null;
  while (xs !== null) { out = cons(xs.car, out); xs = xs.cdr; }
  return out;
}
`

const schemeCtak = schemeRuntime + `
// tak written continuation-style: every step passes an explicit k closure,
// the way scheme2js output looks for call/cc-using code.
function tak(x, y, z, k) {
  if (y >= x) { return k(z); }
  return tak(x - 1, y, z, function (a) {
    return tak(y - 1, z, x, function (b) {
      return tak(z - 1, x, y, function (c) {
        return tak(a, b, c, k);
      });
    });
  });
}
console.log("ctak_style", tak(6, 3, 0, function (v) { return v; }));
`

const schemeDeriv = schemeRuntime + `
// deriv: symbolic differentiation over s-expressions.
function sym(s) { return { sym: s }; }
function isSym(x) { return x !== null && typeof x === "object" && x.sym !== undefined; }
function deriv(e) {
  if (typeof e === "number") { return 0; }
  if (isSym(e)) { return e.sym === "x" ? 1 : 0; }
  var op = car(e).sym;
  var a = car(cdr(e)), b = car(cdr(cdr(e)));
  if (op === "+") { return list(sym("+"), deriv(a), deriv(b)); }
  if (op === "*") {
    return list(sym("+"),
      list(sym("*"), a, deriv(b)),
      list(sym("*"), deriv(a), b));
  }
  return 0;
}
function size(e) {
  if (!isPair(e)) { return 1; }
  var n = 0;
  while (e !== null) { n += size(e.car); e = e.cdr; }
  return n;
}
var expr = list(sym("+"), list(sym("*"), sym("x"), sym("x")), list(sym("*"), 3, sym("x")));
var total = 0;
for (var i = 0; i < 60; i++) {
  expr2 = deriv(expr);
  total += size(expr2);
}
console.log("deriv", total);
`

const schemeDestruct = schemeRuntime + `
// destruct: destructive list operations.
function append$(a, b) {
  if (a === null) { return b; }
  var p = a;
  while (p.cdr !== null) { p = p.cdr; }
  p.cdr = b;
  return a;
}
var acc = 0;
for (var round = 0; round < 40; round++) {
  var a = null, b = null;
  for (var i = 0; i < 20; i++) { a = cons(i, a); b = cons(i * 2, b); }
  acc += length(append$(reverseList(a), b));
}
console.log("destruct", acc);
`

const schemeDivrec = schemeRuntime + `
// div-rec: deep non-tail recursion building lists.
function createN(n) {
  var a = null;
  while (n > 0) { a = cons(n, a); n--; }
  return a;
}
function recursiveDiv2(l) {
  if (l === null) { return null; }
  return cons(car(l), recursiveDiv2(cdr(cdr(l))));
}
var l200 = createN(200);
var total = 0;
for (var i = 0; i < 60; i++) { total += length(recursiveDiv2(l200)); }
console.log("divrec", total);
`

const schemeSumloop = schemeRuntime + `
// sumloop via named-let style tail recursion.
function loop(i, n, acc) {
  if (i >= n) { return acc; }
  return loop(i + 1, n, acc + i);
}
var t = 0;
for (var r = 0; r < 12; r++) { t = (t + loop(0, 700, 0)) % 1000003; }
console.log("sumloop", t);
`

const schemeMergesort = schemeRuntime + `
function split(xs) {
  if (xs === null || xs.cdr === null) { return cons(xs, null); }
  var slow = xs, fast = xs.cdr;
  while (fast !== null && fast.cdr !== null) { slow = slow.cdr; fast = fast.cdr.cdr; }
  var back = slow.cdr;
  slow.cdr = null;
  return cons(xs, back);
}
function merge(a, b) {
  if (a === null) { return b; }
  if (b === null) { return a; }
  if (car(a) <= car(b)) { return cons(car(a), merge(cdr(a), b)); }
  return cons(car(b), merge(a, cdr(b)));
}
function msort(xs) {
  if (xs === null || xs.cdr === null) { return xs; }
  var halves = split(xs);
  return merge(msort(car(halves)), msort(cdr(halves)));
}
var xs = null;
for (var i = 0; i < 120; i++) { xs = cons((i * 7919) % 997, xs); }
var sorted = msort(xs);
var prev = -1, ok = true, n = 0;
while (sorted !== null) {
  if (car(sorted) < prev) { ok = false; }
  prev = car(sorted);
  n++;
  sorted = cdr(sorted);
}
console.log("mergesort", ok, n);
`

const schemePrimes = schemeRuntime + `
function sieve(candidates) {
  if (candidates === null) { return null; }
  var p = car(candidates);
  var rest = null, cur = cdr(candidates);
  while (cur !== null) {
    if (car(cur) % p !== 0) { rest = cons(car(cur), rest); }
    cur = cdr(cur);
  }
  return cons(p, sieve(reverseList(rest)));
}
function iota(from, to) {
  if (from > to) { return null; }
  return cons(from, iota(from + 1, to));
}
console.log("primes", length(sieve(iota(2, 400))));
`

const schemeChurch = schemeRuntime + `
// Church numerals: closure-heavy arithmetic.
function zero(f) { return function (x) { return x; }; }
function succ(n) {
  return function (f) { return function (x) { return f(n(f)(x)); }; };
}
function plus(a, b) {
  return function (f) { return function (x) { return a(f)(b(f)(x)); }; };
}
function toInt(n) { return n(function (x) { return x + 1; })(0); }
var three = succ(succ(succ(zero)));
var n = zero;
for (var i = 0; i < 14; i++) { n = plus(n, three); }
console.log("church", toInt(n));
`

const schemeApplyList = schemeRuntime + `
// variadic procedures applied through the arguments object.
function sumAll() {
  var t = 0;
  for (var i = 0; i < arguments.length; i++) { t += arguments[i]; }
  return t;
}
function applyTo(f, xs) {
  var args = [];
  while (xs !== null) { args.push(car(xs)); xs = cdr(xs); }
  return f.apply(null, args);
}
var total = 0;
for (var i = 0; i < 150; i++) {
  total += applyTo(sumAll, list(i, i + 1, i + 2, i * 2));
}
console.log("apply_list", total);
`
