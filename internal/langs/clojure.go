package langs

// Clojure returns the ClojureScript profile: persistent data structures
// emulated by copy-on-write arrays and maps, multi-arity functions
// dispatched on arguments.length (the M entry of Figure 5), and + used for
// str (the + entry of the Impl column).
func Clojure() *Profile {
	return &Profile{
		Name:     "clojure",
		Compiler: "ClojureScript",
		Impl:     "plus",
		Args:     "mixed",
		Benchmarks: []Benchmark{
			{Name: "reduce_vec", Source: cljReduceVec},
			{Name: "assoc_map", Source: cljAssocMap},
			{Name: "multi_arity", Source: cljMultiArity},
			{Name: "str_build", Source: cljStrBuild},
			{Name: "lazy_seq", Source: cljLazySeq},
			{Name: "frequencies", Source: cljFrequencies},
			{Name: "loop_recur", Source: cljLoopRecur},
			{Name: "comp_chain", Source: cljCompChain},
		},
	}
}

const cljRuntime = `
function conj(vec, x) {
  var out = vec.slice(0);
  out.push(x);
  return out;
}
function assoc(m, k, v) {
  var out = {};
  for (var key in m) { out[key] = m[key]; }
  out[k] = v;
  return out;
}
function get(m, k, dflt) {
  if (arguments.length < 3) { dflt = null; }
  var v = m[k];
  return v === undefined ? dflt : v;
}
function reduce(f, init, coll) {
  var acc = init;
  for (var i = 0; i < coll.length; i++) { acc = f(acc, coll[i]); }
  return acc;
}
function mapv(f, coll) {
  var out = [];
  for (var i = 0; i < coll.length; i++) { out.push(f(coll[i])); }
  return out;
}
function str() {
  var out = "";
  for (var i = 0; i < arguments.length; i++) { out = out + arguments[i]; }
  return out;
}
`

const cljReduceVec = cljRuntime + `
var v = [];
for (var i = 0; i < 250; i++) { v = conj(v, i % 17); }
var total = reduce(function (a, b) { return a + b * b; }, 0, v);
console.log("reduce_vec", total);
`

const cljAssocMap = cljRuntime + `
var m = {};
for (var i = 0; i < 120; i++) { m = assoc(m, "k" + (i % 30), i); }
var sum = 0;
for (var i = 0; i < 30; i++) { sum += get(m, "k" + i, 0); }
console.log("assoc_map", sum);
`

const cljMultiArity = cljRuntime + `
// (defn add ([a] a) ([a b] ...) ([a b & more] ...)) compiles to an
// arguments.length dispatch.
function add(a, b) {
  if (arguments.length === 1) { return a; }
  if (arguments.length === 2) { return a + b; }
  var t = a + b;
  for (var i = 2; i < arguments.length; i++) { t += arguments[i]; }
  return t;
}
var total = 0;
for (var i = 0; i < 300; i++) {
  total += add(i) + add(i, 1) + add(i, 1, 2, 3);
}
console.log("multi_arity", total);
`

const cljStrBuild = cljRuntime + `
function Keyword(name) { this.name = name; }
Keyword.prototype.toString = function () { return ":" + this.name; };
var out = "";
for (var i = 0; i < 50; i++) {
  out = str(out, new Keyword("k" + (i % 5)), " ");
}
console.log("str_build", out.length);
`

const cljLazySeq = cljRuntime + `
function lazySeq(thunk) { return { realized: false, thunk: thunk, val: null }; }
function force(s) {
  if (!s.realized) { s.val = s.thunk(); s.realized = true; }
  return s.val;
}
function integers(n) {
  return lazySeq(function () { return { first: n, rest: integers(n + 1) }; });
}
function takeWhileSum(s, limit) {
  var acc = 0;
  var cell = force(s);
  while (cell.first < limit) {
    acc += cell.first;
    cell = force(cell.rest);
  }
  return acc;
}
console.log("lazy_seq", takeWhileSum(integers(0), 250));
`

const cljFrequencies = cljRuntime + `
var words = [];
var seed = 11;
for (var i = 0; i < 220; i++) {
  seed = (seed * 48271) % 2147483647;
  words.push("w" + (seed % 12));
}
var freqs = reduce(function (m, w) {
  return assoc(m, w, get(m, w, 0) + 1);
}, {}, words);
var top = 0;
for (var k in freqs) { if (freqs[k] > top) { top = freqs[k]; } }
console.log("frequencies", top);
`

const cljLoopRecur = cljRuntime + `
// loop/recur compiles to a while(true) with rebinding.
function gcd(a, b) {
  while (true) {
    if (b === 0) { return a; }
    var t = b;
    b = a % b;
    a = t;
  }
}
var acc = 0;
for (var i = 1; i < 400; i++) { acc += gcd(i * 13, i + 99); }
console.log("loop_recur", acc);
`

const cljCompChain = cljRuntime + `
function comp(f, g) { return function (x) { return f(g(x)); }; }
var inc = function (x) { return x + 1; };
var dbl = function (x) { return x * 2; };
var pipeline = inc;
for (var i = 0; i < 8; i++) { pipeline = comp(pipeline, i % 2 === 0 ? dbl : inc); }
var total = 0;
for (var i = 0; i < 200; i++) { total = (total + pipeline(i)) % 100003; }
console.log("comp_chain", total);
`
