package langs

// Pyret returns the Pyret profile (§6.4): a mostly-functional language that
// leans on higher-order library functions (each-loops, folds) implemented
// in JavaScript, deep recursion, and eval for trivially terminating value
// constructors. The suite includes the deeply recursive programs that made
// Figure 14's deep-stack benchmarks slow.
func Pyret() *Profile {
	return &Profile{
		Name:     "pyret",
		Compiler: "Pyret",
		Impl:     "none",
		Args:     "none",
		Eval:     true,
		Benchmarks: []Benchmark{
			{Name: "each_loop", Source: pyretEachLoop},
			{Name: "fold_map", Source: pyretFoldMap},
			{Name: "data_cases", Source: pyretDataCases},
			{Name: "deep_sum", Source: pyretDeepSum},
			{Name: "table_filter", Source: pyretTableFilter},
			{Name: "string_explode", Source: pyretStringExplode},
			{Name: "binomial", Source: pyretBinomial},
			{Name: "range_fold", Source: pyretRangeFold},
		},
	}
}

// pyretRuntime is the (post-Stopify) slice of Pyret's runtime: the clean
// eachLoop of Figure 16b, plus fold/map over cons lists — higher-order
// library functions implemented in JavaScript, with no hand-rolled stack
// bookkeeping.
const pyretRuntime = `
var thisRuntime = { nothing: null };
function eachLoop(fun, start, stop) {
  for (var i = start; i < stop; i++) { fun(i); }
  return thisRuntime.nothing;
}
function pyLink(first, rest) { return { first: first, rest: rest, isEmpty: false }; }
var pyEmpty = { isEmpty: true };
function pyFold(f, base, lst) {
  if (lst.isEmpty) { return base; }
  return pyFold(f, f(base, lst.first), lst.rest);
}
function pyMap(f, lst) {
  if (lst.isEmpty) { return pyEmpty; }
  return pyLink(f(lst.first), pyMap(f, lst.rest));
}
function pyRange(a, b) {
  if (a >= b) { return pyEmpty; }
  return pyLink(a, pyRange(a + 1, b));
}
function pyLength(lst) {
  var n = 0;
  while (!lst.isEmpty) { n++; lst = lst.rest; }
  return n;
}
`

const pyretEachLoop = pyretRuntime + `
var total = 0;
eachLoop(function (i) { total = total + i * i; }, 0, 600);
console.log("each_loop", total);
`

const pyretFoldMap = pyretRuntime + `
var xs = pyRange(0, 150);
var doubled = pyMap(function (x) { return x * 2; }, xs);
var sum = pyFold(function (a, b) { return a + b; }, 0, doubled);
console.log("fold_map", sum, pyLength(doubled));
`

const pyretDataCases = pyretRuntime + `
// data Shape: circle(r) | square(s) | rect(w, h) end — cases dispatch.
function circle(r) { return { $name: "circle", r: r }; }
function square(s) { return { $name: "square", s: s }; }
function rect(w, h) { return { $name: "rect", w: w, h: h }; }
function area(shape) {
  var name = shape.$name;
  if (name === "circle") { return 3.14159 * shape.r * shape.r; }
  if (name === "square") { return shape.s * shape.s; }
  return shape.w * shape.h;
}
var shapes = pyEmpty;
for (var i = 0; i < 180; i++) {
  var s = i % 3 === 0 ? circle(i % 5) : (i % 3 === 1 ? square(i % 7) : rect(i % 4, i % 6));
  shapes = pyLink(s, shapes);
}
var total = pyFold(function (acc, s) { return acc + area(s); }, 0, shapes);
console.log("data_cases", total | 0);
`

const pyretDeepSum = pyretRuntime + `
// The deeply recursive shape that needs deep stacks in Figure 14. Depth 500
// fits every engine profile raw; examples/deepstack shows what happens when
// it does not.
function deepSum(lst) {
  if (lst.isEmpty) { return 0; }
  return lst.first + deepSum(lst.rest);
}
console.log("deep_sum", deepSum(pyRange(0, 500)));
`

const pyretTableFilter = pyretRuntime + `
function row(id, score) { return { id: id, score: score }; }
var tbl = pyEmpty;
for (var i = 0; i < 150; i++) { tbl = pyLink(row(i, (i * 17) % 100), tbl); }
function pyFilter(pred, lst) {
  if (lst.isEmpty) { return pyEmpty; }
  if (pred(lst.first)) { return pyLink(lst.first, pyFilter(pred, lst.rest)); }
  return pyFilter(pred, lst.rest);
}
var keep = pyFilter(function (r) { return r.score >= 50; }, tbl);
var tot = pyFold(function (a, r) { return a + r.score; }, 0, keep);
console.log("table_filter", pyLength(keep), tot);
`

const pyretStringExplode = pyretRuntime + `
function explode(s) {
  var out = pyEmpty;
  for (var i = s.length - 1; i >= 0; i--) { out = pyLink(s.charAt(i), out); }
  return out;
}
var text = "the quick brown fox jumps over the lazy dog ";
var counts = {};
for (var rep = 0; rep < 12; rep++) {
  var chars = explode(text);
  pyFold(function (acc, ch) {
    counts[ch] = (counts[ch] === undefined ? 0 : counts[ch]) + 1;
    return acc;
  }, 0, chars);
}
var distinct = 0;
for (var k in counts) { distinct++; }
console.log("string_explode", distinct, counts["o"]);
`

const pyretBinomial = pyretRuntime + `
function binom(n, k) {
  if (k === 0 || k === n) { return 1; }
  return binom(n - 1, k - 1) + binom(n - 1, k);
}
console.log("binomial", binom(15, 7));
`

const pyretRangeFold = pyretRuntime + `
// eval used as Pyret does: generating trivial value constructors.
eval("mkPoint = function (x, y) { return { x: x, y: y }; };");
var total = pyFold(function (acc, i) {
  var p = mkPoint(i, i * 2);
  return acc + p.x + p.y;
}, 0, pyRange(0, 200));
console.log("range_fold", total);
`
