package native

import "testing"

// Expected checksums pin the native kernels to their JavaScript
// counterparts in internal/langs: Figure 15 only makes sense if both sides
// compute the same thing.
func TestKernelChecksums(t *testing.T) {
	want := map[string]float64{
		"fib":          987,
		"tak":          1,
		"nsieve":       1007,
		"binary_trees": 1524,
	}
	for _, k := range Kernels() {
		got := k.Run()
		if expect, ok := want[k.Name]; ok && got != expect {
			t.Errorf("%s = %v, want %v", k.Name, got, expect)
		}
		if got != k.Run() {
			t.Errorf("%s is not deterministic", k.Name)
		}
	}
}

func TestKernelCoverage(t *testing.T) {
	if len(Kernels()) < 8 {
		t.Errorf("expected at least 8 native kernels, got %d", len(Kernels()))
	}
	seen := map[string]bool{}
	for _, k := range Kernels() {
		if seen[k.Name] {
			t.Errorf("duplicate kernel %q", k.Name)
		}
		seen[k.Name] = true
	}
}
