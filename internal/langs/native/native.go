// Package native provides plain Go implementations of the benchmark
// kernels, standing in for the paper's native binaries in the Figure 15
// experiment: the slowdown of running in the browser (our interpreter)
// versus running natively, without Stopify. Each kernel returns a checksum
// so the compiler cannot elide the work.
package native

import "math"

// Kernel is one natively implemented benchmark.
type Kernel struct {
	Name string
	Run  func() float64
}

// Kernels returns the native counterparts of representative suite members.
func Kernels() []Kernel {
	return []Kernel{
		{Name: "fib", Run: func() float64 { return float64(fib(16)) }},
		{Name: "tak", Run: func() float64 { return float64(tak(12, 6, 0)) }},
		{Name: "nsieve", Run: func() float64 { return float64(nsieve(8000)) }},
		{Name: "nbody", Run: func() float64 { return nbody(120) }},
		{Name: "spectral_norm", Run: func() float64 { return spectralNorm(24) }},
		{Name: "binary_trees", Run: func() float64 { return float64(binaryTrees(12, 6)) }},
		{Name: "fft", Run: func() float64 { return fftChecksum(256, 4) }},
		{Name: "crc32", Run: func() float64 { return float64(crc32sum(3000)) }},
	}
}

func fib(n int) int {
	if n < 2 {
		return n
	}
	return fib(n-1) + fib(n-2)
}

func tak(x, y, z int) int {
	if y >= x {
		return z
	}
	return tak(tak(x-1, y, z), tak(y-1, z, x), tak(z-1, x, y))
}

func nsieve(m int) int {
	composite := make([]bool, m)
	count := 0
	for i := 2; i < m; i++ {
		if !composite[i] {
			count++
			for j := i + i; j < m; j += i {
				composite[j] = true
			}
		}
	}
	return count
}

type planet struct{ x, y, z, vx, vy, vz, mass float64 }

func nbody(steps int) float64 {
	solarMass := 4 * math.Pi * math.Pi
	bodies := []planet{
		{0, 0, 0, 0, 0, 0, solarMass},
		{4.84, -1.16, -0.103, 0.606, 0.288, -0.0125, 9.54e-4 * solarMass},
		{8.34, 4.12, -0.403, -0.276, 0.499, 0.0023, 2.85e-4 * solarMass},
		{12.89, -15.11, -0.223, 0.296, 0.0237, -0.0029, 4.36e-5 * solarMass},
		{15.37, -25.91, 0.179, 0.268, 0.1662, -0.0095, 5.15e-5 * solarMass},
	}
	dt := 0.01
	for s := 0; s < steps; s++ {
		for i := range bodies {
			bi := &bodies[i]
			for j := i + 1; j < len(bodies); j++ {
				bj := &bodies[j]
				dx, dy, dz := bi.x-bj.x, bi.y-bj.y, bi.z-bj.z
				d2 := dx*dx + dy*dy + dz*dz
				mag := dt / (d2 * math.Sqrt(d2))
				bi.vx -= dx * bj.mass * mag
				bi.vy -= dy * bj.mass * mag
				bi.vz -= dz * bj.mass * mag
				bj.vx += dx * bi.mass * mag
				bj.vy += dy * bi.mass * mag
				bj.vz += dz * bi.mass * mag
			}
		}
		for i := range bodies {
			b := &bodies[i]
			b.x += dt * b.vx
			b.y += dt * b.vy
			b.z += dt * b.vz
		}
	}
	e := 0.0
	for i := range bodies {
		bi := bodies[i]
		e += 0.5 * bi.mass * (bi.vx*bi.vx + bi.vy*bi.vy + bi.vz*bi.vz)
		for j := i + 1; j < len(bodies); j++ {
			bj := bodies[j]
			dx, dy, dz := bi.x-bj.x, bi.y-bj.y, bi.z-bj.z
			e -= bi.mass * bj.mass / math.Sqrt(dx*dx+dy*dy+dz*dz)
		}
	}
	return math.Trunc(e * 1e6)
}

func spectralNorm(n int) float64 {
	a := func(i, j int) float64 { return 1 / float64((i+j)*(i+j+1)/2+i+1) }
	av := func(v []float64) []float64 {
		out := make([]float64, len(v))
		for i := range v {
			s := 0.0
			for j := range v {
				s += a(i, j) * v[j]
			}
			out[i] = s
		}
		return out
	}
	atv := func(v []float64) []float64 {
		out := make([]float64, len(v))
		for i := range v {
			s := 0.0
			for j := range v {
				s += a(j, i) * v[j]
			}
			out[i] = s
		}
		return out
	}
	u := make([]float64, n)
	for i := range u {
		u[i] = 1
	}
	var v []float64
	for it := 0; it < 6; it++ {
		v = atv(av(u))
		u = atv(av(v))
	}
	vBv, vv := 0.0, 0.0
	for i := range u {
		vBv += u[i] * v[i]
		vv += v[i] * v[i]
	}
	return math.Trunc(math.Sqrt(vBv/vv) * 1e9)
}

type tree struct{ left, right *tree }

func makeTree(depth int) *tree {
	if depth == 0 {
		return &tree{}
	}
	return &tree{left: makeTree(depth - 1), right: makeTree(depth - 1)}
}

func checkTree(t *tree) int {
	if t.left == nil {
		return 1
	}
	return 1 + checkTree(t.left) + checkTree(t.right)
}

func binaryTrees(iters, depth int) int {
	total := 0
	for i := 0; i < iters; i++ {
		total += checkTree(makeTree(depth))
	}
	return total
}

func fftChecksum(n, rounds int) float64 {
	re := make([]float64, n)
	im := make([]float64, n)
	for i := range re {
		re[i] = math.Sin(float64(i))
	}
	for r := 0; r < rounds; r++ {
		fft(re, im)
	}
	acc := 0.0
	for i := range re {
		acc += re[i]*re[i] + im[i]*im[i]
	}
	return math.Trunc(acc)
}

func fft(re, im []float64) {
	n := len(re)
	j := 0
	for i := 0; i < n-1; i++ {
		if i < j {
			re[i], re[j] = re[j], re[i]
			im[i], im[j] = im[j], im[i]
		}
		m := n >> 1
		for m >= 1 && j >= m {
			j -= m
			m >>= 1
		}
		j += m
	}
	for size := 2; size <= n; size <<= 1 {
		half := size >> 1
		step := math.Pi / float64(half)
		for base := 0; base < n; base += size {
			for k := 0; k < half; k++ {
				ang := step * float64(k)
				wr, wi := math.Cos(ang), -math.Sin(ang)
				idx, jdx := base+k, base+k+half
				xr := wr*re[jdx] - wi*im[jdx]
				xi := wr*im[jdx] + wi*re[jdx]
				re[jdx], im[jdx] = re[idx]-xr, im[idx]-xi
				re[idx] += xr
				im[idx] += xi
			}
		}
	}
}

func crc32sum(n int) uint32 {
	var table [256]uint32
	for i := range table {
		c := uint32(i)
		for k := 0; k < 8; k++ {
			if c&1 != 0 {
				c = 0xedb88320 ^ (c >> 1)
			} else {
				c >>= 1
			}
		}
		table[i] = c
	}
	crc := uint32(0xffffffff)
	for i := 0; i < n; i++ {
		crc = (crc >> 8) ^ table[(crc^uint32(i*31))&0xff]
	}
	return crc ^ 0xffffffff
}
