package langs

// OCaml returns the BuckleScript profile: curried functions compiled to
// nested closures, variants and tuples represented as small arrays, and
// nothing fancy — no implicits, no arguments tricks, no getters, no eval
// (the all-✗ row of Figure 5). Benchmarks follow the OPerf-micro style the
// paper cites.
func OCaml() *Profile {
	return &Profile{
		Name:     "ocaml",
		Compiler: "BuckleScript",
		Impl:     "none",
		Args:     "none",
		Benchmarks: []Benchmark{
			{Name: "curried", Source: mlCurried},
			{Name: "variants", Source: mlVariants},
			{Name: "fold_list", Source: mlFoldList},
			{Name: "kb_rewrite", Source: mlKBRewrite},
			{Name: "sieve_rec", Source: mlSieveRec},
			{Name: "hamming", Source: mlHamming},
			{Name: "tuples", Source: mlTuples},
			{Name: "option_chain", Source: mlOptionChain},
			{Name: "bdd_mini", Source: mlBddMini},
		},
	}
}

const mlCurried = `
// let add a b c = a + b + c  — curried application allocates closures.
function add(a) {
  return function (b) {
    return function (c) { return a + b + c; };
  };
}
var total = 0;
for (var i = 0; i < 400; i++) {
  total = (total + add(i)(i * 2)(3)) % 1000003;
}
console.log("curried", total);
`

const mlVariants = `
// type shape = Circle of float | Rect of float * float | Point
// variants compile to tagged arrays: [tag, payload...].
function area(s) {
  switch (s[0]) {
    case 0: return 3.14159 * s[1] * s[1];
    case 1: return s[1] * s[2];
    default: return 0;
  }
}
var shapes = [];
for (var i = 0; i < 240; i++) {
  if (i % 3 === 0) { shapes.push([0, i % 7]); }
  else if (i % 3 === 1) { shapes.push([1, i % 5, i % 4]); }
  else { shapes.push([2]); }
}
var total = 0;
for (var i = 0; i < shapes.length; i++) { total += area(shapes[i]); }
console.log("variants", (total * 100 | 0));
`

const mlFoldList = `
// Lists are [head, tail] pairs; 0 is the empty list.
function cons(h, t) { return [h, t]; }
function fold_left(f, acc, xs) {
  while (xs !== 0) { acc = f(acc)(xs[0]); xs = xs[1]; }
  return acc;
}
function init(n, f) {
  var out = 0;
  for (var i = n - 1; i >= 0; i--) { out = cons(f(i), out); }
  return out;
}
var xs = init(300, function (i) { return i * i % 13; });
var sum = fold_left(function (a) { return function (b) { return a + b; }; }, 0, xs);
console.log("fold_list", sum);
`

const mlKBRewrite = `
// Knuth-Bendix flavoured term rewriting: terms as tagged arrays.
function mk(op, l, r) { return [op, l, r]; }
function leaf(v) { return [2, v, null]; }
function rewrite(t) {
  if (t[0] === 2) { return t; }
  var l = rewrite(t[1]);
  var r = rewrite(t[2]);
  // (x + 0) -> x ; (x * 1) -> x ; (x * 0) -> 0
  if (t[0] === 0 && r[0] === 2 && r[1] === 0) { return l; }
  if (t[0] === 1 && r[0] === 2 && r[1] === 1) { return l; }
  if (t[0] === 1 && r[0] === 2 && r[1] === 0) { return leaf(0); }
  return mk(t[0], l, r);
}
function size(t) {
  if (t[0] === 2) { return 1; }
  return 1 + size(t[1]) + size(t[2]);
}
function build(d, k) {
  if (d === 0) { return leaf(k % 3); }
  return mk(k % 2, build(d - 1, k + 1), build(d - 1, k + 2));
}
var total = 0;
for (var i = 0; i < 20; i++) { total += size(rewrite(build(7, i))); }
console.log("kb_rewrite", total);
`

const mlSieveRec = `
// Functional sieve with recursion over int lists.
function cons(h, t) { return [h, t]; }
function filterNot(p, xs) {
  if (xs === 0) { return 0; }
  if (p(xs[0])) { return filterNot(p, xs[1]); }
  return cons(xs[0], filterNot(p, xs[1]));
}
function upto(a, b) {
  if (a > b) { return 0; }
  return cons(a, upto(a + 1, b));
}
function sieve(xs) {
  if (xs === 0) { return 0; }
  var p = xs[0];
  return cons(p, sieve(filterNot(function (n) { return n % p === 0; }, xs[1])));
}
function length(xs) { var n = 0; while (xs !== 0) { n++; xs = xs[1]; } return n; }
console.log("sieve_rec", length(sieve(upto(2, 350))));
`

const mlHamming = `
// Hamming numbers by three-way merge of multiplied streams.
var found = [1];
var i2 = 0, i5 = 0, i3 = 0;
while (found.length < 120) {
  var n2 = found[i2] * 2, n3 = found[i3] * 3, n5 = found[i5] * 5;
  var next = n2 < n3 ? (n2 < n5 ? n2 : n5) : (n3 < n5 ? n3 : n5);
  if (next === n2) { i2++; }
  if (next === n3) { i3++; }
  if (next === n5) { i5++; }
  found.push(next);
}
console.log("hamming", found[119]);
`

const mlTuples = `
// Pairs compile to two-element arrays; fst/snd are helpers.
function fst(p) { return p[0]; }
function snd(p) { return p[1]; }
function divmod(a, b) { return [(a / b) | 0, a % b]; }
var acc = 0;
for (var i = 1; i < 500; i++) {
  var dm = divmod(i * 37, 11);
  acc = (acc + fst(dm) * 3 + snd(dm)) % 1000003;
}
console.log("tuples", acc);
`

const mlOptionChain = `
// Option monad pipelines: None = 0, Some x = [x].
function some(v) { return [v]; }
function bind(o, f) { return o === 0 ? 0 : f(o[0]); }
function safeDiv(a, b) { return b === 0 ? 0 : some((a / b) | 0); }
var hits = 0, total = 0;
for (var i = 0; i < 300; i++) {
  var r = bind(safeDiv(1000, i % 7), function (x) {
    return bind(safeDiv(x, (i % 3)), function (y) {
      return some(x + y);
    });
  });
  if (r !== 0) { hits++; total += r[0]; }
}
console.log("option_chain", hits, total);
`

const mlBddMini = `
// Tiny BDD construction with structural hashing.
var nodes = {};
var nextId = 2;
function mkNode(level, lo, hi) {
  if (lo === hi) { return lo; }
  var key = level + "," + lo + "," + hi;
  var hit = nodes[key];
  if (hit !== undefined) { return hit; }
  var id = nextId++;
  nodes[key] = id;
  return id;
}
function buildParity(level, bits, acc) {
  if (level === bits) { return acc ? 1 : 0; }
  return mkNode(level, buildParity(level + 1, bits, acc), buildParity(level + 1, bits, !acc));
}
var root = buildParity(0, 10, false);
console.log("bdd_mini", root, nextId);
`
