package langs

// JavaScript returns the profile for JavaScript itself — the only source
// language that needs every feature (the all-✓ row of Figure 5): implicit
// valueOf/toString in arithmetic, getters and setters on hot paths, full
// arguments-object behaviour, and eval.
func JavaScript() *Profile {
	return &Profile{
		Name:     "javascript",
		Compiler: "JavaScript",
		Impl:     "full",
		Args:     "full",
		Getters:  true,
		Eval:     true,
		Benchmarks: []Benchmark{
			{Name: "valueof_arith", Source: jsValueofArith},
			{Name: "getter_grid", Source: jsGetterGrid},
			{Name: "proto_chain", Source: jsProtoChain},
			{Name: "arguments_tricks", Source: jsArgumentsTricks},
			{Name: "dynamic_props", Source: jsDynamicProps},
			{Name: "closures", Source: jsClosures},
			{Name: "splice_heavy", Source: jsSpliceHeavy},
			{Name: "regex_free_parse", Source: jsParse},
			{Name: "eval_dispatch", Source: jsEvalDispatch},
			{Name: "crypto_mini", Source: jsCryptoMini},
		},
	}
}

const jsValueofArith = `
// Arithmetic over objects with valueOf: every + and * is an implicit call.
function Unit(v) { this.v = v; }
Unit.prototype.valueOf = function () { return this.v; };
var total = 0;
for (var i = 0; i < 120; i++) {
  var a = new Unit(i), b = new Unit(i % 7);
  total += a * 2 + b - (a < b ? 1 : 0);
}
console.log("valueof_arith", total);
`

const jsGetterGrid = `
var cellCount = 0;
function makeCell(v) {
  return {
    _v: v,
    get value() { cellCount++; return this._v; },
    set value(x) { this._v = x % 256; }
  };
}
var grid = [];
for (var i = 0; i < 48; i++) { grid.push(makeCell(i)); }
for (var round = 0; round < 12; round++) {
  for (var i = 1; i < grid.length; i++) {
    grid[i].value = grid[i - 1].value + grid[i].value;
  }
}
console.log("getter_grid", grid[47].value, cellCount);
`

const jsProtoChain = `
var base = { level: 0, describe: function () { return "L" + this.level; } };
var chain = base;
for (var i = 1; i <= 8; i++) {
  var next = Object.create(chain);
  next.level = i;
  chain = next;
}
var hits = 0;
for (var i = 0; i < 400; i++) {
  if (chain.describe().length === 2) { hits++; }
}
console.log("proto_chain", hits, chain.level);
`

const jsArgumentsTricks = `
// Full arguments behaviour: writes through the arguments object and length
// mismatches. (Reads go through arguments[0] after the write so the
// checksum is identical whether or not the engine aliases formals — our
// raw interpreter is strict-mode-like, the instrumented full-args build is
// sloppy-like.)
function juggle(a, b) {
  arguments[0] = arguments[0] * 2;
  if (arguments.length < 2) { b = arguments[0]; }
  return arguments[0] + b + arguments.length;
}
var t = 0;
for (var i = 0; i < 250; i++) {
  t += juggle(i) + juggle(i, 1);
}
console.log("arguments_tricks", t);
`

const jsDynamicProps = `
var registry = {};
function record(name, value) {
  var bucket = registry[name];
  if (bucket === undefined) { bucket = { count: 0, total: 0 }; registry[name] = bucket; }
  bucket.count++;
  bucket.total += value;
}
for (var i = 0; i < 350; i++) {
  record("metric" + (i % 9), i);
  if (i % 50 === 0) { delete registry["metric" + (i % 9)]; }
}
var names = 0, counts = 0;
for (var k in registry) { names++; counts += registry[k].count; }
console.log("dynamic_props", names, counts);
`

const jsClosures = `
function memoize(f) {
  var cache = {};
  return function (x) {
    var key = "k" + x;
    if (cache[key] === undefined) { cache[key] = f(x); }
    return cache[key];
  };
}
var calls = 0;
var slow = function (n) {
  calls++;
  var t = 0;
  for (var i = 0; i < n % 50; i++) { t += i; }
  return t;
};
var fast = memoize(slow);
var total = 0;
for (var i = 0; i < 300; i++) { total += fast(i % 40); }
console.log("closures", total, calls);
`

const jsSpliceHeavy = `
var deck = [];
for (var i = 0; i < 80; i++) { deck.push(i); }
var seed = 17;
for (var round = 0; round < 60; round++) {
  seed = (seed * 48271) % 2147483647;
  var from = seed % deck.length;
  var card = deck.splice(from, 1)[0];
  deck.push(card);
}
var checksum = 0;
for (var i = 0; i < deck.length; i++) { checksum = (checksum * 31 + deck[i]) % 1000003; }
console.log("splice_heavy", checksum);
`

const jsParse = `
// A tiny arithmetic-expression parser: string scanning without regexes.
function parse(src) {
  var pos = 0;
  function peek() { return src.charAt(pos); }
  function num() {
    var start = pos;
    while (peek() >= "0" && peek() <= "9") { pos++; }
    return parseInt(src.substring(start, pos), 10);
  }
  function factor() {
    if (peek() === "(") { pos++; var v = expr(); pos++; return v; }
    return num();
  }
  function term() {
    var v = factor();
    while (peek() === "*") { pos++; v *= factor(); }
    return v;
  }
  function expr() {
    var v = term();
    while (peek() === "+") { pos++; v += term(); }
    return v;
  }
  return expr();
}
var total = 0;
for (var i = 0; i < 60; i++) {
  total += parse("1+2*(3+" + (i % 9) + ")*2+10");
}
console.log("regex_free_parse", total);
`

const jsEvalDispatch = `
// Handlers generated with eval, as dynamic frameworks do.
eval("handleAdd = function (s, x) { return s + x; };");
eval("handleMul = function (s, x) { return s * x % 9973; };");
var state = 1;
for (var i = 0; i < 200; i++) {
  state = i % 2 === 0 ? handleAdd(state, i) : handleMul(state, 3);
}
console.log("eval_dispatch", state);
`

const jsCryptoMini = `
// Kraken-flavoured byte mixing without typed arrays.
function rotl(x, n) { return ((x << n) | (x >>> (32 - n))) | 0; }
var state = [1732584193, -271733879, -1732584194, 271733878];
for (var block = 0; block < 40; block++) {
  var a = state[0], b = state[1], c = state[2], d = state[3];
  for (var i = 0; i < 16; i++) {
    var f = (b & c) | (~b & d);
    var tmp = d;
    d = c; c = b;
    b = (b + rotl((a + f + block * 16 + i) | 0, 7)) | 0;
    a = tmp;
  }
  state[0] = (state[0] + a) | 0;
  state[1] = (state[1] + b) | 0;
  state[2] = (state[2] + c) | 0;
  state[3] = (state[3] + d) | 0;
}
console.log("crypto_mini", state[0] ^ state[1], state[2] ^ state[3]);
`

// OctaneLike returns a suite in the style of the Octane benchmarks the
// paper measures in Figure 13: object- and call-heavy code where arithmetic
// mostly touches known numbers, so the implicit-call desugaring rarely
// fires at runtime.
func OctaneLike() []Benchmark {
	return []Benchmark{
		{Name: "richards_like", Source: pyRichards},
		{Name: "deltablue_like", Source: pyDeltaBlue},
		{Name: "splay_like", Source: octSplay},
		{Name: "navier_stokes_like", Source: octNavier},
		{Name: "raytrace_like", Source: pyRaytrace},
	}
}

// KrakenLike returns a suite in the style of the Kraken benchmarks: tight
// numeric kernels whose every arithmetic operation goes through the
// implicit-conversion helpers, which is why Figure 13 shows Kraken's
// slowdown an order of magnitude above Octane's.
func KrakenLike() []Benchmark {
	return []Benchmark{
		{Name: "crypto_like", Source: jsCryptoMini},
		{Name: "audio_dft_like", Source: krakenDFT},
		{Name: "imaging_like", Source: krakenImaging},
		{Name: "astar_like", Source: krakenAstar},
	}
}

const octSplay = `
// Splay-tree-ish: rotations near the root on skewed lookups.
function node(key) { return { key: key, left: null, right: null }; }
function insert(root, key) {
  if (root === null) { return node(key); }
  if (key < root.key) { root.left = insert(root.left, key); }
  else if (key > root.key) { root.right = insert(root.right, key); }
  return root;
}
function rotateRight(n) { var l = n.left; n.left = l.right; l.right = n; return l; }
function rotateLeft(n) { var r = n.right; n.right = r.left; r.left = n; return r; }
function splayStep(root, key) {
  if (root === null || root.key === key) { return root; }
  if (key < root.key && root.left !== null) { return rotateRight(root); }
  if (key > root.key && root.right !== null) { return rotateLeft(root); }
  return root;
}
var root = null;
var seed = 23;
for (var i = 0; i < 220; i++) {
  seed = (seed * 48271) % 2147483647;
  root = insert(root, seed % 500);
  root = splayStep(root, seed % 500);
}
function depth(n) {
  if (n === null) { return 0; }
  var l = depth(n.left), r = depth(n.right);
  return 1 + (l > r ? l : r);
}
console.log("splay_like", depth(root));
`

const octNavier = `
// Navier-Stokes-flavoured stencil over a small grid.
var N = 18;
var u = [], v = [];
for (var i = 0; i < N * N; i++) { u.push((i % 7) / 7); v.push(0); }
function step() {
  for (var y = 1; y < N - 1; y++) {
    for (var x = 1; x < N - 1; x++) {
      var idx = y * N + x;
      v[idx] = (u[idx - 1] + u[idx + 1] + u[idx - N] + u[idx + N]) * 0.25;
    }
  }
  var t = u; u = v; v = t;
}
for (var s = 0; s < 30; s++) { step(); }
console.log("navier_stokes_like", (u[(N * N / 2) | 0] * 1e9) | 0);
`

const krakenDFT = `
// Direct DFT over a small window — multiply-accumulate saturation.
var SIZE = 48;
var signal = [];
for (var i = 0; i < SIZE; i++) { signal.push(Math.sin(i * 0.7) + Math.sin(i * 0.3)); }
var power = 0;
for (var k = 0; k < SIZE; k++) {
  var re = 0, im = 0;
  for (var n = 0; n < SIZE; n++) {
    var ang = 2 * Math.PI * k * n / SIZE;
    re += signal[n] * Math.cos(ang);
    im -= signal[n] * Math.sin(ang);
  }
  power += re * re + im * im;
}
console.log("audio_dft_like", (power * 1000) | 0);
`

const krakenImaging = `
// Gaussian-ish blur + threshold over a grayscale buffer.
var W = 40, H = 30;
var img = [];
for (var i = 0; i < W * H; i++) { img.push((i * 37) % 256); }
var out = [];
for (var i = 0; i < W * H; i++) { out.push(0); }
for (var y = 1; y < H - 1; y++) {
  for (var x = 1; x < W - 1; x++) {
    var idx = y * W + x;
    var acc = img[idx] * 4 + img[idx - 1] * 2 + img[idx + 1] * 2 + img[idx - W] * 2 + img[idx + W] * 2
      + img[idx - W - 1] + img[idx - W + 1] + img[idx + W - 1] + img[idx + W + 1];
    out[idx] = (acc / 16) | 0;
  }
}
var bright = 0;
for (var i = 0; i < W * H; i++) { if (out[i] > 128) { bright++; } }
console.log("imaging_like", bright);
`

const krakenAstar = `
// Grid path cost propagation (A*-flavoured relaxation).
var W = 24, H = 18;
var cost = [], dist = [];
for (var i = 0; i < W * H; i++) {
  cost.push(1 + ((i * 31) % 5));
  dist.push(1e9);
}
dist[0] = 0;
for (var round = 0; round < 30; round++) {
  var changed = false;
  for (var y = 0; y < H; y++) {
    for (var x = 0; x < W; x++) {
      var idx = y * W + x;
      var d = dist[idx];
      if (x > 0 && dist[idx - 1] + cost[idx] < d) { d = dist[idx - 1] + cost[idx]; }
      if (x < W - 1 && dist[idx + 1] + cost[idx] < d) { d = dist[idx + 1] + cost[idx]; }
      if (y > 0 && dist[idx - W] + cost[idx] < d) { d = dist[idx - W] + cost[idx]; }
      if (y < H - 1 && dist[idx + W] + cost[idx] < d) { d = dist[idx + W] + cost[idx]; }
      if (d < dist[idx]) { dist[idx] = d; changed = true; }
    }
  }
  if (!changed) { break; }
}
console.log("astar_like", dist[W * H - 1]);
`
