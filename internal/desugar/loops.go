package desugar

import "repro/internal/ast"

// lowerLoopsStmts rewrites for / do-while / for-in into while loops and
// switch into a guarded if-chain, recursively. After this pass the only
// looping construct is While and the only fall-through construct is gone,
// which is what the A-normalizer and the instrumentation assume.
func lowerLoopsStmts(body []ast.Stmt, nm *Namer) []ast.Stmt {
	out := make([]ast.Stmt, len(body))
	for i, s := range body {
		out[i] = lowerLoopStmt(s, nil, nm)
	}
	return out
}

// lowerLoopStmt lowers one statement; labels carries the label names
// attached directly to this statement via enclosing Labeled nodes.
func lowerLoopStmt(s ast.Stmt, labels []string, nm *Namer) ast.Stmt {
	switch n := s.(type) {
	case *ast.Labeled:
		inner := lowerLoopStmt(n.Body, append(labels, n.Label), nm)
		return &ast.Labeled{P: n.P, Label: n.Label, Body: inner}
	case *ast.For:
		return lowerFor(n, labels, nm)
	case *ast.DoWhile:
		return lowerDoWhile(n, labels, nm)
	case *ast.ForIn:
		return lowerForIn(n, labels, nm)
	case *ast.Switch:
		return lowerSwitch(n, nm)
	case *ast.While:
		n.Body = lowerLoopStmt(n.Body, nil, nm)
		lowerLoopsInExprs(n.Test, nm)
		return n
	case *ast.Block:
		for i := range n.Body {
			n.Body[i] = lowerLoopStmt(n.Body[i], nil, nm)
		}
		return n
	case *ast.If:
		lowerLoopsInExprs(n.Test, nm)
		n.Cons = lowerLoopStmt(n.Cons, nil, nm)
		if n.Alt != nil {
			n.Alt = lowerLoopStmt(n.Alt, nil, nm)
		}
		return n
	case *ast.Try:
		n.Block.Body = lowerLoopsStmts(n.Block.Body, nm)
		if n.Catch != nil {
			n.Catch.Body = lowerLoopsStmts(n.Catch.Body, nm)
		}
		if n.Finally != nil {
			n.Finally.Body = lowerLoopsStmts(n.Finally.Body, nm)
		}
		return n
	case *ast.FuncDecl:
		n.Fn.Body = lowerLoopsStmts(n.Fn.Body, nm)
		return n
	case *ast.VarDecl:
		for i := range n.Decls {
			lowerLoopsInExprs(n.Decls[i].Init, nm)
		}
		return n
	case *ast.ExprStmt:
		lowerLoopsInExprs(n.X, nm)
		return n
	case *ast.Return:
		lowerLoopsInExprs(n.Arg, nm)
		return n
	case *ast.Throw:
		lowerLoopsInExprs(n.Arg, nm)
		return n
	default:
		return s
	}
}

// lowerLoopsInExprs lowers loops inside function literals embedded in an
// expression.
func lowerLoopsInExprs(e ast.Expr, nm *Namer) {
	if e == nil {
		return
	}
	ast.Walk(e, func(n ast.Node) bool {
		if fn, ok := n.(*ast.Func); ok {
			fn.Body = lowerLoopsStmts(fn.Body, nm)
			return false
		}
		return true
	})
}

// lowerFor rewrites
//
//	for (init; test; update) body
//
// into
//
//	{ init; while (test) { $L: { body' } update; } }
//
// where body' has `continue` (and labeled continues naming this loop)
// rewritten to `break $L`, so the update expression always runs.
func lowerFor(n *ast.For, labels []string, nm *Namer) ast.Stmt {
	blockLabel := nm.Fresh("$L")
	body := rewriteContinues(n.Body, labels, blockLabel)
	body = lowerLoopStmt(body, nil, nm)

	inner := []ast.Stmt{&ast.Labeled{Label: blockLabel, Body: asBlock(body)}}
	if n.Update != nil {
		lowerLoopsInExprs(n.Update, nm)
		inner = append(inner, ast.ExprOf(n.Update))
	}
	test := n.Test
	if test == nil {
		test = ast.Boollit(true)
	}
	lowerLoopsInExprs(test, nm)
	loop := &ast.While{P: n.P, Test: test, Body: ast.BlockOf(inner...)}

	var out []ast.Stmt
	if n.Init != nil {
		init := lowerLoopStmt(n.Init, nil, nm)
		out = append(out, init)
	}
	out = append(out, loop)
	return ast.BlockOf(out...)
}

// lowerDoWhile rewrites `do body while (test)` into
//
//	while (true) { $L: { body' } if (!(test)) break; }
func lowerDoWhile(n *ast.DoWhile, labels []string, nm *Namer) ast.Stmt {
	blockLabel := nm.Fresh("$L")
	body := rewriteContinues(n.Body, labels, blockLabel)
	body = lowerLoopStmt(body, nil, nm)
	lowerLoopsInExprs(n.Test, nm)
	return &ast.While{
		P:    n.P,
		Test: ast.Boollit(true),
		Body: ast.BlockOf(
			&ast.Labeled{Label: blockLabel, Body: asBlock(body)},
			ast.IfThen(ast.Not(n.Test), &ast.Break{}),
		),
	}
}

// lowerForIn rewrites `for (k in obj) body` into a while loop over
// Object.keys(obj); own enumerable keys in insertion order, matching the
// interpreter's for-in.
func lowerForIn(n *ast.ForIn, labels []string, nm *Namer) ast.Stmt {
	blockLabel := nm.Fresh("$L")
	keys := nm.Fresh("$ks")
	idx := nm.Fresh("$i")
	body := rewriteContinues(n.Body, labels, blockLabel)
	body = lowerLoopStmt(body, nil, nm)
	lowerLoopsInExprs(n.Obj, nm)

	var out []ast.Stmt
	if n.Decl {
		out = append(out, ast.Var(n.Name, nil))
	}
	out = append(out,
		ast.Var(keys, ast.CallN(ast.Dot(ast.Id("Object"), "keys"), n.Obj)),
		ast.Var(idx, ast.Int(0)),
		&ast.While{
			Test: ast.Bin("<", ast.Id(idx), ast.Dot(ast.Id(keys), "length")),
			Body: ast.BlockOf(
				ast.ExprOf(ast.SetId(n.Name, ast.Idx(ast.Id(keys), ast.Id(idx)))),
				ast.ExprOf(ast.SetId(idx, ast.Bin("+", ast.Id(idx), ast.Int(1)))),
				&ast.Labeled{Label: blockLabel, Body: asBlock(body)},
			),
		},
	)
	return ast.BlockOf(out...)
}

// lowerSwitch rewrites switch into a match-index computation followed by
// fall-through guarded bodies inside a labeled block:
//
//	{ var $d = disc; var $m = BIG;
//	  if ($d === t0) $m = 0; else if ...; else $m = defaultIndex;
//	  $L: { if ($m <= 0) { body0 } if ($m <= 1) { body1 } ... } }
func lowerSwitch(n *ast.Switch, nm *Namer) ast.Stmt {
	blockLabel := nm.Fresh("$L")
	d := nm.Fresh("$d")
	m := nm.Fresh("$m")
	lowerLoopsInExprs(n.Disc, nm)

	defaultIdx := len(n.Cases) // past the end: no case runs
	for i, c := range n.Cases {
		if c.Test == nil {
			defaultIdx = i
		}
	}

	// Build the match chain, skipping the default clause.
	var chain ast.Stmt = ast.ExprOf(ast.SetId(m, ast.Int(defaultIdx)))
	for i := len(n.Cases) - 1; i >= 0; i-- {
		c := n.Cases[i]
		if c.Test == nil {
			continue
		}
		lowerLoopsInExprs(c.Test, nm)
		chain = ast.IfElse(
			ast.Bin("===", ast.Id(d), c.Test),
			ast.ExprOf(ast.SetId(m, ast.Int(i))),
			chain,
		)
	}

	var guarded []ast.Stmt
	for i, c := range n.Cases {
		body := make([]ast.Stmt, len(c.Body))
		for j, s := range c.Body {
			s = rewriteSwitchBreaks(s, blockLabel)
			body[j] = lowerLoopStmt(s, nil, nm)
		}
		guarded = append(guarded, ast.IfThen(
			ast.Bin("<=", ast.Id(m), ast.Int(i)),
			body...,
		))
	}

	return ast.BlockOf(
		ast.Var(d, n.Disc),
		ast.Var(m, nil),
		chain,
		&ast.Labeled{Label: blockLabel, Body: ast.BlockOf(guarded...)},
	)
}

func asBlock(s ast.Stmt) ast.Stmt {
	if _, ok := s.(*ast.Block); ok {
		return s
	}
	return ast.BlockOf(s)
}

// rewriteContinues replaces `continue` statements that target the loop being
// desugared (unlabeled ones outside nested loops, and labeled ones naming
// one of loopLabels at any depth) with `break target`.
func rewriteContinues(s ast.Stmt, loopLabels []string, target string) ast.Stmt {
	return rewriteCont(s, loopLabels, target, false)
}

func rewriteCont(s ast.Stmt, loopLabels []string, target string, shadowed bool) ast.Stmt {
	switch n := s.(type) {
	case *ast.Continue:
		if n.Label == "" {
			if !shadowed {
				return &ast.Break{P: n.P, Label: target}
			}
			return n
		}
		if hasString(loopLabels, n.Label) {
			return &ast.Break{P: n.P, Label: target}
		}
		return n
	case *ast.Block:
		for i := range n.Body {
			n.Body[i] = rewriteCont(n.Body[i], loopLabels, target, shadowed)
		}
		return n
	case *ast.If:
		n.Cons = rewriteCont(n.Cons, loopLabels, target, shadowed)
		if n.Alt != nil {
			n.Alt = rewriteCont(n.Alt, loopLabels, target, shadowed)
		}
		return n
	case *ast.While:
		n.Body = rewriteCont(n.Body, loopLabels, target, true)
		return n
	case *ast.DoWhile:
		n.Body = rewriteCont(n.Body, loopLabels, target, true)
		return n
	case *ast.For:
		n.Body = rewriteCont(n.Body, loopLabels, target, true)
		return n
	case *ast.ForIn:
		n.Body = rewriteCont(n.Body, loopLabels, target, true)
		return n
	case *ast.Labeled:
		n.Body = rewriteCont(n.Body, loopLabels, target, shadowed)
		return n
	case *ast.Switch:
		for i := range n.Cases {
			for j := range n.Cases[i].Body {
				n.Cases[i].Body[j] = rewriteCont(n.Cases[i].Body[j], loopLabels, target, shadowed)
			}
		}
		return n
	case *ast.Try:
		for i := range n.Block.Body {
			n.Block.Body[i] = rewriteCont(n.Block.Body[i], loopLabels, target, shadowed)
		}
		if n.Catch != nil {
			for i := range n.Catch.Body {
				n.Catch.Body[i] = rewriteCont(n.Catch.Body[i], loopLabels, target, shadowed)
			}
		}
		if n.Finally != nil {
			for i := range n.Finally.Body {
				n.Finally.Body[i] = rewriteCont(n.Finally.Body[i], loopLabels, target, shadowed)
			}
		}
		return n
	default:
		return s
	}
}

// rewriteSwitchBreaks replaces unlabeled `break` statements that target the
// switch being desugared (i.e. outside nested loops and switches) with
// `break target`.
func rewriteSwitchBreaks(s ast.Stmt, target string) ast.Stmt {
	switch n := s.(type) {
	case *ast.Break:
		if n.Label == "" {
			return &ast.Break{P: n.P, Label: target}
		}
		return n
	case *ast.Block:
		for i := range n.Body {
			n.Body[i] = rewriteSwitchBreaks(n.Body[i], target)
		}
		return n
	case *ast.If:
		n.Cons = rewriteSwitchBreaks(n.Cons, target)
		if n.Alt != nil {
			n.Alt = rewriteSwitchBreaks(n.Alt, target)
		}
		return n
	case *ast.Labeled:
		n.Body = rewriteSwitchBreaks(n.Body, target)
		return n
	case *ast.Try:
		for i := range n.Block.Body {
			n.Block.Body[i] = rewriteSwitchBreaks(n.Block.Body[i], target)
		}
		if n.Catch != nil {
			for i := range n.Catch.Body {
				n.Catch.Body[i] = rewriteSwitchBreaks(n.Catch.Body[i], target)
			}
		}
		if n.Finally != nil {
			for i := range n.Finally.Body {
				n.Finally.Body[i] = rewriteSwitchBreaks(n.Finally.Body[i], target)
			}
		}
		return n
	default:
		// Nested loops and switches capture unlabeled breaks.
		return s
	}
}

func hasString(xs []string, s string) bool {
	for _, x := range xs {
		if x == s {
			return true
		}
	}
	return false
}
