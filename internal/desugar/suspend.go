package desugar

import "repro/internal/ast"

// insertSuspend inserts a $suspend() call at the top of every function body
// and every loop body (§5.1: "Stopify instruments p such that every
// function and loop calls the maySuspend function"). $suspend is a runtime
// primitive that estimates elapsed time and, when the yield interval has
// passed — or a pause, breakpoint, or stack-depth limit demands it —
// captures the continuation and schedules its resumption on the event loop.
//
// It runs after loop lowering, so While is the only loop form.
func insertSuspend(body []ast.Stmt, topLevel bool) []ast.Stmt {
	r := &rewriter{}
	r.stmt = func(s ast.Stmt) ast.Stmt {
		switch n := s.(type) {
		case *ast.While:
			n.Body = prependSuspend(n.Body)
		case *ast.FuncDecl:
			n.Fn.Body = append([]ast.Stmt{suspendCall()}, n.Fn.Body...)
		}
		return s
	}
	r.expr = func(e ast.Expr) ast.Expr {
		if fn, ok := e.(*ast.Func); ok {
			fn.Body = append([]ast.Stmt{suspendCall()}, fn.Body...)
		}
		return e
	}
	out := r.stmts(body)
	_ = topLevel
	return out
}

func suspendCall() ast.Stmt { return ast.ExprOf(ast.CallId("$suspend")) }

func prependSuspend(body ast.Stmt) ast.Stmt {
	if b, ok := body.(*ast.Block); ok {
		b.Body = append([]ast.Stmt{suspendCall()}, b.Body...)
		return b
	}
	return ast.BlockOf(suspendCall(), body)
}
