// Package desugar lowers the surface JavaScript the parser accepts into the
// core sub-language the A-normalizer and continuation instrumentation work
// on, and makes the implicit behaviours of §4 of the paper explicit:
//
//   - for / do-while / for-in loops become while loops (with continue
//     rewritten so instrumentation sees a single loop shape)
//   - switch becomes a guarded if-chain inside a labeled block
//   - arrow functions become named function expressions with $this/$args
//   - every anonymous function gets a name (reenter thunks need one)
//   - update (++/--) and compound assignments become plain assignments
//   - implicit valueOf/toString conversions become explicit prelude calls
//     ($add, $lt, ...) per the Impl column of Figure 5
//   - getter/setter-triggering member accesses become $get/$set calls
//   - `new F(...)` becomes $construct(F, [...]) when constructors are
//     desugared (Figure 2b's "desugar" strategy)
//   - formal parameters become arguments[i] references for the full
//     arguments sub-language (§4.2)
//   - $suspend() is inserted into every function and loop, and $bp(line)
//     before every statement when debugging is on (§5)
//
// Passes are applied to user code only; the runtime prelude (which defines
// $add and friends in plain JavaScript) is appended afterwards by the core
// compiler so it is never rewritten in terms of itself.
package desugar

import (
	"fmt"

	"repro/internal/ast"
)

// ImplicitsMode selects how much of §4.1 to make explicit.
type ImplicitsMode int

// Implicits modes, from Figure 5's Impl column.
const (
	ImplicitsNone ImplicitsMode = iota // ✗ — arithmetic cannot call user code
	ImplicitsPlus                      // + — only + may invoke toString
	ImplicitsFull                      // ✓ — all operators may invoke user code
)

// Options selects the desugarings to run.
type Options struct {
	Implicits   ImplicitsMode
	Getters     bool // expose getters/setters as $get/$set calls
	CtorDesugar bool // new F(...) -> $construct(F, [...])
	ArgsFull    bool // formals become arguments[i] (full aliasing)
	Suspend     bool // insert $suspend() in functions and loops
	Breakpoints bool // insert $bp(line) before every statement
}

// Namer generates fresh identifiers; a single Namer is threaded through all
// passes of one compilation so names never collide.
type Namer struct{ n int }

// Fresh returns a new name with the given prefix.
func (nm *Namer) Fresh(prefix string) string {
	nm.n++
	return fmt.Sprintf("%s%d", prefix, nm.n)
}

// Apply runs the configured passes over prog in order. It returns prog,
// which is rewritten in place (statement slices are rebuilt).
func Apply(prog *ast.Program, opts Options, nm *Namer) *ast.Program {
	if opts.Breakpoints {
		prog.Body = insertBreakpoints(prog.Body)
	}
	prog.Body = lowerArrows(prog.Body, nm, true)
	nameFunctions(prog, nm)
	prog.Body = lowerLoopsStmts(prog.Body, nm)
	prog.Body = normalizeAssignments(prog.Body, nm)
	if opts.Implicits != ImplicitsNone {
		prog.Body = lowerImplicits(prog.Body, opts.Implicits, nm)
	}
	if opts.Getters {
		prog.Body = lowerGetters(prog.Body, nm)
	}
	if opts.CtorDesugar {
		prog.Body = lowerCtors(prog.Body, nm)
	}
	if opts.ArgsFull {
		lowerArgsFull(prog)
	}
	if opts.Suspend {
		prog.Body = insertSuspend(prog.Body, true)
	}
	return prog
}

// mapFuncBodies applies fn to every function body found in the statement
// list (including nested ones), bottom-up, and returns the rewritten list.
// It is the shared chassis for scope-at-a-time passes.
func mapStmts(body []ast.Stmt, fn func(ast.Stmt) ast.Stmt) []ast.Stmt {
	out := make([]ast.Stmt, 0, len(body))
	for _, s := range body {
		out = append(out, fn(s))
	}
	return out
}
