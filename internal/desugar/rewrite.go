package desugar

import "repro/internal/ast"

// rewriter is a bottom-up AST transformer. Children are rewritten first;
// the callbacks then see fully-rewritten children and may return replacement
// nodes. A nil callback is the identity. When skipFuncs is set the rewriter
// does not descend into function bodies, letting scope-sensitive passes
// drive their own per-scope recursion.
type rewriter struct {
	stmt      func(ast.Stmt) ast.Stmt
	expr      func(ast.Expr) ast.Expr
	skipFuncs bool
}

func (r *rewriter) stmts(body []ast.Stmt) []ast.Stmt {
	out := make([]ast.Stmt, len(body))
	for i, s := range body {
		out[i] = r.rstmt(s)
	}
	return out
}

func (r *rewriter) post(s ast.Stmt) ast.Stmt {
	if r.stmt != nil {
		return r.stmt(s)
	}
	return s
}

func (r *rewriter) postE(e ast.Expr) ast.Expr {
	if r.expr != nil {
		return r.expr(e)
	}
	return e
}

func (r *rewriter) rstmt(s ast.Stmt) ast.Stmt {
	switch n := s.(type) {
	case nil:
		return nil
	case *ast.VarDecl:
		for i := range n.Decls {
			if n.Decls[i].Init != nil {
				n.Decls[i].Init = r.rexpr(n.Decls[i].Init)
			}
		}
		return r.post(n)
	case *ast.ExprStmt:
		n.X = r.rexpr(n.X)
		return r.post(n)
	case *ast.Block:
		n.Body = r.stmts(n.Body)
		return r.post(n)
	case *ast.If:
		n.Test = r.rexpr(n.Test)
		n.Cons = r.rstmt(n.Cons)
		if n.Alt != nil {
			n.Alt = r.rstmt(n.Alt)
		}
		return r.post(n)
	case *ast.While:
		n.Test = r.rexpr(n.Test)
		n.Body = r.rstmt(n.Body)
		return r.post(n)
	case *ast.DoWhile:
		n.Body = r.rstmt(n.Body)
		n.Test = r.rexpr(n.Test)
		return r.post(n)
	case *ast.For:
		if n.Init != nil {
			n.Init = r.rstmt(n.Init)
		}
		if n.Test != nil {
			n.Test = r.rexpr(n.Test)
		}
		if n.Update != nil {
			n.Update = r.rexpr(n.Update)
		}
		n.Body = r.rstmt(n.Body)
		return r.post(n)
	case *ast.ForIn:
		n.Obj = r.rexpr(n.Obj)
		n.Body = r.rstmt(n.Body)
		return r.post(n)
	case *ast.Return:
		if n.Arg != nil {
			n.Arg = r.rexpr(n.Arg)
		}
		return r.post(n)
	case *ast.Break, *ast.Continue, *ast.Empty:
		return r.post(s)
	case *ast.Labeled:
		n.Body = r.rstmt(n.Body)
		return r.post(n)
	case *ast.Switch:
		n.Disc = r.rexpr(n.Disc)
		for i := range n.Cases {
			if n.Cases[i].Test != nil {
				n.Cases[i].Test = r.rexpr(n.Cases[i].Test)
			}
			n.Cases[i].Body = r.stmts(n.Cases[i].Body)
		}
		return r.post(n)
	case *ast.Throw:
		n.Arg = r.rexpr(n.Arg)
		return r.post(n)
	case *ast.Try:
		n.Block.Body = r.stmts(n.Block.Body)
		if n.Catch != nil {
			n.Catch.Body = r.stmts(n.Catch.Body)
		}
		if n.Finally != nil {
			n.Finally.Body = r.stmts(n.Finally.Body)
		}
		return r.post(n)
	case *ast.FuncDecl:
		if !r.skipFuncs {
			n.Fn.Body = r.stmts(n.Fn.Body)
		} else if r.expr != nil {
			// Scope-wise passes handle functions through the expr callback;
			// give declarations the same treatment. The callback must return
			// the same *ast.Func (they all do — they rewrite bodies in
			// place).
			if fn, ok := r.expr(n.Fn).(*ast.Func); ok {
				n.Fn = fn
			}
		}
		return r.post(n)
	}
	return r.post(s)
}

func (r *rewriter) rexpr(e ast.Expr) ast.Expr {
	switch n := e.(type) {
	case nil:
		return nil
	case *ast.Array:
		for i := range n.Elems {
			n.Elems[i] = r.rexpr(n.Elems[i])
		}
		return r.postE(n)
	case *ast.Object:
		for i := range n.Props {
			n.Props[i].Value = r.rexpr(n.Props[i].Value)
		}
		return r.postE(n)
	case *ast.Func:
		if !r.skipFuncs {
			n.Body = r.stmts(n.Body)
		}
		return r.postE(n)
	case *ast.Unary:
		n.X = r.rexpr(n.X)
		return r.postE(n)
	case *ast.Update:
		n.X = r.rexpr(n.X)
		return r.postE(n)
	case *ast.Binary:
		n.L = r.rexpr(n.L)
		n.R = r.rexpr(n.R)
		return r.postE(n)
	case *ast.Logical:
		n.L = r.rexpr(n.L)
		n.R = r.rexpr(n.R)
		return r.postE(n)
	case *ast.Assign:
		n.Target = r.rexpr(n.Target)
		n.Value = r.rexpr(n.Value)
		return r.postE(n)
	case *ast.Cond:
		n.Test = r.rexpr(n.Test)
		n.Cons = r.rexpr(n.Cons)
		n.Alt = r.rexpr(n.Alt)
		return r.postE(n)
	case *ast.Call:
		n.Callee = r.rexpr(n.Callee)
		for i := range n.Args {
			n.Args[i] = r.rexpr(n.Args[i])
		}
		return r.postE(n)
	case *ast.New:
		n.Callee = r.rexpr(n.Callee)
		for i := range n.Args {
			n.Args[i] = r.rexpr(n.Args[i])
		}
		return r.postE(n)
	case *ast.Member:
		n.X = r.rexpr(n.X)
		if n.Computed {
			n.Index = r.rexpr(n.Index)
		}
		return r.postE(n)
	case *ast.Seq:
		for i := range n.Exprs {
			n.Exprs[i] = r.rexpr(n.Exprs[i])
		}
		return r.postE(n)
	}
	return r.postE(e)
}
