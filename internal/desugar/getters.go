package desugar

import "repro/internal/ast"

// lowerGetters exposes property reads and writes as $get/$set prelude calls
// so that user-defined getters and setters — which may not terminate — run
// as instrumented JavaScript calls (§4.3). Method calls keep their receiver
// binding by hoisting the receiver into a temporary:
//
//	o.m(a)        =>  ($u = o, $get($u, "m").call($u, a))
//	o.f           =>  $get(o, "f")
//	o.f = v       =>  $set(o, "f", v)
//	delete o.f    unchanged (no user code runs)
func lowerGetters(body []ast.Stmt, nm *Namer) []ast.Stmt {
	return lowerGettersScope(body, nm)
}

func lowerGettersScope(body []ast.Stmt, nm *Namer) []ast.Stmt {
	var temps []string
	out := make([]ast.Stmt, len(body))
	g := &getterLowerer{nm: nm, temps: &temps}
	for i, s := range body {
		out[i] = g.stmt(s)
	}
	if len(temps) > 0 {
		decl := &ast.VarDecl{}
		for _, t := range temps {
			decl.Decls = append(decl.Decls, ast.Declarator{Name: t})
		}
		out = append([]ast.Stmt{decl}, out...)
	}
	return out
}

type getterLowerer struct {
	nm    *Namer
	temps *[]string
}

func (g *getterLowerer) temp() string {
	t := g.nm.Fresh("$u")
	*g.temps = append(*g.temps, t)
	return t
}

func (g *getterLowerer) stmt(s ast.Stmt) ast.Stmt {
	switch n := s.(type) {
	case nil:
		return nil
	case *ast.VarDecl:
		for i := range n.Decls {
			if n.Decls[i].Init != nil {
				n.Decls[i].Init = g.expr(n.Decls[i].Init)
			}
		}
		return n
	case *ast.ExprStmt:
		n.X = g.expr(n.X)
		return n
	case *ast.Block:
		for i := range n.Body {
			n.Body[i] = g.stmt(n.Body[i])
		}
		return n
	case *ast.If:
		n.Test = g.expr(n.Test)
		n.Cons = g.stmt(n.Cons)
		if n.Alt != nil {
			n.Alt = g.stmt(n.Alt)
		}
		return n
	case *ast.While:
		n.Test = g.expr(n.Test)
		n.Body = g.stmt(n.Body)
		return n
	case *ast.Return:
		if n.Arg != nil {
			n.Arg = g.expr(n.Arg)
		}
		return n
	case *ast.Labeled:
		n.Body = g.stmt(n.Body)
		return n
	case *ast.Throw:
		n.Arg = g.expr(n.Arg)
		return n
	case *ast.Try:
		for i := range n.Block.Body {
			n.Block.Body[i] = g.stmt(n.Block.Body[i])
		}
		if n.Catch != nil {
			for i := range n.Catch.Body {
				n.Catch.Body[i] = g.stmt(n.Catch.Body[i])
			}
		}
		if n.Finally != nil {
			for i := range n.Finally.Body {
				n.Finally.Body[i] = g.stmt(n.Finally.Body[i])
			}
		}
		return n
	case *ast.FuncDecl:
		n.Fn.Body = lowerGettersScope(n.Fn.Body, g.nm)
		return n
	default:
		return s
	}
}

func (g *getterLowerer) exprs(es []ast.Expr) []ast.Expr {
	for i := range es {
		es[i] = g.expr(es[i])
	}
	return es
}

func (g *getterLowerer) expr(e ast.Expr) ast.Expr {
	switch n := e.(type) {
	case nil:
		return nil
	case *ast.Member:
		return g.read(n)
	case *ast.Assign:
		n.Value = g.expr(n.Value)
		if m, ok := n.Target.(*ast.Member); ok {
			base := g.expr(m.X)
			key := g.keyExpr(m)
			return &ast.Call{P: n.P, Callee: ast.Id("$set"), Args: []ast.Expr{base, key, n.Value}}
		}
		return n
	case *ast.Call:
		n.Args = g.exprs(n.Args)
		if m, ok := n.Callee.(*ast.Member); ok {
			// Preserve the receiver: ($u = o, $get($u, k).call($u, args...))
			base := g.expr(m.X)
			key := g.keyExpr(m)
			u := g.temp()
			getCall := ast.CallId("$get", ast.Id(u), key)
			callArgs := append([]ast.Expr{ast.Id(u)}, n.Args...)
			invoke := &ast.Call{P: n.P, Callee: &ast.Member{X: getCall, Name: "call"}, Args: callArgs}
			return &ast.Seq{P: n.P, Exprs: []ast.Expr{ast.SetId(u, base), invoke}}
		}
		n.Callee = g.expr(n.Callee)
		return n
	case *ast.New:
		n.Callee = g.expr(n.Callee)
		n.Args = g.exprs(n.Args)
		return n
	case *ast.Unary:
		if n.Op == "delete" || n.Op == "typeof" {
			// delete must see the raw reference; typeof of a member read is
			// safe to rewrite but cheaper left alone for identifiers.
			if _, isMember := n.X.(*ast.Member); isMember && n.Op == "delete" {
				m := n.X.(*ast.Member)
				m.X = g.expr(m.X)
				if m.Computed {
					m.Index = g.expr(m.Index)
				}
				return n
			}
		}
		n.X = g.expr(n.X)
		return n
	case *ast.Update:
		// normalizeAssignments runs first, so updates are gone by now;
		// tolerate stragglers by rewriting the operand only.
		n.X = g.expr(n.X)
		return n
	case *ast.Binary:
		n.L = g.expr(n.L)
		n.R = g.expr(n.R)
		return n
	case *ast.Logical:
		n.L = g.expr(n.L)
		n.R = g.expr(n.R)
		return n
	case *ast.Cond:
		n.Test = g.expr(n.Test)
		n.Cons = g.expr(n.Cons)
		n.Alt = g.expr(n.Alt)
		return n
	case *ast.Seq:
		n.Exprs = g.exprs(n.Exprs)
		return n
	case *ast.Array:
		n.Elems = g.exprs(n.Elems)
		return n
	case *ast.Object:
		for i := range n.Props {
			if n.Props[i].Kind == ast.PropInit {
				n.Props[i].Value = g.expr(n.Props[i].Value)
			} else if fn, ok := n.Props[i].Value.(*ast.Func); ok {
				fn.Body = lowerGettersScope(fn.Body, g.nm)
			}
		}
		return n
	case *ast.Func:
		n.Body = lowerGettersScope(n.Body, g.nm)
		return n
	}
	return e
}

func (g *getterLowerer) read(m *ast.Member) ast.Expr {
	base := g.expr(m.X)
	return ast.CallId("$get", base, g.keyExpr(m))
}

func (g *getterLowerer) keyExpr(m *ast.Member) ast.Expr {
	if m.Computed {
		return g.expr(m.Index)
	}
	return ast.Strlit(m.Name)
}
