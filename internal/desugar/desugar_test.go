package desugar

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/ast"
	"repro/internal/interp"
	"repro/internal/parser"
	"repro/internal/printer"
)

// runDesugared applies the configured passes and executes the result.
func runDesugared(t *testing.T, src string, opts Options) string {
	t.Helper()
	prog, err := parser.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	nm := &Namer{}
	Apply(prog, opts, nm)
	out := printer.Print(prog)
	reparsed, err := parser.Parse(out)
	if err != nil {
		t.Fatalf("desugared output does not reparse: %v\n%s", err, out)
	}
	var buf bytes.Buffer
	in := interp.New(interp.Options{Out: &buf, Seed: 1})
	if err := in.RunProgram(reparsed); err != nil {
		t.Fatalf("desugared program failed: %v\n%s", err, out)
	}
	return buf.String()
}

func runPlain(t *testing.T, src string) string {
	t.Helper()
	prog, err := parser.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	var buf bytes.Buffer
	in := interp.New(interp.Options{Out: &buf, Seed: 1})
	if err := in.RunProgram(prog); err != nil {
		t.Fatalf("raw program failed: %v", err)
	}
	return buf.String()
}

func checkSame(t *testing.T, src string) {
	t.Helper()
	want := runPlain(t, src)
	got := runDesugared(t, src, Options{})
	if got != want {
		t.Errorf("desugar changed semantics:\n%s\nwant %q\ngot  %q", src, want, got)
	}
}

func TestLoopLowering(t *testing.T) {
	for _, src := range []string{
		`var s = 0; for (var i = 0; i < 5; i++) { if (i === 2) continue; s += i; } console.log(s);`,
		`var s = ""; outer: for (var i = 0; i < 3; i++) { for (var j = 0; j < 3; j++) { if (j === 2) continue outer; s += "" + i + j; } } console.log(s);`,
		`var n = 0; do { n++; if (n === 2) continue; } while (n < 4); console.log(n);`,
		`var t = 0; for (var k in { a: 1, b: 2, c: 3 }) { if (k === "b") continue; t++; } console.log(t);`,
		`var out = []; for (;;) { out.push(out.length); if (out.length > 2) break; } console.log(out.join(""));`,
	} {
		checkSame(t, src)
	}
}

func TestNoLoopFormsRemain(t *testing.T) {
	prog, err := parser.Parse(`
for (var i = 0; i < 3; i++) { }
do { } while (false);
for (var k in {}) { }
switch (1) { case 1: break; }`)
	if err != nil {
		t.Fatal(err)
	}
	Apply(prog, Options{}, &Namer{})
	ast.Walk(prog, func(n ast.Node) bool {
		switch n.(type) {
		case *ast.For, *ast.DoWhile, *ast.ForIn, *ast.Switch:
			t.Errorf("desugar left a %T behind", n)
		}
		return true
	})
}

func TestSwitchLowering(t *testing.T) {
	for _, src := range []string{
		`function f(x) { switch (x) { case 1: return "a"; case 2: return "b"; default: return "c"; } } console.log(f(1), f(2), f(9));`,
		`var log = ""; switch (2) { case 1: log += "1"; case 2: log += "2"; case 3: log += "3"; break; case 4: log += "4"; } console.log(log);`,
		`var log = ""; switch (9) { case 1: log += "1"; break; default: log += "d"; case 2: log += "2"; } console.log(log);`,
		`var side = ""; function t(v) { side += v; return v; } switch (2) { case t(1): case t(2): side += "hit"; } console.log(side);`,
	} {
		checkSame(t, src)
	}
}

func TestAssignmentNormalization(t *testing.T) {
	for _, src := range []string{
		`var x = 5; console.log(x++, x, ++x, x--, x);`,
		`var o = { n: 1 }; console.log(o.n++, ++o.n, o.n);`,
		`var a = [9]; var i = 0; a[i++] += 5; console.log(a[0], i);`,
		`var s = "4"; s++; console.log(s, typeof s);`,
		`var calls = 0; function idx() { calls++; return 0; } var arr = [10]; arr[idx()] *= 3; console.log(arr[0], calls);`,
	} {
		checkSame(t, src)
	}
	// Post-pass invariant: no Update or compound Assign nodes remain.
	prog, _ := parser.Parse(`var x = 1; x += 2; x++; --x; var o = {n:1}; o.n *= 2;`)
	Apply(prog, Options{}, &Namer{})
	ast.Walk(prog, func(n ast.Node) bool {
		switch a := n.(type) {
		case *ast.Update:
			t.Error("update expression survived normalization")
		case *ast.Assign:
			if a.Op != "=" {
				t.Errorf("compound assignment %q survived", a.Op)
			}
		}
		return true
	})
}

func TestArrowLowering(t *testing.T) {
	for _, src := range []string{
		`var f = (a, b) => a + b; console.log(f(1, 2));`,
		`function Box(v) { this.v = v; this.get = () => this.v * 2; } console.log(new Box(21).get());`,
		`function f() { var g = () => arguments.length; return g(); } console.log(f(7, 8));`,
		`var mk = (x) => () => x + 1; console.log(mk(4)());`,
	} {
		checkSame(t, src)
	}
	prog, _ := parser.Parse(`var f = () => () => 1;`)
	Apply(prog, Options{}, &Namer{})
	ast.Walk(prog, func(n ast.Node) bool {
		if fn, ok := n.(*ast.Func); ok && fn.Arrow {
			t.Error("arrow function survived lowering")
		}
		return true
	})
}

func TestAllFunctionsNamed(t *testing.T) {
	prog, _ := parser.Parse(`var f = function () {}; [1].map(function (x) { return x; }); var g = () => 0;`)
	Apply(prog, Options{}, &Namer{})
	ast.Walk(prog, func(n ast.Node) bool {
		if fn, ok := n.(*ast.Func); ok && fn.Name == "" {
			t.Error("anonymous function survived naming")
		}
		return true
	})
}

func TestImplicitsRewrite(t *testing.T) {
	prog, _ := parser.Parse(`var c = a + b; var d = a - b; var e = a < b;`)
	Apply(prog, Options{Implicits: ImplicitsFull}, &Namer{})
	out := printer.Print(prog)
	for _, fn := range []string{"$add", "$sub", "$lt"} {
		if !strings.Contains(out, fn) {
			t.Errorf("full implicits should call %s:\n%s", fn, out)
		}
	}

	prog2, _ := parser.Parse(`var c = a + b; var d = a - b;`)
	Apply(prog2, Options{Implicits: ImplicitsPlus}, &Namer{})
	out2 := printer.Print(prog2)
	if !strings.Contains(out2, "$add") || strings.Contains(out2, "$sub") {
		t.Errorf("plus mode should rewrite only +:\n%s", out2)
	}

	// Literal operands skip the helper.
	prog3, _ := parser.Parse(`var c = 1 + 2;`)
	Apply(prog3, Options{Implicits: ImplicitsFull}, &Namer{})
	if strings.Contains(printer.Print(prog3), "$add") {
		t.Error("constant arithmetic should not be rewritten")
	}
}

func TestGettersRewrite(t *testing.T) {
	prog, _ := parser.Parse(`var v = o.f; o.g = 1; o.m(2); delete o.h;`)
	Apply(prog, Options{Getters: true}, &Namer{})
	out := printer.Print(prog)
	if !strings.Contains(out, `$get(o, "f")`) {
		t.Errorf("read should use $get:\n%s", out)
	}
	if !strings.Contains(out, `$set(o, "g", 1)`) {
		t.Errorf("write should use $set:\n%s", out)
	}
	if !strings.Contains(out, ".call(") {
		t.Errorf("method call should preserve receiver:\n%s", out)
	}
	if !strings.Contains(out, "delete o.h") {
		t.Errorf("delete should keep its reference:\n%s", out)
	}
}

func TestCtorsRewrite(t *testing.T) {
	prog, _ := parser.Parse(`var a = new Foo(1); var e = new Error("x"); var d = new Date();`)
	Apply(prog, Options{CtorDesugar: true}, &Namer{})
	out := printer.Print(prog)
	if !strings.Contains(out, "$construct(Foo, [1])") {
		t.Errorf("user ctor should desugar:\n%s", out)
	}
	if !strings.Contains(out, `new Error("x")`) || !strings.Contains(out, "new Date()") {
		t.Errorf("builtin ctors must stay native:\n%s", out)
	}
}

func TestSuspendInsertion(t *testing.T) {
	prog, _ := parser.Parse(`function f() { while (true) { g(); } } function h() { return 1; }`)
	Apply(prog, Options{Suspend: true}, &Namer{})
	out := printer.Print(prog)
	if strings.Count(out, "$suspend()") < 3 {
		t.Errorf("every function and loop should call $suspend:\n%s", out)
	}
}

func TestBreakpointInsertion(t *testing.T) {
	prog, _ := parser.Parse("var a = 1;\nvar b = 2;\nfunction f() { return 3; }")
	Apply(prog, Options{Breakpoints: true}, &Namer{})
	out := printer.Print(prog)
	for _, call := range []string{"$bp(1)", "$bp(2)", "$bp(3)"} {
		if !strings.Contains(out, call) {
			t.Errorf("missing %s:\n%s", call, out)
		}
	}
}

func TestArgsFullRewrite(t *testing.T) {
	src := `function f(a, b) { return a + b; } console.log(f(1, 2));`
	want := runPlain(t, src)
	got := runDesugared(t, src, Options{ArgsFull: true})
	if got != want {
		t.Errorf("args-full changed semantics: want %q got %q", want, got)
	}
	prog, _ := parser.Parse(`function f(a) { return a; }`)
	Apply(prog, Options{ArgsFull: true}, &Namer{})
	out := printer.Print(prog)
	if !strings.Contains(out, "arguments[0]") {
		t.Errorf("formals should become arguments indexing:\n%s", out)
	}
}

func TestNamerFreshness(t *testing.T) {
	nm := &Namer{}
	seen := map[string]bool{}
	for i := 0; i < 100; i++ {
		n := nm.Fresh("$x")
		if seen[n] {
			t.Fatalf("duplicate fresh name %q", n)
		}
		seen[n] = true
	}
}
