package desugar

import "repro/internal/ast"

// builtinCtors are constructors whose `new` expressions survive desugaring:
// they are implemented natively, terminate trivially, and cannot capture a
// continuation (the paper notes builtins like `new Date()` cannot be
// eliminated, §3.2).
var builtinCtors = map[string]bool{
	"Array": true, "Error": true, "TypeError": true, "RangeError": true,
	"ReferenceError": true, "SyntaxError": true, "Date": true,
	"Object": true, "String": true, "Number": true, "Boolean": true,
}

// lowerCtors implements the "desugar" constructor strategy of §3.2 and
// Figure 2b: `new F(a, b)` becomes `$construct(F, [a, b])`, where
// $construct is a prelude function built on Object.create and apply. The
// alternative ("wrapped") strategy keeps new-expressions and handles them
// dynamically in the instrumentation.
func lowerCtors(body []ast.Stmt, nm *Namer) []ast.Stmt {
	r := &rewriter{}
	r.expr = func(e ast.Expr) ast.Expr {
		n, ok := e.(*ast.New)
		if !ok {
			return e
		}
		if id, isIdent := n.Callee.(*ast.Ident); isIdent && builtinCtors[id.Name] {
			return n
		}
		return &ast.Call{
			P:      n.P,
			Callee: ast.Id("$construct"),
			Args:   []ast.Expr{n.Callee, &ast.Array{Elems: n.Args}},
		}
	}
	return r.stmts(body)
}
