package desugar

import "repro/internal/ast"

// normalizeAssignments rewrites update expressions (++/--) and compound
// assignments (+=, <<=, ...) into plain `=` assignments, hoisting member
// bases and old values into fresh temporaries so every read and write
// happens exactly once and in source order. Later passes (implicit-call
// exposure, getter exposure, A-normalization) then only deal with plain
// reads, writes, and operators.
func normalizeAssignments(body []ast.Stmt, nm *Namer) []ast.Stmt {
	return normalizeScope(body, nm)
}

func normalizeScope(body []ast.Stmt, nm *Namer) []ast.Stmt {
	var temps []string
	r := &rewriter{skipFuncs: true}
	r.expr = func(e ast.Expr) ast.Expr {
		switch n := e.(type) {
		case *ast.Func:
			n.Body = normalizeScope(n.Body, nm)
			return n
		case *ast.Update:
			return lowerUpdate(n, nm, &temps)
		case *ast.Assign:
			if n.Op == "=" {
				return n
			}
			return lowerCompound(n, nm, &temps)
		}
		return e
	}
	out := r.stmts(body)
	if len(temps) > 0 {
		decl := &ast.VarDecl{}
		for _, t := range temps {
			decl.Decls = append(decl.Decls, ast.Declarator{Name: t})
		}
		out = append([]ast.Stmt{decl}, out...)
	}
	return out
}

func newTemp(nm *Namer, temps *[]string) string {
	t := nm.Fresh("$u")
	*temps = append(*temps, t)
	return t
}

// lowerUpdate rewrites ++/--. The children of n have already been rewritten.
func lowerUpdate(n *ast.Update, nm *Namer, temps *[]string) ast.Expr {
	op := "+"
	if n.Op == "--" {
		op = "-"
	}
	switch target := n.X.(type) {
	case *ast.Ident:
		if n.Prefix {
			// ++x  =>  x = +x + 1  (value: the new value)
			return ast.SetId(target.Name, ast.Bin(op, forceNumber(ast.Id(target.Name)), ast.Int(1)))
		}
		// x++  =>  ($u = +x, x = $u + 1, $u)
		u := newTemp(nm, temps)
		return &ast.Seq{P: n.P, Exprs: []ast.Expr{
			ast.SetId(u, forceNumber(ast.Id(target.Name))),
			ast.SetId(target.Name, ast.Bin(op, ast.Id(u), ast.Int(1))),
			ast.Id(u),
		}}
	case *ast.Member:
		base := newTemp(nm, temps)
		exprs := []ast.Expr{ast.SetId(base, target.X)}
		ref := func() *ast.Member { return &ast.Member{X: ast.Id(base), Name: target.Name} }
		if target.Computed {
			key := newTemp(nm, temps)
			exprs = append(exprs, ast.SetId(key, target.Index))
			ref = func() *ast.Member { return ast.Idx(ast.Id(base), ast.Id(key)) }
		}
		if n.Prefix {
			exprs = append(exprs, ast.SetTo(ref(), ast.Bin(op, forceNumber(ref()), ast.Int(1))))
		} else {
			old := newTemp(nm, temps)
			exprs = append(exprs,
				ast.SetId(old, forceNumber(ref())),
				ast.SetTo(ref(), ast.Bin(op, ast.Id(old), ast.Int(1))),
				ast.Id(old),
			)
		}
		return &ast.Seq{P: n.P, Exprs: exprs}
	}
	return n
}

// forceNumber wraps update-expression reads in unary plus: ++/-- numify
// their operand (`"4"++` yields 5, not "41"). Under the full-implicits
// sub-language the unary plus is itself desugared to an explicit conversion
// call, preserving the "arithmetic can run user code" behaviour of §4.1.
func forceNumber(e ast.Expr) ast.Expr { return &ast.Unary{Op: "+", X: e} }

// lowerCompound rewrites `target op= value` into a plain assignment.
func lowerCompound(n *ast.Assign, nm *Namer, temps *[]string) ast.Expr {
	binOp := n.Op[:len(n.Op)-1]
	switch target := n.Target.(type) {
	case *ast.Ident:
		return ast.SetId(target.Name, ast.Bin(binOp, ast.Id(target.Name), n.Value))
	case *ast.Member:
		base := newTemp(nm, temps)
		exprs := []ast.Expr{ast.SetId(base, target.X)}
		ref := func() *ast.Member { return &ast.Member{X: ast.Id(base), Name: target.Name} }
		if target.Computed {
			key := newTemp(nm, temps)
			exprs = append(exprs, ast.SetId(key, target.Index))
			ref = func() *ast.Member { return ast.Idx(ast.Id(base), ast.Id(key)) }
		}
		exprs = append(exprs, ast.SetTo(ref(), ast.Bin(binOp, ref(), n.Value)))
		return &ast.Seq{P: n.P, Exprs: exprs}
	}
	return n
}
