package desugar

import "repro/internal/ast"

// implicitFns maps operators that can trigger valueOf/toString on object
// operands to the prelude functions that perform the conversion explicitly
// (§4.1). The prelude defines these in plain JavaScript, so the implicit
// calls become ordinary instrumented applications that can capture
// continuations — which is exactly why full implicits are expensive
// (Figure 2a).
var implicitBinFns = map[string]string{
	"+":  "$add",
	"-":  "$sub",
	"*":  "$mul",
	"/":  "$div",
	"%":  "$mod",
	"<":  "$lt",
	"<=": "$le",
	">":  "$gt",
	">=": "$ge",
	"==": "$eq",
	"!=": "$ne",
}

// lowerImplicits rewrites arithmetic to explicit prelude calls. In
// ImplicitsPlus mode only + is rewritten (string concatenation may call
// toString — the JSweet/Java sub-language); in ImplicitsFull mode every
// conversion site is exposed.
func lowerImplicits(body []ast.Stmt, mode ImplicitsMode, nm *Namer) []ast.Stmt {
	r := &rewriter{}
	r.expr = func(e ast.Expr) ast.Expr {
		switch n := e.(type) {
		case *ast.Binary:
			fn, ok := implicitBinFns[n.Op]
			if !ok {
				return n
			}
			if mode == ImplicitsPlus && n.Op != "+" {
				return n
			}
			if literalOperand(n.L) && literalOperand(n.R) {
				return n // constants cannot be objects
			}
			return &ast.Call{P: n.P, Callee: ast.Id(fn), Args: []ast.Expr{n.L, n.R}}
		case *ast.Unary:
			if mode != ImplicitsFull {
				return n
			}
			switch n.Op {
			case "-":
				if literalOperand(n.X) {
					return n
				}
				return &ast.Call{P: n.P, Callee: ast.Id("$neg"), Args: []ast.Expr{n.X}}
			case "+":
				if literalOperand(n.X) {
					return n
				}
				return &ast.Call{P: n.P, Callee: ast.Id("$tonum"), Args: []ast.Expr{n.X}}
			}
			return n
		}
		return e
	}
	return r.stmts(body)
}

// literalOperand reports expressions that can never be objects, where the
// implicit-conversion rewrite would be pure overhead.
func literalOperand(e ast.Expr) bool {
	switch e.(type) {
	case *ast.Number, *ast.Str, *ast.Bool, *ast.Null:
		return true
	}
	return false
}
