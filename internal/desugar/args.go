package desugar

import "repro/internal/ast"

// lowerArgsFull implements the complete-arguments sub-language of §4.2:
// every reference to a formal parameter is rewritten to an index into the
// arguments object, so parameter/arguments aliasing behaves exactly as in
// sloppy-mode JavaScript even across continuation capture and restore (the
// whole arguments object travels in the reified frame). Only JavaScript
// itself needs this (Figure 5).
func lowerArgsFull(prog *ast.Program) {
	// Top level has no parameters; process every function.
	ast.Walk(prog, func(n ast.Node) bool {
		if fn, ok := n.(*ast.Func); ok && !fn.Arrow {
			rewriteParamsToArguments(fn)
		}
		return true
	})
}

func rewriteParamsToArguments(fn *ast.Func) {
	if len(fn.Params) == 0 {
		return
	}
	index := make(map[string]int, len(fn.Params))
	for i, p := range fn.Params {
		index[p] = i
	}
	nestedRewrites := false
	r := &rewriter{skipFuncs: true}
	r.expr = func(e ast.Expr) ast.Expr {
		switch n := e.(type) {
		case *ast.Ident:
			if i, ok := index[n.Name]; ok {
				return ast.Idx(ast.Id("arguments"), ast.Int(i))
			}
			return n
		case *ast.Func:
			// A nested function re-binds `arguments`, so references it makes
			// to the outer formals go through a $outerargs alias introduced
			// in this function's prologue.
			if rewriteFreeParams(n, index) {
				nestedRewrites = true
			}
			return n
		}
		return e
	}
	fn.Body = r.stmts(fn.Body)
	if nestedRewrites {
		fn.Body = append([]ast.Stmt{ast.Var("$outerargs", ast.Id("arguments"))}, fn.Body...)
	}
}

// rewriteFreeParams rewrites references to outer formals inside a nested
// function, skipping names the nested function rebinds. `arguments` inside
// the nested function refers to its own object, so outer-formal references
// cannot be expressed through it; they are rewritten to $outerargs[i], a
// binding introduced in the outer function prologue. It reports whether any
// rewrite occurred.
func rewriteFreeParams(fn *ast.Func, outer map[string]int) bool {
	shadowed := map[string]bool{"arguments": true}
	for _, p := range fn.Params {
		shadowed[p] = true
	}
	for _, name := range declaredVars(fn.Body) {
		shadowed[name] = true
	}
	rewrote := false
	r := &rewriter{skipFuncs: true}
	r.expr = func(e ast.Expr) ast.Expr {
		switch n := e.(type) {
		case *ast.Ident:
			if shadowed[n.Name] {
				return n
			}
			if i, ok := outer[n.Name]; ok {
				rewrote = true
				return ast.Idx(ast.Id("$outerargs"), ast.Int(i))
			}
			return n
		case *ast.Func:
			inner := make(map[string]int)
			for k, v := range outer {
				if !shadowed[k] {
					inner[k] = v
				}
			}
			if rewriteFreeParams(n, inner) {
				rewrote = true
			}
			return n
		}
		return e
	}
	fn.Body = r.stmts(fn.Body)
	return rewrote
}

// declaredVars lists var and function declarations in a body without
// entering nested functions.
func declaredVars(body []ast.Stmt) []string {
	var names []string
	var walk func(s ast.Stmt)
	walk = func(s ast.Stmt) {
		switch n := s.(type) {
		case *ast.VarDecl:
			for _, d := range n.Decls {
				names = append(names, d.Name)
			}
		case *ast.FuncDecl:
			names = append(names, n.Fn.Name)
		case *ast.Block:
			for _, st := range n.Body {
				walk(st)
			}
		case *ast.If:
			walk(n.Cons)
			if n.Alt != nil {
				walk(n.Alt)
			}
		case *ast.While:
			walk(n.Body)
		case *ast.DoWhile:
			walk(n.Body)
		case *ast.For:
			if n.Init != nil {
				walk(n.Init)
			}
			walk(n.Body)
		case *ast.ForIn:
			if n.Decl {
				names = append(names, n.Name)
			}
			walk(n.Body)
		case *ast.Labeled:
			walk(n.Body)
		case *ast.Switch:
			for _, c := range n.Cases {
				for _, st := range c.Body {
					walk(st)
				}
			}
		case *ast.Try:
			walk(n.Block)
			if n.Catch != nil {
				walk(n.Catch)
			}
			if n.Finally != nil {
				walk(n.Finally)
			}
		}
	}
	for _, s := range body {
		walk(s)
	}
	return names
}
