package desugar

import "repro/internal/ast"

// lowerArrows converts arrow functions into ordinary function expressions.
// Arrows differ in two ways: lexical `this` and no own `arguments`. The pass
// rewrites those references inside arrow bodies to $this/$args locals
// introduced in the nearest enclosing non-arrow scope.
//
// topLevel indicates body is the program top level (its `this` is
// undefined, but a $this binding is still introduced if needed so the
// rewritten code is closed).
func lowerArrows(body []ast.Stmt, nm *Namer, topLevel bool) []ast.Stmt {
	needThis, needArgs := false, false
	r := &rewriter{skipFuncs: true}
	r.expr = func(e ast.Expr) ast.Expr {
		fn, ok := e.(*ast.Func)
		if !ok {
			return e
		}
		if fn.Arrow {
			t, a := rewriteArrowRefs(fn)
			needThis = needThis || t
			needArgs = needArgs || a
			fn.Arrow = false
		}
		// Non-arrow (or just-converted) function: a fresh scope.
		fn.Body = lowerArrows(fn.Body, nm, false)
		return fn
	}
	out := r.stmts(body)
	var prologue []ast.Stmt
	if needThis {
		prologue = append(prologue, ast.Var("$this", &ast.This{}))
	}
	if needArgs && !topLevel {
		prologue = append(prologue, ast.Var("$args", ast.Id("arguments")))
	}
	if len(prologue) > 0 {
		out = append(prologue, out...)
	}
	return out
}

// rewriteArrowRefs rewrites this -> $this and arguments -> $args inside an
// arrow body, descending through nested arrows (same lexical this) but not
// into nested ordinary functions. It reports whether each rewrite occurred.
func rewriteArrowRefs(fn *ast.Func) (usedThis, usedArgs bool) {
	r := &rewriter{skipFuncs: true}
	r.expr = func(e ast.Expr) ast.Expr {
		switch n := e.(type) {
		case *ast.This:
			usedThis = true
			return &ast.Ident{P: n.P, Name: "$this"}
		case *ast.Ident:
			if n.Name == "arguments" {
				usedArgs = true
				return &ast.Ident{P: n.P, Name: "$args"}
			}
			return n
		case *ast.Func:
			if n.Arrow {
				t, a := rewriteArrowRefs(n)
				usedThis = usedThis || t
				usedArgs = usedArgs || a
				n.Arrow = false
			}
			// An ordinary nested function re-binds this/arguments; leave its
			// body for the enclosing lowerArrows recursion to process.
			return n
		}
		return e
	}
	fn.Body = r.stmts(fn.Body)
	return usedThis, usedArgs
}

// nameFunctions assigns fresh names to anonymous function expressions. The
// instrumentation's reenter thunks re-apply the enclosing function by name
// (Figure 3), so every function needs one.
func nameFunctions(prog *ast.Program, nm *Namer) {
	ast.Walk(prog, func(n ast.Node) bool {
		if fn, ok := n.(*ast.Func); ok && fn.Name == "" {
			fn.Name = nm.Fresh("$f")
		}
		return true
	})
}
