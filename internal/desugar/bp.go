package desugar

import "repro/internal/ast"

// insertBreakpoints inserts $bp(line) before every statement that has a
// known source position (§5.2: "it does this by instrumenting the program
// to invoke maySuspend before every statement"). The line numbers refer to
// the original source — the same role source maps play for Stopify — so an
// IDE can set breakpoints and single-step in user coordinates.
//
// This pass must run first, while every node still carries its original
// position.
func insertBreakpoints(body []ast.Stmt) []ast.Stmt {
	out := make([]ast.Stmt, 0, len(body)*2)
	for _, s := range body {
		if p := s.Position(); p.Known() {
			out = append(out, ast.ExprOf(ast.CallId("$bp", ast.Int(p.Line))))
		}
		out = append(out, bpStmt(s))
	}
	return out
}

func bpStmt(s ast.Stmt) ast.Stmt {
	switch n := s.(type) {
	case *ast.Block:
		n.Body = insertBreakpoints(n.Body)
		return n
	case *ast.If:
		n.Cons = bpNested(n.Cons)
		if n.Alt != nil {
			n.Alt = bpNested(n.Alt)
		}
		return n
	case *ast.While:
		n.Body = bpNested(n.Body)
		return n
	case *ast.DoWhile:
		n.Body = bpNested(n.Body)
		return n
	case *ast.For:
		n.Body = bpNested(n.Body)
		return n
	case *ast.ForIn:
		n.Body = bpNested(n.Body)
		return n
	case *ast.Labeled:
		n.Body = bpStmt(n.Body)
		return n
	case *ast.Switch:
		for i := range n.Cases {
			n.Cases[i].Body = insertBreakpoints(n.Cases[i].Body)
		}
		return n
	case *ast.Try:
		n.Block.Body = insertBreakpoints(n.Block.Body)
		if n.Catch != nil {
			n.Catch.Body = insertBreakpoints(n.Catch.Body)
		}
		if n.Finally != nil {
			n.Finally.Body = insertBreakpoints(n.Finally.Body)
		}
		return n
	case *ast.FuncDecl:
		n.Fn.Body = insertBreakpoints(n.Fn.Body)
		return n
	case *ast.VarDecl, *ast.ExprStmt, *ast.Return, *ast.Throw:
		bpExprs(s)
		return s
	default:
		return s
	}
}

// bpNested wraps a non-block body so a $bp call can precede it.
func bpNested(s ast.Stmt) ast.Stmt {
	if b, ok := s.(*ast.Block); ok {
		b.Body = insertBreakpoints(b.Body)
		return b
	}
	return ast.BlockOf(insertBreakpoints([]ast.Stmt{s})...)
}

// bpExprs instruments function literals inside expressions.
func bpExprs(s ast.Stmt) {
	ast.Walk(s, func(n ast.Node) bool {
		if fn, ok := n.(*ast.Func); ok {
			fn.Body = insertBreakpoints(fn.Body)
			return false
		}
		return true
	})
}
