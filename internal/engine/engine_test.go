package engine

import "testing"

func TestProfilesComplete(t *testing.T) {
	ps := Profiles()
	for _, name := range []string{"chrome", "edge", "firefox", "safari", "chromebook"} {
		p := ps[name]
		if p == nil {
			t.Fatalf("missing profile %q", name)
		}
		if p.Name != name {
			t.Errorf("profile %q has Name %q", name, p.Name)
		}
		if p.Speed < 1 || p.MaxStack <= 0 {
			t.Errorf("profile %q has nonsensical Speed/MaxStack: %+v", name, p)
		}
	}
}

// TestFigure11Asymmetries pins the cost relationships the paper's
// browser-specific results depend on.
func TestFigure11Asymmetries(t *testing.T) {
	chrome, edge := Chrome(), Edge()
	// Edge-like engines make exception handlers expensive (checked-return
	// wins there); Chrome-like engines make them cheap (exceptional wins).
	if edge.TryCost <= chrome.TryCost {
		t.Error("edge try/catch should be more expensive than chrome's")
	}
	// Edge makes Object.create expensive relative to `new` (dynamic
	// constructors win); Chrome the other way (desugaring wins).
	if !(edge.ObjectCreateCost > edge.NewCost) {
		t.Error("edge Object.create should cost more than new")
	}
	if !(chrome.ObjectCreateCost < chrome.NewCost) {
		t.Error("chrome Object.create should cost less than new")
	}
}

func TestChromeBookIsSlowChrome(t *testing.T) {
	cb, chrome := ChromeBook(), Chrome()
	if cb.Speed <= chrome.Speed {
		t.Error("chromebook should be slower")
	}
	if cb.TryCost != chrome.TryCost || cb.ObjectCreateCost != chrome.ObjectCreateCost {
		t.Error("chromebook should share chrome's cost structure")
	}
}

func TestShallowStacks(t *testing.T) {
	ps := Profiles()
	if ps["firefox"].MaxStack >= ps["chrome"].MaxStack {
		t.Error("the paper singles out Firefox's shallow stack (§5.2)")
	}
}

func TestUniformProfile(t *testing.T) {
	u := Uniform()
	if u.TryCost != u.NewCost || u.MaxStack < 10000 {
		t.Error("uniform profile should be flat and deep")
	}
}
