// Package engine models the performance-relevant differences between the
// browsers in the paper's evaluation (Figure 9/11). A Profile charges
// deterministic "work units" for the operations whose relative costs drive
// Stopify's browser-specific optimization choices: exception-handler entry
// (checked-return vs. exceptional continuations), `new` vs. Object.create
// (wrapped vs. desugared constructors), property access, calls, and
// allocation — plus a global speed factor and the engine's native stack
// limit.
//
// The absolute numbers are synthetic; what matters (and what Figure 2b and
// Figure 11 test) is the asymmetry: Edge-like engines make try/catch and
// Object.create expensive relative to plain checks and `new`, while
// Chrome-like engines make them cheap. See DESIGN.md §1.
package engine

// Profile describes one browser-like engine.
type Profile struct {
	Name string

	// Speed multiplies every charge; 1 is the fastest engine. It models a
	// slower device (the $200 ChromeBook) rather than a different JIT.
	Speed int

	// TryCost is charged when a try block is entered. Exceptional
	// continuations wrap every application in a handler, so this is the
	// dominant term for that strategy.
	TryCost int

	// BranchCost is charged when an if statement's test is evaluated. JIT
	// engines differ sharply here: Chrome-like engines enter try regions
	// for free but pay for the checked strategy's per-call branches, while
	// Edge-like engines have cheap branches and expensive handlers — the
	// asymmetry behind Figure 11.
	BranchCost int

	// ThrowCost is charged when an exception is thrown.
	ThrowCost int

	// CallCost is charged for every function application.
	CallCost int

	// NewCost is charged for a `new` expression over and above CallCost.
	NewCost int

	// ObjectCreateCost is charged for Object.create and object literal
	// allocation. The desugared constructor strategy replaces `new` with
	// Object.create, so NewCost vs. ObjectCreateCost decides Figure 2b.
	ObjectCreateCost int

	// PropCost is charged for member reads and writes.
	PropCost int

	// MaxStack is the engine's native call-stack limit in JavaScript
	// frames; exceeding it throws a RangeError, as browsers do. Firefox
	// and mobile browsers are notoriously shallow (§5.2).
	MaxStack int
}

// Profiles returns the five evaluation platforms of Figure 9. The map keys
// are the names used throughout the benchmark harness.
func Profiles() map[string]*Profile {
	return map[string]*Profile{
		"chrome":     Chrome(),
		"edge":       Edge(),
		"firefox":    Firefox(),
		"safari":     Safari(),
		"chromebook": ChromeBook(),
	}
}

// Chrome models a fast engine with cheap exception handlers and cheap
// Object.create: exceptional continuations and desugared constructors win
// (Figure 11).
func Chrome() *Profile {
	return &Profile{
		Name: "chrome", Speed: 1,
		TryCost: 1, BranchCost: 22, ThrowCost: 8, CallCost: 2, NewCost: 44,
		ObjectCreateCost: 20, PropCost: 1, MaxStack: 4000,
	}
}

// Edge models an engine with expensive exception handlers and expensive
// Object.create: checked-return continuations and dynamic (wrapped)
// constructors win (Figure 11).
func Edge() *Profile {
	return &Profile{
		Name: "edge", Speed: 2,
		TryCost: 28, BranchCost: 1, ThrowCost: 40, CallCost: 3, NewCost: 16,
		ObjectCreateCost: 70, PropCost: 2, MaxStack: 3000,
	}
}

// Firefox is slower than Chrome overall, with cheap handlers and a shallow
// stack (the paper singles out Firefox's stack depth, §5.2).
func Firefox() *Profile {
	return &Profile{
		Name: "firefox", Speed: 2,
		TryCost: 2, BranchCost: 18, ThrowCost: 12, CallCost: 2, NewCost: 40,
		ObjectCreateCost: 24, PropCost: 1, MaxStack: 1200,
	}
}

// Safari is the fastest platform in Figure 10, with cheap handlers.
func Safari() *Profile {
	return &Profile{
		Name: "safari", Speed: 1,
		TryCost: 1, BranchCost: 20, ThrowCost: 6, CallCost: 1, NewCost: 40,
		ObjectCreateCost: 16, PropCost: 1, MaxStack: 1500,
	}
}

// ChromeBook is Chrome on a slow device: identical cost structure, uniformly
// slower.
func ChromeBook() *Profile {
	p := Chrome()
	p.Name = "chromebook"
	p.Speed = 4
	p.MaxStack = 4000
	return p
}

// Uniform returns a neutral profile for unit tests: every operation costs
// the same small amount and the stack is deep.
func Uniform() *Profile {
	return &Profile{
		Name: "uniform", Speed: 1,
		TryCost: 1, BranchCost: 1, ThrowCost: 1, CallCost: 1, NewCost: 1,
		ObjectCreateCost: 1, PropCost: 1, MaxStack: 100000,
	}
}
