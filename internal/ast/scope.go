package ast

// This file holds the static-scope annotations written by internal/resolve
// and consumed by the interpreter: packed (hops, slot) coordinates on
// identifier references and per-function frame layouts. The zero value of
// every annotation means "unresolved", so trees that never pass through the
// resolver (hand-built tests, eval'd fragments under a raw host) keep their
// dynamic name-lookup semantics.

// Ref is a resolved variable coordinate: the number of environment frames to
// hop outward, and the slot index within the target frame. It is packed into
// a uint32 — bits 16..31 hold hops, bits 0..15 hold slot+1 — so that the
// zero Ref means "unresolved".
type Ref uint32

// RefGlobal marks a reference the resolver proved unbound in every
// enclosing static scope. Only dynamically created bindings — the global
// frame, or a runtime define into a frame's overflow map — can supply it,
// so the interpreter's lookup may skip every static slot layout on the way
// out.
const RefGlobal Ref = 1 << 31

// MakeRef packs a coordinate. ok is false when hops or slot exceed the
// packing range (hops is capped below bit 31 so no coordinate collides
// with RefGlobal); callers leave such references unresolved, which is
// always safe (the dynamic path finds the binding by name).
func MakeRef(hops, slot int) (Ref, bool) {
	if hops < 0 || hops > 0x7fff || slot < 0 || slot >= 0xffff {
		return 0, false
	}
	return Ref(uint32(hops)<<16 | uint32(slot) + 1), true
}

// Valid reports whether the reference names a (hops, slot) coordinate.
func (r Ref) Valid() bool { return r != 0 && r != RefGlobal }

// Global reports whether the reference was proved to bypass all static
// scopes.
func (r Ref) Global() bool { return r == RefGlobal }

// Hops returns the number of parent-frame hops.
func (r Ref) Hops() int { return int(r >> 16) }

// Slot returns the slot index within the target frame.
func (r Ref) Slot() int { return int(r&0xffff) - 1 }

// ScopeInfo is the slot layout of one frame, computed statically. Slot i of
// the frame binds Names[i]; the remaining fields tell the interpreter where
// to store the implicit bindings it materializes on function entry. A slot
// of -1 means the binding does not exist in this frame (arrow functions) or
// is never referenced and need not be materialized (ArgumentsSlot).
type ScopeInfo struct {
	Names []string

	// Index maps each name in Names to its slot, for the interpreter's
	// dynamic by-name fallback (unresolved references probing a slot
	// frame). Nil only on layouts that predate resolution.
	Index map[string]int

	// ParamSlots maps parameter position to frame slot.
	ParamSlots []int

	// SelfSlot binds a named function's own name (the named-function-
	// expression self-reference).
	SelfSlot int

	ThisSlot      int
	NewTargetSlot int

	// ArgumentsSlot is -1 when the function body never references
	// `arguments`, which lets the interpreter skip building the arguments
	// object entirely.
	ArgumentsSlot int

	// FnDecls lists hoisted function declarations and the slots their
	// function objects are stored into on entry, in source order.
	FnDecls []FnSlot
}

// FnSlot pairs a hoisted function declaration with its frame slot.
type FnSlot struct {
	Fn   *Func
	Slot int
}

// HoistedDecls collects the var names (including for-in declarations) and
// function declarations of one function body, without descending into
// nested functions — JavaScript's var/function hoisting rule. The resolver
// and the interpreter's dynamic fallback share this scan so their scope
// models cannot drift.
func HoistedDecls(body []Stmt) (vars []string, fns []*Func) {
	var walkStmt func(s Stmt)
	walkStmt = func(s Stmt) {
		switch n := s.(type) {
		case *VarDecl:
			for _, d := range n.Decls {
				vars = append(vars, d.Name)
			}
		case *FuncDecl:
			fns = append(fns, n.Fn)
		case *Block:
			for _, st := range n.Body {
				walkStmt(st)
			}
		case *If:
			walkStmt(n.Cons)
			if n.Alt != nil {
				walkStmt(n.Alt)
			}
		case *While:
			walkStmt(n.Body)
		case *DoWhile:
			walkStmt(n.Body)
		case *For:
			if n.Init != nil {
				walkStmt(n.Init)
			}
			walkStmt(n.Body)
		case *ForIn:
			if n.Decl {
				vars = append(vars, n.Name)
			}
			walkStmt(n.Body)
		case *Labeled:
			walkStmt(n.Body)
		case *Switch:
			for _, c := range n.Cases {
				for _, st := range c.Body {
					walkStmt(st)
				}
			}
		case *Try:
			walkStmt(n.Block)
			if n.Catch != nil {
				walkStmt(n.Catch)
			}
			if n.Finally != nil {
				walkStmt(n.Finally)
			}
		}
	}
	for _, s := range body {
		walkStmt(s)
	}
	return vars, fns
}
