package ast

import (
	"testing"
)

func sampleProgram() *Program {
	return &Program{Body: []Stmt{
		Var("x", Int(1)),
		&FuncDecl{Fn: Fn([]string{"a", "b"},
			IfThen(Bin("<", Id("a"), Id("b")), Ret(Id("a"))),
			Ret(Id("b")),
		)},
		ExprOf(CallId("f", Id("x"), Int(2))),
		&While{Test: Bin("<", Id("x"), Int(10)), Body: BlockOf(
			ExprOf(SetId("x", Bin("+", Id("x"), Int(1)))),
		)},
		&Try{
			Block:      BlockOf(&Throw{Arg: Strlit("e")}),
			CatchParam: "err",
			Catch:      BlockOf(ExprOf(CallId("log", Id("err")))),
			Finally:    BlockOf(&Empty{}),
		},
		&Labeled{Label: "L", Body: BlockOf(&Break{Label: "L"})},
		&Switch{Disc: Id("x"), Cases: []Case{
			{Test: Int(1), Body: []Stmt{&Break{}}},
			{Test: nil, Body: []Stmt{&Continue{}}},
		}},
		&ForIn{Decl: true, Name: "k", Obj: &Object{Props: []Property{
			{Kind: PropInit, Key: "a", Value: Int(1)},
			{Kind: PropGet, Key: "g", Value: Fn(nil, Ret(Int(2)))},
		}}, Body: &Empty{}},
		&For{Init: Var("i", Int(0)), Test: Bin("<", Id("i"), Int(3)),
			Update: &Update{Op: "++", X: Id("i")}, Body: &Empty{}},
		&DoWhile{Body: &Empty{}, Test: Boollit(false)},
		ExprOf(&Cond{Test: Boollit(true), Cons: &Seq{Exprs: []Expr{Int(1), Int(2)}},
			Alt: &Unary{Op: "-", X: &Member{X: NewN(Id("D")), Name: "x"}}}),
		ExprOf(&Logical{Op: "&&", L: &This{}, R: &NewTarget{}}),
		ExprOf(Idx(&Array{Elems: []Expr{&Null{}, Boollit(true)}}, Int(0))),
	}}
}

func TestWalkVisitsEverything(t *testing.T) {
	prog := sampleProgram()
	count := 0
	Walk(prog, func(n Node) bool {
		count++
		return true
	})
	if count < 60 {
		t.Errorf("walk visited only %d nodes", count)
	}
}

func TestWalkPrune(t *testing.T) {
	prog := sampleProgram()
	full, pruned := 0, 0
	Walk(prog, func(n Node) bool { full++; return true })
	Walk(prog, func(n Node) bool {
		pruned++
		_, isFn := n.(*Func)
		return !isFn
	})
	if pruned >= full {
		t.Errorf("pruning should visit fewer nodes: %d vs %d", pruned, full)
	}
}

func TestWalkToleratesNilFields(t *testing.T) {
	// Optional fields passed as typed nils must not crash the walker.
	Walk(&If{Test: Id("x"), Cons: &Empty{}}, func(Node) bool { return true })
	Walk(&Return{}, func(Node) bool { return true })
	var b *Block
	Walk(b, func(Node) bool { return true })
}

// TestCloneIsDeep verifies that mutating a clone does not affect the
// original anywhere in the tree.
func TestCloneIsDeep(t *testing.T) {
	orig := sampleProgram()
	clone := CloneProgram(orig)

	// Rename every identifier in the clone.
	Walk(clone, func(n Node) bool {
		if id, ok := n.(*Ident); ok {
			id.Name = "MUTATED"
		}
		return true
	})
	Walk(orig, func(n Node) bool {
		if id, ok := n.(*Ident); ok && id.Name == "MUTATED" {
			t.Fatal("clone shares identifier nodes with original")
		}
		return true
	})
}

func TestCloneStructurallyIdentical(t *testing.T) {
	orig := sampleProgram()
	clone := CloneProgram(orig)
	var origCount, cloneCount int
	Walk(orig, func(Node) bool { origCount++; return true })
	Walk(clone, func(Node) bool { cloneCount++; return true })
	if origCount != cloneCount {
		t.Errorf("clone has %d nodes, original %d", cloneCount, origCount)
	}
}

func TestPositions(t *testing.T) {
	p := Pos{Line: 3, Col: 7}
	if !p.Known() {
		t.Error("positive position should be known")
	}
	if (Pos{}).Known() {
		t.Error("zero position should be unknown")
	}
	n := &Ident{P: p, Name: "x"}
	if n.Position() != p {
		t.Error("Position accessor")
	}
}

func TestBuilders(t *testing.T) {
	if Id("a").Name != "a" {
		t.Error("Id")
	}
	if Num(1.5).Value != 1.5 || Int(3).Value != 3 {
		t.Error("Num/Int")
	}
	call := CallId("f", Int(1))
	if call.Callee.(*Ident).Name != "f" || len(call.Args) != 1 {
		t.Error("CallId")
	}
	m := Dot(Id("o"), "p")
	if m.Computed || m.Name != "p" {
		t.Error("Dot")
	}
	ix := Idx(Id("a"), Int(0))
	if !ix.Computed {
		t.Error("Idx")
	}
	if len(BlockOf(&Empty{}, &Empty{}).Body) != 2 {
		t.Error("BlockOf")
	}
	arrow := ArrowFn([]string{"x"}, Ret(Id("x")))
	if !arrow.Arrow {
		t.Error("ArrowFn")
	}
}
