package ast

// CloneProgram returns a deep copy of p. Compiler pipelines mutate trees in
// place, so callers that reuse a parsed program across configurations clone
// it first. Clones come out unresolved: scope annotations (Refs, ScopeInfo
// layouts) are stripped rather than shared, because a layout's FnDecls
// point at the original tree's nodes — the clone must be re-resolved after
// whatever rewriting it was cloned for.
func CloneProgram(p *Program) *Program {
	if p == nil {
		return nil
	}
	return &Program{Pos: p.Pos, Body: cloneStmts(p.Body)}
}

// CloneExpr returns a deep copy of an expression.
func CloneExpr(e Expr) Expr {
	switch n := e.(type) {
	case nil:
		return nil
	case *Ident:
		return &Ident{P: n.P, Name: n.Name}
	case *Number:
		c := *n
		return &c
	case *Str:
		c := *n
		return &c
	case *Bool:
		c := *n
		return &c
	case *Null:
		c := *n
		return &c
	case *This:
		return &This{P: n.P}
	case *NewTarget:
		return &NewTarget{P: n.P}
	case *Array:
		elems := make([]Expr, len(n.Elems))
		for i, el := range n.Elems {
			elems[i] = CloneExpr(el)
		}
		return &Array{P: n.P, Elems: elems}
	case *Object:
		props := make([]Property, len(n.Props))
		for i, p := range n.Props {
			props[i] = Property{Kind: p.Kind, Key: p.Key, Value: CloneExpr(p.Value)}
		}
		return &Object{P: n.P, Props: props}
	case *Func:
		params := append([]string(nil), n.Params...)
		return &Func{P: n.P, Name: n.Name, Params: params, Body: cloneStmts(n.Body), Arrow: n.Arrow}
	case *Unary:
		return &Unary{P: n.P, Op: n.Op, X: CloneExpr(n.X)}
	case *Update:
		return &Update{P: n.P, Op: n.Op, Prefix: n.Prefix, X: CloneExpr(n.X)}
	case *Binary:
		return &Binary{P: n.P, Op: n.Op, L: CloneExpr(n.L), R: CloneExpr(n.R)}
	case *Logical:
		return &Logical{P: n.P, Op: n.Op, L: CloneExpr(n.L), R: CloneExpr(n.R)}
	case *Assign:
		return &Assign{P: n.P, Op: n.Op, Target: CloneExpr(n.Target), Value: CloneExpr(n.Value)}
	case *Cond:
		return &Cond{P: n.P, Test: CloneExpr(n.Test), Cons: CloneExpr(n.Cons), Alt: CloneExpr(n.Alt)}
	case *Call:
		args := make([]Expr, len(n.Args))
		for i, a := range n.Args {
			args[i] = CloneExpr(a)
		}
		return &Call{P: n.P, Callee: CloneExpr(n.Callee), Args: args, Label: n.Label}
	case *New:
		args := make([]Expr, len(n.Args))
		for i, a := range n.Args {
			args[i] = CloneExpr(a)
		}
		return &New{P: n.P, Callee: CloneExpr(n.Callee), Args: args, Label: n.Label}
	case *Member:
		m := &Member{P: n.P, X: CloneExpr(n.X), Name: n.Name, Computed: n.Computed}
		if n.Computed {
			m.Index = CloneExpr(n.Index)
		}
		return m
	case *Seq:
		exprs := make([]Expr, len(n.Exprs))
		for i, x := range n.Exprs {
			exprs[i] = CloneExpr(x)
		}
		return &Seq{P: n.P, Exprs: exprs}
	}
	panic("ast: CloneExpr: unknown expression")
}

// CloneStmt returns a deep copy of a statement.
func CloneStmt(s Stmt) Stmt {
	switch n := s.(type) {
	case nil:
		return nil
	case *VarDecl:
		decls := make([]Declarator, len(n.Decls))
		for i, d := range n.Decls {
			decls[i] = Declarator{Name: d.Name, Init: CloneExpr(d.Init)}
		}
		return &VarDecl{P: n.P, Decls: decls}
	case *ExprStmt:
		return &ExprStmt{P: n.P, X: CloneExpr(n.X)}
	case *Block:
		return &Block{P: n.P, Body: cloneStmts(n.Body)}
	case *If:
		return &If{P: n.P, Test: CloneExpr(n.Test), Cons: CloneStmt(n.Cons), Alt: CloneStmt(n.Alt)}
	case *While:
		return &While{P: n.P, Test: CloneExpr(n.Test), Body: CloneStmt(n.Body)}
	case *DoWhile:
		return &DoWhile{P: n.P, Body: CloneStmt(n.Body), Test: CloneExpr(n.Test)}
	case *For:
		return &For{P: n.P, Init: CloneStmt(n.Init), Test: CloneExpr(n.Test), Update: CloneExpr(n.Update), Body: CloneStmt(n.Body)}
	case *ForIn:
		return &ForIn{P: n.P, Decl: n.Decl, Name: n.Name, Obj: CloneExpr(n.Obj), Body: CloneStmt(n.Body)}
	case *Return:
		return &Return{P: n.P, Arg: CloneExpr(n.Arg)}
	case *Break:
		c := *n
		return &c
	case *Continue:
		c := *n
		return &c
	case *Labeled:
		return &Labeled{P: n.P, Label: n.Label, Body: CloneStmt(n.Body)}
	case *Switch:
		cases := make([]Case, len(n.Cases))
		for i, c := range n.Cases {
			cases[i] = Case{Test: CloneExpr(c.Test), Body: cloneStmts(c.Body)}
		}
		return &Switch{P: n.P, Disc: CloneExpr(n.Disc), Cases: cases}
	case *Throw:
		return &Throw{P: n.P, Arg: CloneExpr(n.Arg)}
	case *Try:
		t := &Try{P: n.P, CatchParam: n.CatchParam}
		if n.Block != nil {
			t.Block = CloneStmt(n.Block).(*Block)
		}
		if n.Catch != nil {
			t.Catch = CloneStmt(n.Catch).(*Block)
		}
		if n.Finally != nil {
			t.Finally = CloneStmt(n.Finally).(*Block)
		}
		return t
	case *FuncDecl:
		return &FuncDecl{P: n.P, Fn: CloneExpr(n.Fn).(*Func)}
	case *Empty:
		c := *n
		return &c
	}
	panic("ast: CloneStmt: unknown statement")
}

func cloneStmts(body []Stmt) []Stmt {
	out := make([]Stmt, len(body))
	for i, s := range body {
		out[i] = CloneStmt(s)
	}
	return out
}
