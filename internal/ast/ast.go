// Package ast defines the abstract syntax tree for the JavaScript subset
// understood by this repository: the sub-language that compilers targeting
// the web actually emit (ES5 plus arrow functions and new.target), which is
// exactly the fragment Stopify instruments.
//
// Every node records the source position of its first token so that
// downstream tools (breakpoints, single-stepping, error messages) can map
// instrumented code back to the original program, playing the role of the
// source maps described in §5.2 of the paper.
package ast

// Pos is a source position. Line and Col are 1-based; the zero Pos means
// "no position" (synthesized code).
type Pos struct {
	Line int
	Col  int
}

// Known reports whether the position refers to real source text.
func (p Pos) Known() bool { return p.Line > 0 }

// Node is implemented by every AST node.
type Node interface {
	Position() Pos
}

// Expr is implemented by expression nodes.
type Expr interface {
	Node
	exprNode()
}

// Stmt is implemented by statement nodes.
type Stmt interface {
	Node
	stmtNode()
}

// Program is a complete source file: a list of top-level statements.
type Program struct {
	Pos  Pos
	Body []Stmt
}

func (p *Program) Position() Pos { return p.Pos }

// ---------------------------------------------------------------------------
// Expressions
// ---------------------------------------------------------------------------

// Ident is a variable reference. Ref, when valid, is the static (hops,
// slot) coordinate assigned by internal/resolve; the zero Ref means the
// reference is resolved dynamically by name.
type Ident struct {
	P    Pos
	Name string
	Ref  Ref

	// Site is the inline-cache site ID assigned by internal/resolve to
	// proved-global references, indexing the interpreter's global-binding
	// cell cache; 0 means no cache.
	Site uint32
}

// Number is a numeric literal. JavaScript numbers are IEEE-754 doubles.
// There is no pre-boxed annotation anymore: the interpreter's tagged Value
// representation carries literals unboxed, so evaluating one never
// allocates regardless of the bit pattern.
type Number struct {
	P     Pos
	Value float64
}

// Str is a string literal. As with Number, the tagged Value representation
// made the historical pre-boxed annotation redundant — a string Value is a
// (pointer, length) pair aliasing this node's Value field.
type Str struct {
	P     Pos
	Value string
}

// Bool is a boolean literal.
type Bool struct {
	P     Pos
	Value bool
}

// Null is the null literal.
type Null struct {
	P Pos
}

// This is the `this` expression. Ref is the resolved coordinate of the
// enclosing non-arrow function's `this` binding, when known statically.
type This struct {
	P   Pos
	Ref Ref
}

// NewTarget is the ES6 `new.target` meta-property, which Stopify uses to
// distinguish constructor invocations from plain calls (§3.2). Ref is the
// resolved coordinate of the binding, when known statically.
type NewTarget struct {
	P   Pos
	Ref Ref
}

// Array is an array literal.
type Array struct {
	P     Pos
	Elems []Expr
}

// PropKind distinguishes ordinary properties from accessors in object
// literals.
type PropKind int

// Property kinds.
const (
	PropInit PropKind = iota // key: value
	PropGet                  // get key() { ... }
	PropSet                  // set key(v) { ... }
)

// Property is a single entry of an object literal.
type Property struct {
	Kind  PropKind
	Key   string
	Value Expr // for PropGet/PropSet this is a *Func
}

// Object is an object literal.
type Object struct {
	P     Pos
	Props []Property
}

// Func is a function expression, function declaration body, or arrow
// function. Arrow functions have lexical `this` and no `arguments` object.
type Func struct {
	P      Pos
	Name   string // "" for anonymous
	Params []string
	Body   []Stmt
	Arrow  bool

	// Scope is the frame layout computed by internal/resolve. Nil means the
	// function was never resolved and runs on dynamic map frames.
	Scope *ScopeInfo
}

// Unary is a prefix unary operator: ! - + ~ typeof void delete.
type Unary struct {
	P  Pos
	Op string
	X  Expr
}

// Update is ++ or -- in prefix or postfix position.
type Update struct {
	P      Pos
	Op     string // "++" or "--"
	Prefix bool
	X      Expr
}

// Binary is a binary operator, including instanceof and in.
type Binary struct {
	P    Pos
	Op   string
	L, R Expr
}

// Logical is && or || (short-circuiting, so distinct from Binary).
type Logical struct {
	P    Pos
	Op   string // "&&" or "||"
	L, R Expr
}

// Assign is an assignment, possibly compound (+=, -=, ...). Target is an
// *Ident or a *Member.
type Assign struct {
	P      Pos
	Op     string // "=", "+=", ...
	Target Expr
	Value  Expr
}

// Cond is the ternary operator test ? cons : alt.
type Cond struct {
	P    Pos
	Test Expr
	Cons Expr
	Alt  Expr
}

// Call is a function application. Label is assigned by the instrumentation
// pass (§3.1 step 3): every non-tail application receives a unique positive
// label within its enclosing function; 0 means unlabeled.
type Call struct {
	P      Pos
	Callee Expr
	Args   []Expr
	Label  int
}

// New is a constructor invocation `new Callee(args)`.
type New struct {
	P      Pos
	Callee Expr
	Args   []Expr
	Label  int
}

// Member is a property access, `X.Name` or `X[Index]`.
type Member struct {
	P        Pos
	X        Expr
	Name     string // when !Computed
	Index    Expr   // when Computed
	Computed bool

	// Site is the inline-cache site ID assigned by internal/resolve to
	// non-computed accesses, indexing the interpreter's property caches;
	// 0 means no cache. Like Ref, Site is dropped by CloneExpr — cloning
	// happens before resolution, which assigns fresh IDs to the clone.
	Site uint32
}

// Seq is the comma operator.
type Seq struct {
	P     Pos
	Exprs []Expr
}

func (n *Ident) Position() Pos     { return n.P }
func (n *Number) Position() Pos    { return n.P }
func (n *Str) Position() Pos       { return n.P }
func (n *Bool) Position() Pos      { return n.P }
func (n *Null) Position() Pos      { return n.P }
func (n *This) Position() Pos      { return n.P }
func (n *NewTarget) Position() Pos { return n.P }
func (n *Array) Position() Pos     { return n.P }
func (n *Object) Position() Pos    { return n.P }
func (n *Func) Position() Pos      { return n.P }
func (n *Unary) Position() Pos     { return n.P }
func (n *Update) Position() Pos    { return n.P }
func (n *Binary) Position() Pos    { return n.P }
func (n *Logical) Position() Pos   { return n.P }
func (n *Assign) Position() Pos    { return n.P }
func (n *Cond) Position() Pos      { return n.P }
func (n *Call) Position() Pos      { return n.P }
func (n *New) Position() Pos       { return n.P }
func (n *Member) Position() Pos    { return n.P }
func (n *Seq) Position() Pos       { return n.P }

func (*Ident) exprNode()     {}
func (*Number) exprNode()    {}
func (*Str) exprNode()       {}
func (*Bool) exprNode()      {}
func (*Null) exprNode()      {}
func (*This) exprNode()      {}
func (*NewTarget) exprNode() {}
func (*Array) exprNode()     {}
func (*Object) exprNode()    {}
func (*Func) exprNode()      {}
func (*Unary) exprNode()     {}
func (*Update) exprNode()    {}
func (*Binary) exprNode()    {}
func (*Logical) exprNode()   {}
func (*Assign) exprNode()    {}
func (*Cond) exprNode()      {}
func (*Call) exprNode()      {}
func (*New) exprNode()       {}
func (*Member) exprNode()    {}
func (*Seq) exprNode()       {}

// ---------------------------------------------------------------------------
// Statements
// ---------------------------------------------------------------------------

// Declarator is a single name in a var statement. Ref is the resolved
// coordinate of the hoisted binding the initializer assigns to.
type Declarator struct {
	Name string
	Init Expr // may be nil
	Ref  Ref
}

// VarDecl is a `var` declaration list. The parser normalizes let/const to
// var after renaming, so there is a single declaration kind.
type VarDecl struct {
	P     Pos
	Decls []Declarator
}

// ExprStmt is an expression used as a statement.
type ExprStmt struct {
	P Pos
	X Expr
}

// Block is a braced statement list.
type Block struct {
	P    Pos
	Body []Stmt
}

// If is a conditional statement. Alt may be nil.
type If struct {
	P    Pos
	Test Expr
	Cons Stmt
	Alt  Stmt
}

// While is a while loop.
type While struct {
	P    Pos
	Test Expr
	Body Stmt
}

// DoWhile is a do/while loop.
type DoWhile struct {
	P    Pos
	Body Stmt
	Test Expr
}

// For is a C-style for loop. Init is either a *VarDecl, an *ExprStmt, or
// nil; Test and Update may be nil.
type For struct {
	P      Pos
	Init   Stmt
	Test   Expr
	Update Expr
	Body   Stmt
}

// ForIn is a for-in loop over enumerable property names. Ref is the
// resolved coordinate of the loop variable's binding.
type ForIn struct {
	P    Pos
	Decl bool // true for `for (var k in o)`
	Name string
	Obj  Expr
	Body Stmt
	Ref  Ref
}

// Return is a return statement; Arg may be nil.
type Return struct {
	P   Pos
	Arg Expr
}

// Break exits a loop, switch, or labeled statement.
type Break struct {
	P     Pos
	Label string // "" for unlabeled
}

// Continue continues a loop.
type Continue struct {
	P     Pos
	Label string
}

// Labeled is `Label: Body`.
type Labeled struct {
	P     Pos
	Label string
	Body  Stmt
}

// Case is a switch case; Test == nil marks the default clause.
type Case struct {
	Test Expr
	Body []Stmt
}

// Switch is a switch statement with fall-through semantics.
type Switch struct {
	P     Pos
	Disc  Expr
	Cases []Case
}

// Throw raises an exception.
type Throw struct {
	P   Pos
	Arg Expr
}

// Try is try/catch/finally. Catch may be nil (then Finally is non-nil) and
// vice versa.
type Try struct {
	P          Pos
	Block      *Block
	CatchParam string
	Catch      *Block
	Finally    *Block

	// CatchScope is the one-slot frame layout for the catch clause,
	// computed by internal/resolve; nil means a dynamic catch frame.
	CatchScope *ScopeInfo
}

// FuncDecl is a hoisted function declaration.
type FuncDecl struct {
	P  Pos
	Fn *Func
}

// Empty is a lone semicolon.
type Empty struct {
	P Pos
}

func (n *VarDecl) Position() Pos  { return n.P }
func (n *ExprStmt) Position() Pos { return n.P }
func (n *Block) Position() Pos    { return n.P }
func (n *If) Position() Pos       { return n.P }
func (n *While) Position() Pos    { return n.P }
func (n *DoWhile) Position() Pos  { return n.P }
func (n *For) Position() Pos      { return n.P }
func (n *ForIn) Position() Pos    { return n.P }
func (n *Return) Position() Pos   { return n.P }
func (n *Break) Position() Pos    { return n.P }
func (n *Continue) Position() Pos { return n.P }
func (n *Labeled) Position() Pos  { return n.P }
func (n *Switch) Position() Pos   { return n.P }
func (n *Throw) Position() Pos    { return n.P }
func (n *Try) Position() Pos      { return n.P }
func (n *FuncDecl) Position() Pos { return n.P }
func (n *Empty) Position() Pos    { return n.P }

func (*VarDecl) stmtNode()  {}
func (*ExprStmt) stmtNode() {}
func (*Block) stmtNode()    {}
func (*If) stmtNode()       {}
func (*While) stmtNode()    {}
func (*DoWhile) stmtNode()  {}
func (*For) stmtNode()      {}
func (*ForIn) stmtNode()    {}
func (*Return) stmtNode()   {}
func (*Break) stmtNode()    {}
func (*Continue) stmtNode() {}
func (*Labeled) stmtNode()  {}
func (*Switch) stmtNode()   {}
func (*Throw) stmtNode()    {}
func (*Try) stmtNode()      {}
func (*FuncDecl) stmtNode() {}
func (*Empty) stmtNode()    {}
