package ast

// Walk calls fn for node and every descendant in depth-first pre-order. If
// fn returns false for a node, its children are not visited. Walk tolerates
// nil nodes so callers can pass optional fields directly.
func Walk(node Node, fn func(Node) bool) {
	if node == nil || isNilNode(node) {
		return
	}
	if !fn(node) {
		return
	}
	switch n := node.(type) {
	case *Program:
		for _, s := range n.Body {
			Walk(s, fn)
		}
	case *Array:
		for _, e := range n.Elems {
			Walk(e, fn)
		}
	case *Object:
		for _, p := range n.Props {
			Walk(p.Value, fn)
		}
	case *Func:
		for _, s := range n.Body {
			Walk(s, fn)
		}
	case *Unary:
		Walk(n.X, fn)
	case *Update:
		Walk(n.X, fn)
	case *Binary:
		Walk(n.L, fn)
		Walk(n.R, fn)
	case *Logical:
		Walk(n.L, fn)
		Walk(n.R, fn)
	case *Assign:
		Walk(n.Target, fn)
		Walk(n.Value, fn)
	case *Cond:
		Walk(n.Test, fn)
		Walk(n.Cons, fn)
		Walk(n.Alt, fn)
	case *Call:
		Walk(n.Callee, fn)
		for _, a := range n.Args {
			Walk(a, fn)
		}
	case *New:
		Walk(n.Callee, fn)
		for _, a := range n.Args {
			Walk(a, fn)
		}
	case *Member:
		Walk(n.X, fn)
		if n.Computed {
			Walk(n.Index, fn)
		}
	case *Seq:
		for _, e := range n.Exprs {
			Walk(e, fn)
		}
	case *VarDecl:
		for _, d := range n.Decls {
			Walk(d.Init, fn)
		}
	case *ExprStmt:
		Walk(n.X, fn)
	case *Block:
		for _, s := range n.Body {
			Walk(s, fn)
		}
	case *If:
		Walk(n.Test, fn)
		Walk(n.Cons, fn)
		Walk(n.Alt, fn)
	case *While:
		Walk(n.Test, fn)
		Walk(n.Body, fn)
	case *DoWhile:
		Walk(n.Body, fn)
		Walk(n.Test, fn)
	case *For:
		Walk(n.Init, fn)
		Walk(n.Test, fn)
		Walk(n.Update, fn)
		Walk(n.Body, fn)
	case *ForIn:
		Walk(n.Obj, fn)
		Walk(n.Body, fn)
	case *Return:
		Walk(n.Arg, fn)
	case *Labeled:
		Walk(n.Body, fn)
	case *Switch:
		Walk(n.Disc, fn)
		for _, c := range n.Cases {
			Walk(c.Test, fn)
			for _, s := range c.Body {
				Walk(s, fn)
			}
		}
	case *Throw:
		Walk(n.Arg, fn)
	case *Try:
		Walk(n.Block, fn)
		Walk(n.Catch, fn)
		Walk(n.Finally, fn)
	case *FuncDecl:
		Walk(n.Fn, fn)
	}
}

// isNilNode reports whether a non-nil interface holds a nil pointer, which
// happens when optional typed fields (e.g. a nil *Block) are passed as Node.
func isNilNode(n Node) bool {
	switch v := n.(type) {
	case *Program:
		return v == nil
	case *Ident:
		return v == nil
	case *Number:
		return v == nil
	case *Str:
		return v == nil
	case *Bool:
		return v == nil
	case *Null:
		return v == nil
	case *This:
		return v == nil
	case *NewTarget:
		return v == nil
	case *Array:
		return v == nil
	case *Object:
		return v == nil
	case *Func:
		return v == nil
	case *Unary:
		return v == nil
	case *Update:
		return v == nil
	case *Binary:
		return v == nil
	case *Logical:
		return v == nil
	case *Assign:
		return v == nil
	case *Cond:
		return v == nil
	case *Call:
		return v == nil
	case *New:
		return v == nil
	case *Member:
		return v == nil
	case *Seq:
		return v == nil
	case *VarDecl:
		return v == nil
	case *ExprStmt:
		return v == nil
	case *Block:
		return v == nil
	case *If:
		return v == nil
	case *While:
		return v == nil
	case *DoWhile:
		return v == nil
	case *For:
		return v == nil
	case *ForIn:
		return v == nil
	case *Return:
		return v == nil
	case *Break:
		return v == nil
	case *Continue:
		return v == nil
	case *Labeled:
		return v == nil
	case *Switch:
		return v == nil
	case *Throw:
		return v == nil
	case *Try:
		return v == nil
	case *FuncDecl:
		return v == nil
	case *Empty:
		return v == nil
	}
	return false
}
