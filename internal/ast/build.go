package ast

// Construction helpers used pervasively by the compiler passes. They build
// position-less (synthesized) nodes; passes that care about source mapping
// copy positions from the nodes they replace.

// Id returns an identifier expression.
func Id(name string) *Ident { return &Ident{Name: name} }

// Num returns a numeric literal.
func Num(v float64) *Number { return &Number{Value: v} }

// Int returns a numeric literal from an int.
func Int(v int) *Number { return &Number{Value: float64(v)} }

// Strlit returns a string literal.
func Strlit(v string) *Str { return &Str{Value: v} }

// Boollit returns a boolean literal.
func Boollit(v bool) *Bool { return &Bool{Value: v} }

// Undef returns the canonical `undefined` reference.
func Undef() Expr { return &Ident{Name: "undefined"} }

// CallN builds a call expression.
func CallN(callee Expr, args ...Expr) *Call { return &Call{Callee: callee, Args: args} }

// CallId builds a call to a named function.
func CallId(name string, args ...Expr) *Call { return CallN(Id(name), args...) }

// NewN builds a new-expression.
func NewN(callee Expr, args ...Expr) *New { return &New{Callee: callee, Args: args} }

// Dot builds a non-computed member access x.name.
func Dot(x Expr, name string) *Member { return &Member{X: x, Name: name} }

// Idx builds a computed member access x[i].
func Idx(x Expr, i Expr) *Member { return &Member{X: x, Index: i, Computed: true} }

// Bin builds a binary expression.
func Bin(op string, l, r Expr) *Binary { return &Binary{Op: op, L: l, R: r} }

// Log builds a logical expression.
func Log(op string, l, r Expr) *Logical { return &Logical{Op: op, L: l, R: r} }

// Not builds !x.
func Not(x Expr) *Unary { return &Unary{Op: "!", X: x} }

// SetTo builds the assignment target = value.
func SetTo(target Expr, value Expr) *Assign { return &Assign{Op: "=", Target: target, Value: value} }

// SetId builds name = value.
func SetId(name string, value Expr) *Assign { return SetTo(Id(name), value) }

// Var builds `var name = init;` (init may be nil).
func Var(name string, init Expr) *VarDecl {
	return &VarDecl{Decls: []Declarator{{Name: name, Init: init}}}
}

// ExprOf wraps an expression as a statement.
func ExprOf(x Expr) *ExprStmt { return &ExprStmt{X: x} }

// BlockOf wraps statements in a block.
func BlockOf(body ...Stmt) *Block { return &Block{Body: body} }

// IfThen builds an if with no else.
func IfThen(test Expr, cons ...Stmt) *If { return &If{Test: test, Cons: BlockOf(cons...)} }

// IfElse builds an if/else.
func IfElse(test Expr, cons Stmt, alt Stmt) *If { return &If{Test: test, Cons: cons, Alt: alt} }

// Ret builds a return statement.
func Ret(arg Expr) *Return { return &Return{Arg: arg} }

// Fn builds an anonymous function expression.
func Fn(params []string, body ...Stmt) *Func { return &Func{Params: params, Body: body} }

// ArrowFn builds an arrow function (lexical this).
func ArrowFn(params []string, body ...Stmt) *Func {
	return &Func{Params: params, Body: body, Arrow: true}
}
