package interp

import "repro/internal/ast"

// Env is a lexical environment frame. Closures capture the *Env, so
// bindings are shared by reference — which is exactly what makes assignable
// captured variables problematic for continuation restoration and why
// Stopify boxes them (§3.2.1).
//
// A frame comes in two shapes. Code that went through internal/resolve runs
// on slot frames: names is the static layout (slot i binds names[i]) and
// slots holds the values, so resolved references are two pointer hops and
// an array index. Everything else — the global frame, hand-built test
// fragments, dynamically created bindings — lives in the vars map. A slot
// frame can still grow a vars map when dynamic code defines a name the
// resolver never saw (an undeclared for-in variable, for example), so the
// by-name operations remain complete on every frame.
type Env struct {
	parent *Env
	layout *ast.ScopeInfo // static slot layout; nil for map frames
	slots  []Value
	vars   map[string]Value
}

// NewEnv returns an empty dynamic (map-backed) environment chained to
// parent (which may be nil for the global frame).
func NewEnv(parent *Env) *Env {
	return &Env{parent: parent, vars: make(map[string]Value)}
}

// NewSlotEnv returns a slot frame with the given static layout; every slot
// starts as undefined, which is precisely JavaScript's var-hoisting rule.
func NewSlotEnv(parent *Env, layout *ast.ScopeInfo) *Env {
	slots := make([]Value, len(layout.Names))
	for i := range slots {
		slots[i] = undefinedValue
	}
	return &Env{parent: parent, layout: layout, slots: slots}
}

// GetRef reads a resolved (hops, slot) coordinate.
func (e *Env) GetRef(r ast.Ref) Value {
	env := e
	for n := r.Hops(); n > 0; n-- {
		env = env.parent
	}
	return env.slots[r.Slot()]
}

// SetRef writes through a resolved coordinate.
func (e *Env) SetRef(r ast.Ref, v Value) {
	env := e
	for n := r.Hops(); n > 0; n-- {
		env = env.parent
	}
	env.slots[r.Slot()] = v
}

// slotIndex finds name in this frame's static layout, or -1. It only runs
// on the dynamic fallback path; resolved references never reach it.
func (e *Env) slotIndex(name string) int {
	if e.layout == nil {
		return -1
	}
	if e.layout.Index != nil {
		if i, ok := e.layout.Index[name]; ok {
			return i
		}
		return -1
	}
	for i, n := range e.layout.Names {
		if n == name {
			return i
		}
	}
	return -1
}

// Define creates or overwrites a binding in this frame.
func (e *Env) Define(name string, v Value) {
	if i := e.slotIndex(name); i >= 0 {
		e.slots[i] = v
		return
	}
	if e.vars == nil {
		e.vars = make(map[string]Value)
	}
	e.vars[name] = v
}

// Has reports whether this frame (not the chain) binds name.
func (e *Env) Has(name string) bool {
	if e.slotIndex(name) >= 0 {
		return true
	}
	_, ok := e.vars[name]
	return ok
}

// Lookup resolves name through the chain.
func (e *Env) Lookup(name string) (Value, bool) {
	for env := e; env != nil; env = env.parent {
		if i := env.slotIndex(name); i >= 0 {
			return env.slots[i], true
		}
		if v, ok := env.vars[name]; ok {
			return v, true
		}
	}
	return nil, false
}

// LookupDynamic resolves name through the chain probing only dynamically
// created bindings (vars maps), skipping every static slot layout. It is
// only correct for references the resolver proved unbound in all enclosing
// static scopes — the common shape of a global reference from deep inside
// compiled code.
func (e *Env) LookupDynamic(name string) (Value, bool) {
	for env := e; env != nil; env = env.parent {
		if env.vars != nil {
			if v, ok := env.vars[name]; ok {
				return v, true
			}
		}
	}
	return nil, false
}

// SetDynamic is Set restricted to dynamically created bindings, with the
// same proof obligation as LookupDynamic.
func (e *Env) SetDynamic(name string, v Value) bool {
	for env := e; env != nil; env = env.parent {
		if env.vars != nil {
			if _, ok := env.vars[name]; ok {
				env.vars[name] = v
				return true
			}
		}
	}
	return false
}

// Set assigns to the nearest frame binding name, reporting whether one was
// found.
func (e *Env) Set(name string, v Value) bool {
	for env := e; env != nil; env = env.parent {
		if i := env.slotIndex(name); i >= 0 {
			env.slots[i] = v
			return true
		}
		if _, ok := env.vars[name]; ok {
			env.vars[name] = v
			return true
		}
	}
	return false
}

// Root returns the global frame at the end of the chain.
func (e *Env) Root() *Env {
	env := e
	for env.parent != nil {
		env = env.parent
	}
	return env
}
