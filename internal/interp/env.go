package interp

import (
	"unsafe"

	"repro/internal/ast"
)

// Env is a lexical environment frame. Closures capture the *Env, so
// bindings are shared by reference — which is exactly what makes assignable
// captured variables problematic for continuation restoration and why
// Stopify boxes them (§3.2.1).
//
// A frame comes in two shapes. Code that went through internal/resolve runs
// on slot frames: names is the static layout (slot i binds names[i]) and
// slots holds the values, so resolved references are two pointer hops and
// an array index. Everything else — the global frame, hand-built test
// fragments, dynamically created bindings — lives in the vars map. A slot
// frame can still grow a vars map when dynamic code defines a name the
// resolver never saw (an undeclared for-in variable, for example), so the
// by-name operations remain complete on every frame.
//
// The zero Value is undefined, so a freshly allocated slot frame is already
// correctly var-hoisted: never-written slots read back as undefined with no
// fill pass and no per-read nil translation.
type Env struct {
	parent *Env
	layout *ast.ScopeInfo // static slot layout; nil for map frames
	slots  []Value
	vars   map[string]Value

	// cells backs the global frame: each name binds a heap cell whose
	// identity is stable for the life of the realm (redefinition writes
	// through the existing cell), so RefGlobal reference sites can cache
	// the *cell after the first by-name lookup and skip the hash ever
	// after. Non-nil only on the root frame.
	cells map[string]*cell

	// escaped records that a closure captured this frame (makeFunction
	// marks the whole chain): the frame may outlive its call, so the call
	// epilogue must not recycle it through the frame pool. The only way a
	// frame outlives its call is through a Closure.Env chain, and every
	// closure is born in makeFunction — so the mark is complete.
	escaped bool
}

// cell is one global binding. Holding the value behind a pointer is what
// lets reference sites cache the binding instead of the value.
type cell struct{ v Value }

// NewEnv returns an empty dynamic environment chained to parent. The root
// frame (nil parent) is cell-backed — it is the realm's global frame —
// while inner dynamic frames use a plain map.
func NewEnv(parent *Env) *Env {
	if parent == nil {
		return &Env{cells: make(map[string]*cell)}
	}
	return &Env{parent: parent, vars: make(map[string]Value)}
}

// envBuf6/envBuf16 are Envs with inline slot storage, so frames cost one
// allocation instead of two; two size classes keep small frames (plain
// functions) from paying for the instrumented functions' temp-heavy
// layouts.
type envBuf6 struct {
	e   Env
	buf [6]Value
}

type envBuf16 struct {
	e   Env
	buf [16]Value
}

// NewSlotEnv returns a slot frame with the given static layout. Slots are
// zero Values and read back as undefined, which is precisely JavaScript's
// var-hoisting rule without the cost of filling the frame on every call.
func NewSlotEnv(parent *Env, layout *ast.ScopeInfo) *Env {
	n := len(layout.Names)
	if n <= 6 {
		s := new(envBuf6)
		s.e = Env{parent: parent, layout: layout, slots: s.buf[:n]}
		return &s.e
	}
	if n <= 16 {
		s := new(envBuf16)
		s.e = Env{parent: parent, layout: layout, slots: s.buf[:n]}
		return &s.e
	}
	if idx := bigBucketIdx(n); idx >= 0 {
		// Bucket capacity, so the frame can enter a big-frame freelist on
		// release (releaseFrame keys the bucket off cap(slots)).
		return &Env{parent: parent, layout: layout, slots: make([]Value, n, bigBucketCaps[idx])}
	}
	return &Env{parent: parent, layout: layout, slots: make([]Value, n)}
}

// envPoolCap bounds each frame freelist so a burst of deep recursion does
// not pin an arbitrary number of dead frames.
const envPoolCap = 512

// Big frames — layouts beyond the 16-slot inline class (arguments-heavy
// instrumented functions, whose temp-laden ANF layouts routinely exceed
// it) — recycle through size-bucketed freelists instead of the GC. Slot
// slices are allocated with bucket capacity, so releaseFrame can identify
// the home bucket from cap(slots) alone, exactly as the inline classes are
// identified. Frames larger than the top bucket stay GC-allocated.
var bigBucketCaps = [...]int{32, 64, 128, 256}

// envPoolCapBig bounds each big-frame freelist; big buckets pin more bytes
// per entry, so they keep fewer entries than the inline classes.
const envPoolCapBig = 128

// bigBucketIdx returns the freelist index whose capacity fits n slots, or
// -1 when n exceeds the largest bucket.
func bigBucketIdx(n int) int {
	for i, c := range bigBucketCaps {
		if n <= c {
			return i
		}
	}
	return -1
}

// bigBucketOfCap returns the freelist index whose capacity is exactly c,
// or -1. Only bucket-allocated slices have bucket capacities: make with a
// single size yields cap == len, and no layout-sized make is performed for
// layouts ≤ the bucket bound (those use the buckets), so an exact match
// proves bucket provenance.
func bigBucketOfCap(c int) int {
	for i, bc := range bigBucketCaps {
		if c == bc {
			return i
		}
	}
	return -1
}

// acquireFrame returns a slot frame for layout, recycling a pooled frame
// when one is available. Pooled frames were cleared on release, so slots
// read back as undefined exactly like a fresh frame's.
//
// The allocation meter charges every acquire and credits every release
// (frameMemCost — same formula both ways, keyed off cap(slots), which
// clearing does not change), so call traffic is net-zero against the budget
// and only *escaped* frames — the ones a closure keeps alive — stay
// charged. Without the credit, deep call traffic would erode a long-running
// well-behaved guest's budget even though its live graph never grows.
func (in *Interp) acquireFrame(parent *Env, layout *ast.ScopeInfo) *Env {
	n := len(layout.Names)
	if n <= 6 {
		if k := len(in.envFree6); k > 0 {
			s := in.envFree6[k-1]
			in.envFree6 = in.envFree6[:k-1]
			s.e = Env{parent: parent, layout: layout, slots: s.buf[:n]}
			in.chargeMem(frameMemCost(&s.e))
			return &s.e
		}
	} else if n <= 16 {
		if k := len(in.envFree16); k > 0 {
			s := in.envFree16[k-1]
			in.envFree16 = in.envFree16[:k-1]
			s.e = Env{parent: parent, layout: layout, slots: s.buf[:n]}
			in.chargeMem(frameMemCost(&s.e))
			return &s.e
		}
	} else if idx := bigBucketIdx(n); idx >= 0 {
		if free := in.envFreeBig[idx]; len(free) > 0 {
			e := free[len(free)-1]
			in.envFreeBig[idx] = free[:len(free)-1]
			// The pooled buffer was fully cleared on release; reslice it to
			// the new layout (within bucket capacity) and rewire the frame.
			e.parent, e.layout = parent, layout
			e.slots = e.slots[:n]
			in.chargeMem(frameMemCost(e))
			return e
		}
	}
	e := NewSlotEnv(parent, layout)
	in.chargeMem(frameMemCost(e))
	return e
}

// frameMemCost is the meter cost of one call frame: header plus the full
// slot capacity (inline class or bucket), so charge and credit agree no
// matter which layout the frame is serving when each side runs.
func frameMemCost(e *Env) int {
	return memFrameBytes + memValueBytes*cap(e.slots)
}

// releaseFrame returns an unescaped frame to its pool when the call exits
// (the caller checks escaped; see Call). The full buffer is cleared (not
// just the layout's prefix) so a later acquire with a larger layout never
// exposes stale values, and so the pool does not pin dead object graphs.
// The two inline size classes and the four big buckets are pooled; frames
// beyond the top bucket are left to the GC.
func (in *Interp) releaseFrame(e *Env) {
	in.creditMem(frameMemCost(e)) // the frame is dead whether or not it pools
	switch cap(e.slots) {
	case 6:
		s := (*envBuf6)(unsafe.Pointer(e))
		s.e = Env{} // drop parent/layout so the pool pins nothing
		s.buf = [6]Value{}
		if len(in.envFree6) < envPoolCap {
			in.envFree6 = append(in.envFree6, s)
		}
	case 16:
		s := (*envBuf16)(unsafe.Pointer(e))
		s.e = Env{}
		s.buf = [16]Value{}
		if len(in.envFree16) < envPoolCap {
			in.envFree16 = append(in.envFree16, s)
		}
	default:
		idx := bigBucketOfCap(cap(e.slots))
		if idx < 0 || len(in.envFreeBig[idx]) >= envPoolCapBig {
			return // beyond the top bucket (or pool full): leave to the GC
		}
		// Clear the whole bucket capacity — not just the layout's prefix —
		// so a later acquire with a larger layout never sees stale values
		// and the pool pins no dead object graphs. Resetting the Env also
		// drops any dynamic vars map a stray eval/for-in grew on it.
		buf := e.slots[:cap(e.slots)]
		for i := range buf {
			buf[i] = Value{}
		}
		*e = Env{slots: buf[:0]}
		in.envFreeBig[idx] = append(in.envFreeBig[idx], e)
	}
}

// GetRef reads a resolved (hops, slot) coordinate.
func (e *Env) GetRef(r ast.Ref) Value {
	env := e
	for n := r.Hops(); n > 0; n-- {
		env = env.parent
	}
	return env.slots[r.Slot()]
}

// SetRef writes through a resolved coordinate.
func (e *Env) SetRef(r ast.Ref, v Value) {
	env := e
	for n := r.Hops(); n > 0; n-- {
		env = env.parent
	}
	env.slots[r.Slot()] = v
}

// slotIndex finds name in this frame's static layout, or -1. It only runs
// on the dynamic fallback path; resolved references never reach it.
func (e *Env) slotIndex(name string) int {
	if e.layout == nil {
		return -1
	}
	if e.layout.Index != nil {
		if i, ok := e.layout.Index[name]; ok {
			return i
		}
		return -1
	}
	for i, n := range e.layout.Names {
		if n == name {
			return i
		}
	}
	return -1
}

// Define creates or overwrites a binding in this frame.
func (e *Env) Define(name string, v Value) {
	if e.cells != nil {
		if c, ok := e.cells[name]; ok {
			c.v = v
		} else {
			e.cells[name] = &cell{v: v}
		}
		return
	}
	if i := e.slotIndex(name); i >= 0 {
		e.slots[i] = v
		return
	}
	if e.vars == nil {
		e.vars = make(map[string]Value)
	}
	e.vars[name] = v
}

// Has reports whether this frame (not the chain) binds name.
func (e *Env) Has(name string) bool {
	if e.cells != nil {
		_, ok := e.cells[name]
		return ok
	}
	if e.slotIndex(name) >= 0 {
		return true
	}
	_, ok := e.vars[name]
	return ok
}

// Cell returns the binding cell for name in this frame, or nil; only the
// global frame has cells.
func (e *Env) Cell(name string) *cell {
	return e.cells[name]
}

// Lookup resolves name through the chain.
func (e *Env) Lookup(name string) (Value, bool) {
	for env := e; env != nil; env = env.parent {
		if env.cells != nil {
			if c, ok := env.cells[name]; ok {
				return c.v, true
			}
			continue
		}
		if i := env.slotIndex(name); i >= 0 {
			return env.slots[i], true
		}
		if v, ok := env.vars[name]; ok {
			return v, true
		}
	}
	return Undefined, false
}

// LookupDynamic resolves name through the chain probing only dynamically
// created bindings (vars maps and the global cells), skipping every static
// slot layout. It is only correct for references the resolver proved
// unbound in all enclosing static scopes — the common shape of a global
// reference from deep inside compiled code.
func (e *Env) LookupDynamic(name string) (Value, bool) {
	v, ok, _ := e.lookupDynamicCell(name)
	return v, ok
}

// lookupDynamicCell is LookupDynamic, also returning the global binding
// cell when — and only when — the binding found is the global one, so the
// caller may cache it.
func (e *Env) lookupDynamicCell(name string) (Value, bool, *cell) {
	for env := e; env != nil; env = env.parent {
		if env.cells != nil {
			if c, ok := env.cells[name]; ok {
				return c.v, true, c
			}
			continue
		}
		if env.vars != nil {
			if v, ok := env.vars[name]; ok {
				return v, true, nil
			}
		}
	}
	return Undefined, false, nil
}

// SetDynamic is Set restricted to dynamically created bindings, with the
// same proof obligation as LookupDynamic.
func (e *Env) SetDynamic(name string, v Value) bool {
	_, ok := e.setDynamicCell(name, v)
	return ok
}

// setDynamicCell is SetDynamic, also returning the global binding cell when
// the binding written is the global one.
func (e *Env) setDynamicCell(name string, v Value) (*cell, bool) {
	for env := e; env != nil; env = env.parent {
		if env.cells != nil {
			if c, ok := env.cells[name]; ok {
				c.v = v
				return c, true
			}
			continue
		}
		if env.vars != nil {
			if _, ok := env.vars[name]; ok {
				env.vars[name] = v
				return nil, true
			}
		}
	}
	return nil, false
}

// Set assigns to the nearest frame binding name, reporting whether one was
// found.
func (e *Env) Set(name string, v Value) bool {
	for env := e; env != nil; env = env.parent {
		if env.cells != nil {
			if c, ok := env.cells[name]; ok {
				c.v = v
				return true
			}
			continue
		}
		if i := env.slotIndex(name); i >= 0 {
			env.slots[i] = v
			return true
		}
		if _, ok := env.vars[name]; ok {
			env.vars[name] = v
			return true
		}
	}
	return false
}

// Root returns the global frame at the end of the chain.
func (e *Env) Root() *Env {
	env := e
	for env.parent != nil {
		env = env.parent
	}
	return env
}
