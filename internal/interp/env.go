package interp

// Env is a lexical environment: a mutable frame of bindings with a parent
// link. Closures capture the *Env, so bindings are shared by reference —
// which is exactly what makes assignable captured variables problematic for
// continuation restoration and why Stopify boxes them (§3.2.1).
type Env struct {
	parent *Env
	vars   map[string]Value
}

// NewEnv returns an empty environment chained to parent (which may be nil
// for the global frame).
func NewEnv(parent *Env) *Env {
	return &Env{parent: parent, vars: make(map[string]Value)}
}

// Define creates or overwrites a binding in this frame.
func (e *Env) Define(name string, v Value) { e.vars[name] = v }

// Has reports whether this frame (not the chain) binds name.
func (e *Env) Has(name string) bool {
	_, ok := e.vars[name]
	return ok
}

// Lookup resolves name through the chain.
func (e *Env) Lookup(name string) (Value, bool) {
	for env := e; env != nil; env = env.parent {
		if v, ok := env.vars[name]; ok {
			return v, true
		}
	}
	return nil, false
}

// Set assigns to the nearest frame binding name, reporting whether one was
// found.
func (e *Env) Set(name string, v Value) bool {
	for env := e; env != nil; env = env.parent {
		if _, ok := env.vars[name]; ok {
			env.vars[name] = v
			return true
		}
	}
	return false
}

// Root returns the global frame at the end of the chain.
func (e *Env) Root() *Env {
	env := e
	for env.parent != nil {
		env = env.parent
	}
	return env
}
