package interp

import (
	"math"
	"strconv"
	"strings"

	"repro/internal/printer"
)

// setupGlobals builds the prototypes and global bindings of a fresh realm.
// The library is the slice of ECMAScript that compiler-generated code and
// the paper's benchmarks actually touch.
func (in *Interp) setupGlobals() {
	in.objectProto = &Object{Class: "Object"}
	in.functionProto = NewObject(in.objectProto)
	in.functionProto.Class = "Function"
	in.arrayProto = NewObject(in.objectProto)
	in.stringProto = NewObject(in.objectProto)
	in.numberProto = NewObject(in.objectProto)
	in.booleanProto = NewObject(in.objectProto)
	in.errorProto = NewObject(in.objectProto)

	g := in.Global
	g.Define("undefined", Undefined{})
	g.Define("NaN", math.NaN())
	g.Define("Infinity", math.Inf(1))

	in.setupObjectProto()
	in.setupFunctionProto()
	in.setupArray()
	in.setupString()
	in.setupNumberBoolean()
	in.setupError()
	in.setupMath()
	in.setupConsoleAndTimers()
	in.setupTopFunctions()
}

func (in *Interp) native(name string, fn NativeFunc) *Object { return in.NewNative(name, fn) }

func (in *Interp) setupObjectProto() {
	op := in.objectProto
	op.SetHidden("hasOwnProperty", in.native("hasOwnProperty", func(in *Interp, this Value, args []Value) (Value, error) {
		o, ok := this.(*Object)
		if !ok || len(args) == 0 {
			return false, nil
		}
		key, err := in.ToStringValue(args[0])
		if err != nil {
			return nil, err
		}
		if (o.Class == "Array" || o.Class == "Arguments") && len(o.Elems) > 0 {
			if i, isIdx := arrayIndex(key); isIdx && i < len(o.Elems) {
				return true, nil
			}
		}
		return o.OwnOrLazy(key) != nil, nil
	}))
	op.SetHidden("toString", in.native("toString", func(in *Interp, this Value, args []Value) (Value, error) {
		if o, ok := this.(*Object); ok {
			return "[object " + o.Class + "]", nil
		}
		return "[object Object]", nil
	}))

	objectCtor := in.native("Object", func(in *Interp, this Value, args []Value) (Value, error) {
		if len(args) > 0 {
			if o, ok := args[0].(*Object); ok {
				return o, nil
			}
		}
		in.charge(in.Engine.ObjectCreateCost)
		return in.NewPlainObject(), nil
	})
	objectCtor.SetHidden("prototype", in.objectProto)
	objectCtor.SetHidden("create", in.native("create", func(in *Interp, this Value, args []Value) (Value, error) {
		in.charge(in.Engine.ObjectCreateCost)
		var proto *Object
		if len(args) > 0 {
			if p, ok := args[0].(*Object); ok {
				proto = p
			}
		}
		return NewObject(proto), nil
	}))
	objectCtor.SetHidden("keys", in.native("keys", func(in *Interp, this Value, args []Value) (Value, error) {
		if len(args) == 0 {
			return in.NewArray(nil), nil
		}
		o, ok := args[0].(*Object)
		if !ok {
			return nil, in.Throw("TypeError", "Object.keys called on non-object")
		}
		keys := o.OwnKeys()
		elems := make([]Value, len(keys))
		for i, k := range keys {
			elems[i] = k
		}
		return in.NewArray(elems), nil
	}))
	objectCtor.SetHidden("getPrototypeOf", in.native("getPrototypeOf", func(in *Interp, this Value, args []Value) (Value, error) {
		if len(args) > 0 {
			if o, ok := args[0].(*Object); ok {
				if o.Proto == nil {
					return Null{}, nil
				}
				return o.Proto, nil
			}
		}
		return Null{}, nil
	}))
	objectCtor.SetHidden("setPrototypeOf", in.native("setPrototypeOf", func(in *Interp, this Value, args []Value) (Value, error) {
		if len(args) < 2 {
			return nil, in.Throw("TypeError", "Object.setPrototypeOf requires 2 arguments")
		}
		o, ok := args[0].(*Object)
		if !ok {
			return args[0], nil // primitives pass through unchanged
		}
		var proto *Object
		switch p := args[1].(type) {
		case *Object:
			proto = p
		case Null:
			proto = nil
		default:
			return nil, in.Throw("TypeError", "prototype must be an object or null")
		}
		for c := proto; c != nil; c = c.Proto {
			if c == o {
				return nil, in.Throw("TypeError", "cyclic prototype chain")
			}
		}
		o.SetProto(proto)
		return o, nil
	}))
	objectCtor.SetHidden("defineProperty", in.native("defineProperty", func(in *Interp, this Value, args []Value) (Value, error) {
		if len(args) < 3 {
			return nil, in.Throw("TypeError", "Object.defineProperty requires 3 arguments")
		}
		o, ok := args[0].(*Object)
		if !ok {
			return nil, in.Throw("TypeError", "Object.defineProperty called on non-object")
		}
		key, err := in.ToStringValue(args[1])
		if err != nil {
			return nil, err
		}
		desc, ok := args[2].(*Object)
		if !ok {
			return nil, in.Throw("TypeError", "property descriptor must be an object")
		}
		getV, _ := in.GetMember(desc, "get")
		setV, _ := in.GetMember(desc, "set")
		getter, _ := getV.(*Object)
		setter, _ := setV.(*Object)
		if getter != nil || setter != nil {
			enumV, _ := in.GetMember(desc, "enumerable")
			o.SetAccessor(key, getter, setter, ToBoolean(enumV))
			return o, nil
		}
		valV, _ := in.GetMember(desc, "value")
		o.SetOwn(key, valV)
		return o, nil
	}))
	objectCtor.SetHidden("getOwnPropertyDescriptor", in.native("getOwnPropertyDescriptor", func(in *Interp, this Value, args []Value) (Value, error) {
		if len(args) < 2 {
			return Undefined{}, nil
		}
		o, ok := args[0].(*Object)
		if !ok {
			return Undefined{}, nil
		}
		key, err := in.ToStringValue(args[1])
		if err != nil {
			return nil, err
		}
		slot := o.OwnOrLazy(key)
		if slot == nil {
			return Undefined{}, nil
		}
		d := in.NewPlainObject()
		if slot.Getter != nil || slot.Setter != nil {
			if slot.Getter != nil {
				d.SetOwn("get", slot.Getter)
			}
			if slot.Setter != nil {
				d.SetOwn("set", slot.Setter)
			}
		} else {
			d.SetOwn("value", slot.Value)
		}
		d.SetOwn("enumerable", slot.Enumerable)
		return d, nil
	}))
	in.Global.Define("Object", objectCtor)
}

func (in *Interp) setupFunctionProto() {
	fp := in.functionProto
	fp.SetHidden("call", in.native("call", func(in *Interp, this Value, args []Value) (Value, error) {
		var callThis Value = Undefined{}
		var rest []Value
		if len(args) > 0 {
			callThis = args[0]
			rest = args[1:]
		}
		return in.Call(this, callThis, rest, Undefined{})
	}))
	fp.SetHidden("apply", in.native("apply", func(in *Interp, this Value, args []Value) (Value, error) {
		var callThis Value = Undefined{}
		var rest []Value
		if len(args) > 0 {
			callThis = args[0]
		}
		if len(args) > 1 {
			switch a := args[1].(type) {
			case *Object:
				rest = append([]Value(nil), a.Elems...)
			case Undefined, Null:
			default:
				return nil, in.Throw("TypeError", "second argument to apply must be an array")
			}
		}
		return in.Call(this, callThis, rest, Undefined{})
	}))
	fp.SetHidden("bind", in.native("bind", func(in *Interp, this Value, args []Value) (Value, error) {
		target := this
		var boundThis Value = Undefined{}
		var bound []Value
		if len(args) > 0 {
			boundThis = args[0]
			bound = append([]Value(nil), args[1:]...)
		}
		return in.native("bound", func(in *Interp, _ Value, callArgs []Value) (Value, error) {
			all := append(append([]Value(nil), bound...), callArgs...)
			return in.Call(target, boundThis, all, Undefined{})
		}), nil
	}))
}

func (in *Interp) setupError() {
	ep := in.errorProto
	ep.SetHidden("name", "Error")
	ep.SetHidden("message", "")
	ep.SetHidden("toString", in.native("toString", func(in *Interp, this Value, args []Value) (Value, error) {
		o, ok := this.(*Object)
		if !ok {
			return "Error", nil
		}
		nameV, err := in.objGet(o, o, "name")
		if err != nil {
			return nil, err
		}
		msgV, err := in.objGet(o, o, "message")
		if err != nil {
			return nil, err
		}
		name, _ := in.ToStringValue(nameV)
		msg, _ := in.ToStringValue(msgV)
		if msg == "" {
			return name, nil
		}
		return name + ": " + msg, nil
	}))
	mkErrCtor := func(name string) *Object {
		ctor := in.native(name, func(in *Interp, this Value, args []Value) (Value, error) {
			msg := ""
			if len(args) > 0 {
				if _, isU := args[0].(Undefined); !isU {
					s, err := in.ToStringValue(args[0])
					if err != nil {
						return nil, err
					}
					msg = s
				}
			}
			return in.NewError(name, msg), nil
		})
		ctor.SetHidden("prototype", in.errorProto)
		in.Global.Define(name, ctor)
		return ctor
	}
	mkErrCtor("Error")
	mkErrCtor("TypeError")
	mkErrCtor("RangeError")
	mkErrCtor("ReferenceError")
	mkErrCtor("SyntaxError")
}

func (in *Interp) setupMath() {
	m := in.NewPlainObject()
	one := func(name string, f func(float64) float64) {
		m.SetHidden(name, in.native(name, func(in *Interp, this Value, args []Value) (Value, error) {
			var x float64 = math.NaN()
			if len(args) > 0 {
				v, err := in.ToNumber(args[0])
				if err != nil {
					return nil, err
				}
				x = v
			}
			return f(x), nil
		}))
	}
	one("abs", math.Abs)
	one("floor", math.Floor)
	one("ceil", math.Ceil)
	one("sqrt", math.Sqrt)
	one("sin", math.Sin)
	one("cos", math.Cos)
	one("tan", math.Tan)
	one("atan", math.Atan)
	one("asin", math.Asin)
	one("acos", math.Acos)
	one("exp", math.Exp)
	one("log", math.Log)
	one("round", func(x float64) float64 { return math.Floor(x + 0.5) })
	one("trunc", math.Trunc)
	m.SetHidden("pow", in.native("pow", func(in *Interp, this Value, args []Value) (Value, error) {
		x, y := math.NaN(), math.NaN()
		if len(args) > 0 {
			v, err := in.ToNumber(args[0])
			if err != nil {
				return nil, err
			}
			x = v
		}
		if len(args) > 1 {
			v, err := in.ToNumber(args[1])
			if err != nil {
				return nil, err
			}
			y = v
		}
		return math.Pow(x, y), nil
	}))
	m.SetHidden("atan2", in.native("atan2", func(in *Interp, this Value, args []Value) (Value, error) {
		if len(args) < 2 {
			return math.NaN(), nil
		}
		y, err := in.ToNumber(args[0])
		if err != nil {
			return nil, err
		}
		x, err := in.ToNumber(args[1])
		if err != nil {
			return nil, err
		}
		return math.Atan2(y, x), nil
	}))
	reduce := func(name string, init float64, better func(a, b float64) bool) {
		m.SetHidden(name, in.native(name, func(in *Interp, this Value, args []Value) (Value, error) {
			best := init
			for _, a := range args {
				v, err := in.ToNumber(a)
				if err != nil {
					return nil, err
				}
				if math.IsNaN(v) {
					return math.NaN(), nil
				}
				if better(v, best) {
					best = v
				}
			}
			return best, nil
		}))
	}
	reduce("min", math.Inf(1), func(a, b float64) bool { return a < b })
	reduce("max", math.Inf(-1), func(a, b float64) bool { return a > b })
	m.SetHidden("random", in.native("random", func(in *Interp, this Value, args []Value) (Value, error) {
		return in.Random(), nil
	}))
	m.SetHidden("PI", math.Pi)
	m.SetHidden("E", math.E)
	m.SetHidden("LN2", math.Ln2)
	m.SetHidden("SQRT2", math.Sqrt2)
	in.Global.Define("Math", m)
}

func (in *Interp) setupConsoleAndTimers() {
	console := in.NewPlainObject()
	logFn := in.native("log", func(in *Interp, this Value, args []Value) (Value, error) {
		parts := make([]string, len(args))
		for i, a := range args {
			parts[i] = in.Display(a)
		}
		in.WriteOut(strings.Join(parts, " ") + "\n")
		return Undefined{}, nil
	})
	console.SetHidden("log", logFn)
	console.SetHidden("error", logFn)
	console.SetHidden("warn", logFn)
	in.Global.Define("console", console)

	date := in.native("Date", func(in *Interp, this Value, args []Value) (Value, error) {
		o := in.NewPlainObject()
		o.Class = "Date"
		t := in.Clock.Now()
		o.SetHidden("getTime", in.native("getTime", func(in *Interp, this Value, args []Value) (Value, error) {
			return t, nil
		}))
		return o, nil
	})
	date.SetHidden("now", in.native("now", func(in *Interp, this Value, args []Value) (Value, error) {
		return in.Clock.Now(), nil
	}))
	in.Global.Define("Date", date)

	in.Global.Define("setTimeout", in.native("setTimeout", func(in *Interp, this Value, args []Value) (Value, error) {
		if in.Loop == nil {
			return nil, in.Throw("Error", "setTimeout requires an event loop")
		}
		if len(args) == 0 {
			return nil, in.Throw("TypeError", "setTimeout requires a callback")
		}
		fn := args[0]
		delay := 0.0
		if len(args) > 1 {
			d, err := in.ToNumber(args[1])
			if err != nil {
				return nil, err
			}
			delay = d
		}
		in.Loop.Post(func() {
			if _, err := in.Call(fn, Undefined{}, nil, Undefined{}); err != nil {
				in.reportUncaught(err)
			}
		}, delay)
		return 0.0, nil
	}))
}

func (in *Interp) reportUncaught(err error) {
	if in.Uncaught != nil {
		in.Uncaught(err)
		return
	}
	panic(err)
}

func (in *Interp) setupTopFunctions() {
	g := in.Global
	g.Define("parseInt", in.native("parseInt", func(in *Interp, this Value, args []Value) (Value, error) {
		if len(args) == 0 {
			return math.NaN(), nil
		}
		s, err := in.ToStringValue(args[0])
		if err != nil {
			return nil, err
		}
		radix := 10
		if len(args) > 1 {
			r, err := in.ToNumber(args[1])
			if err != nil {
				return nil, err
			}
			if r != 0 {
				radix = int(r)
			}
		}
		s = strings.TrimSpace(s)
		neg := false
		if strings.HasPrefix(s, "-") {
			neg = true
			s = s[1:]
		} else if strings.HasPrefix(s, "+") {
			s = s[1:]
		}
		if radix == 16 || radix == 10 {
			if strings.HasPrefix(s, "0x") || strings.HasPrefix(s, "0X") {
				s = s[2:]
				radix = 16
			}
		}
		end := 0
		for end < len(s) {
			c := s[end]
			var d int
			switch {
			case c >= '0' && c <= '9':
				d = int(c - '0')
			case c >= 'a' && c <= 'z':
				d = int(c-'a') + 10
			case c >= 'A' && c <= 'Z':
				d = int(c-'A') + 10
			default:
				d = 99
			}
			if d >= radix {
				break
			}
			end++
		}
		if end == 0 {
			return math.NaN(), nil
		}
		u, perr := strconv.ParseUint(s[:end], radix, 64)
		if perr != nil {
			return math.NaN(), nil
		}
		v := float64(u)
		if neg {
			v = -v
		}
		return v, nil
	}))
	g.Define("parseFloat", in.native("parseFloat", func(in *Interp, this Value, args []Value) (Value, error) {
		if len(args) == 0 {
			return math.NaN(), nil
		}
		s, err := in.ToStringValue(args[0])
		if err != nil {
			return nil, err
		}
		s = strings.TrimSpace(s)
		end := 0
		seenDot, seenExp := false, false
		for end < len(s) {
			c := s[end]
			if c >= '0' && c <= '9' {
				end++
				continue
			}
			if (c == '+' || c == '-') && (end == 0 || s[end-1] == 'e' || s[end-1] == 'E') {
				end++
				continue
			}
			if c == '.' && !seenDot && !seenExp {
				seenDot = true
				end++
				continue
			}
			if (c == 'e' || c == 'E') && !seenExp && end > 0 {
				seenExp = true
				end++
				continue
			}
			break
		}
		f, perr := strconv.ParseFloat(strings.TrimRight(s[:end], "eE+-"), 64)
		if perr != nil {
			return math.NaN(), nil
		}
		return f, nil
	}))
	g.Define("isNaN", in.native("isNaN", func(in *Interp, this Value, args []Value) (Value, error) {
		if len(args) == 0 {
			return true, nil
		}
		f, err := in.ToNumber(args[0])
		if err != nil {
			return nil, err
		}
		return math.IsNaN(f), nil
	}))
	g.Define("isFinite", in.native("isFinite", func(in *Interp, this Value, args []Value) (Value, error) {
		if len(args) == 0 {
			return false, nil
		}
		f, err := in.ToNumber(args[0])
		if err != nil {
			return nil, err
		}
		return !math.IsNaN(f) && !math.IsInf(f, 0), nil
	}))
	g.Define("eval", in.native("eval", func(in *Interp, this Value, args []Value) (Value, error) {
		if len(args) == 0 {
			return Undefined{}, nil
		}
		src, ok := args[0].(string)
		if !ok {
			return args[0], nil // eval of a non-string returns it unchanged
		}
		if in.EvalHook == nil {
			return nil, in.Throw("Error", "eval is not enabled in this configuration")
		}
		body, err := in.EvalHook(src)
		if err != nil {
			return nil, in.Throw("SyntaxError", "eval: %v", err)
		}
		if rerr := in.RunStmts(body); rerr != nil {
			return nil, rerr
		}
		return Undefined{}, nil
	}))
}

// Display renders a value for console.log without invoking user code, so
// that instrumented and raw runs print identically.
func (in *Interp) Display(v Value) string {
	return in.displayDepth(v, 0)
}

func (in *Interp) displayDepth(v Value, depth int) string {
	switch x := v.(type) {
	case Undefined:
		return "undefined"
	case Null:
		return "null"
	case bool:
		if x {
			return "true"
		}
		return "false"
	case float64:
		return printer.FormatNumber(x)
	case string:
		return x
	case *Object:
		if depth > 3 {
			return "..."
		}
		switch {
		case x.IsCallable():
			name := x.NativeName
			if x.Fn != nil {
				name = x.Fn.Name()
			}
			if name == "" {
				name = "anonymous"
			}
			return "[function " + name + "]"
		case x.Class == "Array" || x.Class == "Arguments":
			parts := make([]string, len(x.Elems))
			for i, el := range x.Elems {
				parts[i] = in.displayDepth(el, depth+1)
			}
			return strings.Join(parts, ",")
		case x.Class == "Error":
			name := "Error"
			msg := ""
			if s := x.Own("name"); s != nil {
				name, _ = s.Value.(string)
			}
			if s := x.Own("message"); s != nil {
				msg, _ = s.Value.(string)
			}
			if msg == "" {
				return name
			}
			return name + ": " + msg
		default:
			return "[object " + x.Class + "]"
		}
	}
	return "?"
}
