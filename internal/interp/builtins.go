package interp

import (
	"math"
	"strconv"
	"strings"
	"time"

	"repro/internal/printer"
)

// setupGlobals builds the prototypes and global bindings of a fresh realm.
// The library is the slice of ECMAScript that compiler-generated code and
// the paper's benchmarks actually touch.
func (in *Interp) setupGlobals() {
	in.objectProto = &Object{Class: "Object"}
	in.functionProto = NewObject(in.objectProto)
	in.functionProto.Class = "Function"
	in.arrayProto = NewObject(in.objectProto)
	in.stringProto = NewObject(in.objectProto)
	in.numberProto = NewObject(in.objectProto)
	in.booleanProto = NewObject(in.objectProto)
	in.errorProto = NewObject(in.objectProto)

	g := in.Global
	g.Define("undefined", Undefined)
	g.Define("NaN", NumberValue(math.NaN()))
	g.Define("Infinity", NumberValue(math.Inf(1)))

	in.setupObjectProto()
	in.setupFunctionProto()
	in.setupArray()
	in.setupString()
	in.setupNumberBoolean()
	in.setupError()
	in.setupMath()
	in.setupConsoleAndTimers()
	in.setupTopFunctions()
}

func (in *Interp) native(name string, fn NativeFunc) *Object { return in.NewNative(name, fn) }

// nativeV is native returning the function object pre-wrapped as a Value,
// for the hidden-method tables below.
func (in *Interp) nativeV(name string, fn NativeFunc) Value {
	return ObjectValue(in.NewNative(name, fn))
}

func (in *Interp) setupObjectProto() {
	op := in.objectProto
	op.SetHidden("hasOwnProperty", in.nativeV("hasOwnProperty", func(in *Interp, this Value, args []Value) (Value, error) {
		o := this.Obj()
		if o == nil || len(args) == 0 {
			return False, nil
		}
		key, err := in.ToStringValue(args[0])
		if err != nil {
			return Undefined, err
		}
		if (o.Class == "Array" || o.Class == "Arguments") && len(o.Elems) > 0 {
			if i, isIdx := arrayIndex(key); isIdx && i < len(o.Elems) {
				return True, nil
			}
		}
		return BoolValue(o.OwnOrLazy(key) != nil), nil
	}))
	op.SetHidden("toString", in.nativeV("toString", func(in *Interp, this Value, args []Value) (Value, error) {
		if o := this.Obj(); o != nil {
			return StringValue("[object " + o.Class + "]"), nil
		}
		return StringValue("[object Object]"), nil
	}))

	objectCtor := in.native("Object", func(in *Interp, this Value, args []Value) (Value, error) {
		if len(args) > 0 && args[0].IsObject() {
			return args[0], nil
		}
		in.charge(in.Engine.ObjectCreateCost)
		return ObjectValue(in.NewPlainObject()), nil
	})
	objectCtor.SetHidden("prototype", ObjectValue(in.objectProto))
	objectCtor.SetHidden("create", in.nativeV("create", func(in *Interp, this Value, args []Value) (Value, error) {
		in.charge(in.Engine.ObjectCreateCost)
		var proto *Object
		if len(args) > 0 {
			proto = args[0].Obj()
		}
		return ObjectValue(NewObject(proto)), nil
	}))
	objectCtor.SetHidden("keys", in.nativeV("keys", func(in *Interp, this Value, args []Value) (Value, error) {
		if len(args) == 0 {
			return ObjectValue(in.NewArray(nil)), nil
		}
		o := args[0].Obj()
		if o == nil {
			return Undefined, in.Throw("TypeError", "Object.keys called on non-object")
		}
		keys := o.OwnKeys()
		elems := make([]Value, len(keys))
		for i, k := range keys {
			elems[i] = StringValue(k)
		}
		return ObjectValue(in.NewArray(elems)), nil
	}))
	objectCtor.SetHidden("getPrototypeOf", in.nativeV("getPrototypeOf", func(in *Interp, this Value, args []Value) (Value, error) {
		if len(args) > 0 {
			if o := args[0].Obj(); o != nil {
				if o.Proto == nil {
					return Null, nil
				}
				return ObjectValue(o.Proto), nil
			}
		}
		return Null, nil
	}))
	objectCtor.SetHidden("setPrototypeOf", in.nativeV("setPrototypeOf", func(in *Interp, this Value, args []Value) (Value, error) {
		if len(args) < 2 {
			return Undefined, in.Throw("TypeError", "Object.setPrototypeOf requires 2 arguments")
		}
		o := args[0].Obj()
		if o == nil {
			return args[0], nil // primitives pass through unchanged
		}
		var proto *Object
		switch args[1].Tag() {
		case TagObject:
			proto = args[1].Obj()
		case TagNull:
			proto = nil
		default:
			return Undefined, in.Throw("TypeError", "prototype must be an object or null")
		}
		for c := proto; c != nil; c = c.Proto {
			if c == o {
				return Undefined, in.Throw("TypeError", "cyclic prototype chain")
			}
		}
		o.SetProto(proto)
		return args[0], nil
	}))
	objectCtor.SetHidden("defineProperty", in.nativeV("defineProperty", func(in *Interp, this Value, args []Value) (Value, error) {
		if len(args) < 3 {
			return Undefined, in.Throw("TypeError", "Object.defineProperty requires 3 arguments")
		}
		o := args[0].Obj()
		if o == nil {
			return Undefined, in.Throw("TypeError", "Object.defineProperty called on non-object")
		}
		key, err := in.ToStringValue(args[1])
		if err != nil {
			return Undefined, err
		}
		desc := args[2].Obj()
		if desc == nil {
			return Undefined, in.Throw("TypeError", "property descriptor must be an object")
		}
		getV, _ := in.GetMember(args[2], "get")
		setV, _ := in.GetMember(args[2], "set")
		getter := getV.Obj()
		setter := setV.Obj()
		if getter != nil || setter != nil {
			enumV, _ := in.GetMember(args[2], "enumerable")
			o.SetAccessor(key, getter, setter, ToBoolean(enumV))
			return args[0], nil
		}
		valV, _ := in.GetMember(args[2], "value")
		o.SetOwn(key, valV)
		return args[0], nil
	}))
	objectCtor.SetHidden("getOwnPropertyDescriptor", in.nativeV("getOwnPropertyDescriptor", func(in *Interp, this Value, args []Value) (Value, error) {
		if len(args) < 2 {
			return Undefined, nil
		}
		o := args[0].Obj()
		if o == nil {
			return Undefined, nil
		}
		key, err := in.ToStringValue(args[1])
		if err != nil {
			return Undefined, err
		}
		slot := o.OwnOrLazy(key)
		if slot == nil {
			return Undefined, nil
		}
		d := in.NewPlainObject()
		if slot.Getter != nil || slot.Setter != nil {
			if slot.Getter != nil {
				d.SetOwn("get", ObjectValue(slot.Getter))
			}
			if slot.Setter != nil {
				d.SetOwn("set", ObjectValue(slot.Setter))
			}
		} else {
			d.SetOwn("value", slot.Value)
		}
		d.SetOwn("enumerable", BoolValue(slot.Enumerable))
		return ObjectValue(d), nil
	}))
	in.Global.Define("Object", ObjectValue(objectCtor))
}

func (in *Interp) setupFunctionProto() {
	fp := in.functionProto
	fp.SetHidden("call", in.nativeV("call", func(in *Interp, this Value, args []Value) (Value, error) {
		callThis := Undefined
		var rest []Value
		if len(args) > 0 {
			callThis = args[0]
			rest = args[1:]
		}
		return in.Call(this, callThis, rest, Undefined)
	}))
	fp.SetHidden("apply", in.nativeV("apply", func(in *Interp, this Value, args []Value) (Value, error) {
		callThis := Undefined
		var rest []Value
		if len(args) > 0 {
			callThis = args[0]
		}
		if len(args) > 1 {
			switch args[1].Tag() {
			case TagObject:
				rest = append([]Value(nil), args[1].Obj().Elems...)
			case TagUndefined, TagNull:
			default:
				return Undefined, in.Throw("TypeError", "second argument to apply must be an array")
			}
		}
		return in.Call(this, callThis, rest, Undefined)
	}))
	fp.SetHidden("bind", in.nativeV("bind", func(in *Interp, this Value, args []Value) (Value, error) {
		if !this.Obj().IsCallable() {
			return Undefined, in.Throw("TypeError", "Function.prototype.bind called on non-callable")
		}
		boundThis := Undefined
		var bound []Value
		if len(args) > 0 {
			boundThis = args[0]
			bound = append([]Value(nil), args[1:]...)
		}
		// A data-backed function kind, not a native closure: the snapshot
		// codec traverses Target/This/Args like any other object graph.
		in.charge(in.Engine.ObjectCreateCost)
		in.chargeMem(memObjectBytes + memValueBytes*len(bound))
		o := &Object{Class: "Function", Proto: in.functionProto,
			Bound: &BoundFunction{Target: this, This: boundThis, Args: bound}}
		return ObjectValue(o), nil
	}))
}

func (in *Interp) setupError() {
	ep := in.errorProto
	ep.SetHidden("name", StringValue("Error"))
	ep.SetHidden("message", StringValue(""))
	ep.SetHidden("toString", in.nativeV("toString", func(in *Interp, this Value, args []Value) (Value, error) {
		o := this.Obj()
		if o == nil {
			return StringValue("Error"), nil
		}
		nameV, err := in.objGet(o, this, "name")
		if err != nil {
			return Undefined, err
		}
		msgV, err := in.objGet(o, this, "message")
		if err != nil {
			return Undefined, err
		}
		name, _ := in.ToStringValue(nameV)
		msg, _ := in.ToStringValue(msgV)
		if msg == "" {
			return StringValue(name), nil
		}
		return in.concatStrings(name+": ", msg)
	}))
	mkErrCtor := func(name string) *Object {
		ctor := in.native(name, func(in *Interp, this Value, args []Value) (Value, error) {
			msg := ""
			if len(args) > 0 && !args[0].IsUndefined() {
				s, err := in.ToStringValue(args[0])
				if err != nil {
					return Undefined, err
				}
				msg = s
			}
			return ObjectValue(in.NewError(name, msg)), nil
		})
		ctor.SetHidden("prototype", ObjectValue(in.errorProto))
		in.Global.Define(name, ObjectValue(ctor))
		return ctor
	}
	mkErrCtor("Error")
	mkErrCtor("TypeError")
	mkErrCtor("RangeError")
	mkErrCtor("ReferenceError")
	mkErrCtor("SyntaxError")
}

func (in *Interp) setupMath() {
	m := in.NewPlainObject()
	one := func(name string, f func(float64) float64) {
		m.SetHidden(name, in.nativeV(name, func(in *Interp, this Value, args []Value) (Value, error) {
			x := math.NaN()
			if len(args) > 0 {
				v, err := in.ToNumber(args[0])
				if err != nil {
					return Undefined, err
				}
				x = v
			}
			return NumberValue(f(x)), nil
		}))
	}
	one("abs", math.Abs)
	one("floor", math.Floor)
	one("ceil", math.Ceil)
	one("sqrt", math.Sqrt)
	one("sin", math.Sin)
	one("cos", math.Cos)
	one("tan", math.Tan)
	one("atan", math.Atan)
	one("asin", math.Asin)
	one("acos", math.Acos)
	one("exp", math.Exp)
	one("log", math.Log)
	one("round", func(x float64) float64 { return math.Floor(x + 0.5) })
	one("trunc", math.Trunc)
	m.SetHidden("pow", in.nativeV("pow", func(in *Interp, this Value, args []Value) (Value, error) {
		x, y := math.NaN(), math.NaN()
		if len(args) > 0 {
			v, err := in.ToNumber(args[0])
			if err != nil {
				return Undefined, err
			}
			x = v
		}
		if len(args) > 1 {
			v, err := in.ToNumber(args[1])
			if err != nil {
				return Undefined, err
			}
			y = v
		}
		return NumberValue(math.Pow(x, y)), nil
	}))
	m.SetHidden("atan2", in.nativeV("atan2", func(in *Interp, this Value, args []Value) (Value, error) {
		if len(args) < 2 {
			return NumberValue(math.NaN()), nil
		}
		y, err := in.ToNumber(args[0])
		if err != nil {
			return Undefined, err
		}
		x, err := in.ToNumber(args[1])
		if err != nil {
			return Undefined, err
		}
		return NumberValue(math.Atan2(y, x)), nil
	}))
	reduce := func(name string, init float64, better func(a, b float64) bool) {
		m.SetHidden(name, in.nativeV(name, func(in *Interp, this Value, args []Value) (Value, error) {
			best := init
			for _, a := range args {
				v, err := in.ToNumber(a)
				if err != nil {
					return Undefined, err
				}
				if math.IsNaN(v) {
					return NumberValue(math.NaN()), nil
				}
				if better(v, best) {
					best = v
				}
			}
			return NumberValue(best), nil
		}))
	}
	reduce("min", math.Inf(1), func(a, b float64) bool { return a < b })
	reduce("max", math.Inf(-1), func(a, b float64) bool { return a > b })
	m.SetHidden("random", in.nativeV("random", func(in *Interp, this Value, args []Value) (Value, error) {
		return NumberValue(in.Random()), nil
	}))
	m.SetHidden("PI", NumberValue(math.Pi))
	m.SetHidden("E", NumberValue(math.E))
	m.SetHidden("LN2", NumberValue(math.Ln2))
	m.SetHidden("SQRT2", NumberValue(math.Sqrt2))
	in.Global.Define("Math", ObjectValue(m))
}

func (in *Interp) setupConsoleAndTimers() {
	console := in.NewPlainObject()
	logFn := in.nativeV("log", func(in *Interp, this Value, args []Value) (Value, error) {
		parts := make([]string, len(args))
		for i, a := range args {
			parts[i] = in.Display(a)
		}
		in.WriteOut(strings.Join(parts, " ") + "\n")
		return Undefined, nil
	})
	console.SetHidden("log", logFn)
	console.SetHidden("error", logFn)
	console.SetHidden("warn", logFn)
	in.Global.Define("console", ObjectValue(console))

	// Date instances are plain objects with a time-value data slot; every
	// method lives on the shared Date.prototype so instances hold no
	// closures and the snapshot codec can carry them. Property insertion
	// order below is load-bearing: the host registry fingerprints the
	// pre-prelude DFS, and wire-v1 back-compat reconstructs the old
	// traversal by filtering out the Date.prototype subtree — which only
	// works if the surviving entries ("now" first) keep their old order.
	dp := NewObject(in.objectProto)
	in.dateProto = dp
	timeSlot := func(this Value) (float64, bool) {
		if o := this.Obj(); o != nil && o.Date != nil {
			return o.Date.MS, true
		}
		return 0, false
	}
	getTime := in.nativeV("getTime", func(in *Interp, this Value, args []Value) (Value, error) {
		ms, ok := timeSlot(this)
		if !ok {
			return Undefined, in.Throw("TypeError", "this is not a Date object")
		}
		return NumberValue(ms), nil
	})
	dp.SetHidden("getTime", getTime)
	dp.SetHidden("valueOf", getTime)
	dp.SetHidden("toString", in.nativeV("toString", func(in *Interp, this Value, args []Value) (Value, error) {
		ms, ok := timeSlot(this)
		if !ok {
			return Undefined, in.Throw("TypeError", "this is not a Date object")
		}
		return StringValue(formatDateMS(ms)), nil
	}))
	date := in.native("Date", func(in *Interp, this Value, args []Value) (Value, error) {
		if !isCtorSentinel(this) {
			// Date(...) without new: a string of the current time, arguments
			// ignored (spec §21.4.2).
			return StringValue(formatDateMS(in.Clock.Now())), nil
		}
		ms := in.Clock.Now()
		if len(args) > 0 {
			v, err := in.ToNumber(args[0])
			if err != nil {
				return Undefined, err
			}
			ms = v
		}
		in.charge(in.Engine.ObjectCreateCost)
		in.chargeMem(memObjectBytes)
		o := &Object{Class: "Date", Proto: in.dateProto, Date: &DateData{MS: ms}}
		return ObjectValue(o), nil
	})
	date.SetHidden("now", in.nativeV("now", func(in *Interp, this Value, args []Value) (Value, error) {
		return NumberValue(in.Clock.Now()), nil
	}))
	date.SetHidden("prototype", ObjectValue(dp))
	dp.SetHidden("constructor", ObjectValue(date))
	in.Global.Define("Date", ObjectValue(date))

	in.Global.Define("setTimeout", in.nativeV("setTimeout", func(in *Interp, this Value, args []Value) (Value, error) {
		if in.Loop == nil {
			return Undefined, in.Throw("Error", "setTimeout requires an event loop")
		}
		if len(args) == 0 {
			return Undefined, in.Throw("TypeError", "setTimeout requires a callback")
		}
		fn := args[0]
		delay := 0.0
		if len(args) > 1 {
			d, err := in.ToNumber(args[1])
			if err != nil {
				return Undefined, err
			}
			delay = d
		}
		var extra []Value
		if len(args) > 2 {
			extra = append([]Value(nil), args[2:]...)
			in.chargeMem(memValueBytes * len(extra))
		}
		in.timerSeq++
		id := in.timerSeq
		in.Loop.Post(func() {
			if in.timerDead[id] {
				delete(in.timerDead, id)
				return
			}
			if _, err := in.Call(fn, Undefined, extra, Undefined); err != nil {
				in.reportUncaught(err)
			}
		}, delay)
		return NumberValue(float64(id)), nil
	}))
	in.Global.Define("clearTimeout", in.nativeV("clearTimeout", func(in *Interp, this Value, args []Value) (Value, error) {
		if len(args) == 0 {
			return Undefined, nil
		}
		idf, err := in.ToNumber(args[0])
		if err != nil {
			return Undefined, err
		}
		// Only IDs this realm actually issued are recorded, so a hostile
		// clearTimeout(i) loop cannot grow the dead-set without first
		// paying for the matching setTimeout calls.
		id := uint64(idf)
		if idf == math.Trunc(idf) && id >= 1 && id <= in.timerSeq {
			if in.timerDead == nil {
				in.timerDead = make(map[uint64]bool)
			}
			in.timerDead[id] = true
		}
		return Undefined, nil
	}))
}

// formatDateMS renders a time value the way Date.prototype.toString does,
// pinned to UTC so raw, stopified, and snapshot-restored runs print
// identically regardless of host timezone.
func formatDateMS(ms float64) string {
	if math.IsNaN(ms) || math.Abs(ms) > 8.64e15 {
		return "Invalid Date"
	}
	t := time.UnixMilli(int64(math.Floor(ms))).UTC()
	return t.Format("Mon Jan 02 2006 15:04:05") + " GMT+0000 (Coordinated Universal Time)"
}

func (in *Interp) reportUncaught(err error) {
	if in.Uncaught != nil {
		in.Uncaught(err)
		return
	}
	panic(err)
}

func (in *Interp) setupTopFunctions() {
	g := in.Global
	g.Define("parseInt", in.nativeV("parseInt", func(in *Interp, this Value, args []Value) (Value, error) {
		if len(args) == 0 {
			return NumberValue(math.NaN()), nil
		}
		s, err := in.ToStringValue(args[0])
		if err != nil {
			return Undefined, err
		}
		radix := 10
		if len(args) > 1 {
			r, err := in.ToNumber(args[1])
			if err != nil {
				return Undefined, err
			}
			if r != 0 {
				radix = int(r)
			}
		}
		s = strings.TrimSpace(s)
		neg := false
		if strings.HasPrefix(s, "-") {
			neg = true
			s = s[1:]
		} else if strings.HasPrefix(s, "+") {
			s = s[1:]
		}
		if radix == 16 || radix == 10 {
			if strings.HasPrefix(s, "0x") || strings.HasPrefix(s, "0X") {
				s = s[2:]
				radix = 16
			}
		}
		end := 0
		for end < len(s) {
			c := s[end]
			var d int
			switch {
			case c >= '0' && c <= '9':
				d = int(c - '0')
			case c >= 'a' && c <= 'z':
				d = int(c-'a') + 10
			case c >= 'A' && c <= 'Z':
				d = int(c-'A') + 10
			default:
				d = 99
			}
			if d >= radix {
				break
			}
			end++
		}
		if end == 0 {
			return NumberValue(math.NaN()), nil
		}
		u, perr := strconv.ParseUint(s[:end], radix, 64)
		if perr != nil {
			return NumberValue(math.NaN()), nil
		}
		v := float64(u)
		if neg {
			v = -v
		}
		return NumberValue(v), nil
	}))
	g.Define("parseFloat", in.nativeV("parseFloat", func(in *Interp, this Value, args []Value) (Value, error) {
		if len(args) == 0 {
			return NumberValue(math.NaN()), nil
		}
		s, err := in.ToStringValue(args[0])
		if err != nil {
			return Undefined, err
		}
		s = strings.TrimSpace(s)
		end := 0
		seenDot, seenExp := false, false
		for end < len(s) {
			c := s[end]
			if c >= '0' && c <= '9' {
				end++
				continue
			}
			if (c == '+' || c == '-') && (end == 0 || s[end-1] == 'e' || s[end-1] == 'E') {
				end++
				continue
			}
			if c == '.' && !seenDot && !seenExp {
				seenDot = true
				end++
				continue
			}
			if (c == 'e' || c == 'E') && !seenExp && end > 0 {
				seenExp = true
				end++
				continue
			}
			break
		}
		f, perr := strconv.ParseFloat(strings.TrimRight(s[:end], "eE+-"), 64)
		if perr != nil {
			return NumberValue(math.NaN()), nil
		}
		return NumberValue(f), nil
	}))
	g.Define("isNaN", in.nativeV("isNaN", func(in *Interp, this Value, args []Value) (Value, error) {
		if len(args) == 0 {
			return True, nil
		}
		f, err := in.ToNumber(args[0])
		if err != nil {
			return Undefined, err
		}
		return BoolValue(math.IsNaN(f)), nil
	}))
	g.Define("isFinite", in.nativeV("isFinite", func(in *Interp, this Value, args []Value) (Value, error) {
		if len(args) == 0 {
			return False, nil
		}
		f, err := in.ToNumber(args[0])
		if err != nil {
			return Undefined, err
		}
		return BoolValue(!math.IsNaN(f) && !math.IsInf(f, 0)), nil
	}))
	g.Define("eval", in.nativeV("eval", func(in *Interp, this Value, args []Value) (Value, error) {
		if len(args) == 0 {
			return Undefined, nil
		}
		if !args[0].IsString() {
			return args[0], nil // eval of a non-string returns it unchanged
		}
		src := args[0].Str()
		if in.EvalHook == nil {
			return Undefined, in.Throw("Error", "eval is not enabled in this configuration")
		}
		body, err := in.EvalHook(src)
		if err != nil {
			return Undefined, in.Throw("SyntaxError", "eval: %v", err)
		}
		if rerr := in.RunStmts(body); rerr != nil {
			return Undefined, rerr
		}
		return Undefined, nil
	}))
}

// Display renders a value for console.log without invoking user code, so
// that instrumented and raw runs print identically.
func (in *Interp) Display(v Value) string {
	return in.displayDepth(v, 0)
}

func (in *Interp) displayDepth(v Value, depth int) string {
	switch v.tag {
	case TagUndefined:
		return "undefined"
	case TagNull:
		return "null"
	case TagBool:
		if v.Bool() {
			return "true"
		}
		return "false"
	case TagNumber:
		return printer.FormatNumber(v.num)
	case TagString:
		return v.Str()
	case TagObject:
		x := v.Obj()
		if depth > 3 {
			return "..."
		}
		switch {
		case x.IsCallable():
			name := x.NativeName
			if x.Fn != nil {
				name = x.Fn.Name()
			}
			if x.Bound != nil {
				name = "bound"
			}
			if name == "" {
				name = "anonymous"
			}
			return "[function " + name + "]"
		case x.Class == "Array" || x.Class == "Arguments":
			parts := make([]string, len(x.Elems))
			for i, el := range x.Elems {
				parts[i] = in.displayDepth(el, depth+1)
			}
			return strings.Join(parts, ",")
		case x.Class == "Error":
			name := "Error"
			msg := ""
			if s := x.Own("name"); s != nil {
				name = ""
				if s.Value.IsString() {
					name = s.Value.Str()
				}
			}
			if s := x.Own("message"); s != nil {
				if s.Value.IsString() {
					msg = s.Value.Str()
				}
			}
			if msg == "" {
				return name
			}
			return name + ": " + msg
		default:
			return "[object " + x.Class + "]"
		}
	}
	return "?"
}
