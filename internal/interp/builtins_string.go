package interp

import (
	"math"
	"strconv"
	"strings"

	"repro/internal/printer"
)

// setupString installs the String constructor/function and String.prototype.
// Strings are Go strings: WTF-8 bytes, with length and indices counted in
// bytes. Single-character accesses (charAt, computed index, split(""))
// decode the character starting at the given byte offset (see wtf8.go), so
// non-ASCII text round-trips; charCodeAt returns the decoded code point and
// fromCharCode encodes every BMP code unit — surrogates included — so
// fromCharCode(c).charCodeAt(0) === c. ASCII keeps the zero-copy one-byte
// fast path, and offsets that do not start a valid sequence degrade to the
// raw one-byte view, so arbitrary byte strings still split/join-round-trip.
func (in *Interp) setupString() {
	stringCtor := in.native("String", func(in *Interp, this Value, args []Value) (Value, error) {
		if len(args) == 0 {
			return StringValue(""), nil
		}
		s, err := in.ToStringValue(args[0])
		if err != nil {
			return Undefined, err
		}
		return StringValue(s), nil
	})
	stringCtor.SetHidden("prototype", ObjectValue(in.stringProto))
	stringCtor.SetHidden("fromCharCode", in.nativeV("fromCharCode", func(in *Interp, this Value, args []Value) (Value, error) {
		b := make([]byte, 0, len(args)*3)
		for _, a := range args {
			f, err := in.ToNumber(a)
			if err != nil {
				return Undefined, err
			}
			b = appendWTF8(b, uint16(int64(f)))
		}
		return StringValue(string(b)), nil
	}))
	in.Global.Define("String", ObjectValue(stringCtor))

	sp := in.stringProto
	method := func(name string, fn NativeFunc) { sp.SetHidden(name, in.nativeV(name, fn)) }

	selfString := func(in *Interp, this Value) (string, error) {
		if this.IsString() {
			return this.Str(), nil
		}
		return in.ToStringValue(this)
	}

	method("charAt", func(in *Interp, this Value, args []Value) (Value, error) {
		s, err := selfString(in, this)
		if err != nil {
			return Undefined, err
		}
		i := 0
		if len(args) > 0 {
			f, err := in.ToNumber(args[0])
			if err != nil {
				return Undefined, err
			}
			i = int(f)
		}
		if i < 0 || i >= len(s) {
			return StringValue(""), nil
		}
		return StringValue(charView(s, i)), nil
	})
	method("charCodeAt", func(in *Interp, this Value, args []Value) (Value, error) {
		s, err := selfString(in, this)
		if err != nil {
			return Undefined, err
		}
		i := 0
		if len(args) > 0 {
			f, err := in.ToNumber(args[0])
			if err != nil {
				return Undefined, err
			}
			i = int(f)
		}
		if i < 0 || i >= len(s) {
			return NumberValue(math.NaN()), nil
		}
		r, _ := decodeWTF8(s, i)
		return NumberValue(float64(r)), nil
	})
	// codePointAt needs no pair-combining step here: WTF-8 stores
	// supplementary characters as single 4-byte sequences, so the decoded
	// rune at a byte offset already is the full code point.
	method("codePointAt", func(in *Interp, this Value, args []Value) (Value, error) {
		s, err := selfString(in, this)
		if err != nil {
			return Undefined, err
		}
		i := 0
		if len(args) > 0 {
			f, err := in.ToNumber(args[0])
			if err != nil {
				return Undefined, err
			}
			i = int(f)
		}
		if i < 0 || i >= len(s) {
			return Undefined, nil
		}
		r, _ := decodeWTF8(s, i)
		return NumberValue(float64(r)), nil
	})
	method("at", func(in *Interp, this Value, args []Value) (Value, error) {
		s, err := selfString(in, this)
		if err != nil {
			return Undefined, err
		}
		i := 0
		if len(args) > 0 {
			f, err := in.ToNumber(args[0])
			if err != nil {
				return Undefined, err
			}
			i = int(f)
		}
		if i < 0 {
			i += len(s)
		}
		if i < 0 || i >= len(s) {
			return Undefined, nil
		}
		return StringValue(charView(s, i)), nil
	})
	method("indexOf", func(in *Interp, this Value, args []Value) (Value, error) {
		s, err := selfString(in, this)
		if err != nil {
			return Undefined, err
		}
		if len(args) == 0 {
			return NumberValue(-1), nil
		}
		sub, err := in.ToStringValue(args[0])
		if err != nil {
			return Undefined, err
		}
		from := 0
		if len(args) > 1 {
			f, err := in.ToNumber(args[1])
			if err != nil {
				return Undefined, err
			}
			from = clampIndex(int(f), len(s))
		}
		idx := strings.Index(s[from:], sub)
		if idx < 0 {
			return NumberValue(-1), nil
		}
		return NumberValue(float64(idx + from)), nil
	})
	method("lastIndexOf", func(in *Interp, this Value, args []Value) (Value, error) {
		s, err := selfString(in, this)
		if err != nil {
			return Undefined, err
		}
		if len(args) == 0 {
			return NumberValue(-1), nil
		}
		sub, err := in.ToStringValue(args[0])
		if err != nil {
			return Undefined, err
		}
		return NumberValue(float64(strings.LastIndex(s, sub))), nil
	})
	method("substring", func(in *Interp, this Value, args []Value) (Value, error) {
		s, err := selfString(in, this)
		if err != nil {
			return Undefined, err
		}
		start, end := 0, len(s)
		if len(args) > 0 {
			f, err := in.ToNumber(args[0])
			if err != nil {
				return Undefined, err
			}
			start = int(f)
		}
		if len(args) > 1 && !args[1].IsUndefined() {
			f, err := in.ToNumber(args[1])
			if err != nil {
				return Undefined, err
			}
			end = int(f)
		}
		if start < 0 {
			start = 0
		}
		if end > len(s) {
			end = len(s)
		}
		if end < 0 {
			end = 0
		}
		if start > len(s) {
			start = len(s)
		}
		if start > end {
			start, end = end, start
		}
		return StringValue(s[start:end]), nil
	})
	method("slice", func(in *Interp, this Value, args []Value) (Value, error) {
		s, err := selfString(in, this)
		if err != nil {
			return Undefined, err
		}
		start, end, err := in.sliceBounds(args, len(s))
		if err != nil {
			return Undefined, err
		}
		return StringValue(s[start:end]), nil
	})
	method("split", func(in *Interp, this Value, args []Value) (Value, error) {
		s, err := selfString(in, this)
		if err != nil {
			return Undefined, err
		}
		if len(args) == 0 {
			return ObjectValue(in.NewArray([]Value{StringValue(s)})), nil
		}
		sep, err := in.ToStringValue(args[0])
		if err != nil {
			return Undefined, err
		}
		var parts []string
		if sep == "" {
			for i := 0; i < len(s); {
				c := charView(s, i)
				parts = append(parts, c)
				i += len(c)
			}
		} else {
			parts = strings.Split(s, sep)
		}
		elems := make([]Value, len(parts))
		for i, p := range parts {
			elems[i] = StringValue(p)
		}
		return ObjectValue(in.NewArray(elems)), nil
	})
	method("toUpperCase", func(in *Interp, this Value, args []Value) (Value, error) {
		s, err := selfString(in, this)
		if err != nil {
			return Undefined, err
		}
		in.chargeMem(len(s))
		return StringValue(strings.ToUpper(s)), nil
	})
	method("toLowerCase", func(in *Interp, this Value, args []Value) (Value, error) {
		s, err := selfString(in, this)
		if err != nil {
			return Undefined, err
		}
		in.chargeMem(len(s))
		return StringValue(strings.ToLower(s)), nil
	})
	method("trim", func(in *Interp, this Value, args []Value) (Value, error) {
		s, err := selfString(in, this)
		if err != nil {
			return Undefined, err
		}
		return StringValue(strings.TrimSpace(s)), nil
	})
	method("concat", func(in *Interp, this Value, args []Value) (Value, error) {
		s, err := selfString(in, this)
		if err != nil {
			return Undefined, err
		}
		for _, a := range args {
			t, err := in.ToStringValue(a)
			if err != nil {
				return Undefined, err
			}
			if len(s)+len(t) > MaxStringLen {
				return Undefined, in.Throw("RangeError", "Invalid string length")
			}
			s += t
		}
		return StringValue(s), nil
	})
	method("replace", func(in *Interp, this Value, args []Value) (Value, error) {
		s, err := selfString(in, this)
		if err != nil {
			return Undefined, err
		}
		if len(args) < 2 {
			return StringValue(s), nil
		}
		old, err := in.ToStringValue(args[0])
		if err != nil {
			return Undefined, err
		}
		nw, err := in.ToStringValue(args[1])
		if err != nil {
			return Undefined, err
		}
		if len(s)+len(nw) > MaxStringLen {
			return Undefined, in.Throw("RangeError", "Invalid string length")
		}
		return StringValue(strings.Replace(s, old, nw, 1)), nil
	})
	method("repeat", func(in *Interp, this Value, args []Value) (Value, error) {
		s, err := selfString(in, this)
		if err != nil {
			return Undefined, err
		}
		n := 0.0
		if len(args) > 0 {
			f, err := in.ToNumber(args[0])
			if err != nil {
				return Undefined, err
			}
			n = f
		}
		if math.IsNaN(n) {
			n = 0 // ToInteger(NaN) is 0 — repeat 0 times
		}
		n = math.Trunc(n)
		if n < 0 || math.IsInf(n, 1) {
			return Undefined, in.Throw("RangeError", "invalid repeat count")
		}
		if len(s) == 0 || n == 0 {
			return StringValue(""), nil
		}
		if n > float64(MaxStringLen/len(s)) {
			return Undefined, in.Throw("RangeError", "Invalid string length")
		}
		// n is now a nonnegative finite integer within the cap, so the
		// float→int conversion is exact and strings.Repeat cannot panic.
		// Pre-check the meter: 'x'.repeat(1e9) is a one-call gigabyte.
		size := len(s) * int(n)
		if err := in.checkMem(size); err != nil {
			return Undefined, err
		}
		in.chargeMem(size)
		return StringValue(strings.Repeat(s, int(n))), nil
	})
	method("toString", func(in *Interp, this Value, args []Value) (Value, error) {
		s, err := selfString(in, this)
		if err != nil {
			return Undefined, err
		}
		return StringValue(s), nil
	})
}

// setupNumberBoolean installs Number, Boolean, and their prototypes.
func (in *Interp) setupNumberBoolean() {
	numberCtor := in.native("Number", func(in *Interp, this Value, args []Value) (Value, error) {
		if len(args) == 0 {
			return NumberValue(0), nil
		}
		f, err := in.ToNumber(args[0])
		if err != nil {
			return Undefined, err
		}
		return NumberValue(f), nil
	})
	numberCtor.SetHidden("prototype", ObjectValue(in.numberProto))
	numberCtor.SetHidden("MAX_SAFE_INTEGER", NumberValue(float64(1<<53-1)))
	numberCtor.SetHidden("MIN_SAFE_INTEGER", NumberValue(-float64(1<<53-1)))
	numberCtor.SetHidden("POSITIVE_INFINITY", NumberValue(math.Inf(1)))
	numberCtor.SetHidden("NEGATIVE_INFINITY", NumberValue(math.Inf(-1)))
	numberCtor.SetHidden("isInteger", in.nativeV("isInteger", func(in *Interp, this Value, args []Value) (Value, error) {
		if len(args) == 0 {
			return False, nil
		}
		if !args[0].IsNumber() {
			return False, nil
		}
		f := args[0].Num()
		return BoolValue(f == math.Trunc(f) && !math.IsInf(f, 0)), nil
	}))
	in.Global.Define("Number", ObjectValue(numberCtor))

	np := in.numberProto
	np.SetHidden("toString", in.nativeV("toString", func(in *Interp, this Value, args []Value) (Value, error) {
		var f float64
		if this.IsNumber() {
			f = this.Num()
		} else {
			v, err := in.ToNumber(this)
			if err != nil {
				return Undefined, err
			}
			f = v
		}
		radix := 10
		if len(args) > 0 && !args[0].IsUndefined() {
			r, err := in.ToNumber(args[0])
			if err != nil {
				return Undefined, err
			}
			radix = int(r)
		}
		if radix == 10 {
			return StringValue(printer.FormatNumber(f)), nil
		}
		if radix < 2 || radix > 36 {
			return Undefined, in.Throw("RangeError", "toString() radix must be between 2 and 36")
		}
		if f != math.Trunc(f) || math.IsNaN(f) || math.IsInf(f, 0) {
			return StringValue(printer.FormatNumber(f)), nil
		}
		return StringValue(strconv.FormatInt(int64(f), radix)), nil
	}))
	np.SetHidden("toFixed", in.nativeV("toFixed", func(in *Interp, this Value, args []Value) (Value, error) {
		var f float64
		if this.IsNumber() {
			f = this.Num()
		} else {
			v, err := in.ToNumber(this)
			if err != nil {
				return Undefined, err
			}
			f = v
		}
		digits := 0
		if len(args) > 0 {
			d, err := in.ToNumber(args[0])
			if err != nil {
				return Undefined, err
			}
			digits = int(d)
		}
		if digits < 0 || digits > 100 {
			return Undefined, in.Throw("RangeError", "toFixed() digits out of range")
		}
		return StringValue(strconv.FormatFloat(f, 'f', digits, 64)), nil
	}))

	booleanCtor := in.native("Boolean", func(in *Interp, this Value, args []Value) (Value, error) {
		if len(args) == 0 {
			return False, nil
		}
		return BoolValue(ToBoolean(args[0])), nil
	})
	booleanCtor.SetHidden("prototype", ObjectValue(in.booleanProto))
	in.Global.Define("Boolean", ObjectValue(booleanCtor))

	bp := in.booleanProto
	bp.SetHidden("toString", in.nativeV("toString", func(in *Interp, this Value, args []Value) (Value, error) {
		if this.IsBool() && this.Bool() {
			return StringValue("true"), nil
		}
		return StringValue("false"), nil
	}))
}
