package interp

import (
	"math"
	"strconv"
	"strings"

	"repro/internal/printer"
)

// setupString installs the String constructor/function and String.prototype.
// Strings are Go strings indexed by byte; the benchmark corpus is ASCII.
func (in *Interp) setupString() {
	stringCtor := in.native("String", func(in *Interp, this Value, args []Value) (Value, error) {
		if len(args) == 0 {
			return "", nil
		}
		return in.ToStringValue(args[0])
	})
	stringCtor.SetHidden("prototype", in.stringProto)
	stringCtor.SetHidden("fromCharCode", in.native("fromCharCode", func(in *Interp, this Value, args []Value) (Value, error) {
		var b strings.Builder
		for _, a := range args {
			f, err := in.ToNumber(a)
			if err != nil {
				return nil, err
			}
			b.WriteRune(rune(uint16(int64(f))))
		}
		return b.String(), nil
	}))
	in.Global.Define("String", stringCtor)

	sp := in.stringProto
	method := func(name string, fn NativeFunc) { sp.SetHidden(name, in.native(name, fn)) }

	selfString := func(in *Interp, this Value) (string, error) {
		if s, ok := this.(string); ok {
			return s, nil
		}
		return in.ToStringValue(this)
	}

	method("charAt", func(in *Interp, this Value, args []Value) (Value, error) {
		s, err := selfString(in, this)
		if err != nil {
			return nil, err
		}
		i := 0
		if len(args) > 0 {
			f, err := in.ToNumber(args[0])
			if err != nil {
				return nil, err
			}
			i = int(f)
		}
		if i < 0 || i >= len(s) {
			return "", nil
		}
		return string(s[i]), nil
	})
	method("charCodeAt", func(in *Interp, this Value, args []Value) (Value, error) {
		s, err := selfString(in, this)
		if err != nil {
			return nil, err
		}
		i := 0
		if len(args) > 0 {
			f, err := in.ToNumber(args[0])
			if err != nil {
				return nil, err
			}
			i = int(f)
		}
		if i < 0 || i >= len(s) {
			return math.NaN(), nil
		}
		return float64(s[i]), nil
	})
	method("indexOf", func(in *Interp, this Value, args []Value) (Value, error) {
		s, err := selfString(in, this)
		if err != nil {
			return nil, err
		}
		if len(args) == 0 {
			return -1.0, nil
		}
		sub, err := in.ToStringValue(args[0])
		if err != nil {
			return nil, err
		}
		from := 0
		if len(args) > 1 {
			f, err := in.ToNumber(args[1])
			if err != nil {
				return nil, err
			}
			from = clampIndex(int(f), len(s))
		}
		idx := strings.Index(s[from:], sub)
		if idx < 0 {
			return -1.0, nil
		}
		return float64(idx + from), nil
	})
	method("lastIndexOf", func(in *Interp, this Value, args []Value) (Value, error) {
		s, err := selfString(in, this)
		if err != nil {
			return nil, err
		}
		if len(args) == 0 {
			return -1.0, nil
		}
		sub, err := in.ToStringValue(args[0])
		if err != nil {
			return nil, err
		}
		return float64(strings.LastIndex(s, sub)), nil
	})
	method("substring", func(in *Interp, this Value, args []Value) (Value, error) {
		s, err := selfString(in, this)
		if err != nil {
			return nil, err
		}
		start, end := 0, len(s)
		if len(args) > 0 {
			f, err := in.ToNumber(args[0])
			if err != nil {
				return nil, err
			}
			start = int(f)
		}
		if len(args) > 1 {
			if _, isU := args[1].(Undefined); !isU {
				f, err := in.ToNumber(args[1])
				if err != nil {
					return nil, err
				}
				end = int(f)
			}
		}
		if start < 0 {
			start = 0
		}
		if end > len(s) {
			end = len(s)
		}
		if end < 0 {
			end = 0
		}
		if start > len(s) {
			start = len(s)
		}
		if start > end {
			start, end = end, start
		}
		return s[start:end], nil
	})
	method("slice", func(in *Interp, this Value, args []Value) (Value, error) {
		s, err := selfString(in, this)
		if err != nil {
			return nil, err
		}
		start, end, err := in.sliceBounds(args, len(s))
		if err != nil {
			return nil, err
		}
		return s[start:end], nil
	})
	method("split", func(in *Interp, this Value, args []Value) (Value, error) {
		s, err := selfString(in, this)
		if err != nil {
			return nil, err
		}
		if len(args) == 0 {
			return in.NewArray([]Value{s}), nil
		}
		sep, err := in.ToStringValue(args[0])
		if err != nil {
			return nil, err
		}
		var parts []string
		if sep == "" {
			for i := 0; i < len(s); i++ {
				parts = append(parts, string(s[i]))
			}
		} else {
			parts = strings.Split(s, sep)
		}
		elems := make([]Value, len(parts))
		for i, p := range parts {
			elems[i] = p
		}
		return in.NewArray(elems), nil
	})
	method("toUpperCase", func(in *Interp, this Value, args []Value) (Value, error) {
		s, err := selfString(in, this)
		if err != nil {
			return nil, err
		}
		return strings.ToUpper(s), nil
	})
	method("toLowerCase", func(in *Interp, this Value, args []Value) (Value, error) {
		s, err := selfString(in, this)
		if err != nil {
			return nil, err
		}
		return strings.ToLower(s), nil
	})
	method("trim", func(in *Interp, this Value, args []Value) (Value, error) {
		s, err := selfString(in, this)
		if err != nil {
			return nil, err
		}
		return strings.TrimSpace(s), nil
	})
	method("concat", func(in *Interp, this Value, args []Value) (Value, error) {
		s, err := selfString(in, this)
		if err != nil {
			return nil, err
		}
		for _, a := range args {
			t, err := in.ToStringValue(a)
			if err != nil {
				return nil, err
			}
			s += t
		}
		return s, nil
	})
	method("replace", func(in *Interp, this Value, args []Value) (Value, error) {
		s, err := selfString(in, this)
		if err != nil {
			return nil, err
		}
		if len(args) < 2 {
			return s, nil
		}
		old, err := in.ToStringValue(args[0])
		if err != nil {
			return nil, err
		}
		nw, err := in.ToStringValue(args[1])
		if err != nil {
			return nil, err
		}
		return strings.Replace(s, old, nw, 1), nil
	})
	method("repeat", func(in *Interp, this Value, args []Value) (Value, error) {
		s, err := selfString(in, this)
		if err != nil {
			return nil, err
		}
		n := 0.0
		if len(args) > 0 {
			f, err := in.ToNumber(args[0])
			if err != nil {
				return nil, err
			}
			n = f
		}
		if n < 0 {
			return nil, in.Throw("RangeError", "invalid repeat count")
		}
		return strings.Repeat(s, int(n)), nil
	})
	method("toString", func(in *Interp, this Value, args []Value) (Value, error) {
		return selfString(in, this)
	})
}

// setupNumberBoolean installs Number, Boolean, and their prototypes.
func (in *Interp) setupNumberBoolean() {
	numberCtor := in.native("Number", func(in *Interp, this Value, args []Value) (Value, error) {
		if len(args) == 0 {
			return 0.0, nil
		}
		return in.ToNumber(args[0])
	})
	numberCtor.SetHidden("prototype", in.numberProto)
	numberCtor.SetHidden("MAX_SAFE_INTEGER", float64(1<<53-1))
	numberCtor.SetHidden("MIN_SAFE_INTEGER", -float64(1<<53-1))
	numberCtor.SetHidden("POSITIVE_INFINITY", math.Inf(1))
	numberCtor.SetHidden("NEGATIVE_INFINITY", math.Inf(-1))
	numberCtor.SetHidden("isInteger", in.native("isInteger", func(in *Interp, this Value, args []Value) (Value, error) {
		if len(args) == 0 {
			return false, nil
		}
		f, ok := args[0].(float64)
		return ok && f == math.Trunc(f) && !math.IsInf(f, 0), nil
	}))
	in.Global.Define("Number", numberCtor)

	np := in.numberProto
	np.SetHidden("toString", in.native("toString", func(in *Interp, this Value, args []Value) (Value, error) {
		f, ok := this.(float64)
		if !ok {
			v, err := in.ToNumber(this)
			if err != nil {
				return nil, err
			}
			f = v
		}
		radix := 10
		if len(args) > 0 {
			if _, isU := args[0].(Undefined); !isU {
				r, err := in.ToNumber(args[0])
				if err != nil {
					return nil, err
				}
				radix = int(r)
			}
		}
		if radix == 10 {
			return printer.FormatNumber(f), nil
		}
		if radix < 2 || radix > 36 {
			return nil, in.Throw("RangeError", "toString() radix must be between 2 and 36")
		}
		if f != math.Trunc(f) || math.IsNaN(f) || math.IsInf(f, 0) {
			return printer.FormatNumber(f), nil
		}
		return strconv.FormatInt(int64(f), radix), nil
	}))
	np.SetHidden("toFixed", in.native("toFixed", func(in *Interp, this Value, args []Value) (Value, error) {
		f, ok := this.(float64)
		if !ok {
			v, err := in.ToNumber(this)
			if err != nil {
				return nil, err
			}
			f = v
		}
		digits := 0
		if len(args) > 0 {
			d, err := in.ToNumber(args[0])
			if err != nil {
				return nil, err
			}
			digits = int(d)
		}
		if digits < 0 || digits > 100 {
			return nil, in.Throw("RangeError", "toFixed() digits out of range")
		}
		return strconv.FormatFloat(f, 'f', digits, 64), nil
	}))

	booleanCtor := in.native("Boolean", func(in *Interp, this Value, args []Value) (Value, error) {
		if len(args) == 0 {
			return false, nil
		}
		return ToBoolean(args[0]), nil
	})
	booleanCtor.SetHidden("prototype", in.booleanProto)
	in.Global.Define("Boolean", booleanCtor)

	bp := in.booleanProto
	bp.SetHidden("toString", in.native("toString", func(in *Interp, this Value, args []Value) (Value, error) {
		if b, ok := this.(bool); ok && b {
			return "true", nil
		}
		return "false", nil
	}))
}
