package interp

import (
	"io"
	"strings"
	"testing"

	"repro/internal/parser"

	"repro/internal/ast"
)

// Additional semantic coverage: error paths, coercion corners, and builtin
// behaviour the first suite does not touch.

func TestTypeErrors(t *testing.T) {
	cases := []struct{ src, name string }{
		{`var x = undefined; x.p;`, "TypeError"},
		{`var x = null; x.p = 1;`, "TypeError"},
		{`var x = 5; x();`, "TypeError"},
		{`new 42();`, "TypeError"},
		{`1 instanceof 2;`, "TypeError"},
		{`"k" in 5;`, "TypeError"},
	}
	for _, c := range cases {
		_, err := tryRun(c.src)
		if err == nil || !strings.Contains(err.Error(), c.name) {
			t.Errorf("%q should raise %s, got %v", c.src, c.name, err)
		}
	}
}

func TestWritesToPrimitivesSilentlyDrop(t *testing.T) {
	expect(t, `var s = "abc"; s.x = 1; console.log(s.x);`, "undefined")
	expect(t, `var n = 5; n.y = 2; console.log(n.y);`, "undefined")
}

func TestStringCoercionCorners(t *testing.T) {
	expect(t, `console.log("" + null, "" + undefined, "" + true);`, "null undefined true")
	expect(t, `console.log("" + [1, 2], "" + {});`, "1,2 [object Object]")
	expect(t, `console.log(+"", +" 42 ", +"0x10");`, "0 42 16")
	expect(t, `console.log(+"Infinity", +"-Infinity");`, "Infinity -Infinity")
	expect(t, `console.log(Number(""), Number("3.5"), Number(false));`, "0 3.5 0")
	expect(t, `console.log(String(1.5), String(null), String([3]));`, "1.5 null 3")
}

func TestLooseEqualityMatrix(t *testing.T) {
	expect(t, `console.log(0 == "", 0 == "0", "" == "0");`, "true true false")
	expect(t, `console.log(false == 0, true == 1, true == "1");`, "true true true")
	expect(t, `console.log([1] == 1, [] == 0);`, "true true")
	expect(t, `var o = {}; console.log(o == o, o == {});`, "true false")
}

func TestToPrimitiveOrder(t *testing.T) {
	// Default hint tries valueOf first; string hint tries toString first.
	expect(t, `
var o = {
  valueOf: function () { return 1; },
  toString: function () { return "s"; }
};
console.log(o + 0, "" + o, String(o));`, "1 1 s")
	// An object whose valueOf returns an object falls back to toString.
	expect(t, `
var o = { valueOf: function () { return {}; }, toString: function () { return "t"; } };
console.log(o + "!");`, "t!")
	// Neither returning a primitive is a TypeError.
	_, err := tryRun(`
var o = { valueOf: function () { return {}; }, toString: function () { return {}; } };
o + 1;`)
	if err == nil || !strings.Contains(err.Error(), "TypeError") {
		t.Errorf("unconvertible object should throw, got %v", err)
	}
}

func TestShiftAndCompareCorners(t *testing.T) {
	expect(t, `console.log(1 << 33, 1 << 32);`, "2 1") // shift counts mask to 5 bits
	expect(t, `console.log("10" < "9", 10 < 9);`, "true false")
	expect(t, `console.log("a" < 1);`, "false") // NaN comparison
	expect(t, `console.log(null >= 0, undefined >= 0);`, "true false")
}

func TestErrorObjects(t *testing.T) {
	expect(t, `
var e = new TypeError("msg");
console.log(e.name, e.message, e instanceof TypeError || e instanceof Error, e.toString());`,
		"TypeError msg true TypeError: msg")
	expect(t, `var e = new Error(); console.log(e.toString());`, "Error")
}

func TestFunctionLength(t *testing.T) {
	expect(t, `function f(a, b, c) {} console.log(f.length);`, "3")
}

func TestArraySparseAndNested(t *testing.T) {
	expect(t, `
var a = [];
a[2] = "z";
var ks = [];
for (var k in a) { ks.push(k); }
console.log(ks.join("|"), a.length);`, "0|1|2 3")
	expect(t, `
var grid = [[1, 2], [3, 4]];
grid[1][0] = 9;
console.log(grid[0][1], grid[1][0]);`, "2 9")
}

func TestArrayNonIndexProps(t *testing.T) {
	expect(t, `
var a = [1, 2];
a.tag = "hello";
console.log(a.tag, a.length);`, "hello 2")
}

func TestObjectKeysOrderWithDelete(t *testing.T) {
	expect(t, `
var o = { a: 1, b: 2, c: 3 };
delete o.b;
o.d = 4;
console.log(Object.keys(o).join(""));`, "acd")
}

func TestGetterOnPrototypeChain(t *testing.T) {
	expect(t, `
var proto = { get kind() { return "proto-" + this.tag; } };
var o = Object.create(proto);
o.tag = "x";
console.log(o.kind);`, "proto-x")
}

func TestDefinePropertyDescriptor(t *testing.T) {
	expect(t, `
var o = { a: 1 };
var d = Object.getOwnPropertyDescriptor(o, "a");
console.log(d.value, d.enumerable);
console.log(Object.getOwnPropertyDescriptor(o, "missing"));`, "1 true", "undefined")
}

func TestNumberFormatting(t *testing.T) {
	expect(t, `console.log(0.1 + 0.2);`, "0.30000000000000004")
	expect(t, `console.log(1e21, 1e20);`, "1e+21 100000000000000000000")
	expect(t, `console.log(-0 === 0);`, "true")
	expect(t, `console.log(1/3);`, "0.3333333333333333")
}

func TestThrowNonError(t *testing.T) {
	expect(t, `
try { throw 42; } catch (e) { console.log(typeof e, e + 1); }`, "number 43")
	expect(t, `
try { throw [1, 2]; } catch (e) { console.log(e.length); }`, "2")
}

func TestNestedTryRethrow(t *testing.T) {
	expect(t, `
var log = [];
try {
  try {
    throw new Error("inner");
  } catch (e) {
    log.push("caught:" + e.message);
    throw new Error("outer");
  } finally {
    log.push("fin1");
  }
} catch (e2) {
  log.push("caught:" + e2.message);
}
console.log(log.join(" "));`, "caught:inner fin1 caught:outer")
}

func TestBreakInsideTryFinally(t *testing.T) {
	expect(t, `
var log = [];
for (var i = 0; i < 3; i++) {
  try {
    if (i === 1) { break; }
    log.push(i);
  } finally {
    log.push("f" + i);
  }
}
console.log(log.join(","));`, "0,f0,f1")
}

func TestVoidDeleteTypeofChains(t *testing.T) {
	expect(t, `console.log(typeof typeof 1);`, "string")
	expect(t, `var o = { p: 1 }; console.log(delete o.p, delete o.p, o.p);`, "true true undefined")
	expect(t, `console.log(void (1 + 2));`, "undefined")
}

func TestSeededRandomDiffersAcrossSeeds(t *testing.T) {
	prog := "console.log(Math.random());"
	out1, _ := tryRun(prog)
	in2Out := runWithSeed(t, prog, 999)
	if out1 == in2Out {
		t.Error("different seeds should give different Math.random streams")
	}
}

func runWithSeed(t *testing.T, src string, seed uint64) string {
	t.Helper()
	prog, err := parserParse(src)
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	in := New(Options{Out: writerOf(&sb), Seed: seed})
	if err := in.RunProgram(prog); err != nil {
		t.Fatal(err)
	}
	return sb.String()
}

func TestDisplayFormats(t *testing.T) {
	expect(t, `console.log([1, [2, 3], "x"]);`, "1,2,3,x")
	expect(t, `console.log(function named() {});`, "[function named]")
	expect(t, `console.log({});`, "[object Object]")
	expect(t, `console.log(new Error("oops"));`, "Error: oops")
}

func TestStepsAndDepthAccounting(t *testing.T) {
	prog, err := parserParse(`
function r(n) { if (n === 0) { return 0; } return r(n - 1); }
r(10);`)
	if err != nil {
		t.Fatal(err)
	}
	in := New(Options{})
	if err := in.RunProgram(prog); err != nil {
		t.Fatal(err)
	}
	if in.Depth() != 0 {
		t.Errorf("depth must return to zero, got %d", in.Depth())
	}
	if in.MaxDepth() <= 0 {
		t.Error("MaxDepth must be positive")
	}
}

func TestAtomicSections(t *testing.T) {
	in := New(Options{})
	if in.InAtomic() {
		t.Error("fresh interp should not be atomic")
	}
	in.EnterAtomic()
	in.EnterAtomic()
	in.ExitAtomic()
	if !in.InAtomic() {
		t.Error("nested atomic sections must count")
	}
	in.ExitAtomic()
	if in.InAtomic() {
		t.Error("atomic sections should unwind")
	}
}

func parserParse(src string) (*ast.Program, error) { return parser.Parse(src) }

func writerOf(sb *strings.Builder) io.Writer { return sb }
