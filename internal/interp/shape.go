package interp

import "sync/atomic"

// Hidden classes ("shapes"). Every *Object with own properties points at a
// Shape that describes its property layout: Shape.keys lists the own keys in
// insertion order and Shape.index maps each key to an index into the
// object's flat slots array. Objects created along the same code path — the
// same sequence of property additions on the same prototype — share a Shape,
// because each addition follows the same cached transition edge. That
// sharing is what makes property inline caches possible: a cache entry that
// observed "key k lives at slot 3 of shape S" is valid for every object
// whose shape pointer is still S, so a hit is one pointer compare plus an
// array index instead of a hash lookup (and, for misses that walked the
// prototype chain, instead of a whole chain of hash lookups).
//
// Shape identity doubles as the invalidation mechanism. Any change that
// could make a cached (shape, slot) pair stale moves the object to a
// different Shape pointer:
//
//   - adding a property follows (or creates) a transition edge to a child
//     shape; the edge is keyed by (name, kind), so a data property and an
//     accessor property of the same name reach different shapes and
//     accessor-ness is a shape-stable fact — cached fast paths never need
//     to re-check it beyond the shape compare;
//   - deleting a property rebuilds the shape from the root without the
//     deleted key (and compacts the slots array to match), replaying each
//     surviving key with its recorded kind;
//   - converting a data property to an accessor, or back, rebuilds the
//     shape from the root with the new kind on that key's edge — the
//     object lands on a different (but canonical, shareable) shape;
//   - changing the prototype re-roots the shape under the new prototype's
//     transition tree, again replaying kinds.
//
// Prototype-chain caches (a hit found on a holder object some hops up the
// chain) additionally guard on the holder's shape and on protoEpoch, a
// global counter bumped whenever an object known to serve as a prototype
// gains a key, loses a key, changes a property's data/accessor kind, or has
// its own prototype replaced. The epoch catches the one case shape pointers
// cannot: an object *between* the receiver and the cached holder gaining a
// shadowing property. Objects are marked as prototypes (usedAsProto) the
// first time an inline-cache fill walks across them.
//
// Shape trees are rooted per prototype: the root shape for objects whose
// prototype is P hangs off P itself (Object.shapeRoot), so realms never
// share shapes and a shape compare implies a prototype compare. Objects
// with a nil prototype get a private root.

// Shape is one node of a transition tree: the layout of every object that
// was built by the same sequence of property additions.
type Shape struct {
	root     *Shape         // the empty shape this tree grew from
	keys     []string       // own keys in insertion order; slot i holds keys[i]
	accessor []bool         // accessor[i]: slot i holds a getter/setter pair
	index    map[string]int // key → slot; nil for the empty root

	// transitions maps a (key, kind) edge to the child shape reached by
	// adding that property. Kind is part of the edge so accessor-bearing
	// objects never share a shape with data-shaped ones: the set-IC's
	// own-property fast path writes slots[slot].Value on a bare shape
	// compare, which is only sound if the compare also proves data-ness.
	transitions map[shapeEdge]*Shape
}

// shapeEdge identifies a transition: the property name plus whether the
// property is an accessor.
type shapeEdge struct {
	key      string
	accessor bool
}

// protoEpoch invalidates prototype-chain cache entries that shape identity
// alone cannot guard (see the package comment above). It is global rather
// than per-realm because Object mutators have no realm pointer; cross-realm
// bumps only cause spurious cache misses, never wrong results.
var protoEpoch atomic.Uint32

// bumpProtoEpoch invalidates every prototype-chain inline-cache entry.
func bumpProtoEpoch() { protoEpoch.Add(1) }

// emptyShapeFor returns the root shape for objects whose prototype is
// proto, creating and memoizing it on the prototype. A nil prototype gets a
// private root (no sharing, but Object.create(null) objects are rare).
func emptyShapeFor(proto *Object) *Shape {
	if proto == nil {
		s := &Shape{}
		s.root = s
		return s
	}
	if proto.shapeRoot == nil {
		s := &Shape{}
		s.root = s
		proto.shapeRoot = s
	}
	return proto.shapeRoot
}

// transition returns the shape reached by adding key with the given kind,
// creating and caching the edge on first use. The new key's slot is
// len(s.keys).
func (s *Shape) transition(key string, accessor bool) *Shape {
	e := shapeEdge{key, accessor}
	if c, ok := s.transitions[e]; ok {
		return c
	}
	idx := make(map[string]int, len(s.keys)+1)
	for k, v := range s.index {
		idx[k] = v
	}
	idx[key] = len(s.keys)
	c := &Shape{
		root:     s.root,
		keys:     append(s.keys[:len(s.keys):len(s.keys)], key),
		accessor: append(s.accessor[:len(s.accessor):len(s.accessor)], accessor),
		index:    idx,
	}
	if s.transitions == nil {
		s.transitions = make(map[shapeEdge]*Shape, 1)
	}
	s.transitions[e] = c
	return c
}

// rebuild returns the shape reached by replaying s's properties onto base,
// preserving each key's recorded kind — the invariant every rebuild must
// uphold, since the set-IC's direct slot write trusts shape identity to
// prove data-ness. skip drops that slot's key (delete); flip re-keys that
// slot's edge with the opposite kind (in-place data↔accessor conversion);
// pass -1 for either to leave all slots as recorded.
func (s *Shape) rebuild(base *Shape, skip, flip int) *Shape {
	for j, k := range s.keys {
		if j == skip {
			continue
		}
		kind := s.accessor[j]
		if j == flip {
			kind = !kind
		}
		base = base.transition(k, kind)
	}
	return base
}

// slotOf returns the slot index of key, or -1.
func (s *Shape) slotOf(key string) int {
	if s == nil {
		return -1
	}
	if i, ok := s.index[key]; ok {
		return i
	}
	return -1
}

// Inline-cache entries. The interpreter owns one array per access kind,
// indexed by the site IDs internal/resolve assigns to ast.Member and
// global ast.Ident nodes; site 0 is reserved for "no cache".

// getIC caches a property read site. holder == nil means the property was
// found on the receiver itself at slot; otherwise it was found on holder
// (somewhere up the prototype chain), guarded by holder's shape and by
// protoEpoch.
type getIC struct {
	shape  *Shape
	holder *Object
	hshape *Shape
	slot   int32
	epoch  uint32
}

// setIC caches a property write site. With next == nil the write hits an
// existing own property at slot. With next != nil the write adds a new
// property: the receiver moves from shape to next and the value is appended
// at slot; protoEpoch guards against an accessor appearing anywhere on the
// chain since the entry was filled.
type setIC struct {
	shape *Shape
	next  *Shape
	slot  int32
	epoch uint32
}

// icArray is a site-indexed cache store. Site IDs are process-unique and
// monotonically increasing (internal/resolve), so a realm created late in
// a long process sees only a narrow, high-valued band of IDs — the ones in
// the programs it actually runs. Indexing relative to the first site the
// realm touches keeps the array proportional to that band instead of to
// the process-lifetime maximum.
type icArray[T any] struct {
	base    uint32
	entries []T
}

// at returns the entry for site, growing (and, rarely, re-basing) the
// store as needed.
func (a *icArray[T]) at(site uint32) *T {
	if a.entries == nil {
		a.base = site
		a.entries = make([]T, 64)
		return &a.entries[0]
	}
	if site < a.base {
		// A site below the current base: shift existing entries up. Rare —
		// execution order roughly follows assignment order.
		shift := a.base - site
		grown := make([]T, shift+uint32(len(a.entries)))
		copy(grown[shift:], a.entries)
		a.base, a.entries = site, grown
	}
	idx := site - a.base
	if int(idx) >= len(a.entries) {
		n := len(a.entries) * 2
		if n <= int(idx) {
			n = int(idx) + 1
		}
		grown := make([]T, n)
		copy(grown, a.entries)
		a.entries = grown
	}
	return &a.entries[idx]
}

// icGetAt returns the cache entry for a read site.
func (in *Interp) icGetAt(site uint32) *getIC { return in.icGet.at(site) }

// icSetAt returns the cache entry for a write site.
func (in *Interp) icSetAt(site uint32) *setIC { return in.icSet.at(site) }

// icCellAt returns the global-binding cell cached for an identifier site.
func (in *Interp) icCellAt(site uint32) *cell { return *in.icGlobal.at(site) }

// icCacheCell records the binding cell for an identifier site.
func (in *Interp) icCacheCell(site uint32, c *cell) { *in.icGlobal.at(site) = c }

// lookupPath resolves key starting at o, returning the holding object and
// slot index, or (nil, -1) when the property exists nowhere on the chain.
// The walk marks every prototype it crosses (usedAsProto) so that inline-
// cache entries filled from its result — which guard on the receiver's and
// holder's shapes plus protoEpoch — stay sound when an object between the
// two later gains a shadowing property. The walk itself is deliberately
// uncached: realms are short-lived in the harness and per-level shape
// lookups are already single hash probes, so the per-site caches (filled
// from this result) carry the repeat traffic.
func (in *Interp) lookupPath(o *Object, key string) (*Object, int) {
	o.ensureShape()
	for p := o; p != nil; p = p.Proto {
		if p != o {
			p.usedAsProto = true
		}
		if idx := p.ownOrLazySlot(key); idx >= 0 {
			return p, idx
		}
	}
	return nil, -1
}
