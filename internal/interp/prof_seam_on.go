//go:build !stopify_noprof

package interp

// profSeam compiles the guest-level sampling profiler in. This is the
// per-instruction instrumentation seam from the ROADMAP: when false (build
// tag stopify_noprof) every profiler branch is a dead compare on a package
// constant and the statement-boundary fast path is byte-identical to the
// pre-profiler interpreter. IFC and record-replay hooks are expected to
// ride the same seam.
const profSeam = true
