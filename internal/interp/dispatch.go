package interp

import (
	"errors"
	"unsafe"

	"repro/internal/ast"
	"repro/internal/bytecode"
)

// This file is the bytecode execution engine: a flat fetch–execute loop
// over the instruction stream internal/bytecode compiles from resolved
// function bodies. It shares everything else with the tree-walker — Value
// representation, Env frames, shapes, the per-site inline caches, the
// engine cost model — so the two engines differ only in dispatch. The
// tree-walker remains the substrate for dynamic code (the global frame,
// eval'd fragments, unresolved trees) and for the per-statement escape
// hatches the compiler emits.

// ErrStepBudget aborts execution when Options.MaxSteps is exhausted. Both
// engines check the budget at the same statement boundaries, so a budgeted
// run diverges in neither output nor completion — the property the
// differential fuzz harness relies on.
var ErrStepBudget = errors.New("interp: step budget exhausted")

// forInIter is the reified state of a for-in loop: the snapshot of
// enumerable keys taken at loop entry (mutation during iteration does not
// grow the walk, as in the tree-walker).
type forInIter struct {
	keys []string
	i    int
}

// iterValue wraps a for-in iterator as an engine-internal Value for the
// operand stack. It never escapes the dispatch loop: OpForInInit pushes it,
// OpForInNext reads it, and the exit path pops it.
func iterValue(it *forInIter) Value {
	return Value{tag: tagIter, ptr: unsafe.Pointer(it)}
}

func (v Value) iter() *forInIter { return (*forInIter)(v.ptr) }

// tryFrame is one active try/catch region in a chunk invocation.
type tryFrame struct {
	catchPC  int32 // -1 for a catchless try (charge-only region)
	sp       int
	envDepth int
}

// vmStackCap is the capacity of the per-realm operand-stack arena. Frames
// beyond it (very deep recursion) fall back to private allocations.
const vmStackCap = 8192

// chunk is a compiled function body plus its realm-side constant pool: the
// bytecode.Chunk's typed constants converted to tagged Values exactly once,
// so OpConst is a single indexed copy with no representation check.
type chunk struct {
	*bytecode.Chunk
	consts []Value
}

// constValue converts one compiler constant into the tagged representation.
func constValue(c bytecode.Const) Value {
	switch c.Kind {
	case bytecode.ConstNumber:
		return NumberValue(c.Num)
	case bytecode.ConstString:
		return StringValue(c.Str)
	case bytecode.ConstBool:
		return BoolValue(c.Num != 0)
	case bytecode.ConstNull:
		return Null
	}
	return Undefined
}

// chunkFor returns the realm's compiled chunk for fn, compiling on first
// call. A nil entry records a function the compiler rejected, so the
// tree-walker handles it without re-attempting compilation. The cache is
// per-realm (like the inline caches), which keeps compilation free of
// cross-realm synchronization.
func (in *Interp) chunkFor(fn *ast.Func) *chunk {
	if ch, ok := in.chunks[fn]; ok {
		return ch
	}
	bc := bytecode.CompileCached(fn)
	var ch *chunk
	if bc != nil {
		ch = &chunk{Chunk: bc}
		if n := len(bc.Consts); n > 0 {
			ch.consts = make([]Value, n)
			for i, c := range bc.Consts {
				ch.consts[i] = constValue(c)
			}
		}
	}
	if in.chunks == nil {
		in.chunks = make(map[*ast.Func]*chunk)
	}
	in.chunks[fn] = ch
	if ch == nil {
		in.chunkFails++
	} else {
		in.chunkFuncs++
	}
	return ch
}

// BytecodeEnabled reports whether this realm dispatches resolved functions
// through the bytecode engine.
func (in *Interp) BytecodeEnabled() bool { return in.bytecode }

// BytecodeStats reports how many functions this realm compiled to bytecode,
// how many the compiler rejected, and how many chunk invocations ran — the
// "which engine actually executed" evidence used by tests and the bench
// harness.
func (in *Interp) BytecodeStats() (compiled, rejected int, runs uint64) {
	return in.chunkFuncs, in.chunkFails, in.chunkRuns
}

// runChunk executes a compiled function body in env (already laid out by
// Call: parameters, this, new.target, arguments, hoisted declarations).
// It returns the completion the tree-walker's Call epilogue would have
// produced: (value, nil) for return/fall-off, or the propagating error.
func (in *Interp) runChunk(ch *chunk, env *Env) (Value, error) {
	in.chunkRuns++

	// Operand stack: a window of the realm arena, or a private slice when
	// the arena is full. The arena's capacity is fixed, so the backing
	// array never moves and nested invocations cannot invalidate this
	// frame's window.
	if cap(in.vmStack) == 0 {
		in.vmStack = make([]Value, 0, vmStackCap)
	}
	mark := len(in.vmStack)
	var stack []Value
	arena := mark+ch.MaxStack <= cap(in.vmStack)
	if arena {
		in.vmStack = in.vmStack[:mark+ch.MaxStack]
		stack = in.vmStack[mark : mark+ch.MaxStack : mark+ch.MaxStack]
		// The window is released un-zeroed: unlike the argument arena,
		// whose windows outlive arbitrary callee work, stack windows are
		// overwritten by the very next call at this depth, so stale
		// values pin at most one arena's worth of dead objects — a
		// bounded cost that buys back a per-call memclr.
		defer func() { in.vmStack = in.vmStack[:mark] }()
	} else {
		stack = make([]Value, ch.MaxStack)
	}

	var tries []tryFrame
	if ch.MaxTries > 0 {
		tries = make([]tryFrame, 0, ch.MaxTries)
	}

	code := ch.Code
	pc := 0
	sp := 0
	envDepth := 0
	var err error

loop:
	for {
		ins := code[pc]
		pc++
		switch ins.Op {
		case bytecode.OpStmt:
			in.Steps += uint64(ins.A)
			in.charge(int(ins.A))
			if in.Steps > in.stepLimit {
				if err := in.stepBoundary(); err != nil {
					return Undefined, err
				}
			}
			if ins.B != 0 {
				in.charge(in.Engine.BranchCost)
			}

		case bytecode.OpConst:
			stack[sp] = ch.consts[ins.A]
			sp++
		case bytecode.OpUndef:
			stack[sp] = Undefined
			sp++
		case bytecode.OpNull:
			stack[sp] = Null
			sp++
		case bytecode.OpTrue:
			stack[sp] = True
			sp++
		case bytecode.OpFalse:
			stack[sp] = False
			sp++
		case bytecode.OpPop:
			sp--
		case bytecode.OpDup:
			stack[sp] = stack[sp-1]
			sp++
		case bytecode.OpDup2:
			stack[sp] = stack[sp-2]
			stack[sp+1] = stack[sp-1]
			sp += 2
		case bytecode.OpDupX1:
			t := stack[sp-1]
			stack[sp-1] = stack[sp-2]
			stack[sp-2] = t
			stack[sp] = t
			sp++
		case bytecode.OpDupX2:
			t := stack[sp-1]
			stack[sp-1] = stack[sp-2]
			stack[sp-2] = stack[sp-3]
			stack[sp-3] = t
			stack[sp] = t
			sp++

		case bytecode.OpGetLocal:
			stack[sp] = env.slots[ins.A]
			sp++
		case bytecode.OpSetLocal:
			sp--
			env.slots[ins.A] = stack[sp]
		case bytecode.OpGetRef:
			stack[sp] = env.GetRef(ast.Ref(uint32(ins.A)))
			sp++
		case bytecode.OpSetRef:
			sp--
			env.SetRef(ast.Ref(uint32(ins.A)), stack[sp])
		case bytecode.OpGetGlobal:
			if site := uint32(ins.A); site != 0 {
				if c := in.icCellAt(site); c != nil {
					stack[sp] = c.v
					sp++
					break
				}
			}
			v, e := in.globalMiss(env, ch.Names[ins.B], uint32(ins.A))
			if e != nil {
				err = e
				goto fail
			}
			stack[sp] = v
			sp++
		case bytecode.OpSetGlobal:
			sp--
			v := stack[sp]
			if site := uint32(ins.A); site != 0 {
				if c := in.icCellAt(site); c != nil {
					c.v = v
					break
				}
			}
			name := ch.Names[ins.B]
			c, ok := env.setDynamicCell(name, v)
			if !ok {
				root := env.Root()
				root.Define(name, v)
				c = root.Cell(name)
			}
			if c != nil && ins.A != 0 {
				in.icCacheCell(uint32(ins.A), c)
			}
		case bytecode.OpGetDyn:
			name := ch.Names[ins.B]
			v, ok := env.Lookup(name)
			if !ok {
				err = in.Throw("ReferenceError", "%s is not defined", name)
				goto fail
			}
			stack[sp] = v
			sp++
		case bytecode.OpSetDyn:
			sp--
			name := ch.Names[ins.B]
			if !env.Set(name, stack[sp]) {
				env.Root().Define(name, stack[sp])
			}
		case bytecode.OpTypeofGlobal:
			var v Value
			found := false
			if site := uint32(ins.A); site != 0 {
				if c := in.icCellAt(site); c != nil {
					v, found = c.v, true
				}
			}
			if !found {
				name := ch.Names[ins.B]
				var c *cell
				v, found, c = env.lookupDynamicCell(name)
				if found && c != nil && ins.A != 0 {
					in.icCacheCell(uint32(ins.A), c)
				}
			}
			if found {
				stack[sp] = typeOfValue(v)
			} else {
				stack[sp] = typeofUndefined
			}
			sp++
		case bytecode.OpTypeofDyn:
			if v, ok := env.Lookup(ch.Names[ins.B]); ok {
				stack[sp] = typeOfValue(v)
			} else {
				stack[sp] = typeofUndefined
			}
			sp++
		case bytecode.OpThisDyn:
			if v, ok := env.Lookup("this"); ok {
				stack[sp] = v
			} else {
				stack[sp] = Undefined
			}
			sp++
		case bytecode.OpNewTargetDyn:
			if v, ok := env.Lookup("new.target"); ok {
				stack[sp] = v
			} else {
				stack[sp] = Undefined
			}
			sp++

		case bytecode.OpClosure:
			stack[sp] = ObjectValue(in.makeFunction(ch.Funcs[ins.A], env))
			sp++
		case bytecode.OpArray:
			n := int(ins.A)
			elems := make([]Value, n)
			copy(elems, stack[sp-n:sp])
			sp -= n
			in.charge(in.Engine.ObjectCreateCost)
			stack[sp] = ObjectValue(in.NewArray(elems))
			sp++
		case bytecode.OpNewObject:
			in.charge(in.Engine.ObjectCreateCost)
			stack[sp] = ObjectValue(in.NewPlainObject())
			sp++
		case bytecode.OpSetProp:
			sp--
			// Object-literal property: same meter charge as the tree-walker's
			// literal path, so a budgeted guest dies identically on both
			// engines.
			in.chargeMem(memPropBytes)
			stack[sp-1].Obj().SetOwn(ch.Names[ins.A], stack[sp])
		case bytecode.OpSetAccessor:
			acc := ch.Accessors[ins.A]
			in.chargeMem(memPropBytes) // literal accessor prop, as OpSetProp
			fn := in.makeFunction(ch.Funcs[acc.Fn], env)
			obj := stack[sp-1].Obj()
			key := ch.Names[acc.Name]
			var getter, setter *Object
			if slot := obj.Own(key); slot != nil {
				getter, setter = slot.Getter, slot.Setter
			}
			if acc.Setter {
				setter = fn
			} else {
				getter = fn
			}
			obj.SetAccessor(key, getter, setter, true)

		case bytecode.OpGetMember:
			v, e := in.getMemberSite(stack[sp-1], ch.Names[ins.A], uint32(ins.B))
			if e != nil {
				err = e
				goto fail
			}
			stack[sp-1] = v
		case bytecode.OpSetMember:
			base := stack[sp-1]
			v := stack[sp-2]
			sp -= 2
			if e := in.setMemberSite(base, ch.Names[ins.A], v, uint32(ins.B)); e != nil {
				err = e
				goto fail
			}
		case bytecode.OpSetMemberKeep:
			v := stack[sp-1]
			base := stack[sp-2]
			sp -= 2
			if e := in.setMemberSite(base, ch.Names[ins.A], v, uint32(ins.B)); e != nil {
				err = e
				goto fail
			}
			stack[sp] = v
			sp++
		case bytecode.OpGetMethod:
			v, e := in.getMemberSite(stack[sp-1], ch.Names[ins.A], uint32(ins.B))
			if e != nil {
				err = e
				goto fail
			}
			stack[sp] = v
			sp++
		case bytecode.OpGetMethodIndex:
			idx := stack[sp-1]
			base := stack[sp-2]
			v, ok := in.getElemFast(base, idx)
			if !ok {
				key, e := in.ToStringValue(idx)
				if e != nil {
					err = e
					goto fail
				}
				v, e = in.GetMember(base, key)
				if e != nil {
					err = e
					goto fail
				}
			}
			stack[sp-1] = v
		case bytecode.OpGetIndex:
			idx := stack[sp-1]
			base := stack[sp-2]
			sp--
			v, ok := in.getElemFast(base, idx)
			if !ok {
				key, e := in.ToStringValue(idx)
				if e != nil {
					err = e
					goto fail
				}
				v, e = in.GetMember(base, key)
				if e != nil {
					err = e
					goto fail
				}
			}
			stack[sp-1] = v
		case bytecode.OpSetIndex:
			idx := stack[sp-1]
			base := stack[sp-2]
			v := stack[sp-3]
			sp -= 3
			if e := in.setIndexed(base, idx, v); e != nil {
				err = e
				goto fail
			}
		case bytecode.OpSetIndexKeep:
			v := stack[sp-1]
			idx := stack[sp-2]
			base := stack[sp-3]
			sp -= 3
			if e := in.setIndexed(base, idx, v); e != nil {
				err = e
				goto fail
			}
			stack[sp] = v
			sp++
		case bytecode.OpToPropKey:
			if stack[sp-1].IsObject() {
				key, e := in.ToStringValue(stack[sp-1])
				if e != nil {
					err = e
					goto fail
				}
				stack[sp-1] = StringValue(key)
			}
		case bytecode.OpDeleteMember:
			sp--
			in.deleteKey(stack[sp], ch.Names[ins.A])
			stack[sp] = True
			sp++
		case bytecode.OpDeleteIndex:
			idx := stack[sp-1]
			base := stack[sp-2]
			sp -= 2
			key, e := in.ToStringValue(idx)
			if e != nil {
				err = e
				goto fail
			}
			in.deleteKey(base, key)
			stack[sp] = True
			sp++

		case bytecode.OpCall:
			argc := int(ins.A)
			v, e := in.Call(stack[sp-argc-1], stack[sp-argc-2], stack[sp-argc:sp], Undefined)
			if e != nil {
				err = e
				goto fail
			}
			sp -= argc + 1
			stack[sp-1] = v
		case bytecode.OpNew:
			argc := int(ins.A)
			v, e := in.Construct(stack[sp-argc-1], stack[sp-argc:sp])
			if e != nil {
				err = e
				goto fail
			}
			sp -= argc
			stack[sp-1] = v
		case bytecode.OpReturn:
			return stack[sp-1], nil
		case bytecode.OpReturnUndef:
			return Undefined, nil

		case bytecode.OpJump:
			pc = int(ins.A)
		case bytecode.OpJumpIfFalse:
			sp--
			if !ToBoolean(stack[sp]) {
				pc = int(ins.A)
			}
		case bytecode.OpJumpIfTrue:
			sp--
			if ToBoolean(stack[sp]) {
				pc = int(ins.A)
			}
		case bytecode.OpJumpIfFalsyKeep:
			if !ToBoolean(stack[sp-1]) {
				pc = int(ins.A)
			} else {
				sp--
			}
		case bytecode.OpJumpIfTruthyKeep:
			if ToBoolean(stack[sp-1]) {
				pc = int(ins.A)
			} else {
				sp--
			}

		case bytecode.OpAdd:
			l, r := stack[sp-2], stack[sp-1]
			if l.tag == TagNumber && r.tag == TagNumber {
				sp--
				stack[sp-1] = NumberValue(l.num + r.num)
				break
			}
			if l.tag == TagString && r.tag == TagString {
				v, e := in.concatStrings(l.Str(), r.Str())
				if e != nil {
					err = e
					goto fail
				}
				sp--
				stack[sp-1] = v
				break
			}
			v, e := in.applyBinary("+", l, r)
			if e != nil {
				err = e
				goto fail
			}
			sp--
			stack[sp-1] = v
		case bytecode.OpSub, bytecode.OpMul, bytecode.OpDiv:
			l, r := stack[sp-2], stack[sp-1]
			if l.tag == TagNumber && r.tag == TagNumber {
				sp--
				switch ins.Op {
				case bytecode.OpSub:
					stack[sp-1] = NumberValue(l.num - r.num)
				case bytecode.OpMul:
					stack[sp-1] = NumberValue(l.num * r.num)
				default:
					stack[sp-1] = NumberValue(l.num / r.num)
				}
				break
			}
			v, e := in.applyBinary(binOpName[ins.Op], l, r)
			if e != nil {
				err = e
				goto fail
			}
			sp--
			stack[sp-1] = v
		case bytecode.OpLt, bytecode.OpGt, bytecode.OpLe, bytecode.OpGe:
			l, r := stack[sp-2], stack[sp-1]
			if l.tag == TagNumber && r.tag == TagNumber {
				sp--
				// NaN comparisons are false on every operator, which
				// Go's float compare already gives.
				switch ins.Op {
				case bytecode.OpLt:
					stack[sp-1] = BoolValue(l.num < r.num)
				case bytecode.OpGt:
					stack[sp-1] = BoolValue(l.num > r.num)
				case bytecode.OpLe:
					stack[sp-1] = BoolValue(l.num <= r.num)
				default:
					stack[sp-1] = BoolValue(l.num >= r.num)
				}
				break
			}
			v, e := in.applyBinary(binOpName[ins.Op], l, r)
			if e != nil {
				err = e
				goto fail
			}
			sp--
			stack[sp-1] = v
		case bytecode.OpStrictEq:
			sp--
			stack[sp-1] = BoolValue(StrictEquals(stack[sp-1], stack[sp]))
		case bytecode.OpStrictNe:
			sp--
			stack[sp-1] = BoolValue(!StrictEquals(stack[sp-1], stack[sp]))
		case bytecode.OpEq, bytecode.OpNe:
			eq, e := in.looseEquals(stack[sp-2], stack[sp-1])
			if e != nil {
				err = e
				goto fail
			}
			sp--
			if ins.Op == bytecode.OpNe {
				eq = !eq
			}
			stack[sp-1] = BoolValue(eq)
		case bytecode.OpMod, bytecode.OpPow, bytecode.OpBitAnd, bytecode.OpBitOr,
			bytecode.OpBitXor, bytecode.OpShl, bytecode.OpShr, bytecode.OpUshr,
			bytecode.OpInstanceof, bytecode.OpIn:
			v, e := in.applyBinary(binOpName[ins.Op], stack[sp-2], stack[sp-1])
			if e != nil {
				err = e
				goto fail
			}
			sp--
			stack[sp-1] = v

		case bytecode.OpNot:
			stack[sp-1] = BoolValue(!ToBoolean(stack[sp-1]))
		case bytecode.OpNeg:
			if stack[sp-1].tag == TagNumber {
				stack[sp-1] = NumberValue(-stack[sp-1].num)
				break
			}
			f, e := in.ToNumber(stack[sp-1])
			if e != nil {
				err = e
				goto fail
			}
			stack[sp-1] = NumberValue(-f)
		case bytecode.OpToNumber:
			if stack[sp-1].tag == TagNumber {
				break
			}
			f, e := in.ToNumber(stack[sp-1])
			if e != nil {
				err = e
				goto fail
			}
			stack[sp-1] = NumberValue(f)
		case bytecode.OpBitNot:
			f, e := in.ToNumber(stack[sp-1])
			if e != nil {
				err = e
				goto fail
			}
			stack[sp-1] = NumberValue(float64(^ToInt32(f)))
		case bytecode.OpVoid:
			stack[sp-1] = Undefined
		case bytecode.OpTypeofVal:
			stack[sp-1] = typeOfValue(stack[sp-1])

		case bytecode.OpChargeBranch:
			in.charge(in.Engine.BranchCost)

		case bytecode.OpStrictEqConst:
			stack[sp-1] = BoolValue(StrictEquals(stack[sp-1], ch.consts[ins.A]))
		case bytecode.OpGlobalEqConst:
			var v Value
			found := false
			if site := uint32(ins.A); site != 0 {
				if c := in.icCellAt(site); c != nil {
					v, found = c.v, true
				}
			}
			if !found {
				var e error
				v, e = in.globalMiss(env, ch.Names[ins.B], uint32(ins.A))
				if e != nil {
					err = e
					goto fail
				}
			}
			stack[sp] = BoolValue(StrictEquals(v, ch.consts[ins.C]))
			sp++
		case bytecode.OpGetLocalMember:
			base := env.slots[ins.A]
			v, e := in.getMemberSite(base, ch.Names[ins.B], uint32(ins.C))
			if e != nil {
				err = e
				goto fail
			}
			stack[sp] = v
			sp++
		case bytecode.OpGetLocalMethod:
			base := env.slots[ins.A]
			v, e := in.getMemberSite(base, ch.Names[ins.B], uint32(ins.C))
			if e != nil {
				err = e
				goto fail
			}
			stack[sp] = base
			stack[sp+1] = v
			sp += 2
		case bytecode.OpCalleeGlobal:
			stack[sp] = Undefined
			sp++
			if site := uint32(ins.A); site != 0 {
				if c := in.icCellAt(site); c != nil {
					stack[sp] = c.v
					sp++
					break
				}
			}
			v, e := in.globalMiss(env, ch.Names[ins.B], uint32(ins.A))
			if e != nil {
				err = e
				goto fail
			}
			stack[sp] = v
			sp++
		case bytecode.OpCalleeLocal:
			stack[sp] = Undefined
			stack[sp+1] = env.slots[ins.A]
			sp += 2
		case bytecode.OpCall0Global:
			var fnv Value
			found := false
			if site := uint32(ins.A); site != 0 {
				if c := in.icCellAt(site); c != nil {
					fnv, found = c.v, true
				}
			}
			if !found {
				var e error
				fnv, e = in.globalMiss(env, ch.Names[ins.B], uint32(ins.A))
				if e != nil {
					err = e
					goto fail
				}
			}
			v, e := in.Call(fnv, Undefined, nil, Undefined)
			if e != nil {
				err = e
				goto fail
			}
			stack[sp] = v
			sp++
		case bytecode.OpJumpGlobalNeConst:
			var v Value
			found := false
			if site := uint32(ins.B); site != 0 {
				if c := in.icCellAt(site); c != nil {
					v, found = c.v, true
				}
			}
			if !found {
				var e error
				v, e = in.globalMiss(env, ch.Names[ch.GuardNames[int32(pc-1)]], uint32(ins.B))
				if e != nil {
					err = e
					goto fail
				}
			}
			if !StrictEquals(v, ch.consts[ins.C]) {
				pc = int(ins.A)
			}
		case bytecode.OpConstSetLocal:
			env.slots[ins.B] = ch.consts[ins.A]
		case bytecode.OpClosureSetLocal:
			env.slots[ins.B] = ObjectValue(in.makeFunction(ch.Funcs[ins.A], env))
		case bytecode.OpSetLocalStmt:
			sp--
			env.slots[ins.A] = stack[sp]
			in.Steps += uint64(ins.B)
			in.charge(int(ins.B))
			if in.Steps > in.stepLimit {
				if err := in.stepBoundary(); err != nil {
					return Undefined, err
				}
			}
			if ins.C != 0 {
				in.charge(in.Engine.BranchCost)
			}
		case bytecode.OpJumpIfFalseStmt:
			sp--
			if !ToBoolean(stack[sp]) {
				pc = int(ins.A)
				break
			}
			in.Steps += uint64(ins.B)
			in.charge(int(ins.B))
			if in.Steps > in.stepLimit {
				if err := in.stepBoundary(); err != nil {
					return Undefined, err
				}
			}
			if ins.C != 0 {
				in.charge(in.Engine.BranchCost)
			}
		case bytecode.OpStmtGetLocal:
			in.Steps += uint64(ins.B)
			in.charge(int(ins.B))
			if in.Steps > in.stepLimit {
				if err := in.stepBoundary(); err != nil {
					return Undefined, err
				}
			}
			if ins.C != 0 {
				in.charge(in.Engine.BranchCost)
			}
			stack[sp] = env.slots[ins.A]
			sp++
		case bytecode.OpStmtConst:
			in.Steps += uint64(ins.B)
			in.charge(int(ins.B))
			if in.Steps > in.stepLimit {
				if err := in.stepBoundary(); err != nil {
					return Undefined, err
				}
			}
			if ins.C != 0 {
				in.charge(in.Engine.BranchCost)
			}
			stack[sp] = ch.consts[ins.A]
			sp++
		case bytecode.OpCall0Local:
			fnv := env.slots[ins.A]
			v, e := in.Call(fnv, Undefined, nil, Undefined)
			if e != nil {
				err = e
				goto fail
			}
			stack[sp] = v
			sp++
		case bytecode.OpThrow:
			sp--
			in.charge(in.Engine.ThrowCost)
			err = &Thrown{Value: stack[sp]}
			goto fail
		case bytecode.OpTry:
			in.charge(in.Engine.TryCost)
			tries = append(tries, tryFrame{catchPC: ins.A, sp: sp, envDepth: envDepth})
		case bytecode.OpPopTry:
			tries = tries[:len(tries)-1]
		case bytecode.OpEnterCatch:
			sp--
			env = NewSlotEnv(env, ch.Scopes[ins.A])
			env.slots[0] = stack[sp]
			envDepth++
		case bytecode.OpLeaveScope:
			env = env.parent
			envDepth--

		case bytecode.OpForInInit:
			it := &forInIter{}
			if o := stack[sp-1].Obj(); o != nil {
				it.keys = o.OwnKeys()
			}
			stack[sp-1] = iterValue(it)
		case bytecode.OpForInNext:
			it := stack[sp-1].iter()
			if it.i >= len(it.keys) {
				pc = int(ins.A)
			} else {
				stack[sp] = StringValue(it.keys[it.i])
				it.i++
				sp++
			}

		case bytecode.OpExecStmt:
			e := in.execStmt(ch.Stmts[ins.A], env)
			if e == nil {
				break
			}
			switch t := e.(type) {
			case *returnErr:
				// The completion is consumed here and nothing else can
				// hold it; recycle it exactly as Call's epilogue does —
				// the single-consumer invariant the freelist depends on.
				v := t.value
				t.value = Value{}
				in.retFree = append(in.retFree, t)
				return v, nil
			case *breakErr:
				tab := ch.JumpTabs[ins.B]
				matched := false
				for i := range tab {
					tg := &tab[i]
					if t.label == "" {
						if !tg.BreakPlain {
							continue
						}
					} else if !hasLabel(tg.Labels, t.label) {
						continue
					}
					sp -= tg.BreakFix.PopIters
					for n := 0; n < tg.BreakFix.LeaveScopes; n++ {
						env = env.parent
						envDepth--
					}
					tries = tries[:len(tries)-tg.BreakFix.PopTries]
					pc = int(tg.BreakPC)
					matched = true
					break
				}
				if !matched {
					return Undefined, e
				}
			case *continueErr:
				tab := ch.JumpTabs[ins.B]
				matched := false
				for i := range tab {
					tg := &tab[i]
					if !tg.Loop {
						continue
					}
					if t.label != "" && !hasLabel(tg.Labels, t.label) {
						continue
					}
					sp -= tg.ContFix.PopIters
					for n := 0; n < tg.ContFix.LeaveScopes; n++ {
						env = env.parent
						envDepth--
					}
					tries = tries[:len(tries)-tg.ContFix.PopTries]
					pc = int(tg.ContPC)
					matched = true
					break
				}
				if !matched {
					return Undefined, e
				}
			default:
				err = e
				goto fail
			}

		default:
			return Undefined, errors.New("interp: unknown opcode " + ins.Op.String())
		}
		continue

	fail:
		if t, ok := err.(*Thrown); ok {
			for len(tries) > 0 {
				f := tries[len(tries)-1]
				tries = tries[:len(tries)-1]
				if f.catchPC < 0 {
					continue
				}
				for envDepth > f.envDepth {
					env = env.parent
					envDepth--
				}
				sp = f.sp
				stack[sp] = t.Value
				sp++
				pc = int(f.catchPC)
				err = nil
				continue loop
			}
		}
		return Undefined, err
	}
}

// globalMiss resolves a proved-global reference after an inline-cache
// miss: the by-name dynamic lookup plus the cell-cache fill that
// expr.go's lookupIdent performs. Every global-reading opcode funnels its
// miss path through here so the two engines cannot drift.
func (in *Interp) globalMiss(env *Env, name string, site uint32) (Value, error) {
	v, ok, c := env.lookupDynamicCell(name)
	if !ok {
		return Undefined, in.Throw("ReferenceError", "%s is not defined", name)
	}
	if c != nil && site != 0 {
		in.icCacheCell(site, c)
	}
	return v, nil
}

// setIndexed writes base[idx] = v for a computed reference whose index was
// evaluated (and, for objects, stringified) already — the bytecode
// counterpart of setOnce.
func (in *Interp) setIndexed(base, idx, v Value) error {
	if in.setElemFast(base, idx, v) {
		return nil
	}
	key, err := in.ToStringValue(idx)
	if err != nil {
		return err
	}
	return in.setMemberSite(base, key, v, 0)
}

// deleteKey implements the delete operator's member path (evalUnary's
// delete case), shared by both delete opcodes.
func (in *Interp) deleteKey(base Value, key string) {
	obj := base.Obj()
	if obj == nil {
		return
	}
	if obj.Class == "Array" || obj.Class == "Arguments" {
		// Element storage is separate from named properties; deleting an
		// element must work whether or not named properties exist.
		if i, isIdx := arrayIndex(key); isIdx && i < len(obj.Elems) {
			obj.Elems[i] = Undefined
			return
		}
	}
	obj.Delete(key)
}

// binOpName maps operator opcodes to the tree-walker's operator strings for
// the generic applyBinary fallback.
var binOpName = map[bytecode.Op]string{
	bytecode.OpAdd: "+", bytecode.OpSub: "-", bytecode.OpMul: "*",
	bytecode.OpDiv: "/", bytecode.OpMod: "%", bytecode.OpPow: "**",
	bytecode.OpLt: "<", bytecode.OpGt: ">", bytecode.OpLe: "<=",
	bytecode.OpGe: ">=", bytecode.OpBitAnd: "&", bytecode.OpBitOr: "|",
	bytecode.OpBitXor: "^", bytecode.OpShl: "<<", bytecode.OpShr: ">>",
	bytecode.OpUshr: ">>>", bytecode.OpInstanceof: "instanceof",
	bytecode.OpIn: "in",
}
