package interp

import (
	"fmt"

	"repro/internal/ast"
)

// eval evaluates an expression in env.
func (in *Interp) eval(e ast.Expr, env *Env) (Value, error) {
	switch n := e.(type) {
	case *ast.Ident:
		v, ok := env.Lookup(n.Name)
		if !ok {
			return nil, in.Throw("ReferenceError", "%s is not defined", n.Name)
		}
		return v, nil
	case *ast.Number:
		return n.Value, nil
	case *ast.Str:
		return n.Value, nil
	case *ast.Bool:
		return n.Value, nil
	case *ast.Null:
		return Null{}, nil
	case *ast.This:
		if v, ok := env.Lookup("this"); ok {
			return v, nil
		}
		return Undefined{}, nil
	case *ast.NewTarget:
		if v, ok := env.Lookup("new.target"); ok {
			return v, nil
		}
		return Undefined{}, nil
	case *ast.Array:
		elems := make([]Value, len(n.Elems))
		for i, el := range n.Elems {
			v, err := in.eval(el, env)
			if err != nil {
				return nil, err
			}
			elems[i] = v
		}
		in.charge(in.Engine.ObjectCreateCost)
		return in.NewArray(elems), nil
	case *ast.Object:
		in.charge(in.Engine.ObjectCreateCost)
		obj := in.NewPlainObject()
		for _, p := range n.Props {
			switch p.Kind {
			case ast.PropInit:
				v, err := in.eval(p.Value, env)
				if err != nil {
					return nil, err
				}
				obj.SetOwn(p.Key, v)
			case ast.PropGet, ast.PropSet:
				fn := in.makeFunction(p.Value.(*ast.Func), env)
				slot := obj.Own(p.Key)
				var getter, setter *Object
				if slot != nil {
					getter, setter = slot.Getter, slot.Setter
				}
				if p.Kind == ast.PropGet {
					getter = fn
				} else {
					setter = fn
				}
				obj.SetAccessor(p.Key, getter, setter, true)
			}
		}
		return obj, nil
	case *ast.Func:
		return in.makeFunction(n, env), nil
	case *ast.Unary:
		return in.evalUnary(n, env)
	case *ast.Update:
		return in.evalUpdate(n, env)
	case *ast.Binary:
		l, err := in.eval(n.L, env)
		if err != nil {
			return nil, err
		}
		r, err := in.eval(n.R, env)
		if err != nil {
			return nil, err
		}
		return in.applyBinary(n.Op, l, r)
	case *ast.Logical:
		l, err := in.eval(n.L, env)
		if err != nil {
			return nil, err
		}
		if n.Op == "&&" {
			if !ToBoolean(l) {
				return l, nil
			}
		} else if ToBoolean(l) {
			return l, nil
		}
		return in.eval(n.R, env)
	case *ast.Assign:
		return in.evalAssign(n, env)
	case *ast.Cond:
		t, err := in.eval(n.Test, env)
		if err != nil {
			return nil, err
		}
		if ToBoolean(t) {
			return in.eval(n.Cons, env)
		}
		return in.eval(n.Alt, env)
	case *ast.Call:
		return in.evalCall(n, env)
	case *ast.New:
		return in.evalNew(n, env)
	case *ast.Member:
		base, err := in.eval(n.X, env)
		if err != nil {
			return nil, err
		}
		key, err := in.memberKey(n, env)
		if err != nil {
			return nil, err
		}
		return in.GetMember(base, key)
	case *ast.Seq:
		var v Value = Undefined{}
		for _, x := range n.Exprs {
			var err error
			v, err = in.eval(x, env)
			if err != nil {
				return nil, err
			}
		}
		return v, nil
	}
	return nil, fmt.Errorf("interp: unknown expression %T", e)
}

func (in *Interp) memberKey(n *ast.Member, env *Env) (string, error) {
	if !n.Computed {
		return n.Name, nil
	}
	idx, err := in.eval(n.Index, env)
	if err != nil {
		return "", err
	}
	return in.ToStringValue(idx)
}

func (in *Interp) evalUnary(n *ast.Unary, env *Env) (Value, error) {
	switch n.Op {
	case "typeof":
		// typeof tolerates unresolvable identifiers.
		if id, ok := n.X.(*ast.Ident); ok {
			v, found := env.Lookup(id.Name)
			if !found {
				return "undefined", nil
			}
			return TypeOf(v), nil
		}
		v, err := in.eval(n.X, env)
		if err != nil {
			return nil, err
		}
		return TypeOf(v), nil
	case "delete":
		m, ok := n.X.(*ast.Member)
		if !ok {
			return true, nil
		}
		base, err := in.eval(m.X, env)
		if err != nil {
			return nil, err
		}
		key, err := in.memberKey(m, env)
		if err != nil {
			return nil, err
		}
		obj, ok := base.(*Object)
		if !ok {
			return true, nil
		}
		if (obj.Class == "Array" || obj.Class == "Arguments") && obj.props == nil {
			if i, isIdx := arrayIndex(key); isIdx && i < len(obj.Elems) {
				obj.Elems[i] = Undefined{}
				return true, nil
			}
		}
		obj.Delete(key)
		return true, nil
	}
	v, err := in.eval(n.X, env)
	if err != nil {
		return nil, err
	}
	switch n.Op {
	case "!":
		return !ToBoolean(v), nil
	case "-":
		f, err := in.ToNumber(v)
		if err != nil {
			return nil, err
		}
		return -f, nil
	case "+":
		return in.ToNumber(v)
	case "~":
		f, err := in.ToNumber(v)
		if err != nil {
			return nil, err
		}
		return float64(^ToInt32(f)), nil
	case "void":
		return Undefined{}, nil
	}
	return nil, fmt.Errorf("interp: unknown unary op %q", n.Op)
}

func (in *Interp) evalUpdate(n *ast.Update, env *Env) (Value, error) {
	old, err := in.eval(n.X, env)
	if err != nil {
		return nil, err
	}
	f, err := in.ToNumber(old)
	if err != nil {
		return nil, err
	}
	next := f + 1
	if n.Op == "--" {
		next = f - 1
	}
	if err := in.assignTo(n.X, next, env); err != nil {
		return nil, err
	}
	if n.Prefix {
		return next, nil
	}
	return f, nil
}

func (in *Interp) evalAssign(n *ast.Assign, env *Env) (Value, error) {
	if n.Op == "=" {
		v, err := in.eval(n.Value, env)
		if err != nil {
			return nil, err
		}
		return v, in.assignTo(n.Target, v, env)
	}
	// Compound assignment: evaluate the target reference once.
	binOp := n.Op[:len(n.Op)-1]
	switch t := n.Target.(type) {
	case *ast.Ident:
		old, ok := env.Lookup(t.Name)
		if !ok {
			return nil, in.Throw("ReferenceError", "%s is not defined", t.Name)
		}
		rhs, err := in.eval(n.Value, env)
		if err != nil {
			return nil, err
		}
		v, err := in.applyBinary(binOp, old, rhs)
		if err != nil {
			return nil, err
		}
		env.Set(t.Name, v)
		return v, nil
	case *ast.Member:
		base, err := in.eval(t.X, env)
		if err != nil {
			return nil, err
		}
		key, err := in.memberKey(t, env)
		if err != nil {
			return nil, err
		}
		old, err := in.GetMember(base, key)
		if err != nil {
			return nil, err
		}
		rhs, err := in.eval(n.Value, env)
		if err != nil {
			return nil, err
		}
		v, err := in.applyBinary(binOp, old, rhs)
		if err != nil {
			return nil, err
		}
		return v, in.SetMember(base, key, v)
	}
	return nil, in.Throw("SyntaxError", "invalid assignment target")
}

func (in *Interp) assignTo(target ast.Expr, v Value, env *Env) error {
	switch t := target.(type) {
	case *ast.Ident:
		if !env.Set(t.Name, v) {
			// Implicit global, as in non-strict JS.
			env.Root().Define(t.Name, v)
		}
		return nil
	case *ast.Member:
		base, err := in.eval(t.X, env)
		if err != nil {
			return err
		}
		key, err := in.memberKey(t, env)
		if err != nil {
			return err
		}
		return in.SetMember(base, key, v)
	}
	return in.Throw("SyntaxError", "invalid assignment target")
}

func (in *Interp) evalCall(n *ast.Call, env *Env) (Value, error) {
	var this Value = Undefined{}
	var fn Value
	if m, ok := n.Callee.(*ast.Member); ok {
		base, err := in.eval(m.X, env)
		if err != nil {
			return nil, err
		}
		key, err := in.memberKey(m, env)
		if err != nil {
			return nil, err
		}
		fn, err = in.GetMember(base, key)
		if err != nil {
			return nil, err
		}
		this = base
	} else {
		var err error
		fn, err = in.eval(n.Callee, env)
		if err != nil {
			return nil, err
		}
	}
	args := make([]Value, len(n.Args))
	for i, a := range n.Args {
		v, err := in.eval(a, env)
		if err != nil {
			return nil, err
		}
		args[i] = v
	}
	return in.Call(fn, this, args, Undefined{})
}

func (in *Interp) evalNew(n *ast.New, env *Env) (Value, error) {
	callee, err := in.eval(n.Callee, env)
	if err != nil {
		return nil, err
	}
	args := make([]Value, len(n.Args))
	for i, a := range n.Args {
		v, err := in.eval(a, env)
		if err != nil {
			return nil, err
		}
		args[i] = v
	}
	return in.Construct(callee, args)
}

// Construct implements `new fn(args)`.
func (in *Interp) Construct(fn Value, args []Value) (Value, error) {
	f, ok := fn.(*Object)
	if !ok || !f.IsCallable() {
		return nil, in.Throw("TypeError", "%s is not a constructor", TypeOf(fn))
	}
	in.charge(in.Engine.NewCost)
	if f.Native != nil {
		// Native constructors (Error, Array, ...) allocate internally; mark
		// construction via a sentinel this.
		return f.Native(in, constructSentinel{}, args)
	}
	protoV, err := in.GetMember(f, "prototype")
	if err != nil {
		return nil, err
	}
	proto, _ := protoV.(*Object)
	if proto == nil {
		proto = in.objectProto
	}
	obj := NewObject(proto)
	res, err := in.Call(f, obj, args, f)
	if err != nil {
		return nil, err
	}
	if ro, ok := res.(*Object); ok {
		return ro, nil
	}
	return obj, nil
}

// constructSentinel marks native calls that originate from `new`.
type constructSentinel struct{}

// Call applies fn to args with the given this and new.target.
func (in *Interp) Call(fn Value, this Value, args []Value, newTarget Value) (Value, error) {
	f, ok := fn.(*Object)
	if !ok || !f.IsCallable() {
		return nil, in.Throw("TypeError", "%s is not a function", TypeOf(fn))
	}
	in.charge(in.Engine.CallCost)
	if f.Native != nil {
		return f.Native(in, this, args)
	}
	c := f.Fn
	in.depth++
	if in.depth > in.maxDepth {
		in.depth--
		return nil, in.Throw("RangeError", "Maximum call stack size exceeded")
	}
	defer func() { in.depth-- }()

	env := NewEnv(c.Env)
	if c.Name != "" && !c.Arrow {
		env.Define(c.Name, c.Self)
	}
	for i, p := range c.Params {
		if i < len(args) {
			env.Define(p, args[i])
		} else {
			env.Define(p, Undefined{})
		}
	}
	if !c.Arrow {
		env.Define("this", this)
		env.Define("new.target", newTarget)
		ao := &Object{Class: "Arguments", Proto: in.objectProto, Elems: append([]Value(nil), args...)}
		env.Define("arguments", ao)
	}
	if c.hoisted == nil {
		c.hoisted = hoistScan(c.Body)
	}
	for _, name := range c.hoisted.vars {
		if !env.Has(name) {
			env.Define(name, Undefined{})
		}
	}
	for _, fd := range c.hoisted.fns {
		env.Define(fd.Name, in.makeFunction(fd, env))
	}
	err := in.execStmts(c.Body, env)
	switch e := err.(type) {
	case nil:
		return Undefined{}, nil
	case *returnErr:
		return e.value, nil
	default:
		return nil, err
	}
}
