package interp

import (
	"fmt"

	"repro/internal/ast"
)

// eval evaluates an expression in env.
func (in *Interp) eval(e ast.Expr, env *Env) (Value, error) {
	switch n := e.(type) {
	case *ast.Ident:
		return in.loadIdent(n, env)
	case *ast.Number:
		return boxNumber(n.Value), nil
	case *ast.Str:
		return n.Value, nil
	case *ast.Bool:
		return n.Value, nil
	case *ast.Null:
		return nullValue, nil
	case *ast.This:
		if n.Ref.Valid() {
			return env.GetRef(n.Ref), nil
		}
		if v, ok := env.Lookup("this"); ok {
			return v, nil
		}
		return undefinedValue, nil
	case *ast.NewTarget:
		if n.Ref.Valid() {
			return env.GetRef(n.Ref), nil
		}
		if v, ok := env.Lookup("new.target"); ok {
			return v, nil
		}
		return undefinedValue, nil
	case *ast.Array:
		elems := make([]Value, len(n.Elems))
		for i, el := range n.Elems {
			v, err := in.eval(el, env)
			if err != nil {
				return nil, err
			}
			elems[i] = v
		}
		in.charge(in.Engine.ObjectCreateCost)
		return in.NewArray(elems), nil
	case *ast.Object:
		in.charge(in.Engine.ObjectCreateCost)
		obj := in.NewPlainObject()
		for _, p := range n.Props {
			switch p.Kind {
			case ast.PropInit:
				v, err := in.eval(p.Value, env)
				if err != nil {
					return nil, err
				}
				obj.SetOwn(p.Key, v)
			case ast.PropGet, ast.PropSet:
				fn := in.makeFunction(p.Value.(*ast.Func), env)
				slot := obj.Own(p.Key)
				var getter, setter *Object
				if slot != nil {
					getter, setter = slot.Getter, slot.Setter
				}
				if p.Kind == ast.PropGet {
					getter = fn
				} else {
					setter = fn
				}
				obj.SetAccessor(p.Key, getter, setter, true)
			}
		}
		return obj, nil
	case *ast.Func:
		return in.makeFunction(n, env), nil
	case *ast.Unary:
		return in.evalUnary(n, env)
	case *ast.Update:
		return in.evalUpdate(n, env)
	case *ast.Binary:
		l, err := in.eval(n.L, env)
		if err != nil {
			return nil, err
		}
		r, err := in.eval(n.R, env)
		if err != nil {
			return nil, err
		}
		return in.applyBinary(n.Op, l, r)
	case *ast.Logical:
		l, err := in.eval(n.L, env)
		if err != nil {
			return nil, err
		}
		if n.Op == "&&" {
			if !ToBoolean(l) {
				return l, nil
			}
		} else if ToBoolean(l) {
			return l, nil
		}
		return in.eval(n.R, env)
	case *ast.Assign:
		return in.evalAssign(n, env)
	case *ast.Cond:
		t, err := in.eval(n.Test, env)
		if err != nil {
			return nil, err
		}
		if ToBoolean(t) {
			return in.eval(n.Cons, env)
		}
		return in.eval(n.Alt, env)
	case *ast.Call:
		return in.evalCall(n, env)
	case *ast.New:
		return in.evalNew(n, env)
	case *ast.Member:
		_, v, err := in.evalMember(n, env)
		return v, err
	case *ast.Seq:
		var v Value = Undefined{}
		for _, x := range n.Exprs {
			var err error
			v, err = in.eval(x, env)
			if err != nil {
				return nil, err
			}
		}
		return v, nil
	}
	return nil, fmt.Errorf("interp: unknown expression %T", e)
}

// loadIdent reads a variable reference with the strongest static
// information available: resolved coordinates index a slot directly,
// proved-global names skip every slot layout, and everything else walks
// the chain by name.
func (in *Interp) loadIdent(n *ast.Ident, env *Env) (Value, error) {
	if n.Ref.Valid() {
		return env.GetRef(n.Ref), nil
	}
	v, ok := in.lookupIdent(n, env)
	if !ok {
		return nil, in.Throw("ReferenceError", "%s is not defined", n.Name)
	}
	return v, nil
}

// lookupIdent is loadIdent without the ReferenceError (typeof tolerates
// unresolvable names).
func (in *Interp) lookupIdent(n *ast.Ident, env *Env) (Value, bool) {
	if n.Ref.Valid() {
		return env.GetRef(n.Ref), true
	}
	if n.Ref.Global() {
		return env.LookupDynamic(n.Name)
	}
	return env.Lookup(n.Name)
}

// storeIdent writes a variable reference, creating an implicit global when
// the name is bound nowhere (non-strict JS).
func (in *Interp) storeIdent(n *ast.Ident, v Value, env *Env) {
	if n.Ref.Valid() {
		env.SetRef(n.Ref, v)
		return
	}
	if n.Ref.Global() {
		if !env.SetDynamic(n.Name, v) {
			env.Root().Define(n.Name, v)
		}
		return
	}
	if !env.Set(n.Name, v) {
		env.Root().Define(n.Name, v)
	}
}

func (in *Interp) memberKey(n *ast.Member, env *Env) (string, error) {
	if !n.Computed {
		return n.Name, nil
	}
	idx, err := in.eval(n.Index, env)
	if err != nil {
		return "", err
	}
	return in.ToStringValue(idx)
}

// evalMember evaluates a property read, returning the receiver alongside
// the value (callers use it for method-call `this`). Integer indexing into
// arrays and arguments objects takes an allocation-free path that never
// round-trips the index through a string key.
func (in *Interp) evalMember(n *ast.Member, env *Env) (base, v Value, err error) {
	base, err = in.eval(n.X, env)
	if err != nil {
		return nil, nil, err
	}
	if !n.Computed {
		v, err = in.GetMember(base, n.Name)
		return base, v, err
	}
	idx, err := in.eval(n.Index, env)
	if err != nil {
		return nil, nil, err
	}
	if v, ok := in.getElemFast(base, idx); ok {
		return base, v, nil
	}
	key, err := in.ToStringValue(idx)
	if err != nil {
		return nil, nil, err
	}
	v, err = in.GetMember(base, key)
	return base, v, err
}

func (in *Interp) evalUnary(n *ast.Unary, env *Env) (Value, error) {
	switch n.Op {
	case "typeof":
		// typeof tolerates unresolvable identifiers.
		if id, ok := n.X.(*ast.Ident); ok {
			v, found := in.lookupIdent(id, env)
			if !found {
				return "undefined", nil
			}
			return TypeOf(v), nil
		}
		v, err := in.eval(n.X, env)
		if err != nil {
			return nil, err
		}
		return TypeOf(v), nil
	case "delete":
		m, ok := n.X.(*ast.Member)
		if !ok {
			return true, nil
		}
		base, err := in.eval(m.X, env)
		if err != nil {
			return nil, err
		}
		key, err := in.memberKey(m, env)
		if err != nil {
			return nil, err
		}
		obj, ok := base.(*Object)
		if !ok {
			return true, nil
		}
		if (obj.Class == "Array" || obj.Class == "Arguments") && obj.props == nil {
			if i, isIdx := arrayIndex(key); isIdx && i < len(obj.Elems) {
				obj.Elems[i] = Undefined{}
				return true, nil
			}
		}
		obj.Delete(key)
		return true, nil
	}
	v, err := in.eval(n.X, env)
	if err != nil {
		return nil, err
	}
	switch n.Op {
	case "!":
		return !ToBoolean(v), nil
	case "-":
		f, err := in.ToNumber(v)
		if err != nil {
			return nil, err
		}
		return boxNumber(-f), nil
	case "+":
		f, err := in.ToNumber(v)
		if err != nil {
			return nil, err
		}
		return boxNumber(f), nil
	case "~":
		f, err := in.ToNumber(v)
		if err != nil {
			return nil, err
		}
		return boxNumber(float64(^ToInt32(f))), nil
	case "void":
		return Undefined{}, nil
	}
	return nil, fmt.Errorf("interp: unknown unary op %q", n.Op)
}

// memberOnce is a member reference whose base and computed index were
// evaluated exactly once; Get and Set can both run without re-triggering
// their side effects. An object index is stringified eagerly (ToPrimitive
// may run user code); primitive indexes keep their value so element fast
// paths apply, stringifying on demand (side-effect-free for primitives).
type memberOnce struct {
	base   Value
	idx    Value
	key    string
	useKey bool
}

func (in *Interp) evalMemberOnce(m *ast.Member, env *Env) (memberOnce, error) {
	var r memberOnce
	var err error
	r.base, err = in.eval(m.X, env)
	if err != nil {
		return r, err
	}
	if !m.Computed {
		r.key, r.useKey = m.Name, true
		return r, nil
	}
	r.idx, err = in.eval(m.Index, env)
	if err != nil {
		return r, err
	}
	if _, isObj := r.idx.(*Object); isObj {
		r.key, err = in.ToStringValue(r.idx)
		if err != nil {
			return r, err
		}
		r.useKey = true
	}
	return r, nil
}

// keyOnce stringifies the reference's index at most once across Get and
// Set, caching the result (safe: only primitive indexes reach here).
func (in *Interp) keyOnce(r *memberOnce) (string, error) {
	if !r.useKey {
		key, err := in.ToStringValue(r.idx)
		if err != nil {
			return "", err
		}
		r.key, r.useKey = key, true
	}
	return r.key, nil
}

func (in *Interp) getOnce(r *memberOnce) (Value, error) {
	if !r.useKey {
		if v, ok := in.getElemFast(r.base, r.idx); ok {
			return v, nil
		}
	}
	key, err := in.keyOnce(r)
	if err != nil {
		return nil, err
	}
	return in.GetMember(r.base, key)
}

func (in *Interp) setOnce(r *memberOnce, v Value) error {
	if !r.useKey {
		if in.setElemFast(r.base, r.idx, v) {
			return nil
		}
	}
	key, err := in.keyOnce(r)
	if err != nil {
		return err
	}
	return in.SetMember(r.base, key, v)
}

func (in *Interp) evalUpdate(n *ast.Update, env *Env) (Value, error) {
	var old Value
	var ref memberOnce
	switch t := n.X.(type) {
	case *ast.Ident:
		var err error
		old, err = in.loadIdent(t, env)
		if err != nil {
			return nil, err
		}
	case *ast.Member:
		var err error
		ref, err = in.evalMemberOnce(t, env)
		if err != nil {
			return nil, err
		}
		old, err = in.getOnce(&ref)
		if err != nil {
			return nil, err
		}
	default:
		return nil, in.Throw("SyntaxError", "invalid assignment target")
	}
	f, err := in.ToNumber(old)
	if err != nil {
		return nil, err
	}
	next := f + 1
	if n.Op == "--" {
		next = f - 1
	}
	boxed := boxNumber(next)
	switch t := n.X.(type) {
	case *ast.Ident:
		in.storeIdent(t, boxed, env)
	case *ast.Member:
		if err := in.setOnce(&ref, boxed); err != nil {
			return nil, err
		}
	}
	if n.Prefix {
		return boxed, nil
	}
	return boxNumber(f), nil
}

func (in *Interp) evalAssign(n *ast.Assign, env *Env) (Value, error) {
	if n.Op == "=" {
		v, err := in.eval(n.Value, env)
		if err != nil {
			return nil, err
		}
		return v, in.assignTo(n.Target, v, env)
	}
	// Compound assignment: evaluate the target reference once.
	binOp := n.Op[:len(n.Op)-1]
	switch t := n.Target.(type) {
	case *ast.Ident:
		old, err := in.loadIdent(t, env)
		if err != nil {
			return nil, err
		}
		rhs, err := in.eval(n.Value, env)
		if err != nil {
			return nil, err
		}
		v, err := in.applyBinary(binOp, old, rhs)
		if err != nil {
			return nil, err
		}
		in.storeIdent(t, v, env)
		return v, nil
	case *ast.Member:
		ref, err := in.evalMemberOnce(t, env)
		if err != nil {
			return nil, err
		}
		old, err := in.getOnce(&ref)
		if err != nil {
			return nil, err
		}
		rhs, err := in.eval(n.Value, env)
		if err != nil {
			return nil, err
		}
		v, err := in.applyBinary(binOp, old, rhs)
		if err != nil {
			return nil, err
		}
		return v, in.setOnce(&ref, v)
	}
	return nil, in.Throw("SyntaxError", "invalid assignment target")
}

func (in *Interp) assignTo(target ast.Expr, v Value, env *Env) error {
	switch t := target.(type) {
	case *ast.Ident:
		in.storeIdent(t, v, env)
		return nil
	case *ast.Member:
		ref, err := in.evalMemberOnce(t, env)
		if err != nil {
			return err
		}
		return in.setOnce(&ref, v)
	}
	return in.Throw("SyntaxError", "invalid assignment target")
}

func (in *Interp) evalCall(n *ast.Call, env *Env) (Value, error) {
	var this Value = Undefined{}
	var fn Value
	if m, ok := n.Callee.(*ast.Member); ok {
		var err error
		this, fn, err = in.evalMember(m, env)
		if err != nil {
			return nil, err
		}
	} else {
		var err error
		fn, err = in.eval(n.Callee, env)
		if err != nil {
			return nil, err
		}
	}
	args := make([]Value, len(n.Args))
	for i, a := range n.Args {
		v, err := in.eval(a, env)
		if err != nil {
			return nil, err
		}
		args[i] = v
	}
	return in.Call(fn, this, args, Undefined{})
}

func (in *Interp) evalNew(n *ast.New, env *Env) (Value, error) {
	callee, err := in.eval(n.Callee, env)
	if err != nil {
		return nil, err
	}
	args := make([]Value, len(n.Args))
	for i, a := range n.Args {
		v, err := in.eval(a, env)
		if err != nil {
			return nil, err
		}
		args[i] = v
	}
	return in.Construct(callee, args)
}

// Construct implements `new fn(args)`.
func (in *Interp) Construct(fn Value, args []Value) (Value, error) {
	f, ok := fn.(*Object)
	if !ok || !f.IsCallable() {
		return nil, in.Throw("TypeError", "%s is not a constructor", TypeOf(fn))
	}
	in.charge(in.Engine.NewCost)
	if f.Native != nil {
		// Native constructors (Error, Array, ...) allocate internally; mark
		// construction via a sentinel this.
		return f.Native(in, constructSentinel{}, args)
	}
	protoV, err := in.GetMember(f, "prototype")
	if err != nil {
		return nil, err
	}
	proto, _ := protoV.(*Object)
	if proto == nil {
		proto = in.objectProto
	}
	obj := NewObject(proto)
	res, err := in.Call(f, obj, args, f)
	if err != nil {
		return nil, err
	}
	if ro, ok := res.(*Object); ok {
		return ro, nil
	}
	return obj, nil
}

// constructSentinel marks native calls that originate from `new`.
type constructSentinel struct{}

// Call applies fn to args with the given this and new.target.
func (in *Interp) Call(fn Value, this Value, args []Value, newTarget Value) (Value, error) {
	f, ok := fn.(*Object)
	if !ok || !f.IsCallable() {
		return nil, in.Throw("TypeError", "%s is not a function", TypeOf(fn))
	}
	in.charge(in.Engine.CallCost)
	if f.Native != nil {
		return f.Native(in, this, args)
	}
	c := f.Fn
	in.depth++
	if in.depth > in.maxDepth {
		in.depth--
		return nil, in.Throw("RangeError", "Maximum call stack size exceeded")
	}
	defer func() { in.depth-- }()

	var env *Env
	if sc := c.Scope; sc != nil {
		// Resolved function: one slice-backed frame, laid out statically.
		// The write order matches the dynamic path's define order so that
		// rebound names (duplicate params, a param shadowing the function's
		// own name) keep last-write-wins semantics.
		env = NewSlotEnv(c.Env, sc)
		slots := env.slots
		if sc.SelfSlot >= 0 {
			slots[sc.SelfSlot] = c.Self
		}
		for i, slot := range sc.ParamSlots {
			if i < len(args) {
				slots[slot] = args[i]
			} else {
				slots[slot] = undefinedValue
			}
		}
		if sc.ThisSlot >= 0 {
			slots[sc.ThisSlot] = this
		}
		if sc.NewTargetSlot >= 0 {
			slots[sc.NewTargetSlot] = newTarget
		}
		if sc.ArgumentsSlot >= 0 {
			// Only materialized when the body actually references
			// `arguments` — the resolver proved nothing else can see it.
			ao := &Object{Class: "Arguments", Proto: in.objectProto, Elems: append([]Value(nil), args...)}
			slots[sc.ArgumentsSlot] = ao
		}
		for _, fd := range sc.FnDecls {
			slots[fd.Slot] = in.makeFunction(fd.Fn, env)
		}
	} else {
		env = NewEnv(c.Env)
		if c.Name != "" && !c.Arrow {
			env.Define(c.Name, c.Self)
		}
		for i, p := range c.Params {
			if i < len(args) {
				env.Define(p, args[i])
			} else {
				env.Define(p, Undefined{})
			}
		}
		if !c.Arrow {
			env.Define("this", this)
			env.Define("new.target", newTarget)
			ao := &Object{Class: "Arguments", Proto: in.objectProto, Elems: append([]Value(nil), args...)}
			env.Define("arguments", ao)
		}
		if c.hoisted == nil {
			c.hoisted = hoistScan(c.Body)
		}
		for _, name := range c.hoisted.vars {
			if !env.Has(name) {
				env.Define(name, Undefined{})
			}
		}
		for _, fd := range c.hoisted.fns {
			env.Define(fd.Name, in.makeFunction(fd, env))
		}
	}
	err := in.execStmts(c.Body, env)
	switch e := err.(type) {
	case nil:
		return Undefined{}, nil
	case *returnErr:
		return e.value, nil
	default:
		return nil, err
	}
}
