package interp

import (
	"fmt"

	"repro/internal/ast"
)

// eval evaluates an expression in env. The switch tests cases in source
// order, so the hottest node kinds — identifier reads, assignments, calls,
// member reads, operators — come first.
func (in *Interp) eval(e ast.Expr, env *Env) (Value, error) {
	switch n := e.(type) {
	case *ast.Ident:
		return in.loadIdent(n, env)
	case *ast.Assign:
		return in.evalAssign(n, env)
	case *ast.Call:
		return in.evalCall(n, env)
	case *ast.Member:
		_, v, err := in.evalMember(n, env)
		return v, err
	case *ast.Binary:
		l, err := in.eval(n.L, env)
		if err != nil {
			return Undefined, err
		}
		r, err := in.eval(n.R, env)
		if err != nil {
			return Undefined, err
		}
		return in.applyBinary(n.Op, l, r)
	case *ast.Logical:
		l, err := in.eval(n.L, env)
		if err != nil {
			return Undefined, err
		}
		if n.Op == "&&" {
			if !ToBoolean(l) {
				return l, nil
			}
		} else if ToBoolean(l) {
			return l, nil
		}
		return in.eval(n.R, env)
	case *ast.Str:
		return StringValue(n.Value), nil
	case *ast.Number:
		return NumberValue(n.Value), nil
	case *ast.Cond:
		t, err := in.eval(n.Test, env)
		if err != nil {
			return Undefined, err
		}
		if ToBoolean(t) {
			return in.eval(n.Cons, env)
		}
		return in.eval(n.Alt, env)
	case *ast.Func:
		return ObjectValue(in.makeFunction(n, env)), nil
	case *ast.Unary:
		return in.evalUnary(n, env)
	case *ast.This:
		if n.Ref.Valid() {
			return env.GetRef(n.Ref), nil
		}
		if v, ok := env.Lookup("this"); ok {
			return v, nil
		}
		return Undefined, nil
	case *ast.Bool:
		return BoolValue(n.Value), nil
	case *ast.Null:
		return Null, nil
	case *ast.New:
		return in.evalNew(n, env)
	case *ast.Update:
		return in.evalUpdate(n, env)
	case *ast.NewTarget:
		if n.Ref.Valid() {
			return env.GetRef(n.Ref), nil
		}
		if v, ok := env.Lookup("new.target"); ok {
			return v, nil
		}
		return Undefined, nil
	case *ast.Array:
		elems := make([]Value, len(n.Elems))
		for i, el := range n.Elems {
			if el == nil {
				// Elision: this substrate's arrays are dense, so a hole is
				// an undefined element (it still counts toward length).
				continue
			}
			v, err := in.eval(el, env)
			if err != nil {
				return Undefined, err
			}
			elems[i] = v
		}
		in.charge(in.Engine.ObjectCreateCost)
		return ObjectValue(in.NewArray(elems)), nil
	case *ast.Object:
		in.charge(in.Engine.ObjectCreateCost)
		obj := in.NewPlainObject()
		in.chargeMem(memPropBytes * len(n.Props))
		for _, p := range n.Props {
			switch p.Kind {
			case ast.PropInit:
				v, err := in.eval(p.Value, env)
				if err != nil {
					return Undefined, err
				}
				obj.SetOwn(p.Key, v)
			case ast.PropGet, ast.PropSet:
				fn := in.makeFunction(p.Value.(*ast.Func), env)
				slot := obj.Own(p.Key)
				var getter, setter *Object
				if slot != nil {
					getter, setter = slot.Getter, slot.Setter
				}
				if p.Kind == ast.PropGet {
					getter = fn
				} else {
					setter = fn
				}
				obj.SetAccessor(p.Key, getter, setter, true)
			}
		}
		return ObjectValue(obj), nil
	case *ast.Seq:
		v := Undefined
		for _, x := range n.Exprs {
			var err error
			v, err = in.eval(x, env)
			if err != nil {
				return Undefined, err
			}
		}
		return v, nil
	}
	return Undefined, fmt.Errorf("interp: unknown expression %T", e)
}

// loadIdent reads a variable reference with the strongest static
// information available: resolved coordinates index a slot directly,
// proved-global names skip every slot layout, and everything else walks
// the chain by name.
func (in *Interp) loadIdent(n *ast.Ident, env *Env) (Value, error) {
	if n.Ref.Valid() {
		return env.GetRef(n.Ref), nil
	}
	v, ok := in.lookupIdent(n, env)
	if !ok {
		return Undefined, in.Throw("ReferenceError", "%s is not defined", n.Name)
	}
	return v, nil
}

// lookupIdent is loadIdent without the ReferenceError (typeof tolerates
// unresolvable names).
func (in *Interp) lookupIdent(n *ast.Ident, env *Env) (Value, bool) {
	if n.Ref.Valid() {
		return env.GetRef(n.Ref), true
	}
	if n.Ref.Global() {
		// Proved-global reference: after the first by-name hit on the
		// global frame the site caches the binding cell, so repeat reads
		// are a pointer load. Bindings found in an intermediate frame's
		// overflow map (dynamically created shadows) are never cached.
		if n.Site != 0 {
			if c := in.icCellAt(n.Site); c != nil {
				return c.v, true
			}
		}
		v, ok, c := env.lookupDynamicCell(n.Name)
		if ok && c != nil && n.Site != 0 {
			in.icCacheCell(n.Site, c)
		}
		return v, ok
	}
	return env.Lookup(n.Name)
}

// storeIdent writes a variable reference, creating an implicit global when
// the name is bound nowhere (non-strict JS).
func (in *Interp) storeIdent(n *ast.Ident, v Value, env *Env) {
	if n.Ref.Valid() {
		env.SetRef(n.Ref, v)
		return
	}
	if n.Ref.Global() {
		if n.Site != 0 {
			if c := in.icCellAt(n.Site); c != nil {
				c.v = v
				return
			}
		}
		c, ok := env.setDynamicCell(n.Name, v)
		if !ok {
			root := env.Root()
			root.Define(n.Name, v)
			c = root.Cell(n.Name)
		}
		if c != nil && n.Site != 0 {
			in.icCacheCell(n.Site, c)
		}
		return
	}
	if !env.Set(n.Name, v) {
		env.Root().Define(n.Name, v)
	}
}

func (in *Interp) memberKey(n *ast.Member, env *Env) (string, error) {
	if !n.Computed {
		return n.Name, nil
	}
	idx, err := in.eval(n.Index, env)
	if err != nil {
		return "", err
	}
	return in.ToStringValue(idx)
}

// evalMember evaluates a property read, returning the receiver alongside
// the value (callers use it for method-call `this`). Integer indexing into
// arrays and arguments objects takes an allocation-free path that never
// round-trips the index through a string key.
func (in *Interp) evalMember(n *ast.Member, env *Env) (base, v Value, err error) {
	base, err = in.eval(n.X, env)
	if err != nil {
		return Undefined, Undefined, err
	}
	if !n.Computed {
		v, err = in.getMemberSite(base, n.Name, n.Site)
		return base, v, err
	}
	idx, err := in.eval(n.Index, env)
	if err != nil {
		return Undefined, Undefined, err
	}
	if v, ok := in.getElemFast(base, idx); ok {
		return base, v, nil
	}
	key, err := in.ToStringValue(idx)
	if err != nil {
		return Undefined, Undefined, err
	}
	v, err = in.GetMember(base, key)
	return base, v, err
}

func (in *Interp) evalUnary(n *ast.Unary, env *Env) (Value, error) {
	switch n.Op {
	case "typeof":
		// typeof tolerates unresolvable identifiers.
		if id, ok := n.X.(*ast.Ident); ok {
			v, found := in.lookupIdent(id, env)
			if !found {
				return typeofUndefined, nil
			}
			return typeOfValue(v), nil
		}
		v, err := in.eval(n.X, env)
		if err != nil {
			return Undefined, err
		}
		return typeOfValue(v), nil
	case "delete":
		m, ok := n.X.(*ast.Member)
		if !ok {
			return True, nil
		}
		base, err := in.eval(m.X, env)
		if err != nil {
			return Undefined, err
		}
		key, err := in.memberKey(m, env)
		if err != nil {
			return Undefined, err
		}
		obj := base.Obj()
		if obj == nil {
			return True, nil
		}
		if obj.Class == "Array" || obj.Class == "Arguments" {
			// Element storage is separate from named properties, so this
			// path must not depend on whether the object has any (deleting
			// a[1] from an array that also has a.foo used to be a no-op).
			if i, isIdx := arrayIndex(key); isIdx && i < len(obj.Elems) {
				obj.Elems[i] = Undefined
				return True, nil
			}
		}
		obj.Delete(key)
		return True, nil
	}
	v, err := in.eval(n.X, env)
	if err != nil {
		return Undefined, err
	}
	switch n.Op {
	case "!":
		return BoolValue(!ToBoolean(v)), nil
	case "-":
		f, err := in.ToNumber(v)
		if err != nil {
			return Undefined, err
		}
		return NumberValue(-f), nil
	case "+":
		f, err := in.ToNumber(v)
		if err != nil {
			return Undefined, err
		}
		return NumberValue(f), nil
	case "~":
		f, err := in.ToNumber(v)
		if err != nil {
			return Undefined, err
		}
		return NumberValue(float64(^ToInt32(f))), nil
	case "void":
		return Undefined, nil
	}
	return Undefined, fmt.Errorf("interp: unknown unary op %q", n.Op)
}

// memberOnce is a member reference whose base and computed index were
// evaluated exactly once; Get and Set can both run without re-triggering
// their side effects. An object index is stringified eagerly (ToPrimitive
// may run user code); primitive indexes keep their value so element fast
// paths apply, stringifying on demand (side-effect-free for primitives).
type memberOnce struct {
	base   Value
	idx    Value
	key    string
	useKey bool
	site   uint32 // inline-cache site for non-computed references
}

func (in *Interp) evalMemberOnce(m *ast.Member, env *Env) (memberOnce, error) {
	var r memberOnce
	var err error
	r.base, err = in.eval(m.X, env)
	if err != nil {
		return r, err
	}
	if !m.Computed {
		r.key, r.useKey, r.site = m.Name, true, m.Site
		return r, nil
	}
	r.idx, err = in.eval(m.Index, env)
	if err != nil {
		return r, err
	}
	if r.idx.IsObject() {
		r.key, err = in.ToStringValue(r.idx)
		if err != nil {
			return r, err
		}
		r.useKey = true
	}
	return r, nil
}

// keyOnce stringifies the reference's index at most once across Get and
// Set, caching the result (safe: only primitive indexes reach here).
func (in *Interp) keyOnce(r *memberOnce) (string, error) {
	if !r.useKey {
		key, err := in.ToStringValue(r.idx)
		if err != nil {
			return "", err
		}
		r.key, r.useKey = key, true
	}
	return r.key, nil
}

func (in *Interp) getOnce(r *memberOnce) (Value, error) {
	if !r.useKey {
		if v, ok := in.getElemFast(r.base, r.idx); ok {
			return v, nil
		}
	}
	key, err := in.keyOnce(r)
	if err != nil {
		return Undefined, err
	}
	return in.getMemberSite(r.base, key, r.site)
}

func (in *Interp) setOnce(r *memberOnce, v Value) error {
	if !r.useKey {
		if in.setElemFast(r.base, r.idx, v) {
			return nil
		}
	}
	key, err := in.keyOnce(r)
	if err != nil {
		return err
	}
	return in.setMemberSite(r.base, key, v, r.site)
}

func (in *Interp) evalUpdate(n *ast.Update, env *Env) (Value, error) {
	var old Value
	var ref memberOnce
	switch t := n.X.(type) {
	case *ast.Ident:
		var err error
		old, err = in.loadIdent(t, env)
		if err != nil {
			return Undefined, err
		}
	case *ast.Member:
		var err error
		ref, err = in.evalMemberOnce(t, env)
		if err != nil {
			return Undefined, err
		}
		old, err = in.getOnce(&ref)
		if err != nil {
			return Undefined, err
		}
	default:
		return Undefined, in.Throw("SyntaxError", "invalid assignment target")
	}
	f, err := in.ToNumber(old)
	if err != nil {
		return Undefined, err
	}
	next := f + 1
	if n.Op == "--" {
		next = f - 1
	}
	nv := NumberValue(next)
	switch t := n.X.(type) {
	case *ast.Ident:
		in.storeIdent(t, nv, env)
	case *ast.Member:
		if err := in.setOnce(&ref, nv); err != nil {
			return Undefined, err
		}
	}
	if n.Prefix {
		return nv, nil
	}
	return NumberValue(f), nil
}

func (in *Interp) evalAssign(n *ast.Assign, env *Env) (Value, error) {
	if n.Op == "=" {
		v, err := in.eval(n.Value, env)
		if err != nil {
			return Undefined, err
		}
		return v, in.assignTo(n.Target, v, env)
	}
	// Compound assignment: evaluate the target reference once.
	binOp := n.Op[:len(n.Op)-1]
	switch t := n.Target.(type) {
	case *ast.Ident:
		old, err := in.loadIdent(t, env)
		if err != nil {
			return Undefined, err
		}
		rhs, err := in.eval(n.Value, env)
		if err != nil {
			return Undefined, err
		}
		v, err := in.applyBinary(binOp, old, rhs)
		if err != nil {
			return Undefined, err
		}
		in.storeIdent(t, v, env)
		return v, nil
	case *ast.Member:
		ref, err := in.evalMemberOnce(t, env)
		if err != nil {
			return Undefined, err
		}
		old, err := in.getOnce(&ref)
		if err != nil {
			return Undefined, err
		}
		rhs, err := in.eval(n.Value, env)
		if err != nil {
			return Undefined, err
		}
		v, err := in.applyBinary(binOp, old, rhs)
		if err != nil {
			return Undefined, err
		}
		return v, in.setOnce(&ref, v)
	}
	return Undefined, in.Throw("SyntaxError", "invalid assignment target")
}

func (in *Interp) assignTo(target ast.Expr, v Value, env *Env) error {
	switch t := target.(type) {
	case *ast.Ident:
		in.storeIdent(t, v, env)
		return nil
	case *ast.Member:
		ref, err := in.evalMemberOnce(t, env)
		if err != nil {
			return err
		}
		return in.setOnce(&ref, v)
	}
	return in.Throw("SyntaxError", "invalid assignment target")
}

// evalArgs evaluates an argument list into the interpreter's argument
// arena, a stack-disciplined scratch buffer that replaces the per-call
// slice allocation. The returned slice is valid until releaseArgs(mark);
// callees never retain it (JS calls copy arguments into frame slots and
// the arguments object; every native copies or reads before returning).
func (in *Interp) evalArgs(exprs []ast.Expr, env *Env) (args []Value, mark int, err error) {
	mark = len(in.argArena)
	for _, a := range exprs {
		v, err := in.eval(a, env)
		if err != nil {
			in.releaseArgs(mark)
			return nil, 0, err
		}
		in.argArena = append(in.argArena, v)
	}
	return in.argArena[mark:], mark, nil
}

// releaseArgs pops the arena back to mark, clearing the freed range so the
// arena does not pin dead object graphs.
func (in *Interp) releaseArgs(mark int) {
	live := in.argArena[:mark]
	for i := mark; i < len(in.argArena); i++ {
		in.argArena[i] = Value{}
	}
	in.argArena = live
}

func (in *Interp) evalCall(n *ast.Call, env *Env) (Value, error) {
	this := Undefined
	var fn Value
	if m, ok := n.Callee.(*ast.Member); ok {
		var err error
		this, fn, err = in.evalMember(m, env)
		if err != nil {
			return Undefined, err
		}
	} else {
		var err error
		fn, err = in.eval(n.Callee, env)
		if err != nil {
			return Undefined, err
		}
	}
	args, mark, err := in.evalArgs(n.Args, env)
	if err != nil {
		return Undefined, err
	}
	v, err := in.Call(fn, this, args, Undefined)
	in.releaseArgs(mark)
	return v, err
}

func (in *Interp) evalNew(n *ast.New, env *Env) (Value, error) {
	callee, err := in.eval(n.Callee, env)
	if err != nil {
		return Undefined, err
	}
	args, mark, err := in.evalArgs(n.Args, env)
	if err != nil {
		return Undefined, err
	}
	v, err := in.Construct(callee, args)
	in.releaseArgs(mark)
	return v, err
}

// argsObject co-locates an arguments object with inline element storage so
// materializing `arguments` costs one allocation for the common arities.
type argsObject struct {
	obj Object
	buf [4]Value
}

// newArguments builds the arguments object for a call (the elements are
// copied — the caller's slice is arena-backed and dies with the call).
func (in *Interp) newArguments(args []Value) *Object {
	in.chargeMem(memObjectBytes + memValueBytes*len(args))
	a := new(argsObject)
	a.obj = Object{Class: "Arguments", Proto: in.objectProto}
	if len(args) <= len(a.buf) {
		a.obj.Elems = a.buf[:len(args):len(args)]
		copy(a.obj.Elems, args)
	} else {
		a.obj.Elems = append([]Value(nil), args...)
	}
	return &a.obj
}

// Construct implements `new fn(args)`.
func (in *Interp) Construct(fn Value, args []Value) (Value, error) {
	f := fn.Obj()
	if !f.IsCallable() {
		return Undefined, in.Throw("TypeError", "%s is not a constructor", TypeOf(fn))
	}
	in.charge(in.Engine.NewCost)
	if b := f.Bound; b != nil {
		// `new boundFn(args)` constructs the *target* with the bound args
		// prepended; boundThis is ignored (spec §10.4.1.2 [[Construct]]).
		// The delegation consumes a stack frame so bound→bound chains
		// cannot recurse unboundedly.
		in.depth++
		if in.depth > in.maxDepth {
			in.depth--
			return Undefined, in.Throw("RangeError", "Maximum call stack size exceeded")
		}
		all := append(append(make([]Value, 0, len(b.Args)+len(args)), b.Args...), args...)
		v, err := in.Construct(b.Target, all)
		in.depth--
		return v, err
	}
	if f.Native != nil {
		// Native constructors (Error, Array, ...) allocate internally; mark
		// construction via a sentinel this.
		return f.Native(in, ctorSentinel, args)
	}
	protoV, err := in.GetMember(fn, "prototype")
	if err != nil {
		return Undefined, err
	}
	proto := protoV.Obj()
	if proto == nil {
		proto = in.objectProto
	}
	obj := NewObject(proto)
	res, err := in.Call(fn, ObjectValue(obj), args, fn)
	if err != nil {
		return Undefined, err
	}
	if res.IsObject() {
		return res, nil
	}
	return ObjectValue(obj), nil
}

// Call applies fn to args with the given this and new.target.
func (in *Interp) Call(fn Value, this Value, args []Value, newTarget Value) (Value, error) {
	f := fn.Obj()
	if !f.IsCallable() {
		return Undefined, in.Throw("TypeError", "%s is not a function", TypeOf(fn))
	}
	in.charge(in.Engine.CallCost)
	if f.Native != nil {
		return f.Native(in, this, args)
	}
	if b := f.Bound; b != nil {
		// Bound call: the caller's this is discarded in favor of boundThis,
		// bound args are prepended. Depth-guarded like a closure call so a
		// self-referential bound chain (only constructible from a hostile
		// snapshot) hits the stack limit instead of hanging Go.
		in.depth++
		if in.depth > in.maxDepth {
			in.depth--
			return Undefined, in.Throw("RangeError", "Maximum call stack size exceeded")
		}
		all := append(append(make([]Value, 0, len(b.Args)+len(args)), b.Args...), args...)
		v, err := in.Call(b.Target, b.This, all, Undefined)
		in.depth--
		return v, err
	}
	c := f.Fn
	in.depth++
	if in.depth > in.maxDepth {
		in.depth--
		return Undefined, in.Throw("RangeError", "Maximum call stack size exceeded")
	}
	// Shadow stack for the sampling profiler: both engines funnel every JS
	// call through here, so this one push/pop pair is the whole seam.
	if profSeam && in.prof != nil {
		in.profPush(c.Decl.Name)
		defer in.profPop()
	}
	defer func() { in.depth-- }()

	var env *Env
	if sc := c.Decl.Scope; sc != nil {
		// Resolved function: one slice-backed frame, laid out statically.
		// The write order matches the dynamic path's define order so that
		// rebound names (duplicate params, a param shadowing the function's
		// own name) keep last-write-wins semantics. The frame comes from
		// the per-realm pool and returns to it at exit unless a closure
		// captured it during the call (makeFunction sets escaped).
		env = in.acquireFrame(c.Env, sc)
		defer func() {
			if !env.escaped {
				in.releaseFrame(env)
			}
		}()
		slots := env.slots
		if sc.SelfSlot >= 0 {
			slots[sc.SelfSlot] = ObjectValue(c.Self)
		}
		for i, slot := range sc.ParamSlots {
			if i < len(args) {
				slots[slot] = args[i]
			} else {
				// The zero Value reads back as undefined; the explicit
				// write keeps last-write-wins for duplicate parameter names.
				slots[slot] = Undefined
			}
		}
		if sc.ThisSlot >= 0 {
			slots[sc.ThisSlot] = this
		}
		if sc.NewTargetSlot >= 0 {
			slots[sc.NewTargetSlot] = newTarget
		}
		if sc.ArgumentsSlot >= 0 {
			// Only materialized when the body actually references
			// `arguments` — the resolver proved nothing else can see it.
			slots[sc.ArgumentsSlot] = ObjectValue(in.newArguments(args))
		}
		for _, fd := range sc.FnDecls {
			slots[fd.Slot] = ObjectValue(in.makeFunction(fd.Fn, env))
		}
	} else {
		env = NewEnv(c.Env)
		arrow := c.Decl.Arrow
		if c.Decl.Name != "" && !arrow {
			env.Define(c.Decl.Name, ObjectValue(c.Self))
		}
		for i, p := range c.Decl.Params {
			if i < len(args) {
				env.Define(p, args[i])
			} else {
				env.Define(p, Undefined)
			}
		}
		if !arrow {
			env.Define("this", this)
			env.Define("new.target", newTarget)
			env.Define("arguments", ObjectValue(in.newArguments(args)))
		}
		if c.hoisted == nil {
			c.hoisted = hoistScan(c.Decl.Body)
		}
		for _, name := range c.hoisted.vars {
			if !env.Has(name) {
				env.Define(name, Undefined)
			}
		}
		for _, fd := range c.hoisted.fns {
			env.Define(fd.Name, ObjectValue(in.makeFunction(fd, env)))
		}
	}
	// Engine dispatch: resolved bodies run on the bytecode engine when the
	// realm enables it (dispatch.go); everything else — and any function
	// the compiler rejects — walks the tree exactly as before. Both
	// engines receive the identical frame built above.
	if in.bytecode && c.Decl.Scope != nil {
		if ch := in.chunkFor(c.Decl); ch != nil {
			return in.runChunk(ch, env)
		}
	}
	err := in.execStmts(c.Decl.Body, env)
	switch e := err.(type) {
	case nil:
		return Undefined, nil
	case *returnErr:
		// The completion is consumed here and nothing else can hold it;
		// recycle it (interp.go newReturn). runChunk's escape-hatch path
		// is the only other consumer, with the same single-consume
		// obligation — a returnErr must never be recycled twice or
		// recycled while still propagating.
		v := e.value
		e.value = Value{}
		in.retFree = append(in.retFree, e)
		return v, nil
	default:
		return Undefined, err
	}
}
